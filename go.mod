module milpjoin

go 1.22
