// Distributed-serving benchmarks: cache-heavy throughput over a live
// three-node joinoptd ring (consistent-hash routing, peer forwarding,
// replication) against a single-node baseline, and cold-start replay of
// the persistent plan log.
package milpjoin_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cache/persist"
	"milpjoin/joinorder/cluster"
	"milpjoin/joinorder/server"
)

// benchRing boots n in-process joinoptd nodes sharing one consistent-hash
// ring on real TCP listeners. n=1 is the clusterless baseline.
type benchRing struct {
	urls    []string
	servers []*server.Server
	https   []*httptest.Server
	routers []*cluster.Router
}

func newBenchRing(tb testing.TB, n int) *benchRing {
	tb.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	listeners := make([]net.Listener, n)
	peers := make([]cluster.Peer, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		listeners[i] = l
		peers[i] = cluster.Peer{ID: fmt.Sprintf("n%d", i), URL: "http://" + l.Addr().String()}
	}
	br := &benchRing{}
	for i := range listeners {
		cfg := server.Config{Logger: quiet}
		if n > 1 {
			rt, err := cluster.New(cluster.Config{
				Self: peers[i].ID, Peers: peers, Replicas: 2,
				ProbeInterval: -1, Logger: quiet,
			})
			if err != nil {
				tb.Fatal(err)
			}
			cfg.Cluster = rt
			br.routers = append(br.routers, rt)
		}
		s, err := server.New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: s}}
		ts.Start()
		br.servers = append(br.servers, s)
		br.https = append(br.https, ts)
		br.urls = append(br.urls, ts.URL)
	}
	tb.Cleanup(func() {
		for i := range br.servers {
			br.https[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			br.servers[i].Drain(ctx) //nolint:errcheck // best-effort teardown
			cancel()
		}
		for _, rt := range br.routers {
			rt.Close()
		}
	})
	return br
}

// measureRing warms the ring with every body, then drives `clients`
// concurrent workers for `requests` total requests spread round-robin
// across nodes, returning sustained req/s and latency percentiles split
// by where the answer was produced (local vs a forwarded remote hit).
func measureRing(tb testing.TB, br *benchRing, bodies [][]byte, clients, requests int) (rps float64, p99, remoteP99 time.Duration) {
	tb.Helper()
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 512
	tr.MaxIdleConnsPerHost = 512
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	for i, body := range bodies { // warm every shard
		url := br.urls[i%len(br.urls)] + "/v1/optimize"
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("warmup status %d", resp.StatusCode)
		}
	}

	var (
		mu       sync.Mutex
		local    []time.Duration
		remote   []time.Duration
		next     atomic.Int64
		failures atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			myLocal := make([]time.Duration, 0, 256)
			myRemote := make([]time.Duration, 0, 256)
			for range work {
				i := int(next.Add(1))
				node := i % len(br.urls)
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(br.urls[node]+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				d := time.Since(t0)
				by := resp.Header.Get(server.NodeHeader)
				if by != "" && by != fmt.Sprintf("n%d", node) {
					myRemote = append(myRemote, d)
				} else {
					myLocal = append(myLocal, d)
				}
			}
			mu.Lock()
			local = append(local, myLocal...)
			remote = append(remote, myRemote...)
			mu.Unlock()
		}()
	}
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	if n := failures.Load(); n > 0 {
		tb.Fatalf("%d requests failed", n)
	}

	pct := func(ds []time.Duration, p float64) time.Duration {
		if len(ds) == 0 {
			return 0
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[int(p*float64(len(ds)-1))]
	}
	all := append(append([]time.Duration(nil), local...), remote...)
	return float64(len(all)) / elapsed.Seconds(), pct(all, 0.99), pct(remote, 0.99)
}

// BenchmarkClusterThroughput measures the cache-heavy serving regime the
// cluster exists for: a 48-query working set, every fingerprint already
// owned by one shard, 96 concurrent clients sprayed across three nodes.
// A fixed-size single-node baseline runs first (untimed) so the snapshot
// in BENCH_pr10.json (path overridable via BENCH_PR10_OUT) carries the
// scaling ratio and the remote-hit p99 alongside the timed cluster run.
func BenchmarkClusterThroughput(b *testing.B) {
	bodies := benchServerBodies(b, 48)
	const clients = 96
	const baselineRequests = 4000

	single := newBenchRing(b, 1)
	baseRPS, baseP99, _ := measureRing(b, single, bodies, clients, baselineRequests)

	ring := newBenchRing(b, 3)
	b.ReportAllocs()
	b.ResetTimer()
	rps, p99, remoteP99 := measureRing(b, ring, bodies, clients, max(b.N, baselineRequests))
	b.StopTimer()

	b.ReportMetric(rps, "req/s")
	b.ReportMetric(float64(p99.Microseconds()), "p99-µs")
	b.ReportMetric(float64(remoteP99.Microseconds()), "remote-p99-µs")
	b.ReportMetric(rps/baseRPS, "x-single")

	var forwards, replicated int64
	for _, rt := range ring.routers {
		st := rt.Stats()
		forwards += st.Forwards
		replicated += st.Replicated
	}
	out := struct {
		Clients         int     `json:"clients"`
		WorkingSet      int     `json:"working_set"`
		ClusterReqPerS  float64 `json:"cluster_req_per_sec"`
		ClusterP99Us    int64   `json:"cluster_p99_us"`
		RemoteHitP99Us  int64   `json:"remote_hit_p99_us"`
		SingleReqPerS   float64 `json:"single_req_per_sec"`
		SingleP99Us     int64   `json:"single_p99_us"`
		SpeedupVsSingle float64 `json:"speedup_vs_single"`
		Forwards        int64   `json:"forwards"`
		Replicated      int64   `json:"replicated"`
	}{
		Clients:         clients,
		WorkingSet:      len(bodies),
		ClusterReqPerS:  rps,
		ClusterP99Us:    p99.Microseconds(),
		RemoteHitP99Us:  remoteP99.Microseconds(),
		SingleReqPerS:   baseRPS,
		SingleP99Us:     baseP99.Microseconds(),
		SpeedupVsSingle: rps / baseRPS,
		Forwards:        forwards,
		Replicated:      replicated,
	}
	writeBenchJSON(b, "BENCH_PR10_OUT", "BENCH_pr10.json", out)
}

// BenchmarkPersistReplay measures cold start: how fast a disk-backed plan
// log replays into a warm cache. The log is seeded once with real solved
// plans; each iteration opens it fresh and replays every record. The
// snapshot lands in BENCH_pr10_replay.json (BENCH_PR10_REPLAY_OUT).
func BenchmarkPersistReplay(b *testing.B) {
	dir := b.TempDir()
	const entries = 256

	seed := func() {
		plog, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		co, err := cache.New(cache.Config{MaxEntries: entries * 2, Persist: plog})
		if err != nil {
			b.Fatal(err)
		}
		opts := joinorder.Options{Strategy: "dp-leftdeep", TimeLimit: 10 * time.Second}
		shapes := []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle}
		for i := 0; i < entries; i++ {
			q := workload.Generate(shapes[i%len(shapes)], 6+i%5, int64(i+1), workload.Config{})
			if _, err := co.Optimize(context.Background(), q, opts); err != nil {
				b.Fatal(err)
			}
		}
		co.Wait()
		if err := plog.Close(); err != nil {
			b.Fatal(err)
		}
	}
	seed()

	var replayed int64
	var bytesOnDisk int64
	if fis, err := os.ReadDir(dir); err == nil {
		for _, fi := range fis {
			if info, err := fi.Info(); err == nil {
				bytesOnDisk += info.Size()
			}
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		plog, err := persist.Open(persist.Config{Dir: dir, Policy: persist.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		co, err := cache.New(cache.Config{MaxEntries: entries * 2, Persist: plog})
		if err != nil {
			b.Fatal(err)
		}
		s := co.Stats()
		if s.Replayed == 0 || s.Entries == 0 {
			b.Fatalf("replay produced no entries: %+v", s)
		}
		replayed = s.Replayed
		if err := plog.Close(); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()

	perOpen := elapsed / time.Duration(b.N)
	b.ReportMetric(float64(replayed)*float64(b.N)/elapsed.Seconds(), "records/s")
	b.ReportMetric(float64(perOpen.Microseconds()), "replay-µs")

	out := struct {
		Records     int64   `json:"records"`
		BytesOnDisk int64   `json:"bytes_on_disk"`
		ReplayUs    int64   `json:"replay_us"`
		RecordsPerS float64 `json:"records_per_sec"`
	}{
		Records:     replayed,
		BytesOnDisk: bytesOnDisk,
		ReplayUs:    perOpen.Microseconds(),
		RecordsPerS: float64(replayed) * float64(b.N) / elapsed.Seconds(),
	}
	writeBenchJSON(b, "BENCH_PR10_REPLAY_OUT", "BENCH_pr10_replay.json", out)
}

// writeBenchJSON snapshots a benchmark's result document for the CI
// benchmark guard, at the env-var path or the default.
func writeBenchJSON(b *testing.B, env, def string, v any) {
	b.Helper()
	path := os.Getenv(env)
	if path == "" {
		path = def
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Clean(path), data, 0o644); err != nil {
		b.Fatal(err)
	}
}
