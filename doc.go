// Package milpjoin reproduces "Solving the Join Ordering Problem via Mixed
// Integer Linear Programming" (Trummer & Koch, SIGMOD 2017): a transformation
// of left-deep join ordering into MILP, solved by a from-scratch pure-Go MILP
// solver (sparse revised simplex + branch and bound) standing in for Gurobi.
//
// The library lives under internal/: see internal/core for the encoder (the
// paper's contribution), internal/solver for the MILP solver facade, and
// internal/experiments for the harnesses regenerating the paper's figures.
// Entry points: cmd/joinopt, cmd/figures, and the examples/ directory.
package milpjoin
