// Package milpjoin reproduces "Solving the Join Ordering Problem via Mixed
// Integer Linear Programming" (Trummer & Koch, SIGMOD 2017): a transformation
// of left-deep join ordering into MILP, solved by a from-scratch pure-Go MILP
// solver (sparse revised simplex + branch and bound) standing in for Gurobi.
//
// The public API is the joinorder package: a context-aware, strategy-agnostic
// entry point over the MILP approach and every baseline the paper compares
// against. Cancel the context mid-solve and the MILP strategy returns its
// best incumbent with a proven optimality bound — the paper's anytime
// property as a Go idiom:
//
//	res, err := joinorder.Optimize(ctx, query, joinorder.Options{
//		Strategy:  "milp",                 // or dp-leftdeep, dp-bushy, ikkbz, greedy, ...
//		TimeLimit: 10 * time.Second,       // composes with the ctx deadline (min wins)
//	})
//
// The solver stack is observable end to end: Options.OnEvent streams typed
// events (presolve summary, cut rounds, root LP, incumbents, bounds,
// heuristic dives, worker lifecycle) with serialised delivery and monotone
// incumbent/bound guarantees, and every MILP Result carries per-phase Stats
// (wall time per phase, simplex iterations, LU refactorizations, heuristic
// success rates, per-worker node counts). Events, Stats, and Result marshal
// to JSON; cmd/joinopt exposes them via -stats, -trace-events, -json, and
// an expvar/pprof -metrics endpoint.
//
// Everything under internal/ is implementation detail: internal/core holds
// the encoder (the paper's contribution), internal/solver the MILP solver
// facade, and internal/experiments the harnesses regenerating the paper's
// figures. Entry points: the joinorder package, cmd/joinopt, cmd/figures,
// and the examples/ directory.
package milpjoin
