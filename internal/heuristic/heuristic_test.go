package heuristic

import (
	"context"
	"math"
	"testing"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

type algo struct {
	name string
	run  func(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error)
}

func algorithms() []algo {
	return []algo{
		{"II", IterativeImprovement},
		{"SA", SimulatedAnnealing},
		{"2PO", TwoPhase},
		{"GD", GradientDescent},
		{"RS", func(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
			return RandomSampling(ctx, q, spec, 500, opts)
		}},
	}
}

func TestHeuristicsProduceValidPlans(t *testing.T) {
	for _, shape := range workload.Shapes() {
		q := workload.Generate(shape, 8, 3, workload.Config{})
		for _, a := range algorithms() {
			pl, c, err := a.run(context.Background(), q, cost.CoutSpec(), Options{Seed: 1})
			if err != nil {
				t.Fatalf("%v %s: %v", shape, a.name, err)
			}
			if err := pl.Validate(q); err != nil {
				t.Fatalf("%v %s: invalid plan: %v", shape, a.name, err)
			}
			recost, err := plan.Cost(q, pl, cost.CoutSpec())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(recost-c) > 1e-9*(1+c) {
				t.Fatalf("%v %s: reported %g, actual %g", shape, a.name, c, recost)
			}
		}
	}
}

func TestHeuristicsNeverBeatOptimal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		q := workload.Generate(workload.Cycle, 7, seed, workload.Config{})
		_, opt, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range algorithms() {
			_, c, err := a.run(context.Background(), q, cost.CoutSpec(), Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if c < opt-1e-6*(1+opt) {
				t.Fatalf("seed %d %s: heuristic %g beats optimum %g", seed, a.name, c, opt)
			}
		}
	}
}

func TestIterativeImprovementFindsSmallOptimum(t *testing.T) {
	// On tiny queries random-restart local search should reach the
	// optimum with a deterministic seed.
	q := workload.Generate(workload.Star, 5, 9, workload.Config{})
	_, opt, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := IterativeImprovement(context.Background(), q, cost.CoutSpec(), Options{Seed: 2, Restarts: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-opt) > 1e-6*(1+opt) {
		t.Errorf("II found %g, optimum %g", c, opt)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	q := workload.Generate(workload.Chain, 9, 4, workload.Config{})
	for _, a := range algorithms() {
		_, c1, err := a.run(context.Background(), q, cost.CoutSpec(), Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		_, c2, err := a.run(context.Background(), q, cost.CoutSpec(), Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Errorf("%s: nondeterministic with fixed seed: %g vs %g", a.name, c1, c2)
		}
	}
}

func TestDeadlineRespected(t *testing.T) {
	q := workload.Generate(workload.Chain, 16, 5, workload.Config{})
	start := time.Now()
	_, _, err := SimulatedAnnealing(context.Background(), q, cost.CoutSpec(), Options{
		Seed:     1,
		Deadline: start.Add(50 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("SA ran %v past a 50ms deadline", elapsed)
	}
}

func TestOnImprovementMonotone(t *testing.T) {
	q := workload.Generate(workload.Cycle, 10, 6, workload.Config{})
	var costs []float64
	_, _, err := IterativeImprovement(context.Background(), q, cost.CoutSpec(), Options{
		Seed: 3,
		OnImprovement: func(p *plan.Plan, c float64, _ time.Duration) {
			costs = append(costs, c)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) == 0 {
		t.Fatal("no improvements observed")
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] >= costs[i-1] {
			t.Errorf("non-improving callback: %g → %g", costs[i-1], costs[i])
		}
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	bad := &qopt.Query{Tables: []qopt.Table{{Card: 5}}}
	for _, a := range algorithms() {
		if _, _, err := a.run(context.Background(), bad, cost.CoutSpec(), Options{}); err == nil {
			t.Errorf("%s accepted an invalid query", a.name)
		}
	}
}

func TestTwoPhaseAtLeastAsGoodAsIIHalf(t *testing.T) {
	q := workload.Generate(workload.Star, 10, 8, workload.Config{})
	_, ii, err := IterativeImprovement(context.Background(), q, cost.CoutSpec(), Options{Seed: 5, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, tp, err := TwoPhase(context.Background(), q, cost.CoutSpec(), Options{Seed: 5, Restarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2PO embeds an II phase with half the restarts plus annealing; it
	// should not be wildly worse (allow slack — different RNG streams).
	if tp > ii*10 {
		t.Errorf("2PO %g far worse than II %g", tp, ii)
	}
}

// TestGradientDescentFindsSmallOptimum: on a 6-table query the SPSA
// relaxation with a few restarts lands on (or very near) the left-deep
// optimum.
func TestGradientDescentFindsSmallOptimum(t *testing.T) {
	q := workload.Generate(workload.Chain, 6, 7, workload.Config{})
	_, opt, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, c, err := GradientDescent(context.Background(), q, cost.CoutSpec(), Options{Seed: 3, Restarts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c > opt*1.05 {
		t.Fatalf("gradient descent cost %g, optimum %g", c, opt)
	}
}

// TestGradientDescentAnytime: OnImprovement fires with strictly
// decreasing costs and each published plan is valid.
func TestGradientDescentAnytime(t *testing.T) {
	q := workload.Generate(workload.Star, 9, 4, workload.Config{})
	last := math.Inf(1)
	calls := 0
	_, final, err := GradientDescent(context.Background(), q, cost.CoutSpec(), Options{
		Seed:     1,
		Restarts: 6,
		OnImprovement: func(p *plan.Plan, c float64, _ time.Duration) {
			calls++
			if c >= last {
				t.Errorf("improvement %d not monotone: %g after %g", calls, c, last)
			}
			last = c
			if err := p.Validate(q); err != nil {
				t.Errorf("improvement %d invalid plan: %v", calls, err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("no improvements published")
	}
	if final != last {
		t.Errorf("final cost %g differs from last published improvement %g", final, last)
	}
}
