// Package heuristic implements the randomized join-ordering algorithms of
// Steinbrunn, Moerkotte & Kemper (VLDBJ 1997) that the paper's related
// work discusses: iterative improvement, simulated annealing, two-phase
// optimization, and plain random sampling over left-deep join orders.
//
// These algorithms share the anytime property with the MILP approach but —
// the paper's key distinction — provide no lower bounds: they can never
// certify how far their current plan is from the optimum. They serve here
// as primal-quality yardsticks for the experiments.
package heuristic

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// Options tune the randomized searches.
type Options struct {
	// Seed drives all randomness (deterministic given a seed).
	Seed int64
	// Deadline bounds the wall-clock time; zero means the per-algorithm
	// default effort.
	Deadline time.Time
	// Restarts is the number of independent starts for iterative
	// improvement (default 10).
	Restarts int
	// MaxMovesWithoutImprovement declares a local optimum (default 4·n²).
	MaxMovesWithoutImprovement int
	// InitialTemperature and CoolingRate parameterise simulated
	// annealing (defaults: half the start cost, 0.9).
	InitialTemperature float64
	CoolingRate        float64
	// OnImprovement, when non-nil, observes every strict improvement.
	OnImprovement func(p *plan.Plan, cost float64, elapsed time.Duration)
}

func (o Options) withDefaults(n int) Options {
	if o.Restarts <= 0 {
		o.Restarts = 10
	}
	if o.MaxMovesWithoutImprovement <= 0 {
		o.MaxMovesWithoutImprovement = 4 * n * n
	}
	if o.CoolingRate <= 0 || o.CoolingRate >= 1 {
		o.CoolingRate = 0.9
	}
	return o
}

// search carries shared state for the randomized algorithms.
type search struct {
	ctx   context.Context
	q     *qopt.Query
	spec  cost.Spec
	opts  Options
	rng   *rand.Rand
	start time.Time

	best     []int
	bestCost float64
}

func newSearch(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*search, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &search{
		ctx:      ctx,
		q:        q,
		spec:     spec,
		opts:     opts.withDefaults(q.NumTables()),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		start:    time.Now(),
		bestCost: math.Inf(1),
	}, nil
}

// expired reports whether the search budget is exhausted: the configured
// deadline passed or the caller's context ended. The algorithms are
// anytime, so an expired search still returns the best plan found.
func (s *search) expired() bool {
	if s.ctx.Err() != nil {
		return true
	}
	return !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline)
}

// planCost prices an order; math.Inf(1) on (impossible) evaluation errors.
func (s *search) planCost(order []int) float64 {
	c, err := plan.Cost(s.q, &plan.Plan{Order: order}, s.spec)
	if err != nil {
		return math.Inf(1)
	}
	return c
}

func (s *search) offer(order []int, c float64) {
	if c < s.bestCost {
		s.bestCost = c
		s.best = append(s.best[:0], order...)
		if s.opts.OnImprovement != nil {
			s.opts.OnImprovement(&plan.Plan{Order: append([]int(nil), order...)}, c, time.Since(s.start))
		}
	}
}

func (s *search) randomOrder() []int {
	return s.rng.Perm(s.q.NumTables())
}

// neighbor applies one of Steinbrunn's left-deep move types in place and
// returns an undo closure: Swap (exchange two positions) or 3Cycle.
func (s *search) neighbor(order []int) func() {
	n := len(order)
	if n >= 3 && s.rng.Intn(2) == 0 {
		// 3Cycle: rotate three distinct positions.
		i, j, k := s.rng.Intn(n), s.rng.Intn(n), s.rng.Intn(n)
		for j == i {
			j = s.rng.Intn(n)
		}
		for k == i || k == j {
			k = s.rng.Intn(n)
		}
		oi, oj, ok := order[i], order[j], order[k]
		order[i], order[j], order[k] = ok, oi, oj
		return func() { order[i], order[j], order[k] = oi, oj, ok }
	}
	i, j := s.rng.Intn(n), s.rng.Intn(n)
	for j == i {
		j = s.rng.Intn(n)
	}
	order[i], order[j] = order[j], order[i]
	return func() { order[i], order[j] = order[j], order[i] }
}

func (s *search) result() (*plan.Plan, float64, error) {
	if s.best == nil {
		return nil, 0, errors.New("heuristic: no plan found")
	}
	return &plan.Plan{Order: s.best}, s.bestCost, nil
}

// IterativeImprovement runs random-restart local search: from random
// starts, apply improving moves until a local optimum, keep the best.
func IterativeImprovement(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
	s, err := newSearch(ctx, q, spec, opts)
	if err != nil {
		return nil, 0, err
	}
	for restart := 0; restart < s.opts.Restarts && !s.expired(); restart++ {
		order := s.randomOrder()
		cur := s.planCost(order)
		s.offer(order, cur)
		stall := 0
		for stall < s.opts.MaxMovesWithoutImprovement && !s.expired() {
			undo := s.neighbor(order)
			if c := s.planCost(order); c < cur {
				cur = c
				s.offer(order, cur)
				stall = 0
			} else {
				undo()
				stall++
			}
		}
	}
	return s.result()
}

// SimulatedAnnealing runs Metropolis-accepted local search with geometric
// cooling, per Steinbrunn's SA configuration.
func SimulatedAnnealing(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
	s, err := newSearch(ctx, q, spec, opts)
	if err != nil {
		return nil, 0, err
	}
	order := s.randomOrder()
	cur := s.planCost(order)
	s.offer(order, cur)

	temp := s.opts.InitialTemperature
	if temp <= 0 {
		temp = math.Max(cur*0.5, 1)
	}
	n := q.NumTables()
	movesPerStage := 4 * n * n
	frozen := 0
	for frozen < 3 && !s.expired() {
		improvedStage := false
		for move := 0; move < movesPerStage && !s.expired(); move++ {
			undo := s.neighbor(order)
			c := s.planCost(order)
			delta := c - cur
			if delta <= 0 || s.rng.Float64() < math.Exp(-delta/temp) {
				cur = c
				if delta < 0 {
					improvedStage = true
				}
				s.offer(order, cur)
			} else {
				undo()
			}
		}
		temp *= s.opts.CoolingRate
		if improvedStage {
			frozen = 0
		} else {
			frozen++
		}
	}
	return s.result()
}

// TwoPhase is Steinbrunn's 2PO: iterative improvement to find a good local
// optimum, then low-temperature annealing around it.
func TwoPhase(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
	s, err := newSearch(ctx, q, spec, opts)
	if err != nil {
		return nil, 0, err
	}
	iiOpts := s.opts
	iiOpts.Restarts = int(math.Max(1, float64(s.opts.Restarts)/2))
	iiPlan, iiCost, err := IterativeImprovement(ctx, q, spec, iiOpts)
	if err != nil {
		return nil, 0, err
	}
	s.offer(iiPlan.Order, iiCost)

	saOpts := s.opts
	saOpts.InitialTemperature = math.Max(iiCost*0.05, 1) // low temperature
	saOpts.Seed = s.opts.Seed + 1
	saPlan, saCost, err := SimulatedAnnealing(ctx, q, spec, saOpts)
	if err == nil {
		s.offer(saPlan.Order, saCost)
	}
	return s.result()
}

// RandomSampling evaluates independent random orders; the weakest baseline.
func RandomSampling(ctx context.Context, q *qopt.Query, spec cost.Spec, samples int, opts Options) (*plan.Plan, float64, error) {
	s, err := newSearch(ctx, q, spec, opts)
	if err != nil {
		return nil, 0, err
	}
	if samples <= 0 {
		samples = 1000
	}
	for i := 0; i < samples && !s.expired(); i++ {
		order := s.randomOrder()
		s.offer(order, s.planCost(order))
	}
	return s.result()
}
