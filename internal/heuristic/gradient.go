package heuristic

import (
	"context"
	"math"
	"sort"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// GradientDescent optimizes left-deep join orders by stochastic gradient
// descent on a continuous relaxation, following the gradient-based join
// ordering of arXiv:2511.14482: each table t carries a position score θ_t,
// a score vector decodes to the order sorting tables by score, and the
// (non-differentiable) decode is handled with simultaneous-perturbation
// (SPSA) two-point gradient estimates of the log plan cost. Momentum
// smooths the noisy estimates and periodic restarts escape flat regions.
// Like the other searches in this package the algorithm is anytime —
// every strict improvement is reported through Options.OnImprovement —
// and provides no lower bounds.
func GradientDescent(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
	s, err := newSearch(ctx, q, spec, opts)
	if err != nil {
		return nil, 0, err
	}
	n := q.NumTables()
	if n == 1 {
		s.offer([]int{0}, s.planCost([]int{0}))
		return s.result()
	}

	theta := make([]float64, n)
	velocity := make([]float64, n)
	plus := make([]float64, n)
	minus := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int, n)

	// decode sorts tables by ascending score into order. Ties (measure
	// zero under the random perturbations) break by table index, keeping
	// the decode deterministic for a fixed seed.
	decode := func(scores []float64) []int {
		for t := range order {
			order[t] = t
		}
		sort.SliceStable(order, func(a, b int) bool {
			return scores[order[a]] < scores[order[b]]
		})
		return order
	}
	// logCost scores in log space so the gradient scale is insensitive
	// to the huge dynamic range of join cardinalities.
	logCost := func(scores []float64) float64 {
		c := s.planCost(decode(scores))
		s.offer(order, c)
		return math.Log(math.Max(c, 1))
	}

	const (
		learningRate = 0.3
		momentum     = 0.9
		perturbation = 0.5
		stepsPerRun  = 400
	)
	restarts := s.opts.Restarts
	for restart := 0; restart < restarts && !s.expired(); restart++ {
		// Fresh random start in [-1, 1); momentum resets with it.
		for t := range theta {
			theta[t] = 2*s.rng.Float64() - 1
			velocity[t] = 0
		}
		logCost(theta)
		for step := 0; step < stepsPerRun && !s.expired(); step++ {
			// SPSA: one random ±1 direction, two evaluations, an
			// unbiased estimate of the full gradient.
			for t := range delta {
				if s.rng.Intn(2) == 0 {
					delta[t] = 1
				} else {
					delta[t] = -1
				}
				plus[t] = theta[t] + perturbation*delta[t]
				minus[t] = theta[t] - perturbation*delta[t]
			}
			diff := logCost(plus) - logCost(minus)
			if math.IsInf(diff, 0) || math.IsNaN(diff) {
				continue
			}
			for t := range theta {
				grad := diff / (2 * perturbation * delta[t])
				velocity[t] = momentum*velocity[t] - learningRate*grad
				theta[t] += velocity[t]
			}
			logCost(theta)
		}
	}
	return s.result()
}
