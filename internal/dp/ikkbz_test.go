package dp

import (
	"context"
	"errors"
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

// connectedOptimum enumerates all left-deep orders whose prefixes stay
// connected in the join graph (no cross products) and returns the minimal
// exact C_out — the space IKKBZ optimizes over.
func connectedOptimum(t *testing.T, q *qopt.Query) float64 {
	t.Helper()
	n := q.NumTables()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, p := range q.Predicates {
		if p.IsBinary() {
			adj[p.Tables[0]][p.Tables[1]] = true
			adj[p.Tables[1]][p.Tables[0]] = true
		}
	}
	best := math.Inf(1)
	order := make([]int, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(order) == n {
			if c, err := plan.Cost(q, &plan.Plan{Order: append([]int(nil), order...)}, cost.CoutSpec()); err == nil && c < best {
				best = c
			}
			return
		}
		for t2 := 0; t2 < n; t2++ {
			if used[t2] {
				continue
			}
			// Connectivity: after the first table, the next must join
			// an edge into the current prefix.
			if len(order) > 0 {
				conn := false
				for _, prev := range order {
					if adj[prev][t2] {
						conn = true
						break
					}
				}
				if !conn {
					continue
				}
			}
			used[t2] = true
			order = append(order, t2)
			rec()
			order = order[:len(order)-1]
			used[t2] = false
		}
	}
	rec()
	return best
}

func TestIKKBZMatchesConnectedOptimum(t *testing.T) {
	for _, shape := range []workload.GraphShape{workload.Chain, workload.Star} {
		for seed := int64(0); seed < 10; seed++ {
			for _, n := range []int{4, 6, 8} {
				q := workload.Generate(shape, n, seed, workload.Config{})
				pl, got, err := IKKBZ(context.Background(), q)
				if err != nil {
					t.Fatalf("%v n=%d seed %d: %v", shape, n, seed, err)
				}
				if err := pl.Validate(q); err != nil {
					t.Fatal(err)
				}
				want := connectedOptimum(t, q)
				if math.Abs(got-want) > 1e-6*(1+want) {
					t.Fatalf("%v n=%d seed %d: IKKBZ %g, connected optimum %g (order %v)",
						shape, n, seed, got, want, pl.Order)
				}
			}
		}
	}
}

func TestIKKBZNeverBeatsCrossProductDP(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		q := workload.Generate(workload.Chain, 7, seed, workload.Config{})
		_, ik, err := IKKBZ(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		_, dpCost, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		// DP searches a superset (cross products allowed).
		if ik < dpCost-1e-6*(1+dpCost) {
			t.Fatalf("seed %d: IKKBZ %g beats cross-product DP %g", seed, ik, dpCost)
		}
	}
}

func TestIKKBZRejectsCycles(t *testing.T) {
	q := workload.Generate(workload.Cycle, 5, 1, workload.Config{})
	if _, _, err := IKKBZ(context.Background(), q); !errors.Is(err, ErrNotAcyclic) {
		t.Fatalf("err = %v, want ErrNotAcyclic", err)
	}
}

func TestIKKBZRejectsDisconnected(t *testing.T) {
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 10}, {Card: 20}, {Card: 30}, {Card: 40}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.1},
			{Tables: []int{2, 3}, Sel: 0.1},
		},
	}
	// Two components: 2 edges for 4 tables fails the tree check...
	// actually edges = 2 ≠ 3 → not acyclic-connected.
	if _, _, err := IKKBZ(context.Background(), q); !errors.Is(err, ErrNotAcyclic) {
		t.Fatalf("err = %v, want ErrNotAcyclic", err)
	}
}

func TestIKKBZRejectsNaryPredicates(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 1, workload.Config{})
	q.Predicates = append(q.Predicates[:2], qopt.Predicate{Tables: []int{1, 2, 3}, Sel: 0.5})
	if _, _, err := IKKBZ(context.Background(), q); err == nil {
		t.Fatal("n-ary predicate accepted")
	}
}

func TestIKKBZUnaryPredicatesFolded(t *testing.T) {
	q := workload.Generate(workload.Chain, 5, 2, workload.Config{})
	q.Predicates = append(q.Predicates, qopt.Predicate{Tables: []int{2}, Sel: 0.01})
	pl, got, err := IKKBZ(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := connectedOptimum(t, q)
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("with unary predicate: IKKBZ %g, connected optimum %g (order %v)", got, want, pl.Order)
	}
}

func TestIKKBZTwoTables(t *testing.T) {
	q := workload.Generate(workload.Chain, 2, 3, workload.Config{})
	pl, _, err := IKKBZ(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(q); err != nil {
		t.Fatal(err)
	}
}
