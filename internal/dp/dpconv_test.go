package dp

import (
	"context"
	"errors"
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/workload"
)

// TestConvMatchesBushy: the layered enumeration and the subset recursion
// walk the same bushy plan space, so without a cutoff they must agree on
// the optimal cost for every shape, seed, and metric.
func TestConvMatchesBushy(t *testing.T) {
	specs := []cost.Spec{cost.CoutSpec(), cost.DefaultSpec()}
	for _, shape := range []workload.GraphShape{workload.Chain, workload.Cycle, workload.Star, workload.Clique} {
		for seed := int64(0); seed < 6; seed++ {
			q := workload.Generate(shape, 7, seed, workload.Config{})
			for _, spec := range specs {
				bTree, bCost, err := OptimizeBushy(context.Background(), q, spec, Options{})
				if err != nil {
					t.Fatalf("%v seed %d bushy: %v", shape, seed, err)
				}
				cTree, cCost, err := OptimizeConv(context.Background(), q, spec, ConvOptions{})
				if err != nil {
					t.Fatalf("%v seed %d conv: %v", shape, seed, err)
				}
				if math.Abs(cCost-bCost) > 1e-6*(1+bCost) {
					t.Fatalf("%v seed %d %v: conv %g vs bushy %g (conv %v, bushy %v)",
						shape, seed, spec.Metric, cCost, bCost, cTree, bTree)
				}
				// The reported cost must equal the exact tree cost.
				recost, err := plan.TreeCost(q, cTree, spec)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(recost-cCost) > 1e-6*(1+cCost) {
					t.Fatalf("%v seed %d: conv reports %g but tree costs %g", shape, seed, cCost, recost)
				}
				if err := cTree.Validate(q); err != nil {
					t.Fatalf("%v seed %d: invalid tree: %v", shape, seed, err)
				}
			}
		}
	}
}

// TestConvCutoffLoose: a cutoff far above the optimum must not change the
// answer — pruning is only allowed to discard provably worse subplans.
func TestConvCutoffLoose(t *testing.T) {
	q := workload.Generate(workload.Star, 8, 2, workload.Config{})
	spec := cost.DefaultSpec()
	_, want, err := OptimizeConv(context.Background(), q, spec, ConvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := OptimizeConv(context.Background(), q, spec, ConvOptions{
		Cutoff: func() float64 { return want * 1e6 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("loose cutoff changed the optimum: %g vs %g", got, want)
	}
}

// TestConvCutoffProvesNoneBetter: with the cutoff below the true
// optimum, every completion is pruned and the search reports
// ErrNoneBetter — the proof the portfolio uses to declare the incumbent
// optimal. A plan matching the cutoff exactly (the incumbent itself)
// survives the epsilon and is returned instead.
func TestConvCutoffProvesNoneBetter(t *testing.T) {
	q := workload.Generate(workload.Star, 8, 2, workload.Config{})
	spec := cost.DefaultSpec()
	_, opt, err := OptimizeConv(context.Background(), q, spec, ConvOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = OptimizeConv(context.Background(), q, spec, ConvOptions{
		Cutoff: func() float64 { return opt * 0.999 },
	})
	if !errors.Is(err, ErrNoneBetter) {
		t.Fatalf("cutoff below the optimum: err = %v, want ErrNoneBetter", err)
	}
	_, got, err := OptimizeConv(context.Background(), q, spec, ConvOptions{
		Cutoff: func() float64 { return opt },
	})
	if err != nil {
		t.Fatalf("cutoff at the optimum: %v", err)
	}
	if math.Abs(got-opt) > 1e-6*(1+opt) {
		t.Fatalf("cutoff at the optimum changed it: %g vs %g", got, opt)
	}
	// A cutoff strictly between optimum and +Inf that some plan beats
	// still returns that plan.
	_, got, err = OptimizeConv(context.Background(), q, spec, ConvOptions{
		Cutoff: func() float64 { return opt * 1.5 },
	})
	if err != nil {
		t.Fatalf("cutoff above the optimum: %v", err)
	}
	if math.Abs(got-opt) > 1e-6*(1+opt) {
		t.Fatalf("cutoff above the optimum changed it: %g vs %g", got, opt)
	}
}

// TestConvTooLargeAndCancel: the guard rails shared with the other DPs.
func TestConvTooLargeAndCancel(t *testing.T) {
	big := workload.Generate(workload.Chain, 30, 1, workload.Config{})
	if _, _, err := OptimizeConv(context.Background(), big, cost.CoutSpec(), ConvOptions{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("30 tables: err = %v, want ErrTooLarge", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := workload.Generate(workload.Chain, 16, 1, workload.Config{})
	if _, _, err := OptimizeConv(ctx, q, cost.CoutSpec(), ConvOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestNextSubsetSameCount enumerates all 3-of-6 bitmasks via Gosper's
// hack and checks count and ordering.
func TestNextSubsetSameCount(t *testing.T) {
	var got []int
	for s := 0b111; s < 1<<6; s = nextSubsetSameCount(s) {
		got = append(got, s)
	}
	if len(got) != 20 { // C(6,3)
		t.Fatalf("enumerated %d subsets, want 20", len(got))
	}
	for i, s := range got {
		if popcount(s) != 3 {
			t.Fatalf("subset %b has popcount %d", s, popcount(s))
		}
		if i > 0 && s <= got[i-1] {
			t.Fatalf("enumeration not increasing: %b after %b", s, got[i-1])
		}
	}
}

func popcount(s int) int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}
