package dp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// ErrNoneBetter reports that the DPconv search proved no bushy plan beats
// the caller-supplied cutoff: every partial plan was pruned against it, so
// the incumbent the cutoff tracks is optimal over the bushy plan space.
// Portfolio callers treat this as a proof of optimality for the racing
// incumbent rather than a failure.
var ErrNoneBetter = errors.New("dp: no plan better than cutoff")

// ConvOptions extend Options with the anytime hooks of the DPconv-style
// layered search.
type ConvOptions struct {
	Options
	// Cutoff, when non-nil, returns the exact cost of the best plan known
	// so far from outside the search (for example a racing portfolio
	// peer's incumbent). Layers re-read it and prune every subset whose
	// best partial cost already reaches it: join costs are monotone
	// non-negative, so no completion of a pruned subset can beat the
	// cutoff. When the full set is pruned away entirely the search
	// returns ErrNoneBetter — a proof that the cutoff incumbent is
	// optimal. +Inf (or a nil hook) disables pruning.
	Cutoff func() float64
}

// OptimizeConv finds the cost-minimal bushy join tree with the layered
// DPconv-style enumeration (arXiv:2409.08013): subsets are processed in
// layers of increasing cardinality, splits are canonicalised to the half
// containing the subset's lowest table so each unordered partition is
// priced once (both orientations are priced under asymmetric operator
// costs), and an optional live cutoff prunes dominated layers — giving the
// exact DP an anytime interface. Cardinalities follow the same canonical
// lowest-bit recurrence as OptimizeBushy, so both searches agree exactly on
// every subset and, with no cutoff, on the optimal plan and cost.
func OptimizeConv(ctx context.Context, q *qopt.Query, spec cost.Spec, opts ConvOptions) (*plan.Tree, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("dp: %w", err)
	}
	opts.Options = opts.Options.withDefaults()
	if opts.MaxTables > 20 {
		opts.MaxTables = 20 // layered split enumeration is still Θ(3^n)
	}
	n := q.NumTables()
	if n > opts.MaxTables {
		return nil, 0, fmt.Errorf("%w: %d tables (bushy limit %d)", ErrTooLarge, n, opts.MaxTables)
	}
	params := spec.Params.WithDefaults()

	size := 1 << n
	card := make([]float64, size)
	best := make([]float64, size)
	split := make([]int32, size) // left subset of the best split; 0 for leaves
	for s := range best {
		best[s] = math.Inf(1)
	}

	type predInfo struct {
		mask int
		sel  float64
	}
	predsByTable := make([][]predInfo, n)
	for _, p := range q.Predicates {
		mask := 0
		for _, t := range p.Tables {
			mask |= 1 << t
		}
		for _, t := range p.Tables {
			predsByTable[t] = append(predsByTable[t], predInfo{mask: mask, sel: p.Sel})
		}
	}
	type groupInfo struct {
		mask int
		corr float64
	}
	var groups []groupInfo
	for _, g := range q.Correlated {
		mask := 0
		for _, pi := range g.Predicates {
			for _, t := range q.Predicates[pi].Tables {
				mask |= 1 << t
			}
		}
		groups = append(groups, groupInfo{mask: mask, corr: g.CorrectionSel})
	}

	for t := 0; t < n; t++ {
		card[1<<t] = q.Tables[t].Card
		best[1<<t] = 0
	}

	full := size - 1
	pruned := false
	check := 0
	for k := 2; k <= n; k++ {
		// Re-read the cutoff once per layer: tight enough to benefit
		// from racing incumbents, cheap enough to keep the inner loop
		// branch-free of callbacks. The epsilon keeps a plan that ties
		// the cutoff prunable — equality is not an improvement.
		cut := math.Inf(1)
		if opts.Cutoff != nil {
			if c := opts.Cutoff(); c < math.Inf(1) {
				cut = c * (1 + 1e-9)
			}
		}
		for s := (1 << k) - 1; s < size; s = nextSubsetSameCount(s) {
			if check++; check&0x3FFF == 0 {
				if err := ctx.Err(); err != nil {
					return nil, 0, fmt.Errorf("dp: %w", err)
				}
				if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
					return nil, 0, ErrTimeout
				}
			}
			// Cardinality via the canonical lowest-bit chain (identical
			// to OptimizeBushy so both DPs agree on every subset).
			t := bits.TrailingZeros(uint(s))
			bit := 1 << t
			prev := s &^ bit
			c := card[prev] * q.Tables[t].Card
			for _, pi := range predsByTable[t] {
				if pi.mask&s == pi.mask {
					c *= pi.sel
				}
			}
			for _, g := range groups {
				if g.mask&s == g.mask && g.mask&prev != g.mask {
					c *= g.corr
				}
			}
			card[s] = c

			// Canonical splits: the half containing the lowest table.
			// Each unordered partition is enumerated exactly once; under
			// asymmetric operator costs both orientations are priced.
			var coutCost float64
			if spec.Metric == cost.Cout && s != full {
				coutCost = card[s]
			}
			for low := (prev - 1) & prev; ; low = (low - 1) & prev {
				sub := low | bit
				rest := s ^ sub // never empty: low is a proper subset of prev
				if math.IsInf(best[sub], 1) || math.IsInf(best[rest], 1) {
					if low == 0 {
						break
					}
					continue
				}
				base := best[sub] + best[rest]
				switch spec.Metric {
				case cost.Cout:
					if total := base + coutCost; total < best[s] {
						best[s] = total
						split[s] = int32(sub)
					}
				case cost.OperatorCost:
					pgSub := params.Pages(card[sub])
					pgRest := params.Pages(card[rest])
					if total := base + cost.JoinCost(spec.Op, pgSub, pgRest, params); total < best[s] {
						best[s] = total
						split[s] = int32(sub)
					}
					if total := base + cost.JoinCost(spec.Op, pgRest, pgSub, params); total < best[s] {
						best[s] = total
						split[s] = int32(rest)
					}
				}
				if low == 0 {
					break
				}
			}
			if best[s] >= cut {
				best[s] = math.Inf(1)
				pruned = true
			}
		}
	}

	if math.IsInf(best[full], 1) {
		if pruned {
			return nil, 0, ErrNoneBetter
		}
		return nil, 0, fmt.Errorf("dp: conv search found no plan (internal error)")
	}

	var build func(s int) *plan.Tree
	build = func(s int) *plan.Tree {
		if bits.OnesCount(uint(s)) == 1 {
			return plan.Leaf(bits.TrailingZeros(uint(s)))
		}
		sub := int(split[s])
		return plan.Join(build(sub), build(s^sub))
	}
	tree := build(full)
	return tree, best[full], nil
}

// nextSubsetSameCount returns the next-larger integer with the same
// popcount (Gosper's hack) — the layer iterator of the DPconv enumeration.
func nextSubsetSameCount(s int) int {
	c := s & -s
	r := s + c
	return (((r ^ s) >> 2) / c) | r
}
