// Package dp implements the classical exhaustive baselines the paper
// compares against: Selinger-style dynamic programming over table subsets
// for left-deep plans with cross products, plus an exhaustive permutation
// search (test oracle) and a greedy heuristic.
//
// Dynamic programming is deliberately *not* an anytime algorithm: it
// produces nothing until it finishes, which is exactly the behaviour the
// paper's Figure 2 contrasts with the MILP approach.
package dp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// ErrTooLarge reports that the query exceeds the subset-table budget.
var ErrTooLarge = errors.New("dp: query too large for dynamic programming")

// ErrTimeout reports that the deadline expired before DP finished. No plan
// is available in that case (DP has no anytime behaviour).
var ErrTimeout = errors.New("dp: deadline exceeded")

// Options tune the DP run.
type Options struct {
	// MaxTables guards against the 2^n memory blow-up (default 24).
	MaxTables int
	// Deadline, when nonzero, aborts the run once passed.
	Deadline time.Time
	// ChooseOperators selects the cheapest operator per join instead of
	// the Spec's fixed operator (only relevant for OperatorCost).
	ChooseOperators bool
}

func (o Options) withDefaults() Options {
	if o.MaxTables <= 0 {
		o.MaxTables = 24
	}
	return o
}

// OptimizeLeftDeep finds the cost-minimal left-deep plan (cross products
// allowed) by dynamic programming over table subsets. The subset loop
// polls the context periodically; a canceled context aborts with its error
// (DP has no anytime behaviour, so no partial plan is returned).
func OptimizeLeftDeep(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Plan, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("dp: %w", err)
	}
	opts = opts.withDefaults()
	n := q.NumTables()
	if n > opts.MaxTables {
		return nil, 0, fmt.Errorf("%w: %d tables (limit %d)", ErrTooLarge, n, opts.MaxTables)
	}
	params := spec.Params.WithDefaults()

	size := 1 << n
	card := make([]float64, size)
	best := make([]float64, size)
	choice := make([]int32, size)
	for s := range best {
		best[s] = math.Inf(1)
		choice[s] = -1
	}

	// Predicates indexed by member table, with a precomputed bitmask.
	type predInfo struct {
		mask int
		sel  float64
	}
	predsByTable := make([][]predInfo, n)
	for _, p := range q.Predicates {
		mask := 0
		for _, t := range p.Tables {
			mask |= 1 << t
		}
		for _, t := range p.Tables {
			predsByTable[t] = append(predsByTable[t], predInfo{mask: mask, sel: p.Sel})
		}
	}
	type groupInfo struct {
		mask int // union of member-predicate table sets
		corr float64
	}
	var groups []groupInfo
	for _, g := range q.Correlated {
		mask := 0
		for _, pi := range g.Predicates {
			for _, t := range q.Predicates[pi].Tables {
				mask |= 1 << t
			}
		}
		groups = append(groups, groupInfo{mask: mask, corr: g.CorrectionSel})
	}

	full := size - 1
	deadlineCheck := 0
	for s := 1; s < size; s++ {
		if deadlineCheck++; deadlineCheck&0xFFFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("dp: %w", err)
			}
			if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
				return nil, 0, ErrTimeout
			}
		}
		if bits.OnesCount(uint(s)) == 1 {
			t := bits.TrailingZeros(uint(s))
			card[s] = q.Tables[t].Card
			best[s] = 0
			continue
		}
		// Cardinality: extend s\t by the lowest table t in s.
		t := bits.TrailingZeros(uint(s))
		prev := s &^ (1 << t)
		c := card[prev] * q.Tables[t].Card
		for _, pi := range predsByTable[t] {
			if pi.mask&s == pi.mask {
				c *= pi.sel
			}
		}
		for _, g := range groups {
			if g.mask&s == g.mask && g.mask&prev != g.mask {
				// Group completed by adding t... only valid when t
				// is in the group's mask; masks missing t complete
				// earlier and were already counted.
				c *= g.corr
			}
		}
		card[s] = c

		// Left-deep recurrence: last joined table r.
		for rest := s; rest != 0; {
			r := bits.TrailingZeros(uint(rest))
			rest &^= 1 << r
			sub := s &^ (1 << r)
			if bits.OnesCount(uint(sub)) >= 1 && math.IsInf(best[sub], 1) {
				continue
			}
			var joinCost float64
			switch spec.Metric {
			case cost.Cout:
				if s != full {
					joinCost = card[s]
				}
			case cost.OperatorCost:
				pgo := params.Pages(card[sub])
				pgi := params.Pages(q.Tables[r].Card)
				if opts.ChooseOperators {
					joinCost = math.Inf(1)
					for _, op := range cost.Operators() {
						if c := cost.JoinCost(op, pgo, pgi, params); c < joinCost {
							joinCost = c
						}
					}
				} else {
					joinCost = cost.JoinCost(spec.Op, pgo, pgi, params)
				}
			}
			if total := best[sub] + joinCost; total < best[s] {
				best[s] = total
				choice[s] = int32(r)
			}
		}
	}

	if math.IsInf(best[full], 1) {
		return nil, 0, errors.New("dp: no plan found (internal error)")
	}

	// Reconstruct the join order.
	order := make([]int, n)
	s := full
	for k := n - 1; k >= 1; k-- {
		r := int(choice[s])
		order[k] = r
		s &^= 1 << r
	}
	order[0] = bits.TrailingZeros(uint(s))

	pl := &plan.Plan{Order: order}
	if opts.ChooseOperators && spec.Metric == cost.OperatorCost {
		pl.Operators = assignBestOperators(q, pl, params)
	}
	return pl, best[full], nil
}

// assignBestOperators walks a plan and picks the cheapest operator per join
// given the exact operand cardinalities.
func assignBestOperators(q *qopt.Query, pl *plan.Plan, params cost.Params) []cost.Operator {
	eval, err := plan.Evaluate(q, pl, cost.Spec{Metric: cost.OperatorCost, Op: cost.HashJoin, Params: params})
	if err != nil {
		return nil
	}
	ops := make([]cost.Operator, len(eval.Steps))
	for j, step := range eval.Steps {
		pgo := params.Pages(step.OuterCard)
		pgi := params.Pages(step.InnerCard)
		bestOp, bestCost := cost.HashJoin, math.Inf(1)
		for _, op := range cost.Operators() {
			if c := cost.JoinCost(op, pgo, pgi, params); c < bestCost {
				bestOp, bestCost = op, c
			}
		}
		ops[j] = bestOp
	}
	return ops
}

// ExhaustiveLeftDeep enumerates every permutation; a test oracle for small
// queries (n ≤ 9).
func ExhaustiveLeftDeep(q *qopt.Query, spec cost.Spec) (*plan.Plan, float64, error) {
	n := q.NumTables()
	if n > 9 {
		return nil, 0, fmt.Errorf("%w: exhaustive search limited to 9 tables", ErrTooLarge)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	bestCost := math.Inf(1)
	var bestOrder []int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			c, err := plan.Cost(q, &plan.Plan{Order: perm}, spec)
			if err == nil && c < bestCost {
				bestCost = c
				bestOrder = append([]int(nil), perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if bestOrder == nil {
		return nil, 0, errors.New("dp: exhaustive search found no plan")
	}
	return &plan.Plan{Order: bestOrder}, bestCost, nil
}

// GreedyLeftDeep builds a plan by repeatedly appending the table that
// minimizes the next intermediate result cardinality. Linear-time
// heuristic; no optimality guarantee (used as a primal-quality yardstick).
func GreedyLeftDeep(q *qopt.Query, spec cost.Spec) (*plan.Plan, float64, error) {
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	n := q.NumTables()
	used := make([]bool, n)

	// Start from the smallest table.
	start := 0
	for t := 1; t < n; t++ {
		if q.Tables[t].Card < q.Tables[start].Card {
			start = t
		}
	}
	order := []int{start}
	used[start] = true
	inSet := map[int]bool{start: true}
	curCard := q.Tables[start].Card
	applied := make([]bool, len(q.Predicates))

	for len(order) < n {
		bestT, bestCard := -1, math.Inf(1)
		for t := 0; t < n; t++ {
			if used[t] {
				continue
			}
			c := curCard * q.Tables[t].Card
			inSet[t] = true
			for pi, p := range q.Predicates {
				if !applied[pi] && tablesIn(p.Tables, inSet) {
					c *= p.Sel
				}
			}
			inSet[t] = false
			// bestT == -1 keeps the first candidate even when every
			// product has overflowed to +Inf (hundreds of tables), where
			// no strict comparison would ever pick one.
			if bestT == -1 || c < bestCard {
				bestT, bestCard = t, c
			}
		}
		used[bestT] = true
		inSet[bestT] = true
		order = append(order, bestT)
		for pi, p := range q.Predicates {
			if !applied[pi] && tablesIn(p.Tables, inSet) {
				applied[pi] = true
			}
		}
		curCard = bestCard
	}

	pl := &plan.Plan{Order: order}
	c, err := plan.Cost(q, pl, spec)
	if err != nil {
		return nil, 0, err
	}
	return pl, c, nil
}

func tablesIn(tables []int, set map[int]bool) bool {
	for _, t := range tables {
		if !set[t] {
			return false
		}
	}
	return true
}
