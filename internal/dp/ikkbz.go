package dp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// ErrNotAcyclic reports that IKKBZ was given a query whose join graph is
// not a tree (IKKBZ requires acyclic graphs).
var ErrNotAcyclic = errors.New("dp: IKKBZ requires an acyclic join graph")

// IKKBZ computes the optimal left-deep join order *without cross products*
// for a query with an acyclic (tree-shaped) join graph under the C_out
// cost model, in polynomial time — the classical algorithm of Ibaraki &
// Kameda as refined by Krishnamurthy, Boral & Zaniolo. It complements the
// exponential DP baselines: on chain and star queries it finds the same
// plans in O(n² log n).
//
// The returned cost is the plan's exact C_out (final result excluded),
// matching plan.Cost with cost.CoutSpec(). The per-root loop polls the
// context; a canceled context aborts with its error.
func IKKBZ(ctx context.Context, q *qopt.Query) (*plan.Plan, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	n := q.NumTables()

	// Build the join tree: adjacency with edge selectivities. Multiple
	// predicates between the same pair multiply; non-binary predicates
	// are rejected (they do not fit the precedence-graph model).
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = map[int]float64{}
	}
	edges := 0
	for pi, p := range q.Predicates {
		if len(p.Tables) == 1 {
			continue // unary predicates fold into effective cardinality
		}
		if !p.IsBinary() {
			return nil, 0, fmt.Errorf("dp: IKKBZ cannot handle %d-ary predicate %d", len(p.Tables), pi)
		}
		a, b := p.Tables[0], p.Tables[1]
		if _, seen := adj[a][b]; !seen {
			edges++
			adj[a][b] = 1
			adj[b][a] = 1
		}
		adj[a][b] *= p.Sel
		adj[b][a] *= p.Sel
	}
	if edges != n-1 || !connected(adj, n) {
		return nil, 0, fmt.Errorf("%w: %d tables, %d join edges", ErrNotAcyclic, n, edges)
	}

	// Effective cardinalities with unary predicates pushed down.
	card := make([]float64, n)
	for t := range card {
		card[t] = q.Tables[t].Card
	}
	for _, p := range q.Predicates {
		if len(p.Tables) == 1 {
			card[p.Tables[0]] *= p.Sel
		}
	}

	bestCost := math.Inf(1)
	var bestOrder []int
	for root := 0; root < n; root++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("dp: %w", err)
		}
		order := ikkbzForRoot(root, adj, card, n)
		c := coutOfOrder(q, order)
		if c < bestCost {
			bestCost = c
			bestOrder = order
		}
	}
	return &plan.Plan{Order: bestOrder}, bestCost, nil
}

// module is a (possibly merged) sequence of tables in the precedence tree
// with its aggregated T and C values and ASI rank.
type module struct {
	tables []int
	t      float64 // T(S) = Π s_i·n_i
	c      float64 // C(S) under the ASI recurrence
}

func (m *module) rank() float64 {
	if m.c == 0 {
		return 0
	}
	return (m.t - 1) / m.c
}

// combine concatenates two modules: C(S1 S2) = C(S1) + T(S1)·C(S2).
func combine(a, b *module) *module {
	return &module{
		tables: append(append([]int(nil), a.tables...), b.tables...),
		t:      a.t * b.t,
		c:      a.c + a.t*b.c,
	}
}

// ikkbzForRoot computes the optimal precedence-consistent order rooted at
// root by bottom-up normalization: each subtree reduces to a rank-sorted
// chain of modules, merging modules whenever rank order would violate
// precedence.
func ikkbzForRoot(root int, adj []map[int]float64, card []float64, n int) []int {
	// solve returns the chain of modules for the subtree rooted at v
	// (entered via edge with selectivity sel), excluding v's own module
	// prepended at the front.
	var solve func(v, parent int, sel float64) []*module
	solve = func(v, parent int, sel float64) []*module {
		tv := sel * card[v]
		self := &module{tables: []int{v}, t: tv, c: tv}

		// Merge the children's chains by ascending rank.
		var chains [][]*module
		for w, s := range adj[v] {
			if w != parent {
				chains = append(chains, solve(w, v, s))
			}
		}
		merged := mergeByRank(chains)

		// Normalize: the subtree's own module must precede everything;
		// absorb leading modules whose rank is smaller than the head's.
		chain := append([]*module{self}, merged...)
		return normalize(chain)
	}

	var chain []*module
	for w, s := range adj[root] {
		chain = append(chain, solve(w, root, s)...)
	}
	// Re-sort the root's merged child chains globally and normalize.
	// (solve already normalized each subtree; the top-level merge only
	// needs rank sorting, which normalize preserves.)
	sort.SliceStable(chain, func(a, b int) bool { return chain[a].rank() < chain[b].rank() })
	chain = normalize(chain)

	order := []int{root}
	for _, m := range chain {
		order = append(order, m.tables...)
	}
	return order
}

// mergeByRank merges rank-sorted chains into one rank-sorted chain.
func mergeByRank(chains [][]*module) []*module {
	var all []*module
	for _, c := range chains {
		all = append(all, c...)
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].rank() < all[b].rank() })
	return all
}

// normalize enforces non-decreasing ranks along the chain by merging
// adjacent out-of-order modules (the precedence constraint: a parent
// module must stay ahead of its descendants, which follow it in the
// chain).
func normalize(chain []*module) []*module {
	out := make([]*module, 0, len(chain))
	for _, m := range chain {
		out = append(out, m)
		for len(out) >= 2 && out[len(out)-2].rank() > out[len(out)-1].rank() {
			merged := combine(out[len(out)-2], out[len(out)-1])
			out = out[:len(out)-2]
			out = append(out, merged)
		}
	}
	return out
}

// coutOfOrder prices an order exactly (C_out, final result excluded).
func coutOfOrder(q *qopt.Query, order []int) float64 {
	c, err := planCout(q, order)
	if err != nil {
		return math.Inf(1)
	}
	return c
}

func planCout(q *qopt.Query, order []int) (float64, error) {
	return plan.Cost(q, &plan.Plan{Order: order}, cost.CoutSpec())
}

func connected(adj []map[int]float64, n int) bool {
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}
