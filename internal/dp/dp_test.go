package dp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

func TestDPMatchesExhaustive(t *testing.T) {
	specs := []cost.Spec{cost.CoutSpec(), cost.DefaultSpec()}
	for _, shape := range []workload.GraphShape{workload.Chain, workload.Cycle, workload.Star} {
		for seed := int64(0); seed < 8; seed++ {
			q := workload.Generate(shape, 6, seed, workload.Config{})
			for _, spec := range specs {
				dpPlan, dpCost, err := OptimizeLeftDeep(context.Background(), q, spec, Options{})
				if err != nil {
					t.Fatalf("%v seed %d: %v", shape, seed, err)
				}
				exPlan, exCost, err := ExhaustiveLeftDeep(q, spec)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(dpCost-exCost) > 1e-6*(1+exCost) {
					t.Fatalf("%v seed %d %v: dp %g vs exhaustive %g (dp %v, ex %v)",
						shape, seed, spec.Metric, dpCost, exCost, dpPlan.Order, exPlan.Order)
				}
				// The DP cost must equal the exact plan cost.
				recost, err := plan.Cost(q, dpPlan, spec)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(recost-dpCost) > 1e-6*(1+dpCost) {
					t.Fatalf("%v seed %d: dp reports %g but plan costs %g", shape, seed, dpCost, recost)
				}
			}
		}
	}
}

func TestDPWithCorrelatedGroups(t *testing.T) {
	q := workload.Generate(workload.Chain, 5, 3, workload.Config{})
	q.Correlated = []qopt.CorrelatedGroup{
		{Predicates: []int{0, 1}, CorrectionSel: 4},
	}
	dpPlan, dpCost, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, exCost, err := ExhaustiveLeftDeep(q, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dpCost-exCost) > 1e-6*(1+exCost) {
		t.Fatalf("dp %g vs exhaustive %g", dpCost, exCost)
	}
	if err := dpPlan.Validate(q); err != nil {
		t.Fatal(err)
	}
}

func TestDPWithNaryPredicate(t *testing.T) {
	q := workload.Generate(workload.Chain, 5, 11, workload.Config{})
	q.Predicates = append(q.Predicates, qopt.Predicate{
		Name: "tri", Tables: []int{0, 2, 4}, Sel: 0.25,
	})
	_, dpCost, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, exCost, err := ExhaustiveLeftDeep(q, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dpCost-exCost) > 1e-6*(1+exCost) {
		t.Fatalf("dp %g vs exhaustive %g", dpCost, exCost)
	}
}

func TestDPTooLarge(t *testing.T) {
	q := workload.Generate(workload.Chain, 30, 1, workload.Config{})
	_, _, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDPTimeout(t *testing.T) {
	q := workload.Generate(workload.Chain, 20, 1, workload.Config{})
	_, _, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{
		Deadline: time.Now().Add(time.Millisecond),
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDPChooseOperators(t *testing.T) {
	q := workload.Generate(workload.Star, 6, 5, workload.Config{})
	pl, c, err := OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), Options{ChooseOperators: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.Operators == nil {
		t.Fatal("no operators assigned")
	}
	// Mixed-operator cost can only be ≤ the fixed hash-join optimum.
	_, fixedCost, err := OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c > fixedCost+1e-6 {
		t.Errorf("operator choice worsened cost: %g vs %g", c, fixedCost)
	}
	// Reported cost must match the exact plan cost.
	recost, err := plan.Cost(q, pl, cost.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recost-c) > 1e-6*(1+c) {
		t.Errorf("dp reports %g, plan costs %g", c, recost)
	}
}

func TestGreedyValidAndBoundedByOptimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		q := workload.Generate(workload.Cycle, 7, seed, workload.Config{})
		gPlan, gCost, err := GreedyLeftDeep(q, cost.CoutSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := gPlan.Validate(q); err != nil {
			t.Fatalf("seed %d: greedy plan invalid: %v", seed, err)
		}
		_, optCost, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if gCost < optCost-1e-6*(1+optCost) {
			t.Fatalf("seed %d: greedy %g beats optimal %g", seed, gCost, optCost)
		}
	}
}

func TestExhaustiveGuard(t *testing.T) {
	q := workload.Generate(workload.Chain, 12, 1, workload.Config{})
	if _, _, err := ExhaustiveLeftDeep(q, cost.CoutSpec()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDPInvalidQuery(t *testing.T) {
	q := &qopt.Query{Tables: []qopt.Table{{Card: 10}}}
	if _, _, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{}); err == nil {
		t.Fatal("expected validation error")
	}
	if _, _, err := GreedyLeftDeep(q, cost.CoutSpec()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDPPlanIsValid(t *testing.T) {
	for _, n := range []int{2, 3, 5, 10, 14} {
		q := workload.Generate(workload.Star, n, int64(n), workload.Config{})
		pl, _, err := OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.Validate(q); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func BenchmarkDP15Tables(b *testing.B) {
	q := workload.Generate(workload.Star, 15, 1, workload.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBushyNeverWorseThanLeftDeep(t *testing.T) {
	for _, shape := range workload.Shapes() {
		for seed := int64(0); seed < 5; seed++ {
			q := workload.Generate(shape, 7, seed, workload.Config{})
			for _, spec := range []cost.Spec{cost.CoutSpec(), cost.DefaultSpec()} {
				_, ldCost, err := OptimizeLeftDeep(context.Background(), q, spec, Options{})
				if err != nil {
					t.Fatal(err)
				}
				tree, bCost, err := OptimizeBushy(context.Background(), q, spec, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := tree.Validate(q); err != nil {
					t.Fatalf("%v seed %d: %v", shape, seed, err)
				}
				if bCost > ldCost+1e-6*(1+ldCost) {
					t.Fatalf("%v seed %d %v: bushy %g worse than left-deep %g",
						shape, seed, spec.Metric, bCost, ldCost)
				}
				// Reported cost must match exact tree costing.
				recost, err := plan.TreeCost(q, tree, spec)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(recost-bCost) > 1e-6*(1+bCost) {
					t.Fatalf("%v seed %d: bushy reports %g, tree costs %g", shape, seed, bCost, recost)
				}
			}
		}
	}
}

func TestBushyMatchesLeftDeepOnTwoTables(t *testing.T) {
	q := workload.Generate(workload.Chain, 2, 1, workload.Config{})
	_, ld, err := OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := OptimizeBushy(context.Background(), q, cost.CoutSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld-b) > 1e-9 {
		t.Errorf("2 tables: left-deep %g vs bushy %g", ld, b)
	}
}

func TestBushyGuards(t *testing.T) {
	q := workload.Generate(workload.Chain, 22, 1, workload.Config{})
	if _, _, err := OptimizeBushy(context.Background(), q, cost.CoutSpec(), Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	q2 := workload.Generate(workload.Chain, 16, 1, workload.Config{})
	if _, _, err := OptimizeBushy(context.Background(), q2, cost.CoutSpec(), Options{Deadline: time.Now().Add(time.Millisecond)}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
