package dp

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// OptimizeBushy finds the cost-minimal bushy join tree (cross products
// allowed) by dynamic programming over table subsets, enumerating every
// split of each subset — the O(3^n) DPsub algorithm of Moerkotte & Neumann
// that the paper cites. It measures what the left-deep restriction costs.
// The subset loop polls the context; a canceled context aborts with its
// error.
func OptimizeBushy(ctx context.Context, q *qopt.Query, spec cost.Spec, opts Options) (*plan.Tree, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, fmt.Errorf("dp: %w", err)
	}
	opts = opts.withDefaults()
	if opts.MaxTables > 20 {
		opts.MaxTables = 20 // 3^n split enumeration is far steeper than 2^n
	}
	n := q.NumTables()
	if n > opts.MaxTables {
		return nil, 0, fmt.Errorf("%w: %d tables (bushy limit %d)", ErrTooLarge, n, opts.MaxTables)
	}
	params := spec.Params.WithDefaults()

	size := 1 << n
	card := make([]float64, size)
	best := make([]float64, size)
	split := make([]int32, size) // left subset of the best split; 0 for leaves
	for s := range best {
		best[s] = math.Inf(1)
	}

	type predInfo struct {
		mask int
		sel  float64
	}
	predsByTable := make([][]predInfo, n)
	for _, p := range q.Predicates {
		mask := 0
		for _, t := range p.Tables {
			mask |= 1 << t
		}
		for _, t := range p.Tables {
			predsByTable[t] = append(predsByTable[t], predInfo{mask: mask, sel: p.Sel})
		}
	}
	type groupInfo struct {
		mask int
		corr float64
	}
	var groups []groupInfo
	for _, g := range q.Correlated {
		mask := 0
		for _, pi := range g.Predicates {
			for _, t := range q.Predicates[pi].Tables {
				mask |= 1 << t
			}
		}
		groups = append(groups, groupInfo{mask: mask, corr: g.CorrectionSel})
	}

	full := size - 1
	check := 0
	for s := 1; s < size; s++ {
		if check++; check&0x3FFF == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, fmt.Errorf("dp: %w", err)
			}
			if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
				return nil, 0, ErrTimeout
			}
		}
		if bits.OnesCount(uint(s)) == 1 {
			t := bits.TrailingZeros(uint(s))
			card[s] = q.Tables[t].Card
			best[s] = 0
			continue
		}
		// Cardinality via the canonical lowest-bit chain.
		t := bits.TrailingZeros(uint(s))
		prev := s &^ (1 << t)
		c := card[prev] * q.Tables[t].Card
		for _, pi := range predsByTable[t] {
			if pi.mask&s == pi.mask {
				c *= pi.sel
			}
		}
		for _, g := range groups {
			if g.mask&s == g.mask && g.mask&prev != g.mask {
				c *= g.corr
			}
		}
		card[s] = c

		// Enumerate proper splits; (sub, s^sub) and its mirror are both
		// visited, which is fine because join cost here is symmetric
		// only for C_out — operator costs distinguish outer/inner.
		for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
			rest := s ^ sub
			if math.IsInf(best[sub], 1) || math.IsInf(best[rest], 1) {
				continue
			}
			var joinCost float64
			switch spec.Metric {
			case cost.Cout:
				if s != full {
					joinCost = card[s]
				}
			case cost.OperatorCost:
				joinCost = cost.JoinCost(spec.Op, params.Pages(card[sub]), params.Pages(card[rest]), params)
			}
			if total := best[sub] + best[rest] + joinCost; total < best[s] {
				best[s] = total
				split[s] = int32(sub)
			}
		}
	}

	if math.IsInf(best[full], 1) {
		return nil, 0, fmt.Errorf("dp: bushy search found no plan (internal error)")
	}

	var build func(s int) *plan.Tree
	build = func(s int) *plan.Tree {
		if bits.OnesCount(uint(s)) == 1 {
			return plan.Leaf(bits.TrailingZeros(uint(s)))
		}
		sub := int(split[s])
		return plan.Join(build(sub), build(s^sub))
	}
	tree := build(full)
	return tree, best[full], nil
}
