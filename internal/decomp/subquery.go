package decomp

import (
	"milpjoin/internal/qopt"
)

// subQuery extracts the induced sub-query of one partition: its tables
// (relabeled 0..k-1 in ascending global order) plus every predicate and
// correlated group living entirely inside the partition. Cut predicates
// stay with the stitcher, which applies them when their partitions meet.
// The returned localOf maps global table index -> local index (-1 when
// outside the partition).
func subQuery(q *qopt.Query, p Partition) (sub *qopt.Query, localOf []int) {
	localOf = make([]int, q.NumTables())
	for i := range localOf {
		localOf[i] = -1
	}
	sub = &qopt.Query{Tables: make([]qopt.Table, len(p.Tables))}
	for li, gi := range p.Tables {
		localOf[gi] = li
		sub.Tables[li] = q.Tables[gi]
	}
	predOf := make([]int, len(q.Predicates)) // global pred -> local pred or -1
	for i := range predOf {
		predOf[i] = -1
	}
	for pi, pred := range q.Predicates {
		inside := true
		for _, t := range pred.Tables {
			if localOf[t] == -1 {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		lp := pred // copies the slice header; rebuild Tables, drop Columns
		lp.Tables = make([]int, len(pred.Tables))
		for i, t := range pred.Tables {
			lp.Tables[i] = localOf[t]
		}
		lp.Columns = nil
		predOf[pi] = len(sub.Predicates)
		sub.Predicates = append(sub.Predicates, lp)
	}
	for _, g := range q.Correlated {
		inside := true
		lg := qopt.CorrelatedGroup{CorrectionSel: g.CorrectionSel}
		for _, pi := range g.Predicates {
			if predOf[pi] == -1 {
				inside = false
				break
			}
			lg.Predicates = append(lg.Predicates, predOf[pi])
		}
		if inside {
			sub.Correlated = append(sub.Correlated, lg)
		}
	}
	return sub, localOf
}
