package decomp

import (
	"math"
	"math/bits"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// seamWindow is the width of the re-optimized windows: 2^w subset states
// per window keeps each window solve in the tens of microseconds.
const seamWindow = 10

// seamOptimize polishes a stitched global join order by exact DP over
// sliding windows: the tables inside a window are reordered optimally
// while everything outside stays fixed. Because a left-deep plan's cost
// at every position is a function of the table SET placed so far, the
// prefix and suffix costs are invariant under any permutation of the
// window, so minimizing the window's own contribution minimizes the plan.
//
// The first pass centers windows on the partition seams (boundaries);
// later passes slide across the whole order until a pass finds nothing or
// the deadline expires. onImproved (optional) fires with the full updated
// order after every improving window. Returns the final order and whether
// any improvement was found.
func seamOptimize(q *qopt.Query, spec cost.Spec, order []int, boundaries []int, deadline time.Time, onImproved func([]int)) ([]int, bool) {
	n := len(order)
	w := seamWindow
	if w > n {
		w = n
	}
	if w < 2 {
		return order, false
	}
	sw := newSeamWalker(q, spec)
	improvedAny := false
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}

	runWindow := func(s int) bool {
		if expired() {
			return false
		}
		return sw.improveWindow(order, s, w)
	}

	// Seam-centered pass first: cut-edge predicates concentrate there.
	for _, b := range boundaries {
		s := b - w/2
		if s < 0 {
			s = 0
		}
		if s > n-w {
			s = n - w
		}
		if runWindow(s) {
			improvedAny = true
			if onImproved != nil {
				onImproved(order)
			}
		}
		if expired() {
			return order, improvedAny
		}
	}
	// Sliding passes until a full pass is dry.
	step := w / 2
	if step < 1 {
		step = 1
	}
	for {
		passImproved := false
		for s := 0; s <= n-w; s += step {
			if runWindow(s) {
				passImproved = true
				improvedAny = true
				if onImproved != nil {
					onImproved(order)
				}
			}
			if expired() {
				return order, improvedAny
			}
		}
		if !passImproved {
			return order, improvedAny
		}
	}
}

// seamWalker holds the per-query state reused across windows.
type seamWalker struct {
	q       *qopt.Query
	spec    cost.Spec
	params  cost.Params
	n       int
	predsOf [][]int // table -> incident predicate indices
	groupOf []int   // predicate -> correlated group index or -1

	// scratch, reset per window
	predLeft  []int // tables of pred not yet placed (prefix walk)
	groupLeft []int // unapplied predicates of group
}

func newSeamWalker(q *qopt.Query, spec cost.Spec) *seamWalker {
	sw := &seamWalker{
		q:         q,
		spec:      spec,
		params:    spec.Params.WithDefaults(),
		n:         q.NumTables(),
		predsOf:   make([][]int, q.NumTables()),
		groupOf:   make([]int, len(q.Predicates)),
		predLeft:  make([]int, len(q.Predicates)),
		groupLeft: make([]int, len(q.Correlated)),
	}
	for pi, p := range q.Predicates {
		for _, t := range p.Tables {
			sw.predsOf[t] = append(sw.predsOf[t], pi)
		}
		sw.groupOf[pi] = -1
	}
	for gi, g := range q.Correlated {
		for _, pi := range g.Predicates {
			sw.groupOf[pi] = gi
		}
	}
	return sw
}

// relPred is a predicate completing inside the current window; wmask is
// over window positions.
type relPred struct {
	wmask uint32
	sel   float64
	eval  float64
}

// relGroup is a correlated group completing inside the current window.
type relGroup struct {
	gmask uint32
	corr  float64
}

// window is the DP context for one [s, s+w) slice of a fixed order: the
// window-relevant predicates/groups and the set-function cardinality F.
type window struct {
	sw   *seamWalker
	s, w int
	win  []int // window tables by position
	rel  []relPred
	relG []relGroup
	// F[sub] is the cardinality of prefix ∪ {window tables in sub} with
	// every completed predicate and group applied — a pure set function.
	F []float64
}

// buildWindow computes the prefix state (cardinality, applied predicates)
// and the window-relevant predicate/group sets for order[s:s+w].
func (sw *seamWalker) buildWindow(order []int, s, w int) *window {
	q := sw.q
	for pi, p := range q.Predicates {
		sw.predLeft[pi] = len(p.Tables)
	}
	for gi, g := range q.Correlated {
		sw.groupLeft[gi] = len(g.Predicates)
	}
	prefixCard := 1.0
	for _, t := range order[:s] {
		prefixCard *= q.Tables[t].Card
		for _, pi := range sw.predsOf[t] {
			if sw.predLeft[pi]--; sw.predLeft[pi] == 0 {
				prefixCard *= q.Predicates[pi].Sel
				if gi := sw.groupOf[pi]; gi != -1 {
					if sw.groupLeft[gi]--; sw.groupLeft[gi] == 0 {
						prefixCard *= q.Correlated[gi].CorrectionSel
					}
				}
			}
		}
	}

	wd := &window{sw: sw, s: s, w: w, win: order[s : s+w]}
	posOf := map[int]int{}
	for j, t := range wd.win {
		posOf[t] = j
	}
	relOfPred := make(map[int]int)
	for pi, p := range q.Predicates {
		if sw.predLeft[pi] == 0 {
			continue
		}
		var wmask uint32
		inWin := 0
		for _, t := range p.Tables {
			if j, ok := posOf[t]; ok {
				wmask |= 1 << uint(j)
				inWin++
			}
		}
		if inWin != sw.predLeft[pi] || inWin == 0 {
			continue // completes in the suffix — invariant there
		}
		relOfPred[pi] = len(wd.rel)
		wd.rel = append(wd.rel, relPred{wmask: wmask, sel: p.Sel, eval: p.EvalCostPerTuple})
	}
	for gi, g := range q.Correlated {
		if sw.groupLeft[gi] == 0 {
			continue
		}
		var gmask uint32
		ok := true
		for _, pi := range g.Predicates {
			if sw.predLeft[pi] == 0 {
				continue
			}
			ri, in := relOfPred[pi]
			if !in {
				ok = false
				break
			}
			gmask |= wd.rel[ri].wmask
		}
		if ok {
			wd.relG = append(wd.relG, relGroup{gmask: gmask, corr: g.CorrectionSel})
		}
	}

	full := uint32(1)<<uint(w) - 1
	wd.F = make([]float64, full+1)
	wd.F[0] = prefixCard
	for sub := uint32(1); sub <= full; sub++ {
		low := bits.TrailingZeros32(sub)
		c := wd.F[sub&(sub-1)] * q.Tables[wd.win[low]].Card
		lowBit := uint32(1) << uint(low)
		for _, r := range wd.rel {
			if r.wmask&lowBit != 0 && r.wmask&^sub == 0 {
				c *= r.sel
			}
		}
		for _, g := range wd.relG {
			if g.gmask&lowBit != 0 && g.gmask&^sub == 0 {
				c *= g.corr
			}
		}
		wd.F[sub] = c
	}
	return wd
}

// stepCost prices the join of window table t (a position) into
// prefix ∪ prev. Mirrors plan.Evaluate: the first global table has no
// join, and its deferred predicates bill at the first join with the raw
// outer cardinality.
func (wd *window) stepCost(prev uint32, t int) float64 {
	sw := wd.sw
	sub := prev | 1<<uint(t)
	if wd.s == 0 && prev == 0 {
		return 0 // placing the very first table
	}
	outer := wd.F[prev]
	var deferredEval float64
	if wd.s == 0 && prev&(prev-1) == 0 { // first join: raw outer, deferred events
		first := bits.TrailingZeros32(prev)
		outer = sw.q.Tables[wd.win[first]].Card
		if sw.spec.Metric == cost.OperatorCost {
			for _, r := range wd.rel {
				if r.wmask == prev && r.eval > 0 {
					deferredEval += r.eval * outer
				}
			}
		}
	}
	switch sw.spec.Metric {
	case cost.Cout:
		if wd.s+bits.OnesCount32(sub) < sw.n {
			return wd.F[sub]
		}
		return 0
	default: // OperatorCost
		c := cost.JoinCost(sw.spec.Op, sw.params.Pages(outer), sw.params.Pages(sw.q.Tables[wd.win[t]].Card), sw.params) + deferredEval
		tBit := uint32(1) << uint(t)
		for _, r := range wd.rel {
			if r.eval > 0 && r.wmask&tBit != 0 && r.wmask&^sub == 0 {
				c += r.eval * outer
			}
		}
		return c
	}
}

// walkCost prices the window along its current position order — the
// baseline the DP must beat.
func (wd *window) walkCost() float64 {
	total := 0.0
	var sub uint32
	for j := range wd.win {
		total += wd.stepCost(sub, j)
		sub |= 1 << uint(j)
	}
	return total
}

// improveWindow re-optimizes order[s:s+w] in place; reports improvement.
func (sw *seamWalker) improveWindow(order []int, s, w int) bool {
	wd := sw.buildWindow(order, s, w)
	curCost := wd.walkCost()

	full := uint32(1)<<uint(w) - 1
	best := make([]float64, full+1)
	parent := make([]int8, full+1)
	for sub := uint32(1); sub <= full; sub++ {
		best[sub] = math.Inf(1)
		for m := sub; m != 0; m &= m - 1 {
			t := bits.TrailingZeros32(m)
			prev := sub &^ (1 << uint(t))
			if c := best[prev] + wd.stepCost(prev, t); c < best[sub] {
				best[sub] = c
				parent[sub] = int8(t)
			}
		}
	}
	if !(best[full] < curCost && curCost-best[full] > 1e-9*math.Max(1, math.Abs(curCost))) {
		return false
	}
	perm := make([]int, 0, w)
	for sub := full; sub != 0; {
		t := int(parent[sub])
		perm = append(perm, t)
		sub &^= 1 << uint(t)
	}
	tables := make([]int, w)
	for i, j := 0, len(perm)-1; j >= 0; i, j = i+1, j-1 {
		tables[i] = wd.win[perm[j]]
	}
	copy(order[s:s+w], tables)
	return true
}
