package decomp

import (
	"context"
	"math"
	"testing"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

func specs() []cost.Spec {
	return []cost.Spec{
		{Metric: cost.Cout, Params: cost.Params{}.WithDefaults()},
		{Metric: cost.OperatorCost, Op: cost.HashJoin, Params: cost.Params{}.WithDefaults()},
	}
}

// enrich adds the features the generators omit — a unary predicate on
// table 0, an expensive predicate, and a correlated group with a
// correction above 1 — so the coster equivalence tests exercise every
// branch of plan.Evaluate.
func enrich(q *qopt.Query) *qopt.Query {
	q.Predicates[0].EvalCostPerTuple = 2.5
	q.Predicates = append(q.Predicates, qopt.Predicate{Tables: []int{0}, Sel: 0.5, EvalCostPerTuple: 1.5})
	if len(q.Predicates) >= 3 {
		q.Correlated = append(q.Correlated, qopt.CorrelatedGroup{
			Predicates:    []int{0, 1},
			CorrectionSel: 1.4,
		})
	}
	return q
}

func perms(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range perms(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// stitchTotal walks a partition permutation through appendCost.
func stitchTotal(st *stitcher, order []int) float64 {
	var (
		mask   uint64
		card   float64
		placed int
		total  float64
	)
	for _, p := range order {
		add, ncard := st.appendCost(mask, p, card, placed)
		total += add
		card = ncard
		mask |= 1 << uint(p)
		placed += st.sizes[p]
	}
	return total
}

// TestStitchAppendCostMatchesPlanCost: the stitcher's incremental coster
// must agree with plan.Cost on every partition permutation — it is the
// objective the quotient DP minimizes, so any drift silently misorders.
func TestStitchAppendCostMatchesPlanCost(t *testing.T) {
	shapes := []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle, workload.Clique, workload.Transitive, workload.Snowflake}
	for _, shape := range shapes {
		for seed := int64(1); seed <= 3; seed++ {
			q := enrich(workload.Generate(shape, 9, seed, workload.Config{}))
			parts := partitionGraph(q, 3)
			orders := make([][]int, len(parts))
			for i, p := range parts {
				orders[i] = append([]int(nil), p.Tables...)
			}
			for _, spec := range specs() {
				st := newStitcher(q, spec, orders)
				for _, po := range perms(len(parts)) {
					got := stitchTotal(st, po)
					want, err := plan.Cost(q, &plan.Plan{Order: st.concat(po)}, spec)
					if err != nil {
						t.Fatalf("%v seed %d: plan.Cost: %v", shape, seed, err)
					}
					if relDiff(got, want) > 1e-9 {
						t.Fatalf("%v seed %d %v perm %v: stitch cost %g, plan.Cost %g",
							shape, seed, spec.Metric, po, got, want)
					}
				}
			}
		}
	}
}

// TestStitchSingleTableFirstPartition: a size-1 first partition must not
// drop the deferred unary-predicate events of its table.
func TestStitchSingleTableFirstPartition(t *testing.T) {
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 1000}, {Card: 500}, {Card: 200}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0}, Sel: 0.25, EvalCostPerTuple: 3},
			{Tables: []int{1, 2}, Sel: 0.1},
		},
	}
	orders := [][]int{{0}, {1, 2}}
	for _, spec := range specs() {
		st := newStitcher(q, spec, orders)
		for _, po := range [][]int{{0, 1}, {1, 0}} {
			got := stitchTotal(st, po)
			want, err := plan.Cost(q, &plan.Plan{Order: st.concat(po)}, spec)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(got, want) > 1e-12 {
				t.Fatalf("%v perm %v: stitch %g, plan.Cost %g", spec.Metric, po, got, want)
			}
		}
	}
}

// TestOrderDPIsOptimalOverPermutations: the quotient DP must land on the
// cheapest permutation exactly.
func TestOrderDPIsOptimalOverPermutations(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		q := enrich(workload.Generate(workload.Star, 10, seed, workload.Config{}))
		parts := partitionGraph(q, 4)
		if len(parts) > 8 {
			t.Fatalf("seed %d: %d partitions, brute force too large", seed, len(parts))
		}
		orders := make([][]int, len(parts))
		for i, p := range parts {
			orders[i] = append([]int(nil), p.Tables...)
		}
		for _, spec := range specs() {
			st := newStitcher(q, spec, orders)
			po, ok := st.orderDP(time.Time{})
			if !ok {
				t.Fatal("orderDP gave up without a deadline")
			}
			got := stitchTotal(st, po)
			best := math.Inf(1)
			for _, cand := range perms(len(parts)) {
				if c := stitchTotal(st, cand); c < best {
					best = c
				}
			}
			if relDiff(got, best) > 1e-9 {
				t.Fatalf("seed %d %v: DP cost %g, brute force %g", seed, spec.Metric, got, best)
			}
			greedy := stitchTotal(st, st.orderGreedy())
			if greedy < got && relDiff(greedy, got) > 1e-9 {
				t.Fatalf("seed %d %v: greedy %g beat DP %g", seed, spec.Metric, greedy, got)
			}
		}
	}
}

// TestSeamFullWindowFindsLeftDeepOptimum: with the window covering the
// whole order, the seam DP is a complete left-deep search and must match
// the brute-force optimum under plan.Cost. (dp.OptimizeLeftDeep is NOT
// the ground truth here: its objective omits expensive-predicate
// evaluation costs, which the enriched queries deliberately include.)
func TestSeamFullWindowFindsLeftDeepOptimum(t *testing.T) {
	const n = 7
	for _, shape := range []workload.GraphShape{workload.Chain, workload.Star, workload.Clique} {
		for seed := int64(1); seed <= 3; seed++ {
			q := enrich(workload.Generate(shape, n, seed, workload.Config{}))
			for _, spec := range specs() {
				order := []int{0, 1, 2, 3, 4, 5, 6}
				order, _ = seamOptimize(q, spec, order, nil, time.Time{}, nil)
				got, err := plan.Cost(q, &plan.Plan{Order: order}, spec)
				if err != nil {
					t.Fatal(err)
				}
				want := math.Inf(1)
				for _, perm := range perms(n) {
					if c, cerr := plan.Cost(q, &plan.Plan{Order: perm}, spec); cerr == nil && c < want {
						want = c
					}
				}
				if relDiff(got, want) > 1e-9 {
					t.Fatalf("%v seed %d %v: seam %g, brute force %g", shape, seed, spec.Metric, got, want)
				}
			}
		}
	}
}

// TestSeamNeverWorsens: whatever the starting order, the seam loop's
// result prices no worse than the input.
func TestSeamNeverWorsens(t *testing.T) {
	q := enrich(workload.Generate(workload.Transitive, 24, 7, workload.Config{}))
	for _, spec := range specs() {
		order := make([]int, 24)
		for i := range order {
			order[i] = 24 - 1 - i
		}
		before, err := plan.Cost(q, &plan.Plan{Order: append([]int(nil), order...)}, spec)
		if err != nil {
			t.Fatal(err)
		}
		order, improved := seamOptimize(q, spec, order, []int{8, 16}, time.Time{}, nil)
		after, err := plan.Cost(q, &plan.Plan{Order: order}, spec)
		if err != nil {
			t.Fatal(err)
		}
		if after > before*(1+1e-12) {
			t.Fatalf("%v: seam worsened %g -> %g", spec.Metric, before, after)
		}
		if improved && after >= before {
			t.Fatalf("%v: claimed improvement but %g -> %g", spec.Metric, before, after)
		}
	}
}

// TestPartitionGraphProperties: exact cover, cap respected, deterministic,
// and tree carves keep partitions connected.
func TestPartitionGraphProperties(t *testing.T) {
	shapes := []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle, workload.Clique, workload.Transitive, workload.Snowflake}
	for _, shape := range shapes {
		for _, tc := range []struct{ n, cap int }{{10, 4}, {30, 8}, {120, 15}} {
			q := workload.Generate(shape, tc.n, 11, workload.Config{})
			parts := partitionGraph(q, tc.cap)
			seen := make([]int, tc.n)
			for _, p := range parts {
				if len(p.Tables) > tc.cap {
					t.Fatalf("%v n=%d: partition size %d over cap %d", shape, tc.n, len(p.Tables), tc.cap)
				}
				for _, tb := range p.Tables {
					seen[tb]++
				}
			}
			for tb, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("%v n=%d: table %d covered %d times", shape, tc.n, tb, cnt)
				}
			}
			again := partitionGraph(q, tc.cap)
			if len(again) != len(parts) {
				t.Fatalf("%v n=%d: nondeterministic partition count", shape, tc.n)
			}
			for i := range parts {
				if len(parts[i].Tables) != len(again[i].Tables) {
					t.Fatalf("%v n=%d: nondeterministic partition %d", shape, tc.n, i)
				}
				for j := range parts[i].Tables {
					if parts[i].Tables[j] != again[i].Tables[j] {
						t.Fatalf("%v n=%d: nondeterministic partition %d", shape, tc.n, i)
					}
				}
			}
		}
	}
	// Packing keeps the quotient small: at most one partition may end
	// smaller than half the cap, so P stays below 2·n/cap + 1.
	for _, shape := range []workload.GraphShape{workload.Star, workload.Snowflake, workload.Transitive} {
		q := workload.Generate(shape, 120, 3, workload.Config{})
		parts := partitionGraph(q, 15)
		if limit := 2*(120/15) + 1; len(parts) > limit {
			t.Fatalf("%v: %d partitions for n=120 cap=15, want <= %d", shape, len(parts), limit)
		}
	}
}

// TestLowerBoundValid: the cherry bound must sit at or below the exact
// bushy optimum — the whole point is that hybrid's reported bound is
// valid over the full plan space.
func TestLowerBoundValid(t *testing.T) {
	shapes := []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle, workload.Clique}
	for _, shape := range shapes {
		for seed := int64(1); seed <= 5; seed++ {
			q := workload.Generate(shape, 8, seed, workload.Config{})
			if seed%2 == 0 {
				enrich(q)
			}
			for _, spec := range specs() {
				lb := lowerBound(q, spec, false)
				_, c, err := dp.OptimizeConv(context.Background(), q, spec, dp.ConvOptions{})
				if err != nil {
					t.Fatalf("%v seed %d: dpconv: %v", shape, seed, err)
				}
				if lb > c*(1+1e-9) {
					t.Fatalf("%v seed %d %v: bound %g above bushy optimum %g", shape, seed, spec.Metric, lb, c)
				}
				if math.IsInf(lb, 0) || math.IsNaN(lb) || lb < 0 {
					t.Fatalf("%v seed %d %v: bound %g not finite and non-negative", shape, seed, spec.Metric, lb)
				}
			}
		}
	}
}

// TestSubQueryRelabel: internal predicates and groups survive relabeling.
func TestSubQueryRelabel(t *testing.T) {
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 10}, {Card: 20}, {Card: 30}, {Card: 40}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 2}, Sel: 0.1},
			{Tables: []int{2, 3}, Sel: 0.2},
			{Tables: []int{1, 2}, Sel: 0.3}, // cut: table 1 outside
			{Tables: []int{3}, Sel: 0.4},
		},
		Correlated: []qopt.CorrelatedGroup{
			{Predicates: []int{0, 1}, CorrectionSel: 1.2},
			{Predicates: []int{1, 2}, CorrectionSel: 0.8}, // crosses the cut
		},
	}
	sub, localOf := subQuery(q, Partition{Tables: []int{0, 2, 3}})
	if len(sub.Tables) != 3 || sub.Tables[1].Card != 30 {
		t.Fatalf("tables misrelabeled: %+v", sub.Tables)
	}
	if localOf[1] != -1 || localOf[2] != 1 {
		t.Fatalf("localOf wrong: %v", localOf)
	}
	if len(sub.Predicates) != 3 {
		t.Fatalf("want 3 internal predicates, got %d", len(sub.Predicates))
	}
	if got := sub.Predicates[0].Tables; got[0] != 0 || got[1] != 1 {
		t.Fatalf("predicate 0 relabeled to %v", got)
	}
	if len(sub.Correlated) != 1 || sub.Correlated[0].CorrectionSel != 1.2 {
		t.Fatalf("correlated groups wrong: %+v", sub.Correlated)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("sub-query invalid: %v", err)
	}
}

// TestOptimizeEndToEnd: the multi-partition pipeline returns a valid
// feasible plan, a finite bound at or below the cost, and a monotone
// improvement trajectory ending at the final cost.
func TestOptimizeEndToEnd(t *testing.T) {
	for _, shape := range []workload.GraphShape{workload.Snowflake, workload.Transitive} {
		q := workload.Generate(shape, 40, 5, workload.Config{})
		for _, spec := range specs() {
			var trajectory []float64
			res, err := Optimize(context.Background(), q, Options{
				Spec:         spec,
				PartitionCap: 8,
				Deadline:     time.Now().Add(5 * time.Second),
				OnImprovement: func(pl *plan.Plan, c float64) {
					trajectory = append(trajectory, c)
				},
			})
			if err != nil {
				t.Fatalf("%v %v: %v", shape, spec.Metric, err)
			}
			if err := res.Plan.Validate(q); err != nil {
				t.Fatalf("%v %v: invalid plan: %v", shape, spec.Metric, err)
			}
			c, err := plan.Cost(q, res.Plan, spec)
			if err != nil || relDiff(c, res.Cost) > 1e-9 {
				t.Fatalf("%v %v: reported cost %g, plan.Cost %g (%v)", shape, spec.Metric, res.Cost, c, err)
			}
			if math.IsInf(res.Bound, 0) || math.IsNaN(res.Bound) || res.Bound < 0 {
				t.Fatalf("%v %v: bound %g not finite", shape, spec.Metric, res.Bound)
			}
			if res.Bound > res.Cost*(1+1e-9) {
				t.Fatalf("%v %v: bound %g above cost %g", shape, spec.Metric, res.Bound, res.Cost)
			}
			total := 0
			for _, s := range res.PartitionSizes {
				total += s
			}
			if total != 40 || len(res.PartitionSizes) < 2 {
				t.Fatalf("%v %v: partition sizes %v", shape, spec.Metric, res.PartitionSizes)
			}
			if len(trajectory) == 0 {
				t.Fatalf("%v %v: no improvements published", shape, spec.Metric)
			}
			for i := 1; i < len(trajectory); i++ {
				if trajectory[i] > trajectory[i-1]*(1+1e-12) {
					t.Fatalf("%v %v: trajectory not monotone: %v", shape, spec.Metric, trajectory)
				}
			}
			if relDiff(trajectory[len(trajectory)-1], res.Cost) > 1e-9 {
				t.Fatalf("%v %v: last improvement %g != final cost %g", shape, spec.Metric, trajectory[len(trajectory)-1], res.Cost)
			}
		}
	}
}

// TestOptimizeSinglePartitionExact: a query under the cap takes the exact
// path — the bound is the bushy optimum and the plan prices at or above
// it, with Optimal set on equality.
func TestOptimizeSinglePartitionExact(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		q := workload.Generate(workload.Star, 8, seed, workload.Config{})
		for _, spec := range specs() {
			res, err := Optimize(context.Background(), q, Options{Spec: spec})
			if err != nil {
				t.Fatal(err)
			}
			_, bushy, err := dp.OptimizeConv(context.Background(), q, spec, dp.ConvOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(res.Bound, bushy) > 1e-9 {
				t.Fatalf("seed %d %v: bound %g, bushy optimum %g", seed, spec.Metric, res.Bound, bushy)
			}
			if res.Cost < res.Bound*(1-1e-9) {
				t.Fatalf("seed %d %v: cost %g below bound %g", seed, spec.Metric, res.Cost, res.Bound)
			}
			if res.Optimal && relDiff(res.Cost, res.Bound) > 1e-9 {
				t.Fatalf("seed %d %v: Optimal but cost %g != bound %g", seed, spec.Metric, res.Cost, res.Bound)
			}
			if len(res.PartitionSizes) != 1 || res.PartitionSizes[0] != 8 {
				t.Fatalf("seed %d: partition sizes %v", seed, res.PartitionSizes)
			}
		}
	}
}

// TestOptimizeMILPPartitionPath: partitions above DPCap route through the
// per-partition MILP; the stitched result must still be valid and priced
// exactly.
func TestOptimizeMILPPartitionPath(t *testing.T) {
	q := workload.Generate(workload.Snowflake, 24, 3, workload.Config{})
	spec := cost.Spec{Metric: cost.Cout, Params: cost.Params{}.WithDefaults()}
	res, err := Optimize(context.Background(), q, Options{
		Spec:         spec,
		PartitionCap: 8,
		DPCap:        4, // push most partitions onto the MILP path
		Deadline:     time.Now().Add(10 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	c, err := plan.Cost(q, res.Plan, spec)
	if err != nil || relDiff(c, res.Cost) > 1e-9 {
		t.Fatalf("reported cost %g, plan.Cost %g (%v)", res.Cost, c, err)
	}
	if res.Bound > res.Cost*(1+1e-9) {
		t.Fatalf("bound %g above cost %g", res.Bound, res.Cost)
	}
}

// TestOptimizeFeasibleUnderTinyDeadline: an already-expired budget still
// yields a valid plan via the greedy fallbacks.
func TestOptimizeFeasibleUnderTinyDeadline(t *testing.T) {
	q := workload.Generate(workload.Snowflake, 60, 9, workload.Config{})
	res, err := Optimize(context.Background(), q, Options{
		Spec:         cost.Spec{Metric: cost.Cout, Params: cost.Params{}.WithDefaults()},
		PartitionCap: 10,
		Deadline:     time.Now().Add(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatalf("invalid plan under tiny deadline: %v", err)
	}
	if math.IsInf(res.Cost, 0) || math.IsNaN(res.Cost) || res.Cost <= 0 {
		t.Fatalf("cost %g", res.Cost)
	}
}
