package decomp

import (
	"math"
	"math/bits"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// quotientDPMax bounds the exact DP over partition orderings: 2^P subset
// states stay cheap up to here, and beyond it the greedy ordering takes
// over (still using the same exact incremental coster).
const quotientDPMax = 16

// maxPartitions is the stitcher's hard ceiling: partition sets are
// tracked in 64-bit masks, so the decomposer merges down to at most 64
// partitions before stitching.
const maxPartitions = 64

// predEvent marks a predicate completing while one partition is appended:
// at local step within that partition's internal order, provided every
// partition in required was already placed.
type predEvent struct {
	pred     int
	step     int
	required uint64
}

// groupEvent is the same for a correlated group: the group's correction
// applies at the step where its last predicate completes.
type groupEvent struct {
	group    int
	step     int
	required uint64
}

// stitcher orders fixed partition-internal join orders into one global
// left-deep plan. Its incremental coster mirrors plan.Evaluate exactly —
// cardinalities are per table set, predicates and correlation corrections
// apply at the join where they first complete, C_out excludes the final
// result, operator costs price outer/inner pages per join — so the cost
// it minimizes is the cost plan.Cost reports for the stitched plan.
type stitcher struct {
	q      *qopt.Query
	spec   cost.Spec
	params cost.Params
	n      int
	orders [][]int // per partition: global table ids in join order
	sizes  []int
	preds  [][][]predEvent  // [partition][step] -> completing predicates
	groups [][][]groupEvent // [partition][step] -> completing groups
}

func newStitcher(q *qopt.Query, spec cost.Spec, orders [][]int) *stitcher {
	st := &stitcher{
		q:      q,
		spec:   spec,
		params: spec.Params.WithDefaults(),
		n:      q.NumTables(),
		orders: orders,
		sizes:  make([]int, len(orders)),
	}
	partOf := make([]int, st.n)
	stepOf := make([]int, st.n)
	for p, ord := range orders {
		st.sizes[p] = len(ord)
		for j, t := range ord {
			partOf[t], stepOf[t] = p, j
		}
	}
	st.preds = make([][][]predEvent, len(orders))
	st.groups = make([][][]groupEvent, len(orders))
	for p := range orders {
		st.preds[p] = make([][]predEvent, len(orders[p]))
		st.groups[p] = make([][]groupEvent, len(orders[p]))
	}
	// A predicate completes while partition p is appended iff p holds one
	// of its tables and all its other partitions are already placed; the
	// step is the last of its tables inside p. Register one event per
	// candidate "last partition" — exactly one fires per append chain.
	predMask := make([]uint64, len(q.Predicates))
	for pi, pred := range q.Predicates {
		var pmask uint64
		for _, t := range pred.Tables {
			pmask |= 1 << uint(partOf[t])
		}
		predMask[pi] = pmask
		for m := pmask; m != 0; m &= m - 1 {
			p := bits.TrailingZeros64(m)
			last := 0
			for _, t := range pred.Tables {
				if partOf[t] == p && stepOf[t] > last {
					last = stepOf[t]
				}
			}
			st.preds[p][last] = append(st.preds[p][last], predEvent{
				pred:     pi,
				step:     last,
				required: pmask &^ (1 << uint(p)),
			})
		}
	}
	for gi, g := range q.Correlated {
		var gmask uint64
		for _, pi := range g.Predicates {
			gmask |= predMask[pi]
		}
		for m := gmask; m != 0; m &= m - 1 {
			p := bits.TrailingZeros64(m)
			last := 0
			for _, pi := range g.Predicates {
				if predMask[pi]&(1<<uint(p)) == 0 {
					continue
				}
				for _, t := range q.Predicates[pi].Tables {
					if partOf[t] == p && stepOf[t] > last {
						last = stepOf[t]
					}
				}
			}
			st.groups[p][last] = append(st.groups[p][last], groupEvent{
				group:    gi,
				step:     last,
				required: gmask &^ (1 << uint(p)),
			})
		}
	}
	return st
}

// appendCost walks partition p's internal order appended after the
// partitions in placedMask (placed tables so far, entry cardinality card)
// and returns the added plan cost plus the new running cardinality.
// Events on the very first global table are deferred to the first join,
// exactly as plan.Evaluate applies predicates only at joins; when the
// first partition was a single table, its deferred events are rebuilt
// here (they are a function of the mask alone, so DP states stay valid).
func (st *stitcher) appendCost(placedMask uint64, p int, card float64, placed int) (float64, float64) {
	var (
		add      float64
		pendSel  float64 = 1
		pendEval float64
		pending  bool
	)
	if placed == 1 {
		p0 := bits.TrailingZeros64(placedMask)
		for _, ev := range st.preds[p0][0] {
			if ev.required == 0 {
				pendSel *= st.q.Predicates[ev.pred].Sel
				pendEval += st.q.Predicates[ev.pred].EvalCostPerTuple
				pending = true
			}
		}
		for _, ev := range st.groups[p0][0] {
			if ev.required == 0 {
				pendSel *= st.q.Correlated[ev.group].CorrectionSel
				pending = true
			}
		}
	}
	for j, t := range st.orders[p] {
		tcard := st.q.Tables[t].Card
		if placed == 0 && j == 0 {
			card = tcard
			for _, ev := range st.preds[p][0] {
				if ev.required&^placedMask == 0 {
					pendSel *= st.q.Predicates[ev.pred].Sel
					pendEval += st.q.Predicates[ev.pred].EvalCostPerTuple
					pending = true
				}
			}
			for _, ev := range st.groups[p][0] {
				if ev.required&^placedMask == 0 {
					pendSel *= st.q.Correlated[ev.group].CorrectionSel
					pending = true
				}
			}
			continue
		}
		outer := card
		res := outer * tcard
		var evalCost float64
		if pending {
			res *= pendSel
			evalCost += pendEval * outer
			pendSel, pendEval, pending = 1, 0, false
		}
		for _, ev := range st.preds[p][j] {
			if ev.required&^placedMask == 0 {
				res *= st.q.Predicates[ev.pred].Sel
				if ec := st.q.Predicates[ev.pred].EvalCostPerTuple; ec > 0 {
					evalCost += ec * outer
				}
			}
		}
		for _, ev := range st.groups[p][j] {
			if ev.required&^placedMask == 0 {
				res *= st.q.Correlated[ev.group].CorrectionSel
			}
		}
		switch st.spec.Metric {
		case cost.Cout:
			if placed+j+1 < st.n {
				add += res
			}
		default: // OperatorCost
			add += cost.JoinCost(st.spec.Op, st.params.Pages(outer), st.params.Pages(tcard), st.params) + evalCost
		}
		card = res
	}
	return add, card
}

// orderDP finds the exact-cost-minimal partition ordering by DP over
// partition subsets (cardinality per subset is order-independent, so the
// state is just the mask). Returns ok=false when the deadline expires
// mid-search; the caller falls back to orderGreedy.
func (st *stitcher) orderDP(deadline time.Time) ([]int, bool) {
	P := len(st.orders)
	full := uint64(1)<<uint(P) - 1
	costs := make([]float64, full+1)
	cards := make([]float64, full+1)
	parent := make([]int8, full+1)
	placedOf := make([]int, full+1)
	for m := uint64(1); m <= full; m++ {
		costs[m] = math.Inf(1)
		parent[m] = -1
		low := bits.TrailingZeros64(m)
		placedOf[m] = placedOf[m&(m-1)] + st.sizes[low]
	}
	checkEvery := 0
	for mask := uint64(0); mask < full; mask++ {
		if costs[mask] == math.Inf(1) && mask != 0 {
			continue
		}
		if checkEvery++; checkEvery&1023 == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return nil, false
		}
		for p := 0; p < P; p++ {
			bit := uint64(1) << uint(p)
			if mask&bit != 0 {
				continue
			}
			add, ncard := st.appendCost(mask, p, cards[mask], placedOf[mask])
			nm := mask | bit
			if nc := costs[mask] + add; nc < costs[nm] {
				costs[nm] = nc
				cards[nm] = ncard
				parent[nm] = int8(p)
			}
		}
	}
	order := make([]int, 0, P)
	for m := full; m != 0; {
		p := int(parent[m])
		if p < 0 {
			// Every path overflowed to +Inf, so no parent chain exists;
			// the greedy fallback still produces a deterministic order.
			return nil, false
		}
		order = append(order, p)
		m &^= uint64(1) << uint(p)
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, true
}

// orderGreedy picks, at every step, the unplaced partition with the
// cheapest exact incremental cost (ties on the lower index) — the
// fallback when the quotient is too large or the DP ran out of budget.
func (st *stitcher) orderGreedy() []int {
	P := len(st.orders)
	var (
		mask   uint64
		card   float64
		placed int
		order  []int
	)
	for len(order) < P {
		best, bestAdd, bestCard := -1, math.Inf(1), 0.0
		for p := 0; p < P; p++ {
			if mask&(uint64(1)<<uint(p)) != 0 {
				continue
			}
			add, ncard := st.appendCost(mask, p, card, placed)
			// best == -1 keeps the first candidate even when every
			// appended cost has overflowed to +Inf, where no strict
			// comparison would ever pick one.
			if best == -1 || add < bestAdd {
				best, bestAdd, bestCard = p, add, ncard
			}
		}
		order = append(order, best)
		mask |= 1 << uint(best)
		card = bestCard
		placed += st.sizes[best]
	}
	return order
}

// concat builds the global join order for a partition ordering.
func (st *stitcher) concat(partOrder []int) []int {
	out := make([]int, 0, st.n)
	for _, p := range partOrder {
		out = append(out, st.orders[p]...)
	}
	return out
}
