package decomp

import (
	"math"
	"sort"

	"milpjoin/internal/qopt"
)

// Partition is one piece of the decomposed join graph: a sorted list of
// global table indices, connected in the join graph whenever the graph
// allows it.
type Partition struct {
	Tables []int
}

// graph is the weighted join graph over binary predicates: parallel
// predicates between the same pair accumulate onto one edge whose weight
// is Σ -log10(sel) — the "join strength". Strong (selective) edges are
// kept inside partitions; weak edges near cross products are the cheap
// ones to cut and re-derive during stitching.
type graph struct {
	n   int
	adj []map[int]float64
}

func buildGraph(q *qopt.Query) *graph {
	g := &graph{n: q.NumTables(), adj: make([]map[int]float64, q.NumTables())}
	for i := range g.adj {
		g.adj[i] = map[int]float64{}
	}
	for _, p := range q.Predicates {
		if !p.IsBinary() {
			continue
		}
		a, b := p.Tables[0], p.Tables[1]
		w := -math.Log10(p.Sel) + 1e-6 // an edge at sel=1 still counts as connected
		g.adj[a][b] += w
		g.adj[b][a] += w
	}
	return g
}

// isForest reports whether the deduplicated binary-predicate graph is
// acyclic (parallel predicates between one pair do not count as a cycle).
func (g *graph) isForest() bool {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for a := 0; a < g.n; a++ {
		for b := range g.adj[a] {
			if b <= a {
				continue
			}
			ra, rb := find(a), find(b)
			if ra == rb {
				return false
			}
			parent[ra] = rb
		}
	}
	return true
}

// neighbors returns a's adjacency sorted by descending weight, ties on
// the lower index — the deterministic growth order.
func (g *graph) neighbors(a int) []int {
	out := make([]int, 0, len(g.adj[a]))
	for b := range g.adj[a] {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := g.adj[a][out[i]], g.adj[a][out[j]]
		if wi != wj {
			return wi > wj
		}
		return out[i] < out[j]
	})
	return out
}

// partitionGraph cuts the join graph into connected partitions of at most
// cap tables. Forests get the exact tree carve (each cut removes one
// edge); cyclic graphs grow partitions greedily along the strongest
// edges. Tables with no binary predicate at all (pure cross products)
// are appended round-robin to the smallest partitions. The result is
// deterministic for a given query.
func partitionGraph(q *qopt.Query, cap int) []Partition {
	g := buildGraph(q)
	var parts [][]int
	if g.isForest() {
		parts = carveForest(g, cap)
	} else {
		parts = growPartitions(g, cap)
	}
	// Distribute isolated tables (no binary edges) onto the smallest
	// partitions without breaching the cap, opening new partitions when
	// everything is full.
	var isolated []int
	assigned := make([]bool, g.n)
	for _, p := range parts {
		for _, t := range p {
			assigned[t] = true
		}
	}
	for t := 0; t < g.n; t++ {
		if !assigned[t] {
			isolated = append(isolated, t)
		}
	}
	for _, t := range isolated {
		best := -1
		for i := range parts {
			if len(parts[i]) >= cap {
				continue
			}
			if best == -1 || len(parts[i]) < len(parts[best]) {
				best = i
			}
		}
		if best == -1 {
			parts = append(parts, []int{t})
		} else {
			parts[best] = append(parts[best], t)
		}
	}
	// Pack: tree carves and isolated spreading can leave many small
	// partitions (a star carves into the hub bag plus singleton leaves);
	// merging the smallest pairs under the cap keeps the quotient small
	// enough for the exact stitch DP. At termination at most one
	// partition is smaller than half the cap.
	for len(parts) >= 2 {
		sort.Slice(parts, func(i, j int) bool {
			if len(parts[i]) != len(parts[j]) {
				return len(parts[i]) < len(parts[j])
			}
			return parts[i][0] < parts[j][0]
		})
		if len(parts[0])+len(parts[1]) > cap {
			break
		}
		parts[1] = append(parts[1], parts[0]...)
		parts = parts[1:]
	}
	out := make([]Partition, len(parts))
	for i, p := range parts {
		sort.Ints(p)
		out[i] = Partition{Tables: p}
	}
	return out
}

// carveForest is the tree/edge-cut decomposition: a post-order walk that
// accumulates subtrees and emits a connected partition whenever merging a
// child's bag would breach the cap — every emitted partition corresponds
// to cutting exactly one tree edge. Roots are chosen at each component's
// highest-degree vertex (the snowflake hub), so hubs anchor partitions
// instead of dangling off one.
func carveForest(g *graph, cap int) [][]int {
	var parts [][]int
	visited := make([]bool, g.n)
	var visit func(v, parent int) []int
	visit = func(v, parent int) []int {
		visited[v] = true
		bag := []int{v}
		for _, c := range g.neighbors(v) {
			if c == parent || visited[c] {
				continue
			}
			sub := visit(c, v)
			if len(bag)+len(sub) <= cap {
				bag = append(bag, sub...)
			} else {
				parts = append(parts, sub)
			}
		}
		return bag
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := len(g.adj[order[i]]), len(g.adj[order[j]])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	for _, root := range order {
		if visited[root] || len(g.adj[root]) == 0 {
			continue
		}
		if bag := visit(root, -1); len(bag) > 0 {
			parts = append(parts, bag)
		}
	}
	return parts
}

// growPartitions handles cyclic graphs: seed at the highest weighted
// degree unassigned vertex, then repeatedly absorb the unassigned
// neighbor with the strongest total connection to the partition, up to
// the cap.
func growPartitions(g *graph, cap int) [][]int {
	assigned := make([]bool, g.n)
	degree := make([]float64, g.n)
	for a := 0; a < g.n; a++ {
		for _, w := range g.adj[a] {
			degree[a] += w
		}
	}
	var parts [][]int
	for {
		seed := -1
		for t := 0; t < g.n; t++ {
			if assigned[t] || len(g.adj[t]) == 0 {
				continue
			}
			if seed == -1 || degree[t] > degree[seed] {
				seed = t
			}
		}
		if seed == -1 {
			break
		}
		part := []int{seed}
		assigned[seed] = true
		// conn[t] is t's total edge weight into the growing partition.
		conn := map[int]float64{}
		absorb := func(v int) {
			for b, w := range g.adj[v] {
				if !assigned[b] {
					conn[b] += w
				}
			}
			delete(conn, v)
		}
		absorb(seed)
		for len(part) < cap && len(conn) > 0 {
			next, bw := -1, math.Inf(-1)
			for b, w := range conn {
				if w > bw || (w == bw && b < next) {
					next, bw = b, w
				}
			}
			part = append(part, next)
			assigned[next] = true
			absorb(next)
		}
		parts = append(parts, part)
	}
	return parts
}
