// Package decomp implements the hybrid graph-decomposition pipeline for
// queries too large for one monolithic MILP or exact DP: partition the
// join graph along its weakest edges, solve each partition independently
// under a divided time budget (exact DP for small partitions, the MILP
// for larger ones), stitch the partition plans into one global left-deep
// plan with an exact DP over the partition quotient graph, and spend the
// leftover budget re-optimizing seam windows around the cuts. The result
// is always a feasible plan plus a finite, exact-space-valid lower bound
// (the cherry bound, or the bushy optimum when one exact solve covered
// the whole query).
package decomp

import (
	"context"
	"fmt"
	"sort"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
)

// Default knobs; zero values in Options resolve to these.
const (
	DefaultPartitionCap = 15
	DefaultSeamFrac     = 0.25
	DefaultDPCap        = 13

	// defaultMILPBudget is the per-partition MILP time limit when the
	// caller set no global deadline; minMILPBudget is the floor under a
	// tight deadline so every partition still gets a real solve attempt.
	defaultMILPBudget = 3 * time.Second
	minMILPBudget     = 50 * time.Millisecond
)

// Options configure one hybrid optimization run. The hybrid pipeline
// prices Spec.Op uniformly (operator annotations are not chosen per
// join); callers wanting per-join operator choice should post-process.
type Options struct {
	// Spec is the exact costing specification (metric, operator, params).
	Spec cost.Spec
	// PartitionCap bounds partition size (0: DefaultPartitionCap; min 2).
	PartitionCap int
	// SeamFrac is the fraction of the remaining budget reserved for seam
	// re-optimization after partition solves and stitching (0: default).
	SeamFrac float64
	// DPCap is the largest partition solved by exact DP instead of the
	// MILP (0: DefaultDPCap).
	DPCap int
	// Deadline bounds the whole run (zero: per-partition defaults only).
	Deadline time.Time
	// MILP templates the per-partition MILP encoder options (precision,
	// threshold ratio, cardinality cap). Metric, operator, cost params,
	// plan injection, and callbacks are overridden per partition.
	MILP core.Options
	// Params templates the per-partition solver parameters (gap
	// tolerance, threads). Time limits and callbacks are overridden.
	Params solver.Params
	// OnImprovement receives every new best global plan with its exact
	// cost: the first stitched plan, then each improving seam window.
	OnImprovement func(*plan.Plan, float64)
}

func (o Options) withDefaults() Options {
	if o.PartitionCap <= 0 {
		o.PartitionCap = DefaultPartitionCap
	}
	if o.PartitionCap < 2 {
		o.PartitionCap = 2
	}
	if o.SeamFrac <= 0 {
		o.SeamFrac = DefaultSeamFrac
	}
	if o.SeamFrac >= 1 {
		o.SeamFrac = DefaultSeamFrac
	}
	if o.DPCap <= 0 {
		o.DPCap = DefaultDPCap
	}
	if o.DPCap > 20 {
		o.DPCap = 20 // dpconv's hard ceiling
	}
	return o
}

// Result is the outcome of a hybrid run.
type Result struct {
	// Plan is the stitched (and seam-polished) global left-deep plan.
	Plan *plan.Plan
	// Cost is Plan's exact cost under the Spec.
	Cost float64
	// Bound is a valid lower bound on every plan (bushy included): the
	// exact optimum when a single exact solve covered the query, else
	// the cherry bound.
	Bound float64
	// PartitionSizes lists the decomposition (len 1: no decomposition).
	PartitionSizes []int
	// SeamImproved reports whether seam re-optimization beat the stitch.
	SeamImproved bool
	// Optimal reports Cost == Bound (only possible via the exact path).
	Optimal bool
	// TimedOut reports the deadline or context cut the run short.
	TimedOut bool
}

// Optimize runs the hybrid decomposition pipeline. It always returns a
// feasible plan for a valid query: every stage (partition solve, stitch,
// seam) has a greedy fallback under deadline pressure.
func Optimize(ctx context.Context, q *qopt.Query, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	parts := partitionGraph(q, opts.PartitionCap)
	// The stitcher tracks partitions in a 64-bit mask: pathologically
	// small caps get their smallest partitions merged (cap overridden).
	for len(parts) > maxPartitions {
		sort.Slice(parts, func(i, j int) bool { return len(parts[i].Tables) < len(parts[j].Tables) })
		merged := append(parts[0].Tables, parts[1].Tables...)
		sort.Ints(merged)
		parts = append(parts[2:], Partition{Tables: merged})
	}
	sizes := make([]int, len(parts))
	for i, p := range parts {
		sizes[i] = len(p.Tables)
	}

	if len(parts) == 1 {
		return optimizeWhole(ctx, q, opts, sizes)
	}

	res := &Result{PartitionSizes: sizes}

	// Budget split: the seam fraction of whatever remains is reserved
	// for the polish loop; partition solves share the rest weighted by
	// expected effort (exact DP 1, MILP 3), recomputed as solves finish.
	now := time.Now()
	var solveDeadline time.Time
	hasDeadline := !opts.Deadline.IsZero()
	if hasDeadline {
		remaining := time.Until(opts.Deadline)
		solveDeadline = now.Add(time.Duration((1 - opts.SeamFrac) * float64(remaining)))
	}
	weight := func(p Partition) float64 {
		if len(p.Tables) <= opts.DPCap {
			return 1
		}
		return 3
	}
	weightLeft := 0.0
	for _, p := range parts {
		weightLeft += weight(p)
	}

	orders := make([][]int, len(parts))
	for i, p := range parts {
		var partDeadline time.Time
		if hasDeadline {
			left := time.Until(solveDeadline)
			if left < 0 {
				left = 0
			}
			share := time.Duration(float64(left) * weight(p) / weightLeft)
			partDeadline = time.Now().Add(share)
		}
		weightLeft -= weight(p)
		if ctx.Err() != nil || (hasDeadline && time.Now().After(solveDeadline)) {
			// Out of solve budget: greedy for everything left.
			res.TimedOut = true
			orders[i] = greedyOrder(q, p, opts.Spec)
			continue
		}
		orders[i] = solvePartition(ctx, q, p, opts, partDeadline)
	}

	st := newStitcher(q, opts.Spec, orders)
	var partOrder []int
	if len(parts) <= quotientDPMax {
		var ok bool
		partOrder, ok = st.orderDP(solveDeadline)
		if !ok {
			partOrder = st.orderGreedy()
		}
	} else {
		partOrder = st.orderGreedy()
	}
	order := st.concat(partOrder)

	bestPlan := &plan.Plan{Order: append([]int(nil), order...)}
	bestCost, err := plan.Cost(q, bestPlan, opts.Spec)
	if err != nil {
		return nil, fmt.Errorf("decomp: costing stitched plan: %w", err)
	}
	if opts.OnImprovement != nil {
		opts.OnImprovement(clonePlan(bestPlan), bestCost)
	}

	// Seam polish with whatever budget is left. Window improvements can
	// sit below the exact coster's floating-point resolution on huge
	// C_out values, so the published (and returned) trajectory is gated
	// on a strict decrease of the recomputed exact cost.
	if ctx.Err() == nil && (!hasDeadline || time.Now().Before(opts.Deadline)) {
		boundaries := make([]int, 0, len(partOrder)-1)
		at := 0
		for _, p := range partOrder[:len(partOrder)-1] {
			at += st.sizes[p]
			boundaries = append(boundaries, at)
		}
		order, _ = seamOptimize(q, opts.Spec, order, boundaries, opts.Deadline, func(cur []int) {
			p2 := &plan.Plan{Order: append([]int(nil), cur...)}
			if c2, cerr := plan.Cost(q, p2, opts.Spec); cerr == nil && c2 < bestCost {
				bestPlan, bestCost = p2, c2
				res.SeamImproved = true
				if opts.OnImprovement != nil {
					opts.OnImprovement(clonePlan(p2), c2)
				}
			}
		})
		finalPlan := &plan.Plan{Order: order}
		if fc, cerr := plan.Cost(q, finalPlan, opts.Spec); cerr == nil && fc < bestCost {
			bestPlan, bestCost = finalPlan, fc
			res.SeamImproved = true
			if opts.OnImprovement != nil {
				opts.OnImprovement(clonePlan(finalPlan), fc)
			}
		}
	}
	if hasDeadline && time.Now().After(opts.Deadline) {
		res.TimedOut = true
	}

	res.Plan = bestPlan
	res.Cost = bestCost
	res.Bound = lowerBound(q, opts.Spec, false)
	res.Optimal = res.Cost <= res.Bound*(1+1e-9) // only degenerate cases
	return res, nil
}

// optimizeWhole handles the single-partition case: the query fits one
// exact or MILP solve, so no stitching is needed and the bound can be
// tight (the bushy optimum) on the exact path.
func optimizeWhole(ctx context.Context, q *qopt.Query, opts Options, sizes []int) (*Result, error) {
	n := q.NumTables()
	res := &Result{PartitionSizes: sizes}
	if n <= opts.DPCap {
		tree, c, err := dp.OptimizeConv(ctx, q, opts.Spec, dp.ConvOptions{
			Options: dp.Options{MaxTables: 20, Deadline: opts.Deadline},
		})
		if err == nil {
			// The DP objective is a valid bound over every plan (it
			// underprices only by the non-negative expensive-predicate
			// terms), but the reported cost is always plan.Cost.
			res.Bound = c
			pl := flattenTree(tree, opts.Spec.Metric)
			if pl == nil {
				if ldPl, _, lerr := dp.OptimizeLeftDeep(ctx, q, opts.Spec, dp.Options{Deadline: opts.Deadline}); lerr == nil {
					pl = ldPl
				}
			}
			if pl != nil {
				exact, cerr := plan.Cost(q, pl, opts.Spec)
				if cerr != nil {
					return nil, fmt.Errorf("decomp: costing exact plan: %w", cerr)
				}
				res.Plan, res.Cost = pl, exact
				res.Optimal = exact <= c*(1+1e-9)
				if opts.OnImprovement != nil {
					opts.OnImprovement(clonePlan(res.Plan), res.Cost)
				}
				return res, nil
			}
		}
		// Exact path timed out or produced no left-deep plan: greedy.
		res.TimedOut = true
		return finishGreedy(q, opts, res)
	}

	// MILP over the whole (small enough to encode) query.
	mopts, params := partitionMILPConfig(opts)
	if !opts.Deadline.IsZero() {
		if left := time.Until(opts.Deadline); left > 0 {
			params.TimeLimit = left
		} else {
			res.TimedOut = true
			return finishGreedy(q, opts, res)
		}
	}
	mres, err := core.Optimize(ctx, q, mopts, params)
	if err == nil && mres.Plan != nil {
		res.Plan = mres.Plan
		if res.Cost, err = plan.Cost(q, mres.Plan, opts.Spec); err == nil {
			res.Bound = lowerBound(q, opts.Spec, false)
			if opts.OnImprovement != nil {
				opts.OnImprovement(clonePlan(res.Plan), res.Cost)
			}
			return res, nil
		}
	}
	res.TimedOut = ctx.Err() != nil
	return finishGreedy(q, opts, res)
}

// solvePartition produces a join order (global table ids) for one
// partition: exact DP when it fits, the MILP with its budget share
// otherwise, greedy whenever either fails.
func solvePartition(ctx context.Context, q *qopt.Query, p Partition, opts Options, deadline time.Time) []int {
	if len(p.Tables) == 1 {
		return []int{p.Tables[0]}
	}
	sub, _ := subQuery(q, p)
	var localPlan *plan.Plan
	if len(p.Tables) <= opts.DPCap {
		tree, _, err := dp.OptimizeConv(ctx, sub, opts.Spec, dp.ConvOptions{
			Options: dp.Options{MaxTables: 20, Deadline: deadline},
		})
		if err == nil {
			localPlan = flattenTree(tree, opts.Spec.Metric)
		}
		if localPlan == nil {
			if pl, _, lerr := dp.OptimizeLeftDeep(ctx, sub, opts.Spec, dp.Options{Deadline: deadline}); lerr == nil {
				localPlan = pl
			}
		}
	} else {
		mopts, params := partitionMILPConfig(opts)
		if deadline.IsZero() {
			params.TimeLimit = defaultMILPBudget
		} else {
			params.TimeLimit = time.Until(deadline)
			if params.TimeLimit < minMILPBudget {
				params.TimeLimit = minMILPBudget
			}
		}
		if mres, err := core.Optimize(ctx, sub, mopts, params); err == nil && mres.Plan != nil {
			localPlan = mres.Plan
		}
	}
	if localPlan == nil {
		if pl, _, err := dp.GreedyLeftDeep(sub, opts.Spec); err == nil {
			localPlan = pl
		}
	}
	if localPlan == nil { // cannot happen for a valid sub-query; stay safe
		return append([]int(nil), p.Tables...)
	}
	out := make([]int, len(localPlan.Order))
	for j, li := range localPlan.Order {
		out[j] = p.Tables[li]
	}
	return out
}

// partitionMILPConfig instantiates the per-partition MILP options and
// solver params from the templates: uniform operator pricing, no plan
// injection, no callbacks.
func partitionMILPConfig(opts Options) (core.Options, solver.Params) {
	mopts := opts.MILP
	mopts.Metric = opts.Spec.Metric
	mopts.Op = opts.Spec.Op
	mopts.CostParams = opts.Spec.Params
	mopts.ChooseOperators = false
	mopts.InitialPlan = nil
	mopts.Incumbents = nil
	params := opts.Params
	params.OnImprovement = nil
	params.OnEvent = nil
	params.InitialSolution = nil
	params.Incumbents = nil
	return mopts, params
}

// greedyOrder is the zero-budget fallback for one partition.
func greedyOrder(q *qopt.Query, p Partition, spec cost.Spec) []int {
	if len(p.Tables) == 1 {
		return []int{p.Tables[0]}
	}
	sub, _ := subQuery(q, p)
	pl, _, err := dp.GreedyLeftDeep(sub, spec)
	if err != nil {
		return append([]int(nil), p.Tables...)
	}
	out := make([]int, len(pl.Order))
	for j, li := range pl.Order {
		out[j] = p.Tables[li]
	}
	return out
}

// finishGreedy fills Result with the greedy plan — the last-resort path
// that keeps "always a feasible plan" true under any budget.
func finishGreedy(q *qopt.Query, opts Options, res *Result) (*Result, error) {
	pl, _, err := dp.GreedyLeftDeep(q, opts.Spec)
	if err != nil {
		return nil, fmt.Errorf("decomp: greedy fallback: %w", err)
	}
	c, err := plan.Cost(q, pl, opts.Spec)
	if err != nil {
		return nil, fmt.Errorf("decomp: costing greedy fallback: %w", err)
	}
	res.Plan, res.Cost = pl, c
	if res.Bound == 0 {
		res.Bound = lowerBound(q, opts.Spec, false)
	}
	if opts.OnImprovement != nil {
		opts.OnImprovement(clonePlan(pl), c)
	}
	return res, nil
}

// flattenTree converts a linear bushy tree into the cost-equivalent
// left-deep plan (nil for genuinely bushy shapes). Under C_out a join is
// orientation-blind, so chains where every join has a leaf child flatten;
// under operator costs only strict left-deep shapes qualify.
func flattenTree(t *plan.Tree, metric cost.Metric) *plan.Plan {
	if t == nil {
		return nil
	}
	var rev []int
	n := t
	for !n.IsLeaf() {
		switch {
		case n.Right.IsLeaf():
			rev = append(rev, n.Right.Table)
			n = n.Left
		case metric == cost.Cout && n.Left.IsLeaf():
			rev = append(rev, n.Left.Table)
			n = n.Right
		default:
			return nil
		}
	}
	rev = append(rev, n.Table)
	order := make([]int, len(rev))
	for i, tb := range rev {
		order[len(rev)-1-i] = tb
	}
	return &plan.Plan{Order: order}
}

func clonePlan(p *plan.Plan) *plan.Plan {
	cp := &plan.Plan{Order: append([]int(nil), p.Order...)}
	if p.Operators != nil {
		cp.Operators = append([]cost.Operator(nil), p.Operators...)
	}
	return cp
}
