package decomp

import (
	"math"
	"sort"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// lowerBound computes a finite, provably valid lower bound on the cost of
// ANY complete join tree (bushy included) — the guarantee the hybrid
// strategy reports when the query is too large for an exact or MILP proof.
//
// C_out: every join tree over n >= 3 leaves counts n-2 intermediate
// results (all internal nodes except the root), and each intermediate's
// cardinality is bounded below by the "optimistic subset" relaxation: let
// v_i = card_i · Π sel_p over every predicate p incident to table i. For
// any table set S with |S| >= 2, card(S) >= Π_{i in S} v_i (each inside
// predicate is applied at most twice, each cut predicate at most its
// arity — selectivities are <= 1 so extra applications only shrink the
// product). Minimizing over S gives v(1)·v(2)·Π_{i>=3} min(1, v(i)) with
// v sorted ascending, times every shrinking (< 1) correlation
// correction. The bound is weak but finite and exact-space valid.
//
// Operator cost: every one of the n-1 joins moves at least one page per
// operand, so the total is at least (n-1) times the cheapest possible
// single join (cheapest operator when operator choice is on).
func lowerBound(q *qopt.Query, spec cost.Spec, chooseOperators bool) float64 {
	n := q.NumTables()
	params := spec.Params.WithDefaults()
	if spec.Metric == cost.OperatorCost {
		ops := []cost.Operator{spec.Op}
		if chooseOperators {
			ops = cost.Operators()
		}
		minJoin := math.Inf(1)
		for _, op := range ops {
			if c := cost.JoinCost(op, 1, 1, params); c < minJoin {
				minJoin = c
			}
		}
		return float64(n-1) * minJoin
	}
	// C_out below.
	if n < 3 {
		return 0 // only the excluded final result exists
	}
	v := make([]float64, n)
	for i, t := range q.Tables {
		v[i] = t.Card
	}
	for _, p := range q.Predicates {
		for _, t := range p.Tables {
			v[t] *= p.Sel
		}
	}
	sort.Float64s(v)
	lb := v[0] * v[1]
	for _, x := range v[2:] {
		if x < 1 {
			lb *= x
		}
	}
	for _, g := range q.Correlated {
		if g.CorrectionSel < 1 {
			lb *= g.CorrectionSel
		}
	}
	return float64(n-2) * lb
}
