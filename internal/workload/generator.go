// Package workload generates random join queries following the method of
// Steinbrunn, Moerkotte & Kemper ("Heuristic and randomized optimization
// for the join ordering problem", VLDBJ 1997), which the paper uses for its
// experimental evaluation: chain, cycle, and star join graph shapes with
// log-uniform table cardinalities and uniform predicate selectivities.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"milpjoin/internal/qopt"
)

// GraphShape selects the join graph structure.
type GraphShape int

const (
	// Chain connects table i to table i+1.
	Chain GraphShape = iota
	// Cycle is a chain plus an edge closing the loop.
	Cycle
	// Star connects table 0 (the hub / fact table) to every other table.
	Star
	// Clique connects every pair of tables (not used by the paper's
	// evaluation, provided for completeness).
	Clique
	// Snowflake is a fact table joined to dimension chains: table 0 is
	// the hub, connected to the root of each branch, and every branch is
	// a short chain (depth ~3) of further dimension tables — the
	// large-graph shape of the hybrid-decomposition evaluation
	// (Schönberger & Trummer). The fact table's cardinality is drawn
	// from the top of the configured range so it dominates like a real
	// fact table.
	Snowflake
	// Transitive is a chain with shortcut predicates (i, i+2) layered on
	// top, the "transitive-heavy" pattern of queries whose join
	// predicates partially imply one another: many small cycles, cut
	// edges everywhere.
	Transitive
)

// String names the shape.
func (g GraphShape) String() string {
	switch g {
	case Chain:
		return "chain"
	case Cycle:
		return "cycle"
	case Star:
		return "star"
	case Clique:
		return "clique"
	case Snowflake:
		return "snowflake"
	case Transitive:
		return "transitive"
	default:
		return fmt.Sprintf("GraphShape(%d)", int(g))
	}
}

// Shapes lists the three join graph structures of the paper's evaluation.
func Shapes() []GraphShape { return []GraphShape{Chain, Cycle, Star} }

// Config tunes the generator. The zero value yields paper-like queries.
type Config struct {
	// MinLogCard/MaxLogCard bound log10 of table cardinalities;
	// cardinalities are log-uniform in [10^min, 10^max].
	// Defaults: 1 and 5 (10 … 100,000 rows).
	MinLogCard, MaxLogCard float64
	// MinSel/MaxSel bound predicate selectivities, drawn uniformly.
	// Defaults: 0.0001 and 1.
	MinSel, MaxSel float64
	// Columns, when true, also generates per-table columns for the
	// projection extension.
	Columns bool
}

func (c Config) withDefaults() Config {
	if c.MinLogCard == 0 && c.MaxLogCard == 0 {
		c.MinLogCard, c.MaxLogCard = 1, 5
	}
	if c.MinSel == 0 && c.MaxSel == 0 {
		c.MinSel, c.MaxSel = 0.0001, 1
	}
	return c
}

// Generate builds a random query with n tables and the given join graph
// shape, deterministically from seed.
func Generate(shape GraphShape, n int, seed int64, cfg Config) *qopt.Query {
	if n < 2 {
		panic(fmt.Sprintf("workload: need at least 2 tables, got %d", n))
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	q := &qopt.Query{}
	for i := 0; i < n; i++ {
		lc := cfg.MinLogCard + rng.Float64()*(cfg.MaxLogCard-cfg.MinLogCard)
		card := math.Round(math.Pow(10, lc))
		if card < 1 {
			card = 1
		}
		q.Tables = append(q.Tables, qopt.Table{
			Name: fmt.Sprintf("T%d", i),
			Card: card,
		})
	}

	addPred := func(a, b int) {
		q.Predicates = append(q.Predicates, qopt.Predicate{
			Name:   fmt.Sprintf("p%d", len(q.Predicates)),
			Tables: []int{a, b},
			Sel:    cfg.MinSel + rng.Float64()*(cfg.MaxSel-cfg.MinSel),
		})
	}

	switch shape {
	case Chain:
		for i := 0; i+1 < n; i++ {
			addPred(i, i+1)
		}
	case Cycle:
		for i := 0; i+1 < n; i++ {
			addPred(i, i+1)
		}
		addPred(n-1, 0)
	case Star:
		for i := 1; i < n; i++ {
			addPred(0, i)
		}
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				addPred(i, j)
			}
		}
	case Snowflake:
		// ceil((n-1)/3) branches of depth <= 3: table i hangs off the
		// hub while a full level fits, then off the same-position table
		// one level up. The hub's cardinality is forced to the top decade
		// of the range so joins touching it are the expensive ones.
		lc := cfg.MaxLogCard - 1 + rng.Float64()
		if hub := math.Round(math.Pow(10, lc)); hub > q.Tables[0].Card {
			q.Tables[0].Card = hub
		}
		branches := (n - 1 + 2) / 3
		for i := 1; i < n; i++ {
			if i <= branches {
				addPred(0, i)
			} else {
				addPred(i-branches, i)
			}
		}
	case Transitive:
		for i := 0; i+1 < n; i++ {
			addPred(i, i+1)
		}
		for i := 0; i+2 < n; i++ {
			addPred(i, i+2)
		}
	default:
		panic(fmt.Sprintf("workload: unknown shape %v", shape))
	}

	if cfg.Columns {
		for i := 0; i < n; i++ {
			cols := 2 + rng.Intn(5)
			for c := 0; c < cols; c++ {
				q.Columns = append(q.Columns, qopt.Column{
					Name:     fmt.Sprintf("T%d.c%d", i, c),
					Table:    i,
					Bytes:    float64(4 * (1 + rng.Intn(16))),
					Required: c == 0, // first column of each table is in the output
				})
			}
		}
	}
	return q
}
