package workload

import (
	"math"
	"testing"
)

func TestShapesEdgeCounts(t *testing.T) {
	for _, tc := range []struct {
		shape GraphShape
		n     int
		want  int
	}{
		{Chain, 5, 4},
		{Cycle, 5, 5},
		{Star, 5, 4},
		{Clique, 5, 10},
		{Chain, 2, 1},
		{Cycle, 2, 2}, // degenerate cycle: two parallel predicates
		{Star, 2, 1},
	} {
		q := Generate(tc.shape, tc.n, 1, Config{})
		if got := len(q.Predicates); got != tc.want {
			t.Errorf("%v n=%d: %d predicates, want %d", tc.shape, tc.n, got, tc.want)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%v n=%d: invalid query: %v", tc.shape, tc.n, err)
		}
	}
}

func TestChainStructure(t *testing.T) {
	q := Generate(Chain, 6, 3, Config{})
	for i, p := range q.Predicates {
		if p.Tables[0] != i || p.Tables[1] != i+1 {
			t.Errorf("chain predicate %d connects %v", i, p.Tables)
		}
	}
}

func TestStarStructure(t *testing.T) {
	q := Generate(Star, 6, 3, Config{})
	for i, p := range q.Predicates {
		if p.Tables[0] != 0 {
			t.Errorf("star predicate %d does not touch hub: %v", i, p.Tables)
		}
		if p.Tables[1] != i+1 {
			t.Errorf("star predicate %d connects %v", i, p.Tables)
		}
	}
}

func TestCycleClosesLoop(t *testing.T) {
	q := Generate(Cycle, 6, 3, Config{})
	last := q.Predicates[len(q.Predicates)-1]
	if last.Tables[0] != 5 || last.Tables[1] != 0 {
		t.Errorf("cycle closing edge = %v", last.Tables)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Star, 8, 42, Config{})
	b := Generate(Star, 8, 42, Config{})
	for i := range a.Tables {
		if a.Tables[i].Card != b.Tables[i].Card {
			t.Fatalf("table %d cardinality differs across runs with same seed", i)
		}
	}
	for i := range a.Predicates {
		if a.Predicates[i].Sel != b.Predicates[i].Sel {
			t.Fatalf("predicate %d selectivity differs across runs with same seed", i)
		}
	}
	c := Generate(Star, 8, 43, Config{})
	same := true
	for i := range a.Tables {
		if a.Tables[i].Card != c.Tables[i].Card {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cardinalities")
	}
}

func TestConfigBoundsRespected(t *testing.T) {
	cfg := Config{MinLogCard: 2, MaxLogCard: 3, MinSel: 0.5, MaxSel: 0.9}
	for seed := int64(0); seed < 20; seed++ {
		q := Generate(Chain, 10, seed, cfg)
		for _, tb := range q.Tables {
			if tb.Card < 99 || tb.Card > 1001 {
				t.Fatalf("cardinality %g outside [100, 1000]", tb.Card)
			}
		}
		for _, p := range q.Predicates {
			if p.Sel < 0.5 || p.Sel > 0.9 {
				t.Fatalf("selectivity %g outside [0.5, 0.9]", p.Sel)
			}
		}
	}
}

func TestDefaultsProducePaperLikeRanges(t *testing.T) {
	q := Generate(Chain, 30, 7, Config{})
	minC, maxC := math.Inf(1), math.Inf(-1)
	for _, tb := range q.Tables {
		minC = math.Min(minC, tb.Card)
		maxC = math.Max(maxC, tb.Card)
	}
	if minC < 10 || maxC > 100000 {
		t.Errorf("cardinalities [%g, %g] outside default [10, 100000]", minC, maxC)
	}
}

func TestColumnsGeneration(t *testing.T) {
	q := Generate(Star, 5, 9, Config{Columns: true})
	if len(q.Columns) == 0 {
		t.Fatal("no columns generated")
	}
	perTable := map[int]int{}
	required := map[int]bool{}
	for _, c := range q.Columns {
		perTable[c.Table]++
		if c.Required {
			required[c.Table] = true
		}
		if c.Bytes <= 0 {
			t.Errorf("column %s has bytes %g", c.Name, c.Bytes)
		}
	}
	for i := 0; i < 5; i++ {
		if perTable[i] < 2 {
			t.Errorf("table %d has %d columns, want ≥ 2", i, perTable[i])
		}
		if !required[i] {
			t.Errorf("table %d has no required column", i)
		}
	}
}

func TestGeneratePanicsOnTinyQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	Generate(Chain, 1, 0, Config{})
}

func TestShapeStrings(t *testing.T) {
	if Chain.String() != "chain" || Cycle.String() != "cycle" || Star.String() != "star" || Clique.String() != "clique" {
		t.Error("shape strings wrong")
	}
	if len(Shapes()) != 3 {
		t.Error("Shapes() should list the paper's three structures")
	}
}

// TestShapesConnectedProperty: every generated join graph is connected —
// required for plans without cross products to exist at all.
func TestShapesConnectedProperty(t *testing.T) {
	for _, shape := range []GraphShape{Chain, Cycle, Star, Clique} {
		for seed := int64(0); seed < 10; seed++ {
			n := 2 + int(seed)%12
			q := Generate(shape, n, seed, Config{})
			adj := make([][]int, n)
			for _, e := range q.JoinGraphEdges() {
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
			}
			seen := make([]bool, n)
			stack := []int{0}
			seen[0] = true
			count := 1
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						count++
						stack = append(stack, w)
					}
				}
			}
			if count != n {
				t.Fatalf("%v n=%d seed %d: join graph disconnected (%d of %d reachable)", shape, n, seed, count, n)
			}
		}
	}
}
