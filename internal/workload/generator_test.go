package workload

import (
	"math"
	"testing"
)

func TestShapesEdgeCounts(t *testing.T) {
	for _, tc := range []struct {
		shape GraphShape
		n     int
		want  int
	}{
		{Chain, 5, 4},
		{Cycle, 5, 5},
		{Star, 5, 4},
		{Clique, 5, 10},
		{Chain, 2, 1},
		{Cycle, 2, 2}, // degenerate cycle: two parallel predicates
		{Star, 2, 1},
		{Snowflake, 10, 9}, // a tree: always n-1 edges
		{Snowflake, 120, 119},
		{Snowflake, 2, 1},
		{Transitive, 5, 7}, // chain (n-1) + shortcuts (n-2)
		{Transitive, 2, 1},
	} {
		q := Generate(tc.shape, tc.n, 1, Config{})
		if got := len(q.Predicates); got != tc.want {
			t.Errorf("%v n=%d: %d predicates, want %d", tc.shape, tc.n, got, tc.want)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%v n=%d: invalid query: %v", tc.shape, tc.n, err)
		}
	}
}

func TestChainStructure(t *testing.T) {
	q := Generate(Chain, 6, 3, Config{})
	for i, p := range q.Predicates {
		if p.Tables[0] != i || p.Tables[1] != i+1 {
			t.Errorf("chain predicate %d connects %v", i, p.Tables)
		}
	}
}

func TestStarStructure(t *testing.T) {
	q := Generate(Star, 6, 3, Config{})
	for i, p := range q.Predicates {
		if p.Tables[0] != 0 {
			t.Errorf("star predicate %d does not touch hub: %v", i, p.Tables)
		}
		if p.Tables[1] != i+1 {
			t.Errorf("star predicate %d connects %v", i, p.Tables)
		}
	}
}

func TestCycleClosesLoop(t *testing.T) {
	q := Generate(Cycle, 6, 3, Config{})
	last := q.Predicates[len(q.Predicates)-1]
	if last.Tables[0] != 5 || last.Tables[1] != 0 {
		t.Errorf("cycle closing edge = %v", last.Tables)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Star, 8, 42, Config{})
	b := Generate(Star, 8, 42, Config{})
	for i := range a.Tables {
		if a.Tables[i].Card != b.Tables[i].Card {
			t.Fatalf("table %d cardinality differs across runs with same seed", i)
		}
	}
	for i := range a.Predicates {
		if a.Predicates[i].Sel != b.Predicates[i].Sel {
			t.Fatalf("predicate %d selectivity differs across runs with same seed", i)
		}
	}
	c := Generate(Star, 8, 43, Config{})
	same := true
	for i := range a.Tables {
		if a.Tables[i].Card != c.Tables[i].Card {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical cardinalities")
	}
}

func TestConfigBoundsRespected(t *testing.T) {
	cfg := Config{MinLogCard: 2, MaxLogCard: 3, MinSel: 0.5, MaxSel: 0.9}
	for seed := int64(0); seed < 20; seed++ {
		q := Generate(Chain, 10, seed, cfg)
		for _, tb := range q.Tables {
			if tb.Card < 99 || tb.Card > 1001 {
				t.Fatalf("cardinality %g outside [100, 1000]", tb.Card)
			}
		}
		for _, p := range q.Predicates {
			if p.Sel < 0.5 || p.Sel > 0.9 {
				t.Fatalf("selectivity %g outside [0.5, 0.9]", p.Sel)
			}
		}
	}
}

func TestDefaultsProducePaperLikeRanges(t *testing.T) {
	q := Generate(Chain, 30, 7, Config{})
	minC, maxC := math.Inf(1), math.Inf(-1)
	for _, tb := range q.Tables {
		minC = math.Min(minC, tb.Card)
		maxC = math.Max(maxC, tb.Card)
	}
	if minC < 10 || maxC > 100000 {
		t.Errorf("cardinalities [%g, %g] outside default [10, 100000]", minC, maxC)
	}
}

func TestColumnsGeneration(t *testing.T) {
	q := Generate(Star, 5, 9, Config{Columns: true})
	if len(q.Columns) == 0 {
		t.Fatal("no columns generated")
	}
	perTable := map[int]int{}
	required := map[int]bool{}
	for _, c := range q.Columns {
		perTable[c.Table]++
		if c.Required {
			required[c.Table] = true
		}
		if c.Bytes <= 0 {
			t.Errorf("column %s has bytes %g", c.Name, c.Bytes)
		}
	}
	for i := 0; i < 5; i++ {
		if perTable[i] < 2 {
			t.Errorf("table %d has %d columns, want ≥ 2", i, perTable[i])
		}
		if !required[i] {
			t.Errorf("table %d has no required column", i)
		}
	}
}

func TestGeneratePanicsOnTinyQuery(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n < 2")
		}
	}()
	Generate(Chain, 1, 0, Config{})
}

func TestShapeStrings(t *testing.T) {
	if Chain.String() != "chain" || Cycle.String() != "cycle" || Star.String() != "star" || Clique.String() != "clique" {
		t.Error("shape strings wrong")
	}
	if Snowflake.String() != "snowflake" || Transitive.String() != "transitive" {
		t.Error("large-graph shape strings wrong")
	}
	if len(Shapes()) != 3 {
		t.Error("Shapes() should list the paper's three structures")
	}
}

// TestSnowflakeStructure: table 0 is the hub with the largest role — its
// cardinality sits in the top decade — every non-hub table has exactly one
// parent, and branch depth stays at most 3.
func TestSnowflakeStructure(t *testing.T) {
	for _, n := range []int{10, 100, 150, 200} {
		q := Generate(Snowflake, n, 5, Config{})
		if q.Tables[0].Card < 1e4 {
			t.Errorf("n=%d: hub cardinality %g below the top decade", n, q.Tables[0].Card)
		}
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		for _, p := range q.Predicates {
			a, b := p.Tables[0], p.Tables[1]
			if a >= b {
				t.Fatalf("n=%d: predicate %v not parent->child ordered", n, p.Tables)
			}
			if parent[b] != -1 {
				t.Fatalf("n=%d: table %d has two parents", n, b)
			}
			parent[b] = a
		}
		for i := 1; i < n; i++ {
			depth := 0
			for v := i; v != 0; v = parent[v] {
				if parent[v] == -1 {
					t.Fatalf("n=%d: table %d not connected to the hub", n, i)
				}
				depth++
			}
			if depth > 3 {
				t.Errorf("n=%d: table %d at branch depth %d, want <= 3", n, i, depth)
			}
		}
	}
}

// TestTransitiveStructure: the chain backbone plus every (i, i+2)
// shortcut, giving the densely-overlapping predicate pattern.
func TestTransitiveStructure(t *testing.T) {
	n := 12
	q := Generate(Transitive, n, 5, Config{})
	edges := map[[2]int]bool{}
	for _, p := range q.Predicates {
		edges[[2]int{p.Tables[0], p.Tables[1]}] = true
	}
	for i := 0; i+1 < n; i++ {
		if !edges[[2]int{i, i + 1}] {
			t.Errorf("missing chain edge (%d,%d)", i, i+1)
		}
	}
	for i := 0; i+2 < n; i++ {
		if !edges[[2]int{i, i + 2}] {
			t.Errorf("missing shortcut edge (%d,%d)", i, i+2)
		}
	}
}

// TestShapesConnectedProperty: every generated join graph is connected —
// required for plans without cross products to exist at all.
func TestShapesConnectedProperty(t *testing.T) {
	for _, shape := range []GraphShape{Chain, Cycle, Star, Clique, Snowflake, Transitive} {
		for seed := int64(0); seed < 10; seed++ {
			n := 2 + int(seed)%12
			q := Generate(shape, n, seed, Config{})
			adj := make([][]int, n)
			for _, e := range q.JoinGraphEdges() {
				adj[e[0]] = append(adj[e[0]], e[1])
				adj[e[1]] = append(adj[e[1]], e[0])
			}
			seen := make([]bool, n)
			stack := []int{0}
			seen[0] = true
			count := 1
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, w := range adj[v] {
					if !seen[w] {
						seen[w] = true
						count++
						stack = append(stack, w)
					}
				}
			}
			if count != n {
				t.Fatalf("%v n=%d seed %d: join graph disconnected (%d of %d reachable)", shape, n, seed, count, n)
			}
		}
	}
}
