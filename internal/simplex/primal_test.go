package simplex

import (
	"math"
	"math/rand"
	"testing"

	"milpjoin/internal/sparse"
)

func pInf() float64 { return math.Inf(1) }
func nInf() float64 { return math.Inf(-1) }

// buildProblem assembles a computational-form Problem from dense constraint
// rows. sense is one of "<=", ">=", "=" per row. A logical column is
// appended per row.
func buildProblem(rows [][]float64, sense []string, rhs, c, l, u []float64) *Problem {
	m := len(rows)
	ns := len(c)
	tr := sparse.NewTriplet(m, ns+m)
	for i, row := range rows {
		for j, v := range row {
			if v != 0 {
				tr.Add(i, j, v)
			}
		}
		tr.Add(i, ns+i, 1)
	}
	fullC := append(append([]float64(nil), c...), make([]float64, m)...)
	fullL := append([]float64(nil), l...)
	fullU := append([]float64(nil), u...)
	for i := 0; i < m; i++ {
		switch sense[i] {
		case "<=":
			fullL = append(fullL, 0)
			fullU = append(fullU, math.Inf(1))
		case ">=":
			fullL = append(fullL, math.Inf(-1))
			fullU = append(fullU, 0)
		case "=":
			fullL = append(fullL, 0)
			fullU = append(fullU, 0)
		default:
			panic("bad sense " + sense[i])
		}
	}
	return &Problem{A: tr.Compress(), B: rhs, C: fullC, L: fullL, U: fullU}
}

func solveOK(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x+y <= 1, x,y in [0, inf)  == min -x-y.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"<="},
		[]float64{1},
		[]float64{-1, -1},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-1)) > 1e-9 {
		t.Errorf("obj = %g, want -1", res.Obj)
	}
}

func TestTwoConstraintLP(t *testing.T) {
	// min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Classic optimum x=2, y=6, obj=-36.
	p := buildProblem(
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]string{"<=", "<=", "<="},
		[]float64{4, 12, 18},
		[]float64{-3, -5},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-36)) > 1e-8 {
		t.Errorf("obj = %g, want -36", res.Obj)
	}
	if math.Abs(res.X[0]-2) > 1e-8 || math.Abs(res.X[1]-6) > 1e-8 {
		t.Errorf("x = (%g, %g), want (2, 6)", res.X[0], res.X[1])
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x - y = 2 → x=6, y=4, obj=14.
	p := buildProblem(
		[][]float64{{1, 1}, {1, -1}},
		[]string{"=", "="},
		[]float64{10, 2},
		[]float64{1, 2},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-14) > 1e-8 {
		t.Errorf("obj = %g, want 14", res.Obj)
	}
}

func TestGreaterEqualNeedsPhase1(t *testing.T) {
	// min x + y s.t. x + y >= 5, x, y >= 0 → obj = 5.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{">="},
		[]float64{5},
		[]float64{1, 1},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-5) > 1e-8 {
		t.Errorf("obj = %g, want 5", res.Obj)
	}
}

func TestUpperBoundedVariables(t *testing.T) {
	// min -x - y s.t. x + y <= 10, x in [0,3], y in [0,4] → x=3, y=4.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"<="},
		[]float64{10},
		[]float64{-1, -1},
		[]float64{0, 0},
		[]float64{3, 4},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-7)) > 1e-8 {
		t.Errorf("obj = %g, want -7", res.Obj)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x + y = 3, y in [0, 1], x free → x=2 at y=1.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"="},
		[]float64{3},
		[]float64{1, 0},
		[]float64{nInf(), 0},
		[]float64{pInf(), 1},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-2) > 1e-8 {
		t.Errorf("obj = %g, want 2", res.Obj)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y s.t. x + y >= -4, x,y in [-3, 3] → obj = -4.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{">="},
		[]float64{-4},
		[]float64{1, 1},
		[]float64{-3, -3},
		[]float64{3, 3},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-4)) > 1e-8 {
		t.Errorf("obj = %g, want -4", res.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 simultaneously.
	p := buildProblem(
		[][]float64{{1}, {1}},
		[]string{"<=", ">="},
		[]float64{1, 2},
		[]float64{0},
		[]float64{0},
		[]float64{pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestInfeasibleCrossedBounds(t *testing.T) {
	p := buildProblem(
		[][]float64{{1}},
		[]string{"<="},
		[]float64{1},
		[]float64{0},
		[]float64{5},
		[]float64{2}, // l > u
	)
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x - y <= 1, x, y >= 0: x can grow with y.
	p := buildProblem(
		[][]float64{{1, -1}},
		[]string{"<="},
		[]float64{1},
		[]float64{-1, 0},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestFixedVariables(t *testing.T) {
	// x fixed to 2; min y s.t. x + y >= 5 → y = 3.
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{">="},
		[]float64{5},
		[]float64{0, 1},
		[]float64{2, 0},
		[]float64{2, pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[1]-3) > 1e-8 {
		t.Errorf("y = %g, want 3", res.X[1])
	}
}

func TestUnconstrainedProblems(t *testing.T) {
	// m = 0: minimize over a box.
	tr := sparse.NewTriplet(0, 2)
	p := &Problem{
		A: tr.Compress(),
		B: nil,
		C: []float64{1, -2},
		L: []float64{-1, -5},
		U: []float64{4, 7},
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-1-14)) > 1e-12 {
		t.Errorf("obj = %g, want -15", res.Obj)
	}

	// Unbounded free variable with cost.
	p2 := &Problem{
		A: sparse.NewTriplet(0, 1).Compress(),
		C: []float64{1},
		L: []float64{math.Inf(-1)},
		U: []float64{math.Inf(1)},
	}
	res2 := solveOK(t, p2)
	if res2.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res2.Status)
	}
}

func TestWarmStartAfterBoundChange(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]string{"<=", "<=", "<="},
		[]float64{4, 12, 18},
		[]float64{-3, -5},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("cold status = %v", res.Status)
	}

	// Tighten x ≤ 1 (branching-style bound change) and warm start.
	p.U[0] = 1
	warm, err := Solve(p, res.Basis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status = %v", warm.Status)
	}
	// Optimum: x=1, y=6 → obj = -33.
	if math.Abs(warm.Obj-(-33)) > 1e-8 {
		t.Errorf("warm obj = %g, want -33", warm.Obj)
	}
	cold, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-8 {
		t.Errorf("warm %g vs cold %g", warm.Obj, cold.Obj)
	}
}

func TestDegenerateLPTerminates(t *testing.T) {
	// A classically degenerate LP (many redundant constraints through the
	// origin); must terminate via the Bland fallback.
	p := buildProblem(
		[][]float64{
			{1, 1, 1},
			{1, 1, 0},
			{1, 0, 1},
			{0, 1, 1},
			{1, 0, 0},
		},
		[]string{"<=", "<=", "<=", "<=", "<="},
		[]float64{0, 0, 0, 0, 0},
		[]float64{-1, -1, -1},
		[]float64{0, 0, 0},
		[]float64{pInf(), pInf(), pInf()},
	)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj) > 1e-9 {
		t.Errorf("obj = %g, want 0", res.Obj)
	}
}

// checkKKT verifies an optimality certificate: primal feasibility plus
// status-consistent reduced costs. This is independent of the solve path.
func checkKKT(t *testing.T, p *Problem, res *Result) {
	t.Helper()
	const tol = 1e-6
	m, n := p.NumRows(), p.NumCols()

	// Primal feasibility: A x = b and bounds.
	ax := p.A.MulVec(res.X)
	for i := 0; i < m; i++ {
		if math.Abs(ax[i]-p.B[i]) > tol*(1+math.Abs(p.B[i])) {
			t.Fatalf("row %d: Ax = %g, b = %g", i, ax[i], p.B[i])
		}
	}
	for j := 0; j < n; j++ {
		if res.X[j] < p.L[j]-tol || res.X[j] > p.U[j]+tol {
			t.Fatalf("var %d: x = %g outside [%g, %g]", j, res.X[j], p.L[j], p.U[j])
		}
	}

	// Dual feasibility: d_j = c_j − yᵀa_j consistent with statuses.
	for j := 0; j < n; j++ {
		d := p.C[j] - p.A.ColDot(j, res.Y)
		switch res.Basis.Status[j] {
		case Basic:
			if math.Abs(d) > 1e-5 {
				t.Fatalf("basic var %d has reduced cost %g", j, d)
			}
		case NonbasicLower:
			if p.U[j]-p.L[j] > 0 && d < -1e-5 {
				t.Fatalf("var %d at lower has reduced cost %g < 0", j, d)
			}
		case NonbasicUpper:
			if p.U[j]-p.L[j] > 0 && d > 1e-5 {
				t.Fatalf("var %d at upper has reduced cost %g > 0", j, d)
			}
		case NonbasicFree:
			if math.Abs(d) > 1e-5 {
				t.Fatalf("free var %d has reduced cost %g", j, d)
			}
		}
	}
}

func TestRandomLPsSatisfyKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		p := randomFeasibleLP(rng, 1+rng.Intn(6), 1+rng.Intn(8))
		res, err := Solve(p, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != StatusOptimal {
			// Construction guarantees feasibility; unbounded is
			// impossible with finite bounds.
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		checkKKT(t, p, res)
	}
}

func TestRandomLPsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 80; trial++ {
		m := 1 + rng.Intn(3)
		ns := 1 + rng.Intn(4)
		p := randomFeasibleLP(rng, m, ns)
		res, err := Solve(p, nil, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		want, ok := bruteForceLP(p)
		if !ok {
			continue // enumeration found no feasible vertex: skip
		}
		if res.Obj > want+1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex obj %g worse than brute force %g", trial, res.Obj, want)
		}
		if res.Obj < want-1e-6*(1+math.Abs(want)) {
			t.Fatalf("trial %d: simplex obj %g better than brute force %g (oracle bug?)", trial, res.Obj, want)
		}
	}
}

// randomFeasibleLP builds a random LP with finite bounds that is feasible
// by construction (b = A·x₀ with x₀ inside the box, equality-free senses).
func randomFeasibleLP(rng *rand.Rand, m, ns int) *Problem {
	rows := make([][]float64, m)
	x0 := make([]float64, ns)
	l := make([]float64, ns)
	u := make([]float64, ns)
	c := make([]float64, ns)
	for j := 0; j < ns; j++ {
		l[j] = -2 - rng.Float64()*3
		u[j] = 2 + rng.Float64()*3
		x0[j] = l[j] + rng.Float64()*(u[j]-l[j])
		c[j] = rng.NormFloat64()
	}
	sense := make([]string, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		rows[i] = make([]float64, ns)
		var dot float64
		for j := 0; j < ns; j++ {
			if rng.Float64() < 0.7 {
				rows[i][j] = rng.NormFloat64()
				dot += rows[i][j] * x0[j]
			}
		}
		switch rng.Intn(3) {
		case 0:
			sense[i], rhs[i] = "<=", dot+rng.Float64()
		case 1:
			sense[i], rhs[i] = ">=", dot-rng.Float64()
		default:
			sense[i], rhs[i] = "=", dot
		}
	}
	return buildProblem(rows, sense, rhs, c, l, u)
}

// bruteForceLP enumerates all bases and nonbasic bound assignments; valid
// only for small problems with finite structural bounds. Returns the best
// objective over all feasible vertices found.
func bruteForceLP(p *Problem) (float64, bool) {
	m, n := p.NumRows(), p.NumCols()
	best := math.Inf(1)
	found := false

	basis := make([]int, m)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == m {
			evalBasis(p, basis, &best, &found)
			return
		}
		for j := start; j < n; j++ {
			basis[k] = j
			rec(j+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func evalBasis(p *Problem, basis []int, best *float64, found *bool) {
	m, n := p.NumRows(), p.NumCols()
	isBasic := make([]bool, n)
	cols := make([][]float64, m)
	for k, j := range basis {
		isBasic[j] = true
		col := make([]float64, m)
		rows, vals := p.A.Col(j)
		for t, i := range rows {
			col[i] = vals[t]
		}
		cols[k] = col
	}
	// Dense basis matrix (columns side by side → rows for FactorizeDense).
	bm := make([][]float64, m)
	for i := 0; i < m; i++ {
		bm[i] = make([]float64, m)
		for k := 0; k < m; k++ {
			bm[i][k] = cols[k][i]
		}
	}
	lu, err := sparse.FactorizeDense(bm)
	if err != nil {
		return
	}
	// Enumerate nonbasic bound assignments.
	nb := make([]int, 0, n-m)
	for j := 0; j < n; j++ {
		if !isBasic[j] {
			nb = append(nb, j)
		}
	}
	for mask := 0; mask < 1<<len(nb); mask++ {
		x := make([]float64, n)
		ok := true
		for b, j := range nb {
			if mask&(1<<b) == 0 {
				x[j] = p.L[j]
			} else {
				x[j] = p.U[j]
			}
			if math.IsInf(x[j], 0) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		rhs := make([]float64, m)
		copy(rhs, p.B)
		for _, j := range nb {
			if x[j] == 0 {
				continue
			}
			rows, vals := p.A.Col(j)
			for t, i := range rows {
				rhs[i] -= vals[t] * x[j]
			}
		}
		xb := lu.Solve(rhs)
		feas := true
		for k, j := range basis {
			if xb[k] < p.L[j]-1e-7 || xb[k] > p.U[j]+1e-7 {
				feas = false
				break
			}
			x[j] = xb[k]
		}
		if !feas {
			continue
		}
		var obj float64
		for j := 0; j < n; j++ {
			obj += p.C[j] * x[j]
		}
		if obj < *best {
			*best = obj
			*found = true
		}
	}
}

func TestIterationLimit(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"<="},
		[]float64{1},
		[]float64{-1, -1},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res, err := Solve(p, nil, Options{MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusIterLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestBasisValidation(t *testing.T) {
	b := &Basis{Status: []VarStatus{Basic, NonbasicLower}, Head: []int{0}}
	if !b.valid(1, 2) {
		t.Error("valid basis rejected")
	}
	bad := &Basis{Status: []VarStatus{Basic, Basic}, Head: []int{0}}
	if bad.valid(1, 2) {
		t.Error("basis with wrong basic count accepted")
	}
	dup := &Basis{Status: []VarStatus{Basic, Basic}, Head: []int{0, 0}}
	if dup.valid(2, 2) {
		t.Error("basis with duplicate head accepted")
	}
	if (*Basis)(nil).valid(1, 2) {
		t.Error("nil basis accepted")
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration limit",
		StatusAborted:    "aborted",
		Status(99):       "Status(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), got, want)
		}
	}
}
