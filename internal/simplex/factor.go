package simplex

import (
	"math"

	"milpjoin/internal/sparse"
)

// eta records one product-form-of-inverse update: the basis column at
// position r was replaced, and w = B⁻¹·a_enter is the transformed entering
// column. Applying the update to a vector costs O(nnz(w)).
type eta struct {
	r   int       // basis position that changed
	wr  float64   // pivot element w[r]
	ind []int     // indices i ≠ r with w[i] ≠ 0
	val []float64 // matching values
}

// basisFactor maintains B = B₀·E₁···E_k as a sparse LU factorization of B₀
// plus an eta file, and answers FTRAN/BTRAN solves against the current B.
//
// All storage — the LU factors, the factorization scratch, the basis-matrix
// build buffers, and the eta file (including each eta's index/value
// arrays) — is reused across refactorizations, so a warmed-up basisFactor
// performs refactorization and pivot updates without heap allocation.
type basisFactor struct {
	m       int
	lu      sparse.LU            // reused in place by FactorizeInto
	fws     sparse.FactorScratch // factorization working storage
	basis   sparse.CSC           // reusable basis-matrix build buffers
	etas    []eta
	scratch []float64
}

// reset prepares the factor for an m-row basis, keeping buffer capacity.
func (f *basisFactor) reset(m int) {
	f.m = m
	f.scratch = growFloats(f.scratch, m)
	f.etas = f.etas[:0]
}

// refactorize rebuilds the LU factorization from the basis columns of a
// selected by head, clearing the eta file. The basis matrix is assembled
// directly in CSC form (the columns of a are sorted and duplicate-free, so
// no triplet round-trip is needed).
func (f *basisFactor) refactorize(a *sparse.CSC, head []int) error {
	b := &f.basis
	b.Rows, b.Cols = f.m, f.m
	b.ColPtr = append(b.ColPtr[:0], 0)
	b.RowInd = b.RowInd[:0]
	b.Val = b.Val[:0]
	for _, j := range head {
		rows, vals := a.Col(j)
		b.RowInd = append(b.RowInd, rows...)
		b.Val = append(b.Val, vals...)
		b.ColPtr = append(b.ColPtr, len(b.RowInd))
	}
	if err := sparse.FactorizeInto(&f.lu, b, sparse.FactorOptions{}, &f.fws); err != nil {
		return err
	}
	f.etas = f.etas[:0]
	return nil
}

// numEtas returns the current eta-file length.
func (f *basisFactor) numEtas() int { return len(f.etas) }

// ftran solves B·x = v in place. v must have length m.
//
// B_k⁻¹ = E_k⁻¹···E₁⁻¹·B₀⁻¹, so the LU solve comes first and the eta
// updates apply in creation order.
func (f *basisFactor) ftran(v []float64) {
	f.lu.SolveInPlace(v, f.scratch)
	for e := range f.etas {
		et := &f.etas[e]
		vr := v[et.r] / et.wr
		v[et.r] = vr
		if vr == 0 {
			continue
		}
		for k, i := range et.ind {
			v[i] -= et.val[k] * vr
		}
	}
}

// btran solves Bᵀ·y = v in place. v must have length m.
//
// B_k⁻ᵀ = B₀⁻ᵀ·E₁⁻ᵀ···E_k⁻ᵀ, so the eta updates apply in reverse creation
// order, followed by the transposed LU solve.
func (f *basisFactor) btran(v []float64) {
	for e := len(f.etas) - 1; e >= 0; e-- {
		et := &f.etas[e]
		s := v[et.r]
		for k, i := range et.ind {
			s -= et.val[k] * v[i]
		}
		v[et.r] = s / et.wr
	}
	f.lu.SolveTransposeInPlace(v, f.scratch)
}

// update appends an eta for a pivot at basis position r with transformed
// entering column w (dense, length m). Returns false if the pivot element
// is numerically unusable and a refactorization should happen instead.
// Retired etas' index/value storage is recycled.
func (f *basisFactor) update(r int, w []float64, pivotTol float64) bool {
	wr := w[r]
	if math.Abs(wr) < pivotTol {
		return false
	}
	var et *eta
	if len(f.etas) < cap(f.etas) {
		f.etas = f.etas[:len(f.etas)+1]
		et = &f.etas[len(f.etas)-1]
		et.ind = et.ind[:0]
		et.val = et.val[:0]
	} else {
		f.etas = append(f.etas, eta{})
		et = &f.etas[len(f.etas)-1]
	}
	et.r, et.wr = r, wr
	for i, wi := range w {
		if i != r && wi != 0 {
			et.ind = append(et.ind, i)
			et.val = append(et.val, wi)
		}
	}
	return true
}
