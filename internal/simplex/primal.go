package simplex

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrNumerical reports that the solver lost numerical control (for example
// a basis became singular and could not be repaired).
var ErrNumerical = errors.New("simplex: numerical failure")

// Solve minimizes the problem, optionally warm starting from basis. A nil
// warm basis starts from the all-logical (slack) basis.
//
// When opts.Workspace is set, all solver storage comes from the workspace
// and the returned Result aliases it; warm re-solves then run without heap
// allocation. With a nil workspace a private one is allocated, so the
// Result is independently owned by the caller.
func Solve(p *Problem, warm *Basis, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.NumRows(), p.NumCols()
	opts = opts.withDefaults(m, n)

	ws := opts.Workspace
	if ws == nil {
		ws = NewWorkspace()
	}

	// Crossed bounds make the problem trivially infeasible.
	for j := 0; j < n; j++ {
		if p.L[j] > p.U[j]+opts.FeasTol {
			res := ws.resetResult()
			res.Status = StatusInfeasible
			return res, nil
		}
	}
	if m == 0 {
		return solveUnconstrained(p, opts)
	}

	s := &ws.sol
	*s = solver{p: p, opts: opts, m: m, n: n, ws: ws}
	s.init(warm)

	if opts.PreferDual && warm != nil && s.infeasibility() > 0 && s.dualFeasible() {
		switch s.dualLoop() {
		case dualInfeasible:
			return s.finish(StatusInfeasible), nil
		case dualAborted:
			return s.finish(StatusAborted), nil
		case dualDone, dualGiveUp:
			// Continue with the primal method: after dualDone it
			// certifies optimality in a handful of iterations; after
			// dualGiveUp it repairs from composite phase 1.
		}
	}
	return s.run()
}

type solver struct {
	p    *Problem
	opts Options
	m, n int
	ws   *Workspace

	status []VarStatus
	head   []int
	x      []float64 // values of all variables
	factor *basisFactor

	// Per-variable feasibility tolerances, relative to the bound
	// magnitudes so that variables with very large bounds (for example
	// cardinality approximations) are not held to absolute precision.
	tolL, tolU []float64

	y  []float64 // dual workspace (m)
	w  []float64 // transformed entering column (m)
	cB []float64 // basic objective workspace (m)

	// Pricing state: devex reference-framework weights per variable, the
	// static list of non-fixed columns, and the rotating partial-pricing
	// cursor into it.
	devexW      []float64
	activeCols  []int
	priceCursor int
	pricing     PricingStats

	iters       int
	pivotsSince int // pivots since last refactorization
	degenStreak int
	bland       bool
	repairs     int  // emergency basis resets performed
	refactors   int  // LU refactorizations performed
	refreshed   bool // fresh factorization since the last pivot

	start time.Time
}

// init installs the warm basis when valid, otherwise the logical basis, and
// computes initial variable values. All storage is borrowed from the
// workspace.
func (s *solver) init(warm *Basis) {
	ws := s.ws
	ws.ensure(s.m, s.n)
	s.status = ws.status
	s.head = ws.head
	s.x = ws.x
	s.factor = &ws.factor
	s.y = ws.y
	s.w = ws.w
	s.cB = ws.cB
	s.tolL = ws.tolL
	s.tolU = ws.tolU
	s.devexW = ws.devexW
	s.start = time.Now()
	for j := 0; j < s.n; j++ {
		s.tolL[j] = s.opts.FeasTol
		s.tolU[j] = s.opts.FeasTol
		if l := s.p.L[j]; !math.IsInf(l, 0) {
			s.tolL[j] *= 1 + math.Abs(l)
		}
		if u := s.p.U[j]; !math.IsInf(u, 0) {
			s.tolU[j] *= 1 + math.Abs(u)
		}
		s.devexW[j] = 1
	}

	// Candidate list: fixed columns can never enter, so pricing only ever
	// scans this list (a large win in diving re-solves, where most
	// integer variables are fixed).
	ws.activeCols = ws.activeCols[:0]
	for j := 0; j < s.n; j++ {
		if s.p.U[j]-s.p.L[j] > 0 {
			ws.activeCols = append(ws.activeCols, j)
		}
	}
	s.activeCols = ws.activeCols

	if warm != nil && warm.validIn(s.m, s.n, ws.seen) {
		copy(s.status, warm.Status)
		copy(s.head, warm.Head)
		// Snap nonbasic statuses onto bounds that may have moved since
		// the basis was recorded (branch-and-bound tightens bounds).
		for j := 0; j < s.n; j++ {
			if s.status[j] == Basic {
				continue
			}
			s.status[j] = s.snapStatus(j, s.status[j])
		}
		if err := s.factor.refactorize(s.p.A, s.head); err == nil {
			s.refactors++
			s.setNonbasicValues()
			s.recomputeBasics()
			return
		}
		// Warm basis is singular under current bounds: fall through.
	}
	s.installLogicalBasis()
}

// snapStatus adjusts a nonbasic status so that it refers to a finite bound.
func (s *solver) snapStatus(j int, st VarStatus) VarStatus {
	l, u := s.p.L[j], s.p.U[j]
	switch st {
	case NonbasicLower:
		if math.IsInf(l, -1) {
			if math.IsInf(u, 1) {
				return NonbasicFree
			}
			return NonbasicUpper
		}
	case NonbasicUpper:
		if math.IsInf(u, 1) {
			if math.IsInf(l, -1) {
				return NonbasicFree
			}
			return NonbasicLower
		}
	case NonbasicFree:
		if !math.IsInf(l, -1) {
			return NonbasicLower
		}
		if !math.IsInf(u, 1) {
			return NonbasicUpper
		}
	}
	return st
}

// installLogicalBasis resets to the all-logical basis with structural
// variables at their nearest finite bound.
func (s *solver) installLogicalBasis() {
	ns := s.n - s.m // number of structural variables
	for j := 0; j < ns; j++ {
		s.status[j] = s.defaultNonbasicStatus(j)
	}
	for k := 0; k < s.m; k++ {
		j := ns + k
		s.status[j] = Basic
		s.head[k] = j
	}
	if err := s.factor.refactorize(s.p.A, s.head); err != nil {
		// The logical block is the identity; this cannot happen unless
		// the caller violated the contract.
		panic(fmt.Sprintf("simplex: logical basis singular: %v", err))
	}
	s.refactors++
	s.setNonbasicValues()
	s.recomputeBasics()
}

func (s *solver) defaultNonbasicStatus(j int) VarStatus {
	l, u := s.p.L[j], s.p.U[j]
	lInf, uInf := math.IsInf(l, -1), math.IsInf(u, 1)
	switch {
	case lInf && uInf:
		return NonbasicFree
	case lInf:
		return NonbasicUpper
	case uInf:
		return NonbasicLower
	case math.Abs(l) <= math.Abs(u):
		return NonbasicLower
	default:
		return NonbasicUpper
	}
}

// setNonbasicValues places every nonbasic variable on its bound.
func (s *solver) setNonbasicValues() {
	for j := 0; j < s.n; j++ {
		switch s.status[j] {
		case NonbasicLower:
			s.x[j] = s.p.L[j]
		case NonbasicUpper:
			s.x[j] = s.p.U[j]
		case NonbasicFree:
			s.x[j] = 0
		}
	}
}

// recomputeBasics solves for the basic variable values from scratch:
// x_B = B⁻¹(b − A_N·x_N).
func (s *solver) recomputeBasics() {
	rhs := s.w // reuse workspace
	copy(rhs, s.p.B)
	for j := 0; j < s.n; j++ {
		if s.status[j] == Basic || s.x[j] == 0 {
			continue
		}
		xj := s.x[j]
		rows, vals := s.p.A.Col(j)
		for p, i := range rows {
			rhs[i] -= vals[p] * xj
		}
	}
	s.factor.ftran(rhs)
	for k, j := range s.head {
		s.x[j] = rhs[k]
	}
}

// infeasibility returns the total bound violation of basic variables,
// counting only violations beyond each variable's scaled tolerance.
func (s *solver) infeasibility() float64 {
	var sum float64
	for _, j := range s.head {
		if v := s.p.L[j] - s.x[j]; v > s.tolL[j] {
			sum += v
		}
		if v := s.x[j] - s.p.U[j]; v > s.tolU[j] {
			sum += v
		}
	}
	return sum
}

// run executes the two-phase primal simplex loop.
func (s *solver) run() (*Result, error) {
	for {
		if s.iters >= s.opts.MaxIter {
			return s.finish(StatusIterLimit), nil
		}
		if s.aborted() {
			return s.finish(StatusAborted), nil
		}
		if s.factor.numEtas() >= s.opts.RefactorEvery {
			if err := s.refactorizeOrRepair(); err != nil {
				return nil, err
			}
		}

		phase1 := s.infeasibility() > 0

		// Pricing: y = B⁻ᵀ c_B with the phase-appropriate costs.
		s.loadBasicCosts(phase1)
		copy(s.y, s.cB)
		s.factor.btran(s.y)

		q, sigma := s.chooseEntering(phase1)
		if q < 0 {
			// Before declaring a final status, rebuild the
			// factorization and recompute the basic values: the
			// incremental eta updates drift, and a conclusion drawn
			// from drifted values (false infeasibility, premature
			// optimality) would be wrong. After a refresh the loop
			// re-evaluates from exact-for-this-basis values.
			if !s.refreshed {
				if err := s.refactorizeOrRepair(); err != nil {
					return nil, err
				}
				s.refreshed = true
				continue
			}
			if phase1 {
				// Phase-1 optimal with residual infeasibility.
				return s.finish(StatusInfeasible), nil
			}
			return s.finish(StatusOptimal), nil
		}

		// Transformed entering column w = B⁻¹·a_q.
		for i := range s.w {
			s.w[i] = 0
		}
		rows, vals := s.p.A.Col(q)
		for p, i := range rows {
			s.w[i] = vals[p]
		}
		s.factor.ftran(s.w)

		t, leave, leaveStatus, flip := s.ratioTest(q, sigma, phase1)
		switch {
		case math.IsInf(t, 1):
			if !s.refreshed {
				if err := s.refactorizeOrRepair(); err != nil {
					return nil, err
				}
				s.refreshed = true
				continue
			}
			if phase1 {
				// A bounded-below phase-1 objective cannot be
				// unbounded; numerical trouble. Try a repair.
				if err := s.repair(); err != nil {
					return nil, err
				}
				continue
			}
			return s.finish(StatusUnbounded), nil
		case flip:
			s.applyBoundFlip(q, sigma, t)
			s.refreshed = false
		default:
			if err := s.applyPivot(q, sigma, t, leave, leaveStatus); err != nil {
				return nil, err
			}
			s.refreshed = false
		}
		s.iters++

		if t <= s.opts.FeasTol {
			s.degenStreak++
			if s.degenStreak > s.opts.BlandAfter {
				s.bland = true
			}
		} else {
			s.degenStreak = 0
			s.bland = false
		}
	}
}

func (s *solver) aborted() bool {
	if s.iters%32 != 0 {
		return false
	}
	if s.opts.Stop != nil && s.opts.Stop.Load() {
		return true
	}
	if s.opts.Ctx != nil && s.opts.Ctx.Err() != nil {
		return true
	}
	if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
		return true
	}
	return false
}

// loadBasicCosts fills cB with the basic objective: phase-1 infeasibility
// gradients or phase-2 costs.
func (s *solver) loadBasicCosts(phase1 bool) {
	for k, j := range s.head {
		if phase1 {
			switch {
			case s.x[j] < s.p.L[j]-s.tolL[j]:
				s.cB[k] = -1
			case s.x[j] > s.p.U[j]+s.tolU[j]:
				s.cB[k] = 1
			default:
				s.cB[k] = 0
			}
		} else {
			s.cB[k] = s.p.C[j]
		}
	}
}

// chooseEntering prices nonbasic columns and returns the entering variable
// and its direction (+1 increasing, −1 decreasing), or (-1, 0) when no
// eligible column exists (phase optimal).
//
// The default rule is devex reference-framework pricing (score d²/weight)
// over partial scans of the candidate list: sections are priced round-robin
// from a rotating cursor and the scan stops at the first section that
// yields an eligible column. Optimality is only declared after a full scan
// finds nothing. Bland mode (anti-cycling) takes the first eligible index
// instead, and Options.DantzigPricing forces full largest-reduced-cost
// scans.
func (s *solver) chooseEntering(phase1 bool) (int, float64) {
	if s.bland {
		return s.chooseEnteringBland(phase1)
	}
	active := s.activeCols
	nAct := len(active)
	if nAct == 0 {
		return -1, 0
	}
	// Partial pricing parameters: sections of the candidate list are
	// priced round-robin from the rotating cursor; the scan stops early
	// only once a healthy pool of eligible columns has been compared, so
	// the entering choice stays competitive with a full scan. Small
	// problems (and Dantzig mode) always scan fully.
	section, minPool := nAct, nAct
	if !s.opts.DantzigPricing && nAct >= 2048 {
		section, minPool = nAct/8, 32
	}

	best, eligible := -1, 0
	var bestScore, bestSigma float64
	idx := s.priceCursor
	if idx >= nAct {
		idx = 0
	}
	scanned := 0
	for scanned < nAct {
		cnt := section
		if cnt > nAct-scanned {
			cnt = nAct - scanned
		}
		for i := 0; i < cnt; i++ {
			j := active[idx]
			idx++
			if idx == nAct {
				idx = 0
			}
			st := s.status[j]
			if st == Basic {
				continue
			}
			cj := 0.0
			if !phase1 {
				cj = s.p.C[j]
			}
			d := cj - s.p.A.ColDot(j, s.y)
			var sigma float64
			switch st {
			case NonbasicLower:
				if d < -s.opts.OptTol {
					sigma = 1
				}
			case NonbasicUpper:
				if d > s.opts.OptTol {
					sigma = -1
				}
			case NonbasicFree:
				if d < -s.opts.OptTol {
					sigma = 1
				} else if d > s.opts.OptTol {
					sigma = -1
				}
			}
			if sigma == 0 {
				continue
			}
			eligible++
			score := d * d
			if !s.opts.DantzigPricing {
				score /= s.devexW[j]
			}
			if score > bestScore {
				best, bestScore, bestSigma = j, score, sigma
			}
		}
		scanned += cnt
		if best >= 0 && eligible >= minPool {
			break
		}
	}
	s.priceCursor = idx
	s.pricing.ScannedCols += scanned
	s.pricing.TotalCols += nAct
	return best, bestSigma
}

// chooseEnteringBland prices the candidate list in ascending index order and
// returns the first eligible column (Bland's anti-cycling rule).
func (s *solver) chooseEnteringBland(phase1 bool) (int, float64) {
	s.pricing.TotalCols += len(s.activeCols)
	for i, j := range s.activeCols {
		st := s.status[j]
		if st == Basic {
			continue
		}
		cj := 0.0
		if !phase1 {
			cj = s.p.C[j]
		}
		d := cj - s.p.A.ColDot(j, s.y)
		switch st {
		case NonbasicLower:
			if d < -s.opts.OptTol {
				s.pricing.ScannedCols += i + 1
				return j, 1
			}
		case NonbasicUpper:
			if d > s.opts.OptTol {
				s.pricing.ScannedCols += i + 1
				return j, -1
			}
		case NonbasicFree:
			if d < -s.opts.OptTol {
				s.pricing.ScannedCols += i + 1
				return j, 1
			}
			if d > s.opts.OptTol {
				s.pricing.ScannedCols += i + 1
				return j, -1
			}
		}
	}
	s.pricing.ScannedCols += len(s.activeCols)
	return -1, 0
}

// devexUpdate refreshes the reference weights after a pivot: entering q at
// basis position leave with pivot element wr replaces jOut. Only the
// leaving variable's weight is updated exactly (restarting devex); the
// framework resets when weights blow up, keeping scores meaningful.
func (s *solver) devexUpdate(q, jOut int, wr float64) {
	const resetAbove = 1e7
	wNew := s.devexW[q] / (wr * wr)
	if wNew < 1 {
		wNew = 1
	}
	if wNew > resetAbove {
		s.resetDevex()
		s.pricing.DevexResets++
		return
	}
	s.devexW[jOut] = wNew
}

// resetDevex restarts the reference framework at the current nonbasic set.
func (s *solver) resetDevex() {
	for _, j := range s.activeCols {
		s.devexW[j] = 1
	}
}

// ratioTest finds the maximum step t for entering variable q moving in
// direction sigma. It returns the step, the blocking basis position (or -1),
// the status the leaving variable assumes, and whether the step is a bound
// flip of the entering variable itself.
//
// Phase-1 semantics: infeasible basic variables block only when they reach
// the bound they violate (becoming feasible); feasible ones block at the
// bound they would cross.
func (s *solver) ratioTest(q int, sigma float64, phase1 bool) (t float64, leave int, leaveStatus VarStatus, flip bool) {
	pivTol := s.opts.PivotTol

	tEnter := math.Inf(1)
	if !math.IsInf(s.p.L[q], -1) && !math.IsInf(s.p.U[q], 1) {
		tEnter = s.p.U[q] - s.p.L[q]
	}

	// First pass: tightest blocking step.
	tBest := math.Inf(1)
	for k, j := range s.head {
		wk := sigma * s.w[k]
		var tk float64
		if wk > pivTol { // x_j decreases
			switch {
			case phase1 && s.x[j] > s.p.U[j]+s.tolU[j]:
				tk = (s.x[j] - s.p.U[j]) / wk
			case s.x[j] >= s.p.L[j]-s.tolL[j]:
				if math.IsInf(s.p.L[j], -1) {
					continue
				}
				tk = (s.x[j] - s.p.L[j]) / wk
			default:
				continue // below lower and sinking: already counted in gradient
			}
		} else if wk < -pivTol { // x_j increases
			switch {
			case phase1 && s.x[j] < s.p.L[j]-s.tolL[j]:
				tk = (s.p.L[j] - s.x[j]) / -wk
			case s.x[j] <= s.p.U[j]+s.tolU[j]:
				if math.IsInf(s.p.U[j], 1) {
					continue
				}
				tk = (s.p.U[j] - s.x[j]) / -wk
			default:
				continue
			}
		} else {
			continue
		}
		if tk < 0 {
			tk = 0
		}
		if tk < tBest {
			tBest = tk
		}
		_ = k
	}

	if tEnter <= tBest {
		return tEnter, -1, 0, true
	}
	if math.IsInf(tBest, 1) {
		return tBest, -1, 0, false
	}

	// Second pass: among blocks within a relative window of tBest, pick
	// the largest pivot magnitude for numerical stability (Bland mode
	// picks the smallest variable index instead).
	window := tBest + 1e-9*(1+tBest)
	leave = -1
	var bestPiv float64
	for k, j := range s.head {
		wk := sigma * s.w[k]
		var tk float64
		var st VarStatus
		if wk > pivTol {
			switch {
			case phase1 && s.x[j] > s.p.U[j]+s.tolU[j]:
				tk, st = (s.x[j]-s.p.U[j])/wk, NonbasicUpper
			case s.x[j] >= s.p.L[j]-s.tolL[j]:
				if math.IsInf(s.p.L[j], -1) {
					continue
				}
				tk, st = (s.x[j]-s.p.L[j])/wk, NonbasicLower
			default:
				continue
			}
		} else if wk < -pivTol {
			switch {
			case phase1 && s.x[j] < s.p.L[j]-s.tolL[j]:
				tk, st = (s.p.L[j]-s.x[j])/-wk, NonbasicLower
			case s.x[j] <= s.p.U[j]+s.tolU[j]:
				if math.IsInf(s.p.U[j], 1) {
					continue
				}
				tk, st = (s.p.U[j]-s.x[j])/-wk, NonbasicUpper
			default:
				continue
			}
		} else {
			continue
		}
		if tk < 0 {
			tk = 0
		}
		if tk > window {
			continue
		}
		if s.bland {
			if leave < 0 || j < s.head[leave] {
				leave, leaveStatus = k, st
			}
		} else if p := math.Abs(s.w[k]); p > bestPiv {
			bestPiv, leave, leaveStatus = p, k, st
		}
	}
	if leave < 0 {
		// All blocks evaporated inside the window; treat as tBest with
		// no leave, forcing a conservative zero-length step pivot
		// cannot happen — signal unbounded-like to trigger repair.
		return math.Inf(1), -1, 0, false
	}
	return tBest, leave, leaveStatus, false
}

// applyBoundFlip moves the entering variable across to its opposite bound.
func (s *solver) applyBoundFlip(q int, sigma, t float64) {
	for k, j := range s.head {
		s.x[j] -= sigma * t * s.w[k]
	}
	if sigma > 0 {
		s.status[q] = NonbasicUpper
		s.x[q] = s.p.U[q]
	} else {
		s.status[q] = NonbasicLower
		s.x[q] = s.p.L[q]
	}
}

// applyPivot executes a basis change: entering q, leaving head[leave].
func (s *solver) applyPivot(q int, sigma, t float64, leave int, leaveStatus VarStatus) error {
	enterVal := s.x[q] + sigma*t
	for k, j := range s.head {
		s.x[j] -= sigma * t * s.w[k]
	}
	jOut := s.head[leave]
	s.status[jOut] = leaveStatus
	if leaveStatus == NonbasicLower {
		s.x[jOut] = s.p.L[jOut]
	} else {
		s.x[jOut] = s.p.U[jOut]
	}
	s.head[leave] = q
	s.status[q] = Basic
	s.x[q] = enterVal
	s.devexUpdate(q, jOut, s.w[leave])

	if !s.factor.update(leave, s.w, s.opts.PivotTol) {
		return s.refactorizeOrRepair()
	}
	s.pivotsSince++
	return nil
}

// refactorizeOrRepair refactorizes the current basis; on singularity it
// falls back to the logical basis (bounded number of times).
func (s *solver) refactorizeOrRepair() error {
	if err := s.factor.refactorize(s.p.A, s.head); err != nil {
		return s.repair()
	}
	s.refactors++
	s.recomputeBasics()
	return nil
}

// repair resets to the logical basis after numerical failure.
func (s *solver) repair() error {
	s.repairs++
	if s.repairs > 3 {
		return fmt.Errorf("%w: repeated basis repair", ErrNumerical)
	}
	s.installLogicalBasis()
	s.resetDevex()
	s.bland = false
	s.degenStreak = 0
	return nil
}

// finish packages the current state into the workspace's pooled Result.
// Everything the Result exposes (X, Y, Basis) is copied into dedicated
// workspace storage, so it stays valid across solver reuse but only until
// the next Solve with the same workspace.
func (s *solver) finish(st Status) *Result {
	ws := s.ws
	res := ws.resetResult()
	res.Status = st
	res.Iters = s.iters
	res.Refactors = s.refactors
	res.Pricing = s.pricing
	ws.resX = append(ws.resX[:0], s.x...)
	res.X = ws.resX
	ws.resBasis.Status = append(ws.resBasis.Status[:0], s.status...)
	ws.resBasis.Head = append(ws.resBasis.Head[:0], s.head...)
	res.Basis = &ws.resBasis
	var obj float64
	for j := 0; j < s.n; j++ {
		obj += s.p.C[j] * s.x[j]
	}
	res.Obj = obj
	if st == StatusOptimal {
		s.loadBasicCosts(false)
		copy(s.y, s.cB)
		s.factor.btran(s.y)
		ws.resY = append(ws.resY[:0], s.y...)
		res.Y = ws.resY
	}
	return res
}

// solveUnconstrained handles the m = 0 corner case directly.
func solveUnconstrained(p *Problem, opts Options) (*Result, error) {
	n := p.NumCols()
	x := make([]float64, n)
	status := make([]VarStatus, n)
	var obj float64
	for j := 0; j < n; j++ {
		c := p.C[j]
		switch {
		case c > 0:
			if math.IsInf(p.L[j], -1) {
				return &Result{Status: StatusUnbounded}, nil
			}
			x[j], status[j] = p.L[j], NonbasicLower
		case c < 0:
			if math.IsInf(p.U[j], 1) {
				return &Result{Status: StatusUnbounded}, nil
			}
			x[j], status[j] = p.U[j], NonbasicUpper
		default:
			switch {
			case !math.IsInf(p.L[j], -1):
				x[j], status[j] = p.L[j], NonbasicLower
			case !math.IsInf(p.U[j], 1):
				x[j], status[j] = p.U[j], NonbasicUpper
			default:
				x[j], status[j] = 0, NonbasicFree
			}
		}
		obj += c * x[j]
	}
	return &Result{
		Status: StatusOptimal,
		Obj:    obj,
		X:      x,
		Y:      []float64{},
		Basis:  &Basis{Status: status, Head: []int{}},
	}, nil
}
