package simplex

import (
	"math"
	"slices"
)

// dualOutcome classifies how the dual simplex loop ended.
type dualOutcome int

const (
	// dualDone: the basis became primal feasible (caller continues with
	// primal phase 2, which typically certifies optimality immediately).
	dualDone dualOutcome = iota
	// dualInfeasible: a row proved the problem infeasible.
	dualInfeasible
	// dualGiveUp: dual feasibility was lost or the budget ran out — the
	// caller falls back to the composite primal phase 1.
	dualGiveUp
	// dualAborted: deadline or stop flag.
	dualAborted
)

// dualFeasible reports whether the current reduced costs are sign-
// consistent with the nonbasic statuses (within the optimality tolerance).
// It prices all columns with y = B⁻ᵀ·c_B.
func (s *solver) dualFeasible() bool {
	s.loadBasicCosts(false)
	copy(s.y, s.cB)
	s.factor.btran(s.y)
	for j := 0; j < s.n; j++ {
		if s.status[j] == Basic || s.p.U[j]-s.p.L[j] <= 0 {
			continue
		}
		d := s.p.C[j] - s.p.A.ColDot(j, s.y)
		switch s.status[j] {
		case NonbasicLower:
			if d < -1e-6 {
				return false
			}
		case NonbasicUpper:
			if d > 1e-6 {
				return false
			}
		case NonbasicFree:
			if math.Abs(d) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// dualCandidate is one eligible entering column in the long-step ratio test.
type dualCandidate struct {
	j     int
	ratio float64 // |d_j| / |alpha_j|
	alpha float64
}

// dualLoop runs bounded-variable dual simplex with the long-step
// (bound-flipping) ratio test: while the basis is primal infeasible but
// dual feasible, the most-violating basic variable is driven onto its
// violated bound. Candidates whose own range is exhausted before the
// violation is repaired are bound-flipped in bulk (one combined FTRAN);
// the first candidate that can absorb the rest pivots into the basis.
//
// This is the method of choice for branch-and-bound node solves, where a
// parent-optimal basis becomes primal infeasible through one bound change.
// Assumes dual feasibility holds on entry.
//
// Column work is restricted to a priced candidate list: nbList holds the
// nonbasic non-fixed columns (the only ones that can enter), maintained
// incrementally across pivots, so the per-iteration alpha and reduced-cost
// updates skip basic and fixed columns entirely.
func (s *solver) dualLoop() dualOutcome {
	ws := s.ws
	rho := ws.rho         // BTRAN row workspace (m)
	d := ws.d             // reduced costs, maintained incrementally (n)
	alpha := ws.alpha     // pivot row entries (n)
	flipAcc := ws.flipAcc // accumulated A·Δx over flips (m)
	nbList := ws.nbList[:0]
	nbPos := ws.nbPos

	reprice := func() {
		s.loadBasicCosts(false)
		copy(s.y, s.cB)
		s.factor.btran(s.y)
		nbList = nbList[:0]
		for j := 0; j < s.n; j++ {
			if s.status[j] == Basic {
				d[j] = 0
				continue
			}
			d[j] = s.p.C[j] - s.p.A.ColDot(j, s.y)
			if s.p.U[j]-s.p.L[j] > 0 {
				nbPos[j] = len(nbList)
				nbList = append(nbList, j)
			}
		}
		ws.nbList = nbList
		s.pricing.ScannedCols += s.n
		s.pricing.TotalCols += s.n
	}
	reprice()

	budget := s.m + 200
	startIters := s.iters
	cands := ws.cands[:0]

	for {
		if s.iters >= s.opts.MaxIter || s.iters-startIters > budget {
			return dualGiveUp
		}
		if s.aborted() {
			return dualAborted
		}
		if s.factor.numEtas() >= s.opts.RefactorEvery {
			if err := s.refactorizeOrRepair(); err != nil {
				return dualGiveUp
			}
			reprice()
		}

		// Leaving row: the basic variable with the largest violation.
		leave := -1
		var worst float64
		var delta float64 // +1: below lower (must rise); −1: above upper
		for k, j := range s.head {
			if v := s.p.L[j] - s.x[j]; v > s.tolL[j] && v > worst {
				worst, leave, delta = v, k, 1
			}
			if v := s.x[j] - s.p.U[j]; v > s.tolU[j] && v > worst {
				worst, leave, delta = v, k, -1
			}
		}
		if leave < 0 {
			if !s.refreshed {
				if err := s.refactorizeOrRepair(); err != nil {
					return dualGiveUp
				}
				s.refreshed = true
				continue
			}
			return dualDone
		}

		// Pivot row: rho = B⁻ᵀ·e_leave; alpha_j = rhoᵀ·a_j.
		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		s.factor.btran(rho)

		// Collect eligible candidates from the nonbasic list: entering j
		// whose feasible movement pushes x_leave toward its violated bound
		// (∂x_leave/∂x_j = −alpha_j).
		cands = cands[:0]
		for _, j := range nbList {
			a := s.p.A.ColDot(j, rho)
			alpha[j] = a
			if math.Abs(a) < s.opts.PivotTol {
				continue
			}
			var eligible bool
			switch s.status[j] {
			case NonbasicLower: // x_j can only increase
				eligible = -a*delta > 0
			case NonbasicUpper: // x_j can only decrease
				eligible = a*delta > 0
			case NonbasicFree:
				eligible = true
			}
			if eligible {
				cands = append(cands, dualCandidate{j: j, ratio: math.Abs(d[j]) / math.Abs(a), alpha: a})
			}
		}
		ws.cands = cands
		s.pricing.ScannedCols += len(nbList)
		s.pricing.TotalCols += s.n
		if len(cands) == 0 {
			if !s.refreshed {
				if err := s.refactorizeOrRepair(); err != nil {
					return dualGiveUp
				}
				s.refreshed = true
				continue
			}
			return dualInfeasible // the row certifies infeasibility
		}
		slices.SortFunc(cands, func(a, b dualCandidate) int {
			switch {
			case a.ratio < b.ratio:
				return -1
			case a.ratio > b.ratio:
				return 1
			default:
				return 0
			}
		})

		// Long-step walk: flip candidates whose own range is exhausted
		// before the violation is repaired; stop at the pivot candidate.
		jOut := s.head[leave]
		var target float64
		var outStatus VarStatus
		if delta > 0 {
			target, outStatus = s.p.L[jOut], NonbasicLower
		} else {
			target, outStatus = s.p.U[jOut], NonbasicUpper
		}
		remaining := math.Abs(s.x[jOut] - target)

		pivot := -1
		flips := ws.flips[:0]
		for _, c := range cands {
			rng := s.p.U[c.j] - s.p.L[c.j]
			if math.IsInf(rng, 1) || math.Abs(c.alpha)*rng >= remaining-1e-12 {
				pivot = c.j
				break
			}
			flips = append(flips, c.j)
			remaining -= math.Abs(c.alpha) * rng
		}
		ws.flips = flips
		if pivot < 0 {
			// Even flipping every candidate cannot repair the row.
			if !s.refreshed {
				if err := s.refactorizeOrRepair(); err != nil {
					return dualGiveUp
				}
				s.refreshed = true
				continue
			}
			return dualInfeasible
		}

		// Apply all flips with one combined FTRAN.
		if len(flips) > 0 {
			for i := range flipAcc {
				flipAcc[i] = 0
			}
			for _, j := range flips {
				var dx float64
				if s.status[j] == NonbasicLower {
					dx = s.p.U[j] - s.p.L[j]
					s.status[j] = NonbasicUpper
					s.x[j] = s.p.U[j]
				} else {
					dx = s.p.L[j] - s.p.U[j]
					s.status[j] = NonbasicLower
					s.x[j] = s.p.L[j]
				}
				rows, vals := s.p.A.Col(j)
				for p, i := range rows {
					flipAcc[i] += vals[p] * dx
				}
			}
			s.factor.ftran(flipAcc)
			for k, j := range s.head {
				s.x[j] -= flipAcc[k]
			}
		}

		// Pivot: entering variable absorbs the residual violation.
		q := pivot
		for i := range s.w {
			s.w[i] = 0
		}
		rows, vals := s.p.A.Col(q)
		for p, i := range rows {
			s.w[i] = vals[p]
		}
		s.factor.ftran(s.w)

		t := (s.x[jOut] - target) / alpha[q]
		enterVal := s.x[q] + t
		for k, j := range s.head {
			s.x[j] -= t * s.w[k]
		}
		s.status[jOut] = outStatus
		s.x[jOut] = target
		s.head[leave] = q
		s.status[q] = Basic
		s.x[q] = enterVal

		// Dual update: theta = d_q / alpha_q shifts the nonbasic row.
		theta := d[q] / alpha[q]
		for _, j := range nbList {
			if alpha[j] != 0 {
				d[j] -= theta * alpha[j]
			}
		}
		d[q] = 0

		// Maintain the candidate list: q became basic (swap-remove), jOut
		// became nonbasic at a bound (append unless its range is fixed).
		pos := nbPos[q]
		last := len(nbList) - 1
		moved := nbList[last]
		nbList[pos] = moved
		nbPos[moved] = pos
		nbList = nbList[:last]
		nbPos[q] = -1
		if s.p.U[jOut]-s.p.L[jOut] > 0 {
			nbPos[jOut] = len(nbList)
			nbList = append(nbList, jOut)
			ws.nbList = nbList
		}
		d[jOut] = -theta

		if !s.factor.update(leave, s.w, s.opts.PivotTol) {
			if err := s.refactorizeOrRepair(); err != nil {
				return dualGiveUp
			}
			reprice()
		}
		s.refreshed = false
		s.iters++

		if math.Abs(theta) > 1e13 {
			return dualGiveUp // numerical blow-up: let the primal repair
		}
	}
}
