//go:build !race

package simplex

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped.
const raceEnabled = false
