package simplex

import (
	"math"
	"math/rand"
	"testing"
)

// warmResolveFixture builds a reproducible LP with an optimal basis and a
// bound tightening that makes that basis primal infeasible but dual
// feasible — the branch-and-bound node state the warm path is built for.
type warmResolveFixture struct {
	p      *Problem
	parent *Basis  // caller-owned copy of the optimal basis
	j      int     // variable whose upper bound is tightened
	origU  float64 // original upper bound of j
	tightU float64 // tightened upper bound
}

func newWarmResolveFixture(t testing.TB, m, ns int, seed int64) *warmResolveFixture {
	rng := rand.New(rand.NewSource(seed))
	p := randomFeasibleLP(rng, m, ns)
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("cold solve: %v", res.Status)
	}
	f := &warmResolveFixture{p: p, parent: res.Basis.Clone(), j: -1}
	// Pick a basic structural variable resting strictly above its lower
	// bound: tightening its upper bound below the current value forces a
	// genuine dual repair.
	for j := 0; j < ns; j++ {
		if res.Basis.Status[j] == Basic && res.X[j]-p.L[j] > 0.5 && p.U[j]-res.X[j] > -1e-9 {
			f.j = j
			f.origU = p.U[j]
			f.tightU = res.X[j] - 0.4
			break
		}
	}
	if f.j < 0 {
		t.Fatalf("seed %d produced no suitable branching variable", seed)
	}
	return f
}

// warmResolve performs one node-style repair with the fixture's parent
// basis and restores the original bound.
func (f *warmResolveFixture) warmResolve(t testing.TB, ws *Workspace) *Result {
	f.p.U[f.j] = f.tightU
	res, err := Solve(f.p, f.parent, Options{PreferDual: true, Workspace: ws})
	f.p.U[f.j] = f.origU
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmResolveZeroAllocs asserts that a warm dual-simplex repair through
// a reused workspace performs no heap allocation once the workspace is
// warmed up — the core acceptance criterion of the pooled hot path.
func TestWarmResolveZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	f := newWarmResolveFixture(t, 25, 40, 7)
	ws := NewWorkspace()
	for i := 0; i < 10; i++ {
		if res := f.warmResolve(t, ws); res.Status != StatusOptimal {
			t.Fatalf("warm resolve: %v", res.Status)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		f.warmResolve(t, ws)
	})
	if allocs != 0 {
		t.Errorf("warm resolve allocates %.2f objects/op, want 0", allocs)
	}
}

// TestWarmResolveMatchesCold cross-checks the pooled warm path against an
// independent cold solve of the tightened problem.
func TestWarmResolveMatchesCold(t *testing.T) {
	f := newWarmResolveFixture(t, 25, 40, 7)
	ws := NewWorkspace()
	warm := f.warmResolve(t, ws)
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status %v", warm.Status)
	}
	warmObj := warm.Obj

	f.p.U[f.j] = f.tightU
	cold, err := Solve(f.p, nil, Options{})
	f.p.U[f.j] = f.origU
	if err != nil || cold.Status != StatusOptimal {
		t.Fatalf("cold: %v %v", err, cold.Status)
	}
	if math.Abs(warmObj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
		t.Errorf("warm obj %g vs cold %g", warmObj, cold.Obj)
	}
}

// TestDevexMatchesDantzig verifies on random LPs that devex/partial pricing
// (the default) and classic full Dantzig pricing reach the same statuses
// and optimal objectives.
func TestDevexMatchesDantzig(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		p := randomFeasibleLP(rng, 2+rng.Intn(6), 3+rng.Intn(8))
		devex, err := Solve(p, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dantzig, err := Solve(p, nil, Options{DantzigPricing: true})
		if err != nil {
			t.Fatal(err)
		}
		if devex.Status != dantzig.Status {
			t.Fatalf("trial %d: devex %v vs dantzig %v", trial, devex.Status, dantzig.Status)
		}
		if devex.Status != StatusOptimal {
			continue
		}
		if math.Abs(devex.Obj-dantzig.Obj) > 1e-5*(1+math.Abs(dantzig.Obj)) {
			t.Fatalf("trial %d: devex obj %g vs dantzig %g", trial, devex.Obj, dantzig.Obj)
		}
		checkKKT(t, p, devex)
	}
}

// TestWorkspaceReuseAcrossSizes drives one workspace through problems of
// varying dimensions, interleaved, and checks every result against a
// workspace-free solve. Shrinking then growing again exercises the
// grow-only buffer management.
func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	ws := NewWorkspace()
	dims := [][2]int{{8, 12}, {2, 3}, {15, 25}, {4, 6}, {15, 30}, {3, 9}}
	for round := 0; round < 3; round++ {
		for _, d := range dims {
			p := randomFeasibleLP(rng, d[0], d[1])
			got, err := Solve(p, nil, Options{Workspace: ws})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Solve(p, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status {
				t.Fatalf("%dx%d: workspace %v vs fresh %v", d[0], d[1], got.Status, want.Status)
			}
			if got.Status == StatusOptimal {
				if math.Abs(got.Obj-want.Obj) > 1e-6*(1+math.Abs(want.Obj)) {
					t.Fatalf("%dx%d: workspace obj %g vs fresh %g", d[0], d[1], got.Obj, want.Obj)
				}
				checkKKT(t, p, got)
			}
		}
	}
}

// TestWarmStartSurvivesRefactorization forces frequent eta-file rebuilds
// (RefactorEvery: 2) through random warm-started bound-tightening
// sequences, asserting the dual repair still reaches the primal-verified
// optimum. This covers the reusable-factorization path: every refactorize
// call reuses the workspace's LU and scratch buffers.
func TestWarmStartSurvivesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	ws := NewWorkspace()
	for trial := 0; trial < 40; trial++ {
		p := randomFeasibleLP(rng, 2+rng.Intn(5), 3+rng.Intn(6))
		res, err := Solve(p, nil, Options{Workspace: ws, RefactorEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			continue
		}
		basis := res.Basis.Clone()
		x := append([]float64(nil), res.X...)
		for step := 0; step < 1+rng.Intn(3); step++ {
			j := rng.Intn(p.NumCols())
			mid := x[j] + rng.NormFloat64()*0.5
			if rng.Intn(2) == 0 {
				if mid < p.U[j] {
					p.U[j] = mid
				}
			} else {
				if mid > p.L[j] {
					p.L[j] = mid
				}
			}
			warm, err := Solve(p, basis, Options{PreferDual: true, Workspace: ws, RefactorEvery: 2})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Solve(p, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm %v vs cold %v", trial, step, warm.Status, cold.Status)
			}
			if warm.Status != StatusOptimal {
				break
			}
			if math.Abs(warm.Obj-cold.Obj) > 1e-5*(1+math.Abs(cold.Obj)) {
				t.Fatalf("trial %d step %d: warm obj %g vs cold %g", trial, step, warm.Obj, cold.Obj)
			}
			checkKKT(t, p, warm)
			basis = warm.Basis.Clone()
			x = append(x[:0], warm.X...)
		}
	}
}

// BenchmarkWarmResolve measures one branch-and-bound-style node repair: a
// single bound tightening against a parent-optimal basis, solved warm with
// the dual simplex through a pooled workspace. The steady state must be
// allocation-free (see TestWarmResolveZeroAllocs).
func BenchmarkWarmResolve(b *testing.B) {
	f := newWarmResolveFixture(b, 25, 40, 7)
	ws := NewWorkspace()
	for i := 0; i < 10; i++ {
		f.warmResolve(b, ws) // warm the workspace
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.warmResolve(b, ws)
	}
}
