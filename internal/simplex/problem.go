// Package simplex implements a revised primal simplex method for linear
// programs in computational form with general variable bounds:
//
//	minimize    cᵀx
//	subject to  A·x = b,   l ≤ x ≤ u
//
// where the last m columns of A are the identity (one logical variable per
// row). The solver uses a sparse LU factorization of the basis with
// product-form-of-inverse eta updates, a composite phase-1 for feasibility,
// devex reference-framework pricing with partial (candidate-list) scans and
// a Bland anti-cycling fallback, and supports warm starts from a
// caller-supplied basis — the workhorse configuration for branch-and-bound
// node solves. A per-worker Workspace makes warm re-solves allocation-free.
package simplex

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"milpjoin/internal/sparse"
)

// Problem is a linear program in computational (equality) form. The caller
// guarantees that the last m columns of A form an identity block (logical
// variables), which gives the solver a trivially nonsingular fallback basis.
type Problem struct {
	A *sparse.CSC // m×n constraint matrix, n ≥ m
	B []float64   // right-hand side, length m
	C []float64   // objective coefficients, length n
	L []float64   // lower bounds, length n (may be -Inf)
	U []float64   // upper bounds, length n (may be +Inf)
}

// NumRows returns the number of constraints m.
func (p *Problem) NumRows() int { return p.A.Rows }

// NumCols returns the number of variables n (structural + logical).
func (p *Problem) NumCols() int { return p.A.Cols }

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	if p.A == nil {
		return errors.New("simplex: nil constraint matrix")
	}
	m, n := p.A.Rows, p.A.Cols
	if len(p.B) != m {
		return fmt.Errorf("simplex: rhs length %d, want %d", len(p.B), m)
	}
	if len(p.C) != n || len(p.L) != n || len(p.U) != n {
		return fmt.Errorf("simplex: c/l/u lengths %d/%d/%d, want %d", len(p.C), len(p.L), len(p.U), n)
	}
	if n < m {
		return fmt.Errorf("simplex: %d variables for %d rows; logical columns missing", n, m)
	}
	for j := 0; j < n; j++ {
		if p.L[j] > p.U[j] {
			// Not an error: signals infeasibility, detected in Solve.
			continue
		}
		if math.IsNaN(p.L[j]) || math.IsNaN(p.U[j]) || math.IsNaN(p.C[j]) {
			return fmt.Errorf("simplex: NaN in column %d", j)
		}
	}
	return nil
}

// VarStatus describes the role of a variable in the current basis.
type VarStatus int8

const (
	// NonbasicLower marks a nonbasic variable resting at its lower bound.
	NonbasicLower VarStatus = iota
	// NonbasicUpper marks a nonbasic variable resting at its upper bound.
	NonbasicUpper
	// NonbasicFree marks a nonbasic free variable resting at zero.
	NonbasicFree
	// Basic marks a basic variable.
	Basic
)

// Basis captures the state needed to warm start the simplex method.
type Basis struct {
	Status []VarStatus // per-variable status, length n
	Head   []int       // indices of basic variables, length m
}

// Clone returns a deep copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	c := &Basis{
		Status: make([]VarStatus, len(b.Status)),
		Head:   make([]int, len(b.Head)),
	}
	copy(c.Status, b.Status)
	copy(c.Head, b.Head)
	return c
}

// valid performs a cheap consistency check of a warm-start basis against a
// problem of n variables and m rows.
func (b *Basis) valid(m, n int) bool {
	return b.validIn(m, n, make([]bool, n))
}

// validIn is valid with caller-provided scratch (length ≥ n, all false on
// entry; restored to all false before returning) so the warm path avoids
// allocating.
func (b *Basis) validIn(m, n int, seen []bool) bool {
	if b == nil || len(b.Status) != n || len(b.Head) != m {
		return false
	}
	basics := 0
	for _, s := range b.Status {
		if s == Basic {
			basics++
		}
	}
	if basics != m {
		return false
	}
	ok := true
	marked := 0
	for _, j := range b.Head {
		if j < 0 || j >= n || b.Status[j] != Basic || seen[j] {
			ok = false
			break
		}
		seen[j] = true
		marked++
	}
	for _, j := range b.Head[:marked] {
		seen[j] = false
	}
	return ok
}

// Status is the outcome of a simplex solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the problem has no feasible solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was exhausted.
	StatusIterLimit
	// StatusAborted means a deadline or stop flag interrupted the solve.
	StatusAborted
)

// String renders the status for logs.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration limit"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of a solve.
//
// When the solve used a caller-supplied Workspace, the Result and its
// slices (X, Y, Basis) alias workspace storage and are only valid until
// the next Solve with that workspace; copy anything that must outlive it.
type Result struct {
	Status Status
	Obj    float64   // objective value of X (meaningful for Optimal)
	X      []float64 // primal solution, length n
	Y      []float64 // dual values (row prices), length m, for Optimal
	Basis  *Basis    // final basis, usable for warm starts
	Iters  int       // simplex iterations across both phases
	// Refactors counts sparse LU refactorizations performed during the
	// solve (basis installs, periodic rebuilds, and repair resets) — the
	// dominant per-solve linear-algebra cost besides pivoting, surfaced
	// for the observability layer.
	Refactors int
	// Pricing reports pricing-rule behaviour during the solve.
	Pricing PricingStats
}

// PricingStats counts pricing-rule behaviour during one solve, surfaced so
// performance work can see how devex and partial pricing behave on a
// workload.
type PricingStats struct {
	// DevexResets counts devex reference-framework resets triggered by
	// weight blow-up.
	DevexResets int
	// ScannedCols counts columns actually priced across all pricing
	// passes (primal partial scans and dual candidate passes).
	ScannedCols int
	// TotalCols counts the columns a full-pricing rule would have priced
	// in the same passes; ScannedCols/TotalCols is the scan fraction.
	TotalCols int
}

// ScanFraction is the fraction of full-pricing work actually performed
// (1 when no pricing pass ran).
func (p PricingStats) ScanFraction() float64 {
	if p.TotalCols == 0 {
		return 1
	}
	return float64(p.ScannedCols) / float64(p.TotalCols)
}

// add accumulates counters from another solve.
func (p *PricingStats) Add(o PricingStats) {
	p.DevexResets += o.DevexResets
	p.ScannedCols += o.ScannedCols
	p.TotalCols += o.TotalCols
}

// Options tune the solver.
type Options struct {
	// MaxIter bounds total simplex iterations; 0 means a generous
	// default proportional to the problem size.
	MaxIter int
	// FeasTol is the primal feasibility tolerance (default 1e-7).
	FeasTol float64
	// OptTol is the reduced-cost optimality tolerance (default 1e-7).
	OptTol float64
	// PivotTol rejects ratio-test pivots smaller than this (default 1e-8).
	PivotTol float64
	// RefactorEvery bounds the eta file length before refactorization
	// (default 64).
	RefactorEvery int
	// Deadline, when nonzero, aborts the solve once passed.
	Deadline time.Time
	// Stop, when non-nil, aborts the solve once set.
	Stop *atomic.Bool
	// Ctx, when non-nil, aborts the solve once the context ends. The
	// iteration loops poll it periodically, so long solves return
	// StatusAborted shortly after cancellation.
	Ctx context.Context
	// BlandAfter switches to Bland's anti-cycling rule after this many
	// consecutive degenerate iterations (default 200).
	BlandAfter int
	// PreferDual tries dual simplex iterations first when a warm-start
	// basis is primal infeasible but dual feasible — the typical state
	// of a branch-and-bound node after its parent's bound change. Falls
	// back to the composite primal phase 1 automatically.
	PreferDual bool
	// Workspace, when non-nil, supplies a reusable arena for every solver
	// array, making warm re-solves allocation-free. The Result returned
	// from such a solve aliases workspace storage (see Result). A
	// workspace must not be shared between concurrent solves.
	Workspace *Workspace
	// DantzigPricing disables devex weights and partial pricing in favour
	// of the classic full Dantzig rule (price every column, largest
	// reduced cost enters). Intended for ablations and equivalence tests.
	DantzigPricing bool
}

func (o Options) withDefaults(m, n int) Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 200*(m+n) + 10000
	}
	if o.FeasTol <= 0 {
		o.FeasTol = 1e-7
	}
	if o.OptTol <= 0 {
		o.OptTol = 1e-7
	}
	if o.PivotTol <= 0 {
		o.PivotTol = 1e-8
	}
	if o.RefactorEvery <= 0 {
		o.RefactorEvery = 64
	}
	if o.BlandAfter <= 0 {
		o.BlandAfter = 200
	}
	return o
}
