package simplex

// Workspace is a reusable arena for Solve. Branch-and-bound explores
// thousands of node LPs over the same matrix; threading one workspace per
// worker through Options.Workspace makes warm-started re-solves
// allocation-free: every solver array (statuses, basis head, primal and
// dual values, FTRAN/BTRAN scratch, the eta file, LU factorization buffers,
// devex weights, and pricing candidate lists) is reused across calls,
// growing only when a larger problem arrives.
//
// A workspace is not safe for concurrent use, and the Result returned by a
// Solve that used it (including Result.X, Result.Y, and Result.Basis) is
// only valid until the next Solve with the same workspace — callers that
// keep solutions or bases across solves must copy them out.
type Workspace struct {
	sol solver // reused solver state; avoids one heap allocation per call

	m, n int

	// Core solver arrays (see solver for their roles).
	status     []VarStatus
	head       []int
	x          []float64
	tolL, tolU []float64
	y, w, cB   []float64

	factor basisFactor

	// Devex reference-framework weights and the static candidate list of
	// non-fixed columns for primal pricing.
	devexW     []float64
	activeCols []int

	// Dual simplex working set.
	rho, d, alpha []float64
	flipAcc       []float64
	cands         []dualCandidate
	flips         []int
	nbList        []int // nonbasic non-fixed columns, maintained per pivot
	nbPos         []int // column → position in nbList, -1 when absent

	// Warm-basis validation scratch (kept all-false between uses).
	seen []bool

	// Reusable Result storage.
	res      Result
	resX     []float64
	resY     []float64
	resBasis Basis
}

// NewWorkspace returns an empty workspace ready for reuse across solves.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes every buffer for an m×n problem, growing but never shrinking
// backing storage.
func (ws *Workspace) ensure(m, n int) {
	ws.m, ws.n = m, n
	ws.status = growStatuses(ws.status, n)
	ws.head = growInts(ws.head, m)
	ws.x = growFloats(ws.x, n)
	ws.tolL = growFloats(ws.tolL, n)
	ws.tolU = growFloats(ws.tolU, n)
	ws.y = growFloats(ws.y, m)
	ws.w = growFloats(ws.w, m)
	ws.cB = growFloats(ws.cB, m)
	ws.devexW = growFloats(ws.devexW, n)
	ws.rho = growFloats(ws.rho, m)
	ws.d = growFloats(ws.d, n)
	ws.alpha = growFloats(ws.alpha, n)
	ws.flipAcc = growFloats(ws.flipAcc, m)
	ws.nbPos = growInts(ws.nbPos, n)
	if cap(ws.seen) < n {
		ws.seen = make([]bool, n) // all-false invariant holds for fresh storage
	} else {
		ws.seen = ws.seen[:n]
	}
	ws.factor.reset(m)
}

// resetResult clears the pooled Result for a new solve, keeping slice
// capacity.
func (ws *Workspace) resetResult() *Result {
	res := &ws.res
	*res = Result{}
	ws.resX = ws.resX[:0]
	ws.resY = ws.resY[:0]
	return res
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growStatuses(s []VarStatus, n int) []VarStatus {
	if cap(s) < n {
		return make([]VarStatus, n)
	}
	return s[:n]
}
