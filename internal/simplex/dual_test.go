package simplex

import (
	"math"
	"math/rand"
	"testing"
)

// warmWithDual re-solves a problem after bound changes, warm starting with
// PreferDual, and cross-checks the result against a cold primal solve.
func warmWithDual(t *testing.T, p *Problem, warm *Basis) {
	t.Helper()
	dual, err := Solve(p, warm, Options{PreferDual: true})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Status != cold.Status {
		t.Fatalf("dual-warm status %v vs cold %v", dual.Status, cold.Status)
	}
	if dual.Status == StatusOptimal {
		if math.Abs(dual.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("dual-warm obj %g vs cold %g", dual.Obj, cold.Obj)
		}
		checkKKT(t, p, dual)
	}
}

func TestDualSimplexAfterUpperBoundTightening(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]string{"<=", "<=", "<="},
		[]float64{4, 12, 18},
		[]float64{-3, -5},
		[]float64{0, 0},
		[]float64{pInf(), pInf()},
	)
	res, err := Solve(p, nil, Options{})
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("cold solve: %v %v", err, res.Status)
	}
	// Branching-style change: x ≤ 1 makes the optimal basis primal
	// infeasible but dual feasible.
	p.U[0] = 1
	warmWithDual(t, p, res.Basis)
}

func TestDualSimplexAfterLowerBoundTightening(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 1}, {2, 1}},
		[]string{"<=", "<="},
		[]float64{8, 12},
		[]float64{-2, -3},
		[]float64{0, 0},
		[]float64{6, 6},
	)
	res, err := Solve(p, nil, Options{})
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("cold solve: %v %v", err, res.Status)
	}
	p.L[0] = 3 // force x up
	warmWithDual(t, p, res.Basis)
}

func TestDualSimplexDetectsInfeasibility(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"<="},
		[]float64{4},
		[]float64{-1, -1},
		[]float64{0, 0},
		[]float64{10, 10},
	)
	res, err := Solve(p, nil, Options{})
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("cold solve: %v %v", err, res.Status)
	}
	// x ≥ 3 and y ≥ 3 cannot fit under x + y ≤ 4.
	p.L[0], p.L[1] = 3, 3
	dual, err := Solve(p, res.Basis, Options{PreferDual: true})
	if err != nil {
		t.Fatal(err)
	}
	if dual.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", dual.Status)
	}
}

func TestDualSimplexRandomBranchingSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		p := randomFeasibleLP(rng, 2+rng.Intn(4), 3+rng.Intn(5))
		res, err := Solve(p, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			continue
		}
		// Apply 1-3 random bound tightenings, warm starting each time.
		basis := res.Basis
		for step := 0; step < 1+rng.Intn(3); step++ {
			j := rng.Intn(p.NumCols())
			mid := res.X[j] + rng.NormFloat64()*0.5
			if rng.Intn(2) == 0 {
				if mid < p.U[j] {
					p.U[j] = mid
				}
			} else {
				if mid > p.L[j] {
					p.L[j] = mid
				}
			}
			dual, err := Solve(p, basis, Options{PreferDual: true})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Solve(p, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dual.Status != cold.Status {
				t.Fatalf("trial %d step %d: dual %v vs cold %v", trial, step, dual.Status, cold.Status)
			}
			if dual.Status != StatusOptimal {
				break
			}
			if math.Abs(dual.Obj-cold.Obj) > 1e-5*(1+math.Abs(cold.Obj)) {
				t.Fatalf("trial %d step %d: dual obj %g vs cold %g", trial, step, dual.Obj, cold.Obj)
			}
			basis = dual.Basis
		}
	}
}

func TestDualFeasibleDetection(t *testing.T) {
	p := buildProblem(
		[][]float64{{1, 1}},
		[]string{"<="},
		[]float64{4},
		[]float64{1, 1}, // minimizing positive costs: origin optimal
		[]float64{0, 0},
		[]float64{10, 10},
	)
	res, err := Solve(p, nil, Options{})
	if err != nil || res.Status != StatusOptimal {
		t.Fatalf("%v %v", err, res.Status)
	}
	s := &solver{p: p, opts: Options{}.withDefaults(p.NumRows(), p.NumCols()), m: p.NumRows(), n: p.NumCols(), ws: NewWorkspace()}
	s.init(res.Basis)
	if !s.dualFeasible() {
		t.Error("optimal basis should be dual feasible")
	}
}
