// Package sql provides a front end for the optimizer: a catalog of table
// statistics and a parser for a small SQL subset (select-project-join
// queries), translating them into the qopt problem model with textbook
// selectivity estimation — the path a query takes through a real system
// before join ordering begins.
package sql

import (
	"fmt"
	"math"
	"sort"

	"milpjoin/internal/qopt"
)

// ColumnStats describe one column for selectivity estimation.
type ColumnStats struct {
	// Distinct is the number of distinct values (≥ 1).
	Distinct float64
	// Bytes is the per-tuple width (used by the projection extension).
	Bytes float64
}

// TableStats describe one base table.
type TableStats struct {
	// Card is the table cardinality.
	Card float64
	// Columns maps column name → statistics.
	Columns map[string]ColumnStats
	// SortedOn names the column the table is physically sorted on
	// (empty: unsorted).
	SortedOn string
}

// Catalog maps table names to statistics.
type Catalog struct {
	Tables map[string]TableStats
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{Tables: map[string]TableStats{}}
}

// AddTable registers a table.
func (c *Catalog) AddTable(name string, stats TableStats) *Catalog {
	c.Tables[name] = stats
	return c
}

// selectivity estimation defaults (System R heritage).
const (
	defaultEqSel    = 0.1    // equality with unknown distinct count
	defaultRangeSel = 1. / 3 // inequality comparisons
)

// joinSelectivity estimates sel(a = b) as 1/max(V(a), V(b)).
func (c *Catalog) joinSelectivity(t1, c1, t2, c2 string) float64 {
	v1 := c.distinct(t1, c1)
	v2 := c.distinct(t2, c2)
	v := math.Max(v1, v2)
	if v <= 0 {
		return defaultEqSel
	}
	return clampSel(1 / v)
}

// filterSelectivity estimates a column-vs-constant comparison.
func (c *Catalog) filterSelectivity(table, col, op string) float64 {
	switch op {
	case "=":
		if v := c.distinct(table, col); v > 0 {
			return clampSel(1 / v)
		}
		return defaultEqSel
	case "<", ">", "<=", ">=":
		return defaultRangeSel
	case "<>", "!=":
		if v := c.distinct(table, col); v > 0 {
			return clampSel(1 - 1/v)
		}
		return 1 - defaultEqSel
	default:
		return defaultEqSel
	}
}

func (c *Catalog) distinct(table, col string) float64 {
	ts, ok := c.Tables[table]
	if !ok {
		return 0
	}
	cs, ok := ts.Columns[col]
	if !ok {
		return 0
	}
	return cs.Distinct
}

func clampSel(s float64) float64 {
	if s <= 0 {
		return 1e-9
	}
	if s > 1 {
		return 1
	}
	return s
}

// Translate builds a qopt.Query from a parsed statement and the catalog.
// The returned alias list maps qopt table indices back to query aliases.
func (c *Catalog) Translate(stmt *SelectStatement) (*qopt.Query, []string, error) {
	if len(stmt.From) < 2 {
		return nil, nil, fmt.Errorf("sql: join ordering needs at least two tables, got %d", len(stmt.From))
	}
	q := &qopt.Query{}
	aliasIdx := map[string]int{}
	var aliases []string
	for _, fr := range stmt.From {
		ts, ok := c.Tables[fr.Table]
		if !ok {
			return nil, nil, fmt.Errorf("sql: unknown table %q", fr.Table)
		}
		if _, dup := aliasIdx[fr.Alias]; dup {
			return nil, nil, fmt.Errorf("sql: duplicate alias %q", fr.Alias)
		}
		aliasIdx[fr.Alias] = len(q.Tables)
		aliases = append(aliases, fr.Alias)
		q.Tables = append(q.Tables, qopt.Table{
			Name:   fr.Alias,
			Card:   ts.Card,
			Sorted: ts.SortedOn != "",
		})
	}

	resolve := func(ref ColumnRef) (int, string, error) {
		idx, ok := aliasIdx[ref.Qualifier]
		if !ok {
			return 0, "", fmt.Errorf("sql: unknown table alias %q", ref.Qualifier)
		}
		table := stmt.From[idx].Table
		if _, ok := c.Tables[table].Columns[ref.Column]; !ok {
			return 0, "", fmt.Errorf("sql: unknown column %s.%s", table, ref.Column)
		}
		return idx, table, nil
	}

	for _, cond := range stmt.Where {
		li, lt, err := resolve(cond.Left)
		if err != nil {
			return nil, nil, err
		}
		if cond.RightColumn != nil {
			ri, rt, err := resolve(*cond.RightColumn)
			if err != nil {
				return nil, nil, err
			}
			if cond.Op != "=" {
				return nil, nil, fmt.Errorf("sql: only equi-joins are supported between columns (got %q)", cond.Op)
			}
			if li == ri {
				return nil, nil, fmt.Errorf("sql: self-comparison %s.%s = %s.%s within one table",
					cond.Left.Qualifier, cond.Left.Column, cond.RightColumn.Qualifier, cond.RightColumn.Column)
			}
			q.Predicates = append(q.Predicates, qopt.Predicate{
				Name:   fmt.Sprintf("%s.%s=%s.%s", cond.Left.Qualifier, cond.Left.Column, cond.RightColumn.Qualifier, cond.RightColumn.Column),
				Tables: []int{li, ri},
				Sel:    c.joinSelectivity(lt, cond.Left.Column, rt, cond.RightColumn.Column),
			})
			continue
		}
		q.Predicates = append(q.Predicates, qopt.Predicate{
			Name:   fmt.Sprintf("%s.%s%s%v", cond.Left.Qualifier, cond.Left.Column, cond.Op, cond.RightValue),
			Tables: []int{li},
			Sel:    c.filterSelectivity(lt, cond.Left.Column, cond.Op),
		})
	}

	// Columns for the projection extension: every catalog column of the
	// referenced tables, with SELECT-list columns marked required
	// (SELECT * marks all).
	for ti, fr := range stmt.From {
		ts := c.Tables[fr.Table]
		names := make([]string, 0, len(ts.Columns))
		for name := range ts.Columns {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			q.Columns = append(q.Columns, qopt.Column{
				Name:     fr.Alias + "." + name,
				Table:    ti,
				Bytes:    math.Max(ts.Columns[name].Bytes, 1),
				Required: stmt.SelectAll || stmt.selects(fr.Alias, name),
			})
		}
	}

	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	return q, aliases, nil
}

// selects reports whether the select list names alias.column.
func (s *SelectStatement) selects(alias, column string) bool {
	for _, ref := range s.Select {
		if ref.Qualifier == alias && ref.Column == column {
			return true
		}
	}
	return false
}
