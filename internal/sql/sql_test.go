package sql

import (
	"context"
	"math"
	"strings"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
)

func testCatalog() *Catalog {
	return NewCatalog().
		AddTable("orders", TableStats{
			Card: 100000,
			Columns: map[string]ColumnStats{
				"id":       {Distinct: 100000, Bytes: 8},
				"cust_id":  {Distinct: 5000, Bytes: 8},
				"item_id":  {Distinct: 2000, Bytes: 8},
				"quantity": {Distinct: 50, Bytes: 4},
			},
			SortedOn: "id",
		}).
		AddTable("customers", TableStats{
			Card: 5000,
			Columns: map[string]ColumnStats{
				"id":     {Distinct: 5000, Bytes: 8},
				"region": {Distinct: 20, Bytes: 16},
			},
		}).
		AddTable("items", TableStats{
			Card: 2000,
			Columns: map[string]ColumnStats{
				"id":    {Distinct: 2000, Bytes: 8},
				"price": {Distinct: 500, Bytes: 8},
			},
		})
}

const demoQuery = `
SELECT o.id, c.region
FROM orders o, customers AS c, items i
WHERE o.cust_id = c.id AND o.item_id = i.id AND i.price < 100
`

func TestParseDemoQuery(t *testing.T) {
	stmt, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.SelectAll {
		t.Error("SelectAll set for explicit select list")
	}
	if len(stmt.Select) != 2 || stmt.Select[0] != (ColumnRef{"o", "id"}) {
		t.Errorf("select list = %v", stmt.Select)
	}
	if len(stmt.From) != 3 {
		t.Fatalf("from = %v", stmt.From)
	}
	if stmt.From[0].Alias != "o" || stmt.From[1].Alias != "c" || stmt.From[2].Alias != "i" {
		t.Errorf("aliases = %v", stmt.From)
	}
	if len(stmt.Where) != 3 {
		t.Fatalf("where = %v", stmt.Where)
	}
	if stmt.Where[0].RightColumn == nil || stmt.Where[2].RightColumn != nil {
		t.Error("join/filter classification wrong")
	}
	if stmt.Where[2].Op != "<" || stmt.Where[2].RightValue != 100.0 {
		t.Errorf("filter = %+v", stmt.Where[2])
	}
}

func TestTranslateDemoQuery(t *testing.T) {
	stmt, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, aliases, err := testCatalog().Translate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliases) != 3 || aliases[0] != "o" {
		t.Errorf("aliases = %v", aliases)
	}
	if q.NumTables() != 3 {
		t.Fatalf("tables = %d", q.NumTables())
	}
	if q.Tables[0].Card != 100000 || !q.Tables[0].Sorted {
		t.Errorf("orders stats wrong: %+v", q.Tables[0])
	}
	// Join selectivities: 1/max(V) = 1/5000 and 1/2000.
	if len(q.Predicates) != 3 {
		t.Fatalf("predicates = %v", q.Predicates)
	}
	if math.Abs(q.Predicates[0].Sel-1.0/5000) > 1e-12 {
		t.Errorf("join sel = %g, want 1/5000", q.Predicates[0].Sel)
	}
	if math.Abs(q.Predicates[1].Sel-1.0/2000) > 1e-12 {
		t.Errorf("join sel = %g, want 1/2000", q.Predicates[1].Sel)
	}
	// Filter: range default 1/3, unary.
	if len(q.Predicates[2].Tables) != 1 || math.Abs(q.Predicates[2].Sel-1.0/3) > 1e-12 {
		t.Errorf("filter predicate = %+v", q.Predicates[2])
	}
	// Required columns: o.id and c.region.
	required := map[string]bool{}
	for _, col := range q.Columns {
		if col.Required {
			required[col.Name] = true
		}
	}
	if !required["o.id"] || !required["c.region"] || len(required) != 2 {
		t.Errorf("required columns = %v", required)
	}
}

func TestTranslatedQueryOptimizes(t *testing.T) {
	stmt, err := Parse(demoQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := testCatalog().Translate(stmt)
	if err != nil {
		t.Fatal(err)
	}
	pl, c, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(q); err != nil {
		t.Fatal(err)
	}
	if c < 0 {
		t.Errorf("cost = %g", c)
	}
}

func TestParseSelectStar(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a, b WHERE a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	if !stmt.SelectAll {
		t.Error("SelectAll not set")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no from":          "SELECT *",
		"bare column":      "SELECT x FROM a, b",
		"bad operator":     "SELECT * FROM a, b WHERE a.x == b.y",
		"trailing":         "SELECT * FROM a, b WHERE a.x = b.y GROUP",
		"unterminated str": "SELECT * FROM a, b WHERE a.x = 'oops",
		"missing rhs":      "SELECT * FROM a, b WHERE a.x =",
		"bad char":         "SELECT * FROM a, b WHERE a.x = #",
		"no alias":         "SELECT * FROM a AS , b",
	}
	for name, input := range cases {
		if _, err := Parse(input); err == nil {
			t.Errorf("%s: expected parse error for %q", name, input)
		}
	}
}

func TestParseSemicolonAndStrings(t *testing.T) {
	stmt, err := Parse("SELECT * FROM a, b WHERE a.x = b.y AND a.name = 'north west';")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Where) != 2 || stmt.Where[1].RightValue != "north west" {
		t.Errorf("where = %+v", stmt.Where)
	}
}

func TestTranslateErrors(t *testing.T) {
	cat := testCatalog()
	cases := map[string]string{
		"one table":       "SELECT * FROM orders",
		"unknown table":   "SELECT * FROM orders o, nosuch n WHERE o.id = n.id",
		"dup alias":       "SELECT * FROM orders o, customers o WHERE o.id = o.id",
		"unknown alias":   "SELECT * FROM orders o, customers c WHERE x.id = c.id",
		"unknown column":  "SELECT * FROM orders o, customers c WHERE o.nope = c.id",
		"non-equi join":   "SELECT * FROM orders o, customers c WHERE o.cust_id < c.id",
		"self comparison": "SELECT * FROM orders o, customers c WHERE o.id = o.cust_id AND o.id = c.id",
	}
	for name, input := range cases {
		stmt, err := Parse(input)
		if err != nil {
			continue // parse-level rejection also counts
		}
		if _, _, err := cat.Translate(stmt); err == nil {
			t.Errorf("%s: expected translate error for %q", name, input)
		}
	}
}

func TestFilterSelectivities(t *testing.T) {
	cat := testCatalog()
	if got := cat.filterSelectivity("customers", "region", "="); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("equality sel = %g, want 1/20", got)
	}
	if got := cat.filterSelectivity("customers", "region", "<"); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("range sel = %g", got)
	}
	if got := cat.filterSelectivity("customers", "region", "<>"); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("inequality sel = %g", got)
	}
	if got := cat.filterSelectivity("nosuch", "col", "="); got != defaultEqSel {
		t.Errorf("unknown column sel = %g", got)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select * FROM a, b where a.x = b.y"); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(strings.ToUpper("select * from a, b where a.x = b.y")); err != nil {
		t.Fatal(err)
	}
}
