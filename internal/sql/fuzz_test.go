package sql

import (
	"strings"
	"testing"
)

// FuzzSQLParse checks the parser never panics and that every statement it
// accepts re-parses after rendering its clauses back to text — accepted
// input must be structurally self-consistent, not just lucky.
func FuzzSQLParse(f *testing.F) {
	f.Add("SELECT * FROM r, s WHERE r.a = s.b")
	f.Add("SELECT r.a, s.b FROM r JOIN s ON r.a = s.b JOIN t ON s.c = t.d")
	f.Add("select t1.x from tab t1, tab2 t2 where t1.x = t2.y and t2.z = t1.w")
	f.Add("SELECT * FROM a")
	f.Add("SELECT * FROM a, b, c WHERE a.x=b.x AND b.y=c.y AND a.z=c.z")
	f.Add("")
	f.Add("SELECT")
	f.Add("SELECT * FROM r WHERE r.a = r.a")
	f.Add("SELECT * FROM \x00")

	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatal("nil statement with nil error")
		}
		if len(stmt.From) == 0 {
			t.Fatalf("accepted statement without tables: %q", input)
		}
		for _, fi := range stmt.From {
			if strings.TrimSpace(fi.Table) == "" || strings.TrimSpace(fi.Alias) == "" {
				t.Fatalf("accepted empty table reference: %q", input)
			}
		}
		if !stmt.SelectAll && len(stmt.Select) == 0 {
			t.Fatalf("accepted statement selecting nothing: %q", input)
		}
	})
}
