package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ColumnRef is a qualified column: alias.column.
type ColumnRef struct {
	Qualifier string
	Column    string
}

// Condition is one conjunct of the WHERE clause: either a join predicate
// (RightColumn set) or a filter against a constant (RightValue set).
type Condition struct {
	Left        ColumnRef
	Op          string
	RightColumn *ColumnRef
	RightValue  any // float64 or string
}

// FromItem is one table reference with its alias (the table name itself
// when no alias is given).
type FromItem struct {
	Table string
	Alias string
}

// SelectStatement is a parsed select-project-join query.
type SelectStatement struct {
	SelectAll bool
	Select    []ColumnRef
	From      []FromItem
	Where     []Condition
}

// Parse parses a select-project-join statement of the form
//
//	SELECT r.a, s.b FROM R r, S s, T WHERE r.x = s.y AND s.k < 10
//
// Supported: SELECT * or a list of qualified columns; FROM with optional
// aliases (with or without AS); WHERE as a conjunction of equi-join
// predicates and column-vs-constant comparisons (= < > <= >= <>).
func Parse(input string) (*SelectStatement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() && !(p.peek().kind == tokSymbol && p.peek().text == ";") {
		return nil, fmt.Errorf("sql: unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

// --- lexer ---

type tokenKind int

const (
	tokIdent tokenKind = iota
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		r := rune(input[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case unicode.IsLetter(r) || r == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		case unicode.IsDigit(r):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '+' || input[j] == '-') && j > i && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case r == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sql: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, input[i+1 : j], i})
			i = j + 1
		case strings.ContainsRune("<>=!", r):
			j := i + 1
			if j < len(input) && (input[j] == '=' || (r == '<' && input[j] == '>')) {
				j++
			}
			toks = append(toks, token{tokSymbol, input[i:j], i})
			i = j
		case strings.ContainsRune(",.*();", r):
			toks = append(toks, token{tokSymbol, string(r), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) atEnd() bool    { return p.pos >= len(p.toks) }
func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	if p.atEnd() || p.peek().kind != tokIdent || !strings.EqualFold(p.peek().text, kw) {
		got := "end of input"
		if !p.atEnd() {
			got = fmt.Sprintf("%q", p.peek().text)
		}
		return fmt.Errorf("sql: expected %s, got %s", strings.ToUpper(kw), got)
	}
	p.advance()
	return nil
}

func (p *parser) matchKeyword(kw string) bool {
	if !p.atEnd() && p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) matchSymbol(s string) bool {
	if !p.atEnd() && p.peek().kind == tokSymbol && p.peek().text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseSelect() (*SelectStatement, error) {
	stmt := &SelectStatement{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if p.matchSymbol("*") {
		stmt.SelectAll = true
	} else {
		for {
			ref, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.Select = append(stmt.Select, ref)
			if !p.matchSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		if p.atEnd() || p.peek().kind != tokIdent {
			return nil, fmt.Errorf("sql: expected table name in FROM")
		}
		item := FromItem{Table: p.advance().text}
		item.Alias = item.Table
		if p.matchKeyword("as") {
			if p.atEnd() || p.peek().kind != tokIdent {
				return nil, fmt.Errorf("sql: expected alias after AS")
			}
			item.Alias = p.advance().text
		} else if !p.atEnd() && p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			item.Alias = p.advance().text
		}
		stmt.From = append(stmt.From, item)
		if !p.matchSymbol(",") {
			break
		}
	}

	if p.matchKeyword("where") {
		for {
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.matchKeyword("and") {
				break
			}
		}
	}
	return stmt, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	if p.atEnd() || p.peek().kind != tokIdent {
		return ColumnRef{}, fmt.Errorf("sql: expected column reference")
	}
	qual := p.advance().text
	if !p.matchSymbol(".") {
		return ColumnRef{}, fmt.Errorf("sql: column references must be qualified (got bare %q)", qual)
	}
	if p.atEnd() || p.peek().kind != tokIdent {
		return ColumnRef{}, fmt.Errorf("sql: expected column name after %q.", qual)
	}
	return ColumnRef{Qualifier: qual, Column: p.advance().text}, nil
}

func (p *parser) parseCondition() (Condition, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Condition{}, err
	}
	if p.atEnd() || p.peek().kind != tokSymbol {
		return Condition{}, fmt.Errorf("sql: expected comparison operator")
	}
	op := p.advance().text
	switch op {
	case "=", "<", ">", "<=", ">=", "<>", "!=":
	default:
		return Condition{}, fmt.Errorf("sql: unsupported operator %q", op)
	}
	cond := Condition{Left: left, Op: op}

	if p.atEnd() {
		return Condition{}, fmt.Errorf("sql: expected right-hand side after %q", op)
	}
	switch t := p.peek(); t.kind {
	case tokIdent:
		ref, err := p.parseColumnRef()
		if err != nil {
			return Condition{}, err
		}
		cond.RightColumn = &ref
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Condition{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		cond.RightValue = v
	case tokString:
		p.advance()
		cond.RightValue = t.text
	default:
		return Condition{}, fmt.Errorf("sql: unexpected %q on right-hand side", t.text)
	}
	return cond, nil
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "and", "as":
		return true
	}
	return false
}
