package cost

import (
	"math"
	"testing"

	"milpjoin/internal/qopt"
)

func feedbackQuery() *qopt.Query {
	return &qopt.Query{
		Tables: []qopt.Table{{Card: 100}, {Card: 100}, {Card: 100}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.01},
			{Tables: []int{1, 2}, Sel: 0.1},
			{Tables: []int{0}, Sel: 0.5},
		},
	}
}

func TestObserveJoinSinglePredicate(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	// Estimated 100 rows, measured 1000: the single applied predicate's
	// selectivity scales by 10.
	c.ObserveJoin(q, []int{0}, 100, 1000)
	if got := c.PredSel[0]; math.Abs(got-0.1) > 1e-12 {
		t.Errorf("corrected sel %g, want 0.1", got)
	}
	if c.Len() != 1 {
		t.Errorf("corrections hold %d entries, want 1", c.Len())
	}
}

func TestObserveJoinDistributesOverPredicates(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	// Two predicates applied, ratio 100: each takes the square root, 10.
	c.ObserveJoin(q, []int{0, 1}, 10, 1000)
	if got := c.PredSel[0]; math.Abs(got-0.1) > 1e-12 {
		t.Errorf("pred 0 corrected to %g, want 0.1", got)
	}
	if got := c.PredSel[1]; math.Abs(got-1.0) > 1e-12 {
		t.Errorf("pred 1 corrected to %g, want 1.0 (clamped)", got)
	}
}

func TestObserveJoinCompounds(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	c.ObserveJoin(q, []int{0}, 100, 1000) // ×10 → 0.1
	c.ObserveJoin(q, []int{0}, 100, 200)  // ×2 on the corrected value
	if got := c.PredSel[0]; math.Abs(got-0.2) > 1e-12 {
		t.Errorf("compounded sel %g, want 0.2", got)
	}
}

func TestObserveJoinIgnoresCrossProducts(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	c.ObserveJoin(q, nil, 10, 1000)
	if c.Len() != 0 {
		t.Error("cross product produced a correction")
	}
}

func TestObserveScan(t *testing.T) {
	c := NewSelectivityCorrections()
	c.ObserveScan([]int{2}, 200, 50)
	if got := c.PredSel[2]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("scan correction %g, want 0.25", got)
	}
	c2 := NewSelectivityCorrections()
	c2.ObserveScan(nil, 200, 50)
	c2.ObserveScan([]int{1}, 0, 0)
	if c2.Len() != 0 {
		t.Error("degenerate scans produced corrections")
	}
}

func TestApplyLeavesOriginalUntouched(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	c.PredSel[0] = 0.5
	c.PredSel[99] = 0.5 // out of range: ignored
	out := c.Apply(q)
	if out.Predicates[0].Sel != 0.5 {
		t.Errorf("applied sel %g, want 0.5", out.Predicates[0].Sel)
	}
	if out.Predicates[1].Sel != 0.1 {
		t.Errorf("uncorrected sel changed to %g", out.Predicates[1].Sel)
	}
	if q.Predicates[0].Sel != 0.01 {
		t.Error("Apply mutated the input query")
	}
}

func TestMaxCorrectionFactor(t *testing.T) {
	q := feedbackQuery()
	c := NewSelectivityCorrections()
	if got := c.MaxCorrectionFactor(q); got != 1 {
		t.Errorf("empty corrections factor %g, want 1", got)
	}
	c.PredSel[0] = 0.1   // ×10 up
	c.PredSel[1] = 0.05  // ×2 down
	c.PredSel[42] = 0.01 // out of range: ignored
	if got := c.MaxCorrectionFactor(q); math.Abs(got-10) > 1e-9 {
		t.Errorf("factor %g, want 10", got)
	}
}

func TestClampSel(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0.5, 0.5},
		{2, 1},
		{0, 1e-12},
		{-1, 1e-12},
		{math.NaN(), 1e-12},
	} {
		if got := clampSel(tc.in); got != tc.want {
			t.Errorf("clampSel(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}
