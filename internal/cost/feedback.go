package cost

import (
	"math"

	"milpjoin/internal/qopt"
)

// SelectivityCorrections accumulates measured-cardinality feedback as
// corrected predicate selectivities, keyed by predicate index. It is the
// value the executor's trace is distilled into and the optimizer's input
// for re-optimization: Apply produces the corrected query.
type SelectivityCorrections struct {
	// PredSel maps predicate index to its corrected selectivity.
	PredSel map[int]float64
}

// NewSelectivityCorrections returns an empty correction set.
func NewSelectivityCorrections() SelectivityCorrections {
	return SelectivityCorrections{PredSel: map[int]float64{}}
}

// Len returns the number of corrected predicates.
func (c SelectivityCorrections) Len() int { return len(c.PredSel) }

// ObserveJoin folds one executed join into the corrections: the
// estimated-vs-measured ratio of the join result is attributed to the
// predicates first applied at that join, each scaled by the k-th root of
// the ratio (independence across the applied predicates — the same
// assumption the estimates themselves make). Selectivities are clamped
// into (0, 1]. Joins with no applied predicate (cross products) carry no
// selectivity signal and are ignored.
func (c SelectivityCorrections) ObserveJoin(q *qopt.Query, appliedPreds []int, estimated, measured float64) {
	if len(appliedPreds) == 0 {
		return
	}
	e := math.Max(estimated, 1e-12)
	m := math.Max(measured, 1e-12)
	factor := math.Pow(m/e, 1/float64(len(appliedPreds)))
	for _, pi := range appliedPreds {
		sel := q.Predicates[pi].Sel
		if prev, ok := c.PredSel[pi]; ok {
			sel = prev
		}
		c.PredSel[pi] = clampSel(sel * factor)
	}
}

// ObserveScan folds one executed scan into the corrections: the measured
// post-filter fraction replaces the unary predicates' joint selectivity
// (distributed by the k-th root, like ObserveJoin).
func (c SelectivityCorrections) ObserveScan(appliedPreds []int, inRows, outRows int) {
	if len(appliedPreds) == 0 || inRows <= 0 {
		return
	}
	frac := math.Max(float64(outRows), 1) / float64(inRows)
	sel := math.Pow(frac, 1/float64(len(appliedPreds)))
	for _, pi := range appliedPreds {
		c.PredSel[pi] = clampSel(sel)
	}
}

// Apply returns a copy of q with the corrected selectivities substituted.
// The original query is not modified.
func (c SelectivityCorrections) Apply(q *qopt.Query) *qopt.Query {
	out := *q
	out.Predicates = append([]qopt.Predicate(nil), q.Predicates...)
	for pi, sel := range c.PredSel {
		if pi >= 0 && pi < len(out.Predicates) {
			out.Predicates[pi].Sel = sel
		}
	}
	return &out
}

// MaxCorrectionFactor returns the largest multiplicative change any
// corrected predicate received relative to q (≥ 1; 1 means no change).
func (c SelectivityCorrections) MaxCorrectionFactor(q *qopt.Query) float64 {
	worst := 1.0
	for pi, sel := range c.PredSel {
		if pi < 0 || pi >= len(q.Predicates) {
			continue
		}
		orig := q.Predicates[pi].Sel
		r := sel / orig
		if r < 1 {
			r = 1 / r
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

func clampSel(s float64) float64 {
	if !(s > 0) || math.IsNaN(s) {
		return 1e-12
	}
	if s > 1 {
		return 1
	}
	return s
}
