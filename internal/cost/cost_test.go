package cost

import (
	"math"
	"testing"
)

func TestPages(t *testing.T) {
	p := Params{TupleBytes: 100, PageBytes: 1000}
	if got := p.Pages(25); got != 3 { // 2500 bytes → 3 pages
		t.Errorf("Pages(25) = %g, want 3", got)
	}
	if got := p.Pages(10); got != 1 {
		t.Errorf("Pages(10) = %g, want 1", got)
	}
	if got := p.Pages(0); got != 0 {
		t.Errorf("Pages(0) = %g, want 0", got)
	}
	if got := p.PagesForBytes(2500); got != 3 {
		t.Errorf("PagesForBytes(2500) = %g, want 3", got)
	}
}

func TestHashJoinCost(t *testing.T) {
	p := Params{}.WithDefaults()
	if got := JoinCost(HashJoin, 10, 5, p); got != 45 {
		t.Errorf("hash cost = %g, want 45", got)
	}
}

func TestSortMergeJoinCost(t *testing.T) {
	p := Params{}.WithDefaults()
	// pgo=8: 2*8*3 = 48; pgi=4: 2*4*2 = 16; merge 8+4 = 12 → 76.
	if got := JoinCost(SortMergeJoin, 8, 4, p); got != 76 {
		t.Errorf("smj cost = %g, want 76", got)
	}
	// Single-page inputs need no sorting.
	if got := JoinCost(SortMergeJoin, 1, 1, p); got != 2 {
		t.Errorf("smj cost(1,1) = %g, want 2", got)
	}
}

func TestBlockNestedLoopCost(t *testing.T) {
	p := Params{BufferPages: 10}.WithDefaults()
	// pgo=25 → 3 blocks; cost = 25 + 3*7 = 46.
	if got := JoinCost(BlockNestedLoopJoin, 25, 7, p); got != 46 {
		t.Errorf("bnl cost = %g, want 46", got)
	}
	// Tiny outer still runs one block.
	if got := JoinCost(BlockNestedLoopJoin, 0, 7, p); got != 7 {
		t.Errorf("bnl cost(0,7) = %g, want 7", got)
	}
}

func TestPresortedSortMerge(t *testing.T) {
	both := SortMergeJoinCostPresorted(8, 4, true, true)
	if both != 12 {
		t.Errorf("presorted both = %g, want 12", both)
	}
	outerOnly := SortMergeJoinCostPresorted(8, 4, true, false)
	if outerOnly != 12+16 {
		t.Errorf("outer presorted = %g, want 28", outerOnly)
	}
	none := SortMergeJoinCostPresorted(8, 4, false, false)
	p := Params{}.WithDefaults()
	if none != JoinCost(SortMergeJoin, 8, 4, p) {
		t.Errorf("unsorted presorted-cost %g != standard %g", none, JoinCost(SortMergeJoin, 8, 4, p))
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[float64]float64{0.5: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%g) = %g, want %g", x, got, want)
		}
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.TupleBytes != 100 || p.PageBytes != 8192 || p.BufferPages != 64 {
		t.Errorf("defaults = %+v", p)
	}
	d := DefaultSpec()
	if d.Metric != OperatorCost || d.Op != HashJoin {
		t.Errorf("DefaultSpec = %+v", d)
	}
	c := CoutSpec()
	if c.Metric != Cout {
		t.Errorf("CoutSpec = %+v", c)
	}
}

func TestMonotonicityInPages(t *testing.T) {
	p := Params{}.WithDefaults()
	for _, op := range Operators() {
		prev := 0.0
		for pg := 1.0; pg <= 4096; pg *= 2 {
			c := JoinCost(op, pg, 16, p)
			if c < prev {
				t.Errorf("%v cost not monotone in outer pages at %g", op, pg)
			}
			prev = c
		}
	}
}

func TestStrings(t *testing.T) {
	if HashJoin.String() != "hash" || SortMergeJoin.String() != "sort-merge" || BlockNestedLoopJoin.String() != "block-nested-loop" {
		t.Error("operator strings wrong")
	}
	if Cout.String() != "C_out" || OperatorCost.String() != "operator-cost" {
		t.Error("metric strings wrong")
	}
	if math.IsNaN(1) { // keep math import honest
		t.Fatal()
	}
}

func TestUnknownOperatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	JoinCost(Operator(42), 1, 1, Params{}.WithDefaults())
}
