// Package cost implements the operator cost formulas of Section 4.3: the
// C_out metric of Cluet & Moerkotte, hash join, sort-merge join, and block
// nested loop join. The same formulas are used for exact plan costing
// (internal/plan) and for the linear approximations in the MILP encoder
// (internal/core).
package cost

import (
	"fmt"
	"math"
)

// Operator is a join operator implementation.
type Operator int

const (
	// HashJoin costs 3·(pg_outer + pg_inner) (GRACE hash join).
	HashJoin Operator = iota
	// SortMergeJoin costs 2·pg·log(pg) per input plus the merge pass.
	SortMergeJoin
	// BlockNestedLoopJoin costs ⌈pg_outer/buffer⌉·pg_inner plus reading
	// the outer.
	BlockNestedLoopJoin
)

// String names the operator.
func (op Operator) String() string {
	switch op {
	case HashJoin:
		return "hash"
	case SortMergeJoin:
		return "sort-merge"
	case BlockNestedLoopJoin:
		return "block-nested-loop"
	default:
		return fmt.Sprintf("Operator(%d)", int(op))
	}
}

// Operators lists the standard operator implementations.
func Operators() []Operator {
	return []Operator{HashJoin, SortMergeJoin, BlockNestedLoopJoin}
}

// Metric selects how plans are priced.
type Metric int

const (
	// Cout sums the cardinalities of all intermediate results (the
	// metric of Cluet & Moerkotte; minimizing it also minimizes many
	// standard operator cost functions).
	Cout Metric = iota
	// OperatorCost sums per-join operator costs (hash join by default,
	// or the per-join operator recorded in the plan).
	OperatorCost
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Cout:
		return "C_out"
	case OperatorCost:
		return "operator-cost"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Params hold the physical constants of the cost model.
type Params struct {
	// TupleBytes is the byte width of a tuple under the fixed-size
	// simplification of Section 4.3 (default 100).
	TupleBytes float64
	// PageBytes is the disk page size (default 8192).
	PageBytes float64
	// BufferPages is the buffer dedicated to the outer operand of a
	// block nested loop join (default 64).
	BufferPages float64
}

// WithDefaults fills zero fields with defaults.
func (p Params) WithDefaults() Params {
	if p.TupleBytes <= 0 {
		p.TupleBytes = 100
	}
	if p.PageBytes <= 0 {
		p.PageBytes = 8192
	}
	if p.BufferPages <= 0 {
		p.BufferPages = 64
	}
	return p
}

// Spec bundles the metric, operator, and physical parameters used to price
// a plan.
type Spec struct {
	Metric Metric
	// Op is the operator used for every join when Metric is
	// OperatorCost and the plan does not record per-join operators.
	Op     Operator
	Params Params
}

// DefaultSpec prices plans with hash joins, the configuration of the
// paper's experiments.
func DefaultSpec() Spec {
	return Spec{Metric: OperatorCost, Op: HashJoin, Params: Params{}.WithDefaults()}
}

// CoutSpec prices plans by the C_out metric.
func CoutSpec() Spec {
	return Spec{Metric: Cout, Params: Params{}.WithDefaults()}
}

// Pages converts a cardinality to a page count (at least 1 page for any
// nonempty input).
func (p Params) Pages(card float64) float64 {
	if card <= 0 {
		return 0
	}
	return math.Ceil(card * p.TupleBytes / p.PageBytes)
}

// PagesForBytes converts a byte volume to a page count.
func (p Params) PagesForBytes(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return math.Ceil(bytes / p.PageBytes)
}

// JoinCost prices one join given operand page counts.
func JoinCost(op Operator, pgOuter, pgInner float64, p Params) float64 {
	switch op {
	case HashJoin:
		return 3 * (pgOuter + pgInner)
	case SortMergeJoin:
		return 2*pgOuter*ceilLog2(pgOuter) + 2*pgInner*ceilLog2(pgInner) + pgOuter + pgInner
	case BlockNestedLoopJoin:
		blocks := math.Ceil(pgOuter / p.BufferPages)
		if blocks < 1 {
			blocks = 1
		}
		return pgOuter + blocks*pgInner
	default:
		panic(fmt.Sprintf("cost: unknown operator %v", op))
	}
}

// SortMergeJoinCostPresorted prices a sort-merge join where sorted inputs
// skip their sort phase (the interesting-orders extension of Section 5.4).
func SortMergeJoinCostPresorted(pgOuter, pgInner float64, outerSorted, innerSorted bool) float64 {
	c := pgOuter + pgInner
	if !outerSorted {
		c += 2 * pgOuter * ceilLog2(pgOuter)
	}
	if !innerSorted {
		c += 2 * pgInner * ceilLog2(pgInner)
	}
	return c
}

// ceilLog2 returns ⌈log2(x)⌉ for x ≥ 1 and 0 otherwise, matching the
// ceiling-log terms of the sort cost formula.
func ceilLog2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(x))
}
