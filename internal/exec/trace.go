package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Trace records what actually happened during one execution: per-scan and
// per-join input/output sizes next to the optimizer's estimates. Measured
// row counts are ground truth — the signal the cardinality feedback loop
// turns into corrected selectivities.
type Trace struct {
	// Scans records every base-table scan, with pushed-down unary
	// predicates applied. Entries are pointers because the operators
	// fill them in while rows flow.
	Scans []*ScanTrace
	// Joins records every join in post-order of the tree (root last;
	// stage order under adaptive execution, where the final stage's join
	// is the root).
	Joins []*JoinTrace
	// ResultRows is the final result cardinality.
	ResultRows int
}

// ScanTrace is the measured outcome of one base-table scan.
type ScanTrace struct {
	// Table is the scanned base table.
	Table int
	// InRows and OutRows are the cardinalities before and after the
	// pushed-down unary predicates.
	InRows, OutRows int
	// AppliedPreds lists the unary predicates applied at the scan.
	AppliedPreds []int
	// Estimated is the optimizer's post-filter cardinality estimate.
	Estimated float64
}

// JoinTrace is the measured outcome of one join.
type JoinTrace struct {
	// Tables is the sorted set of base tables joined under this node.
	Tables []int
	// AppliedPreds lists the binary predicates first applied at this
	// join (empty for cross products).
	AppliedPreds []int
	// Estimated is the optimizer's cardinality estimate for this join's
	// result at the time the join executed (after any feedback
	// corrections from earlier joins).
	Estimated float64
	// Measured is the actual result cardinality.
	Measured float64
	// LeftRows and RightRows are the measured operand cardinalities.
	LeftRows, RightRows int
}

// QError is the q-error of one estimate: max(est/meas, meas/est), with
// both sides floored at one row so empty results stay finite. It is ≥ 1,
// and 1 means the estimate was exact.
func QError(estimated, measured float64) float64 {
	e := math.Max(estimated, 1)
	m := math.Max(measured, 1)
	return math.Max(e/m, m/e)
}

// QError returns the join's q-error.
func (j *JoinTrace) QError() float64 { return QError(j.Estimated, j.Measured) }

// MaxQError returns the largest per-join q-error of the trace (1 when no
// joins were recorded).
func (t *Trace) MaxQError() float64 {
	worst := 1.0
	for _, j := range t.Joins {
		if qe := j.QError(); qe > worst {
			worst = qe
		}
	}
	return worst
}

// MeasuredCout sums the measured cardinalities of all non-root join
// results — the executed counterpart of the C_out metric (the final
// result is excluded, matching plan.Evaluate).
func (t *Trace) MeasuredCout() float64 {
	var s float64
	for _, j := range t.Joins[:maxInt(0, len(t.Joins)-1)] {
		s += j.Measured
	}
	return s
}

// EstimatedCout sums the per-join estimates the same way, so the pair
// (EstimatedCout, MeasuredCout) compares like for like.
func (t *Trace) EstimatedCout() float64 {
	var s float64
	for _, j := range t.Joins[:maxInt(0, len(t.Joins)-1)] {
		s += j.Estimated
	}
	return s
}

// String renders the trace as a per-join table, worst q-error last.
func (t *Trace) String() string {
	var sb strings.Builder
	for _, j := range t.Joins {
		fmt.Fprintf(&sb, "join %v: est %.4g measured %g (q-error %.3g)\n",
			j.Tables, j.Estimated, j.Measured, j.QError())
	}
	fmt.Fprintf(&sb, "max q-error %.3g, measured C_out %g", t.MaxQError(), t.MeasuredCout())
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}
