package exec

import (
	"testing"

	"milpjoin/internal/plan"
	"milpjoin/internal/workload"
)

// treeFromBytes deterministically folds a forest of n leaves into one
// bushy tree, with each merge choice driven by the next fuzz bytes (zero
// once the input runs out) — every byte string maps to a valid tree, so
// the fuzzer explores tree shapes rather than validation failures.
func treeFromBytes(n int, merges []byte) *plan.Tree {
	forest := make([]*plan.Tree, n)
	for i := range forest {
		forest[i] = plan.Leaf(i)
	}
	at := func(k int) int {
		if k < len(merges) {
			return int(merges[k])
		}
		return 0
	}
	for k := 0; len(forest) > 1; k += 2 {
		i := at(k) % len(forest)
		j := at(k+1) % (len(forest) - 1)
		if j >= i {
			j++
		}
		merged := plan.Join(forest[i], forest[j])
		if i > j {
			i, j = j, i
		}
		forest[j] = forest[len(forest)-1]
		forest = forest[:len(forest)-1]
		forest[i] = merged
	}
	return forest[0]
}

// FuzzExecuteBushyPlan differential-tests the streaming executor against
// the materializing oracle on fuzzer-chosen query shapes, sizes, data
// seeds, and bushy tree structures: both executors must produce the same
// result multiset, and the trace's root join must equal the result size.
func FuzzExecuteBushyPlan(f *testing.F) {
	f.Add(uint8(0), uint8(4), int64(1), []byte{0, 0, 1, 1})
	f.Add(uint8(1), uint8(5), int64(2), []byte{3, 2, 1, 0, 2, 1})
	f.Add(uint8(2), uint8(6), int64(3), []byte{5, 4, 3, 2, 1, 0, 1, 2})
	f.Add(uint8(2), uint8(3), int64(4), []byte{})
	f.Add(uint8(0), uint8(7), int64(5), []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, shapeB, nB uint8, seed int64, merges []byte) {
		shapes := workload.Shapes()
		shape := shapes[int(shapeB)%len(shapes)]
		n := 3 + int(nB)%5 // 3 … 7 tables
		q := smallQuery(shape, n, seed%1024)
		db, err := Synthesize(q, seed)
		if err != nil {
			t.Fatal(err)
		}
		tree := treeFromBytes(n, merges)

		oracle, err := db.ExecuteTree(tree)
		if err != nil {
			t.Fatal(err)
		}
		run, err := db.Stream(tree, StreamOptions{BatchSize: 1 + int(nB)%64})
		if err != nil {
			t.Fatal(err)
		}
		rel, err := run.Collect()
		if err != nil {
			t.Fatal(err)
		}

		cols := allColumns(db)
		want, err := oracle.Fingerprint(cols)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rel.Fingerprint(cols)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("shape=%v n=%d seed=%d tree=%v: streaming result differs from oracle",
				shape, n, seed, tree)
		}
		root := run.Trace.Joins[len(run.Trace.Joins)-1]
		if int(root.Measured) != oracle.NumRows() {
			t.Fatalf("root join measured %g rows, oracle produced %d", root.Measured, oracle.NumRows())
		}
	})
}
