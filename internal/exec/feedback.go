package exec

import (
	"context"
	"fmt"
	"math"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// AdaptiveOptions tune ExecuteAdaptive.
type AdaptiveOptions struct {
	// EstQuery is the optimizer's view of the query (default: the
	// database's ground-truth query). Structure must match the database.
	EstQuery *qopt.Query
	// QErrorThreshold is the per-join q-error above which the remainder
	// of the query is re-optimized (default 2; +Inf never re-optimizes).
	QErrorThreshold float64
	// MaxReopts bounds the number of mid-query re-optimizations
	// (default 2).
	MaxReopts int
	// BatchSize is the per-pull row count of the stage pipelines.
	BatchSize int
	// Reoptimize plans the unexecuted remainder: it receives a query
	// whose tables are the current frontier (materialized intermediates
	// with measured cardinalities, unexecuted base tables) and whose
	// selectivities carry every correction learned so far, and returns a
	// join tree over that query's tables. Nil disables re-optimization.
	// A failing re-optimization falls back to the current plan.
	Reoptimize func(ctx context.Context, remainder *qopt.Query) (*plan.Tree, error)
}

// AdaptiveResult is the outcome of an adaptive execution.
type AdaptiveResult struct {
	// Result is the final relation.
	Result *Relation
	// Trace records every executed scan and join across all stages, in
	// execution order (the last join is the root).
	Trace *Trace
	// Reopts counts mid-query re-optimizations that replaced the plan;
	// ReoptFailures counts re-optimization attempts that errored (the
	// execution then kept its current plan).
	Reopts, ReoptFailures int
	// Corrections holds the corrected selectivities learned from
	// measured cardinalities, keyed by original predicate index.
	Corrections cost.SelectivityCorrections
	// CorrectedQuery is EstQuery with Corrections applied.
	CorrectedQuery *qopt.Query
}

// withDefaults fills zero fields.
func (o AdaptiveOptions) withDefaults(db *Database) AdaptiveOptions {
	if o.EstQuery == nil {
		o.EstQuery = db.Query
	}
	if o.QErrorThreshold == 0 {
		o.QErrorThreshold = 2
	}
	if o.MaxReopts == 0 {
		o.MaxReopts = 2
	}
	return o
}

// ExecuteAdaptive executes a join tree with materialization checkpoints
// between joins — the Kabra–DeWitt style of mid-query re-optimization.
// Joins execute one at a time, deepest-leftmost first, each as a streaming
// pipeline over the current frontier of materialized intermediates and
// base tables. After each join the measured cardinality is compared with
// the estimate: when the q-error exceeds the threshold and at least two
// joins remain, the measured cardinalities and corrected selectivities
// are folded into a remainder query and Reoptimize replans the unexecuted
// part of the tree. Every strategy's output is runnable here because the
// remainder is an ordinary qopt.Query.
func (db *Database) ExecuteAdaptive(ctx context.Context, t *plan.Tree, o AdaptiveOptions) (*AdaptiveResult, error) {
	o = o.withDefaults(db)
	q := db.Query
	if err := t.Validate(q); err != nil {
		return nil, err
	}
	if err := checkSameStructure(q, o.EstQuery); err != nil {
		return nil, err
	}
	for pi := range q.Predicates {
		if len(q.Predicates[pi].Tables) > 2 {
			return nil, fmt.Errorf("exec: predicate %d spans %d tables, at most 2 are executable", pi, len(q.Predicates[pi].Tables))
		}
	}

	res := &AdaptiveResult{
		Trace:       &Trace{},
		Corrections: cost.NewSelectivityCorrections(),
	}

	// The frontier: one source per unexecuted base table, plus one
	// source per materialized intermediate. The tree's leaves index it.
	frontier := make([]*source, 0, q.NumTables())
	for ti, rel := range db.Relations {
		frontier = append(frontier, &source{rel: rel, tables: []int{ti}, filters: db.scanFilters(ti)})
	}
	tree := cloneTree(t)

	for !tree.IsLeaf() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		remQ, predMap := remainderQuery(o.EstQuery, frontier, res.Corrections)

		// Execute the deepest-leftmost join whose operands are frontier
		// leaves as one streaming pipeline.
		node := leftmostBothLeaf(tree)
		env := &streamEnv{
			srcs:      frontier,
			estQ:      remQ,
			batchSize: o.BatchSize,
			trace:     res.Trace,
		}
		for rp := range remQ.Predicates {
			p := &remQ.Predicates[rp]
			if !p.IsBinary() {
				continue
			}
			op := predMap[rp]
			ta, tb := q.Predicates[op].Tables[0], q.Predicates[op].Tables[1]
			env.preds = append(env.preds, envPred{
				a: p.Tables[0], b: p.Tables[1],
				colA: predCol(ta, op), colB: predCol(tb, op),
				orig: op,
			})
		}
		scansBefore := len(res.Trace.Scans)
		it, cols, _, _, err := env.compile(node)
		if err != nil {
			return nil, err
		}
		run := &Run{Cols: cols, Trace: res.Trace, it: it}
		rel, err := run.Collect()
		if err != nil {
			return nil, err
		}

		// Fold the stage's measurements into the corrections: unary
		// selectivities from the scans, join selectivities from the
		// estimated-vs-measured ratio distributed over the predicates
		// applied at this join.
		for _, sc := range res.Trace.Scans[scansBefore:] {
			res.Corrections.ObserveScan(sc.AppliedPreds, sc.InRows, sc.OutRows)
		}
		jt := res.Trace.Joins[len(res.Trace.Joins)-1]
		observeJoin(res.Corrections, remQ, predMap, jt)

		// Merge the executed join into the frontier and shrink the tree.
		la, lb := node.Left.Table, node.Right.Table
		merged := &source{
			rel:    rel,
			tables: sortedInts(append(append([]int(nil), frontier[la].tables...), frontier[lb].tables...)),
		}
		frontier = mergeFrontier(frontier, la, lb, merged)
		tree = shrinkTree(tree, node, la, lb, len(frontier)-1)

		// Re-optimize the remainder when the estimate was badly off and
		// re-planning can still change anything (two or more joins left).
		if o.Reoptimize != nil && jt.QError() > o.QErrorThreshold &&
			len(frontier) >= 3 && res.Reopts < o.MaxReopts {
			newRemQ, _ := remainderQuery(o.EstQuery, frontier, res.Corrections)
			newTree, err := o.Reoptimize(ctx, newRemQ)
			if err != nil || newTree == nil || newTree.Validate(newRemQ) != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				res.ReoptFailures++
			} else {
				tree = cloneTree(newTree)
				res.Reopts++
			}
		}

		res.Result = rel
	}
	res.Trace.ResultRows = res.Result.NumRows()
	res.CorrectedQuery = res.Corrections.Apply(o.EstQuery)
	return res, nil
}

// observeJoin folds one stage join into the corrections, translating the
// remainder query's predicate indices back into original indices. The
// expected output is computed from the measured operand sizes — not the
// planner's estimate — so only the join's own selectivity error is
// attributed to its predicates, never upstream cardinality error.
func observeJoin(c cost.SelectivityCorrections, remQ *qopt.Query, predMap []int, jt *JoinTrace) {
	if len(jt.AppliedPreds) == 0 || jt.LeftRows <= 0 || jt.RightRows <= 0 {
		return
	}
	// The remainder query's selectivities already carry every prior
	// correction, so they are the current belief being updated.
	remSel := func(op int) float64 {
		for rp, o := range predMap {
			if o == op {
				return remQ.Predicates[rp].Sel
			}
		}
		return 0
	}
	expected := float64(jt.LeftRows) * float64(jt.RightRows)
	for _, op := range jt.AppliedPreds {
		expected *= math.Max(remSel(op), 1e-12)
	}
	m := math.Max(jt.Measured, 1e-12)
	factor := math.Pow(m/math.Max(expected, 1e-12), 1/float64(len(jt.AppliedPreds)))
	for _, op := range jt.AppliedPreds {
		sel := remSel(op)
		if sel == 0 {
			continue
		}
		s := sel * factor
		if s > 1 {
			s = 1
		}
		if !(s > 0) {
			s = 1e-12
		}
		c.PredSel[op] = s
	}
}

// remainderQuery builds the optimizer's view of the unexecuted part of
// the query: one table per frontier source (measured cardinalities for
// materialized intermediates, corrected base cardinalities otherwise) and
// one predicate per original predicate that still crosses the frontier,
// with corrected selectivities. predMap maps each remainder predicate
// back to its original index.
func remainderQuery(estQ *qopt.Query, frontier []*source, corr cost.SelectivityCorrections) (*qopt.Query, []int) {
	owner := map[int]int{}
	for si, src := range frontier {
		for _, t := range src.tables {
			owner[t] = si
		}
	}
	out := &qopt.Query{}
	for si, src := range frontier {
		if len(src.tables) == 1 {
			t := estQ.Tables[src.tables[0]]
			out.Tables = append(out.Tables, qopt.Table{Name: t.Name, Card: math.Max(1, t.Card)})
			continue
		}
		out.Tables = append(out.Tables, qopt.Table{
			Name: fmt.Sprintf("V%d", si),
			Card: math.Max(1, float64(src.rel.NumRows())),
		})
	}
	var predMap []int
	sel := func(pi int) float64 {
		if s, ok := corr.PredSel[pi]; ok {
			return s
		}
		return estQ.Predicates[pi].Sel
	}
	for pi := range estQ.Predicates {
		p := &estQ.Predicates[pi]
		switch len(p.Tables) {
		case 1:
			si := owner[p.Tables[0]]
			if len(frontier[si].tables) > 1 {
				continue // already applied at the scan
			}
			out.Predicates = append(out.Predicates, qopt.Predicate{
				Name: p.Name, Tables: []int{si}, Sel: sel(pi),
			})
			predMap = append(predMap, pi)
		case 2:
			a, b := owner[p.Tables[0]], owner[p.Tables[1]]
			if a == b {
				continue // applied at the join that merged its tables
			}
			out.Predicates = append(out.Predicates, qopt.Predicate{
				Name: p.Name, Tables: []int{a, b}, Sel: sel(pi),
			})
			predMap = append(predMap, pi)
		}
	}
	return out, predMap
}

// leftmostBothLeaf returns the deepest-leftmost join node whose operands
// are both leaves. Every non-leaf tree has one.
func leftmostBothLeaf(t *plan.Tree) *plan.Tree {
	if !t.Left.IsLeaf() {
		return leftmostBothLeaf(t.Left)
	}
	if !t.Right.IsLeaf() {
		return leftmostBothLeaf(t.Right)
	}
	return t
}

// mergeFrontier removes the two consumed sources and appends the merged
// one, returning the compacted frontier. Index mapping is captured by
// shrinkTree, which runs on the same (la, lb, new index) triple.
func mergeFrontier(frontier []*source, la, lb int, merged *source) []*source {
	out := frontier[:0]
	for si, src := range frontier {
		if si == la || si == lb {
			continue
		}
		out = append(out, src)
	}
	return append(out, merged)
}

// shrinkTree replaces the executed node with a leaf for the merged source
// and remaps every other leaf index from the old frontier numbering to
// the compacted one.
func shrinkTree(t, executed *plan.Tree, la, lb, mergedIdx int) *plan.Tree {
	remap := func(old int) int {
		shift := 0
		if old > la {
			shift++
		}
		if old > lb {
			shift++
		}
		return old - shift
	}
	var walk func(n *plan.Tree) *plan.Tree
	walk = func(n *plan.Tree) *plan.Tree {
		if n == executed {
			return plan.Leaf(mergedIdx)
		}
		if n.IsLeaf() {
			return plan.Leaf(remap(n.Table))
		}
		return plan.Join(walk(n.Left), walk(n.Right))
	}
	return walk(t)
}

// cloneTree deep-copies a tree so adaptive execution never mutates the
// caller's (possibly shared) plan.
func cloneTree(t *plan.Tree) *plan.Tree {
	if t == nil {
		return nil
	}
	if t.IsLeaf() {
		return plan.Leaf(t.Table)
	}
	return plan.Join(cloneTree(t.Left), cloneTree(t.Right))
}
