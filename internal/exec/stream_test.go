package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

// randomBushyTree builds a random (generally bushy) join tree over n
// tables by repeatedly merging two random members of a forest.
func randomBushyTree(n int, rng *rand.Rand) *plan.Tree {
	forest := make([]*plan.Tree, n)
	for i := range forest {
		forest[i] = plan.Leaf(i)
	}
	for len(forest) > 1 {
		i := rng.Intn(len(forest))
		j := rng.Intn(len(forest) - 1)
		if j >= i {
			j++
		}
		merged := plan.Join(forest[i], forest[j])
		if i > j {
			i, j = j, i
		}
		forest[j] = forest[len(forest)-1]
		forest = forest[:len(forest)-1]
		forest[i] = merged
	}
	return forest[0]
}

func streamFingerprint(t *testing.T, db *Database, tree *plan.Tree, o StreamOptions) (uint64, *Trace) {
	t.Helper()
	run, err := db.Stream(tree, o)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := run.Collect()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := rel.Fingerprint(allColumns(db))
	if err != nil {
		t.Fatal(err)
	}
	return fp, run.Trace
}

func oracleFingerprint(t *testing.T, db *Database, tree *plan.Tree) uint64 {
	t.Helper()
	rel, err := db.ExecuteTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := rel.Fingerprint(allColumns(db))
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// oracleJoinSizes materializes every join subtree bottom-up (the
// ExecuteTree walk) and records the result size per joined table set,
// keyed by the sorted table list — the ground truth the streaming trace's
// measured cardinalities are checked against.
func oracleJoinSizes(t *testing.T, db *Database, tree *plan.Tree) map[string]int {
	t.Helper()
	q := db.Query
	sizes := map[string]int{}
	var walk func(node *plan.Tree) (*Relation, []int)
	walk = func(node *plan.Tree) (*Relation, []int) {
		if node.IsLeaf() {
			return db.scanBase(node.Table), []int{node.Table}
		}
		left, lTabs := walk(node.Left)
		right, rTabs := walk(node.Right)
		var keys []keyPair
		for pi := range q.Predicates {
			p := &q.Predicates[pi]
			if !p.IsBinary() {
				continue
			}
			a, b := p.Tables[0], p.Tables[1]
			switch {
			case containsTable(lTabs, a) && containsTable(rTabs, b):
				keys = append(keys, keyPair{left: predCol(a, pi), right: predCol(b, pi)})
			case containsTable(lTabs, b) && containsTable(rTabs, a):
				keys = append(keys, keyPair{left: predCol(b, pi), right: predCol(a, pi)})
			}
		}
		out, err := hashJoin(left, right, keys)
		if err != nil {
			t.Fatal(err)
		}
		tabs := append(lTabs, rTabs...)
		sizes[fmt.Sprint(sortedInts(tabs))] = out.NumRows()
		return out, tabs
	}
	walk(tree)
	return sizes
}

func TestStreamMatchesOracleOnRandomBushyTrees(t *testing.T) {
	for _, shape := range workload.Shapes() {
		for n := 4; n <= 6; n++ {
			q := smallQuery(shape, n, int64(10*n))
			db, err := Synthesize(q, int64(n))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(100*n) + int64(shape)))
			for trial := 0; trial < 4; trial++ {
				tree := randomBushyTree(n, rng)
				want := oracleFingerprint(t, db, tree)
				got, trace := streamFingerprint(t, db, tree, StreamOptions{})
				if got != want {
					t.Fatalf("%v n=%d trial=%d: streaming result differs from materializing oracle (tree %v)",
						shape, n, trial, tree)
				}
				if len(trace.Joins) != n-1 {
					t.Fatalf("%v n=%d: %d join trace entries, want %d", shape, n, len(trace.Joins), n-1)
				}
			}
		}
	}
}

func TestStreamTraceMeasuredMatchesOracle(t *testing.T) {
	for _, shape := range workload.Shapes() {
		q := smallQuery(shape, 5, 21)
		db, err := Synthesize(q, 22)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 5; trial++ {
			tree := randomBushyTree(5, rng)
			sizes := oracleJoinSizes(t, db, tree)
			_, trace := streamFingerprint(t, db, tree, StreamOptions{})
			for _, jt := range trace.Joins {
				want, ok := sizes[fmt.Sprint(jt.Tables)]
				if !ok {
					t.Fatalf("%v: trace join %v has no oracle counterpart", shape, jt.Tables)
				}
				if int(jt.Measured) != want {
					t.Errorf("%v: join %v measured %g rows, oracle %d", shape, jt.Tables, jt.Measured, want)
				}
				if jt.Estimated <= 0 {
					t.Errorf("%v: join %v estimate %g, want > 0", shape, jt.Tables, jt.Estimated)
				}
			}
			root := trace.Joins[len(trace.Joins)-1]
			if int(root.Measured) != trace.ResultRows {
				t.Errorf("%v: root measured %g != result rows %d", shape, root.Measured, trace.ResultRows)
			}
		}
	}
}

func TestStreamRootEstimateIsSubsetCard(t *testing.T) {
	q := smallQuery(workload.Chain, 4, 31)
	db, err := Synthesize(q, 32)
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Join(plan.Leaf(2), plan.Leaf(3)))
	_, trace := streamFingerprint(t, db, tree, StreamOptions{})
	root := trace.Joins[len(trace.Joins)-1]
	want := plan.SubsetCard(q, []int{0, 1, 2, 3})
	if root.Estimated != want {
		t.Errorf("root estimate %g, want SubsetCard %g", root.Estimated, want)
	}
	left := trace.Joins[0]
	if got, want := fmt.Sprint(left.Tables), fmt.Sprint([]int{0, 1}); got != want {
		t.Errorf("first trace join covers %s, want %s", got, want)
	}
	if left.Estimated != plan.SubsetCard(q, []int{0, 1}) {
		t.Errorf("left estimate %g, want %g", left.Estimated, plan.SubsetCard(q, []int{0, 1}))
	}
}

func TestUnaryPredicatePushdown(t *testing.T) {
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 200}, {Card: 100}, {Card: 50}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.05},
			{Tables: []int{1, 2}, Sel: 0.05},
			{Tables: []int{1}, Sel: 0.25},
		},
	}
	db, err := Synthesize(q, 41)
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.Join(plan.Join(plan.Leaf(0), plan.Leaf(1)), plan.Leaf(2))
	want := oracleFingerprint(t, db, tree)
	got, trace := streamFingerprint(t, db, tree, StreamOptions{})
	if got != want {
		t.Fatal("streaming result differs from oracle under unary predicate")
	}
	var sc *ScanTrace
	for _, s := range trace.Scans {
		if s.Table == 1 {
			sc = s
		}
	}
	if sc == nil {
		t.Fatal("no scan trace for the filtered table")
	}
	if len(sc.AppliedPreds) != 1 || sc.AppliedPreds[0] != 2 {
		t.Errorf("scan applied predicates %v, want [2]", sc.AppliedPreds)
	}
	if sc.InRows != 100 {
		t.Errorf("scan saw %d rows, want 100", sc.InRows)
	}
	if sc.OutRows >= sc.InRows {
		t.Errorf("filter kept %d of %d rows — pushdown did not filter", sc.OutRows, sc.InRows)
	}
}

func TestStreamBatchSizeInvariance(t *testing.T) {
	q := smallQuery(workload.Cycle, 5, 51)
	db, err := Synthesize(q, 52)
	if err != nil {
		t.Fatal(err)
	}
	tree := randomBushyTree(5, rand.New(rand.NewSource(53)))
	want, _ := streamFingerprint(t, db, tree, StreamOptions{})
	for _, bs := range []int{1, 3, 17, 4096} {
		got, _ := streamFingerprint(t, db, tree, StreamOptions{BatchSize: bs})
		if got != want {
			t.Errorf("batch size %d changed the result", bs)
		}
	}
}

func TestDrainMatchesCollect(t *testing.T) {
	q := smallQuery(workload.Star, 4, 61)
	db, err := Synthesize(q, 62)
	if err != nil {
		t.Fatal(err)
	}
	tree := randomBushyTree(4, rand.New(rand.NewSource(63)))
	run, err := db.Stream(tree, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := run.Collect()
	if err != nil {
		t.Fatal(err)
	}
	run2, err := db.Stream(tree, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := run2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if n != rel.NumRows() {
		t.Errorf("drain counted %d rows, collect materialized %d", n, rel.NumRows())
	}
	if run2.Trace.ResultRows != n {
		t.Errorf("trace result rows %d, want %d", run2.Trace.ResultRows, n)
	}
}

func TestStreamRejectsMismatchedEstimateQuery(t *testing.T) {
	q := smallQuery(workload.Chain, 4, 71)
	db, err := Synthesize(q, 72)
	if err != nil {
		t.Fatal(err)
	}
	tree := plan.Plan{Order: []int{0, 1, 2, 3}}
	bad := smallQuery(workload.Star, 4, 71) // different predicate structure
	if _, err := db.Stream(tree.LeftDeep(), StreamOptions{EstQuery: bad}); err == nil {
		t.Error("structurally different estimate query accepted")
	}
	short := smallQuery(workload.Chain, 3, 71)
	if _, err := db.Stream(tree.LeftDeep(), StreamOptions{EstQuery: short}); err == nil {
		t.Error("estimate query with fewer tables accepted")
	}
}

func TestQErrorProperties(t *testing.T) {
	cases := []struct{ est, meas, want float64 }{
		{100, 100, 1},
		{10, 1000, 100},
		{1000, 10, 100},
		{0, 0, 1},   // both floored at one row
		{0.5, 2, 2}, // estimate floored at one row
	}
	for _, c := range cases {
		if got := QError(c.est, c.meas); got != c.want {
			t.Errorf("QError(%g, %g) = %g, want %g", c.est, c.meas, got, c.want)
		}
	}
}
