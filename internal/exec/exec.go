// Package exec is a small in-memory execution substrate: it synthesizes
// table data whose join behaviour matches the optimizer's cardinality
// model (uniform keys with domain sizes derived from predicate
// selectivities) and executes left-deep plans with in-memory hash joins.
//
// It exists to close the loop the paper leaves implicit: plans decoded
// from the MILP are actual executable join orders, every join order of a
// query produces the same result, and measured result sizes track the
// estimates the encoder optimizes.
package exec

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// Relation is an in-memory table: named columns over int64 rows.
type Relation struct {
	Cols []string
	Rows [][]int64
}

// NumRows returns the relation's cardinality.
func (r *Relation) NumRows() int { return len(r.Rows) }

func (r *Relation) colIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Database holds one relation per query table.
type Database struct {
	Query     *qopt.Query
	Relations []*Relation
}

// Synthesize builds a database for q: each table gets one join-key column
// per incident binary predicate, drawn uniformly from a domain of size
// ≈ 1/selectivity, so that expected join sizes match the optimizer's
// independence-based estimates. Only binary predicates are supported.
func Synthesize(q *qopt.Query, seed int64) (*Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for pi, p := range q.Predicates {
		if !p.IsBinary() {
			return nil, fmt.Errorf("exec: predicate %d is not binary", pi)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	db := &Database{Query: q}
	for t := range q.Tables {
		var cols []string
		var domains []int64
		for pi, p := range q.Predicates {
			if p.Tables[0] == t || p.Tables[1] == t {
				cols = append(cols, predCol(t, pi))
				d := int64(math.Round(1 / p.Sel))
				if d < 1 {
					d = 1
				}
				domains = append(domains, d)
			}
		}
		rel := &Relation{Cols: cols}
		n := int(q.Tables[t].Card)
		for i := 0; i < n; i++ {
			row := make([]int64, len(cols))
			for c := range cols {
				row[c] = rng.Int63n(domains[c])
			}
			rel.Rows = append(rel.Rows, row)
		}
		db.Relations = append(db.Relations, rel)
	}
	return db, nil
}

// predCol is the table-qualified key column of predicate pi on table t;
// qualification keeps column names unique across the join result.
func predCol(t, pi int) string { return fmt.Sprintf("T%d.p%d", t, pi) }

// Execute runs a left-deep plan with hash joins and returns the final
// result. Each join matches on every predicate that becomes applicable at
// that join; joins with no applicable predicate degenerate to cross
// products (as the paper's plan space allows).
func (db *Database) Execute(p *plan.Plan) (*Relation, error) {
	q := db.Query
	if err := p.Validate(q); err != nil {
		return nil, err
	}
	inSet := map[int]bool{p.Order[0]: true}
	applied := make([]bool, len(q.Predicates))
	cur := db.Relations[p.Order[0]]

	for j := 1; j < len(p.Order); j++ {
		inner := db.Relations[p.Order[j]]
		inSet[p.Order[j]] = true

		// Predicates newly applicable once the inner table joins: the
		// inner table contributes one side, the accumulated result the
		// other.
		var keys []keyPair
		for pi, pred := range q.Predicates {
			if applied[pi] {
				continue
			}
			if inSet[pred.Tables[0]] && inSet[pred.Tables[1]] {
				applied[pi] = true
				curTable, innerTable := pred.Tables[0], pred.Tables[1]
				if innerTable != p.Order[j] {
					curTable, innerTable = innerTable, curTable
				}
				keys = append(keys, keyPair{
					left:  predCol(curTable, pi),
					right: predCol(innerTable, pi),
				})
			}
		}
		var err error
		cur, err = hashJoin(cur, inner, keys)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// keyPair names one equi-join key on each side.
type keyPair struct{ left, right string }

// hashJoin equi-joins left and right on the key pairs; with no keys it
// builds the cross product.
func hashJoin(left, right *Relation, keys []keyPair) (*Relation, error) {
	out := &Relation{Cols: append(append([]string(nil), left.Cols...), right.Cols...)}

	if len(keys) == 0 {
		for _, lr := range left.Rows {
			for _, rr := range right.Rows {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}

	lIdx := make([]int, len(keys))
	rIdx := make([]int, len(keys))
	for k, kp := range keys {
		lIdx[k] = left.colIndex(kp.left)
		rIdx[k] = right.colIndex(kp.right)
		if lIdx[k] < 0 || rIdx[k] < 0 {
			return nil, fmt.Errorf("exec: join key %v missing (left %d, right %d)", kp, lIdx[k], rIdx[k])
		}
	}

	// Build on the smaller input.
	build, probe := right, left
	bIdx, pIdx := rIdx, lIdx
	buildIsRight := true
	if left.NumRows() < right.NumRows() {
		build, probe = left, right
		bIdx, pIdx = lIdx, rIdx
		buildIsRight = false
	}

	table := make(map[string][][]int64, build.NumRows())
	for _, row := range build.Rows {
		k := keyOf(row, bIdx)
		table[k] = append(table[k], row)
	}
	for _, prow := range probe.Rows {
		for _, brow := range table[keyOf(prow, pIdx)] {
			if buildIsRight {
				out.Rows = append(out.Rows, concatRows(prow, brow))
			} else {
				out.Rows = append(out.Rows, concatRows(brow, prow))
			}
		}
	}
	return out, nil
}

func keyOf(row []int64, idx []int) string {
	b := make([]byte, 0, len(idx)*8)
	for _, i := range idx {
		v := row[i]
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

func concatRows(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// Fingerprint returns an order-independent hash of the relation's rows
// with columns aligned to the given column order — equal fingerprints mean
// equal result multisets, the cross-join-order correctness check.
func (r *Relation) Fingerprint(colOrder []string) (uint64, error) {
	perm := make([]int, len(colOrder))
	for i, name := range colOrder {
		perm[i] = r.colIndex(name)
		if perm[i] < 0 {
			return 0, fmt.Errorf("exec: fingerprint column %q missing", name)
		}
	}
	hashes := make([]uint64, 0, len(r.Rows))
	for _, row := range r.Rows {
		h := fnv.New64a()
		var buf [8]byte
		for _, ci := range perm {
			v := row[ci]
			for s := 0; s < 64; s += 8 {
				buf[s/8] = byte(v >> s)
			}
			h.Write(buf[:])
		}
		hashes = append(hashes, h.Sum64())
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range hashes {
		for s := 0; s < 64; s += 8 {
			buf[s/8] = byte(v >> s)
		}
		h.Write(buf[:])
	}
	return h.Sum64(), nil
}
