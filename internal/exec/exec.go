// Package exec is an in-memory execution substrate: it synthesizes table
// data whose join behaviour matches the optimizer's cardinality model
// (uniform keys with domain sizes derived from predicate selectivities)
// and executes join plans against it.
//
// Two executors are provided. ExecuteTree is the materializing oracle:
// it evaluates a (possibly bushy) join tree bottom-up with classic hash
// joins, holding every intermediate result in memory. Stream is the
// production path: a pull-based batch-at-a-time iterator pipeline (scans
// with predicate pushdown, symmetric hash joins) that runs the same trees
// without materializing between joins and records per-join measured vs.
// estimated cardinalities into a Trace.
//
// The package closes the loop the paper leaves implicit: plans decoded
// from the MILP are actual executable join orders, every join order of a
// query produces the same result, and measured result sizes track the
// estimates the encoder optimizes.
package exec

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// Relation is an in-memory table: named columns over int64 rows.
type Relation struct {
	Cols []string
	Rows [][]int64
}

// NumRows returns the relation's cardinality.
func (r *Relation) NumRows() int { return len(r.Rows) }

func (r *Relation) colIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Database holds one relation per query table.
type Database struct {
	Query     *qopt.Query
	Relations []*Relation
}

// Synthesize builds a database for q: each table gets one join-key column
// per incident binary predicate, drawn uniformly from a domain of size
// ≈ 1/selectivity, so that expected join sizes match the optimizer's
// independence-based estimates. Unary predicates become scan filters: the
// table gets one extra column whose zero values (≈ selectivity of the
// domain) pass the filter. Predicates over three or more tables are not
// executable.
func Synthesize(q *qopt.Query, seed int64) (*Database, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for pi, p := range q.Predicates {
		if len(p.Tables) > 2 {
			return nil, fmt.Errorf("exec: predicate %d spans %d tables, at most 2 are executable", pi, len(p.Tables))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	db := &Database{Query: q}
	for t := range q.Tables {
		var cols []string
		var domains []int64
		for pi, p := range q.Predicates {
			if !predOnTable(&p, t) {
				continue
			}
			cols = append(cols, predCol(t, pi))
			d := int64(math.Round(1 / p.Sel))
			if d < 1 {
				d = 1
			}
			domains = append(domains, d)
		}
		rel := &Relation{Cols: cols}
		n := int(q.Tables[t].Card)
		for i := 0; i < n; i++ {
			row := make([]int64, len(cols))
			for c := range cols {
				row[c] = rng.Int63n(domains[c])
			}
			rel.Rows = append(rel.Rows, row)
		}
		db.Relations = append(db.Relations, rel)
	}
	return db, nil
}

// predOnTable reports whether predicate p references table t.
func predOnTable(p *qopt.Predicate, t int) bool {
	for _, pt := range p.Tables {
		if pt == t {
			return true
		}
	}
	return false
}

// predCol is the table-qualified key column of predicate pi on table t;
// qualification keeps column names unique across the join result.
func predCol(t, pi int) string { return fmt.Sprintf("T%d.p%d", t, pi) }

// AllColumns returns every column of the database in table order — the
// canonical column order for cross-plan result fingerprints (no plan
// projects, so every base column survives to the final result).
func (db *Database) AllColumns() []string {
	var cols []string
	for _, rel := range db.Relations {
		cols = append(cols, rel.Cols...)
	}
	return cols
}

// Execute runs a left-deep plan with materializing hash joins and returns
// the final result; it is ExecuteTree on the plan's left-deep tree.
func (db *Database) Execute(p *plan.Plan) (*Relation, error) {
	if err := p.Validate(db.Query); err != nil {
		return nil, err
	}
	return db.ExecuteTree(p.LeftDeep())
}

// ExecuteTree runs an arbitrary bushy join tree bottom-up, materializing
// every intermediate result: scans apply unary predicates, and each join
// matches on every binary predicate whose two tables first meet at that
// node. Joins with no applicable predicate degenerate to cross products
// (as the paper's plan space allows). It is the oracle the streaming
// executor is differential-tested against.
func (db *Database) ExecuteTree(t *plan.Tree) (*Relation, error) {
	q := db.Query
	if err := t.Validate(q); err != nil {
		return nil, err
	}
	for pi, p := range q.Predicates {
		if len(p.Tables) > 2 {
			return nil, fmt.Errorf("exec: predicate %d spans %d tables, at most 2 are executable", pi, len(p.Tables))
		}
	}
	var walk func(node *plan.Tree) (*Relation, []int, error)
	walk = func(node *plan.Tree) (*Relation, []int, error) {
		if node.IsLeaf() {
			return db.scanBase(node.Table), []int{node.Table}, nil
		}
		left, lTabs, err := walk(node.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rTabs, err := walk(node.Right)
		if err != nil {
			return nil, nil, err
		}
		var keys []keyPair
		for pi := range q.Predicates {
			p := &q.Predicates[pi]
			if !p.IsBinary() {
				continue
			}
			a, b := p.Tables[0], p.Tables[1]
			switch {
			case containsTable(lTabs, a) && containsTable(rTabs, b):
				keys = append(keys, keyPair{left: predCol(a, pi), right: predCol(b, pi)})
			case containsTable(lTabs, b) && containsTable(rTabs, a):
				keys = append(keys, keyPair{left: predCol(b, pi), right: predCol(a, pi)})
			}
		}
		out, err := hashJoin(left, right, keys)
		if err != nil {
			return nil, nil, err
		}
		return out, append(lTabs, rTabs...), nil
	}
	out, _, err := walk(t)
	return out, err
}

// scanBase returns base table t with its unary predicates applied — the
// materializing form of predicate pushdown at the scan.
func (db *Database) scanBase(t int) *Relation {
	rel := db.Relations[t]
	filters := db.scanFilters(t)
	if len(filters) == 0 {
		return rel
	}
	out := &Relation{Cols: rel.Cols}
	for _, row := range rel.Rows {
		if passesFilters(row, filters) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// scanFilter is one pushed-down unary predicate: keep rows whose key
// column is zero (the synthesized data encodes the selectivity as the
// fraction of zeros in the column's domain).
type scanFilter struct {
	col  int
	pred int
}

// scanFilters returns the pushdown filters for base table t.
func (db *Database) scanFilters(t int) []scanFilter {
	var out []scanFilter
	for pi := range db.Query.Predicates {
		p := &db.Query.Predicates[pi]
		if len(p.Tables) == 1 && p.Tables[0] == t {
			out = append(out, scanFilter{col: db.Relations[t].colIndex(predCol(t, pi)), pred: pi})
		}
	}
	return out
}

func passesFilters(row []int64, filters []scanFilter) bool {
	for _, f := range filters {
		if row[f.col] != 0 {
			return false
		}
	}
	return true
}

func containsTable(tabs []int, t int) bool {
	for _, tb := range tabs {
		if tb == t {
			return true
		}
	}
	return false
}

// keyPair names one equi-join key on each side.
type keyPair struct{ left, right string }

// hashJoin equi-joins left and right on the key pairs; with no keys it
// builds the cross product. The build side is the smaller input; keys are
// hashed as int64 tuples (no per-row string formatting) with bucket
// collisions resolved by comparing the actual key columns.
func hashJoin(left, right *Relation, keys []keyPair) (*Relation, error) {
	out := &Relation{Cols: append(append([]string(nil), left.Cols...), right.Cols...)}

	if len(keys) == 0 {
		for _, lr := range left.Rows {
			for _, rr := range right.Rows {
				out.Rows = append(out.Rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}

	lIdx := make([]int, len(keys))
	rIdx := make([]int, len(keys))
	for k, kp := range keys {
		lIdx[k] = left.colIndex(kp.left)
		rIdx[k] = right.colIndex(kp.right)
		if lIdx[k] < 0 || rIdx[k] < 0 {
			return nil, fmt.Errorf("exec: join key %v missing (left %d, right %d)", kp, lIdx[k], rIdx[k])
		}
	}

	// Build on the smaller input.
	build, probe := right, left
	bIdx, pIdx := rIdx, lIdx
	buildIsRight := true
	if left.NumRows() < right.NumRows() {
		build, probe = left, right
		bIdx, pIdx = lIdx, rIdx
		buildIsRight = false
	}

	tab := newHashTab(bIdx, build.NumRows())
	for _, row := range build.Rows {
		tab.insert(row)
	}
	for _, prow := range probe.Rows {
		tab.probe(prow, pIdx, func(brow []int64) {
			if buildIsRight {
				out.Rows = append(out.Rows, concatRows(prow, brow))
			} else {
				out.Rows = append(out.Rows, concatRows(brow, prow))
			}
		})
	}
	return out, nil
}

// hashTab is a multimap from int64 key tuples to rows, keyed by a 64-bit
// tuple hash with collisions resolved by comparing the key columns. The
// empty-key table (cross products) stores every row in one bucket. The
// bucket map is allocated lazily on first insert — a table that never
// receives a row (the probe side of a scheduled streaming join) costs
// nothing, and pre-sizing is deferred until the join actually builds.
type hashTab struct {
	idx     []int // key column indices of inserted rows
	hint    int
	buckets map[uint64][][]int64
}

func newHashTab(idx []int, sizeHint int) *hashTab {
	return &hashTab{idx: idx, hint: sizeHint}
}

// hashRow hashes the key tuple of row at the given column indices. The
// FNV-1a-style 64-bit mix over whole int64 words avoids the per-byte loop
// and the string allocation of the old keyOf hot path.
func hashRow(row []int64, idx []int) uint64 {
	h := uint64(1469598103934665603)
	for _, i := range idx {
		h ^= uint64(row[i])
		h *= 1099511628211
		h ^= h >> 29
	}
	return h
}

func (t *hashTab) insert(row []int64) {
	if t.buckets == nil {
		t.buckets = make(map[uint64][][]int64, t.hint)
	}
	h := hashRow(row, t.idx)
	t.buckets[h] = append(t.buckets[h], row)
}

func (t *hashTab) size() int {
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// probe calls emit for every inserted row whose key tuple equals row's key
// tuple at pIdx. It allocates nothing itself.
func (t *hashTab) probe(row []int64, pIdx []int, emit func(match []int64)) {
	for _, cand := range t.buckets[hashRow(row, pIdx)] {
		if keysEqual(cand, t.idx, row, pIdx) {
			emit(cand)
		}
	}
}

// bucket returns the hash bucket row's key tuple at pIdx lands in. The
// bucket may contain hash collisions: callers must still filter with
// keysEqual against t.idx. Exposing the bucket lets hot probe loops match
// without a per-match indirect call.
func (t *hashTab) bucket(row []int64, pIdx []int) [][]int64 {
	return t.buckets[hashRow(row, pIdx)]
}

func keysEqual(a []int64, aIdx []int, b []int64, bIdx []int) bool {
	for k := range aIdx {
		if a[aIdx[k]] != b[bIdx[k]] {
			return false
		}
	}
	return true
}

func concatRows(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// Fingerprint returns an order-independent hash of the relation's rows
// with columns aligned to the given column order — equal fingerprints mean
// equal result multisets, the cross-join-order correctness check.
func (r *Relation) Fingerprint(colOrder []string) (uint64, error) {
	perm := make([]int, len(colOrder))
	for i, name := range colOrder {
		perm[i] = r.colIndex(name)
		if perm[i] < 0 {
			return 0, fmt.Errorf("exec: fingerprint column %q missing", name)
		}
	}
	hashes := make([]uint64, 0, len(r.Rows))
	for _, row := range r.Rows {
		h := fnv.New64a()
		var buf [8]byte
		for _, ci := range perm {
			v := row[ci]
			for s := 0; s < 64; s += 8 {
				buf[s/8] = byte(v >> s)
			}
			h.Write(buf[:])
		}
		hashes = append(hashes, h.Sum64())
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range hashes {
		for s := 0; s < 64; s += 8 {
			buf[s/8] = byte(v >> s)
		}
		h.Write(buf[:])
	}
	return h.Sum64(), nil
}
