package exec

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

// bestLeftDeepTree exhaustively enumerates left-deep orders and returns
// the C_out-optimal tree — a tiny self-contained optimizer, so the exec
// tests need no dependency on the joinorder package (which imports exec).
func bestLeftDeepTree(t testing.TB, q *qopt.Query) *plan.Tree {
	t.Helper()
	n := q.NumTables()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	var best []int
	bestCost := math.Inf(1)
	var perm func(k int)
	perm = func(k int) {
		if k == n {
			ev, err := plan.Evaluate(q, &plan.Plan{Order: order}, cost.CoutSpec())
			if err != nil {
				t.Fatal(err)
			}
			if ev.Total < bestCost {
				bestCost = ev.Total
				best = append(best[:0], order...)
			}
			return
		}
		for i := k; i < n; i++ {
			order[k], order[i] = order[i], order[k]
			perm(k + 1)
			order[k], order[i] = order[i], order[k]
		}
	}
	perm(0)
	return (&plan.Plan{Order: best}).LeftDeep()
}

// corruptedChainFixture is a 5-table chain whose first predicate's
// selectivity is wildly underestimated: the optimizer believes joining
// tables 0 and 1 first yields under one row, while the data produces
// ~20,000. The cheap recovery is to join the small tail of the chain
// first — exactly what mid-query re-optimization should discover.
func corruptedChainFixture() (truth, est *qopt.Query) {
	truth = &qopt.Query{
		Tables: []qopt.Table{{Card: 200}, {Card: 200}, {Card: 50}, {Card: 50}, {Card: 50}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.5},
			{Tables: []int{1, 2}, Sel: 0.02},
			{Tables: []int{2, 3}, Sel: 0.002},
			{Tables: []int{3, 4}, Sel: 0.002},
		},
	}
	est = &qopt.Query{
		Tables:     append([]qopt.Table(nil), truth.Tables...),
		Predicates: append([]qopt.Predicate(nil), truth.Predicates...),
	}
	est.Predicates[0].Sel = 1e-5
	return truth, est
}

func TestAdaptiveMatchesStreamWithoutFeedback(t *testing.T) {
	for _, shape := range workload.Shapes() {
		q := smallQuery(shape, 5, 81)
		db, err := Synthesize(q, 82)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(83))
		for trial := 0; trial < 3; trial++ {
			tree := randomBushyTree(5, rng)
			want, wantTrace := streamFingerprint(t, db, tree, StreamOptions{})
			res, err := db.ExecuteAdaptive(context.Background(), tree, AdaptiveOptions{
				QErrorThreshold: math.Inf(1),
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Result.Fingerprint(allColumns(db))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v trial %d: adaptive result differs from streaming", shape, trial)
			}
			if res.Reopts != 0 {
				t.Errorf("%v: %d re-optimizations with an infinite threshold", shape, res.Reopts)
			}
			// Same tree, stage-at-a-time: the intermediate results are
			// identical, so measured C_out must agree exactly.
			if res.Trace.MeasuredCout() != wantTrace.MeasuredCout() {
				t.Errorf("%v: adaptive measured C_out %g, streaming %g",
					shape, res.Trace.MeasuredCout(), wantTrace.MeasuredCout())
			}
			if len(res.Trace.Joins) != 4 {
				t.Errorf("%v: %d join trace entries, want 4", shape, len(res.Trace.Joins))
			}
		}
	}
}

func TestAdaptiveReoptimizationImprovesExecutedCost(t *testing.T) {
	truth, est := corruptedChainFixture()
	db, err := Synthesize(truth, 91)
	if err != nil {
		t.Fatal(err)
	}
	// The plan an optimizer trusting the corrupted estimate picks.
	tree := bestLeftDeepTree(t, est)

	// Baseline: run that plan end to end, no feedback.
	_, noFB := streamFingerprint(t, db, tree, StreamOptions{EstQuery: est})

	// Feedback: same plan, re-optimizing the remainder when a join's
	// measured cardinality misses its estimate.
	res, err := db.ExecuteAdaptive(context.Background(), tree, AdaptiveOptions{
		EstQuery:        est,
		QErrorThreshold: 2,
		MaxReopts:       2,
		Reoptimize: func(_ context.Context, rem *qopt.Query) (*plan.Tree, error) {
			return bestLeftDeepTree(t, rem), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts < 1 {
		t.Fatalf("no re-optimization despite a %g max q-error", res.Trace.MaxQError())
	}
	fb, base := res.Trace.MeasuredCout(), noFB.MeasuredCout()
	if fb >= base*0.8 {
		t.Errorf("feedback executed C_out %g, baseline %g — re-optimization did not help", fb, base)
	}
	// The correction recovered the true selectivity of the corrupted
	// predicate from the measured join size.
	got, ok := res.Corrections.PredSel[0]
	if !ok {
		t.Fatal("no correction recorded for the corrupted predicate")
	}
	if got < 0.2 || got > 1 {
		t.Errorf("corrected selectivity %g, true value 0.5", got)
	}
	if res.CorrectedQuery.Predicates[0].Sel != got {
		t.Errorf("corrected query carries sel %g, corrections say %g",
			res.CorrectedQuery.Predicates[0].Sel, got)
	}
	// Correctness is untouched: same final result as the oracle.
	want := oracleFingerprint(t, db, tree)
	fp, err := res.Result.Fingerprint(allColumns(db))
	if err != nil {
		t.Fatal(err)
	}
	if fp != want {
		t.Error("adaptive execution changed the query result")
	}
}

func TestAdaptiveReoptFailureFallsBack(t *testing.T) {
	truth, est := corruptedChainFixture()
	db, err := Synthesize(truth, 92)
	if err != nil {
		t.Fatal(err)
	}
	tree := bestLeftDeepTree(t, est)
	boom := errors.New("no plan for you")
	res, err := db.ExecuteAdaptive(context.Background(), tree, AdaptiveOptions{
		EstQuery:        est,
		QErrorThreshold: 2,
		Reoptimize: func(context.Context, *qopt.Query) (*plan.Tree, error) {
			return nil, boom
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReoptFailures < 1 {
		t.Error("failing re-optimizer was never consulted")
	}
	if res.Reopts != 0 {
		t.Errorf("%d re-optimizations recorded despite failures", res.Reopts)
	}
	want := oracleFingerprint(t, db, tree)
	fp, err := res.Result.Fingerprint(allColumns(db))
	if err != nil {
		t.Fatal(err)
	}
	if fp != want {
		t.Error("fallback execution changed the query result")
	}
}

func TestAdaptiveHonorsCancellation(t *testing.T) {
	q := smallQuery(workload.Chain, 5, 93)
	db, err := Synthesize(q, 94)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree := (&plan.Plan{Order: []int{0, 1, 2, 3, 4}}).LeftDeep()
	if _, err := db.ExecuteAdaptive(ctx, tree, AdaptiveOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled context returned %v, want context.Canceled", err)
	}
}
