package exec

import (
	"fmt"

	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// StreamOptions tune the streaming executor.
type StreamOptions struct {
	// BatchSize is the number of rows moved per iterator pull (default
	// DefaultBatchSize).
	BatchSize int
	// EstQuery supplies the optimizer's view of the query — the
	// estimates recorded next to measured cardinalities in the Trace. It
	// must be structurally identical to the database's query (same
	// tables, same predicate shapes); only the numbers may differ. Nil
	// means the database's own (ground-truth) query.
	EstQuery *qopt.Query
}

// Run is one compiled streaming execution: a pull-based pipeline over the
// whole join tree plus the Trace its operators fill in as rows flow.
type Run struct {
	// Cols is the output schema.
	Cols []string
	// Trace collects measured vs. estimated cardinalities; counts are
	// final once the run is exhausted (Collect or Drain returned).
	Trace *Trace

	it iterator
}

// Next returns the next output batch, or nil when the run is exhausted.
// The batch slice is reused between calls; the rows are stable.
func (r *Run) Next() ([][]int64, error) { return r.it.next() }

// Collect exhausts the run and materializes the result.
func (r *Run) Collect() (*Relation, error) {
	out := &Relation{Cols: r.Cols}
	for {
		batch, err := r.it.next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			r.Trace.ResultRows = len(out.Rows)
			return out, nil
		}
		out.Rows = append(out.Rows, batch...)
	}
}

// Drain exhausts the run counting rows without materializing the result.
func (r *Run) Drain() (int, error) {
	n := 0
	for {
		batch, err := r.it.next()
		if err != nil {
			return n, err
		}
		if batch == nil {
			r.Trace.ResultRows = n
			return n, nil
		}
		n += len(batch)
	}
}

// Stream compiles an arbitrary bushy join tree into a streaming iterator
// pipeline over the database: scans with unary predicates pushed down,
// one symmetric hash join per inner node, batch-at-a-time pulls, and
// per-operator measured/estimated capture into the run's Trace. Nothing
// executes until the run is pulled.
func (db *Database) Stream(t *plan.Tree, o StreamOptions) (*Run, error) {
	q := db.Query
	if err := t.Validate(q); err != nil {
		return nil, err
	}
	estQ := o.EstQuery
	if estQ == nil {
		estQ = q
	}
	if err := checkSameStructure(q, estQ); err != nil {
		return nil, err
	}
	env := &streamEnv{estQ: estQ, batchSize: o.BatchSize, trace: &Trace{}}
	for ti, rel := range db.Relations {
		env.srcs = append(env.srcs, &source{
			rel:     rel,
			tables:  []int{ti},
			filters: db.scanFilters(ti),
		})
	}
	for pi := range q.Predicates {
		p := &q.Predicates[pi]
		if len(p.Tables) > 2 {
			return nil, fmt.Errorf("exec: predicate %d spans %d tables, at most 2 are executable", pi, len(p.Tables))
		}
		if !p.IsBinary() {
			continue // unary: pushed to the scan via scanFilters
		}
		a, b := p.Tables[0], p.Tables[1]
		env.preds = append(env.preds, envPred{
			a: a, b: b,
			colA: predCol(a, pi), colB: predCol(b, pi),
			orig: pi,
		})
	}
	it, cols, _, _, err := env.compile(t)
	if err != nil {
		return nil, err
	}
	return &Run{Cols: cols, Trace: env.trace, it: it}, nil
}

// checkSameStructure verifies that est is the same query as q up to the
// numbers (cardinalities and selectivities may differ, structure may not).
func checkSameStructure(q, est *qopt.Query) error {
	if len(est.Tables) != len(q.Tables) {
		return fmt.Errorf("exec: estimate query has %d tables, database has %d", len(est.Tables), len(q.Tables))
	}
	if len(est.Predicates) != len(q.Predicates) {
		return fmt.Errorf("exec: estimate query has %d predicates, database has %d", len(est.Predicates), len(q.Predicates))
	}
	for pi := range q.Predicates {
		a, b := q.Predicates[pi].Tables, est.Predicates[pi].Tables
		if len(a) != len(b) {
			return fmt.Errorf("exec: estimate predicate %d spans %d tables, database's spans %d", pi, len(b), len(a))
		}
		for k := range a {
			if a[k] != b[k] {
				return fmt.Errorf("exec: estimate predicate %d connects %v, database's connects %v", pi, b, a)
			}
		}
	}
	return nil
}

// source is one leaf input of a compiled pipeline: a base table in the
// plain streaming path, a materialized intermediate (virtual table) under
// adaptive execution.
type source struct {
	rel *Relation
	// tables is the set of base tables the source covers.
	tables []int
	// filters are unary predicates pushed down to the scan (base-table
	// sources only; virtual tables are already filtered).
	filters []scanFilter
	// applied lists predicates already applied inside the source
	// (virtual tables only), for trace bookkeeping.
	applied []int
}

// envPred is one executable binary join predicate in source space.
type envPred struct {
	// a and b are source indices.
	a, b int
	// colA and colB are the key column names on each source.
	colA, colB string
	// orig is the predicate's index in the original query.
	orig int
}

// streamEnv compiles trees whose leaves index srcs, with estimates drawn
// from estQ (a query over the same source index space).
type streamEnv struct {
	srcs      []*source
	preds     []envPred
	estQ      *qopt.Query
	batchSize int
	trace     *Trace
}

// compile builds the iterator for node t, returning the iterator, its
// output schema, the source indices and base tables it covers.
func (e *streamEnv) compile(t *plan.Tree) (iterator, []string, []int, []int, error) {
	if t.IsLeaf() {
		si := t.Table
		if si < 0 || si >= len(e.srcs) {
			return nil, nil, nil, nil, fmt.Errorf("exec: tree references unknown source %d", si)
		}
		src := e.srcs[si]
		var tr *ScanTrace
		if len(src.tables) == 1 {
			tr = &ScanTrace{
				Table:        src.tables[0],
				AppliedPreds: filterPreds(src.filters),
				Estimated:    plan.SubsetCard(e.estQ, []int{si}),
			}
			e.trace.Scans = append(e.trace.Scans, tr)
		}
		return newScanIter(src.rel, src.filters, e.batchSize, tr), src.rel.Cols, []int{si}, src.tables, nil
	}

	lIt, lCols, lSrcs, lTabs, err := e.compile(t.Left)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rIt, rCols, rSrcs, rTabs, err := e.compile(t.Right)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	var lKey, rKey []int
	var applied []int
	for i := range e.preds {
		p := &e.preds[i]
		var lCol, rCol string
		switch {
		case containsTable(lSrcs, p.a) && containsTable(rSrcs, p.b):
			lCol, rCol = p.colA, p.colB
		case containsTable(lSrcs, p.b) && containsTable(rSrcs, p.a):
			lCol, rCol = p.colB, p.colA
		default:
			continue
		}
		li := colIndexOf(lCols, lCol)
		ri := colIndexOf(rCols, rCol)
		if li < 0 || ri < 0 {
			return nil, nil, nil, nil, fmt.Errorf("exec: join key %s/%s missing from operand schemas", lCol, rCol)
		}
		lKey = append(lKey, li)
		rKey = append(rKey, ri)
		applied = append(applied, p.orig)
	}

	srcSet := append(append([]int(nil), lSrcs...), rSrcs...)
	baseTabs := append(append([]int(nil), lTabs...), rTabs...)
	tr := &JoinTrace{
		Tables:       sortedInts(baseTabs),
		AppliedPreds: applied,
		Estimated:    plan.SubsetCard(e.estQ, srcSet),
	}
	e.trace.Joins = append(e.trace.Joins, tr)
	cols := append(append([]string(nil), lCols...), rCols...)
	// Build on the estimated-smaller input: the join drains that side
	// first and runs as a classic build/probe join when the estimate holds.
	lEst := plan.SubsetCard(e.estQ, lSrcs)
	rEst := plan.SubsetCard(e.estQ, rSrcs)
	buildLeft := lEst <= rEst
	return newJoinIter(lIt, rIt, lKey, rKey, e.batchSize, buildLeft, tableSizeHint(lEst, rEst, buildLeft), tr), cols, srcSet, baseTabs, nil
}

// tableSizeHint turns the build side's estimated cardinality into a map
// pre-size, capped so a wild misestimate cannot allocate an absurd table.
func tableSizeHint(lEst, rEst float64, buildLeft bool) int {
	est := lEst
	if !buildLeft {
		est = rEst
	}
	const maxHint = 1 << 20
	if est != est || est <= 0 { // NaN or nonsense: let the map grow
		return 0
	}
	if est > maxHint {
		return maxHint
	}
	return int(est)
}

func colIndexOf(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

func filterPreds(filters []scanFilter) []int {
	var out []int
	for _, f := range filters {
		out = append(out, f.pred)
	}
	return out
}
