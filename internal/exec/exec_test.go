package exec

import (
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

// smallQuery keeps executor tests cheap: tiny cardinalities, moderate
// selectivities so intermediate results stay small.
func smallQuery(shape workload.GraphShape, n int, seed int64) *qopt.Query {
	return workload.Generate(shape, n, seed, workload.Config{
		MinLogCard: 1, MaxLogCard: 1.7, // 10 … 50 rows
		MinSel: 0.05, MaxSel: 0.3,
	})
}

func allColumns(db *Database) []string {
	var cols []string
	for _, rel := range db.Relations {
		cols = append(cols, rel.Cols...)
	}
	return cols
}

func TestSynthesizeShapes(t *testing.T) {
	q := smallQuery(workload.Chain, 4, 1)
	db, err := Synthesize(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Relations) != 4 {
		t.Fatalf("relations = %d", len(db.Relations))
	}
	for ti, rel := range db.Relations {
		if rel.NumRows() != int(q.Tables[ti].Card) {
			t.Errorf("table %d: %d rows, want %g", ti, rel.NumRows(), q.Tables[ti].Card)
		}
	}
	// Chain interior tables carry two key columns, endpoints one.
	if len(db.Relations[0].Cols) != 1 || len(db.Relations[1].Cols) != 2 {
		t.Errorf("column counts: %v / %v", db.Relations[0].Cols, db.Relations[1].Cols)
	}
}

func TestAllJoinOrdersProduceSameResult(t *testing.T) {
	for _, shape := range workload.Shapes() {
		q := smallQuery(shape, 4, 2)
		db, err := Synthesize(q, 11)
		if err != nil {
			t.Fatal(err)
		}
		cols := allColumns(db)
		var want uint64
		first := true
		for _, order := range [][]int{
			{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1},
		} {
			res, err := db.Execute(&plan.Plan{Order: order})
			if err != nil {
				t.Fatalf("%v %v: %v", shape, order, err)
			}
			fp, err := res.Fingerprint(cols)
			if err != nil {
				t.Fatal(err)
			}
			if first {
				want, first = fp, false
			} else if fp != want {
				t.Fatalf("%v: order %v produced a different result multiset", shape, order)
			}
		}
	}
}

func TestCrossProductSizesExact(t *testing.T) {
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 7}, {Card: 5}, {Card: 3}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.2},
		},
	}
	db, err := Synthesize(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Join 0 ⋈ 2 first: pure cross product of 7×3 = 21 rows.
	res, err := db.Execute(&plan.Plan{Order: []int{0, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Final size must equal the size of any other order.
	res2, err := db.Execute(&plan.Plan{Order: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != res2.NumRows() {
		t.Errorf("row counts differ: %d vs %d", res.NumRows(), res2.NumRows())
	}
}

func TestMeasuredSizeTracksEstimate(t *testing.T) {
	// Average over several seeds: the synthesized data's final result
	// size should track the optimizer's estimate (law of large numbers
	// on uniform keys).
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 200}, {Card: 150}, {Card: 100}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.02},
			{Tables: []int{1, 2}, Sel: 0.05},
		},
	}
	eval, err := plan.Evaluate(q, &plan.Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := eval.FinalCard

	var total float64
	const runs = 5
	for seed := int64(0); seed < runs; seed++ {
		db, err := Synthesize(q, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Execute(&plan.Plan{Order: []int{0, 1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		total += float64(res.NumRows())
	}
	got := total / runs
	if got < want/2 || got > want*2 {
		t.Errorf("measured final size %g, estimate %g (outside factor 2)", got, want)
	}
}

func TestExecuteRejectsInvalidPlan(t *testing.T) {
	q := smallQuery(workload.Chain, 3, 1)
	db, err := Synthesize(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(&plan.Plan{Order: []int{0, 1}}); err == nil {
		t.Error("short plan accepted")
	}
}

func TestSynthesizeRejectsNaryPredicates(t *testing.T) {
	q := smallQuery(workload.Chain, 3, 1)
	q.Predicates = append(q.Predicates, qopt.Predicate{Tables: []int{0, 1, 2}, Sel: 0.5})
	if _, err := Synthesize(q, 1); err == nil {
		t.Error("n-ary predicate accepted")
	}
}

func TestFingerprintDetectsDifferences(t *testing.T) {
	a := &Relation{Cols: []string{"x"}, Rows: [][]int64{{1}, {2}}}
	b := &Relation{Cols: []string{"x"}, Rows: [][]int64{{2}, {1}}}
	c := &Relation{Cols: []string{"x"}, Rows: [][]int64{{1}, {3}}}
	fa, _ := a.Fingerprint([]string{"x"})
	fb, _ := b.Fingerprint([]string{"x"})
	fc, _ := c.Fingerprint([]string{"x"})
	if fa != fb {
		t.Error("row order changed the fingerprint")
	}
	if fa == fc {
		t.Error("different multisets share a fingerprint")
	}
	if _, err := a.Fingerprint([]string{"nope"}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestOptimizedPlanExecutes(t *testing.T) {
	// End-to-end: optimize with DP (exact), execute the plan, compare
	// against the canonical order's result.
	q := smallQuery(workload.Star, 5, 4)
	db, err := Synthesize(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Use the greedy plan as "optimizer output" (cheap, deterministic).
	base, err := db.Execute(&plan.Plan{Order: []int{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	cols := allColumns(db)
	want, err := base.Fingerprint(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{4, 0, 3, 1, 2}, {2, 1, 0, 4, 3}} {
		res, err := db.Execute(&plan.Plan{Order: order})
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.Fingerprint(cols)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("order %v produced a different result", order)
		}
	}
}
