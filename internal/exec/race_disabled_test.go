//go:build !race

package exec

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions are skipped.
const raceEnabled = false
