package exec

// The pull-based iterator layer: every operator exposes Next() returning
// one batch of rows. Batches are reused between calls (a caller must not
// retain the batch slice), but the rows inside a batch are stable — scan
// rows belong to their Relation, join rows are freshly built — so hash
// tables may keep references without copying.

// DefaultBatchSize is the number of rows moved per Next() call when
// StreamOptions leaves BatchSize zero.
const DefaultBatchSize = 256

// iterator is the internal operator interface.
type iterator interface {
	// next returns the next batch, or nil when exhausted. The returned
	// slice is only valid until the following call.
	next() ([][]int64, error)
}

// scanIter scans a relation batch-at-a-time, applying pushed-down unary
// predicate filters and counting rows into its ScanTrace.
type scanIter struct {
	rel       *Relation
	filters   []scanFilter
	pos       int
	batchSize int
	out       [][]int64
	tr        *ScanTrace
}

func newScanIter(rel *Relation, filters []scanFilter, batchSize int, tr *ScanTrace) *scanIter {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &scanIter{rel: rel, filters: filters, batchSize: batchSize, out: make([][]int64, 0, batchSize), tr: tr}
}

func (s *scanIter) next() ([][]int64, error) {
	for s.pos < len(s.rel.Rows) {
		end := s.pos + s.batchSize
		if end > len(s.rel.Rows) {
			end = len(s.rel.Rows)
		}
		rows := s.rel.Rows[s.pos:end]
		s.pos = end
		if s.tr != nil {
			s.tr.InRows += len(rows)
		}
		if len(s.filters) == 0 {
			if s.tr != nil {
				s.tr.OutRows += len(rows)
			}
			return rows, nil
		}
		s.out = s.out[:0]
		for _, row := range rows {
			if passesFilters(row, s.filters) {
				s.out = append(s.out, row)
			}
		}
		if s.tr != nil {
			s.tr.OutRows += len(s.out)
		}
		if len(s.out) > 0 {
			return s.out, nil
		}
		// Every row of the batch was filtered out; pull the next one.
	}
	return nil, nil
}

// joinIter is a symmetric hash join: it maintains a hash table per input,
// and each arriving row first probes the opposite table (matching
// everything that arrived earlier), then is inserted into its own table so
// later opposite rows can find it — every pair matches exactly once, at
// its later arrival. Once one side is exhausted the other side's rows skip
// insertion (nothing will probe them). The symmetry makes the result
// correct under ANY pull schedule; the schedule used drains the
// estimated-smaller side (buildLeft) to exhaustion first, so the join
// degrades to a classic build/probe hash join — one hash table, not two —
// whenever the estimate is usable, while a wrong estimate only costs
// speed, never correctness.
type joinIter struct {
	left, right  iterator
	lKey, rKey   []int // key column indices into each side's schema
	lTab, rTab   *hashTab
	lDone, rDone bool
	buildLeft    bool
	out          [][]int64
	tr           *JoinTrace
}

// newJoinIter builds a join over left and right. buildHint pre-sizes the
// build side's hash table (the estimated input cardinality); the probe
// side's table stays unsized — under the drain-build-first schedule it
// never receives a row.
func newJoinIter(left, right iterator, lKey, rKey []int, batchSize int, buildLeft bool, buildHint int, tr *JoinTrace) *joinIter {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	lHint, rHint := buildHint, 0
	if !buildLeft {
		lHint, rHint = 0, buildHint
	}
	return &joinIter{
		left: left, right: right,
		lKey: lKey, rKey: rKey,
		lTab: newHashTab(lKey, lHint), rTab: newHashTab(rKey, rHint),
		buildLeft: buildLeft,
		out:       make([][]int64, 0, batchSize),
		tr:        tr,
	}
}

func (j *joinIter) next() ([][]int64, error) {
	for {
		if j.lDone && j.rDone {
			return nil, nil
		}
		fromLeft := j.buildLeft
		if j.lDone {
			fromLeft = false
		} else if j.rDone {
			fromLeft = true
		}

		var (
			batch [][]int64
			err   error
		)
		if fromLeft {
			batch, err = j.left.next()
		} else {
			batch, err = j.right.next()
		}
		if err != nil {
			return nil, err
		}
		if batch == nil {
			// Drop the exhausted input and the table its rows were
			// probing: nothing references the finished subtree or the
			// now-unreachable table again, so the GC can reclaim a
			// finished join's state while the rest of the plan runs —
			// peak memory tracks the active path, not the whole tree.
			if fromLeft {
				j.lDone = true
				j.left = nil
				j.rTab = nil
			} else {
				j.rDone = true
				j.right = nil
				j.lTab = nil
			}
			continue
		}

		j.out = j.out[:0]
		if fromLeft {
			if j.tr != nil {
				j.tr.LeftRows += len(batch)
			}
			// An empty opposite table means no right row has arrived yet;
			// skipping the probe saves a hash per row during the build
			// phase. The pairs are not lost — they match when the right
			// rows later probe lTab. Matching runs inline over the raw
			// bucket (filtering hash collisions with keysEqual) so the hot
			// loop makes no indirect calls.
			probe := len(j.rTab.buckets) > 0
			for _, row := range batch {
				if probe {
					for _, m := range j.rTab.bucket(row, j.lKey) {
						if keysEqual(m, j.rTab.idx, row, j.lKey) {
							j.out = append(j.out, concatRows(row, m))
						}
					}
				}
				if !j.rDone {
					j.lTab.insert(row)
				}
			}
		} else {
			if j.tr != nil {
				j.tr.RightRows += len(batch)
			}
			probe := len(j.lTab.buckets) > 0
			for _, row := range batch {
				if probe {
					for _, m := range j.lTab.bucket(row, j.rKey) {
						if keysEqual(m, j.lTab.idx, row, j.rKey) {
							j.out = append(j.out, concatRows(m, row))
						}
					}
				}
				if !j.lDone {
					j.rTab.insert(row)
				}
			}
		}
		if j.tr != nil {
			j.tr.Measured += float64(len(j.out))
		}
		if len(j.out) > 0 {
			return j.out, nil
		}
	}
}
