package exec

import (
	"math/rand"
	"testing"
)

// allocFixture builds a populated hash table plus a probe row set with a
// realistic hit rate.
func allocFixture(nBuild, nProbe int, keyCols []int) (*hashTab, [][]int64) {
	rng := rand.New(rand.NewSource(7))
	width := 4
	tab := newHashTab(keyCols, nBuild)
	for i := 0; i < nBuild; i++ {
		row := make([]int64, width)
		for c := range row {
			row[c] = rng.Int63n(64)
		}
		tab.insert(row)
	}
	probe := make([][]int64, nProbe)
	for i := range probe {
		row := make([]int64, width)
		for c := range row {
			row[c] = rng.Int63n(64)
		}
		probe[i] = row
	}
	return tab, probe
}

// TestHashTabProbeZeroAllocs asserts that the int64-tuple hash probe path
// performs no heap allocation — the acceptance criterion for replacing the
// old per-row string key formatting.
func TestHashTabProbeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	tab, probe := allocFixture(2000, 500, []int{0, 2})
	pIdx := []int{0, 2}
	matches := 0
	emit := func(m []int64) { matches++ }
	// Warm up so any lazy map growth happens before counting.
	for _, row := range probe {
		tab.probe(row, pIdx, emit)
	}
	allocs := testing.AllocsPerRun(20, func() {
		for _, row := range probe {
			tab.probe(row, pIdx, emit)
		}
	})
	if allocs != 0 {
		t.Errorf("probe allocates %.2f objects per sweep, want 0", allocs)
	}
	if matches == 0 {
		t.Fatal("fixture produced no matches — the probe loop is not exercised")
	}
}

// TestHashTabCollisionSafety forces rows whose key tuples differ but could
// collide in bucket space and checks that probe compares actual columns.
func TestHashTabCollisionSafety(t *testing.T) {
	tab := newHashTab([]int{0, 1}, 4)
	a := []int64{1, 2, 10}
	b := []int64{2, 1, 20} // permuted keys must not match (1,2)
	tab.insert(a)
	tab.insert(b)
	var got [][]int64
	tab.probe([]int64{1, 2, 99}, []int{0, 1}, func(m []int64) { got = append(got, m) })
	if len(got) != 1 || got[0][2] != 10 {
		t.Fatalf("probe for key (1,2) matched %v, want only the (1,2) row", got)
	}
}

func BenchmarkHashTabProbe(b *testing.B) {
	tab, probe := allocFixture(10000, 1000, []int{0, 2})
	pIdx := []int{0, 2}
	matches := 0
	emit := func(m []int64) { matches++ }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, row := range probe {
			tab.probe(row, pIdx, emit)
		}
	}
	b.ReportAllocs()
}

func BenchmarkHashJoinMaterializing(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	mk := func(n int, cols []string, dom int64) *Relation {
		rel := &Relation{Cols: cols}
		for i := 0; i < n; i++ {
			row := make([]int64, len(cols))
			for c := range row {
				row[c] = rng.Int63n(dom)
			}
			rel.Rows = append(rel.Rows, row)
		}
		return rel
	}
	left := mk(20000, []string{"T0.p0", "T0.p1"}, 1000)
	right := mk(5000, []string{"T1.p0", "T1.p2"}, 1000)
	keys := []keyPair{{left: "T0.p0", right: "T1.p0"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hashJoin(left, right, keys); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
}
