package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilEmitterIsSafe(t *testing.T) {
	var e *Emitter
	e.Emit(Event{Kind: KindIncumbent}) // must not panic
	if e.Count() != 0 {
		t.Fatalf("nil emitter Count = %d", e.Count())
	}
	if NewEmitter(time.Now(), nil) != nil {
		t.Fatal("NewEmitter with nil sink should return nil")
	}
}

func TestEmitterAssignsSequenceAndElapsed(t *testing.T) {
	var got []Event
	e := NewEmitter(time.Now().Add(-time.Second), func(ev Event) { got = append(got, ev) })
	e.Emit(Event{Kind: KindPresolve})
	e.Emit(Event{Kind: KindIncumbent})
	e.Emit(Event{Kind: KindBound, Elapsed: 42 * time.Millisecond})
	if len(got) != 3 || e.Count() != 3 {
		t.Fatalf("emitted %d events, Count %d", len(got), e.Count())
	}
	for i, ev := range got {
		if ev.Seq != i {
			t.Errorf("event %d has seq %d", i, ev.Seq)
		}
	}
	if got[0].Elapsed < time.Second {
		t.Errorf("auto-stamped elapsed %v, want >= 1s", got[0].Elapsed)
	}
	if got[2].Elapsed != 42*time.Millisecond {
		t.Errorf("explicit elapsed overwritten: %v", got[2].Elapsed)
	}
}

func TestEmitterSerialisesConcurrentEmits(t *testing.T) {
	var seqs []int
	e := NewEmitter(time.Now(), func(ev Event) { seqs = append(seqs, ev.Seq) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Emit(Event{Kind: KindNodeBatch})
			}
		}()
	}
	wg.Wait()
	if len(seqs) != 400 {
		t.Fatalf("got %d events, want 400", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("seq %d delivered at position %d", s, i)
		}
	}
}

func TestEventJSONMapsInfinitiesToNull(t *testing.T) {
	ev := Event{
		Kind:      KindNodeBatch,
		Worker:    1,
		Incumbent: math.Inf(1),
		Bound:     math.Inf(-1),
		Gap:       math.Inf(1),
		Nodes:     7,
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("event JSON invalid: %v\n%s", err, data)
	}
	if doc["kind"] != "node_batch" {
		t.Errorf("kind = %v", doc["kind"])
	}
	for _, k := range []string{"incumbent", "bound", "gap"} {
		if v, ok := doc[k]; ok && v != nil {
			t.Errorf("%s = %v, want null/omitted", k, v)
		}
	}
	if doc["worker"] != float64(1) {
		t.Errorf("worker = %v", doc["worker"])
	}
}

func TestEventStringPerKind(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: KindPresolve, Worker: -1, Rounds: 2, RowsRemoved: 3}, "rows-removed=3"},
		{Event{Kind: KindLPRelaxation, Worker: 0, Objective: 12.5, Iters: 9}, "obj=12.5"},
		{Event{Kind: KindCutRound, Worker: -1, Rounds: 1, Cuts: 4}, "cuts=4"},
		{Event{Kind: KindHeuristic, Worker: 1, Success: true}, "success=true"},
		{Event{Kind: KindWorkerStart, Worker: 3}, "worker=3"},
	}
	for _, tc := range cases {
		if s := tc.ev.String(); !strings.Contains(s, tc.want) {
			t.Errorf("String() = %q, want substring %q", s, tc.want)
		}
	}
}

func TestRelGap(t *testing.T) {
	cases := []struct {
		inc, bound, want float64
	}{
		{math.Inf(1), -10, math.Inf(1)},
		{100, 100, 0},
		{100, 110, 0}, // bound past incumbent clamps to zero
		{100, 50, 0.5},
		{-50, -100, 1},
	}
	for _, tc := range cases {
		if got := RelGap(tc.inc, tc.bound); got != tc.want {
			t.Errorf("RelGap(%g, %g) = %g, want %g", tc.inc, tc.bound, got, tc.want)
		}
	}
}

func TestStatsReporting(t *testing.T) {
	s := Stats{
		PresolveTime:       time.Millisecond,
		TotalTime:          10 * time.Millisecond,
		Nodes:              12,
		Workers:            2,
		NodesPerWorker:     []int{7, 5},
		SimplexIters:       345,
		HeuristicCalls:     4,
		HeuristicSuccesses: 1,
	}
	if got := s.HeuristicSuccessRate(); got != 0.25 {
		t.Errorf("HeuristicSuccessRate = %g", got)
	}
	if got := (Stats{}).HeuristicSuccessRate(); got != 0 {
		t.Errorf("zero-stats HeuristicSuccessRate = %g", got)
	}
	if str := s.String(); !strings.Contains(str, "12 nodes") || !strings.Contains(str, "2 workers") {
		t.Errorf("Stats.String() = %q", str)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["simplex_iters"] != float64(345) {
		t.Errorf("simplex_iters = %v", doc["simplex_iters"])
	}
	if doc["heuristic_success_rate"] != 0.25 {
		t.Errorf("heuristic_success_rate = %v", doc["heuristic_success_rate"])
	}
	if doc["total_sec"] != 0.01 {
		t.Errorf("total_sec = %v", doc["total_sec"])
	}
}

// TestEventJSONRoundTrip checks that an Event survives the SSE wire
// format: marshal → unmarshal restores the anytime state, with nulls
// mapping back to the non-finite sentinels.
func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{
		Kind: KindBound, Seq: 7, Elapsed: 250 * time.Millisecond, Worker: 1,
		Incumbent: 4000, Bound: 1200, Gap: 0.7, HasIncumbent: true,
		Nodes: 42, OpenNodes: 5,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Seq != in.Seq || out.Worker != in.Worker ||
		out.Incumbent != in.Incumbent || out.Bound != in.Bound || out.Gap != in.Gap ||
		!out.HasIncumbent || out.Nodes != in.Nodes || out.OpenNodes != in.OpenNodes {
		t.Errorf("round trip lost fields: %+v", out)
	}
	if out.Elapsed != in.Elapsed {
		t.Errorf("elapsed = %v, want %v", out.Elapsed, in.Elapsed)
	}

	// A pre-incumbent event: sentinels restored from nulls, worker -1
	// restored from absence.
	pre := Event{Kind: KindPresolve, Worker: -1,
		Incumbent: math.Inf(1), Bound: math.Inf(-1), Gap: math.Inf(1), Objective: math.Inf(1)}
	data, err = json.Marshal(pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Incumbent, 1) || !math.IsInf(out.Bound, -1) || !math.IsInf(out.Gap, 1) || out.Worker != -1 {
		t.Errorf("sentinels not restored: %+v", out)
	}
}

// TestEventKindJSONRoundTrip walks every kind through its string form.
func TestEventKindJSONRoundTrip(t *testing.T) {
	for _, k := range eventKinds {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var out EventKind
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if out != k {
			t.Errorf("round trip %v → %v", k, out)
		}
	}
	var bad EventKind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &bad); err == nil {
		t.Error("unknown kind accepted")
	}
}
