package obs

import (
	"context"
	"log/slog"
	"math"
	"time"
)

// SlogHandler adapts the typed event stream to structured log/slog
// records: it returns an event sink, usable as an OnEvent callback, that
// renders each event as one record on logger at level. The event
// vocabulary stays the single source of truth — the record's message is
// the event kind and every populated field becomes an attribute, so a log
// pipeline sees exactly what a programmatic consumer sees.
//
// Extra attrs (a request ID, a tenant) are prepended to every record,
// letting a serving layer correlate solver events with the request that
// triggered them. Non-finite objective values are omitted rather than
// logged, mirroring the JSON encoding.
//
// The sink is as safe for concurrent use as the logger's handler; solver
// streams additionally serialise their callbacks. Like every OnEvent
// callback it runs on solver goroutines, so the handler should not block.
func SlogHandler(logger *slog.Logger, level slog.Level, attrs ...slog.Attr) func(Event) {
	if logger == nil {
		logger = slog.Default()
	}
	return func(ev Event) {
		if !logger.Enabled(context.Background(), level) {
			return
		}
		out := make([]slog.Attr, 0, len(attrs)+12)
		out = append(out, attrs...)
		out = append(out, SlogAttrs(ev)...)
		logger.LogAttrs(context.Background(), level, ev.Kind.String(), out...)
	}
}

// SlogAttrs renders one event as slog attributes: the shared anytime state
// first, then the kind-specific payload, with unset and non-finite fields
// omitted.
func SlogAttrs(ev Event) []slog.Attr {
	out := make([]slog.Attr, 0, 12)
	out = append(out,
		slog.Int("seq", ev.Seq),
		slog.Duration("elapsed", ev.Elapsed.Truncate(time.Microsecond)),
	)
	if ev.Worker >= 0 {
		out = append(out, slog.Int("worker", ev.Worker))
	}
	if ev.HasIncumbent && !math.IsInf(ev.Incumbent, 0) {
		out = append(out, slog.Float64("incumbent", ev.Incumbent))
	}
	if !math.IsInf(ev.Bound, 0) && !math.IsNaN(ev.Bound) {
		out = append(out, slog.Float64("bound", ev.Bound))
		if !math.IsInf(ev.Gap, 0) && !math.IsNaN(ev.Gap) {
			out = append(out, slog.Float64("gap", ev.Gap))
		}
	}
	if ev.Nodes > 0 {
		out = append(out, slog.Int("nodes", ev.Nodes))
	}
	switch ev.Kind {
	case KindPresolve:
		out = append(out,
			slog.Int("rounds", ev.Rounds),
			slog.Int("rows_removed", ev.RowsRemoved),
			slog.Int("cols_removed", ev.ColsRemoved))
	case KindLPRelaxation:
		if !math.IsInf(ev.Objective, 0) && !math.IsNaN(ev.Objective) {
			out = append(out, slog.Float64("objective", ev.Objective))
		}
		out = append(out, slog.Int("iters", ev.Iters))
	case KindCutRound:
		out = append(out, slog.Int("round", ev.Rounds), slog.Int("cuts", ev.Cuts))
	case KindHeuristic:
		out = append(out, slog.Bool("success", ev.Success))
	case KindNodeBatch:
		out = append(out, slog.Int("open_nodes", ev.OpenNodes))
	}
	return out
}
