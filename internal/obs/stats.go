package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// Stats aggregate where a MILP solve spent its effort, per phase. The
// solver facade returns them on every Result; the public API surfaces them
// as joinorder.Result.Stats. Cumulative times (LPTime, HeuristicTime) are
// summed across parallel workers, so they can exceed the wall-clock phase
// times on multi-threaded runs.
type Stats struct {
	// Per-phase wall-clock time.
	PresolveTime time.Duration // presolve sweeps
	RootLPTime   time.Duration // root LP relaxation solve
	CutTime      time.Duration // root cut generation
	SearchTime   time.Duration // branch-and-bound phase (wall clock)
	TotalTime    time.Duration // whole solve, including decode glue

	// Cumulative in-phase time, summed across workers.
	LPTime        time.Duration // inside node LP solves
	HeuristicTime time.Duration // inside diving heuristics

	// Presolve outcome.
	PresolveRounds int
	RowsRemoved    int
	ColsRemoved    int

	// Root cuts.
	CutRounds int
	CutsAdded int

	// Branch-and-bound search shape.
	Nodes          int
	PeakOpenNodes  int
	Workers        int
	NodesPerWorker []int

	// Simplex kernel effort.
	SimplexIters     int
	RootLPIters      int
	Refactorizations int // LU refactorizations across all node solves

	// Pricing behaviour across all node solves: devex reference-framework
	// resets, columns actually priced, and the columns a full-pricing rule
	// would have priced in the same passes.
	DevexResets        int
	PricingScannedCols int
	PricingTotalCols   int

	// Branching and primal heuristics.
	PseudocostInits    int // variables with initialised pseudocosts
	HeuristicCalls     int // rounding and diving attempts
	HeuristicSuccesses int // attempts that improved the incumbent

	// Anytime trajectory.
	Incumbents         int // incumbent improvements observed
	BoundImprovements  int // bound-improvement notifications
	InjectedIncumbents int // portfolio-peer incumbents installed mid-solve
	Events             int // events emitted to the stream
}

// HeuristicSuccessRate is the fraction of primal heuristic attempts that
// improved the incumbent (0 when none ran).
func (s Stats) HeuristicSuccessRate() float64 {
	if s.HeuristicCalls == 0 {
		return 0
	}
	return float64(s.HeuristicSuccesses) / float64(s.HeuristicCalls)
}

// PricingScanFraction is the fraction of full-pricing work the partial and
// candidate-list pricing rules actually performed (1 when nothing priced).
func (s Stats) PricingScanFraction() float64 {
	if s.PricingTotalCols == 0 {
		return 1
	}
	return float64(s.PricingScannedCols) / float64(s.PricingTotalCols)
}

// String renders a multi-line human-readable report.
func (s Stats) String() string {
	var sb strings.Builder
	d := func(v time.Duration) string { return v.Truncate(time.Microsecond).String() }
	fmt.Fprintf(&sb, "phases:     presolve %s, root LP %s, cuts %s, search %s (total %s)\n",
		d(s.PresolveTime), d(s.RootLPTime), d(s.CutTime), d(s.SearchTime), d(s.TotalTime))
	fmt.Fprintf(&sb, "simplex:    %d iterations (%d at root), %d LU refactorizations, %s in node LPs\n",
		s.SimplexIters, s.RootLPIters, s.Refactorizations, d(s.LPTime))
	fmt.Fprintf(&sb, "pricing:    %d devex resets, %.1f%% of columns scanned\n",
		s.DevexResets, 100*s.PricingScanFraction())
	fmt.Fprintf(&sb, "presolve:   %d rounds, removed %d rows, %d cols\n",
		s.PresolveRounds, s.RowsRemoved, s.ColsRemoved)
	if s.CutRounds > 0 {
		fmt.Fprintf(&sb, "cuts:       %d rounds, %d added\n", s.CutRounds, s.CutsAdded)
	}
	fmt.Fprintf(&sb, "search:     %d nodes, peak %d open, %d workers", s.Nodes, s.PeakOpenNodes, s.Workers)
	if len(s.NodesPerWorker) > 0 {
		fmt.Fprintf(&sb, " %v", s.NodesPerWorker)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "branching:  %d pseudocost initializations\n", s.PseudocostInits)
	fmt.Fprintf(&sb, "heuristics: %d/%d successful (%.1f%%), %s diving\n",
		s.HeuristicSuccesses, s.HeuristicCalls, 100*s.HeuristicSuccessRate(), d(s.HeuristicTime))
	fmt.Fprintf(&sb, "anytime:    %d incumbents, %d bound improvements, %d events",
		s.Incumbents, s.BoundImprovements, s.Events)
	if s.InjectedIncumbents > 0 {
		fmt.Fprintf(&sb, ", %d injected", s.InjectedIncumbents)
	}
	return sb.String()
}

// statsJSON is the wire form: durations in seconds, stable snake_case keys.
type statsJSON struct {
	PresolveSec        float64 `json:"presolve_sec"`
	RootLPSec          float64 `json:"root_lp_sec"`
	CutSec             float64 `json:"cut_sec"`
	SearchSec          float64 `json:"search_sec"`
	TotalSec           float64 `json:"total_sec"`
	LPSec              float64 `json:"lp_sec"`
	HeuristicSec       float64 `json:"heuristic_sec"`
	PresolveRounds     int     `json:"presolve_rounds"`
	RowsRemoved        int     `json:"rows_removed"`
	ColsRemoved        int     `json:"cols_removed"`
	CutRounds          int     `json:"cut_rounds,omitempty"`
	CutsAdded          int     `json:"cuts_added,omitempty"`
	Nodes              int     `json:"nodes"`
	PeakOpenNodes      int     `json:"peak_open_nodes"`
	Workers            int     `json:"workers"`
	NodesPerWorker     []int   `json:"nodes_per_worker,omitempty"`
	SimplexIters       int     `json:"simplex_iters"`
	RootLPIters        int     `json:"root_lp_iters"`
	Refactorizations   int     `json:"lu_refactorizations"`
	DevexResets        int     `json:"devex_resets"`
	PricingScannedCols int     `json:"pricing_scanned_cols"`
	PricingTotalCols   int     `json:"pricing_total_cols"`
	PricingScanFrac    float64 `json:"pricing_scan_fraction"`
	PseudocostInits    int     `json:"pseudocost_inits"`
	HeuristicCalls     int     `json:"heuristic_calls"`
	HeuristicSuccesses int     `json:"heuristic_successes"`
	HeuristicRate      float64 `json:"heuristic_success_rate"`
	Incumbents         int     `json:"incumbents"`
	BoundImprovements  int     `json:"bound_improvements"`
	InjectedIncumbents int     `json:"injected_incumbents,omitempty"`
	Events             int     `json:"events"`
}

// MarshalJSON emits the stats with durations converted to seconds.
func (s Stats) MarshalJSON() ([]byte, error) {
	return json.Marshal(statsJSON{
		PresolveSec:        s.PresolveTime.Seconds(),
		RootLPSec:          s.RootLPTime.Seconds(),
		CutSec:             s.CutTime.Seconds(),
		SearchSec:          s.SearchTime.Seconds(),
		TotalSec:           s.TotalTime.Seconds(),
		LPSec:              s.LPTime.Seconds(),
		HeuristicSec:       s.HeuristicTime.Seconds(),
		PresolveRounds:     s.PresolveRounds,
		RowsRemoved:        s.RowsRemoved,
		ColsRemoved:        s.ColsRemoved,
		CutRounds:          s.CutRounds,
		CutsAdded:          s.CutsAdded,
		Nodes:              s.Nodes,
		PeakOpenNodes:      s.PeakOpenNodes,
		Workers:            s.Workers,
		NodesPerWorker:     s.NodesPerWorker,
		SimplexIters:       s.SimplexIters,
		RootLPIters:        s.RootLPIters,
		Refactorizations:   s.Refactorizations,
		DevexResets:        s.DevexResets,
		PricingScannedCols: s.PricingScannedCols,
		PricingTotalCols:   s.PricingTotalCols,
		PricingScanFrac:    s.PricingScanFraction(),
		PseudocostInits:    s.PseudocostInits,
		HeuristicCalls:     s.HeuristicCalls,
		HeuristicSuccesses: s.HeuristicSuccesses,
		HeuristicRate:      s.HeuristicSuccessRate(),
		Incumbents:         s.Incumbents,
		BoundImprovements:  s.BoundImprovements,
		InjectedIncumbents: s.InjectedIncumbents,
		Events:             s.Events,
	})
}
