package obs

import (
	"bytes"
	"log/slog"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSlogHandlerRendersEvents(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	sink := SlogHandler(logger, slog.LevelDebug, slog.String("req", "r1"))

	sink(Event{
		Kind: KindIncumbent, Seq: 3, Elapsed: 120 * time.Millisecond, Worker: 1,
		Incumbent: 42.5, Bound: 40, Gap: 0.0588, HasIncumbent: true, Nodes: 17,
	})
	line := buf.String()
	for _, want := range []string{"msg=incumbent", "req=r1", "seq=3", "worker=1", "incumbent=42.5", "bound=40", "nodes=17"} {
		if !strings.Contains(line, want) {
			t.Errorf("record %q missing %q", line, want)
		}
	}

	// Non-finite anytime state is omitted, not rendered as +Inf.
	buf.Reset()
	sink(Event{Kind: KindCacheMiss, Worker: -1, Incumbent: math.Inf(1), Bound: math.Inf(-1), Gap: math.Inf(1)})
	line = buf.String()
	if !strings.Contains(line, "msg=cache_miss") {
		t.Errorf("record %q missing kind", line)
	}
	for _, banned := range []string{"incumbent", "bound", "gap", "worker"} {
		if strings.Contains(line, banned) {
			t.Errorf("record %q should omit %q", line, banned)
		}
	}
}

func TestSlogHandlerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	sink := SlogHandler(logger, slog.LevelDebug)
	sink(Event{Kind: KindBound, Bound: 1, Gap: 0.5})
	if buf.Len() != 0 {
		t.Errorf("debug record emitted through info-level logger: %q", buf.String())
	}
}

func TestSlogAttrsKindPayload(t *testing.T) {
	attrs := SlogAttrs(Event{
		Kind: KindPresolve, Worker: -1, Rounds: 2, RowsRemoved: 5, ColsRemoved: 7,
		Bound: math.Inf(-1), Gap: math.Inf(1),
	})
	found := map[string]bool{}
	for _, a := range attrs {
		found[a.Key] = true
	}
	for _, want := range []string{"seq", "elapsed", "rounds", "rows_removed", "cols_removed"} {
		if !found[want] {
			t.Errorf("presolve attrs missing %q (got %v)", want, attrs)
		}
	}
}
