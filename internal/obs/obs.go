// Package obs is the solver observability layer: a typed event stream and
// per-phase statistics shared by every layer of the MILP stack (presolve,
// simplex, branch and bound, solver facade) and surfaced through the public
// joinorder API. It is a leaf package — the solver layers import it, never
// the reverse — so one Event type can travel from the simplex kernel to the
// CLI without adapter chains.
//
// Events describe what the solver is doing (an incumbent was found, a cut
// round ran, a worker started); Stats aggregate where the time went. Both
// are designed for machines first: Event and Stats marshal to JSON, so an
// anytime trajectory (the paper's Figure 2) can be reconstructed from the
// stream alone.
package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"
)

// EventKind classifies a solver event.
type EventKind int

const (
	// KindPresolve summarises the presolve phase: rounds swept, rows and
	// columns removed.
	KindPresolve EventKind = iota
	// KindLPRelaxation reports the root LP relaxation solve: its
	// objective (the first lower bound) and simplex iterations.
	KindLPRelaxation
	// KindIncumbent reports a new best integer solution.
	KindIncumbent
	// KindBound reports an improvement of the proven global lower bound.
	KindBound
	// KindCutRound reports one round of root cut generation.
	KindCutRound
	// KindHeuristic reports a primal heuristic attempt (a dive) and
	// whether it produced an improving incumbent.
	KindHeuristic
	// KindNodeBatch is a periodic snapshot of the branch-and-bound
	// search: nodes explored, open-node count, current incumbent/bound.
	KindNodeBatch
	// KindWorkerStart marks a branch-and-bound worker starting.
	KindWorkerStart
	// KindWorkerStop marks a worker exiting; per-worker node counts are
	// reported in Stats.NodesPerWorker.
	KindWorkerStop
	// KindCacheHit reports a plan served from the plan cache without a
	// solve; the event carries the cached objective and bound.
	KindCacheHit
	// KindCacheMiss reports a cache lookup that found no reusable entry
	// and is about to fall through to a solve.
	KindCacheMiss
	// KindCacheCoalesced reports a request that joined an identical
	// in-flight solve (singleflight) instead of starting its own.
	KindCacheCoalesced
	// KindWarmStart reports that a cached plan for a structurally
	// similar query was injected as the solver's MIP start.
	KindWarmStart
	// KindDegraded reports that a tight deadline was met with an
	// immediate heuristic plan while the full solve continues in the
	// background.
	KindDegraded
	// KindInjected reports that an incumbent published by a portfolio
	// peer was validated and installed mid-solve, tightening the primal
	// bound of the running branch-and-bound search. It always follows
	// the KindIncumbent event for the same installation.
	KindInjected
	// KindStrategyStart marks a portfolio member strategy starting; the
	// Strategy field names the member.
	KindStrategyStart
	// KindStrategyStop marks a portfolio member exiting (finished,
	// canceled, or failed); the event carries the member's final
	// anytime state.
	KindStrategyStop
	// KindWinner reports the portfolio race outcome: the Strategy field
	// names the member whose plan is returned.
	KindWinner
)

// String names the kind (stable identifiers, used in JSON output).
func (k EventKind) String() string {
	switch k {
	case KindPresolve:
		return "presolve"
	case KindLPRelaxation:
		return "lp_relaxation"
	case KindIncumbent:
		return "incumbent"
	case KindBound:
		return "bound"
	case KindCutRound:
		return "cut_round"
	case KindHeuristic:
		return "heuristic"
	case KindNodeBatch:
		return "node_batch"
	case KindWorkerStart:
		return "worker_start"
	case KindWorkerStop:
		return "worker_stop"
	case KindCacheHit:
		return "cache_hit"
	case KindCacheMiss:
		return "cache_miss"
	case KindCacheCoalesced:
		return "cache_coalesced"
	case KindWarmStart:
		return "warm_start"
	case KindDegraded:
		return "degraded"
	case KindInjected:
		return "injected"
	case KindStrategyStart:
		return "strategy_start"
	case KindStrategyStop:
		return "strategy_stop"
	case KindWinner:
		return "winner"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// MarshalJSON renders the kind as its string name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// eventKinds lists every kind, for parsing the string form back.
var eventKinds = []EventKind{
	KindPresolve, KindLPRelaxation, KindIncumbent, KindBound, KindCutRound,
	KindHeuristic, KindNodeBatch, KindWorkerStart, KindWorkerStop,
	KindCacheHit, KindCacheMiss, KindCacheCoalesced, KindWarmStart, KindDegraded,
	KindInjected, KindStrategyStart, KindStrategyStop, KindWinner,
}

// UnmarshalJSON parses the string form produced by MarshalJSON.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, cand := range eventKinds {
		if cand.String() == name {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("obs: unknown event kind %q", name)
}

// Event is one observation from the solver stack. Every event carries the
// anytime state at emission time (incumbent, bound, gap, node count) plus
// kind-specific payload fields; consumers that only care about the
// trajectory can treat all kinds uniformly.
//
// Events are serialised: callbacks never run concurrently, Seq increases
// by one per event, Incumbent never worsens and Bound never regresses
// across the stream of a single solve.
type Event struct {
	Kind    EventKind
	Seq     int           // 0-based emission index within the solve
	Elapsed time.Duration // since the solve started
	Worker  int           // emitting worker ID, -1 when not worker-bound

	// Strategy names the portfolio member the event originated from
	// (empty outside portfolio runs). On a merged portfolio stream the
	// monotonicity guarantees below hold per strategy, not globally:
	// each member's incumbents never worsen within its own sub-stream.
	Strategy string

	// Anytime state at emission time.
	Incumbent    float64 // best integer objective (+Inf while none)
	Bound        float64 // proven global lower bound (-Inf initially)
	Gap          float64 // relative gap (+Inf while no incumbent)
	HasIncumbent bool
	Nodes        int // branch-and-bound nodes explored so far
	OpenNodes    int // open (unexplored) nodes at emission time

	// Kind-specific payload (zero where not applicable).
	Objective   float64 // KindLPRelaxation: root LP objective
	Iters       int     // KindLPRelaxation, KindCutRound: simplex iterations
	Rounds      int     // KindPresolve: sweeps; KindCutRound: round index
	RowsRemoved int     // KindPresolve
	ColsRemoved int     // KindPresolve
	Cuts        int     // KindCutRound: cuts added this round
	Success     bool    // KindHeuristic: found an improving incumbent
}

// String renders the event as a one-line log entry.
func (e Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%8s] #%-4d %-13s", e.Elapsed.Truncate(time.Millisecond), e.Seq, e.Kind)
	if e.Strategy != "" {
		fmt.Fprintf(&sb, " strategy=%s", e.Strategy)
	}
	if e.Worker >= 0 {
		fmt.Fprintf(&sb, " worker=%d", e.Worker)
	}
	switch e.Kind {
	case KindPresolve:
		fmt.Fprintf(&sb, " rounds=%d rows-removed=%d cols-removed=%d", e.Rounds, e.RowsRemoved, e.ColsRemoved)
	case KindLPRelaxation:
		fmt.Fprintf(&sb, " obj=%.6g iters=%d", e.Objective, e.Iters)
	case KindCutRound:
		fmt.Fprintf(&sb, " round=%d cuts=%d", e.Rounds, e.Cuts)
	case KindHeuristic:
		fmt.Fprintf(&sb, " success=%v", e.Success)
	case KindNodeBatch:
		fmt.Fprintf(&sb, " open=%d", e.OpenNodes)
	}
	if e.HasIncumbent {
		fmt.Fprintf(&sb, " incumbent=%.6g", e.Incumbent)
	}
	if !math.IsInf(e.Bound, -1) {
		fmt.Fprintf(&sb, " bound=%.6g gap=%.4f", e.Bound, e.Gap)
	}
	if e.Nodes > 0 {
		fmt.Fprintf(&sb, " nodes=%d", e.Nodes)
	}
	return sb.String()
}

// eventJSON is the wire form of an Event; infinite objective values become
// null so the document stays valid JSON.
type eventJSON struct {
	Kind         EventKind `json:"kind"`
	Seq          int       `json:"seq"`
	ElapsedSec   float64   `json:"elapsed_sec"`
	Strategy     string    `json:"strategy,omitempty"`
	Worker       *int      `json:"worker,omitempty"`
	Incumbent    *float64  `json:"incumbent,omitempty"`
	Bound        *float64  `json:"bound,omitempty"`
	Gap          *float64  `json:"gap,omitempty"`
	HasIncumbent bool      `json:"has_incumbent"`
	Nodes        int       `json:"nodes,omitempty"`
	OpenNodes    int       `json:"open_nodes,omitempty"`
	Objective    *float64  `json:"objective,omitempty"`
	Iters        int       `json:"iters,omitempty"`
	Rounds       int       `json:"rounds,omitempty"`
	RowsRemoved  int       `json:"rows_removed,omitempty"`
	ColsRemoved  int       `json:"cols_removed,omitempty"`
	Cuts         int       `json:"cuts,omitempty"`
	Success      bool      `json:"success,omitempty"`
}

// finiteOrNil maps non-finite values to nil for JSON.
func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// MarshalJSON emits the event with non-finite numbers as null and the kind
// as a string.
func (e Event) MarshalJSON() ([]byte, error) {
	out := eventJSON{
		Kind:         e.Kind,
		Seq:          e.Seq,
		ElapsedSec:   e.Elapsed.Seconds(),
		Strategy:     e.Strategy,
		HasIncumbent: e.HasIncumbent,
		Nodes:        e.Nodes,
		OpenNodes:    e.OpenNodes,
		Iters:        e.Iters,
		Rounds:       e.Rounds,
		RowsRemoved:  e.RowsRemoved,
		ColsRemoved:  e.ColsRemoved,
		Cuts:         e.Cuts,
		Success:      e.Success,
	}
	if e.Worker >= 0 {
		w := e.Worker
		out.Worker = &w
	}
	if e.HasIncumbent {
		out.Incumbent = finiteOrNil(e.Incumbent)
	}
	out.Bound = finiteOrNil(e.Bound)
	out.Gap = finiteOrNil(e.Gap)
	if e.Kind == KindLPRelaxation {
		out.Objective = finiteOrNil(e.Objective)
	}
	return json.Marshal(out)
}

// infOr restores a JSON null to the given non-finite sentinel.
func infOr(v *float64, inf float64) float64 {
	if v == nil {
		return inf
	}
	return *v
}

// UnmarshalJSON parses the document produced by MarshalJSON, so network
// consumers of the event stream (the serving daemon's SSE endpoint) can
// decode events back into the native form. Null or absent numeric fields
// restore their non-finite sentinels.
func (e *Event) UnmarshalJSON(data []byte) error {
	var in eventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*e = Event{
		Kind:         in.Kind,
		Seq:          in.Seq,
		Elapsed:      time.Duration(in.ElapsedSec * float64(time.Second)),
		Strategy:     in.Strategy,
		Worker:       -1,
		Incumbent:    infOr(in.Incumbent, math.Inf(1)),
		Bound:        infOr(in.Bound, math.Inf(-1)),
		Gap:          infOr(in.Gap, math.Inf(1)),
		HasIncumbent: in.HasIncumbent,
		Nodes:        in.Nodes,
		OpenNodes:    in.OpenNodes,
		Objective:    infOr(in.Objective, math.Inf(1)),
		Iters:        in.Iters,
		Rounds:       in.Rounds,
		RowsRemoved:  in.RowsRemoved,
		ColsRemoved:  in.ColsRemoved,
		Cuts:         in.Cuts,
		Success:      in.Success,
	}
	if in.Worker != nil {
		e.Worker = *in.Worker
	}
	return nil
}

// RelGap is the relative gap between an incumbent objective and a proven
// lower bound, as reported in events and results: (inc − bound)/|inc|,
// clamped at zero, +Inf while no incumbent exists.
func RelGap(inc, bound float64) float64 {
	if math.IsInf(inc, 1) {
		return math.Inf(1)
	}
	d := inc - bound
	if d <= 0 {
		return 0
	}
	return d / math.Max(1e-9, math.Abs(inc))
}

// Emitter serialises events from concurrent solver layers: it assigns
// sequence numbers, stamps elapsed times against one solve-wide clock, and
// invokes the sink under a lock so callbacks never run concurrently. A nil
// *Emitter is valid and drops everything, so call sites need no guards.
type Emitter struct {
	mu    sync.Mutex
	start time.Time
	seq   int
	sink  func(Event)
}

// NewEmitter builds an emitter over the sink; a nil sink yields a nil
// emitter (all Emit calls no-ops).
func NewEmitter(start time.Time, sink func(Event)) *Emitter {
	if sink == nil {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	return &Emitter{start: start, sink: sink}
}

// Emit stamps and forwards one event. Safe for concurrent use; events are
// delivered one at a time in emission order.
func (e *Emitter) Emit(ev Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ev.Seq = e.seq
	e.seq++
	if ev.Elapsed == 0 {
		ev.Elapsed = time.Since(e.start)
	}
	e.sink(ev)
}

// Count returns the number of events emitted so far.
func (e *Emitter) Count() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}
