package stats

import (
	"milpjoin/internal/cost"
	"milpjoin/internal/exec"
	"milpjoin/internal/qopt"
)

// CorrectionsFromTrace distills one execution trace into selectivity
// corrections: every scan contributes its measured post-filter fraction,
// every join its measured-vs-estimated output ratio distributed over the
// predicates first applied there. The resulting corrections apply to q —
// the same query (original predicate index space) the trace was executed
// against.
func CorrectionsFromTrace(q *qopt.Query, tr *exec.Trace) cost.SelectivityCorrections {
	c := cost.NewSelectivityCorrections()
	if tr == nil {
		return c
	}
	for _, sc := range tr.Scans {
		c.ObserveScan(sc.AppliedPreds, sc.InRows, sc.OutRows)
	}
	for _, jt := range tr.Joins {
		if jt.LeftRows <= 0 || jt.RightRows <= 0 {
			continue // an empty operand carries no selectivity signal
		}
		// Attribute only the join's local error: expected output from the
		// measured operand sizes and the current (possibly already
		// corrected) selectivities, so upstream misestimates — already
		// corrected at their own joins — don't leak into this one.
		expected := float64(jt.LeftRows) * float64(jt.RightRows)
		for _, pi := range jt.AppliedPreds {
			sel := q.Predicates[pi].Sel
			if s, ok := c.PredSel[pi]; ok {
				sel = s
			}
			expected *= sel
		}
		c.ObserveJoin(q, jt.AppliedPreds, expected, jt.Measured)
	}
	return c
}
