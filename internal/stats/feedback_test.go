package stats

import (
	"testing"

	"milpjoin/internal/exec"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
)

// TestCorrectionsFromTraceReduceQError runs a plan with a deliberately
// corrupted estimate query, distills the trace into corrections, and
// checks that re-running with the corrected estimates shrinks the worst
// q-error — the full ANALYZE → execute → feedback → better-estimates loop.
func TestCorrectionsFromTraceReduceQError(t *testing.T) {
	truth := &qopt.Query{
		Tables: []qopt.Table{{Card: 100}, {Card: 100}, {Card: 50}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.1},
			{Tables: []int{1, 2}, Sel: 0.02},
			{Tables: []int{2}, Sel: 0.25},
		},
	}
	est := &qopt.Query{
		Tables:     append([]qopt.Table(nil), truth.Tables...),
		Predicates: append([]qopt.Predicate(nil), truth.Predicates...),
	}
	est.Predicates[0].Sel = 0.0001 // three orders of magnitude off
	est.Predicates[2].Sel = 1.0    // filter believed to keep everything

	db, err := exec.Synthesize(truth, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree := (&plan.Plan{Order: []int{0, 1, 2}}).LeftDeep()

	run, err := db.Stream(tree, exec.StreamOptions{EstQuery: est})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.Collect(); err != nil {
		t.Fatal(err)
	}
	before := run.Trace.MaxQError()
	if before < 100 {
		t.Fatalf("corrupted estimates produced max q-error %g, expected ≫ 100", before)
	}

	corr := CorrectionsFromTrace(est, run.Trace)
	if corr.Len() == 0 {
		t.Fatal("trace produced no corrections")
	}
	corrected := corr.Apply(est)

	run2, err := db.Stream(tree, exec.StreamOptions{EstQuery: corrected})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run2.Collect(); err != nil {
		t.Fatal(err)
	}
	after := run2.Trace.MaxQError()
	if after > before/10 {
		t.Errorf("corrections reduced max q-error only from %g to %g", before, after)
	}
	if after > 3 {
		t.Errorf("corrected estimates still off by %g on identical data", after)
	}
}

// TestCorrectionsFromTraceNil covers the degenerate inputs.
func TestCorrectionsFromTraceNil(t *testing.T) {
	q := &qopt.Query{
		Tables:     []qopt.Table{{Card: 10}, {Card: 10}},
		Predicates: []qopt.Predicate{{Tables: []int{0, 1}, Sel: 0.5}},
	}
	if got := CorrectionsFromTrace(q, nil); got.Len() != 0 {
		t.Error("nil trace produced corrections")
	}
}

// TestEstimateQueryHandlesUnaryPredicates checks the ANALYZE path on a
// query with a scan filter: the re-estimated unary selectivity must come
// out near the generator's ground truth.
func TestEstimateQueryHandlesUnaryPredicates(t *testing.T) {
	truth := &qopt.Query{
		Tables: []qopt.Table{{Card: 400}, {Card: 100}},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.05},
			{Tables: []int{0}, Sel: 0.25},
		},
	}
	db, err := exec.Synthesize(truth, 9)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateQuery(db, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := est.Predicates[1].Sel
	if got < 0.1 || got > 0.5 {
		t.Errorf("re-estimated unary selectivity %g, ground truth 0.25", got)
	}
}
