package stats

import (
	"context"
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/exec"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/workload"
)

func TestBuildColumnBasics(t *testing.T) {
	c := BuildColumn([]int64{5, 1, 3, 3, 9, 1}, 3)
	if c.Count != 6 || c.Distinct != 4 || c.Min != 1 || c.Max != 9 {
		t.Fatalf("summary = %+v", c)
	}
	if math.Abs(c.EqSelectivity()-0.25) > 1e-12 {
		t.Errorf("EqSelectivity = %g", c.EqSelectivity())
	}
	if c.Hist == nil || len(c.Hist.Bounds) != 3 {
		t.Fatalf("histogram = %+v", c.Hist)
	}
}

func TestBuildColumnEmpty(t *testing.T) {
	c := BuildColumn(nil, 4)
	if c.Count != 0 || c.Distinct != 0 {
		t.Errorf("empty summary = %+v", c)
	}
	if c.EqSelectivity() != 1 {
		t.Errorf("empty EqSelectivity = %g", c.EqSelectivity())
	}
	if c.LessSelectivity(5) != 0 {
		t.Errorf("empty LessSelectivity = %g", c.LessSelectivity(5))
	}
}

func TestLessSelectivityBoundaries(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	c := BuildColumn(vals, 10)
	if got := c.LessSelectivity(0); got != 0 {
		t.Errorf("sel(< min) = %g", got)
	}
	if got := c.LessSelectivity(1000); got != 1 {
		t.Errorf("sel(> max) = %g", got)
	}
	// v=500 over uniform 0..999 should estimate near 0.5.
	if got := c.LessSelectivity(500); math.Abs(got-0.5) > 0.11 {
		t.Errorf("sel(<500) = %g, want ≈0.5", got)
	}
	// Without a histogram, interpolation still works.
	c.Hist = nil
	if got := c.LessSelectivity(500); math.Abs(got-0.5) > 0.05 {
		t.Errorf("interpolated sel(<500) = %g", got)
	}
}

func TestHistogramEquiDepth(t *testing.T) {
	// Heavily skewed data: equi-depth bounds concentrate where the mass is.
	vals := make([]int64, 0, 1000)
	for i := 0; i < 900; i++ {
		vals = append(vals, 1)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, int64(1000+i))
	}
	c := BuildColumn(vals, 10)
	ones := 0
	for _, b := range c.Hist.Bounds {
		if b == 1 {
			ones++
		}
	}
	if ones < 8 {
		t.Errorf("equi-depth histogram has %d buckets at the mode, want ≥ 8", ones)
	}
	// sel(< 1000) should be near 0.9.
	if got := c.LessSelectivity(1000); math.Abs(got-0.9) > 0.11 {
		t.Errorf("sel(<1000) = %g, want ≈0.9", got)
	}
}

func TestAnalyzeAndCatalog(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 3, workload.Config{
		MinLogCard: 1.5, MaxLogCard: 2, MinSel: 0.05, MaxSel: 0.2,
	})
	db, err := exec.Synthesize(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := CatalogFromDatabase(db, 8)
	for ti := range q.Tables {
		ts, ok := cat.Tables[q.TableName(ti)]
		if !ok {
			t.Fatalf("table %s missing from catalog", q.TableName(ti))
		}
		if ts.Card != q.Tables[ti].Card {
			t.Errorf("table %s card %g, want %g", q.TableName(ti), ts.Card, q.Tables[ti].Card)
		}
		if len(ts.Columns) == 0 {
			t.Errorf("table %s has no column stats", q.TableName(ti))
		}
	}
}

// TestEstimatedSelectivitiesTrackTruth: selectivities re-estimated from
// synthesized data must approximate the generator's ground truth (the key
// ANALYZE property).
func TestEstimatedSelectivitiesTrackTruth(t *testing.T) {
	q := workload.Generate(workload.Star, 5, 7, workload.Config{
		MinLogCard: 2.3, MaxLogCard: 2.7, // 200 … 500 rows: enough samples
		MinSel: 0.02, MaxSel: 0.2,
	})
	db, err := exec.Synthesize(q, 11)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateQuery(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range q.Predicates {
		got := est.Predicates[pi].Sel
		want := p.Sel
		if got < want/3 || got > want*3 {
			t.Errorf("predicate %d: estimated sel %g, true %g (outside factor 3)", pi, got, want)
		}
	}
}

// TestOptimizeOnEstimatedStats: the estimated query optimizes to a plan
// that is also good under the true statistics — the full ANALYZE →
// optimize loop.
func TestOptimizeOnEstimatedStats(t *testing.T) {
	q := workload.Generate(workload.Chain, 5, 9, workload.Config{
		MinLogCard: 2, MaxLogCard: 2.5, MinSel: 0.02, MaxSel: 0.15,
	})
	db, err := exec.Synthesize(q, 13)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateQuery(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	estPlan, _, err := dp.OptimizeLeftDeep(context.Background(), est, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Price the estimated-stats plan under TRUE statistics; it should be
	// within a small factor of the true optimum.
	_, trueOpt, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	estUnderTrue, err := plan.Cost(q, estPlan, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if estUnderTrue > trueOpt*10 {
		t.Errorf("estimated-stats plan costs %g under truth, optimum %g", estUnderTrue, trueOpt)
	}
}

func TestEstimateQueryRejectsNary(t *testing.T) {
	q := workload.Generate(workload.Chain, 3, 1, workload.Config{})
	db, err := exec.Synthesize(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	db.Query = &qopt.Query{
		Tables:     q.Tables,
		Predicates: append(q.Predicates, qopt.Predicate{Tables: []int{0, 1, 2}, Sel: 0.5}),
	}
	if _, err := EstimateQuery(db, 4); err == nil {
		t.Error("n-ary predicate accepted")
	}
}
