// Package stats collects optimizer statistics from data: exact distinct
// counts and equi-depth histograms per column, plus a bridge that builds a
// sql.Catalog from an exec.Database — closing the loop from synthesized
// data back to the selectivity estimates the join-ordering encoder
// optimizes against (the ANALYZE step of a real system).
package stats

import (
	"fmt"
	"sort"

	"milpjoin/internal/exec"
	"milpjoin/internal/qopt"
	"milpjoin/internal/sql"
)

// Histogram is an equi-depth histogram: Bounds[i] is the inclusive upper
// bound of bucket i; each bucket holds ≈ Count/len(Bounds) values.
type Histogram struct {
	Bounds []int64
	Depth  float64 // values per bucket (the last bucket may be lighter)
}

// ColumnSummary is the per-column statistics record.
type ColumnSummary struct {
	Count    int
	Distinct int
	Min, Max int64
	Hist     *Histogram
}

// BuildColumn summarises a column of values.
func BuildColumn(values []int64, buckets int) ColumnSummary {
	s := ColumnSummary{Count: len(values)}
	if len(values) == 0 {
		return s
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]

	distinct := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			distinct++
		}
	}
	s.Distinct = distinct

	if buckets > 0 {
		if buckets > len(sorted) {
			buckets = len(sorted)
		}
		h := &Histogram{Depth: float64(len(sorted)) / float64(buckets)}
		for b := 1; b <= buckets; b++ {
			idx := b*len(sorted)/buckets - 1
			h.Bounds = append(h.Bounds, sorted[idx])
		}
		s.Hist = h
	}
	return s
}

// EqSelectivity estimates sel(col = const) under uniformity: 1/distinct.
func (c ColumnSummary) EqSelectivity() float64 {
	if c.Distinct <= 0 {
		return 1
	}
	return 1 / float64(c.Distinct)
}

// LessSelectivity estimates sel(col < v) from the equi-depth histogram
// (falling back to the min/max linear interpolation without one).
func (c ColumnSummary) LessSelectivity(v int64) float64 {
	if c.Count == 0 {
		return 0
	}
	if v <= c.Min {
		return 0
	}
	if v > c.Max {
		return 1
	}
	if c.Hist == nil || len(c.Hist.Bounds) == 0 {
		// Linear interpolation over [Min, Max].
		return float64(v-c.Min) / float64(c.Max-c.Min+1)
	}
	// Count full buckets below v; interpolate within the straddling one.
	full := sort.Search(len(c.Hist.Bounds), func(i int) bool { return c.Hist.Bounds[i] >= v })
	frac := float64(full) / float64(len(c.Hist.Bounds))
	if frac > 1 {
		frac = 1
	}
	return frac
}

// TableSummary aggregates a table's columns.
type TableSummary struct {
	Rows    int
	Columns map[string]ColumnSummary
}

// Analyze summarises every column of a relation.
func Analyze(rel *exec.Relation, buckets int) TableSummary {
	out := TableSummary{Rows: rel.NumRows(), Columns: map[string]ColumnSummary{}}
	for ci, name := range rel.Cols {
		vals := make([]int64, rel.NumRows())
		for ri, row := range rel.Rows {
			vals[ri] = row[ci]
		}
		out.Columns[name] = BuildColumn(vals, buckets)
	}
	return out
}

// CatalogFromDatabase runs Analyze over every relation and assembles a
// sql.Catalog whose estimates are derived from the data itself rather
// than from the generator's parameters.
func CatalogFromDatabase(db *exec.Database, buckets int) *sql.Catalog {
	cat := sql.NewCatalog()
	for ti, rel := range db.Relations {
		summary := Analyze(rel, buckets)
		cols := map[string]sql.ColumnStats{}
		for name, cs := range summary.Columns {
			cols[name] = sql.ColumnStats{Distinct: float64(cs.Distinct), Bytes: 8}
		}
		cat.AddTable(db.Query.TableName(ti), sql.TableStats{
			Card:    float64(summary.Rows),
			Columns: cols,
		})
	}
	return cat
}

// EstimateQuery rebuilds a qopt.Query from data-derived statistics: table
// cardinalities from row counts and binary-predicate selectivities as
// 1/max(V(a), V(b)) over the measured distinct counts. The structure
// (which tables each predicate connects) is taken from the original
// query; only the numbers are re-estimated. This is what an optimizer
// sees after ANALYZE instead of the generator's ground truth.
func EstimateQuery(db *exec.Database, buckets int) (*qopt.Query, error) {
	orig := db.Query
	summaries := make([]TableSummary, len(db.Relations))
	for ti, rel := range db.Relations {
		summaries[ti] = Analyze(rel, buckets)
	}
	out := &qopt.Query{}
	for ti := range orig.Tables {
		card := float64(summaries[ti].Rows)
		if card < 1 {
			card = 1
		}
		out.Tables = append(out.Tables, qopt.Table{
			Name: orig.TableName(ti),
			Card: card,
		})
	}
	for pi, p := range orig.Predicates {
		if len(p.Tables) == 1 {
			// Unary predicate: the synthesized filter column is uniform
			// over its domain, so 1/distinct estimates the kept fraction.
			t := p.Tables[0]
			col := fmt.Sprintf("T%d.p%d", t, pi)
			out.Predicates = append(out.Predicates, qopt.Predicate{
				Name:   p.Name,
				Tables: []int{t},
				Sel:    summaries[t].Columns[col].EqSelectivity(),
			})
			continue
		}
		if !p.IsBinary() {
			return nil, fmt.Errorf("stats: predicate %d spans %d tables", pi, len(p.Tables))
		}
		a, b := p.Tables[0], p.Tables[1]
		colA := fmt.Sprintf("T%d.p%d", a, pi)
		colB := fmt.Sprintf("T%d.p%d", b, pi)
		va := float64(summaries[a].Columns[colA].Distinct)
		vb := float64(summaries[b].Columns[colB].Distinct)
		v := va
		if vb > v {
			v = vb
		}
		sel := 1.0
		if v > 0 {
			sel = 1 / v
		}
		out.Predicates = append(out.Predicates, qopt.Predicate{
			Name:   p.Name,
			Tables: []int{a, b},
			Sel:    sel,
		})
	}
	return out, out.Validate()
}
