package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestTripletCompressSumsDuplicates(t *testing.T) {
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(2, 1, 5)
	tr.Add(1, 1, -5)
	tr.Add(1, 1, 5) // cancels to zero, must be dropped
	m := tr.Compress()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(2, 1); got != 5 {
		t.Errorf("At(2,1) = %g, want 5", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0 after cancellation", got)
	}
	if m.Nnz() != 2 {
		t.Errorf("Nnz = %d, want 2", m.Nnz())
	}
}

func TestTripletOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewTriplet(2, 2).Add(2, 0, 1)
}

func TestCSCColumnsSorted(t *testing.T) {
	tr := NewTriplet(4, 2)
	tr.Add(3, 0, 1)
	tr.Add(0, 0, 2)
	tr.Add(2, 0, 3)
	m := tr.Compress()
	rows, vals := m.Col(0)
	wantRows := []int{0, 2, 3}
	wantVals := []float64{2, 3, 1}
	for k := range wantRows {
		if rows[k] != wantRows[k] || vals[k] != wantVals[k] {
			t.Fatalf("col 0 entry %d = (%d,%g), want (%d,%g)", k, rows[k], vals[k], wantRows[k], wantVals[k])
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSC(rng, rows, cols, 0.4)
		x := randomDense(rng, cols)
		got := m.MulVec(x)
		want := denseMulVec(m.Dense(), x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecTAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSC(rng, rows, cols, 0.4)
		x := randomDense(rng, rows)
		got := m.MulVecT(x)
		d := m.Dense()
		for j := 0; j < cols; j++ {
			var want float64
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(got[j]-want) > 1e-12 {
				t.Fatalf("trial %d: MulVecT[%d] = %g, want %g", trial, j, got[j], want)
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		m := randomCSC(rng, 2+rng.Intn(10), 2+rng.Intn(10), 0.3)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			t.Fatalf("transpose round trip changed shape")
		}
		for j := 0; j < m.Cols; j++ {
			for i := 0; i < m.Rows; i++ {
				if m.At(i, j) != tt.At(i, j) {
					t.Fatalf("entry (%d,%d) changed: %g vs %g", i, j, m.At(i, j), tt.At(i, j))
				}
			}
		}
	}
}

func TestColDot(t *testing.T) {
	tr := NewTriplet(3, 2)
	tr.Add(0, 0, 2)
	tr.Add(2, 0, 4)
	tr.Add(1, 1, 3)
	m := tr.Compress()
	x := []float64{1, 10, 100}
	if got := m.ColDot(0, x); got != 402 {
		t.Errorf("ColDot(0) = %g, want 402", got)
	}
	if got := m.ColDot(1, x); got != 30 {
		t.Errorf("ColDot(1) = %g, want 30", got)
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(5)
	v.Append(1, 2)
	v.Append(4, -3)
	v.Append(1, 1) // duplicate accumulates in Dense
	d := v.Dense()
	if d[1] != 3 || d[4] != -3 {
		t.Fatalf("Dense = %v", d)
	}
	if v.Nnz() != 3 {
		t.Errorf("Nnz = %d, want 3", v.Nnz())
	}
	v.Reset()
	if v.Nnz() != 0 {
		t.Errorf("after Reset Nnz = %d", v.Nnz())
	}
}

func TestVectorFromDenseAndDot(t *testing.T) {
	d := []float64{0, 1.5, 0, -2, 1e-16}
	v := FromDense(d, 1e-12)
	if v.Nnz() != 2 {
		t.Fatalf("Nnz = %d, want 2 (tiny entry dropped)", v.Nnz())
	}
	x := []float64{1, 2, 3, 4, 5}
	if got := v.Dot(x); got != 1.5*2-2*4 {
		t.Errorf("Dot = %g, want %g", got, 1.5*2-2*4)
	}
}

func TestVectorSortAndClone(t *testing.T) {
	v := NewVector(10)
	v.Append(7, 1)
	v.Append(2, 2)
	v.Append(5, 3)
	c := v.Clone()
	v.Sort()
	if v.Ind[0] != 2 || v.Ind[1] != 5 || v.Ind[2] != 7 {
		t.Fatalf("Sort order wrong: %v", v.Ind)
	}
	if c.Ind[0] != 7 {
		t.Fatalf("Clone was mutated by Sort on original")
	}
}

func TestVectorAddScaledTo(t *testing.T) {
	v := NewVector(4)
	v.Append(0, 1)
	v.Append(3, 2)
	d := []float64{10, 10, 10, 10}
	v.AddScaledTo(d, 2)
	want := []float64{12, 10, 10, 14}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("AddScaledTo = %v, want %v", d, want)
		}
	}
}

func TestWorkspaceGenerations(t *testing.T) {
	w := NewWorkspace(4)
	w.NextGen()
	w.SetMark(2)
	if !w.Marked(2) || w.Marked(1) {
		t.Fatal("mark semantics broken")
	}
	w.NextGen()
	if w.Marked(2) {
		t.Fatal("NextGen did not clear marks")
	}
	w.Ensure(8)
	if len(w.Val) != 8 || len(w.Mark) != 8 {
		t.Fatalf("Ensure did not grow workspace: %d %d", len(w.Val), len(w.Mark))
	}
}

// --- helpers ---

func randomCSC(rng *rand.Rand, rows, cols int, density float64) *CSC {
	tr := NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return tr.Compress()
}

func randomDense(rng *rand.Rand, n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return d
}

func denseMulVec(a [][]float64, x []float64) []float64 {
	y := make([]float64, len(a))
	for i := range a {
		for j := range a[i] {
			y[i] += a[i][j] * x[j]
		}
	}
	return y
}
