package sparse

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports that the matrix handed to Factorize is (numerically)
// singular.
var ErrSingular = errors.New("sparse: matrix is singular")

// LU is a sparse LU factorization P·A·Q = L·U produced by Factorize.
//
// L is unit lower triangular and U upper triangular, both stored by columns
// in pivot coordinates. P is the row permutation chosen by partial
// pivoting; Q is the column order chosen up front for sparsity.
type LU struct {
	N int

	// L: strictly lower triangular part, unit diagonal implicit.
	Lp []int
	Li []int
	Lx []float64

	// U: strictly upper triangular part plus a separate diagonal.
	Up    []int
	Ui    []int
	Ux    []float64
	Udiag []float64

	// P and Q as permutation vectors: P[k] is the original row at pivot
	// position k, Q[k] the original column at position k. Pinv and Qinv
	// are the inverse maps.
	P, Pinv []int
	Q, Qinv []int
}

// FactorOptions control pivoting behaviour.
type FactorOptions struct {
	// PivotTol is the threshold partial pivoting tolerance in (0, 1].
	// 1.0 gives classical partial pivoting (most stable); smaller values
	// trade stability for sparsity. Zero means 0.1, the customary
	// default for simplex basis factorization.
	PivotTol float64
	// DropTol drops entries with absolute value below it during the
	// factorization. Zero keeps everything above 1e-14.
	DropTol float64
	// ColOrder optionally fixes the column order. When nil, columns are
	// ordered by ascending nonzero count, a cheap heuristic that exposes
	// the near-triangular structure of typical simplex bases.
	ColOrder []int
}

// FactorScratch holds the working storage of FactorizeInto so that repeated
// factorizations (simplex basis refactorization every few dozen pivots)
// reuse one arena instead of reallocating. The zero value is ready to use;
// buffers grow to the largest problem seen and are then reused. A scratch
// must not be shared between concurrent factorizations.
type FactorScratch struct {
	x        []float64 // dense accumulator (kept all-zero between calls)
	mark     []bool    // visited flags (kept all-false between calls)
	pattern  []int
	dfsStack []int
	posStack []int
	rowCount []int
	order    []int
	buckets  []int
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// Factorize computes a sparse LU factorization of the square matrix a into
// a freshly allocated LU.
func Factorize(a *CSC, opts FactorOptions) (*LU, error) {
	lu := &LU{}
	if err := FactorizeInto(lu, a, opts, &FactorScratch{}); err != nil {
		return nil, err
	}
	return lu, nil
}

// FactorizeInto computes a sparse LU factorization of the square matrix a,
// reusing the storage already held by lu and the working arrays in ws. On
// error the contents of lu are unspecified and must not be solved against
// until a subsequent FactorizeInto succeeds.
func FactorizeInto(lu *LU, a *CSC, opts FactorOptions, ws *FactorScratch) error {
	n := a.Rows
	if a.Cols != n {
		return fmt.Errorf("sparse: cannot factorize %dx%d matrix", a.Rows, a.Cols)
	}
	pivTol := opts.PivotTol
	if pivTol <= 0 || pivTol > 1 {
		pivTol = 0.1
	}
	dropTol := opts.DropTol
	if dropTol <= 0 {
		dropTol = 1e-14
	}

	order := opts.ColOrder
	if order == nil {
		ws.order = growInts(ws.order, n)
		order = orderByColumnNnz(a, ws)
	} else if len(order) != n {
		return fmt.Errorf("sparse: column order has length %d, want %d", len(order), n)
	}

	lu.N = n
	lu.Lp = append(lu.Lp[:0], 0)
	lu.Li = lu.Li[:0]
	lu.Lx = lu.Lx[:0]
	lu.Up = append(lu.Up[:0], 0)
	lu.Ui = lu.Ui[:0]
	lu.Ux = lu.Ux[:0]
	lu.Udiag = growFloats(lu.Udiag, n)
	lu.P = growInts(lu.P, n)
	lu.Pinv = growInts(lu.Pinv, n)
	lu.Q = growInts(lu.Q, n)
	lu.Qinv = growInts(lu.Qinv, n)
	for i := range lu.Pinv {
		lu.Pinv[i] = -1
	}

	// The accumulator and visited flags are maintained all-zero/all-false
	// between calls (every path below clears what it sets), so growth is
	// the only initialisation needed.
	x := growFloats(ws.x, n)
	mark := growBools(ws.mark, n)
	ws.x, ws.mark = x, mark
	pattern := ws.pattern[:0]
	dfsStack := ws.dfsStack[:0]
	posStack := ws.posStack[:0]

	// Row nonzero counts of A, used as a Markowitz-style sparsity
	// tie-break among numerically acceptable pivot candidates.
	rowCount := growInts(ws.rowCount, n)
	ws.rowCount = rowCount
	for i := range rowCount {
		rowCount[i] = 0
	}
	for _, i := range a.RowInd {
		rowCount[i]++
	}

	for k := 0; k < n; k++ {
		cj := order[k]
		lu.Q[k] = cj
		lu.Qinv[cj] = k

		// Pattern: reach of column cj's nonzeros in the graph of L,
		// collected in postorder (so reverse order is topological).
		pattern = pattern[:0]
		bi, bv := a.Col(cj)
		for _, root := range bi {
			if mark[root] {
				continue
			}
			// Iterative DFS with explicit position stack.
			dfsStack = append(dfsStack[:0], root)
			posStack = append(posStack[:0], 0)
			mark[root] = true
			for len(dfsStack) > 0 {
				node := dfsStack[len(dfsStack)-1]
				pos := posStack[len(posStack)-1]
				expanded := false
				if piv := lu.Pinv[node]; piv >= 0 {
					lo, hi := lu.Lp[piv], lu.Lp[piv+1]
					for p := lo + pos; p < hi; p++ {
						child := lu.Li[p]
						posStack[len(posStack)-1] = p - lo + 1
						if !mark[child] {
							mark[child] = true
							dfsStack = append(dfsStack, child)
							posStack = append(posStack, 0)
							expanded = true
							break
						}
					}
				}
				if !expanded {
					pattern = append(pattern, node)
					dfsStack = dfsStack[:len(dfsStack)-1]
					posStack = posStack[:len(posStack)-1]
				}
			}
		}

		// Numeric sparse triangular solve x = L \ B(:, cj) over the
		// pattern, in topological (reverse postorder) order.
		for p, i := range bi {
			x[i] = bv[p]
		}
		for t := len(pattern) - 1; t >= 0; t-- {
			i := pattern[t]
			piv := lu.Pinv[i]
			if piv < 0 {
				continue
			}
			xi := x[i]
			if xi == 0 {
				continue
			}
			for p := lu.Lp[piv]; p < lu.Lp[piv+1]; p++ {
				x[lu.Li[p]] -= lu.Lx[p] * xi
			}
		}

		// Pivot selection among unpivoted pattern rows: threshold
		// partial pivoting. Any candidate within pivTol of the
		// largest magnitude is numerically acceptable; among those we
		// pick the row with the fewest nonzeros in A (Markowitz-style
		// tie-break) to limit fill-in.
		var maxAbs float64
		for _, i := range pattern {
			if lu.Pinv[i] >= 0 {
				continue
			}
			if abs := math.Abs(x[i]); abs > maxAbs {
				maxAbs = abs
			}
		}
		if maxAbs < dropTol {
			for _, i := range pattern {
				x[i] = 0
				mark[i] = false
			}
			ws.pattern, ws.dfsStack, ws.posStack = pattern, dfsStack, posStack
			return fmt.Errorf("%w: no pivot in column %d (step %d)", ErrSingular, cj, k)
		}
		pivRow := -1
		bestCount := math.MaxInt
		for _, i := range pattern {
			if lu.Pinv[i] >= 0 {
				continue
			}
			if math.Abs(x[i]) >= pivTol*maxAbs && rowCount[i] < bestCount {
				bestCount = rowCount[i]
				pivRow = i
			}
		}

		pivVal := x[pivRow]
		lu.P[k] = pivRow
		lu.Pinv[pivRow] = k
		lu.Udiag[k] = pivVal

		// Emit U column k (pivoted rows) and L column k (unpivoted).
		for _, i := range pattern {
			v := x[i]
			x[i] = 0
			mark[i] = false
			if i == pivRow {
				continue
			}
			if piv := lu.Pinv[i]; piv >= 0 && piv < k {
				if math.Abs(v) > dropTol {
					lu.Ui = append(lu.Ui, piv)
					lu.Ux = append(lu.Ux, v)
				}
			} else {
				l := v / pivVal
				if math.Abs(l) > dropTol {
					lu.Li = append(lu.Li, i) // original row index for now
					lu.Lx = append(lu.Lx, l)
				}
			}
		}
		lu.Lp = append(lu.Lp, len(lu.Li))
		lu.Up = append(lu.Up, len(lu.Ui))
	}

	// Remap L's row indices from original rows to pivot positions.
	for p, i := range lu.Li {
		lu.Li[p] = lu.Pinv[i]
	}
	ws.pattern, ws.dfsStack, ws.posStack = pattern, dfsStack, posStack
	return nil
}

// orderByColumnNnz returns column indices sorted by ascending nonzero count
// (stable on ties by index), using ws.order and ws.buckets as storage.
func orderByColumnNnz(a *CSC, ws *FactorScratch) []int {
	n := a.Cols
	order := ws.order[:n]
	for j := range order {
		order[j] = j
	}
	// Counting sort by nnz keeps this O(n + nnz).
	maxNnz := 0
	for j := 0; j < n; j++ {
		if c := a.ColNnz(j); c > maxNnz {
			maxNnz = c
		}
	}
	buckets := growInts(ws.buckets, maxNnz+2)
	ws.buckets = buckets
	for i := range buckets {
		buckets[i] = 0
	}
	for j := 0; j < n; j++ {
		buckets[a.ColNnz(j)+1]++
	}
	for c := 1; c < len(buckets); c++ {
		buckets[c] += buckets[c-1]
	}
	for j := 0; j < n; j++ {
		c := a.ColNnz(j)
		order[buckets[c]] = j
		buckets[c]++
	}
	return order
}

// SolveInPlace solves A·x = b in pivot-free (original) coordinates. b is
// overwritten with x. scratch must have length N and is clobbered.
func (lu *LU) SolveInPlace(b, scratch []float64) {
	n := lu.N
	// y = P b
	for k := 0; k < n; k++ {
		scratch[k] = b[lu.P[k]]
	}
	lu.lowerSolve(scratch)
	lu.upperSolve(scratch)
	// x = Q z
	for k := 0; k < n; k++ {
		b[lu.Q[k]] = scratch[k]
	}
}

// SolveTransposeInPlace solves Aᵀ·y = c in original coordinates. c is
// overwritten with y. scratch must have length N and is clobbered.
func (lu *LU) SolveTransposeInPlace(c, scratch []float64) {
	n := lu.N
	// c' = Qᵀ c
	for k := 0; k < n; k++ {
		scratch[k] = c[lu.Q[k]]
	}
	lu.upperTransposeSolve(scratch)
	lu.lowerTransposeSolve(scratch)
	// y = Pᵀ v
	for k := 0; k < n; k++ {
		c[lu.P[k]] = scratch[k]
	}
}

// lowerSolve solves L·y = y in place (pivot coordinates, unit diagonal).
func (lu *LU) lowerSolve(y []float64) {
	for k := 0; k < lu.N; k++ {
		yk := y[k]
		if yk == 0 {
			continue
		}
		for p := lu.Lp[k]; p < lu.Lp[k+1]; p++ {
			y[lu.Li[p]] -= lu.Lx[p] * yk
		}
	}
}

// upperSolve solves U·z = z in place (pivot coordinates).
func (lu *LU) upperSolve(z []float64) {
	for k := lu.N - 1; k >= 0; k-- {
		zk := z[k] / lu.Udiag[k]
		z[k] = zk
		if zk == 0 {
			continue
		}
		for p := lu.Up[k]; p < lu.Up[k+1]; p++ {
			z[lu.Ui[p]] -= lu.Ux[p] * zk
		}
	}
}

// upperTransposeSolve solves Uᵀ·w = w in place.
func (lu *LU) upperTransposeSolve(w []float64) {
	for k := 0; k < lu.N; k++ {
		s := w[k]
		for p := lu.Up[k]; p < lu.Up[k+1]; p++ {
			s -= lu.Ux[p] * w[lu.Ui[p]]
		}
		w[k] = s / lu.Udiag[k]
	}
}

// lowerTransposeSolve solves Lᵀ·v = v in place (unit diagonal).
func (lu *LU) lowerTransposeSolve(v []float64) {
	for k := lu.N - 1; k >= 0; k-- {
		s := v[k]
		for p := lu.Lp[k]; p < lu.Lp[k+1]; p++ {
			s -= lu.Lx[p] * v[lu.Li[p]]
		}
		v[k] = s
	}
}

// Nnz returns the total number of stored entries in L and U (including the
// U diagonal).
func (lu *LU) Nnz() int { return len(lu.Li) + len(lu.Ui) + lu.N }
