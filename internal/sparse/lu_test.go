package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomNonsingularCSC builds a random sparse matrix that is almost surely
// nonsingular: random off-diagonal entries plus a strong diagonal.
func randomNonsingularCSC(rng *rand.Rand, n int, density float64) *CSC {
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		tr.Add(i, i, 2+rng.Float64()*4)
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return tr.Compress()
}

func maxAbsDiff(a, b []float64) float64 {
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func TestLUSolveIdentity(t *testing.T) {
	tr := NewTriplet(4, 4)
	for i := 0; i < 4; i++ {
		tr.Add(i, i, 1)
	}
	lu, err := Factorize(tr.Compress(), FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3, 4}
	x := append([]float64(nil), b...)
	lu.SolveInPlace(x, make([]float64, 4))
	if d := maxAbsDiff(x, b); d > 1e-14 {
		t.Errorf("identity solve error %g", d)
	}
}

func TestLUSolvePermutation(t *testing.T) {
	// A is a permutation matrix: A[i][p(i)] = 1 with p = (1 2 0 3).
	perm := []int{1, 2, 0, 3}
	tr := NewTriplet(4, 4)
	for i, j := range perm {
		tr.Add(i, j, 1)
	}
	a := tr.Compress()
	lu, err := Factorize(a, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{10, 20, 30, 40}
	x := append([]float64(nil), b...)
	lu.SolveInPlace(x, make([]float64, 4))
	got := a.MulVec(x)
	if d := maxAbsDiff(got, b); d > 1e-12 {
		t.Errorf("permutation solve residual %g", d)
	}
}

func TestLUSolveAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(25)
		a := randomNonsingularCSC(rng, n, 0.3)
		lu, err := Factorize(a, FactorOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dlu, err := FactorizeDense(a.Dense())
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		b := randomDense(rng, n)

		x := append([]float64(nil), b...)
		lu.SolveInPlace(x, make([]float64, n))
		want := dlu.Solve(b)
		if d := maxAbsDiff(x, want); d > 1e-8 {
			t.Fatalf("trial %d (n=%d): solve mismatch %g", trial, n, d)
		}
		// Residual check: A x = b.
		if d := maxAbsDiff(a.MulVec(x), b); d > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
	}
}

func TestLUTransposeSolveAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(25)
		a := randomNonsingularCSC(rng, n, 0.3)
		lu, err := Factorize(a, FactorOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dlu, err := FactorizeDense(a.Dense())
		if err != nil {
			t.Fatalf("trial %d dense: %v", trial, err)
		}
		c := randomDense(rng, n)

		y := append([]float64(nil), c...)
		lu.SolveTransposeInPlace(y, make([]float64, n))
		want := dlu.SolveTranspose(c)
		if d := maxAbsDiff(y, want); d > 1e-8 {
			t.Fatalf("trial %d (n=%d): transpose solve mismatch %g", trial, n, d)
		}
		// Residual check: Aᵀ y = c.
		got := a.MulVecT(y)
		if d := maxAbsDiff(got, c); d > 1e-8 {
			t.Fatalf("trial %d: transpose residual %g", trial, d)
		}
	}
}

func TestLUSingularDetected(t *testing.T) {
	// Column 2 is identically zero.
	tr := NewTriplet(3, 3)
	tr.Add(0, 0, 1)
	tr.Add(1, 1, 1)
	_, err := Factorize(tr.Compress(), FactorOptions{})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUDuplicateRowSingular(t *testing.T) {
	// Two identical rows make the matrix numerically singular.
	tr := NewTriplet(3, 3)
	vals := [][]float64{{1, 2, 3}, {1, 2, 3}, {4, 5, 6}}
	for i, row := range vals {
		for j, v := range row {
			tr.Add(i, j, v)
		}
	}
	_, err := Factorize(tr.Compress(), FactorOptions{})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquareRejected(t *testing.T) {
	tr := NewTriplet(2, 3)
	tr.Add(0, 0, 1)
	if _, err := Factorize(tr.Compress(), FactorOptions{}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestLUUpperTriangularNoFill(t *testing.T) {
	// For an upper triangular matrix with units on the diagonal, the
	// nnz-ordering heuristic should factorize with zero fill: L empty.
	n := 20
	tr := NewTriplet(n, n)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		tr.Add(i, i, 1)
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.2 {
				tr.Add(i, j, rng.NormFloat64())
			}
		}
	}
	a := tr.Compress()
	lu, err := Factorize(a, FactorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := lu.Nnz(); got > a.Nnz()+n {
		t.Errorf("fill-in on triangular matrix: LU nnz %d vs A nnz %d", got, a.Nnz())
	}
}

func TestLUExplicitColumnOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10
	a := randomNonsingularCSC(rng, n, 0.4)
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i // reverse order
	}
	lu, err := Factorize(a, FactorOptions{ColOrder: order})
	if err != nil {
		t.Fatal(err)
	}
	b := randomDense(rng, n)
	x := append([]float64(nil), b...)
	lu.SolveInPlace(x, make([]float64, n))
	if d := maxAbsDiff(a.MulVec(x), b); d > 1e-8 {
		t.Errorf("residual with explicit order: %g", d)
	}
}

func TestLUBadColumnOrderLength(t *testing.T) {
	a := randomNonsingularCSC(rand.New(rand.NewSource(1)), 4, 0.5)
	if _, err := Factorize(a, FactorOptions{ColOrder: []int{0, 1}}); err == nil {
		t.Fatal("expected error for wrong-length column order")
	}
}

// Property: for random nonsingular matrices, solve then multiply recovers
// the right-hand side (round trip).
func TestLUSolveRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(99))}
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%30
		a := randomNonsingularCSC(rng, n, 0.25)
		lu, err := Factorize(a, FactorOptions{})
		if err != nil {
			return false
		}
		b := randomDense(rng, n)
		x := append([]float64(nil), b...)
		lu.SolveInPlace(x, make([]float64, n))
		return maxAbsDiff(a.MulVec(x), b) < 1e-7
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: transpose solve agrees with solving on the explicit transpose.
func TestLUTransposeConsistencyProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(100))}
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(sz)%20
		a := randomNonsingularCSC(rng, n, 0.3)
		lu, err := Factorize(a, FactorOptions{})
		if err != nil {
			return false
		}
		at := a.Transpose()
		luT, err := Factorize(at, FactorOptions{})
		if err != nil {
			return false
		}
		c := randomDense(rng, n)
		y1 := append([]float64(nil), c...)
		lu.SolveTransposeInPlace(y1, make([]float64, n))
		y2 := append([]float64(nil), c...)
		luT.SolveInPlace(y2, make([]float64, n))
		return maxAbsDiff(y1, y2) < 1e-7
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDenseLUKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 2},
	}
	lu, err := FactorizeDense(a)
	if err != nil {
		t.Fatal(err)
	}
	// x = (1, 2, 3): b = A x = (4, 10, 8).
	x := lu.Solve([]float64{4, 10, 8})
	want := []float64{1, 2, 3}
	if d := maxAbsDiff(x, want); d > 1e-12 {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestDenseLUSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := FactorizeDense(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDenseLUNonSquare(t *testing.T) {
	a := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if _, err := FactorizeDense(a); err == nil {
		t.Fatal("expected error for ragged/non-square input")
	}
}

func BenchmarkLUFactorize(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randomNonsingularCSC(rng, 500, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(a, FactorOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomNonsingularCSC(rng, 500, 0.01)
	lu, err := Factorize(a, FactorOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rhs := randomDense(rng, 500)
	x := make([]float64, 500)
	scratch := make([]float64, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(x, rhs)
		lu.SolveInPlace(x, scratch)
	}
}

// TestFactorizeIntoReuse factorizes a sequence of different matrices into
// one LU with one scratch, checking every factorization against a fresh
// Factorize and verifying that the scratch invariants (zeroed value
// workspace, cleared marks) hold across calls — including after a singular
// failure in the middle of the sequence.
func TestFactorizeIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var lu LU
	var ws FactorScratch
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20)
		a := randomNonsingularCSC(rng, n, 0.3)
		if err := FactorizeInto(&lu, a, FactorOptions{}, &ws); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fresh, err := Factorize(a, FactorOptions{})
		if err != nil {
			t.Fatalf("trial %d fresh: %v", trial, err)
		}
		b := randomDense(rng, n)
		x := append([]float64(nil), b...)
		lu.SolveInPlace(x, make([]float64, n))
		want := append([]float64(nil), b...)
		fresh.SolveInPlace(want, make([]float64, n))
		if d := maxAbsDiff(x, want); d > 1e-10 {
			t.Fatalf("trial %d (n=%d): reused-LU solve differs from fresh by %g", trial, n, d)
		}
		if d := maxAbsDiff(a.MulVec(x), b); d > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
		// Interleave a singular matrix: the error must not poison the
		// scratch for subsequent factorizations.
		if trial%5 == 4 {
			sing := NewTriplet(3, 3)
			sing.Add(0, 0, 1)
			sing.Add(1, 0, 1) // duplicate column pattern → singular
			sing.Add(0, 1, 1)
			sing.Add(1, 1, 1)
			sing.Add(2, 2, 1)
			if err := FactorizeInto(&lu, sing.Compress(), FactorOptions{}, &ws); err == nil {
				t.Fatalf("trial %d: singular matrix factorized", trial)
			}
		}
	}
}

// TestFactorizeIntoZeroAllocs checks that repeated in-place factorization
// of same-shaped matrices settles into an allocation-free steady state.
func TestFactorizeIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	rng := rand.New(rand.NewSource(9))
	const n = 30
	mats := []*CSC{
		randomNonsingularCSC(rng, n, 0.2),
		randomNonsingularCSC(rng, n, 0.2),
	}
	var lu LU
	var ws FactorScratch
	for i := 0; i < 10; i++ {
		if err := FactorizeInto(&lu, mats[i%2], FactorOptions{}, &ws); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := FactorizeInto(&lu, mats[i%2], FactorOptions{}, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("FactorizeInto allocates %.2f objects/op, want 0", allocs)
	}
}
