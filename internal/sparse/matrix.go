package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Triplet accumulates matrix entries in coordinate form before compression.
// Duplicate entries are summed during compression.
type Triplet struct {
	Rows, Cols int
	RowInd     []int
	ColInd     []int
	Val        []float64
}

// NewTriplet returns an empty triplet accumulator of the given shape.
func NewTriplet(rows, cols int) *Triplet {
	return &Triplet{Rows: rows, Cols: cols}
}

// Add records entry (i, j) += v. Zero values are kept; compression drops
// exact zeros after duplicate summation.
func (t *Triplet) Add(i, j int, v float64) {
	if i < 0 || i >= t.Rows || j < 0 || j >= t.Cols {
		panic(fmt.Sprintf("sparse: triplet entry (%d,%d) outside %dx%d", i, j, t.Rows, t.Cols))
	}
	t.RowInd = append(t.RowInd, i)
	t.ColInd = append(t.ColInd, j)
	t.Val = append(t.Val, v)
}

// Compress converts the triplet form into a CSC matrix, summing duplicates
// and dropping entries that cancel to exactly zero.
func (t *Triplet) Compress() *CSC {
	// Count entries per column.
	count := make([]int, t.Cols+1)
	for _, j := range t.ColInd {
		count[j+1]++
	}
	for j := 0; j < t.Cols; j++ {
		count[j+1] += count[j]
	}
	colPtr := make([]int, t.Cols+1)
	copy(colPtr, count)
	rowInd := make([]int, len(t.RowInd))
	val := make([]float64, len(t.Val))
	next := make([]int, t.Cols)
	for j := range next {
		next[j] = colPtr[j]
	}
	for k, j := range t.ColInd {
		p := next[j]
		rowInd[p] = t.RowInd[k]
		val[p] = t.Val[k]
		next[j]++
	}
	m := &CSC{Rows: t.Rows, Cols: t.Cols, ColPtr: colPtr, RowInd: rowInd, Val: val}
	m.sortColumns()
	m.sumDuplicates()
	return m
}

// CSC is a compressed sparse column matrix. Column j's entries live in
// positions ColPtr[j]..ColPtr[j+1]-1 of RowInd/Val, sorted by row index
// with no duplicates (for matrices produced by Triplet.Compress).
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowInd     []int
	Val        []float64
}

// NewCSC builds a CSC matrix directly from raw compressed data. The caller
// guarantees consistency; this is intended for tests and converters.
func NewCSC(rows, cols int, colPtr, rowInd []int, val []float64) *CSC {
	return &CSC{Rows: rows, Cols: cols, ColPtr: colPtr, RowInd: rowInd, Val: val}
}

// Nnz returns the number of stored entries.
func (m *CSC) Nnz() int { return len(m.RowInd) }

// ColNnz returns the number of stored entries in column j.
func (m *CSC) ColNnz(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// Col returns views (not copies) of column j's row indices and values.
func (m *CSC) Col(j int) (rows []int, vals []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowInd[lo:hi], m.Val[lo:hi]
}

// At returns entry (i, j) by binary search over column j.
func (m *CSC) At(i, j int) float64 {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	rows := m.RowInd[lo:hi]
	k := sort.SearchInts(rows, i)
	if k < len(rows) && rows[k] == i {
		return m.Val[lo+k]
	}
	return 0
}

// MulVec computes y = A*x for dense x, writing into a fresh slice.
func (m *CSC) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A*x for dense x into caller-provided y.
func (m *CSC) MulVecTo(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			y[m.RowInd[p]] += m.Val[p] * xj
		}
	}
}

// MulVecT computes y = Aᵀ*x for dense x, writing into a fresh slice.
func (m *CSC) MulVecT(x []float64) []float64 {
	y := make([]float64, m.Cols)
	for j := 0; j < m.Cols; j++ {
		var s float64
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			s += m.Val[p] * x[m.RowInd[p]]
		}
		y[j] = s
	}
	return y
}

// ColDot returns the inner product of column j with dense x.
func (m *CSC) ColDot(j int, x []float64) float64 {
	var s float64
	for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
		s += m.Val[p] * x[m.RowInd[p]]
	}
	return s
}

// Transpose returns Aᵀ as a new CSC matrix (equivalently, A in CSR form).
func (m *CSC) Transpose() *CSC {
	count := make([]int, m.Rows+1)
	for _, i := range m.RowInd {
		count[i+1]++
	}
	for i := 0; i < m.Rows; i++ {
		count[i+1] += count[i]
	}
	colPtr := make([]int, m.Rows+1)
	copy(colPtr, count)
	rowInd := make([]int, len(m.RowInd))
	val := make([]float64, len(m.Val))
	next := make([]int, m.Rows)
	copy(next, colPtr[:m.Rows])
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowInd[p]
			q := next[i]
			rowInd[q] = j
			val[q] = m.Val[p]
			next[i]++
		}
	}
	return &CSC{Rows: m.Cols, Cols: m.Rows, ColPtr: colPtr, RowInd: rowInd, Val: val}
}

// Dense expands the matrix into a row-major dense representation; intended
// for tests and small problems only.
func (m *CSC) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			d[m.RowInd[p]][j] += m.Val[p]
		}
	}
	return d
}

// MaxAbs returns the largest absolute value stored in the matrix.
func (m *CSC) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// sortColumns sorts each column's entries by row index.
func (m *CSC) sortColumns() {
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		rows := m.RowInd[lo:hi]
		vals := m.Val[lo:hi]
		sort.Sort(&colSorter{rows, vals})
	}
}

// sumDuplicates merges duplicate row entries within each (sorted) column
// and drops entries that sum to exactly zero.
func (m *CSC) sumDuplicates() {
	out := 0
	newPtr := make([]int, m.Cols+1)
	for j := 0; j < m.Cols; j++ {
		newPtr[j] = out
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		p := lo
		for p < hi {
			i := m.RowInd[p]
			v := m.Val[p]
			p++
			for p < hi && m.RowInd[p] == i {
				v += m.Val[p]
				p++
			}
			if v != 0 {
				m.RowInd[out] = i
				m.Val[out] = v
				out++
			}
		}
	}
	newPtr[m.Cols] = out
	m.ColPtr = newPtr
	m.RowInd = m.RowInd[:out]
	m.Val = m.Val[:out]
}

type colSorter struct {
	rows []int
	vals []float64
}

func (s *colSorter) Len() int           { return len(s.rows) }
func (s *colSorter) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s *colSorter) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
