// Package sparse provides the sparse linear algebra kernels that underpin
// the MILP solver: sparse vectors, compressed-column matrices, and a
// left-looking sparse LU factorization with threshold partial pivoting.
//
// The package is self-contained and deliberately small: it implements
// exactly the operations the revised simplex method needs (column access,
// matrix-vector products, FTRAN/BTRAN style triangular solves) rather than
// a general linear algebra toolkit.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse vector: parallel slices of indices and values.
// Indices need not be sorted unless stated otherwise. A Vector never
// aliases caller memory unless documented.
type Vector struct {
	N   int       // logical dimension
	Ind []int     // indices of (structurally) nonzero entries
	Val []float64 // values, parallel to Ind
}

// NewVector returns an empty sparse vector of dimension n.
func NewVector(n int) *Vector {
	return &Vector{N: n}
}

// Append adds entry (i, v) without checking for duplicates.
func (v *Vector) Append(i int, x float64) {
	v.Ind = append(v.Ind, i)
	v.Val = append(v.Val, x)
}

// Reset empties the vector while retaining capacity.
func (v *Vector) Reset() {
	v.Ind = v.Ind[:0]
	v.Val = v.Val[:0]
}

// Nnz returns the number of stored entries.
func (v *Vector) Nnz() int { return len(v.Ind) }

// Dense scatters the vector into a fresh dense slice.
func (v *Vector) Dense() []float64 {
	d := make([]float64, v.N)
	for k, i := range v.Ind {
		d[i] += v.Val[k]
	}
	return d
}

// FromDense gathers the nonzero entries (|x| > drop) of a dense slice.
func FromDense(d []float64, drop float64) *Vector {
	v := NewVector(len(d))
	for i, x := range d {
		if math.Abs(x) > drop {
			v.Append(i, x)
		}
	}
	return v
}

// Dot returns the inner product of a sparse vector with a dense one.
func (v *Vector) Dot(dense []float64) float64 {
	var s float64
	for k, i := range v.Ind {
		s += v.Val[k] * dense[i]
	}
	return s
}

// AddScaledTo performs dense[i] += alpha * v[i] for every stored entry.
func (v *Vector) AddScaledTo(dense []float64, alpha float64) {
	for k, i := range v.Ind {
		dense[i] += alpha * v.Val[k]
	}
}

// Sort orders the stored entries by index (in place).
func (v *Vector) Sort() {
	type pair struct {
		i int
		x float64
	}
	ps := make([]pair, len(v.Ind))
	for k := range v.Ind {
		ps[k] = pair{v.Ind[k], v.Val[k]}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].i < ps[b].i })
	for k := range ps {
		v.Ind[k] = ps[k].i
		v.Val[k] = ps[k].x
	}
}

// Norm2 returns the Euclidean norm of the vector, assuming no duplicate
// indices.
func (v *Vector) Norm2() float64 {
	var s float64
	for _, x := range v.Val {
		s += x * x
	}
	return math.Sqrt(s)
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{N: v.N, Ind: make([]int, len(v.Ind)), Val: make([]float64, len(v.Val))}
	copy(c.Ind, v.Ind)
	copy(c.Val, v.Val)
	return c
}

// String renders the vector for debugging.
func (v *Vector) String() string {
	s := "["
	for k, i := range v.Ind {
		if k > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%g", i, v.Val[k])
	}
	return s + "]"
}

// Workspace provides scratch memory for repeated sparse kernels so the hot
// path of the simplex method does not allocate. It holds a dense value
// array, a dense marker array, and index stacks sized to one dimension.
type Workspace struct {
	Val   []float64 // dense accumulator, must be all-zero between uses
	Mark  []int32   // generation marks; entry i is "set" iff Mark[i] == Gen
	Gen   int32     // current generation
	Stack []int     // DFS stack / pattern buffer
}

// NewWorkspace returns a workspace for dimension n.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		Val:   make([]float64, n),
		Mark:  make([]int32, n),
		Stack: make([]int, 0, n),
	}
}

// Ensure grows the workspace to dimension n if needed.
func (w *Workspace) Ensure(n int) {
	if len(w.Val) < n {
		w.Val = append(w.Val, make([]float64, n-len(w.Val))...)
		w.Mark = append(w.Mark, make([]int32, n-len(w.Mark))...)
	}
}

// NextGen advances the generation counter, logically clearing all marks in
// O(1). On (rare) wraparound it physically clears the mark array.
func (w *Workspace) NextGen() {
	w.Gen++
	if w.Gen == math.MaxInt32 {
		for i := range w.Mark {
			w.Mark[i] = 0
		}
		w.Gen = 1
	}
}

// Marked reports whether index i is marked in the current generation.
func (w *Workspace) Marked(i int) bool { return w.Mark[i] == w.Gen }

// SetMark marks index i in the current generation.
func (w *Workspace) SetMark(i int) { w.Mark[i] = w.Gen }
