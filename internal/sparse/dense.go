package sparse

import (
	"fmt"
	"math"
)

// DenseLU is a dense LU factorization with partial pivoting. It serves as a
// correctness oracle for the sparse factorization in tests and handles very
// small systems where sparse bookkeeping is not worthwhile.
type DenseLU struct {
	N    int
	LU   [][]float64 // combined L (below diagonal, unit) and U (on/above)
	Perm []int       // Perm[k] = original row at pivot position k
}

// FactorizeDense computes a dense LU factorization of the n×n matrix a
// (row-major). The input is copied, not modified.
func FactorizeDense(a [][]float64) (*DenseLU, error) {
	n := len(a)
	lu := make([][]float64, n)
	for i := range lu {
		if len(a[i]) != n {
			return nil, fmt.Errorf("sparse: dense matrix is not square (row %d has %d entries, want %d)", i, len(a[i]), n)
		}
		lu[i] = append([]float64(nil), a[i]...)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: largest magnitude in column k at/below row k.
		piv, maxAbs := k, math.Abs(lu[k][k])
		for i := k + 1; i < n; i++ {
			if abs := math.Abs(lu[i][k]); abs > maxAbs {
				piv, maxAbs = i, abs
			}
		}
		if maxAbs < 1e-14 {
			return nil, fmt.Errorf("%w: dense pivot at step %d", ErrSingular, k)
		}
		if piv != k {
			lu[piv], lu[k] = lu[k], lu[piv]
			perm[piv], perm[k] = perm[k], perm[piv]
		}
		inv := 1 / lu[k][k]
		for i := k + 1; i < n; i++ {
			l := lu[i][k] * inv
			lu[i][k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i][j] -= l * lu[k][j]
			}
		}
	}
	return &DenseLU{N: n, LU: lu, Perm: perm}, nil
}

// Solve solves A·x = b and returns x as a fresh slice.
func (d *DenseLU) Solve(b []float64) []float64 {
	n := d.N
	x := make([]float64, n)
	for k := 0; k < n; k++ {
		x[k] = b[d.Perm[k]]
	}
	// Forward substitution with unit L.
	for k := 0; k < n; k++ {
		for j := 0; j < k; j++ {
			x[k] -= d.LU[k][j] * x[j]
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		for j := k + 1; j < n; j++ {
			x[k] -= d.LU[k][j] * x[j]
		}
		x[k] /= d.LU[k][k]
	}
	return x
}

// SolveTranspose solves Aᵀ·y = c and returns y as a fresh slice.
func (d *DenseLU) SolveTranspose(c []float64) []float64 {
	n := d.N
	y := append([]float64(nil), c...)
	// Solve Uᵀ w = c (forward).
	for k := 0; k < n; k++ {
		for j := 0; j < k; j++ {
			y[k] -= d.LU[j][k] * y[j]
		}
		y[k] /= d.LU[k][k]
	}
	// Solve Lᵀ v = w (backward, unit diagonal).
	for k := n - 1; k >= 0; k-- {
		for j := k + 1; j < n; j++ {
			y[k] -= d.LU[j][k] * y[j]
		}
	}
	// Undo row permutation: Aᵀ = (P⁻¹ L U)ᵀ ⇒ y = Pᵀ v.
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[d.Perm[k]] = y[k]
	}
	return out
}
