package presolve

import (
	"math"
	"testing"

	"milpjoin/internal/milp"
)

func TestFixedVariableSubstitution(t *testing.T) {
	m := milp.NewModel("fixed")
	x := m.AddContinuous(3, 3, 2, "x") // fixed at 3
	y := m.AddContinuous(0, 10, 1, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 8, "c")

	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Model.NumVars() != 1 {
		t.Fatalf("reduced vars = %d, want 1", res.Model.NumVars())
	}
	// Objective constant picks up 2*3 = 6.
	if res.Model.ObjConstant() != 6 {
		t.Errorf("obj constant = %g, want 6", res.Model.ObjConstant())
	}
	// The constraint must become y <= 5.
	full := res.Postsolve([]float64{5})
	if full[x] != 3 || full[y] != 5 {
		t.Errorf("postsolve = %v", full)
	}
}

func TestSingletonRowBecomesBound(t *testing.T) {
	m := milp.NewModel("singleton")
	x := m.AddContinuous(0, 100, 1, "x")
	y := m.AddContinuous(0, 100, 1, "y")
	m.AddConstr(milp.Expr(x, 2.0), milp.LE, 10, "sx") // x <= 5
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 50, "c")

	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	// The singleton row should be gone; one row remains.
	if res.Model.NumConstrs() != 1 {
		t.Errorf("constrs = %d, want 1", res.Model.NumConstrs())
	}
	var xv milp.Var = -1
	for j := 0; j < res.Model.NumVars(); j++ {
		if res.Model.VarName(milp.Var(j)) == "x" {
			xv = milp.Var(j)
		}
	}
	if xv < 0 {
		t.Fatal("x eliminated unexpectedly")
	}
	if _, u := res.Model.Bounds(xv); u != 5 {
		t.Errorf("x upper bound = %g, want 5", u)
	}
}

func TestSingletonEqualityFixes(t *testing.T) {
	m := milp.NewModel("eqfix")
	x := m.AddContinuous(0, 10, 1, "x")
	y := m.AddContinuous(0, 10, 1, "y")
	m.AddConstr(milp.Expr(x, 2.0), milp.EQ, 6, "fix") // x = 3
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 7, "c")

	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	full := res.Postsolve(make([]float64, res.Model.NumVars()))
	if full[x] != 3 {
		t.Errorf("x = %g, want 3", full[x])
	}
	_ = y
}

func TestInfeasibleSingletonInteger(t *testing.T) {
	m := milp.NewModel("intinf")
	x := m.AddVar(0, 10, 0, milp.Integer, "x")
	m.AddConstr(milp.Expr(x, 2.0), milp.EQ, 5, "half") // x = 2.5: impossible
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestEmptyRowInfeasible(t *testing.T) {
	m := milp.NewModel("empty")
	x := m.AddContinuous(2, 2, 0, "x") // fixed
	m.AddConstr(milp.Expr(x, 1.0), milp.GE, 5, "imposs")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestActivityInfeasibility(t *testing.T) {
	m := milp.NewModel("act")
	x := m.AddContinuous(0, 1, 0, "x")
	y := m.AddContinuous(0, 1, 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.GE, 3, "c") // max activity 2
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestBoundPropagationTightens(t *testing.T) {
	m := milp.NewModel("prop")
	x := m.AddContinuous(0, 100, 0, "x")
	y := m.AddContinuous(0, 4, 0, "y")
	// x + y <= 6 with y >= 0 implies x <= 6.
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 6, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	for j := 0; j < res.Model.NumVars(); j++ {
		if res.Model.VarName(milp.Var(j)) == "x" {
			if _, u := res.Model.Bounds(milp.Var(j)); u > 6+1e-9 {
				t.Errorf("x upper = %g, want <= 6", u)
			}
		}
	}
}

func TestIntegerBoundRounding(t *testing.T) {
	m := milp.NewModel("round")
	x := m.AddVar(0.3, 4.7, 1, milp.Integer, "x")
	y := m.AddContinuous(0, 1, 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 100, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	for j := 0; j < res.Model.NumVars(); j++ {
		if res.Model.VarName(milp.Var(j)) == "x" {
			l, u := res.Model.Bounds(milp.Var(j))
			if l != 1 || u != 4 {
				t.Errorf("integer bounds = [%g, %g], want [1, 4]", l, u)
			}
		}
	}
}

func TestRedundantRowDropped(t *testing.T) {
	m := milp.NewModel("redundant")
	x := m.AddContinuous(0, 1, 1, "x")
	y := m.AddContinuous(0, 1, 1, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 10, "slack") // max activity 2
	m.AddConstr(milp.Expr(x, 1.0, y, -1.0), milp.LE, 0.5, "tight")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Model.NumConstrs() != 1 {
		t.Errorf("constrs = %d, want 1 (redundant row kept?)", res.Model.NumConstrs())
	}
}

func TestFullySolvedModel(t *testing.T) {
	m := milp.NewModel("solved")
	x := m.AddContinuous(1, 1, 2, "x")
	y := m.AddVar(3, 3, 1, milp.Integer, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 10, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusSolved {
		t.Fatalf("status = %v, want solved", res.Status)
	}
	sol := res.FixedSolution()
	if sol[x] != 1 || sol[y] != 3 {
		t.Errorf("solution = %v", sol)
	}
}

func TestCrossedBoundsInfeasible(t *testing.T) {
	m := milp.NewModel("crossed")
	m.AddContinuous(5, 2, 0, "x")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestIntegerWindowWithoutIntegersInfeasible(t *testing.T) {
	// Integer variable whose bounds collapse to an empty integer window.
	m := milp.NewModel("intwin")
	x := m.AddVar(0.2, 0.8, 0, milp.Integer, "x")
	y := m.AddContinuous(0, 1, 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 5, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestGESenseNormalization(t *testing.T) {
	m := milp.NewModel("ge")
	x := m.AddContinuous(0, 10, 1, "x")
	y := m.AddContinuous(0, 10, 1, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.GE, 4, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	// Check that feasibility is preserved: x=4, y=0 must satisfy the
	// reduced model after index mapping.
	vals := make([]float64, res.Model.NumVars())
	for j := 0; j < res.Model.NumVars(); j++ {
		if res.Model.VarName(milp.Var(j)) == "x" {
			vals[j] = 4
		}
	}
	if err := res.Model.CheckFeasible(vals, 1e-7); err != nil {
		t.Errorf("reduced model rejects feasible point: %v", err)
	}
}

func TestBinaryTypePreserved(t *testing.T) {
	m := milp.NewModel("bin")
	b := m.AddBinary(1, "b")
	c := m.AddContinuous(0, 5, 0, "c")
	m.AddConstr(milp.Expr(b, 1.0, c, 1.0), milp.LE, 5, "r")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	for j := 0; j < res.Model.NumVars(); j++ {
		v := milp.Var(j)
		if res.Model.VarName(v) == "b" && res.Model.VarType(v) != milp.Binary {
			t.Errorf("b type = %v, want Binary", res.Model.VarType(v))
		}
	}
	_ = b
}

func TestInfiniteBoundsSurvive(t *testing.T) {
	m := milp.NewModel("inf")
	x := m.AddContinuous(math.Inf(-1), math.Inf(1), 1, "x")
	y := m.AddContinuous(0, 1, 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.GE, -3, "c")
	res, err := Apply(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusReduced {
		t.Fatalf("status = %v", res.Status)
	}
	// x must still be present with an infinite upper bound.
	found := false
	for j := 0; j < res.Model.NumVars(); j++ {
		if res.Model.VarName(milp.Var(j)) == "x" {
			found = true
			if _, u := res.Model.Bounds(milp.Var(j)); !math.IsInf(u, 1) {
				t.Errorf("x upper bound = %g, want +inf", u)
			}
		}
	}
	if !found {
		t.Error("x eliminated unexpectedly")
	}
}
