// Package presolve shrinks MILP models before branch-and-bound: it removes
// fixed variables, turns singleton rows into bounds, drops empty and
// redundant rows, propagates activity bounds, and rounds integer bounds.
// Reductions are recorded so solutions of the reduced model can be mapped
// back to the original variable space.
package presolve

import (
	"fmt"
	"math"
	"time"

	"milpjoin/internal/milp"
)

// Status summarises the outcome of presolve.
type Status int

const (
	// StatusReduced means a (possibly smaller) equivalent model remains.
	StatusReduced Status = iota
	// StatusInfeasible means presolve proved the model infeasible.
	StatusInfeasible
	// StatusSolved means presolve fixed every variable; the solution is
	// fully determined.
	StatusSolved
)

// Options tune presolve behaviour.
type Options struct {
	// MaxRounds bounds the number of propagation sweeps (default 10).
	MaxRounds int
	// FeasTol is the feasibility tolerance (default 1e-7).
	FeasTol float64
}

func (o Options) withDefaults() Options {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 10
	}
	if o.FeasTol <= 0 {
		o.FeasTol = 1e-7
	}
	return o
}

// Result carries the reduced model and the data needed for postsolve.
type Result struct {
	Status Status
	// Model is the reduced model (valid when Status == StatusReduced).
	Model *milp.Model
	// Rounds is the number of propagation sweeps performed.
	Rounds int
	// RowsRemoved and ColsRemoved count the constraints and variables
	// eliminated relative to the input model (everything, when presolve
	// solved the model outright).
	RowsRemoved, ColsRemoved int
	// Elapsed is the presolve wall-clock time.
	Elapsed time.Duration

	// origVars is the original variable count.
	origVars int
	// fixedValue[j] holds the value of original variable j if fixed by
	// presolve; valid where fixed[j] is true.
	fixedValue []float64
	fixed      []bool
	// newIndex[j] is the column of original variable j in the reduced
	// model, or -1 if eliminated.
	newIndex []int
}

// Postsolve maps a solution of the reduced model back to the original
// variable space.
func (r *Result) Postsolve(reduced []float64) []float64 {
	out := make([]float64, r.origVars)
	for j := 0; j < r.origVars; j++ {
		if r.fixed[j] {
			out[j] = r.fixedValue[j]
		} else if k := r.newIndex[j]; k >= 0 {
			out[j] = reduced[k]
		}
	}
	return out
}

// FixedSolution returns the fully determined solution when Status is
// StatusSolved.
func (r *Result) FixedSolution() []float64 {
	return r.Postsolve(nil)
}

// Reduce maps an original-space assignment into the reduced model's
// variable space (the inverse of Postsolve for surviving variables).
// Values of eliminated variables are dropped; the caller is responsible
// for the assignment being consistent with the fixings.
func (r *Result) Reduce(original []float64) []float64 {
	if r.Model == nil {
		return nil
	}
	out := make([]float64, r.Model.NumVars())
	for j := 0; j < r.origVars; j++ {
		if k := r.newIndex[j]; k >= 0 {
			out[k] = original[j]
		}
	}
	return out
}

// internal row representation, normalised to sense ≤ or =.
type row struct {
	vars  []int
	coefs []float64
	eq    bool // true for =, false for ≤
	rhs   float64
	live  bool
}

// Apply presolves the model.
func Apply(m *milp.Model, opts Options) (*Result, error) {
	start := time.Now()
	res, err := apply(m, opts)
	if res != nil {
		res.Elapsed = time.Since(start)
		switch res.Status {
		case StatusReduced:
			res.RowsRemoved = m.NumConstrs() - res.Model.NumConstrs()
			res.ColsRemoved = m.NumVars() - res.Model.NumVars()
		case StatusSolved:
			res.RowsRemoved = m.NumConstrs()
			res.ColsRemoved = m.NumVars()
		}
	}
	return res, err
}

func apply(m *milp.Model, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := m.NumVars()

	lb := make([]float64, n)
	ub := make([]float64, n)
	isInt := make([]bool, n)
	for j := 0; j < n; j++ {
		lb[j], ub[j] = m.Bounds(milp.Var(j))
		isInt[j] = m.IsIntegral(milp.Var(j))
	}

	rows := loadRows(m)
	res := &Result{
		origVars:   n,
		fixedValue: make([]float64, n),
		fixed:      make([]bool, n),
		newIndex:   make([]int, n),
	}

	tol := opts.FeasTol
	roundIntBounds(lb, ub, isInt, tol)
	for j := 0; j < n; j++ {
		if lb[j] > ub[j]+tol {
			res.Status = StatusInfeasible
			return res, nil
		}
	}

	changed := true
	for res.Rounds = 0; changed && res.Rounds < opts.MaxRounds; res.Rounds++ {
		changed = false
		for ri := range rows {
			r := &rows[ri]
			if !r.live {
				continue
			}
			// Drop terms whose variable became fixed.
			compactRow(r, lb, ub, tol)

			switch len(r.vars) {
			case 0:
				if r.rhs < -tol || (r.eq && r.rhs > tol) {
					res.Status = StatusInfeasible
					return res, nil
				}
				r.live = false
				changed = true
				continue
			case 1:
				if singletonToBound(r, lb, ub, isInt, tol) {
					res.Status = StatusInfeasible
					return res, nil
				}
				r.live = false
				changed = true
				continue
			}

			st, ch := propagateRow(r, lb, ub, isInt, tol)
			if st == StatusInfeasible {
				res.Status = StatusInfeasible
				return res, nil
			}
			if ch {
				changed = true
			}
		}
		for j := 0; j < n; j++ {
			if lb[j] > ub[j]+tol {
				res.Status = StatusInfeasible
				return res, nil
			}
		}
	}

	// Fix variables with collapsed bounds; record for postsolve.
	for j := 0; j < n; j++ {
		if !res.fixed[j] && ub[j]-lb[j] <= tol {
			v := lb[j]
			if isInt[j] {
				v = math.Round(v)
			}
			res.fixed[j] = true
			res.fixedValue[j] = v
		}
	}

	// Build the reduced model over surviving variables and rows.
	reduced := milp.NewModel(m.Name + "/presolved")
	k := 0
	for j := 0; j < n; j++ {
		if res.fixed[j] {
			res.newIndex[j] = -1
			continue
		}
		res.newIndex[j] = k
		vt := milp.Continuous
		if isInt[j] {
			vt = milp.Integer
			if lb[j] >= 0 && ub[j] <= 1 {
				vt = milp.Binary
			}
		}
		reduced.AddVar(lb[j], ub[j], m.ObjCoeff(milp.Var(j)), vt, m.VarName(milp.Var(j)))
		k++
	}
	reduced.AddObjConstant(m.ObjConstant())
	for j := 0; j < n; j++ {
		if res.fixed[j] {
			reduced.AddObjConstant(m.ObjCoeff(milp.Var(j)) * res.fixedValue[j])
		}
	}

	kept := 0
	for ri := range rows {
		r := &rows[ri]
		if !r.live {
			continue
		}
		compactRow(r, lb, ub, tol)
		if len(r.vars) == 0 {
			if r.rhs < -tol || (r.eq && r.rhs > tol) {
				res.Status = StatusInfeasible
				return res, nil
			}
			continue
		}
		// Redundancy: a ≤ row whose maximum activity cannot exceed rhs.
		if !r.eq {
			if maxAct, ok := rowMaxActivity(r, lb, ub); ok && maxAct <= r.rhs+tol {
				continue
			}
		}
		expr := milp.LinExpr{}
		ok := true
		for t, j := range r.vars {
			nj := res.newIndex[j]
			if nj < 0 {
				ok = false
				break
			}
			expr = expr.Add(milp.Var(nj), r.coefs[t])
		}
		if !ok {
			return nil, fmt.Errorf("presolve: internal error, fixed variable survived compaction")
		}
		sense := milp.LE
		if r.eq {
			sense = milp.EQ
		}
		reduced.AddConstr(expr, sense, r.rhs, "")
		kept++
	}

	if reduced.NumVars() == 0 {
		if kept > 0 {
			// All variables fixed but constraints remained; they were
			// checked during compaction, so this cannot hold real
			// content — treat as solved.
			res.Status = StatusSolved
			return res, nil
		}
		res.Status = StatusSolved
		return res, nil
	}
	res.Status = StatusReduced
	res.Model = reduced
	return res, nil
}

// loadRows converts model constraints into normalised internal rows
// (≥ rows are negated into ≤).
func loadRows(m *milp.Model) []row {
	rows := make([]row, 0, m.NumConstrs())
	for i := 0; i < m.NumConstrs(); i++ {
		expr, sense, rhs, _ := m.Constr(i)
		r := row{live: true, rhs: rhs, eq: sense == milp.EQ}
		flip := sense == milp.GE
		expr.Terms(func(v milp.Var, c float64) {
			if flip {
				c = -c
			}
			r.vars = append(r.vars, int(v))
			r.coefs = append(r.coefs, c)
		})
		if flip {
			r.rhs = -rhs
		}
		rows = append(rows, r)
	}
	return rows
}

// compactRow substitutes variables whose bounds have collapsed (treating
// them as fixed at lb) into the rhs and removes their terms.
func compactRow(r *row, lb, ub []float64, tol float64) {
	out := 0
	for t, j := range r.vars {
		if ub[j]-lb[j] <= tol {
			r.rhs -= r.coefs[t] * lb[j]
			continue
		}
		r.vars[out] = j
		r.coefs[out] = r.coefs[t]
		out++
	}
	r.vars = r.vars[:out]
	r.coefs = r.coefs[:out]
}

// singletonToBound converts a single-variable row into variable bounds.
// Returns true when the implied bounds are infeasible.
func singletonToBound(r *row, lb, ub []float64, isInt []bool, tol float64) bool {
	j := r.vars[0]
	a := r.coefs[0]
	v := r.rhs / a
	if r.eq {
		if v < lb[j]-tol || v > ub[j]+tol {
			return true
		}
		if isInt[j] && math.Abs(v-math.Round(v)) > tol {
			return true
		}
		lb[j], ub[j] = v, v
		return false
	}
	if a > 0 { // x ≤ rhs/a
		if v < ub[j] {
			ub[j] = v
		}
	} else { // x ≥ rhs/a
		if v > lb[j] {
			lb[j] = v
		}
	}
	if isInt[j] {
		roundOneIntBound(j, lb, ub, tol)
	}
	return lb[j] > ub[j]+tol
}

// propagateRow tightens variable bounds from row activity. Returns the
// feasibility status and whether any bound changed.
func propagateRow(r *row, lb, ub []float64, isInt []bool, tol float64) (Status, bool) {
	// Minimum and maximum activity with counts of infinite contributions.
	var minAct, maxAct float64
	minInf, maxInf := 0, 0
	for t, j := range r.vars {
		a := r.coefs[t]
		var lo, hi float64
		if a > 0 {
			lo, hi = a*lb[j], a*ub[j]
		} else {
			lo, hi = a*ub[j], a*lb[j]
		}
		if math.IsInf(lo, -1) {
			minInf++
		} else {
			minAct += lo
		}
		if math.IsInf(hi, 1) {
			maxInf++
		} else {
			maxAct += hi
		}
	}

	scale := 1 + math.Abs(r.rhs)
	if minInf == 0 && minAct > r.rhs+tol*scale {
		return StatusInfeasible, false
	}
	if r.eq && maxInf == 0 && maxAct < r.rhs-tol*scale {
		return StatusInfeasible, false
	}

	changed := false
	for t, j := range r.vars {
		a := r.coefs[t]
		// Residual minimum activity excluding j.
		var lo float64
		if a > 0 {
			lo = a * lb[j]
		} else {
			lo = a * ub[j]
		}
		residMinOK := minInf == 0 || (minInf == 1 && math.IsInf(lo, -1))
		if residMinOK {
			resid := minAct
			if !math.IsInf(lo, -1) {
				resid -= lo
			}
			// a_j x_j ≤ rhs − resid.
			limit := r.rhs - resid
			if a > 0 {
				nb := limit / a
				if nb < ub[j]-tol {
					ub[j] = nb
					changed = true
					if isInt[j] {
						roundOneIntBound(j, lb, ub, tol)
					}
				}
			} else {
				nb := limit / a
				if nb > lb[j]+tol {
					lb[j] = nb
					changed = true
					if isInt[j] {
						roundOneIntBound(j, lb, ub, tol)
					}
				}
			}
		}
		if r.eq {
			// For equalities also use maximum activity: a_j x_j ≥ rhs − residMax.
			var hi float64
			if a > 0 {
				hi = a * ub[j]
			} else {
				hi = a * lb[j]
			}
			residMaxOK := maxInf == 0 || (maxInf == 1 && math.IsInf(hi, 1))
			if residMaxOK {
				resid := maxAct
				if !math.IsInf(hi, 1) {
					resid -= hi
				}
				limit := r.rhs - resid
				if a > 0 {
					nb := limit / a
					if nb > lb[j]+tol {
						lb[j] = nb
						changed = true
						if isInt[j] {
							roundOneIntBound(j, lb, ub, tol)
						}
					}
				} else {
					nb := limit / a
					if nb < ub[j]-tol {
						ub[j] = nb
						changed = true
						if isInt[j] {
							roundOneIntBound(j, lb, ub, tol)
						}
					}
				}
			}
		}
	}
	return StatusReduced, changed
}

// rowMaxActivity returns the maximum activity of a row if finite.
func rowMaxActivity(r *row, lb, ub []float64) (float64, bool) {
	var maxAct float64
	for t, j := range r.vars {
		a := r.coefs[t]
		var hi float64
		if a > 0 {
			hi = a * ub[j]
		} else {
			hi = a * lb[j]
		}
		if math.IsInf(hi, 1) {
			return 0, false
		}
		maxAct += hi
	}
	return maxAct, true
}

func roundIntBounds(lb, ub []float64, isInt []bool, tol float64) {
	for j := range lb {
		if isInt[j] {
			roundOneIntBound(j, lb, ub, tol)
		}
	}
}

func roundOneIntBound(j int, lb, ub []float64, tol float64) {
	if !math.IsInf(lb[j], -1) {
		lb[j] = math.Ceil(lb[j] - tol)
	}
	if !math.IsInf(ub[j], 1) {
		ub[j] = math.Floor(ub[j] + tol)
	}
}
