// Package plan represents left-deep query plans and prices them exactly
// (without the linear approximations the MILP encoder uses). The exact
// coster is the ground truth that decoded MILP plans and DP plans are
// compared against.
package plan

import (
	"fmt"
	"math"
	"strings"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// Plan is a left-deep join plan: Order is the permutation of table indices
// in join order. Join j (0-based) joins the running result of
// Order[0..j] with table Order[j+1]. Operators optionally records the join
// operator per join; when nil, the costing Spec's default operator is used.
type Plan struct {
	Order     []int
	Operators []cost.Operator
}

// Validate checks that the plan is a complete left-deep plan for q.
func (p *Plan) Validate(q *qopt.Query) error {
	n := q.NumTables()
	if len(p.Order) != n {
		return fmt.Errorf("plan: order has %d tables, query has %d", len(p.Order), n)
	}
	seen := make([]bool, n)
	for _, t := range p.Order {
		if t < 0 || t >= n {
			return fmt.Errorf("plan: unknown table %d", t)
		}
		if seen[t] {
			return fmt.Errorf("plan: table %d appears twice", t)
		}
		seen[t] = true
	}
	if p.Operators != nil && len(p.Operators) != n-1 {
		return fmt.Errorf("plan: %d operators for %d joins", len(p.Operators), n-1)
	}
	return nil
}

// String renders the join order, e.g. "((T0 ⋈ T2) ⋈ T1)".
func (p *Plan) String() string {
	if len(p.Order) == 0 {
		return "()"
	}
	var sb strings.Builder
	for i := 1; i < len(p.Order); i++ {
		sb.WriteString("(")
	}
	fmt.Fprintf(&sb, "T%d", p.Order[0])
	for i := 1; i < len(p.Order); i++ {
		fmt.Fprintf(&sb, " ⋈ T%d)", p.Order[i])
	}
	return sb.String()
}

// JoinStep records the exact quantities of one join during costing.
type JoinStep struct {
	// Inner is the inner operand table index.
	Inner int
	// Operator is the join operator used.
	Operator cost.Operator
	// OuterCard and InnerCard are exact operand cardinalities.
	OuterCard, InnerCard float64
	// ResultCard is the exact cardinality after applying all newly
	// applicable predicates (and correlation corrections).
	ResultCard float64
	// AppliedPreds lists predicates first applied at this join.
	AppliedPreds []int
	// Cost is this join's cost (excluding Cout accounting).
	Cost float64
}

// Costing is the exact evaluation of a plan.
type Costing struct {
	Steps []JoinStep
	// Total is the plan cost under the chosen Spec.
	Total float64
	// FinalCard is the cardinality of the final result.
	FinalCard float64
}

// Evaluate prices the plan exactly under spec. Cardinalities are the
// products of table cardinalities and applicable predicate selectivities
// (with correlation corrections), per the paper's model.
func Evaluate(q *qopt.Query, p *Plan, spec cost.Spec) (*Costing, error) {
	if err := p.Validate(q); err != nil {
		return nil, err
	}
	params := spec.Params.WithDefaults()
	n := q.NumTables()

	inSet := make([]bool, n)
	predApplied := make([]bool, len(q.Predicates))
	groupApplied := make([]bool, len(q.Correlated))

	inSet[p.Order[0]] = true
	curCard := q.Tables[p.Order[0]].Card

	c := &Costing{}
	for j := 0; j+1 < n; j++ {
		inner := p.Order[j+1]
		innerCard := q.Tables[inner].Card
		outerCard := curCard
		inSet[inner] = true

		step := JoinStep{
			Inner:     inner,
			OuterCard: outerCard,
			InnerCard: innerCard,
		}

		// Result cardinality: product, then newly applicable
		// predicates and newly complete correlation groups.
		resCard := outerCard * innerCard
		for pi := range q.Predicates {
			if predApplied[pi] {
				continue
			}
			if tablesPresent(q.Predicates[pi].Tables, inSet) {
				predApplied[pi] = true
				resCard *= q.Predicates[pi].Sel
				step.AppliedPreds = append(step.AppliedPreds, pi)

				// Expensive-predicate evaluation cost: paid once,
				// on the result that triggers evaluation (priced on
				// the outer cardinality, mirroring the Σ pco·co
				// term of Section 5.1).
				if ec := q.Predicates[pi].EvalCostPerTuple; ec > 0 {
					step.Cost += ec * outerCard
				}
			}
		}
		for gi, g := range q.Correlated {
			if groupApplied[gi] {
				continue
			}
			all := true
			for _, pi := range g.Predicates {
				if !predApplied[pi] {
					all = false
					break
				}
			}
			if all {
				groupApplied[gi] = true
				resCard *= g.CorrectionSel
			}
		}
		step.ResultCard = resCard

		op := spec.Op
		if p.Operators != nil {
			op = p.Operators[j]
		}
		step.Operator = op

		switch spec.Metric {
		case cost.Cout:
			// Sum of intermediate result cardinalities; the final
			// result is the same for every complete plan and is
			// excluded, matching the Σ_{j≥1} co_j of Section 4.3.
			if j+2 < n {
				c.Total += resCard
			}
		case cost.OperatorCost:
			pgo := params.Pages(outerCard)
			pgi := params.Pages(innerCard)
			step.Cost += cost.JoinCost(op, pgo, pgi, params)
			c.Total += step.Cost
		default:
			return nil, fmt.Errorf("plan: unknown metric %v", spec.Metric)
		}

		curCard = resCard
		c.Steps = append(c.Steps, step)
	}
	c.FinalCard = curCard
	return c, nil
}

// Cost is a convenience wrapper returning only the total cost.
func Cost(q *qopt.Query, p *Plan, spec cost.Spec) (float64, error) {
	c, err := Evaluate(q, p, spec)
	if err != nil {
		return math.NaN(), err
	}
	return c.Total, nil
}

func tablesPresent(tables []int, inSet []bool) bool {
	for _, t := range tables {
		if !inSet[t] {
			return false
		}
	}
	return true
}
