package plan

import (
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

func TestTreeBasics(t *testing.T) {
	tr := Join(Join(Leaf(0), Leaf(1)), Leaf(2))
	if tr.IsLeaf() || !Leaf(3).IsLeaf() {
		t.Error("IsLeaf wrong")
	}
	tables := tr.Tables(nil)
	if len(tables) != 3 || tables[0] != 0 || tables[1] != 1 || tables[2] != 2 {
		t.Errorf("Tables = %v", tables)
	}
	if got := tr.String(); got != "((T0 ⋈ T1) ⋈ T2)" {
		t.Errorf("String = %q", got)
	}
}

func TestTreeValidate(t *testing.T) {
	q := paperQuery()
	good := Join(Join(Leaf(0), Leaf(1)), Leaf(2))
	if err := good.Validate(q); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	for name, tr := range map[string]*Tree{
		"missing":   Join(Leaf(0), Leaf(1)),
		"duplicate": Join(Join(Leaf(0), Leaf(0)), Leaf(2)),
		"unknown":   Join(Join(Leaf(0), Leaf(1)), Leaf(9)),
	} {
		if err := tr.Validate(q); err == nil {
			t.Errorf("%s: invalid tree accepted", name)
		}
	}
}

func TestLeftDeepConversionMatchesPlanCost(t *testing.T) {
	q := paperQuery()
	p := &Plan{Order: []int{0, 1, 2}}
	tr := p.LeftDeep()
	if tr.String() != "((T0 ⋈ T1) ⋈ T2)" {
		t.Fatalf("LeftDeep = %s", tr)
	}
	for _, spec := range []cost.Spec{cost.CoutSpec(), cost.DefaultSpec()} {
		pc, err := Cost(q, p, spec)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := TreeCost(q, tr, spec)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pc-tc) > 1e-9*(1+pc) {
			t.Errorf("%v: plan cost %g vs tree cost %g", spec.Metric, pc, tc)
		}
	}
}

func TestBushyTreeCoutHandComputed(t *testing.T) {
	// Four tables, no predicates: ((T0 ⋈ T1) ⋈ (T2 ⋈ T3)).
	q := &qopt.Query{
		Tables: []qopt.Table{{Card: 10}, {Card: 20}, {Card: 5}, {Card: 8}},
	}
	tr := Join(Join(Leaf(0), Leaf(1)), Join(Leaf(2), Leaf(3)))
	// Intermediates: 200 and 40; root excluded → C_out = 240.
	c, err := TreeCost(q, tr, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c != 240 {
		t.Errorf("Cout = %g, want 240", c)
	}
}

func TestBushyTreeWithCorrelationGroups(t *testing.T) {
	q := paperQuery()
	q.Predicates = append(q.Predicates, qopt.Predicate{Tables: []int{1, 2}, Sel: 0.1})
	q.Correlated = []qopt.CorrelatedGroup{{Predicates: []int{0, 1}, CorrectionSel: 5}}
	tr := Join(Join(Leaf(0), Leaf(1)), Leaf(2))
	// Root card must match the left-deep coster's FinalCard.
	eval, err := Evaluate(q, &Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := subsetCard(q, tr); math.Abs(got-eval.FinalCard) > 1e-9*eval.FinalCard {
		t.Errorf("subsetCard = %g, want %g", got, eval.FinalCard)
	}
}

func TestEmptyPlanLeftDeep(t *testing.T) {
	if (&Plan{}).LeftDeep() != nil {
		t.Error("empty plan should convert to nil tree")
	}
}
