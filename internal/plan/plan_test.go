package plan

import (
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// paperQuery is the running example of the paper: R ⋈ S ⋈ T with
// cardinalities 10 / 1000 / 100 and one predicate R–S of selectivity 0.1.
func paperQuery() *qopt.Query {
	return &qopt.Query{
		Tables: []qopt.Table{
			{Name: "R", Card: 10},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 100},
		},
		Predicates: []qopt.Predicate{
			{Name: "p", Tables: []int{0, 1}, Sel: 0.1},
		},
	}
}

func TestValidate(t *testing.T) {
	q := paperQuery()
	good := &Plan{Order: []int{0, 1, 2}}
	if err := good.Validate(q); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	for name, p := range map[string]*Plan{
		"short":     {Order: []int{0, 1}},
		"dup":       {Order: []int{0, 0, 1}},
		"unknown":   {Order: []int{0, 1, 7}},
		"operators": {Order: []int{0, 1, 2}, Operators: []cost.Operator{cost.HashJoin}},
	} {
		if err := p.Validate(q); err == nil {
			t.Errorf("%s: invalid plan accepted", name)
		}
	}
}

func TestCoutOfPaperExample(t *testing.T) {
	q := paperQuery()
	spec := cost.CoutSpec()

	// (R ⋈ S) ⋈ T: first result 10·1000·0.1 = 1000; final excluded.
	c1, err := Cost(q, &Plan{Order: []int{0, 1, 2}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != 1000 {
		t.Errorf("Cout(RS,T) = %g, want 1000", c1)
	}
	// (S ⋈ T) ⋈ R: first result 1000·100 = 100000 (cross product).
	c2, err := Cost(q, &Plan{Order: []int{1, 2, 0}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 100000 {
		t.Errorf("Cout(ST,R) = %g, want 100000", c2)
	}
}

func TestEvaluateDetails(t *testing.T) {
	q := paperQuery()
	eval, err := Evaluate(q, &Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(eval.Steps) != 2 {
		t.Fatalf("steps = %d", len(eval.Steps))
	}
	s0 := eval.Steps[0]
	if s0.Inner != 1 || s0.OuterCard != 10 || s0.InnerCard != 1000 || s0.ResultCard != 1000 {
		t.Errorf("step 0 = %+v", s0)
	}
	if len(s0.AppliedPreds) != 1 || s0.AppliedPreds[0] != 0 {
		t.Errorf("step 0 applied preds = %v", s0.AppliedPreds)
	}
	s1 := eval.Steps[1]
	if s1.OuterCard != 1000 || s1.InnerCard != 100 || s1.ResultCard != 100000 {
		t.Errorf("step 1 = %+v", s1)
	}
	if eval.FinalCard != 100000 {
		t.Errorf("FinalCard = %g", eval.FinalCard)
	}
}

func TestOperatorCostUsesPages(t *testing.T) {
	q := paperQuery()
	spec := cost.Spec{
		Metric: cost.OperatorCost,
		Op:     cost.HashJoin,
		Params: cost.Params{TupleBytes: 100, PageBytes: 1000},
	}
	// Pages: R=1, S=100, T=10, RS-result=100.
	// Join 0: 3·(1+100) = 303. Join 1: 3·(100+10) = 330. Total 633.
	c, err := Cost(q, &Plan{Order: []int{0, 1, 2}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c != 633 {
		t.Errorf("hash cost = %g, want 633", c)
	}
}

func TestPerJoinOperators(t *testing.T) {
	q := paperQuery()
	spec := cost.Spec{
		Metric: cost.OperatorCost,
		Op:     cost.HashJoin,
		Params: cost.Params{TupleBytes: 100, PageBytes: 1000, BufferPages: 10},
	}
	p := &Plan{
		Order:     []int{0, 1, 2},
		Operators: []cost.Operator{cost.BlockNestedLoopJoin, cost.HashJoin},
	}
	// Join 0 BNL: pgo=1 → 1 block; 1 + 1·100 = 101. Join 1 hash: 330.
	c, err := Cost(q, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c != 431 {
		t.Errorf("mixed-operator cost = %g, want 431", c)
	}
}

func TestNaryPredicateAppliedLate(t *testing.T) {
	q := paperQuery()
	q.Predicates = append(q.Predicates, qopt.Predicate{
		Name: "tri", Tables: []int{0, 1, 2}, Sel: 0.5,
	})
	eval, err := Evaluate(q, &Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Ternary predicate applies only at the last join.
	if len(eval.Steps[0].AppliedPreds) != 1 {
		t.Errorf("step 0 preds = %v", eval.Steps[0].AppliedPreds)
	}
	if len(eval.Steps[1].AppliedPreds) != 1 || eval.Steps[1].AppliedPreds[0] != 1 {
		t.Errorf("step 1 preds = %v", eval.Steps[1].AppliedPreds)
	}
	if eval.FinalCard != 50000 {
		t.Errorf("FinalCard = %g, want 50000", eval.FinalCard)
	}
}

func TestCorrelatedGroupCorrection(t *testing.T) {
	q := paperQuery()
	q.Predicates = append(q.Predicates, qopt.Predicate{
		Name: "q", Tables: []int{1, 2}, Sel: 0.1,
	})
	q.Correlated = []qopt.CorrelatedGroup{
		{Predicates: []int{0, 1}, CorrectionSel: 5},
	}
	eval, err := Evaluate(q, &Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Both predicates complete at join 1: 1000·100·0.1·5 = 50000.
	if eval.FinalCard != 50000 {
		t.Errorf("FinalCard = %g, want 50000", eval.FinalCard)
	}
	// Intermediate (join 0) unchanged: group incomplete there.
	if eval.Steps[0].ResultCard != 1000 {
		t.Errorf("step 0 card = %g, want 1000", eval.Steps[0].ResultCard)
	}
}

func TestExpensivePredicateCost(t *testing.T) {
	q := paperQuery()
	q.Predicates[0].EvalCostPerTuple = 2
	eval, err := Evaluate(q, &Plan{Order: []int{0, 1, 2}}, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Predicate evaluated at join 0 on outer cardinality 10 → cost 20.
	if eval.Steps[0].Cost != 20 {
		t.Errorf("eval cost = %g, want 20", eval.Steps[0].Cost)
	}
}

func TestPlanString(t *testing.T) {
	p := &Plan{Order: []int{0, 2, 1}}
	want := "((T0 ⋈ T2) ⋈ T1)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (&Plan{}).String() != "()" {
		t.Error("empty plan string")
	}
}

func TestCostOfInvalidPlanIsNaN(t *testing.T) {
	q := paperQuery()
	c, err := Cost(q, &Plan{Order: []int{0}}, cost.CoutSpec())
	if err == nil {
		t.Fatal("expected error")
	}
	if !math.IsNaN(c) {
		t.Errorf("cost = %g, want NaN", c)
	}
}

func TestOrderIndependenceOfFinalCard(t *testing.T) {
	q := paperQuery()
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {1, 2, 0}}
	var want float64
	for i, ord := range orders {
		eval, err := Evaluate(q, &Plan{Order: ord}, cost.CoutSpec())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = eval.FinalCard
		} else if math.Abs(eval.FinalCard-want) > 1e-9*want {
			t.Errorf("order %v: final card %g, want %g", ord, eval.FinalCard, want)
		}
	}
}
