package plan

import (
	"fmt"
	"strings"

	"milpjoin/internal/cost"
	"milpjoin/internal/qopt"
)

// Tree is a bushy join tree: a leaf scans one table, an inner node joins
// the results of its children. Left-deep plans are the special case where
// every right child is a leaf; bushy trees are the wider space the paper
// leaves to future work and are provided here as a baseline for measuring
// the cost of the left-deep restriction.
type Tree struct {
	// Table is the scanned table at a leaf (children nil).
	Table int
	// Left and Right are the join inputs at an inner node.
	Left, Right *Tree
}

// Leaf constructs a scan node.
func Leaf(table int) *Tree { return &Tree{Table: table} }

// Join constructs an inner node.
func Join(left, right *Tree) *Tree { return &Tree{Left: left, Right: right} }

// IsLeaf reports whether t scans a base table.
func (t *Tree) IsLeaf() bool { return t.Left == nil && t.Right == nil }

// Tables appends all table indices under t.
func (t *Tree) Tables(out []int) []int {
	if t.IsLeaf() {
		return append(out, t.Table)
	}
	return t.Right.Tables(t.Left.Tables(out))
}

// String renders the tree, e.g. "((T0 ⋈ T1) ⋈ (T2 ⋈ T3))".
func (t *Tree) String() string {
	var sb strings.Builder
	t.render(&sb)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder) {
	if t.IsLeaf() {
		fmt.Fprintf(sb, "T%d", t.Table)
		return
	}
	sb.WriteString("(")
	t.Left.render(sb)
	sb.WriteString(" ⋈ ")
	t.Right.render(sb)
	sb.WriteString(")")
}

// Validate checks that t joins each of the query's tables exactly once.
func (t *Tree) Validate(q *qopt.Query) error {
	tables := t.Tables(nil)
	if len(tables) != q.NumTables() {
		return fmt.Errorf("plan: tree joins %d tables, query has %d", len(tables), q.NumTables())
	}
	seen := make([]bool, q.NumTables())
	for _, tb := range tables {
		if tb < 0 || tb >= q.NumTables() {
			return fmt.Errorf("plan: tree references unknown table %d", tb)
		}
		if seen[tb] {
			return fmt.Errorf("plan: tree joins table %d twice", tb)
		}
		seen[tb] = true
	}
	return nil
}

// LeftDeep converts a left-deep plan into the equivalent tree.
func (p *Plan) LeftDeep() *Tree {
	if len(p.Order) == 0 {
		return nil
	}
	t := Leaf(p.Order[0])
	for _, tb := range p.Order[1:] {
		t = Join(t, Leaf(tb))
	}
	return t
}

// TreeCost prices a bushy tree exactly under spec: cardinalities are
// products of table cardinalities and applicable predicate selectivities
// (with correlation corrections); C_out sums every non-root join result;
// OperatorCost prices each join with the spec's operator on both operand
// page counts.
func TreeCost(q *qopt.Query, t *Tree, spec cost.Spec) (float64, error) {
	if err := t.Validate(q); err != nil {
		return 0, err
	}
	params := spec.Params.WithDefaults()
	var total float64
	var walk func(node *Tree, isRoot bool) (card float64, err error)
	walk = func(node *Tree, isRoot bool) (float64, error) {
		if node.IsLeaf() {
			return q.Tables[node.Table].Card, nil
		}
		lc, err := walk(node.Left, false)
		if err != nil {
			return 0, err
		}
		rc, err := walk(node.Right, false)
		if err != nil {
			return 0, err
		}
		card := subsetCard(q, node)
		switch spec.Metric {
		case cost.Cout:
			if !isRoot {
				total += card
			}
		case cost.OperatorCost:
			total += cost.JoinCost(spec.Op, params.Pages(lc), params.Pages(rc), params)
		default:
			return 0, fmt.Errorf("plan: unknown metric %v", spec.Metric)
		}
		return card, nil
	}
	if _, err := walk(t, true); err != nil {
		return 0, err
	}
	return total, nil
}

// subsetCard computes the exact cardinality of the join of all tables
// under node.
func subsetCard(q *qopt.Query, node *Tree) float64 {
	return SubsetCard(q, node.Tables(nil))
}

// SubsetCard computes the estimated cardinality of the join of a table
// subset: the product of table cardinalities, all applicable predicate
// selectivities, and complete correlation-group corrections. It is the
// per-node estimate the streaming executor compares measured join sizes
// against.
func SubsetCard(q *qopt.Query, tables []int) float64 {
	present := map[int]bool{}
	for _, tb := range tables {
		present[tb] = true
	}
	card := 1.0
	for tb := range present {
		card *= q.Tables[tb].Card
	}
	applied := make([]bool, len(q.Predicates))
	for pi, p := range q.Predicates {
		ok := true
		for _, tb := range p.Tables {
			if !present[tb] {
				ok = false
				break
			}
		}
		if ok {
			applied[pi] = true
			card *= p.Sel
		}
	}
	for _, g := range q.Correlated {
		all := true
		for _, pi := range g.Predicates {
			if !applied[pi] {
				all = false
				break
			}
		}
		if all {
			card *= g.CorrectionSel
		}
	}
	return card
}
