// Package portfolio provides the shared incumbent bus for racing several
// join-ordering strategies on one query: members publish every plan they
// find with its exact cost, the bus keeps the global best, and subscribers
// (the MILP branch-and-bound injection feed, primarily) receive improving
// plans with latest-wins semantics — a slow consumer never blocks a
// publisher, it just skips straight to the newest incumbent. Strategies
// with proven lower bounds publish those too, so the race can report a
// portfolio-wide optimality gap.
package portfolio

import (
	"math"
	"sync"

	"milpjoin/internal/plan"
)

// Bus is the shared incumbent state of one strategy race. The zero value
// is not ready; use NewBus.
type Bus struct {
	mu        sync.Mutex
	closed    bool
	bestPlan  *plan.Plan
	bestCost  float64
	bestFrom  string
	bound     float64
	boundFrom string
	subs      []*subscriber
	published int
	improved  int
}

type subscriber struct {
	skip string // member name whose publications are not echoed back
	ch   chan *plan.Plan
}

// NewBus returns an empty bus: no incumbent (+Inf) and no bound (-Inf).
func NewBus() *Bus {
	return &Bus{bestCost: math.Inf(1), bound: math.Inf(-1)}
}

// Publish offers a plan found by member from at the given exact cost. It
// returns true when the plan strictly improves the portfolio incumbent, in
// which case every subscriber (except from's own feed) receives it. Plans
// must be treated as immutable after publication. Publishing on a closed
// bus is a no-op.
func (b *Bus) Publish(from string, p *plan.Plan, cost float64) bool {
	if p == nil || math.IsNaN(cost) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.published++
	if b.closed || cost >= b.bestCost {
		return false
	}
	b.bestPlan, b.bestCost, b.bestFrom = p, cost, from
	b.improved++
	for _, s := range b.subs {
		if s.skip == from {
			continue
		}
		// Latest-wins: drop the stale plan (if any) and slot in the new
		// incumbent. The second send can only fail if a concurrent
		// receive-and-refill raced us, in which case the channel already
		// holds a fresher-or-equal plan.
		select {
		case s.ch <- p:
		default:
			select {
			case <-s.ch:
			default:
			}
			select {
			case s.ch <- p:
			default:
			}
		}
	}
	return true
}

// PublishBound offers a proven lower bound on the optimal plan cost from
// member from, keeping the tightest (largest) bound seen.
func (b *Bus) PublishBound(from string, bound float64) {
	if math.IsNaN(bound) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || bound <= b.bound {
		return
	}
	b.bound, b.boundFrom = bound, from
}

// Subscribe registers an incumbent feed for member skip: improving plans
// published by any other member arrive on the returned channel with
// latest-wins semantics (capacity one; stale plans are replaced, never
// queued). The channel is closed by Close.
func (b *Bus) Subscribe(skip string) <-chan *plan.Plan {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &subscriber{skip: skip, ch: make(chan *plan.Plan, 1)}
	if b.closed {
		close(s.ch)
		return s.ch
	}
	b.subs = append(b.subs, s)
	// Hand a late subscriber the current incumbent so it never races
	// blind against members that already published.
	if b.bestPlan != nil && b.bestFrom != skip {
		s.ch <- b.bestPlan
	}
	return s.ch
}

// Best returns the portfolio incumbent: plan, exact cost, and the member
// that found it (nil, +Inf, "" while none).
func (b *Bus) Best() (*plan.Plan, float64, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bestPlan, b.bestCost, b.bestFrom
}

// BestBound returns the tightest proven lower bound and its member (-Inf,
// "" while none).
func (b *Bus) BestBound() (float64, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bound, b.boundFrom
}

// BestCost returns the incumbent cost alone; it is the cutoff hook shape
// pruning searches (dp.ConvOptions.Cutoff) expect.
func (b *Bus) BestCost() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bestCost
}

// Gap is the relative gap between the incumbent and the proven bound
// (+Inf with no incumbent, 0 with no positive gap).
func (b *Bus) Gap() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if math.IsInf(b.bestCost, 1) {
		return math.Inf(1)
	}
	d := b.bestCost - b.bound
	if d <= 0 || math.IsInf(b.bound, -1) {
		if math.IsInf(b.bound, -1) {
			return math.Inf(1)
		}
		return 0
	}
	return d / math.Max(1e-9, math.Abs(b.bestCost))
}

// Stats reports how many plans were published and how many improved the
// incumbent.
func (b *Bus) Stats() (published, improved int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.improved
}

// Close closes every subscriber channel and rejects further publications.
// Safe to call once the race has a winner; idempotent.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, s := range b.subs {
		close(s.ch)
	}
	b.subs = nil
}
