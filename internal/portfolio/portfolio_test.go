package portfolio

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"milpjoin/internal/plan"
)

func p(order ...int) *plan.Plan { return &plan.Plan{Order: order} }

func TestBusKeepsStrictlyBestIncumbent(t *testing.T) {
	b := NewBus()
	if _, c, _ := b.Best(); !math.IsInf(c, 1) {
		t.Fatalf("empty bus cost %g, want +Inf", c)
	}
	if !b.Publish("a", p(0, 1), 100) {
		t.Fatal("first publication must improve")
	}
	if b.Publish("b", p(1, 0), 100) {
		t.Fatal("equal cost must not improve")
	}
	if b.Publish("b", p(1, 0), 150) {
		t.Fatal("worse cost must not improve")
	}
	if !b.Publish("b", p(1, 0), 50) {
		t.Fatal("cheaper plan must improve")
	}
	pl, c, from := b.Best()
	if c != 50 || from != "b" || pl == nil || pl.Order[0] != 1 {
		t.Fatalf("best = (%v, %g, %q)", pl, c, from)
	}
	pub, imp := b.Stats()
	if pub != 4 || imp != 2 {
		t.Fatalf("stats = (%d, %d), want (4, 2)", pub, imp)
	}
}

func TestBusSubscriberSkipsOwnPublications(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe("milp")
	b.Publish("milp", p(0, 1), 10)
	select {
	case got := <-ch:
		t.Fatalf("subscriber received its own publication %v", got)
	default:
	}
	b.Publish("greedy", p(1, 0), 5)
	select {
	case got := <-ch:
		if got.Order[0] != 1 {
			t.Fatalf("wrong plan %v", got)
		}
	default:
		t.Fatal("peer publication not delivered")
	}
}

func TestBusLatestWins(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe("milp")
	b.Publish("a", p(0, 1, 2), 30)
	b.Publish("a", p(2, 1, 0), 20) // not consumed yet: replaces, not queues
	got, ok := <-ch
	if !ok || got.Order[0] != 2 {
		t.Fatalf("got %v, want the latest plan", got)
	}
	select {
	case stale := <-ch:
		t.Fatalf("stale plan %v still queued", stale)
	default:
	}
}

func TestBusLateSubscriberSeesIncumbent(t *testing.T) {
	b := NewBus()
	b.Publish("greedy", p(0, 1), 7)
	ch := b.Subscribe("milp")
	select {
	case got := <-ch:
		if got == nil {
			t.Fatal("nil incumbent")
		}
	default:
		t.Fatal("late subscriber did not receive the current incumbent")
	}
	// A late subscriber whose own plan is the incumbent gets nothing.
	own := b.Subscribe("greedy")
	select {
	case got := <-own:
		t.Fatalf("own incumbent echoed back: %v", got)
	default:
	}
}

func TestBusBoundAndGap(t *testing.T) {
	b := NewBus()
	if g := b.Gap(); !math.IsInf(g, 1) {
		t.Fatalf("empty gap %g, want +Inf", g)
	}
	b.Publish("a", p(0, 1), 100)
	b.PublishBound("dp", 80)
	b.PublishBound("dp", 60) // looser: ignored
	bound, from := b.BestBound()
	if bound != 80 || from != "dp" {
		t.Fatalf("bound = (%g, %q), want (80, dp)", bound, from)
	}
	if g := b.Gap(); math.Abs(g-0.2) > 1e-12 {
		t.Fatalf("gap = %g, want 0.2", g)
	}
	b.PublishBound("dp", 100)
	if g := b.Gap(); g != 0 {
		t.Fatalf("closed gap = %g, want 0", g)
	}
}

func TestBusCloseIdempotentAndTerminal(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe("milp")
	b.Close()
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel not closed")
	}
	if b.Publish("a", p(0, 1), 1) {
		t.Fatal("publish on a closed bus succeeded")
	}
	late := b.Subscribe("x")
	if _, ok := <-late; ok {
		t.Fatal("subscription after close returned an open channel")
	}
}

// TestBusConcurrentPublishers hammers the bus from several goroutines
// (run under -race) and checks the final incumbent is the global
// minimum and improvements were counted monotonically.
func TestBusConcurrentPublishers(t *testing.T) {
	b := NewBus()
	ch := b.Subscribe("consumer")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range ch {
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g)
			for i := 0; i < 200; i++ {
				cost := float64((g*211+i*97)%1000) + 1
				b.Publish(name, p(0, 1, 2), cost)
			}
		}(g)
	}
	wg.Wait()
	if _, c, _ := b.Best(); c != 1 {
		t.Fatalf("final incumbent %g, want the global minimum 1", c)
	}
	b.Close()
	<-done
}
