// Package qopt defines the query optimization problem model from Section 3
// of the paper: a query is a set of tables to join plus predicates that
// connect them, with table cardinalities and predicate selectivities.
// Extensions cover n-ary predicates, correlated predicate groups, expensive
// predicates, and per-table columns for the projection extension.
package qopt

import (
	"errors"
	"fmt"
	"math"
)

// Table is a base relation.
type Table struct {
	Name string `json:"name"`
	// Card is the table cardinality; must be ≥ 1.
	Card float64 `json:"card"`
	// Sorted marks tables whose data is stored sorted on the join key,
	// providing the "interesting order" property of Section 5.4 for free.
	Sorted bool `json:"sorted,omitempty"`
}

// Column belongs to a table and carries a per-tuple byte size; used by the
// projection extension (Section 5.2).
type Column struct {
	Name string `json:"name"`
	// Table is the index of the owning table in Query.Tables.
	Table int `json:"table"`
	// Bytes is the per-tuple width of the column.
	Bytes float64 `json:"bytes"`
	// Required marks columns that must be present in the final result.
	Required bool `json:"required,omitempty"`
}

// Predicate is a join/filter predicate over one or more tables. Binary
// predicates (two tables) form the join graph of the basic model; unary and
// n-ary predicates are the Section 5.1 extension.
type Predicate struct {
	Name string `json:"name"`
	// Tables lists the indices of all referenced tables.
	Tables []int `json:"tables"`
	// Sel is the selectivity in (0, 1].
	Sel float64 `json:"sel"`
	// EvalCostPerTuple is the per-tuple evaluation cost for the
	// expensive-predicates extension; 0 means evaluation is free.
	EvalCostPerTuple float64 `json:"evalCostPerTuple,omitempty"`
	// Columns optionally lists the columns (indices into Query.Columns)
	// the predicate reads; used by the projection extension to keep
	// required columns alive until the predicate is evaluated.
	Columns []int `json:"columns,omitempty"`
}

// IsBinary reports whether the predicate references exactly two tables.
func (p *Predicate) IsBinary() bool { return len(p.Tables) == 2 }

// CorrelatedGroup marks a set of predicates whose joint selectivity
// deviates from the independence assumption (Section 5.1). CorrectionSel
// is the factor g with Sel(g)·Π Sel(p) giving the true joint selectivity.
type CorrelatedGroup struct {
	// Predicates indexes into Query.Predicates.
	Predicates []int `json:"predicates"`
	// CorrectionSel is the correction factor; may exceed 1.
	CorrectionSel float64 `json:"correctionSel"`
}

// Query is a join query: tables, predicates, and optional extension data.
type Query struct {
	Tables     []Table           `json:"tables"`
	Predicates []Predicate       `json:"predicates"`
	Columns    []Column          `json:"columns,omitempty"`
	Correlated []CorrelatedGroup `json:"correlated,omitempty"`
}

// NumTables returns the number of tables to join.
func (q *Query) NumTables() int { return len(q.Tables) }

// NumJoins returns the number of binary joins a complete plan needs.
func (q *Query) NumJoins() int { return len(q.Tables) - 1 }

// Validate checks internal consistency.
func (q *Query) Validate() error {
	if len(q.Tables) < 2 {
		return errors.New("qopt: query needs at least two tables")
	}
	for i, t := range q.Tables {
		if t.Card < 1 || math.IsNaN(t.Card) || math.IsInf(t.Card, 0) {
			return fmt.Errorf("qopt: table %d (%s) has cardinality %g, want ≥ 1", i, t.Name, t.Card)
		}
	}
	for i, p := range q.Predicates {
		if len(p.Tables) == 0 {
			return fmt.Errorf("qopt: predicate %d references no tables", i)
		}
		seen := map[int]bool{}
		for _, ti := range p.Tables {
			if ti < 0 || ti >= len(q.Tables) {
				return fmt.Errorf("qopt: predicate %d references unknown table %d", i, ti)
			}
			if seen[ti] {
				return fmt.Errorf("qopt: predicate %d references table %d twice", i, ti)
			}
			seen[ti] = true
		}
		if !(p.Sel > 0 && p.Sel <= 1) {
			return fmt.Errorf("qopt: predicate %d has selectivity %g outside (0, 1]", i, p.Sel)
		}
		if p.EvalCostPerTuple < 0 {
			return fmt.Errorf("qopt: predicate %d has negative evaluation cost", i)
		}
		for _, ci := range p.Columns {
			if ci < 0 || ci >= len(q.Columns) {
				return fmt.Errorf("qopt: predicate %d references unknown column %d", i, ci)
			}
		}
	}
	for i, c := range q.Columns {
		if c.Table < 0 || c.Table >= len(q.Tables) {
			return fmt.Errorf("qopt: column %d references unknown table %d", i, c.Table)
		}
		if c.Bytes <= 0 {
			return fmt.Errorf("qopt: column %d has byte size %g", i, c.Bytes)
		}
	}
	for i, g := range q.Correlated {
		if len(g.Predicates) < 2 {
			return fmt.Errorf("qopt: correlated group %d has fewer than two predicates", i)
		}
		for _, pi := range g.Predicates {
			if pi < 0 || pi >= len(q.Predicates) {
				return fmt.Errorf("qopt: correlated group %d references unknown predicate %d", i, pi)
			}
		}
		if g.CorrectionSel <= 0 {
			return fmt.Errorf("qopt: correlated group %d has correction factor %g", i, g.CorrectionSel)
		}
	}
	return nil
}

// TableName returns the name of table i (or a synthetic one).
func (q *Query) TableName(i int) string {
	if n := q.Tables[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("T%d", i)
}

// LogCard returns log10 of the cardinality of table i.
func (q *Query) LogCard(i int) float64 { return math.Log10(q.Tables[i].Card) }

// LogSel returns log10 of the selectivity of predicate p (≤ 0).
func (q *Query) LogSel(p int) float64 { return math.Log10(q.Predicates[p].Sel) }

// MaxLogCard returns log10 of the largest possible intermediate result: the
// full cross product of all tables with no predicates applied.
func (q *Query) MaxLogCard() float64 {
	var s float64
	for i := range q.Tables {
		s += q.LogCard(i)
	}
	return s
}

// FinalLogCard returns log10 of the final result cardinality: all tables
// joined, all predicates (and correlation corrections) applied.
func (q *Query) FinalLogCard() float64 {
	s := q.MaxLogCard()
	for i := range q.Predicates {
		s += q.LogSel(i)
	}
	for _, g := range q.Correlated {
		s += math.Log10(g.CorrectionSel)
	}
	return s
}

// PredicatesApplicable returns the indices of predicates whose referenced
// tables all appear in the given table set.
func (q *Query) PredicatesApplicable(tables map[int]bool) []int {
	var out []int
	for i, p := range q.Predicates {
		ok := true
		for _, t := range p.Tables {
			if !tables[t] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// JoinGraphEdges returns the binary-predicate edges (pairs of table
// indices) of the join graph.
func (q *Query) JoinGraphEdges() [][2]int {
	var edges [][2]int
	for _, p := range q.Predicates {
		if p.IsBinary() {
			edges = append(edges, [2]int{p.Tables[0], p.Tables[1]})
		}
	}
	return edges
}
