package qopt

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func validQuery() *Query {
	return &Query{
		Tables: []Table{
			{Name: "R", Card: 10},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 100},
		},
		Predicates: []Predicate{
			{Name: "p0", Tables: []int{0, 1}, Sel: 0.1},
		},
	}
}

func TestValidQuery(t *testing.T) {
	if err := validQuery().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Query){
		"one table":           func(q *Query) { q.Tables = q.Tables[:1] },
		"zero cardinality":    func(q *Query) { q.Tables[0].Card = 0 },
		"nan cardinality":     func(q *Query) { q.Tables[0].Card = math.NaN() },
		"empty predicate":     func(q *Query) { q.Predicates[0].Tables = nil },
		"unknown table":       func(q *Query) { q.Predicates[0].Tables = []int{0, 9} },
		"duplicate table":     func(q *Query) { q.Predicates[0].Tables = []int{1, 1} },
		"zero selectivity":    func(q *Query) { q.Predicates[0].Sel = 0 },
		"selectivity above 1": func(q *Query) { q.Predicates[0].Sel = 1.5 },
		"negative eval cost":  func(q *Query) { q.Predicates[0].EvalCostPerTuple = -1 },
		"bad column table":    func(q *Query) { q.Columns = []Column{{Table: 9, Bytes: 4}} },
		"bad column bytes":    func(q *Query) { q.Columns = []Column{{Table: 0, Bytes: 0}} },
		"tiny group":          func(q *Query) { q.Correlated = []CorrelatedGroup{{Predicates: []int{0}, CorrectionSel: 2}} },
		"group unknown pred": func(q *Query) {
			q.Correlated = []CorrelatedGroup{{Predicates: []int{0, 5}, CorrectionSel: 2}}
		},
		"group bad correction": func(q *Query) {
			q.Predicates = append(q.Predicates, Predicate{Tables: []int{1, 2}, Sel: 0.5})
			q.Correlated = []CorrelatedGroup{{Predicates: []int{0, 1}, CorrectionSel: 0}}
		},
	}
	for name, mutate := range cases {
		q := validQuery()
		mutate(q)
		if err := q.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestCounts(t *testing.T) {
	q := validQuery()
	if q.NumTables() != 3 || q.NumJoins() != 2 {
		t.Errorf("NumTables/NumJoins = %d/%d", q.NumTables(), q.NumJoins())
	}
}

func TestLogHelpers(t *testing.T) {
	q := validQuery()
	if got := q.LogCard(0); got != 1 {
		t.Errorf("LogCard(R) = %g, want 1", got)
	}
	if got := q.LogSel(0); math.Abs(got-(-1)) > 1e-12 {
		t.Errorf("LogSel(p0) = %g, want -1", got)
	}
	// MaxLogCard = 1 + 3 + 2 = 6; FinalLogCard = 6 − 1 = 5.
	if got := q.MaxLogCard(); math.Abs(got-6) > 1e-12 {
		t.Errorf("MaxLogCard = %g, want 6", got)
	}
	if got := q.FinalLogCard(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FinalLogCard = %g, want 5", got)
	}
}

func TestFinalLogCardWithCorrelation(t *testing.T) {
	q := validQuery()
	q.Predicates = append(q.Predicates, Predicate{Tables: []int{1, 2}, Sel: 0.1})
	q.Correlated = []CorrelatedGroup{{Predicates: []int{0, 1}, CorrectionSel: 10}}
	// 6 − 1 − 1 + 1 = 5.
	if got := q.FinalLogCard(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FinalLogCard = %g, want 5", got)
	}
}

func TestPredicatesApplicable(t *testing.T) {
	q := validQuery()
	q.Predicates = append(q.Predicates, Predicate{Tables: []int{1, 2}, Sel: 0.5})
	got := q.PredicatesApplicable(map[int]bool{0: true, 1: true})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("applicable = %v, want [0]", got)
	}
	got = q.PredicatesApplicable(map[int]bool{0: true, 1: true, 2: true})
	if len(got) != 2 {
		t.Errorf("applicable = %v, want both", got)
	}
}

func TestJoinGraphEdges(t *testing.T) {
	q := validQuery()
	q.Predicates = append(q.Predicates, Predicate{Tables: []int{0, 1, 2}, Sel: 0.5}) // ternary: excluded
	edges := q.JoinGraphEdges()
	if len(edges) != 1 || edges[0] != [2]int{0, 1} {
		t.Errorf("edges = %v", edges)
	}
}

func TestTableName(t *testing.T) {
	q := validQuery()
	if q.TableName(0) != "R" {
		t.Errorf("TableName(0) = %q", q.TableName(0))
	}
	q.Tables[0].Name = ""
	if q.TableName(0) != "T0" {
		t.Errorf("unnamed TableName(0) = %q", q.TableName(0))
	}
}

func TestIsBinary(t *testing.T) {
	p := Predicate{Tables: []int{0, 1}}
	if !p.IsBinary() {
		t.Error("binary predicate not recognised")
	}
	u := Predicate{Tables: []int{0}}
	if u.IsBinary() {
		t.Error("unary predicate claimed binary")
	}
}

func TestQueryJSONRoundTrip(t *testing.T) {
	q := validQuery()
	q.Tables[0].Sorted = true
	q.Columns = []Column{{Name: "R.a", Table: 0, Bytes: 8, Required: true}}
	q.Predicates[0].Columns = []int{0}
	q.Predicates[0].EvalCostPerTuple = 2.5
	q.Correlated = []CorrelatedGroup{}

	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var back Query
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.Tables[0].Name != "R" || !back.Tables[0].Sorted || back.Tables[1].Card != 1000 {
		t.Errorf("tables lost: %+v", back.Tables)
	}
	if back.Predicates[0].Sel != 0.1 || back.Predicates[0].EvalCostPerTuple != 2.5 {
		t.Errorf("predicates lost: %+v", back.Predicates)
	}
	if len(back.Columns) != 1 || !back.Columns[0].Required {
		t.Errorf("columns lost: %+v", back.Columns)
	}
	// Lowercase keys are the wire format.
	if !strings.Contains(string(data), `"card":1000`) || !strings.Contains(string(data), `"sel":0.1`) {
		t.Errorf("wire format unexpected: %s", data)
	}
}
