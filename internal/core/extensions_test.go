package core

import (
	"context"
	"math"
	"testing"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

func operatorOpts() Options {
	return Options{
		Metric:          cost.OperatorCost,
		Op:              cost.HashJoin,
		Precision:       PrecisionMedium,
		CardCap:         1e8,
		ChooseOperators: true,
	}
}

func TestOperatorSelectionDecodesAndBeatsFixed(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := workload.Generate(workload.Star, 4, seed, workload.Config{})
		res, err := Optimize(context.Background(), q, operatorOpts(), solver.Params{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Solver.Status != solver.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, res.Solver.Status)
		}
		if res.Plan.Operators == nil || len(res.Plan.Operators) != q.NumJoins() {
			t.Fatalf("seed %d: no per-join operators decoded", seed)
		}
		// The chosen mix must cost at most the DP optimum over fixed
		// hash joins, within the approximation tolerance.
		_, hashOpt, err := dp.OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := plan.Cost(q, res.Plan, cost.DefaultSpec())
		if err != nil {
			t.Fatal(err)
		}
		limit := hashOpt*operatorOpts().ratio() + 64
		if exact > limit {
			t.Errorf("seed %d: operator-mix plan costs %g, hash optimum %g", seed, exact, hashOpt)
		}
	}
}

func TestOperatorSelectionMatchesDPWithOperators(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 1, workload.Config{})
	res, err := Optimize(context.Background(), q, operatorOpts(), solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	_, optCost, err := dp.OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), dp.Options{ChooseOperators: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactCost > optCost*operatorOpts().ratio()+64 {
		t.Errorf("MILP operator plan %g vs DP operator optimum %g", res.ExactCost, optCost)
	}
	if res.ExactCost < optCost-1e-6*(1+optCost) {
		t.Errorf("MILP exact cost %g below DP optimum %g", res.ExactCost, optCost)
	}
}

func TestInterestingOrdersEncodeAndSolve(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 2, workload.Config{})
	for i := range q.Tables {
		q.Tables[i].Sorted = true
	}
	opts := operatorOpts()
	opts.InterestingOrders = true
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	// Sortedness variables must be consistent with the selected
	// operators: ohp_j = 1 exactly when join j−1 was a sort-merge
	// variant (or, for j = 0, the first table is sorted).
	enc := res.Encoding
	sol := res.Solver.Solution
	for j := 1; j < enc.J; j++ {
		smj := sol.Value(enc.JOS[j-1][1]) > 0.5
		pre := sol.Value(enc.JOS[j-1][3]) > 0.5
		sorted := sol.Value(enc.OHP[j]) > 0.5
		if sorted != (smj || pre) {
			t.Errorf("join %d: ohp=%v but smj=%v presorted=%v", j, sorted, smj, pre)
		}
	}
}

func TestInterestingOrdersFavorsSortMergeOnSortedInputs(t *testing.T) {
	// Large sorted tables: merging without sorting is far cheaper than
	// hashing, so the encoder should pick sort-merge variants.
	q := &qopt.Query{
		Tables: []qopt.Table{
			{Name: "A", Card: 50000, Sorted: true},
			{Name: "B", Card: 50000, Sorted: true},
			{Name: "C", Card: 50000, Sorted: true},
		},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 1e-4},
			{Tables: []int{1, 2}, Sel: 1e-4},
		},
	}
	opts := operatorOpts()
	opts.InterestingOrders = true
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	foundSMJ := false
	for _, op := range res.Plan.Operators {
		if op == cost.SortMergeJoin {
			foundSMJ = true
		}
	}
	if !foundSMJ {
		t.Errorf("operators %v: expected a sort-merge join on pre-sorted inputs", res.Plan.Operators)
	}
}

func TestExpensivePredicatesEvaluatedExactlyOnce(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 4, workload.Config{})
	q.Predicates[0].EvalCostPerTuple = 5
	q.Predicates[2].EvalCostPerTuple = 2
	opts := Options{Metric: cost.Cout, Precision: PrecisionMedium, ExpensivePredicates: true, CardCap: 1e9}
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	enc := res.Encoding
	sol := res.Solver.Solution
	for _, pi := range []int{0, 2} {
		total := 0.0
		for j := 0; j < enc.J; j++ {
			if v := enc.PCO[j][pi]; v >= 0 {
				total += sol.Value(v)
			}
		}
		if math.Abs(total-1) > 1e-6 {
			t.Errorf("predicate %d evaluated %g times, want exactly once", pi, total)
		}
	}
}

func TestExpensivePredicateEvaluationCostCounted(t *testing.T) {
	// Identical plans, but one predicate becomes expensive: the MILP
	// objective must grow.
	q := paperQuery()
	cheap, err := Optimize(context.Background(), q, Options{Metric: cost.Cout, Precision: PrecisionHigh, ExpensivePredicates: true}, solver.Params{})
	if err != nil {
		t.Fatal(err)
	}
	q2 := paperQuery()
	q2.Predicates[0].EvalCostPerTuple = 100
	dear, err := Optimize(context.Background(), q2, Options{Metric: cost.Cout, Precision: PrecisionHigh, ExpensivePredicates: true}, solver.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Solver.Status != solver.StatusOptimal || cheap.Solver.Status != solver.StatusOptimal {
		t.Fatalf("statuses %v / %v", cheap.Solver.Status, dear.Solver.Status)
	}
	if dear.MILPObj <= cheap.MILPObj {
		t.Errorf("expensive predicate did not increase objective: %g vs %g", dear.MILPObj, cheap.MILPObj)
	}
}

func projectionQuery() *qopt.Query {
	q := &qopt.Query{
		Tables: []qopt.Table{
			{Name: "R", Card: 100},
			{Name: "S", Card: 2000},
			{Name: "T", Card: 500},
		},
		Predicates: []qopt.Predicate{
			{Tables: []int{0, 1}, Sel: 0.01},
			{Tables: []int{1, 2}, Sel: 0.02},
		},
		Columns: []qopt.Column{
			{Name: "R.key", Table: 0, Bytes: 8, Required: true},
			{Name: "R.fat", Table: 0, Bytes: 200},
			{Name: "S.key", Table: 1, Bytes: 8},
			{Name: "S.out", Table: 1, Bytes: 16, Required: true},
			{Name: "T.key", Table: 2, Bytes: 8},
		},
	}
	q.Predicates[0].Columns = []int{0, 2}
	q.Predicates[1].Columns = []int{2, 4}
	return q
}

func TestProjectionSolvesAndKeepsRequiredColumns(t *testing.T) {
	q := projectionQuery()
	opts := Options{
		Metric:     cost.OperatorCost,
		Op:         cost.HashJoin,
		Precision:  PrecisionMedium,
		CardCap:    1e8,
		Projection: true,
	}
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	cols := res.Encoding.DecodeColumns(res.Solver.Solution)
	if cols == nil {
		t.Fatal("no column decode")
	}
	final := cols[len(cols)-1]
	for l, col := range q.Columns {
		if col.Required && !final[l] {
			t.Errorf("required column %s missing from final result", col.Name)
		}
	}
	// The 200-byte payload column is not required and feeds no
	// predicate: it should be projected out of every intermediate
	// result after (at the latest) the first join.
	for j := 1; j < len(cols); j++ {
		if cols[j][1] {
			t.Errorf("fat column survives into operand %d", j)
		}
	}
}

func TestProjectionKeepsPredicateColumnsAlive(t *testing.T) {
	q := projectionQuery()
	opts := Options{
		Metric:     cost.OperatorCost,
		Op:         cost.HashJoin,
		Precision:  PrecisionMedium,
		CardCap:    1e8,
		Projection: true,
	}
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	enc := res.Encoding
	sol := res.Solver.Solution
	cols := enc.DecodeColumns(sol)
	// Wherever predicate 1 (S.key–T.key) is not yet applied but S is in
	// the operand, S.key must be present.
	for j := 1; j < enc.J; j++ {
		sPresent := sol.Value(enc.TIO[j][1]) > 0.5
		applied := sol.Value(enc.PAO[j][1]) > 0.5
		if sPresent && !applied && !cols[j][2] {
			t.Errorf("join %d: S.key projected out before predicate applied", j)
		}
	}
}

func TestOperatorSelectionWithExpensivePredicates(t *testing.T) {
	// Both Section 5.1 (evaluation cost) and Section 5.3 (operator
	// choice) active in one encoding.
	q := workload.Generate(workload.Chain, 4, 8, workload.Config{})
	q.Predicates[1].EvalCostPerTuple = 3
	opts := operatorOpts()
	opts.ExpensivePredicates = true
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("status %v", res.Solver.Status)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatal(err)
	}
	if res.Plan.Operators == nil {
		t.Fatal("operators missing")
	}
	// The expensive predicate is evaluated exactly once.
	enc, sol := res.Encoding, res.Solver.Solution
	total := 0.0
	for j := 0; j < enc.J; j++ {
		if v := enc.PCO[j][1]; v >= 0 {
			total += sol.Value(v)
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("expensive predicate evaluated %g times", total)
	}
}

func TestCardCapHonored(t *testing.T) {
	q := workload.Generate(workload.Chain, 6, 1, workload.Config{})
	for _, cap := range []float64{1e6, 1e10} {
		enc, err := Encode(q, Options{Metric: cost.Cout, Precision: PrecisionMedium, CardCap: cap})
		if err != nil {
			t.Fatal(err)
		}
		top := enc.Thresholds[len(enc.Thresholds)-1]
		// The ladder covers the cap but stops within one ratio above it.
		if top < cap {
			t.Errorf("cap %g: ladder tops out at %g", cap, top)
		}
		if top > cap*enc.Opts.ratio()*enc.Opts.ratio() {
			t.Errorf("cap %g: ladder overshoots to %g", cap, top)
		}
	}
}
