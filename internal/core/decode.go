package core

import (
	"fmt"

	"milpjoin/internal/cost"
	"milpjoin/internal/milp"
	"milpjoin/internal/plan"
)

// Decode maps a MILP solution back to the left-deep plan it represents.
// When operator selection is enabled, the per-join operators are decoded
// too (the pre-sorted sort-merge variant decodes as SortMergeJoin).
func (e *Encoding) Decode(sol *milp.Solution) (*plan.Plan, error) {
	if sol == nil || len(sol.Values) != e.Model.NumVars() {
		return nil, fmt.Errorf("core: solution does not match the encoding's model")
	}
	n := e.Query.NumTables()
	order := make([]int, n)

	pick := func(vars []milp.Var, what string) (int, error) {
		best, bestVal := -1, 0.5
		for t, v := range vars {
			if val := sol.Value(v); val > bestVal {
				best, bestVal = t, val
			}
		}
		if best < 0 {
			return 0, fmt.Errorf("core: no table selected for %s", what)
		}
		return best, nil
	}

	first, err := pick(e.TIO[0], "outer operand of join 0")
	if err != nil {
		return nil, err
	}
	order[0] = first
	for j := 0; j < e.J; j++ {
		inner, err := pick(e.TII[j], fmt.Sprintf("inner operand of join %d", j))
		if err != nil {
			return nil, err
		}
		order[j+1] = inner
	}

	pl := &plan.Plan{Order: order}
	if e.JOS != nil {
		pl.Operators = make([]cost.Operator, e.J)
		for j := 0; j < e.J; j++ {
			sel := -1
			for i, v := range e.JOS[j] {
				if sol.Value(v) > 0.5 {
					sel = i
					break
				}
			}
			if sel < 0 {
				return nil, fmt.Errorf("core: no operator selected for join %d", j)
			}
			if sel < len(e.ops) {
				pl.Operators[j] = e.ops[sel]
			} else {
				pl.Operators[j] = cost.SortMergeJoin // pre-sorted variant
			}
		}
	}
	if err := pl.Validate(e.Query); err != nil {
		return nil, fmt.Errorf("core: decoded plan invalid: %w", err)
	}
	return pl, nil
}

// CheckPlanRepresentation verifies (for tests) that a solution's auxiliary
// variables are consistent with its join order: the approximated outer
// cardinality co_j must be a lower bound on the exact cardinality and
// within the precision tolerance of it.
func (e *Encoding) CheckPlanRepresentation(sol *milp.Solution) error {
	pl, err := e.Decode(sol)
	if err != nil {
		return err
	}
	eval, err := plan.Evaluate(e.Query, pl, cost.CoutSpec())
	if err != nil {
		return err
	}
	ratio := e.Opts.ratio()
	capVal := e.coMax()
	for j := 1; j < e.J; j++ {
		exact := eval.Steps[j-1].ResultCard // outer operand of join j
		approx := 1.0
		for r, th := range e.Thresholds {
			if sol.Value(e.CTO[j][r]) > 0.5 {
				approx = th
			}
		}
		if approx > exact*(1+1e-6)+1e-6 {
			return fmt.Errorf("core: join %d: approximated cardinality %g exceeds exact %g", j, approx, exact)
		}
		bound := exact / ratio * (1 - 1e-9)
		if exact > capVal {
			bound = capVal / ratio * (1 - 1e-9)
		}
		if approx < bound-1 {
			return fmt.Errorf("core: join %d: approximated cardinality %g below tolerance of exact %g (ratio %g)",
				j, approx, exact, ratio)
		}
	}
	return nil
}
