package core

import (
	"fmt"
	"math"

	"milpjoin/internal/plan"
)

// AssignmentForPlan constructs a full model-space variable assignment that
// represents the given left-deep plan — the encoding-side inverse of
// Decode. It supports the basic encoding (C_out or any fixed operator) and
// the operator-selection / interesting-orders extensions, choosing the
// cheapest applicable operator per join. The projection and expensive-
// predicate encodings return an error: their auxiliary variables are not
// derivable from the join order alone.
//
// The assignment is used as a MIP start: it hands the branch-and-bound
// search an immediate incumbent (for example from the greedy heuristic),
// giving the anytime behaviour a starting point on large queries.
func (e *Encoding) AssignmentForPlan(pl *plan.Plan) ([]float64, error) {
	if err := pl.Validate(e.Query); err != nil {
		return nil, err
	}
	if e.Opts.Projection || e.Opts.ExpensivePredicates {
		return nil, fmt.Errorf("core: MIP start not supported with projection or expensive-predicate variables")
	}
	q := e.Query
	n := q.NumTables()
	vals := make([]float64, e.Model.NumVars())

	vals[e.TIO[0][pl.Order[0]]] = 1
	inSet := make([]bool, n)
	inSet[pl.Order[0]] = true
	for j := 0; j < e.J; j++ {
		vals[e.TII[j][pl.Order[j+1]]] = 1
		if j >= 1 {
			for t := 0; t < n; t++ {
				if inSet[t] {
					vals[e.TIO[j][t]] = 1
				}
			}
		}
		inSet[pl.Order[j+1]] = true
	}

	for j := 0; j < e.J; j++ {
		vals[e.CI[j]] = e.effCard[pl.Order[j+1]]
	}
	if e.CO[0] >= 0 {
		vals[e.CO[0]] = e.effCard[pl.Order[0]]
	}

	// approxCard[j] is the ladder-approximated outer cardinality of join
	// j (exact for join 0), shared by the operator-cost assignments.
	approxCard := make([]float64, e.J)
	approxCard[0] = e.effCard[pl.Order[0]]

	for t := range inSet {
		inSet[t] = false
	}
	inSet[pl.Order[0]] = true
	for j := 1; j < e.J; j++ {
		inSet[pl.Order[j]] = true
		lco := 0.0
		for t := 0; t < n; t++ {
			if inSet[t] {
				lco += e.effLogCard(t)
			}
		}
		for _, pi := range e.binPreds {
			ok := true
			for _, t := range q.Predicates[pi].Tables {
				if !inSet[t] {
					ok = false
					break
				}
			}
			if ok {
				vals[e.PAO[j][pi]] = 1
				lco += q.LogSel(pi)
			}
		}
		for gi, g := range q.Correlated {
			all := true
			for _, pi := range g.Predicates {
				if vals[e.PAO[j][pi]] < 0.5 {
					all = false
					break
				}
			}
			if all {
				vals[e.PAG[j][gi]] = 1
				lco += math.Log10(g.CorrectionSel)
			}
		}
		vals[e.LCO[j]] = lco
		approx := 1.0
		for r, th := range e.Thresholds {
			if lco > math.Log10(th) {
				vals[e.CTO[j][r]] = 1
				approx = th
			}
		}
		if e.CO[j] >= 0 {
			vals[e.CO[j]] = approx
		}
		approxCard[j] = approx
	}

	// Block-nested-loop auxiliaries (present for fixed BNL and whenever
	// operator selection is on): blocks_j from the approximated outer
	// cardinality, z_{j,t} = blocks_j for the selected inner table.
	if e.BLOCKS != nil {
		for j := 0; j < e.J; j++ {
			if e.BLOCKS[j] < 0 {
				continue
			}
			blocks := e.blocksOf(approxCard[j])
			vals[e.BLOCKS[j]] = blocks
			vals[e.BNLZ[j][pl.Order[j+1]]] = blocks
		}
	}

	if e.JOS != nil {
		e.assignOperators(pl, vals, approxCard)
	}
	return vals, nil
}

// assignOperators picks the cheapest applicable operator per join (using
// the encoder's own approximated cost formulas) and sets the jos / ajc /
// ohp variables accordingly.
func (e *Encoding) assignOperators(pl *plan.Plan, vals []float64, approxCard []float64) {
	p := e.Opts.CostParams
	smjOuter := func(card float64) float64 {
		pg := p.Pages(card)
		return 2*pg*ceilLog2(pg) + pg
	}
	numOps := len(e.JOS[0])
	presortedIdx := -1
	if e.Opts.InterestingOrders {
		presortedIdx = numOps - 1
	}

	sorted := e.Query.Tables[pl.Order[0]].Sorted && e.Opts.InterestingOrders
	for j := 0; j < e.J; j++ {
		inner := pl.Order[j+1]
		pgo := p.Pages(approxCard[j])
		pgi := p.Pages(e.effCard[inner])
		smjInner := e.smjInnerCost(inner)
		if !e.Opts.InterestingOrders {
			smjInner = smjOuter(e.effCard[inner]) // sort-unaware inner cost
		}

		costs := make([]float64, numOps)
		costs[0] = 3 * (pgo + pgi)                                        // hash
		costs[1] = smjOuter(approxCard[j]) + smjInner                     // sort-merge
		costs[2] = p.Pages(approxCard[j]) + e.blocksOf(approxCard[j])*pgi // BNL
		best := 0
		for i := 1; i < 3; i++ {
			if costs[i] < costs[best] {
				best = i
			}
		}
		if presortedIdx >= 0 && sorted {
			costs[presortedIdx] = p.Pages(approxCard[j]) + smjInner
			if costs[presortedIdx] < costs[best] {
				best = presortedIdx
			}
		}

		vals[e.JOS[j][best]] = 1
		vals[e.AJC[j][best]] = costs[best]
		if e.OHP != nil {
			if sorted {
				vals[e.OHP[j]] = 1
			}
			sorted = best == 1 || best == presortedIdx
		}
	}
}
