// Package core implements the paper's contribution: the transformation of
// the join ordering problem into a mixed integer linear program.
//
// The encoder emits the variables of Table 1 (tio/tii for join operands,
// pao for applicable predicates, lco for log-cardinalities, cto for
// cardinality thresholds, co/ci for approximated operand cardinalities) and
// the constraint families of Table 2, plus the Section 5 extensions: n-ary
// and correlated predicates, expensive predicates, projection, operator
// implementation selection, and intermediate result properties (interesting
// orders). The decoder maps MILP solutions back to left-deep query plans.
package core

import (
	"errors"
	"fmt"
	"math"

	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
)

// ErrInvalidOptions reports encoder options a caller could not legally
// construct results from: unknown precision values, threshold ratios ≤ 1,
// and similar input mistakes. It wraps the detail message so callers can
// test with errors.Is.
var ErrInvalidOptions = errors.New("core: invalid options")

// Precision selects the cardinality approximation tolerance, matching the
// three configurations of the paper's evaluation.
type Precision int

const (
	// PrecisionHigh approximates cardinalities within a factor of 3.
	PrecisionHigh Precision = iota
	// PrecisionMedium approximates within a factor of 10.
	PrecisionMedium
	// PrecisionLow approximates within a factor of 100.
	PrecisionLow
)

// Ratio returns the geometric threshold spacing (= tolerance factor). An
// unknown precision yields an error wrapping ErrInvalidOptions.
func (p Precision) Ratio() (float64, error) {
	switch p {
	case PrecisionHigh:
		return 3, nil
	case PrecisionMedium:
		return 10, nil
	case PrecisionLow:
		return 100, nil
	default:
		return 0, fmt.Errorf("%w: unknown precision %d", ErrInvalidOptions, int(p))
	}
}

// String names the precision.
func (p Precision) String() string {
	switch p {
	case PrecisionHigh:
		return "high"
	case PrecisionMedium:
		return "medium"
	case PrecisionLow:
		return "low"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// Precisions lists the paper's three configurations.
func Precisions() []Precision {
	return []Precision{PrecisionHigh, PrecisionMedium, PrecisionLow}
}

// Options configure the encoding.
type Options struct {
	// Precision selects the threshold spacing (default PrecisionMedium).
	Precision Precision
	// ThresholdRatio, when > 1, overrides Precision with an explicit
	// geometric spacing.
	ThresholdRatio float64
	// CardCap bounds the representable cardinality range, as the paper's
	// Example 2 suggests; any plan with an intermediate result at the cap
	// is costed as if the result had exactly the cap cardinality.
	// Default 1e12.
	CardCap float64
	// Metric selects the objective: C_out or operator cost.
	Metric cost.Metric
	// Op is the operator priced when Metric is OperatorCost and operator
	// selection is off (default HashJoin, the paper's setting).
	Op cost.Operator
	// CostParams hold the physical constants.
	CostParams cost.Params

	// ChooseOperators enables the Section 5.3 extension: the MILP picks
	// a join operator per join.
	ChooseOperators bool
	// InterestingOrders enables the Section 5.4 extension: tuple-order
	// properties and a pre-sorted sort-merge variant. Requires
	// ChooseOperators.
	InterestingOrders bool
	// ExpensivePredicates enables the Section 5.1 evaluation-cost
	// extension: predicates with nonzero EvalCostPerTuple pay their cost
	// once, at the join where they are first applied.
	ExpensivePredicates bool
	// InitialPlan optionally seeds branch and bound with this plan's
	// model-space assignment (a "MIP start") instead of the default
	// greedy join order — the warm-start path of the plan cache, which
	// feeds incumbents from structurally similar solved queries. The
	// plan is validated and feasibility-checked; when it cannot be used
	// (projection or expensive-predicate encodings, or a plan the
	// cardinality cap excludes) the greedy fallback applies as usual.
	InitialPlan *plan.Plan
	// Incumbents, when non-nil, is the live generalisation of
	// InitialPlan: a feed of candidate plans published while the solve
	// runs, e.g. by portfolio peers racing the same query. Each plan
	// passes through the same validate → AssignmentForPlan →
	// feasibility-check path as InitialPlan and is offered to branch and
	// bound at node boundaries, which installs it only when it improves
	// the current incumbent — tightening the primal bound mid-solve.
	// Plans the encoding cannot represent are dropped silently. The
	// sender owns the channel lifecycle; closing it stops the feed, and
	// the forwarding pump stops when the solve returns.
	Incumbents <-chan *plan.Plan
	// Projection enables the Section 5.2 extension: column variables and
	// byte-size based outer costing. Requires the query to carry
	// columns.
	Projection bool
}

// Validate checks the caller-supplied option values, returning an error
// wrapping ErrInvalidOptions on bad input. A library must not panic on
// caller mistakes: every public entry point validates before encoding.
func (o Options) Validate() error {
	if o.ThresholdRatio != 0 && o.ThresholdRatio <= 1 {
		return fmt.Errorf("%w: threshold ratio %g must exceed 1", ErrInvalidOptions, o.ThresholdRatio)
	}
	if o.ThresholdRatio == 0 {
		if _, err := o.Precision.Ratio(); err != nil {
			return err
		}
	}
	return nil
}

func (o Options) withDefaults() (Options, error) {
	if err := o.Validate(); err != nil {
		return o, err
	}
	if o.CardCap <= 0 {
		o.CardCap = 1e12
	}
	o.CostParams = o.CostParams.WithDefaults()
	return o, nil
}

// ratio returns the effective threshold spacing. Options are validated
// before encoding, so the unknown-precision fallback is unreachable there;
// it defaults to the medium spacing for robustness.
func (o Options) ratio() float64 {
	if o.ThresholdRatio > 1 {
		return o.ThresholdRatio
	}
	if r, err := o.Precision.Ratio(); err == nil {
		return r
	}
	return 10
}

// thresholds builds the geometric cardinality ladder θ_r = ratio^(r+1),
// covering (1, cap]: a result whose cardinality lies in (θ_{r-1}, θ_r] is
// approximated by θ_{r-1} (and by 1 below θ_0), an underestimate within the
// tolerance factor.
func (o Options) thresholds(maxLogCard float64) []float64 {
	logRange := math.Min(maxLogCard, math.Log10(o.CardCap))
	if logRange <= 0 {
		return nil
	}
	logRatio := math.Log10(o.ratio())
	count := int(math.Ceil(logRange/logRatio)) + 1
	out := make([]float64, count)
	for r := range out {
		out[r] = math.Pow(o.ratio(), float64(r+1))
	}
	return out
}
