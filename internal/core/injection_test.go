package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/plan"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

// TestLiveIncumbentInjectionInstalls: a plan fed through Options.Incumbents
// that beats the greedy MIP start in objective space is installed by
// branch and bound at a node boundary and surfaces as a KindInjected
// event plus the InjectedIncumbents counter. Chain-10/seed-5 is a fixture
// where the greedy seed maps ~22% above the left-deep optimum's MILP
// objective at high precision, so the injected optimum always improves
// the incumbent at the first drain.
func TestLiveIncumbentInjectionInstalls(t *testing.T) {
	q := workload.Generate(workload.Chain, 10, 5, workload.Config{})
	optPlan, optCost, err := dp.OptimizeLeftDeep(context.Background(), q, cost.CoutSpec(), dp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan *plan.Plan, 1)
	ch <- optPlan
	close(ch)

	injectedEvents := 0
	opts := Options{Metric: cost.Cout, Precision: PrecisionHigh, Incumbents: ch}
	res, err := Optimize(context.Background(), q, opts, solver.Params{
		Threads:   2,
		TimeLimit: 5 * time.Second,
		OnEvent: func(ev solver.Event) {
			if ev.Kind == solver.KindInjected {
				injectedEvents++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MIPStart != "greedy" {
		t.Errorf("MIPStart = %q, want greedy (injection must not masquerade as the seed)", res.MIPStart)
	}
	if got := res.Solver.Stats.InjectedIncumbents; got < 1 {
		t.Errorf("InjectedIncumbents = %d, want ≥ 1", got)
	}
	if injectedEvents < 1 {
		t.Errorf("no KindInjected event on the stream")
	}
	if injectedEvents != res.Solver.Stats.InjectedIncumbents {
		t.Errorf("events %d != stats counter %d", injectedEvents, res.Solver.Stats.InjectedIncumbents)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	if res.ExactCost > optCost*(1+1e-6) {
		t.Errorf("final cost %g worse than the injected optimum %g", res.ExactCost, optCost)
	}
}

// TestInjectionRaceMonotoneEvents floods the injection feed from a
// concurrent goroutine for the whole solve (run under -race in CI) and
// checks the serialized event stream stays coherent: incumbents only
// improve, bounds only tighten, sequence numbers only grow — no torn
// reads from the concurrent installs.
func TestInjectionRaceMonotoneEvents(t *testing.T) {
	const tables = 16
	q := workload.Generate(workload.Chain, tables, 9, workload.Config{})

	ch := make(chan *plan.Plan)
	stop := make(chan struct{})
	go func() {
		// Feed random permutations continuously; infeasible or worse
		// candidates are filtered/rejected downstream, occasional better
		// ones install mid-solve.
		rng := rand.New(rand.NewSource(7))
		defer close(ch)
		for {
			select {
			case ch <- &plan.Plan{Order: rng.Perm(tables)}:
			case <-stop:
				return
			}
		}
	}()
	defer close(stop)

	var (
		lastSeq   int64 = -1
		incumbent       = math.Inf(1)
		bound           = math.Inf(-1)
		injected  int
	)
	opts := Options{Metric: cost.Cout, Precision: PrecisionMedium, Incumbents: ch}
	res, err := Optimize(context.Background(), q, opts, solver.Params{
		Threads:   4,
		TimeLimit: 1500 * time.Millisecond,
		OnEvent: func(ev solver.Event) {
			if int64(ev.Seq) <= lastSeq {
				t.Errorf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = int64(ev.Seq)
			switch ev.Kind {
			case solver.KindIncumbent, solver.KindInjected:
				if ev.Kind == solver.KindInjected {
					injected++
				}
				if ev.HasIncumbent {
					if ev.Incumbent > incumbent*(1+1e-9) {
						t.Errorf("incumbent regressed: %g after %g (%v)", ev.Incumbent, incumbent, ev.Kind)
					}
					incumbent = math.Min(incumbent, ev.Incumbent)
				}
			case solver.KindBound:
				if ev.Bound < bound-1e-9*math.Abs(bound) {
					t.Errorf("bound loosened: %g after %g", ev.Bound, bound)
				}
				bound = math.Max(bound, ev.Bound)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan from an anytime solve")
	}
	if injected != res.Solver.Stats.InjectedIncumbents {
		t.Errorf("KindInjected events %d != stats counter %d", injected, res.Solver.Stats.InjectedIncumbents)
	}
}
