package core

import (
	"context"
	"fmt"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/milp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
)

// Result is the outcome of an end-to-end MILP-based optimization run.
type Result struct {
	// Plan is the best plan found (nil when the solver found none).
	Plan *plan.Plan
	// MILPObj is the plan's objective under the MILP's approximated cost.
	MILPObj float64
	// ExactCost is the plan's exact cost under the matching cost.Spec.
	ExactCost float64
	// Solver carries the underlying solver result (status, bound, gap,
	// node and iteration counts, timing).
	Solver *solver.Result
	// Encoding is retained for inspection (model statistics, decode of
	// alternative solutions).
	Encoding *Encoding
	// MIPStart reports which initial incumbent survived the feasibility
	// check and seeded branch and bound: "plan" (Options.InitialPlan),
	// "greedy" (the default heuristic), or "" when the search started
	// cold.
	MIPStart string
}

// Spec returns the exact-costing spec matching the encoder options: the
// same metric, operator, and physical parameters the MILP approximates.
func (o Options) Spec() cost.Spec {
	op := o.Op
	if o.Metric == cost.OperatorCost && !o.ChooseOperators && op == 0 {
		op = cost.HashJoin
	}
	return cost.Spec{Metric: o.Metric, Op: op, Params: o.CostParams.WithDefaults()}
}

// Optimize encodes the query, solves the MILP, and decodes the incumbent
// into a plan. Anytime callbacks in params surface the solver's incumbent
// objective and lower bound as optimization progresses, giving the
// guaranteed-quality traces of the paper's Figure 2.
//
// Unless the caller supplies their own InitialSolution, a greedy join
// order is injected as a MIP start where the encoding supports it, so the
// solver has an incumbent (and hence a bounded Cost/LB ratio) from the
// first moment — mirroring the primal heuristics commercial solvers run.
//
// The context is honored throughout the solver stack: cancelling it
// mid-solve returns promptly with solver.StatusCanceled and the best
// incumbent plan found so far, and a context deadline composes with
// params.TimeLimit as the minimum of the two.
func Optimize(ctx context.Context, q *qopt.Query, opts Options, params solver.Params) (*Result, error) {
	enc, err := Encode(q, opts)
	if err != nil {
		return nil, err
	}
	mipStart := ""
	if params.InitialSolution != nil {
		mipStart = "caller"
	}
	if params.InitialSolution == nil && opts.InitialPlan != nil {
		if start, aerr := enc.AssignmentForPlan(opts.InitialPlan); aerr == nil {
			if enc.Model.CheckFeasible(start, 1e-6) == nil {
				params.InitialSolution = start
				mipStart = "plan"
			}
		}
	}
	if params.InitialSolution == nil {
		if greedy, _, gerr := dp.GreedyLeftDeep(q, opts.Spec()); gerr == nil {
			if start, aerr := enc.AssignmentForPlan(greedy); aerr == nil {
				if enc.Model.CheckFeasible(start, 1e-6) == nil {
					params.InitialSolution = start
					mipStart = "greedy"
				}
			}
		}
	}
	if opts.Incumbents != nil && params.Incumbents == nil {
		// Live injection pump: plans arriving mid-solve are translated
		// into model-space assignments and forwarded to the solver,
		// which offers them to branch and bound at node boundaries.
		// The stop channel unblocks a pending send once the solve
		// returns so a slow consumer never strands the sender.
		inner := make(chan []float64, 4)
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			defer close(inner)
			for {
				select {
				case <-stop:
					return
				case pl, ok := <-opts.Incumbents:
					if !ok {
						return
					}
					if pl == nil {
						continue
					}
					vals, aerr := enc.AssignmentForPlan(pl)
					if aerr != nil || enc.Model.CheckFeasible(vals, 1e-6) != nil {
						continue
					}
					select {
					case inner <- vals:
					case <-stop:
						return
					}
				}
			}
		}()
		params.Incumbents = inner
	}
	sres, err := solver.Solve(ctx, enc.Model, params)
	if err != nil {
		return nil, err
	}
	out := &Result{Solver: sres, Encoding: enc, MIPStart: mipStart}
	if sres.Solution == nil {
		return out, nil
	}
	pl, err := enc.Decode(sres.Solution)
	if err != nil {
		return nil, fmt.Errorf("core: decoding incumbent: %w", err)
	}
	out.Plan = pl
	out.MILPObj = sres.Solution.Obj
	exact, err := plan.Cost(q, pl, opts.Spec())
	if err != nil {
		return nil, err
	}
	out.ExactCost = exact
	return out, nil
}

// Stats returns the size snapshot of the encoded model (variables,
// integer variables, constraints, nonzeros) — the quantities of Figure 1
// and Theorems 1–2.
func (e *Encoding) Stats() milp.Snapshot { return e.Model.Stats() }
