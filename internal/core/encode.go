package core

import (
	"fmt"
	"math"

	"milpjoin/internal/cost"
	"milpjoin/internal/milp"
	"milpjoin/internal/qopt"
)

// Encoding is a query compiled to a MILP model, retaining the variable
// handles needed to decode solutions back into query plans.
type Encoding struct {
	Query *qopt.Query
	Opts  Options
	Model *milp.Model

	// J is the number of joins (n − 1).
	J int
	// Thresholds is the cardinality ladder θ_0 < θ_1 < … used for the
	// outer-operand approximation.
	Thresholds []float64

	// Variable handles, all indexed by join j first. A value of -1
	// marks a handle that does not exist for that index.
	TIO [][]milp.Var // [j][t]: table t in outer operand of join j
	TII [][]milp.Var // [j][t]: table t in inner operand of join j
	PAO [][]milp.Var // [j][p]: predicate p applicable in outer of join j (j ≥ 1)
	PAG [][]milp.Var // [j][g]: correlated group g complete in outer of join j (j ≥ 1)
	LCO []milp.Var   // [j]: log10 cardinality of outer operand (j ≥ 1)
	CTO [][]milp.Var // [j][r]: cardinality threshold r reached (j ≥ 1)
	CO  []milp.Var   // [j]: approximated cardinality of outer operand
	CI  []milp.Var   // [j]: exact cardinality of inner operand

	// Extension handles (nil when the extension is off).
	JOS [][]milp.Var // [j][i]: operator i selected for join j
	OHP []milp.Var   // [j]: outer operand of join j is sorted
	PCO [][]milp.Var // [j][p]: predicate p evaluated during join j
	CLO [][]milp.Var // [j][l]: column l in outer operand of join j; row J = final result
	// AJC[j][i] is the actual-cost variable of operator i at join j.
	AJC [][]milp.Var
	// BLOCKS[j] and BNLZ[j][t] are the block-nested-loop auxiliaries:
	// the ⌈pg_outer/buffer⌉ count and its product with tii.
	BLOCKS []milp.Var
	BNLZ   [][]milp.Var

	// ops lists the operator implementations when ChooseOperators is on.
	ops []cost.Operator

	// derived data shared by the encoder parts.
	effCard  []float64 // per-table cardinality with unary predicates folded in
	binPreds []int     // predicate indices with ≥ 2 tables
	lcoMax   float64
	lcoMin   float64
}

// Encode transforms the query into a MILP model.
func Encode(q *qopt.Query, opts Options) (*Encoding, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if opts.InterestingOrders && !opts.ChooseOperators {
		return nil, fmt.Errorf("core: InterestingOrders requires ChooseOperators")
	}
	if opts.Projection && len(q.Columns) == 0 {
		return nil, fmt.Errorf("core: Projection requires a query with columns")
	}
	if opts.Projection && (opts.Metric != cost.OperatorCost || opts.ChooseOperators || opts.Op != cost.HashJoin) {
		return nil, fmt.Errorf("core: Projection supports the fixed hash-join operator cost metric only")
	}

	n := q.NumTables()
	e := &Encoding{
		Query: q,
		Opts:  opts,
		Model: milp.NewModel(fmt.Sprintf("join-order-%d-tables", n)),
		J:     q.NumJoins(),
	}
	e.prepare()
	e.Thresholds = opts.thresholds(e.lcoMax)

	e.addJoinOrderVars()
	e.addJoinOrderConstraints()
	e.addPredicateVars()
	e.addCardinalityVars()

	switch {
	case opts.Projection:
		if err := e.addProjection(); err != nil {
			return nil, err
		}
	case opts.ChooseOperators:
		if err := e.addOperatorSelection(); err != nil {
			return nil, err
		}
	default:
		e.addFixedObjective()
	}
	if opts.ExpensivePredicates {
		e.addExpensivePredicates()
	}
	return e, nil
}

// prepare computes effective cardinalities (unary predicates folded into
// their table, i.e. selections pushed to the scans) and the lco range.
func (e *Encoding) prepare() {
	q := e.Query
	n := q.NumTables()
	e.effCard = make([]float64, n)
	for t := 0; t < n; t++ {
		e.effCard[t] = q.Tables[t].Card
	}
	for pi, p := range q.Predicates {
		if len(p.Tables) == 1 {
			e.effCard[p.Tables[0]] *= p.Sel
		} else {
			e.binPreds = append(e.binPreds, pi)
		}
	}
	// lco is a weighted sum of binaries; valid bounds are the sums of its
	// positive and negative coefficients respectively.
	for t := 0; t < n; t++ {
		if e.effCard[t] < 1e-6 {
			e.effCard[t] = 1e-6 // keep logs finite
		}
		lc := math.Log10(e.effCard[t])
		e.lcoMax += math.Max(0, lc)
		e.lcoMin += math.Min(0, lc)
	}
	for _, pi := range e.binPreds {
		e.lcoMin += q.LogSel(pi)
	}
	for _, g := range q.Correlated {
		lg := math.Log10(g.CorrectionSel)
		e.lcoMax += math.Max(0, lg)
		e.lcoMin += math.Min(0, lg)
	}
	e.lcoMin -= 1 // slack for rounding
}

func (e *Encoding) effLogCard(t int) float64 { return math.Log10(e.effCard[t]) }

// addJoinOrderVars introduces tio/tii (Table 1, rows 1–2).
func (e *Encoding) addJoinOrderVars() {
	n := e.Query.NumTables()
	e.TIO = make([][]milp.Var, e.J)
	e.TII = make([][]milp.Var, e.J)
	for j := 0; j < e.J; j++ {
		e.TIO[j] = make([]milp.Var, n)
		e.TII[j] = make([]milp.Var, n)
		for t := 0; t < n; t++ {
			e.TIO[j][t] = e.Model.AddBinary(0, fmt.Sprintf("tio_%s_%d", e.Query.TableName(t), j))
			e.TII[j][t] = e.Model.AddBinary(0, fmt.Sprintf("tii_%s_%d", e.Query.TableName(t), j))
		}
	}
}

// addJoinOrderConstraints emits the structural constraints of Table 2:
// single-table operands, no overlap, and the left-deep chaining rule.
func (e *Encoding) addJoinOrderConstraints() {
	n := e.Query.NumTables()
	m := e.Model

	// One table forms the outer operand of the first join.
	m.AddConstr(milp.Sum(e.TIO[0]...), milp.EQ, 1, "outer0_single")
	// One table forms every inner operand.
	for j := 0; j < e.J; j++ {
		m.AddConstr(milp.Sum(e.TII[j]...), milp.EQ, 1, fmt.Sprintf("inner%d_single", j))
	}
	// Operands of the same join cannot overlap.
	for j := 0; j < e.J; j++ {
		for t := 0; t < n; t++ {
			m.AddConstr(milp.Expr(e.TIO[j][t], 1.0, e.TII[j][t], 1.0), milp.LE, 1,
				fmt.Sprintf("nooverlap_%d_%d", j, t))
		}
	}
	// The next outer operand is the previous join's result.
	for j := 1; j < e.J; j++ {
		for t := 0; t < n; t++ {
			m.AddConstr(
				milp.Expr(e.TIO[j][t], 1.0, e.TIO[j-1][t], -1.0, e.TII[j-1][t], -1.0),
				milp.EQ, 0, fmt.Sprintf("chain_%d_%d", j, t))
		}
	}
}

// addPredicateVars introduces pao (and correlated-group pag) variables with
// their applicability constraints. Outer operands of join 0 hold a single
// table, so predicate variables start at join 1.
func (e *Encoding) addPredicateVars() {
	q := e.Query
	m := e.Model
	e.PAO = make([][]milp.Var, e.J)
	e.PAG = make([][]milp.Var, e.J)
	for j := 1; j < e.J; j++ {
		e.PAO[j] = make([]milp.Var, len(q.Predicates))
		for i := range e.PAO[j] {
			e.PAO[j][i] = -1
		}
		for _, pi := range e.binPreds {
			v := m.AddBinary(0, fmt.Sprintf("pao_p%d_%d", pi, j))
			e.PAO[j][pi] = v
			for _, t := range q.Predicates[pi].Tables {
				m.AddConstr(milp.Expr(v, 1.0, e.TIO[j][t], -1.0), milp.LE, 0,
					fmt.Sprintf("papp_p%d_%d_t%d", pi, j, t))
			}
		}

		e.PAG[j] = make([]milp.Var, len(q.Correlated))
		for gi, g := range q.Correlated {
			v := m.AddBinary(0, fmt.Sprintf("pag_g%d_%d", gi, j))
			e.PAG[j][gi] = v
			// Forced to one when all member predicates are applied:
			// pag ≥ 1 − |G| + Σ pao.
			ge := milp.Expr(v, 1.0)
			for _, pi := range g.Predicates {
				ge = ge.Add(e.PAO[j][pi], -1)
			}
			m.AddConstr(ge, milp.GE, 1-float64(len(g.Predicates)), fmt.Sprintf("gfull_g%d_%d", gi, j))
			// Forced to zero when any member predicate is missing.
			for _, pi := range g.Predicates {
				m.AddConstr(milp.Expr(v, 1.0, e.PAO[j][pi], -1.0), milp.LE, 0,
					fmt.Sprintf("gmem_g%d_%d_p%d", gi, j, pi))
			}
		}
	}
}

// addCardinalityVars introduces ci (exact inner cardinalities), lco
// (logarithmic outer cardinalities), the threshold variables cto, and the
// approximated outer cardinalities co (Section 4.2).
func (e *Encoding) addCardinalityVars() {
	q := e.Query
	m := e.Model
	n := q.NumTables()

	maxEff := 0.0
	for t := 0; t < n; t++ {
		if e.effCard[t] > maxEff {
			maxEff = e.effCard[t]
		}
	}

	// Inner operand cardinalities: ci_j = Σ_t Card(t)·tii_tj.
	e.CI = make([]milp.Var, e.J)
	for j := 0; j < e.J; j++ {
		e.CI[j] = m.AddContinuous(0, maxEff, 0, fmt.Sprintf("ci_%d", j))
		expr := milp.Expr(e.CI[j], 1.0)
		for t := 0; t < n; t++ {
			expr = expr.Add(e.TII[j][t], -e.effCard[t])
		}
		m.AddConstr(expr, milp.EQ, 0, fmt.Sprintf("cidef_%d", j))
	}

	// The approximated cardinality co_j is definable as a linear ladder
	// over the threshold variables, so explicit co variables (and their
	// very wide-coefficient defining rows) are only materialised when an
	// extension needs the value itself; cost objectives embed the ladder
	// directly.
	needCO0 := e.Opts.ExpensivePredicates
	needCOj := e.Opts.ExpensivePredicates || e.Opts.Projection
	e.CO = make([]milp.Var, e.J)
	for j := range e.CO {
		e.CO[j] = -1
	}
	if needCO0 {
		// Outer operand of join 0 is a single table: exact and linear.
		e.CO[0] = m.AddContinuous(0, maxEff, 0, "co_0")
		expr := milp.Expr(e.CO[0], 1.0)
		for t := 0; t < n; t++ {
			expr = expr.Add(e.TIO[0][t], -e.effCard[t])
		}
		m.AddConstr(expr, milp.EQ, 0, "codef_0")
	}

	// Joins 1…J−1: logarithmic cardinality, thresholds, approximation.
	e.LCO = make([]milp.Var, e.J)
	e.CTO = make([][]milp.Var, e.J)
	e.LCO[0] = -1
	capVal := e.coMax()
	for j := 1; j < e.J; j++ {
		e.LCO[j] = m.AddContinuous(e.lcoMin, e.lcoMax, 0, fmt.Sprintf("lco_%d", j))
		expr := milp.Expr(e.LCO[j], 1.0)
		for t := 0; t < n; t++ {
			expr = expr.Add(e.TIO[j][t], -e.effLogCard(t))
		}
		for _, pi := range e.binPreds {
			expr = expr.Add(e.PAO[j][pi], -q.LogSel(pi))
		}
		for gi, g := range q.Correlated {
			expr = expr.Add(e.PAG[j][gi], -math.Log10(g.CorrectionSel))
		}
		m.AddConstr(expr, milp.EQ, 0, fmt.Sprintf("lcodef_%d", j))

		// Threshold activation: lco_j − M_r·cto_jr ≤ log θ_r.
		e.CTO[j] = make([]milp.Var, len(e.Thresholds))
		for r, th := range e.Thresholds {
			v := m.AddBinary(0, fmt.Sprintf("cto_%d_%d", j, r))
			e.CTO[j][r] = v
			logTh := math.Log10(th)
			bigM := math.Max(e.lcoMax-logTh, 0) + 1
			m.AddConstr(milp.Expr(e.LCO[j], 1.0, v, -bigM), milp.LE, logTh,
				fmt.Sprintf("cthr_%d_%d", j, r))
			// Ladder ordering strengthens the LP relaxation.
			if r > 0 {
				m.AddConstr(milp.Expr(v, 1.0, e.CTO[j][r-1], -1.0), milp.LE, 0,
					fmt.Sprintf("cord_%d_%d", j, r))
			}
		}

		// co_j = 1 + Σ_r δ_r·cto_jr (the identity ladder), materialised
		// only for extensions that use the value.
		if needCOj {
			e.CO[j] = m.AddContinuous(0, capVal, 0, fmt.Sprintf("co_%d", j))
			coExpr := milp.Expr(e.CO[j], 1.0)
			base, deltas := e.ladder(func(c float64) float64 { return c })
			for r := range e.Thresholds {
				coExpr = coExpr.Add(e.CTO[j][r], -deltas[r])
			}
			m.AddConstr(coExpr, milp.EQ, base, fmt.Sprintf("codef_%d", j))
		}
	}
}

// coMax returns the largest value the approximated outer cardinality can
// take: the top of the threshold ladder. All big-M linearisations involving
// co use this bound.
func (e *Encoding) coMax() float64 {
	if len(e.Thresholds) == 0 {
		return 1
	}
	return e.Thresholds[len(e.Thresholds)-1]
}

// ladder approximates a monotone function g of the outer cardinality using
// the threshold variables: g(card) ≈ base + Σ_r deltas[r]·cto_r, where
// base = g(1) and deltas[r] = g(θ_r) − g(θ_{r−1}).
func (e *Encoding) ladder(g func(card float64) float64) (base float64, deltas []float64) {
	base = g(1)
	deltas = make([]float64, len(e.Thresholds))
	prev := base
	for r, th := range e.Thresholds {
		cur := g(th)
		deltas[r] = cur - prev
		prev = cur
	}
	return base, deltas
}

// outerCostAffine returns the linear expression (plus constant) that
// approximates the outer-operand cost of join j under cost function g
// (monotone in the operand cardinality). Join 0 is priced exactly per
// candidate table.
func (e *Encoding) outerCostAffine(j int, g func(card float64) float64) (milp.LinExpr, float64) {
	if j == 0 {
		expr := milp.LinExpr{}
		for t := 0; t < e.Query.NumTables(); t++ {
			expr = expr.Add(e.TIO[0][t], g(e.effCard[t]))
		}
		return expr, 0
	}
	base, deltas := e.ladder(g)
	expr := milp.LinExpr{}
	for r := range e.Thresholds {
		expr = expr.Add(e.CTO[j][r], deltas[r])
	}
	return expr, base
}

// innerCostExpr returns the exact linear expression for the inner-operand
// cost of join j, with per-table cost function gt.
func (e *Encoding) innerCostExpr(j int, gt func(t int) float64) milp.LinExpr {
	expr := milp.LinExpr{}
	for t := 0; t < e.Query.NumTables(); t++ {
		expr = expr.Add(e.TII[j][t], gt(t))
	}
	return expr
}

// addFixedObjective installs the objective for the basic model: C_out or a
// single fixed operator's cost summed over all joins (Section 4.3).
func (e *Encoding) addFixedObjective() {
	m := e.Model
	switch e.Opts.Metric {
	case cost.Cout:
		// Σ_{j≥1} co_j: the sum of intermediate result cardinalities
		// (the final result is constant across plans and excluded).
		// The ladder goes directly into the objective so no equality
		// row has to mix unit and cardinality-scale coefficients.
		for j := 1; j < e.J; j++ {
			expr, c := e.outerCostAffine(j, func(card float64) float64 { return card })
			expr.Terms(func(v milp.Var, coef float64) {
				m.SetObjCoeff(v, m.ObjCoeff(v)+coef)
			})
			m.AddObjConstant(c)
		}
	case cost.OperatorCost:
		for j := 0; j < e.J; j++ {
			expr, c := e.operatorCostAffine(j, e.Opts.Op)
			expr.Terms(func(v milp.Var, coef float64) {
				m.SetObjCoeff(v, m.ObjCoeff(v)+coef)
			})
			m.AddObjConstant(c)
		}
	}
}

// operatorCostAffine builds the affine cost of running operator op for
// join j. For the block nested loop join it introduces the linearisation
// variables for the blocks×inner-pages product (Section 4.3).
func (e *Encoding) operatorCostAffine(j int, op cost.Operator) (milp.LinExpr, float64) {
	p := e.Opts.CostParams
	pages := func(card float64) float64 { return p.Pages(card) }

	switch op {
	case cost.HashJoin:
		outer, c := e.outerCostAffine(j, func(card float64) float64 { return 3 * pages(card) })
		inner := e.innerCostExpr(j, func(t int) float64 { return 3 * pages(e.effCard[t]) })
		return outer.AddExpr(inner), c
	case cost.SortMergeJoin:
		smj := func(card float64) float64 {
			pg := pages(card)
			return 2*pg*ceilLog2(pg) + pg
		}
		outer, c := e.outerCostAffine(j, smj)
		inner := e.innerCostExpr(j, func(t int) float64 { return smj(e.effCard[t]) })
		return outer.AddExpr(inner), c
	case cost.BlockNestedLoopJoin:
		return e.bnlCostAffine(j)
	default:
		panic(fmt.Sprintf("core: unsupported operator %v", op))
	}
}

// bnlCostAffine prices a block nested loop join: scanning the outer plus
// blocks·innerPages, where blocks = ⌈pg_outer/buffer⌉. The product of the
// binary tii with the continuous blocks variable is linearised with one
// auxiliary variable per table (the paper's second representation, linear
// in the number of tables).
func (e *Encoding) bnlCostAffine(j int) (milp.LinExpr, float64) {
	m := e.Model
	p := e.Opts.CostParams
	n := e.Query.NumTables()
	blocksOf := e.blocksOf
	maxBlocks := math.Max(blocksOf(e.coMax()), blocksOf(maxSlice(e.effCard)))

	if e.BLOCKS == nil {
		e.BLOCKS = make([]milp.Var, e.J)
		e.BNLZ = make([][]milp.Var, e.J)
		for jj := range e.BLOCKS {
			e.BLOCKS[jj] = -1
		}
	}

	// blocks_j as a continuous variable.
	blocks := m.AddContinuous(1, maxBlocks, 0, fmt.Sprintf("blocks_%d", j))
	e.BLOCKS[j] = blocks
	e.BNLZ[j] = make([]milp.Var, n)
	if j == 0 {
		expr := milp.Expr(blocks, 1.0)
		for t := 0; t < n; t++ {
			expr = expr.Add(e.TIO[0][t], -blocksOf(e.effCard[t]))
		}
		m.AddConstr(expr, milp.EQ, 0, "blocksdef_0")
	} else {
		base, deltas := e.ladder(blocksOf)
		expr := milp.Expr(blocks, 1.0)
		for r := range e.Thresholds {
			expr = expr.Add(e.CTO[j][r], -deltas[r])
		}
		m.AddConstr(expr, milp.EQ, base, fmt.Sprintf("blocksdef_%d", j))
	}

	// z_t = tii_t · blocks, linearised from below (cost minimisation
	// pushes z down, so only the lower bounds are needed):
	// z ≥ 0 and z ≥ blocks − maxBlocks·(1 − tii).
	total := milp.LinExpr{}
	for t := 0; t < n; t++ {
		z := m.AddContinuous(0, maxBlocks, 0, fmt.Sprintf("bnlz_%d_%d", j, t))
		e.BNLZ[j][t] = z
		m.AddConstr(
			milp.Expr(z, 1.0, blocks, -1.0, e.TII[j][t], -maxBlocks),
			milp.GE, -maxBlocks, fmt.Sprintf("bnlzlb_%d_%d", j, t))
		total = total.Add(z, p.Pages(e.effCard[t]))
	}
	// Plus scanning the outer operand once.
	outer, c := e.outerCostAffine(j, func(card float64) float64 { return p.Pages(card) })
	return total.AddExpr(outer), c
}

// blocksOf returns ⌈pages(card)/buffer⌉, at least 1 — the outer-loop count
// of a block nested loop join.
func (e *Encoding) blocksOf(card float64) float64 {
	p := e.Opts.CostParams
	b := math.Ceil(p.Pages(card) / p.BufferPages)
	if b < 1 {
		b = 1
	}
	return b
}

func maxSlice(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ceilLog2 mirrors cost.ceilLog2 for the encoder's ladder functions.
func ceilLog2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(x))
}
