package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/milp"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

// paperQuery is the paper's running example: R ⋈ S ⋈ T, cardinalities
// 10/1000/100, one predicate R–S with selectivity 0.1.
func paperQuery() *qopt.Query {
	return &qopt.Query{
		Tables: []qopt.Table{
			{Name: "R", Card: 10},
			{Name: "S", Card: 1000},
			{Name: "T", Card: 100},
		},
		Predicates: []qopt.Predicate{
			{Name: "p", Tables: []int{0, 1}, Sel: 0.1},
		},
	}
}

func TestEncodePaperExampleShapes(t *testing.T) {
	enc, err := Encode(paperQuery(), Options{Metric: cost.Cout, Precision: PrecisionMedium})
	if err != nil {
		t.Fatal(err)
	}
	// Two joins: 6 tio + 6 tii variables, as in Example 1.
	if len(enc.TIO) != 2 || len(enc.TIO[0]) != 3 || len(enc.TII[1]) != 3 {
		t.Fatal("tio/tii shape wrong")
	}
	// Predicate variables exist for join 1 only (join 0's outer operand
	// is a single table).
	if enc.PAO[1][0] < 0 {
		t.Error("pao missing for join 1")
	}
	// Thresholds cover the cardinality range with ratio 10.
	if len(enc.Thresholds) == 0 {
		t.Fatal("no thresholds")
	}
	for r := 1; r < len(enc.Thresholds); r++ {
		if ratio := enc.Thresholds[r] / enc.Thresholds[r-1]; math.Abs(ratio-10) > 1e-9 {
			t.Errorf("threshold ratio %g, want 10", ratio)
		}
	}
}

func TestPaperExampleOptimalPlan(t *testing.T) {
	q := paperQuery()
	res, err := Optimize(context.Background(), q, Options{Metric: cost.Cout, Precision: PrecisionHigh}, solver.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatalf("no plan (status %v)", res.Solver.Status)
	}
	// Two co-optimal first joins exist: R ⋈ S (10·1000·0.1 = 1000) and
	// the cross product T × R (100·10 = 1000); joining S and T first
	// costs 100000. Either optimum prices at exactly 1000.
	if res.ExactCost != 1000 {
		t.Errorf("plan %v has exact cost %g, want 1000", res.Plan.Order, res.ExactCost)
	}
	if err := res.Encoding.CheckPlanRepresentation(res.Solver.Solution); err != nil {
		t.Error(err)
	}
}

// milpVsDP is the end-to-end correctness anchor: the decoded MILP-optimal
// plan must cost within the approximation tolerance of the DP optimum.
func milpVsDP(t *testing.T, q *qopt.Query, opts Options, spec cost.Spec) {
	t.Helper()
	res, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != solver.StatusOptimal {
		t.Fatalf("solver status %v", res.Solver.Status)
	}
	if err := res.Plan.Validate(q); err != nil {
		t.Fatalf("invalid plan: %v", err)
	}
	_, optCost, err := dp.OptimizeLeftDeep(context.Background(), q, spec, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := opts.ratio()
	// The MILP underestimates each intermediate by at most the
	// tolerance factor, so its argmin costs at most ratio × optimum
	// (plus slack for the per-join constant terms).
	limit := optCost*ratio + 64
	if res.ExactCost > limit {
		t.Fatalf("MILP plan %v costs %g; DP optimum %g (tolerance ratio %g)",
			res.Plan.Order, res.ExactCost, optCost, ratio)
	}
	if res.ExactCost < optCost-1e-6*(1+optCost) {
		t.Fatalf("MILP plan cost %g below DP optimum %g: costing bug", res.ExactCost, optCost)
	}
	if err := res.Encoding.CheckPlanRepresentation(res.Solver.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestMILPMatchesDPOnCout(t *testing.T) {
	for _, shape := range workload.Shapes() {
		for seed := int64(0); seed < 4; seed++ {
			q := workload.Generate(shape, 5, seed, workload.Config{})
			milpVsDP(t, q, Options{Metric: cost.Cout, Precision: PrecisionHigh}, cost.CoutSpec())
		}
	}
}

func TestMILPMatchesDPOnHashJoinCost(t *testing.T) {
	for _, shape := range workload.Shapes() {
		for seed := int64(10); seed < 13; seed++ {
			q := workload.Generate(shape, 5, seed, workload.Config{})
			opts := Options{Metric: cost.OperatorCost, Op: cost.HashJoin, Precision: PrecisionHigh}
			milpVsDP(t, q, opts, cost.DefaultSpec())
		}
	}
}

func TestMILPWithSortMergeCost(t *testing.T) {
	q := workload.Generate(workload.Star, 4, 2, workload.Config{})
	opts := Options{Metric: cost.OperatorCost, Op: cost.SortMergeJoin, Precision: PrecisionMedium}
	spec := cost.Spec{Metric: cost.OperatorCost, Op: cost.SortMergeJoin, Params: cost.Params{}.WithDefaults()}
	milpVsDP(t, q, opts, spec)
}

func TestMILPWithBNLCost(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 3, workload.Config{})
	opts := Options{Metric: cost.OperatorCost, Op: cost.BlockNestedLoopJoin, Precision: PrecisionMedium, CardCap: 1e8}
	spec := cost.Spec{Metric: cost.OperatorCost, Op: cost.BlockNestedLoopJoin, Params: cost.Params{}.WithDefaults()}
	milpVsDP(t, q, opts, spec)
}

func TestMILPWithCorrelatedPredicates(t *testing.T) {
	q := workload.Generate(workload.Cycle, 4, 5, workload.Config{})
	q.Correlated = []qopt.CorrelatedGroup{
		{Predicates: []int{0, 1}, CorrectionSel: 8},
	}
	milpVsDP(t, q, Options{Metric: cost.Cout, Precision: PrecisionHigh}, cost.CoutSpec())
}

func TestMILPWithNaryPredicate(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 6, workload.Config{})
	q.Predicates = append(q.Predicates, qopt.Predicate{
		Name: "tri", Tables: []int{0, 1, 3}, Sel: 0.05,
	})
	milpVsDP(t, q, Options{Metric: cost.Cout, Precision: PrecisionHigh}, cost.CoutSpec())
}

func TestMILPWithUnaryPredicateFolded(t *testing.T) {
	q := paperQuery()
	q.Predicates = append(q.Predicates, qopt.Predicate{
		Name: "filter", Tables: []int{1}, Sel: 0.01, // S shrinks to 10
	})
	res, err := Optimize(context.Background(), q, Options{Metric: cost.Cout, Precision: PrecisionHigh}, solver.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	// With S filtered to ~10 rows, R ⋈ S first is even more clearly
	// optimal; the exact cost must match the plan's true cost.
	recost, err := plan.Cost(q, res.Plan, cost.CoutSpec())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recost-res.ExactCost) > 1e-9 {
		t.Errorf("ExactCost %g != recost %g", res.ExactCost, recost)
	}
}

func TestPrecisionTradesModelSize(t *testing.T) {
	q := workload.Generate(workload.Star, 10, 1, workload.Config{})
	var prevVars int
	for _, prec := range []Precision{PrecisionLow, PrecisionMedium, PrecisionHigh} {
		enc, err := Encode(q, Options{Metric: cost.Cout, Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		s := enc.Stats()
		if s.Vars <= prevVars {
			t.Errorf("%v precision: %d vars, want more than %d", prec, s.Vars, prevVars)
		}
		prevVars = s.Vars
	}
}

// TestTheorem1VariableCount and TestTheorem2ConstraintCount verify the
// formal analysis of Section 6: the MILP has O(n·(n+m+l)) variables and
// constraints.
func TestTheorem1VariableCount(t *testing.T) {
	for _, n := range []int{5, 10, 20, 40} {
		q := workload.Generate(workload.Star, n, 7, workload.Config{})
		enc, err := Encode(q, Options{Metric: cost.Cout, Precision: PrecisionMedium})
		if err != nil {
			t.Fatal(err)
		}
		m := len(q.Predicates)
		l := len(enc.Thresholds)
		bound := 4 * n * (n + m + l) // generous constant
		if got := enc.Stats().Vars; got > bound {
			t.Errorf("n=%d: %d variables exceeds O-bound %d", n, got, bound)
		}
	}
}

func TestTheorem2ConstraintCount(t *testing.T) {
	for _, n := range []int{5, 10, 20, 40} {
		q := workload.Generate(workload.Star, n, 7, workload.Config{})
		enc, err := Encode(q, Options{Metric: cost.Cout, Precision: PrecisionMedium})
		if err != nil {
			t.Fatal(err)
		}
		m := len(q.Predicates)
		l := len(enc.Thresholds)
		bound := 6 * n * (n + m + l)
		if got := enc.Stats().Constrs; got > bound {
			t.Errorf("n=%d: %d constraints exceeds O-bound %d", n, got, bound)
		}
	}
}

func TestEncodeRejectsBadOptions(t *testing.T) {
	q := paperQuery()
	if _, err := Encode(q, Options{InterestingOrders: true}); err == nil {
		t.Error("InterestingOrders without ChooseOperators accepted")
	}
	if _, err := Encode(q, Options{Projection: true}); err == nil {
		t.Error("Projection without columns accepted")
	}
	qc := paperQuery()
	qc.Columns = []qopt.Column{{Table: 0, Bytes: 8, Required: true}}
	if _, err := Encode(qc, Options{Projection: true, Metric: cost.Cout}); err == nil {
		t.Error("Projection with Cout metric accepted")
	}
	bad := &qopt.Query{Tables: []qopt.Table{{Card: 10}}}
	if _, err := Encode(bad, Options{}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestDecodeRejectsForeignSolution(t *testing.T) {
	enc, err := Encode(paperQuery(), Options{Metric: cost.Cout})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Decode(nil); err == nil {
		t.Error("nil solution accepted")
	}
	short := &milp.Solution{Values: make([]float64, 3)}
	if _, err := enc.Decode(short); err == nil {
		t.Error("wrong-length solution accepted")
	}
}

func TestEncodingWritesLP(t *testing.T) {
	enc, err := Encode(paperQuery(), Options{Metric: cost.Cout, Precision: PrecisionLow})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := enc.Model.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tio_R_0", "tii_S_1", "pao_p0_1", "cto_1_0", "Binaries"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("LP file missing %q", want)
		}
	}
}

func TestPrecisionAccessors(t *testing.T) {
	for _, tc := range []struct {
		p    Precision
		want float64
	}{{PrecisionHigh, 3}, {PrecisionMedium, 10}, {PrecisionLow, 100}} {
		r, err := tc.p.Ratio()
		if err != nil || r != tc.want {
			t.Errorf("%v.Ratio() = %v, %v; want %v", tc.p, r, err, tc.want)
		}
	}
	if _, err := Precision(99).Ratio(); err == nil {
		t.Error("unknown precision should yield an error, not a ratio")
	}
	if PrecisionHigh.String() != "high" || PrecisionLow.String() != "low" {
		t.Error("precision strings wrong")
	}
	if len(Precisions()) != 3 {
		t.Error("Precisions() should list three configurations")
	}
	opts, err := Options{ThresholdRatio: 7}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if opts.ratio() != 7 {
		t.Error("explicit ratio ignored")
	}
	if _, err := (Options{ThresholdRatio: 0.5}).withDefaults(); err == nil {
		t.Error("ThresholdRatio <= 1 should be rejected")
	}
}

// TestGomoryCutsValidForPlans: root cuts must never exclude an integer
// plan assignment — validity of the cut translation on the real encodings.
func TestGomoryCutsValidForPlans(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		q := workload.Generate(workload.Star, 6, seed, workload.Config{})
		opts := Options{Metric: cost.OperatorCost, Op: cost.HashJoin, Precision: PrecisionMedium}
		plain, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		withCuts, err := Optimize(context.Background(), q, opts, solver.Params{Threads: 2, CutRounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Solver.Status != solver.StatusOptimal || withCuts.Solver.Status != solver.StatusOptimal {
			t.Fatalf("seed %d: statuses %v / %v", seed, plain.Solver.Status, withCuts.Solver.Status)
		}
		if math.Abs(plain.MILPObj-withCuts.MILPObj) > 1e-5*(1+math.Abs(plain.MILPObj)) {
			t.Fatalf("seed %d: cuts changed the optimum: %g vs %g", seed, plain.MILPObj, withCuts.MILPObj)
		}
	}
}

// TestAssignmentRoundTripProperty: for random queries and random valid
// plans, AssignmentForPlan produces a feasible assignment whose Decode
// returns exactly the same join order — the encoder and decoder are
// mutually consistent over the whole plan space, not just at optima.
func TestAssignmentRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(81))}
	prop := func(seed int64, shapePick, sizePick uint8) bool {
		shapes := workload.Shapes()
		shape := shapes[int(shapePick)%len(shapes)]
		n := 3 + int(sizePick)%6
		q := workload.Generate(shape, n, seed, workload.Config{})
		enc, err := Encode(q, Options{Metric: cost.Cout, Precision: PrecisionMedium})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 1))
		pl := &plan.Plan{Order: rng.Perm(n)}
		vals, err := enc.AssignmentForPlan(pl)
		if err != nil {
			return false
		}
		if err := enc.Model.CheckFeasible(vals, 1e-6); err != nil {
			t.Logf("seed %d %v n=%d: infeasible assignment: %v", seed, shape, n, err)
			return false
		}
		decoded, err := enc.Decode(&milp.Solution{Values: vals})
		if err != nil {
			return false
		}
		for i := range pl.Order {
			if decoded.Order[i] != pl.Order[i] {
				return false
			}
		}
		// The model objective of the assignment must be within the
		// precision tolerance of the plan's exact C_out from below.
		exact, err := plan.Cost(q, pl, cost.CoutSpec())
		if err != nil {
			return false
		}
		obj := enc.Model.EvalObjective(vals)
		return obj <= exact*(1+1e-9)+1e-6
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestOperatorAssignmentRoundTripProperty covers the operator-selection
// extension's MIP-start path the same way.
func TestOperatorAssignmentRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(82))}
	prop := func(seed int64, sizePick uint8) bool {
		n := 3 + int(sizePick)%4
		q := workload.Generate(workload.Star, n, seed, workload.Config{})
		enc, err := Encode(q, operatorOpts())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed + 2))
		pl := &plan.Plan{Order: rng.Perm(n)}
		vals, err := enc.AssignmentForPlan(pl)
		if err != nil {
			return false
		}
		if err := enc.Model.CheckFeasible(vals, 1e-6); err != nil {
			t.Logf("seed %d n=%d: %v", seed, n, err)
			return false
		}
		decoded, err := enc.Decode(&milp.Solution{Values: vals})
		if err != nil {
			return false
		}
		if decoded.Operators == nil {
			return false
		}
		for i := range pl.Order {
			if decoded.Order[i] != pl.Order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
