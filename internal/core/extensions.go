package core

import (
	"fmt"
	"math"

	"milpjoin/internal/cost"
	"milpjoin/internal/milp"
)

// addOperatorSelection implements Section 5.3 (and, when enabled, the
// Section 5.4 interesting-orders extension): binary jos variables pick one
// operator implementation per join, with actual-cost variables ajc
// linearising jos·potentialCost.
func (e *Encoding) addOperatorSelection() error {
	m := e.Model
	p := e.Opts.CostParams
	if e.Opts.Metric != cost.OperatorCost {
		return fmt.Errorf("core: operator selection requires the operator cost metric")
	}

	e.ops = []cost.Operator{cost.HashJoin, cost.SortMergeJoin, cost.BlockNestedLoopJoin}
	numOps := len(e.ops)
	presortedIdx := -1
	if e.Opts.InterestingOrders {
		// A fourth implementation: sort-merge that skips sorting its
		// outer input, applicable only when that input is sorted.
		presortedIdx = numOps
		numOps++
		e.addSortednessVars()
	}

	capVal := e.coMax()
	maxInnerPages, maxInnerSMJ := 0.0, 0.0
	for t := 0; t < e.Query.NumTables(); t++ {
		pg := p.Pages(e.effCard[t])
		if pg > maxInnerPages {
			maxInnerPages = pg
		}
		if c := e.smjInnerCost(t); c > maxInnerSMJ {
			maxInnerSMJ = c
		}
	}
	maxBlocks := math.Ceil(p.Pages(capVal) / p.BufferPages)
	smjOuter := func(card float64) float64 {
		pg := p.Pages(card)
		return 2*pg*ceilLog2(pg) + pg
	}

	e.JOS = make([][]milp.Var, e.J)
	e.AJC = make([][]milp.Var, e.J)
	for j := 0; j < e.J; j++ {
		e.JOS[j] = make([]milp.Var, numOps)
		e.AJC[j] = make([]milp.Var, numOps)
		for i := 0; i < numOps; i++ {
			name := "presorted-smj"
			if i < len(e.ops) {
				name = e.ops[i].String()
			}
			e.JOS[j][i] = m.AddBinary(0, fmt.Sprintf("jos_%d_%s", j, name))
		}
		m.AddConstr(milp.Sum(e.JOS[j]...), milp.EQ, 1, fmt.Sprintf("onesel_%d", j))

		for i := 0; i < numOps; i++ {
			var expr milp.LinExpr
			var c, bigM float64
			switch {
			case i == presortedIdx:
				// Pre-sorted SMJ: merge passes only on the outer
				// side; inner still sorts unless the table is
				// stored sorted.
				expr, c = e.outerCostAffine(j, func(card float64) float64 { return p.Pages(card) })
				expr = expr.AddExpr(e.innerCostExpr(j, e.smjInnerCost))
				bigM = p.Pages(capVal) + maxInnerSMJ
				// Applicable only when the outer operand is sorted.
				m.AddConstr(milp.Expr(e.JOS[j][i], 1.0, e.OHP[j], -1.0), milp.LE, 0,
					fmt.Sprintf("needsorted_%d", j))
			case e.ops[i] == cost.SortMergeJoin && e.Opts.InterestingOrders:
				// Regular SMJ with sort-aware inner costing.
				expr, c = e.outerCostAffine(j, smjOuter)
				expr = expr.AddExpr(e.innerCostExpr(j, e.smjInnerCost))
				bigM = smjOuter(capVal) + maxInnerSMJ
			default:
				expr, c = e.operatorCostAffine(j, e.ops[i])
				switch e.ops[i] {
				case cost.HashJoin:
					bigM = 3 * (p.Pages(capVal) + maxInnerPages)
				case cost.SortMergeJoin:
					bigM = smjOuter(capVal) + maxInnerSMJ
				case cost.BlockNestedLoopJoin:
					bigM = p.Pages(capVal) + maxBlocks*maxInnerPages
				}
			}
			bigM += c + 1

			// ajc ≥ potential − bigM·(1 − jos); ajc ≥ 0. Minimisation
			// presses ajc onto the selected operator's cost and to
			// zero elsewhere.
			ajc := m.AddContinuous(0, bigM, 1, fmt.Sprintf("ajc_%d_%d", j, i))
			e.AJC[j][i] = ajc
			con := milp.Expr(ajc, 1.0, e.JOS[j][i], -bigM)
			negExpr := milp.LinExpr{}
			expr.Terms(func(v milp.Var, coef float64) {
				negExpr = negExpr.Add(v, -coef)
			})
			m.AddConstr(con.AddExpr(negExpr), milp.GE, c-bigM, fmt.Sprintf("ajcdef_%d_%d", j, i))
		}
	}
	if e.Opts.InterestingOrders {
		e.linkSortedness(1 /* SortMergeJoin in e.ops */, presortedIdx)
	}
	return nil
}

// smjInnerCost prices the inner side of a sort-merge join for table t,
// skipping the sort phase for tables stored in sorted order.
func (e *Encoding) smjInnerCost(t int) float64 {
	p := e.Opts.CostParams
	pg := p.Pages(e.effCard[t])
	if e.Query.Tables[t].Sorted {
		return pg
	}
	return 2*pg*ceilLog2(pg) + pg
}

// addSortednessVars introduces the ohp variables of Section 5.4: whether
// the outer operand of each join is sorted. Join 0's outer operand is a
// base table (sorted iff the table is stored sorted); later operands are
// sorted iff the producing operator was a sort-merge variant.
func (e *Encoding) addSortednessVars() {
	m := e.Model
	e.OHP = make([]milp.Var, e.J)
	for j := 0; j < e.J; j++ {
		e.OHP[j] = m.AddBinary(0, fmt.Sprintf("ohp_%d", j))
	}
	expr := milp.Expr(e.OHP[0], 1.0)
	for t := 0; t < e.Query.NumTables(); t++ {
		if e.Query.Tables[t].Sorted {
			expr = expr.Add(e.TIO[0][t], -1)
		}
	}
	m.AddConstr(expr, milp.EQ, 0, "ohpdef_0")
	// ohp_{j} = jos_{j−1,smj} + jos_{j−1,presorted} is installed after
	// the jos variables exist; see linkSortedness.
}

// linkSortedness ties each ohp to the operator that produced the operand.
// Called from addOperatorSelection once jos variables exist for join j−1.
func (e *Encoding) linkSortedness(smjIdx, presortedIdx int) {
	for j := 1; j < e.J; j++ {
		expr := milp.Expr(e.OHP[j], 1.0, e.JOS[j-1][smjIdx], -1.0)
		if presortedIdx >= 0 {
			expr = expr.Add(e.JOS[j-1][presortedIdx], -1)
		}
		e.Model.AddConstr(expr, milp.EQ, 0, fmt.Sprintf("ohpdef_%d", j))
	}
}

// addExpensivePredicates implements the evaluation-cost extension of
// Section 5.1: pco variables mark the join at which each costly predicate
// is first evaluated, and the pay-once cost pco·co is linearised.
func (e *Encoding) addExpensivePredicates() {
	m := e.Model
	q := e.Query
	maxEff := 0.0
	for t := range e.effCard {
		if e.effCard[t] > maxEff {
			maxEff = e.effCard[t]
		}
	}
	capVal := e.coMax()

	e.PCO = make([][]milp.Var, e.J)
	for j := range e.PCO {
		e.PCO[j] = make([]milp.Var, len(q.Predicates))
		for i := range e.PCO[j] {
			e.PCO[j][i] = -1
		}
	}

	for _, pi := range e.binPreds {
		ec := q.Predicates[pi].EvalCostPerTuple
		if ec <= 0 {
			continue
		}
		for j := 0; j < e.J; j++ {
			// pco_pj = pao_{p,j+1} − pao_{p,j}, with the boundary
			// conventions pao_{p,0} = 0 and pao_{p,J} = 1 (every
			// predicate is evaluated by the end of the plan).
			v := m.AddBinary(0, fmt.Sprintf("pco_p%d_%d", pi, j))
			e.PCO[j][pi] = v
			expr := milp.Expr(v, 1.0)
			rhs := 0.0
			if j+1 < e.J {
				expr = expr.Add(e.PAO[j+1][pi], -1)
			} else {
				rhs -= 1 // pao_{p,J} = 1
			}
			if j >= 1 {
				expr = expr.Add(e.PAO[j][pi], 1)
			}
			m.AddConstr(expr, milp.EQ, -rhs, fmt.Sprintf("pcodef_p%d_%d", pi, j))

			// Evaluation cost ec · pco · co_j, linearised via
			// epc ≥ co_j − cap·(1 − pco), epc ≥ 0.
			capJ := capVal
			if j == 0 {
				capJ = maxEff
			}
			epc := m.AddContinuous(0, capJ, ec, fmt.Sprintf("epc_p%d_%d", pi, j))
			m.AddConstr(
				milp.Expr(epc, 1.0, e.CO[j], -1.0, v, -capJ),
				milp.GE, -capJ, fmt.Sprintf("epcdef_p%d_%d", pi, j))
		}
	}
}
