package core

import (
	"fmt"

	"milpjoin/internal/milp"
)

// addProjection implements Section 5.2: clo variables decide which columns
// stay in each intermediate result, and the hash-join objective prices
// operands by their byte volume instead of a fixed tuple width.
//
// Conventions (documented deviations from the paper's sketch):
//   - Inner operands are base-table scans and keep their full width.
//   - A column may enter a result only when its table was just joined or
//     when it was present in the previous result (the paper's
//     clo_j ≥ clo_{j+1} rule is refined so late-joining tables can still
//     contribute columns).
//   - Row CLO[J] models the final result; required columns are fixed to 1
//     there, and the propagation chain keeps them alive upstream.
func (e *Encoding) addProjection() error {
	m := e.Model
	q := e.Query
	p := e.Opts.CostParams
	capVal := e.Opts.CardCap

	nL := len(q.Columns)
	e.CLO = make([][]milp.Var, e.J+1)
	for j := 0; j <= e.J; j++ {
		e.CLO[j] = make([]milp.Var, nL)
		for l := 0; l < nL; l++ {
			e.CLO[j][l] = m.AddBinary(0, fmt.Sprintf("clo_%d_c%d", j, l))
		}
	}

	for l, col := range q.Columns {
		t := col.Table
		// A column requires its table in the operand (joins 0…J−1; the
		// final result trivially contains every table).
		for j := 0; j < e.J; j++ {
			m.AddConstr(milp.Expr(e.CLO[j][l], 1.0, e.TIO[j][t], -1.0), milp.LE, 0,
				fmt.Sprintf("cltab_%d_c%d", j, l))
		}
		// Propagation: present in result j+1 only if present in the
		// outer operand of join j or delivered by join j's inner table.
		for j := 0; j < e.J; j++ {
			m.AddConstr(
				milp.Expr(e.CLO[j+1][l], 1.0, e.CLO[j][l], -1.0, e.TII[j][t], -1.0),
				milp.LE, 0, fmt.Sprintf("clprop_%d_c%d", j, l))
		}
		// Required output columns must reach the final result.
		if col.Required {
			m.SetBounds(e.CLO[e.J][l], 1, 1)
		}
	}

	// Columns a predicate reads must stay alive until it is applied.
	for _, pi := range e.binPreds {
		for _, l := range q.Predicates[pi].Columns {
			t := q.Columns[l].Table
			// Join 0: no predicates applied yet.
			m.AddConstr(milp.Expr(e.CLO[0][l], 1.0, e.TIO[0][t], -1.0), milp.GE, 0,
				fmt.Sprintf("clneed0_p%d_c%d", pi, l))
			for j := 1; j < e.J; j++ {
				// clo ≥ tio_table − pao: needed while the table is
				// present and the predicate is still pending.
				m.AddConstr(
					milp.Expr(e.CLO[j][l], 1.0, e.TIO[j][t], -1.0, e.PAO[j][pi], 1.0),
					milp.GE, 0, fmt.Sprintf("clneed_%d_p%d_c%d", j, pi, l))
			}
		}
	}

	// Objective: hash join cost 3·(bytes_outer + bytes_inner)/pageBytes.
	rowBytes := make([]float64, q.NumTables())
	for _, col := range q.Columns {
		rowBytes[col.Table] += col.Bytes
	}
	perPage := 3.0 / p.PageBytes

	for j := 0; j < e.J; j++ {
		// Inner: full-width scan of the selected table.
		for t := 0; t < q.NumTables(); t++ {
			v := e.TII[j][t]
			m.SetObjCoeff(v, m.ObjCoeff(v)+perPage*e.effCard[t]*rowBytes[t])
		}
		if j == 0 {
			// Outer of join 0: per-column bytes of a single table —
			// exactly linear since the table cardinality is constant.
			for l, col := range q.Columns {
				v := e.CLO[0][l]
				m.SetObjCoeff(v, m.ObjCoeff(v)+perPage*e.effCard[col.Table]*col.Bytes)
			}
			continue
		}
		// Outer of join j ≥ 1: Σ_l Byte(l)·(co_j·clo_jl), linearised
		// with one auxiliary variable per (join, column).
		for l, col := range q.Columns {
			w := m.AddContinuous(0, capVal, perPage*col.Bytes, fmt.Sprintf("wbytes_%d_c%d", j, l))
			m.AddConstr(
				milp.Expr(w, 1.0, e.CO[j], -1.0, e.CLO[j][l], -capVal),
				milp.GE, -capVal, fmt.Sprintf("wdef_%d_c%d", j, l))
		}
	}
	return nil
}

// DecodeColumns extracts the per-result column selections from a solution
// of a projection-enabled encoding. Row j lists the columns present in the
// outer operand of join j; row J is the final result.
func (e *Encoding) DecodeColumns(sol *milp.Solution) [][]bool {
	if e.CLO == nil {
		return nil
	}
	out := make([][]bool, len(e.CLO))
	for j := range e.CLO {
		out[j] = make([]bool, len(e.CLO[j]))
		for l, v := range e.CLO[j] {
			out[j][l] = sol.Value(v) > 0.5
		}
	}
	return out
}
