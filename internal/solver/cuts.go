package solver

import (
	"math"

	"milpjoin/internal/milp"
	"milpjoin/internal/simplex"
	"milpjoin/internal/sparse"
)

// addGomoryCuts runs rounds of root-node Gomory mixed-integer (GMI) cut
// generation: solve the LP relaxation, derive cuts from tableau rows of
// fractional integer basics, translate them into model-space constraints
// (eliminating logical columns via their defining rows), and repeat. Every
// GMI cut is valid for all integer-feasible points, so the model's optimum
// is unchanged while its LP relaxation tightens.
//
// Returns the augmented model (the input is not modified) and the number
// of cuts added. onRound, when non-nil, is invoked after each round with
// the 1-based round index, the cuts added that round, and the simplex
// iterations its LP solve took.
func addGomoryCuts(m *milp.Model, rounds, maxCutsPerRound int, onRound func(round, added, iters int)) (*milp.Model, int) {
	work := cloneModel(m)
	total := 0
	for round := 0; round < rounds; round++ {
		added, iters := gomoryRound(work, maxCutsPerRound)
		total += added
		if onRound != nil {
			onRound(round+1, added, iters)
		}
		if added == 0 {
			break
		}
	}
	return work, total
}

// cloneModel copies a model (structure only; models are append-only so a
// rebuild is straightforward).
func cloneModel(m *milp.Model) *milp.Model {
	out := milp.NewModel(m.Name)
	for j := 0; j < m.NumVars(); j++ {
		v := milp.Var(j)
		l, u := m.Bounds(v)
		out.AddVar(l, u, m.ObjCoeff(v), m.VarType(v), m.VarName(v))
	}
	out.AddObjConstant(m.ObjConstant())
	for i := 0; i < m.NumConstrs(); i++ {
		expr, sense, rhs, name := m.Constr(i)
		out.AddConstr(expr, sense, rhs, name)
	}
	return out
}

// gomoryRound adds up to maxCuts GMI cuts derived from the current LP
// relaxation optimum; returns the number added and the LP's simplex
// iteration count.
func gomoryRound(m *milp.Model, maxCuts int) (int, int) {
	comp := m.Compile()
	prob := comp.Problem
	res, err := simplex.Solve(prob, nil, simplex.Options{})
	if err != nil || res.Status != simplex.StatusOptimal {
		return 0, 0
	}

	nCols := prob.NumCols()
	nRows := prob.NumRows()
	if nRows == 0 {
		return 0, res.Iters
	}

	// Refactorize the optimal basis to answer BTRAN queries for tableau
	// rows.
	tr := sparse.NewTriplet(nRows, nRows)
	for k, j := range res.Basis.Head {
		rows, vals := prob.A.Col(j)
		for p, i := range rows {
			tr.Add(i, k, vals[p])
		}
	}
	lu, err := sparse.Factorize(tr.Compress(), sparse.FactorOptions{})
	if err != nil {
		return 0, res.Iters
	}
	scratch := make([]float64, nRows)
	rowMajor := prob.A.Transpose() // row i of A = column i of the transpose

	const (
		fracTol = 1e-5
		zeroTol = 1e-9
	)
	added := 0
	for r, jB := range res.Basis.Head {
		if added >= maxCuts {
			break
		}
		// Only structural integer basics with fractional values.
		if jB >= comp.NumStructural || !comp.Integral[jB] {
			continue
		}
		beta := res.X[jB]
		f0 := beta - math.Floor(beta)
		if f0 < fracTol || f0 > 1-fracTol {
			continue
		}

		// Tableau row r: rho = B⁻ᵀ e_r, alpha_j = rhoᵀ a_j.
		rho := make([]float64, nRows)
		rho[r] = 1
		lu.SolveTransposeInPlace(rho, scratch)

		// Build the GMI cut over shifted nonbasic variables:
		// Σ γ_j w_j ≥ 1, then unshift into computational space.
		cutCoef := make([]float64, nCols) // on computational variables
		rhs := 1.0
		ok := true
		for j := 0; j < nCols && ok; j++ {
			st := res.Basis.Status[j]
			if st == simplex.Basic {
				continue
			}
			alpha := prob.A.ColDot(j, rho)
			if math.Abs(alpha) < zeroTol {
				continue
			}
			var ahat, shift, sign float64
			switch st {
			case simplex.NonbasicLower:
				ahat, shift, sign = alpha, prob.L[j], 1
			case simplex.NonbasicUpper:
				ahat, shift, sign = -alpha, prob.U[j], -1
			default:
				ok = false // free nonbasic: GMI not applicable
				continue
			}
			if math.IsInf(shift, 0) {
				ok = false
				continue
			}
			var gamma float64
			if j < comp.NumStructural && comp.Integral[j] {
				fj := ahat - math.Floor(ahat)
				if fj <= f0 {
					gamma = fj / f0
				} else {
					gamma = (1 - fj) / (1 - f0)
				}
			} else {
				if ahat >= 0 {
					gamma = ahat / f0
				} else {
					gamma = -ahat / (1 - f0)
				}
			}
			if gamma < zeroTol {
				continue
			}
			// w_j = sign·(x_j − shift·sign)… concretely:
			// lower: w = x − l → γ·x ≥ …, rhs += γ·l
			// upper: w = u − x → −γ·x ≥ …, rhs -= γ·u
			cutCoef[j] += gamma * sign
			rhs += gamma * shift * sign
		}
		if !ok {
			continue
		}

		// Eliminate logical columns: s_i = b_i − Σ_k A_ik·x_k (the
		// logical's defining row, structural part only).
		structCoef := make([]float64, comp.NumStructural)
		cutRHS := rhs
		for j := 0; j < comp.NumStructural; j++ {
			structCoef[j] = cutCoef[j]
		}
		for i := 0; i < nRows; i++ {
			c := cutCoef[comp.NumStructural+i]
			if c == 0 {
				continue
			}
			// c·s_i = c·b_i − c·Σ A_ik x_k  (structural k only).
			cutRHS -= c * prob.B[i]
			cols, vals := rowMajor.Col(i)
			for p, k := range cols {
				if k < comp.NumStructural {
					structCoef[k] -= c * vals[p]
				}
			}
		}

		// Map scaled structural coefficients back to model variables
		// (x_scaled = x_model / ColScale ⇒ coefficient /= ColScale).
		expr := milp.LinExpr{}
		maxC, minC := 0.0, math.Inf(1)
		for j := 0; j < comp.NumStructural; j++ {
			c := structCoef[j] / comp.ColScale[j]
			if math.Abs(c) < zeroTol {
				continue
			}
			expr = expr.Add(milp.Var(j), c)
			if a := math.Abs(c); a > maxC {
				maxC = a
			}
			if a := math.Abs(c); a < minC {
				minC = a
			}
		}
		if expr.NumTerms() == 0 || maxC/minC > 1e10 || maxC > 1e12 {
			continue // numerically useless cut
		}
		// Dense cuts ruin basis sparsity and slow every later LP far
		// more than their bound improvement is worth; keep sparse ones
		// (small models are exempt — any cut there is cheap).
		densityLimit := comp.NumStructural / 4
		if densityLimit < 40 {
			densityLimit = 40
		}
		if expr.NumTerms() > densityLimit {
			continue
		}
		m.AddConstr(expr, milp.GE, cutRHS, "gomory")
		added++
	}
	return added, res.Iters
}
