package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"milpjoin/internal/milp"
	"milpjoin/internal/simplex"
)

func TestGomoryCutClosesClassicGap(t *testing.T) {
	// max x + y s.t. 2x + 2y ≤ 3, x,y ∈ {0,1}: LP optimum 1.5, integer
	// optimum 1. The GMI cut from the fractional row closes the gap.
	build := func() *milp.Model {
		m := milp.NewModel("classic")
		x := m.AddBinary(-1, "x")
		y := m.AddBinary(-1, "y")
		m.AddConstr(milp.Expr(x, 2.0, y, 2.0), milp.LE, 3, "cap")
		return m
	}

	before := build()
	cut, added := addGomoryCuts(before, 1, 16, nil)
	if added == 0 {
		t.Fatal("no cut generated for the classic fractional vertex")
	}
	// The LP relaxation of the cut model must be tighter.
	lpObj := func(m *milp.Model) float64 {
		res, err := simplex.Solve(m.Compile().Problem, nil, simplex.Options{})
		if err != nil || res.Status != simplex.StatusOptimal {
			t.Fatalf("lp solve: %v %v", err, res.Status)
		}
		return res.Obj
	}
	if gotBefore, gotAfter := lpObj(build()), lpObj(cut); gotAfter < gotBefore-1e-9 {
		t.Fatalf("cut loosened the relaxation: %g → %g", gotBefore, gotAfter)
	} else if gotAfter < gotBefore+1e-9 {
		t.Fatalf("cut did not tighten the relaxation: %g → %g", gotBefore, gotAfter)
	}
	// Integer optimum unchanged.
	res, err := Solve(context.Background(), build(), Params{CutRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Solution.Obj-(-1)) > 1e-6 {
		t.Fatalf("with cuts: %v %g, want optimal -1", res.Status, res.Solution.Obj)
	}
}

func TestGomoryCutsPreserveOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		m := milp.NewModel("rand")
		n := 3 + rng.Intn(4)
		vars := make([]milp.Var, n)
		for j := range vars {
			vars[j] = m.AddVar(0, float64(1+rng.Intn(3)), float64(rng.Intn(9)-4), milp.Integer, "")
		}
		for i := 0; i < 2+rng.Intn(3); i++ {
			e := milp.LinExpr{}
			for _, v := range vars {
				if rng.Float64() < 0.7 {
					e = e.Add(v, float64(rng.Intn(7)-3))
				}
			}
			if e.NumTerms() == 0 {
				continue
			}
			sense := []milp.Sense{milp.LE, milp.GE, milp.EQ}[rng.Intn(3)]
			m.AddConstr(e, sense, float64(rng.Intn(9)-3), "")
		}

		plain, err := Solve(context.Background(), m, Params{})
		if err != nil {
			t.Fatal(err)
		}
		withCuts, err := Solve(context.Background(), m, Params{CutRounds: 3})
		if err != nil {
			t.Fatal(err)
		}
		if (plain.Status == StatusOptimal) != (withCuts.Status == StatusOptimal) {
			t.Fatalf("trial %d: plain %v vs cuts %v", trial, plain.Status, withCuts.Status)
		}
		if plain.Status == StatusOptimal {
			if math.Abs(plain.Solution.Obj-withCuts.Solution.Obj) > 1e-5 {
				t.Fatalf("trial %d: plain %g vs cuts %g", trial, plain.Solution.Obj, withCuts.Solution.Obj)
			}
			// The returned cut-run solution must satisfy the ORIGINAL model.
			if err := m.CheckFeasible(withCuts.Solution.Values, 1e-5); err != nil {
				t.Fatalf("trial %d: cut solution infeasible for original: %v", trial, err)
			}
		}
	}
}

func TestGomoryCutsWithContinuousVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		m := milp.NewModel("mixed")
		x := m.AddVar(0, 5, float64(rng.Intn(7)-3), milp.Integer, "x")
		y := m.AddContinuous(0, 5, rng.NormFloat64(), "y")
		z := m.AddBinary(float64(rng.Intn(5)-2), "z")
		m.AddConstr(milp.Expr(x, 2.0, y, 3.0, z, 1.0), milp.LE, float64(4+rng.Intn(6)), "c1")
		m.AddConstr(milp.Expr(x, 1.0, y, -1.0), milp.GE, float64(rng.Intn(3)-1), "c2")

		plain, err := Solve(context.Background(), m, Params{})
		if err != nil {
			t.Fatal(err)
		}
		withCuts, err := Solve(context.Background(), m, Params{CutRounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != withCuts.Status {
			t.Fatalf("trial %d: %v vs %v", trial, plain.Status, withCuts.Status)
		}
		if plain.Status == StatusOptimal && math.Abs(plain.Solution.Obj-withCuts.Solution.Obj) > 1e-5 {
			t.Fatalf("trial %d: %g vs %g", trial, plain.Solution.Obj, withCuts.Solution.Obj)
		}
	}
}

func TestCloneModelIndependent(t *testing.T) {
	m := milp.NewModel("orig")
	x := m.AddBinary(1, "x")
	m.AddConstr(milp.Expr(x, 1.0), milp.LE, 1, "c")
	c := cloneModel(m)
	c.AddConstr(milp.Expr(x, 1.0), milp.GE, 0, "extra")
	if m.NumConstrs() != 1 || c.NumConstrs() != 2 {
		t.Errorf("clone not independent: %d / %d", m.NumConstrs(), c.NumConstrs())
	}
	if c.Name != m.Name || c.VarName(x) != "x" {
		t.Error("clone lost metadata")
	}
}
