// Package solver is the user-facing MILP solver facade: it presolves a
// model, runs branch and bound on the reduced form, and maps solutions back
// to the original variable space. It exposes the solver features the paper
// obtains from Gurobi: anytime incumbents with optimality bounds, MIP-gap
// and time-limit termination, and parallel search.
package solver

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"time"

	"milpjoin/internal/bb"
	"milpjoin/internal/milp"
	"milpjoin/internal/obs"
	"milpjoin/internal/presolve"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal means the returned solution is optimal within the
	// configured gap tolerances.
	StatusOptimal Status = iota
	// StatusInfeasible means the model has no feasible solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusTimeLimit means the time limit expired before optimality was
	// proven; Solution (if present) holds the best incumbent.
	StatusTimeLimit
	// StatusNodeLimit is the analogue for the node limit.
	StatusNodeLimit
	// StatusNoProgress means numerical failures prevented a proof of
	// optimality; Solution (if present) is the best incumbent found.
	StatusNoProgress
	// StatusCanceled means the caller's context was canceled before the
	// solve finished; Solution (if present) holds the best incumbent.
	// A context whose *deadline* expires reports StatusTimeLimit
	// instead: deadlines and Params.TimeLimit compose as one budget.
	StatusCanceled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusTimeLimit:
		return "time limit"
	case StatusNodeLimit:
		return "node limit"
	case StatusNoProgress:
		return "no progress"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Progress is an anytime snapshot forwarded to OnImprovement callbacks.
// Objective values include the model's objective constant.
type Progress = bb.Progress

// Event is one observation from the solver stack (see internal/obs).
// Objective values (incumbent, bound, LP objective) include the model's
// objective constant.
type Event = obs.Event

// EventKind classifies an Event.
type EventKind = obs.EventKind

// Stats aggregates per-phase solver effort (see internal/obs).
type Stats = obs.Stats

// Event kinds, re-exported so callers need not import internal packages.
const (
	KindPresolve     = obs.KindPresolve
	KindLPRelaxation = obs.KindLPRelaxation
	KindIncumbent    = obs.KindIncumbent
	KindBound        = obs.KindBound
	KindCutRound     = obs.KindCutRound
	KindHeuristic    = obs.KindHeuristic
	KindNodeBatch    = obs.KindNodeBatch
	KindWorkerStart  = obs.KindWorkerStart
	KindWorkerStop   = obs.KindWorkerStop

	// Cache-layer kinds, emitted by joinorder/cache rather than the
	// solver itself; re-exported so all kinds live in one namespace.
	KindCacheHit       = obs.KindCacheHit
	KindCacheMiss      = obs.KindCacheMiss
	KindCacheCoalesced = obs.KindCacheCoalesced
	KindWarmStart      = obs.KindWarmStart
	KindDegraded       = obs.KindDegraded

	// Portfolio kinds: live-injected incumbents and strategy-race
	// lifecycle, emitted by branch and bound and the joinorder portfolio
	// orchestrator respectively.
	KindInjected      = obs.KindInjected
	KindStrategyStart = obs.KindStrategyStart
	KindStrategyStop  = obs.KindStrategyStop
	KindWinner        = obs.KindWinner
)

// Params tune the solver.
type Params struct {
	// TimeLimit bounds wall-clock time (zero: none).
	TimeLimit time.Duration
	// GapTol is the relative MIP gap at which search stops (default 1e-6).
	GapTol float64
	// Threads is the number of parallel branch-and-bound workers.
	Threads int
	// MaxNodes bounds explored nodes (zero: none).
	MaxNodes int
	// DisablePresolve skips the presolve phase.
	DisablePresolve bool
	// CutRounds runs this many rounds of root Gomory mixed-integer cut
	// generation before branch and bound (0: off).
	CutRounds int
	// Branching selects the branching rule.
	Branching bb.BranchRule
	// OnImprovement receives anytime progress (serialised).
	OnImprovement func(Progress)
	// OnEvent receives the full structured event stream of the solve:
	// presolve summary, cut rounds, the root LP relaxation, incumbents,
	// bound improvements, heuristic dives, node batches, and worker
	// lifecycle. Callbacks are serialised (never concurrent) and must be
	// fast: they run on solver goroutines, some while search locks are
	// held. Objective values include the model's objective constant.
	OnEvent func(Event)
	// InitialSolution optionally seeds the search with a known feasible
	// assignment in model space (a "MIP start"), length NumVars. An
	// infeasible start is ignored.
	InitialSolution []float64
	// Incumbents, when non-nil, is a live injection feed: candidate
	// feasible assignments in model space (length NumVars, same space as
	// InitialSolution) published while the solve runs, e.g. by portfolio
	// peers racing the same problem. Each candidate passes through the
	// same presolve-reduce and column-scaling transform as
	// InitialSolution and is then offered to branch and bound at node
	// boundaries; infeasible or worse candidates are dropped silently.
	// The sender owns the channel; closing it stops the feed. The
	// receiving pump stops when the solve returns, so late sends are
	// discarded rather than blocking the sender forever (the feed is
	// drained with a bounded buffer).
	Incumbents <-chan []float64
}

// Result reports the outcome.
type Result struct {
	Status   Status
	Solution *milp.Solution // best solution found, nil if none
	// Bound is the proven lower bound on the optimal objective,
	// including the model constant.
	Bound float64
	// Gap is the relative gap between Solution and Bound.
	Gap          float64
	Nodes        int
	SimplexIters int
	Elapsed      time.Duration
	// PresolveRounds reports how many presolve sweeps ran.
	PresolveRounds int
	// Stats aggregates per-phase effort: wall time per phase, simplex
	// iterations, LU refactorizations, heuristic success rates, peak
	// open-node count, and per-worker node counts.
	Stats Stats
}

// ctxStatus maps a context error to the matching termination status.
func ctxStatus(err error) Status {
	if err == context.DeadlineExceeded {
		return StatusTimeLimit
	}
	return StatusCanceled
}

// effectiveTimeLimit combines the configured time limit with the context
// deadline: the effective budget is the minimum of the two, measured from
// now. A zero configured limit means "no limit", in which case the context
// deadline (if any) governs alone.
func effectiveTimeLimit(ctx context.Context, now time.Time, configured time.Duration) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return configured
	}
	remaining := dl.Sub(now)
	if remaining < time.Nanosecond {
		// Deadline already passed; keep a strictly positive limit so
		// "zero" does not read as "unlimited" downstream.
		remaining = time.Nanosecond
	}
	if configured <= 0 || remaining < configured {
		return remaining
	}
	return configured
}

// Solve minimizes the model. The context governs cancellation: cancelling
// it mid-solve returns promptly with StatusCanceled and the best incumbent
// and bound found so far, and a context deadline composes with
// Params.TimeLimit as the minimum of the two budgets (StatusTimeLimit). A
// context that has already ended returns immediately, before presolve or
// branch and bound start.
func Solve(ctx context.Context, m *milp.Model, params Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if params.GapTol <= 0 {
		params.GapTol = 1e-6
	}
	if err := ctx.Err(); err != nil {
		return &Result{Status: ctxStatus(err), Bound: math.Inf(-1)}, nil
	}
	params.TimeLimit = effectiveTimeLimit(ctx, start, params.TimeLimit)

	// The emitter serialises events from every phase against one
	// solve-wide clock. The sink shifts objective values by the model
	// constant of the presolved form; objConst is written before branch
	// and bound starts, and events emitted earlier carry ±Inf objective
	// values, so the shift is always safe.
	var objConst float64
	var emitter *obs.Emitter
	if params.OnEvent != nil {
		onEvent := params.OnEvent
		emitter = obs.NewEmitter(start, func(ev obs.Event) {
			ev.Incumbent += objConst
			ev.Bound += objConst
			if ev.Kind == obs.KindLPRelaxation {
				ev.Objective += objConst
			}
			ev.Gap = obs.RelGap(ev.Incumbent, ev.Bound)
			onEvent(ev)
		})
	}
	var stats Stats
	finishStats := func() Stats {
		stats.TotalTime = time.Since(start)
		stats.Events = emitter.Count()
		return stats
	}

	work := m
	var pre *presolve.Result
	if !params.DisablePresolve {
		var err error
		pprof.Do(ctx, pprof.Labels("milp_phase", "presolve"), func(context.Context) {
			pre, err = presolve.Apply(m, presolve.Options{})
		})
		if err != nil {
			return nil, err
		}
		stats.PresolveTime = pre.Elapsed
		stats.PresolveRounds = pre.Rounds
		stats.RowsRemoved = pre.RowsRemoved
		stats.ColsRemoved = pre.ColsRemoved
		emitter.Emit(obs.Event{
			Kind:        obs.KindPresolve,
			Worker:      -1,
			Incumbent:   math.Inf(1),
			Bound:       math.Inf(-1),
			Rounds:      pre.Rounds,
			RowsRemoved: pre.RowsRemoved,
			ColsRemoved: pre.ColsRemoved,
		})
		switch pre.Status {
		case presolve.StatusInfeasible:
			return &Result{
				Status:  StatusInfeasible,
				Bound:   math.Inf(1),
				Elapsed: time.Since(start),
				Stats:   finishStats(),
			}, nil
		case presolve.StatusSolved:
			vals := pre.FixedSolution()
			if err := m.CheckFeasible(vals, 1e-6); err != nil {
				return &Result{Status: StatusInfeasible, Bound: math.Inf(1), Elapsed: time.Since(start), Stats: finishStats()}, nil
			}
			obj := m.EvalObjective(vals)
			return &Result{
				Status:         StatusOptimal,
				Solution:       &milp.Solution{Values: vals, Obj: obj},
				Bound:          obj,
				PresolveRounds: pre.Rounds,
				Elapsed:        time.Since(start),
				Stats:          finishStats(),
			}, nil
		}
		work = pre.Model
	}

	if params.CutRounds > 0 {
		cutStart := time.Now()
		var totalCuts, cutRounds int
		pprof.Do(ctx, pprof.Labels("milp_phase", "cuts"), func(context.Context) {
			work, totalCuts = addGomoryCuts(work, params.CutRounds, 16, func(round, added, iters int) {
				cutRounds = round
				emitter.Emit(obs.Event{
					Kind:      obs.KindCutRound,
					Worker:    -1,
					Incumbent: math.Inf(1),
					Bound:     math.Inf(-1),
					Rounds:    round,
					Cuts:      added,
					Iters:     iters,
				})
			})
		})
		stats.CutTime = time.Since(cutStart)
		stats.CutRounds = cutRounds
		stats.CutsAdded = totalCuts
	}

	comp := work.Compile()
	objConst = work.ObjConstant()

	bbParams := bb.Params{
		TimeLimit: params.TimeLimit,
		GapTol:    params.GapTol,
		Threads:   params.Threads,
		MaxNodes:  params.MaxNodes,
		Branching: params.Branching,
		Events:    emitter,
	}
	if params.OnImprovement != nil {
		bbParams.OnImprovement = func(p bb.Progress) {
			p.Incumbent += objConst
			p.Bound += objConst
			params.OnImprovement(p)
		}
	}
	if len(params.InitialSolution) == m.NumVars() {
		start := params.InitialSolution
		if pre != nil {
			start = pre.Reduce(start)
		}
		if start != nil {
			scaled := make([]float64, len(start))
			for j := range start {
				scaled[j] = start[j] / comp.ColScale[j]
			}
			bbParams.InitialIncumbent = scaled
		}
	}
	if params.Incumbents != nil {
		// Forwarding pump: model-space candidates from the caller are
		// reduced and scaled into the computational space branch and
		// bound searches. The stop channel unblocks a pending inner
		// send when the solve finishes before the feed closes.
		inner := make(chan []float64, 4)
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			defer close(inner)
			for {
				select {
				case <-stop:
					return
				case vals, ok := <-params.Incumbents:
					if !ok {
						return
					}
					if len(vals) != m.NumVars() {
						continue
					}
					cand := vals
					if pre != nil {
						cand = pre.Reduce(cand)
					}
					if cand == nil || len(cand) != len(comp.ColScale) {
						continue
					}
					scaled := make([]float64, len(cand))
					for j := range cand {
						scaled[j] = cand[j] / comp.ColScale[j]
					}
					select {
					case inner <- scaled:
					case <-stop:
						return
					}
				}
			}
		}()
		bbParams.Incumbents = inner
	}

	res, err := bb.Solve(ctx, comp, bbParams)
	if err != nil {
		return nil, err
	}

	// Merge the search-phase stats from branch and bound with the
	// presolve/cut phase stats accumulated above.
	bbStats := res.Stats
	bbStats.PresolveTime = stats.PresolveTime
	bbStats.PresolveRounds = stats.PresolveRounds
	bbStats.RowsRemoved = stats.RowsRemoved
	bbStats.ColsRemoved = stats.ColsRemoved
	bbStats.CutTime = stats.CutTime
	bbStats.CutRounds = stats.CutRounds
	bbStats.CutsAdded = stats.CutsAdded
	stats = bbStats

	out := &Result{
		Gap:          res.Gap,
		Nodes:        res.Nodes,
		SimplexIters: res.SimplexIters,
		Elapsed:      time.Since(start),
		Stats:        finishStats(),
	}
	if pre != nil {
		out.PresolveRounds = pre.Rounds
	}
	out.Bound = res.Bound + objConst

	switch res.Status {
	case bb.StatusOptimal:
		out.Status = StatusOptimal
	case bb.StatusInfeasible:
		out.Status = StatusInfeasible
		out.Bound = math.Inf(1)
	case bb.StatusUnbounded:
		out.Status = StatusUnbounded
		out.Bound = math.Inf(-1)
	case bb.StatusTimeLimit:
		out.Status = StatusTimeLimit
	case bb.StatusNodeLimit:
		out.Status = StatusNodeLimit
	case bb.StatusNoProgress:
		out.Status = StatusNoProgress
	case bb.StatusCanceled:
		out.Status = StatusCanceled
	}

	if res.HasIncumbent {
		reduced := comp.Unscale(res.X[:work.NumVars()])
		var vals []float64
		if pre != nil {
			vals = pre.Postsolve(reduced)
		} else {
			vals = reduced
		}
		// Prefer integral values where the rounding stays feasible.
		rounded := append([]float64(nil), vals...)
		for j := 0; j < m.NumVars(); j++ {
			if m.IsIntegral(milp.Var(j)) {
				rounded[j] = math.Round(rounded[j])
			}
		}
		if m.CheckFeasible(rounded, 1e-5) == nil {
			vals = rounded
		}
		out.Solution = &milp.Solution{Values: vals, Obj: m.EvalObjective(vals)}
	}
	return out, nil
}
