package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"milpjoin/internal/milp"
)

// hardKnapsack builds a correlated knapsack the solver cannot close within
// a few milliseconds — the workload for cancellation and deadline tests.
func hardKnapsack(seed int64) *milp.Model {
	rng := rand.New(rand.NewSource(seed))
	m := milp.NewModel("hard")
	e := milp.LinExpr{}
	for j := 0; j < 60; j++ {
		w := 1 + rng.Float64()*20
		v := m.AddBinary(-(w + rng.Float64()*0.01), "")
		e = e.Add(v, w)
	}
	m.AddConstr(e, milp.LE, 100, "cap")
	return m
}

func TestEffectiveTimeLimit(t *testing.T) {
	now := time.Unix(1000, 0)
	bg := context.Background()
	withDeadline := func(d time.Duration) context.Context {
		ctx, cancel := context.WithDeadline(bg, now.Add(d))
		t.Cleanup(cancel)
		return ctx
	}

	cases := []struct {
		name       string
		ctx        context.Context
		configured time.Duration
		want       time.Duration
	}{
		{"no deadline, no limit", bg, 0, 0},
		{"no deadline keeps the configured limit", bg, time.Minute, time.Minute},
		{"deadline alone becomes the limit", withDeadline(10 * time.Second), 0, 10 * time.Second},
		{"tighter deadline wins", withDeadline(10 * time.Second), time.Minute, 10 * time.Second},
		{"tighter configured limit wins", withDeadline(time.Minute), 10 * time.Second, 10 * time.Second},
		{"expired deadline stays positive", withDeadline(-time.Second), time.Minute, time.Nanosecond},
	}
	for _, tc := range cases {
		if got := effectiveTimeLimit(tc.ctx, now, tc.configured); got != tc.want {
			t.Errorf("%s: effectiveTimeLimit = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestDeadlineComposesWithTimeLimit pins the composition contract end to
// end: whichever of Params.TimeLimit and the context deadline is tighter
// bounds the solve, and both report StatusTimeLimit.
func TestDeadlineComposesWithTimeLimit(t *testing.T) {
	run := func(ctx context.Context, limit time.Duration) (*Result, time.Duration) {
		start := time.Now()
		res, err := Solve(ctx, hardKnapsack(7), Params{TimeLimit: limit, GapTol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		return res, time.Since(start)
	}

	// Context deadline tighter than the configured limit.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, elapsed := run(ctx, time.Minute)
	if res.Status != StatusTimeLimit {
		t.Errorf("deadline-governed: status %v, want %v", res.Status, StatusTimeLimit)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline-governed solve ran %v, deadline was 50ms", elapsed)
	}

	// Configured limit tighter than the context deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	res2, elapsed2 := run(ctx2, 50*time.Millisecond)
	if res2.Status != StatusTimeLimit {
		t.Errorf("limit-governed: status %v, want %v", res2.Status, StatusTimeLimit)
	}
	if elapsed2 > 5*time.Second {
		t.Errorf("limit-governed solve ran %v, limit was 50ms", elapsed2)
	}
}

func TestCancellationMidSolve(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Solve(ctx, hardKnapsack(9), Params{GapTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCanceled && res.Status != StatusOptimal {
		t.Errorf("status = %v, want canceled (or optimal if the solve won the race)", res.Status)
	}
	if res.Status == StatusCanceled {
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancellation took %v to unwind", elapsed)
		}
		// The bound must stay valid on the partial search.
		if res.Solution != nil && res.Solution.Obj < res.Bound-1e-6 {
			t.Errorf("incumbent %g below bound %g", res.Solution.Obj, res.Bound)
		}
	}
}

func TestAlreadyEndedContext(t *testing.T) {
	// Canceled before the call: StatusCanceled, nothing solved.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(ctx, hardKnapsack(11), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusCanceled || res.Solution != nil || res.Nodes != 0 {
		t.Errorf("canceled upfront: %+v", res)
	}
	if !math.IsInf(res.Bound, -1) {
		t.Errorf("no search ran, bound should be -Inf, got %g", res.Bound)
	}

	// Expired deadline: a time budget of zero, so StatusTimeLimit.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer dcancel()
	res, err = Solve(dctx, hardKnapsack(11), Params{TimeLimit: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusTimeLimit || res.Nodes != 0 {
		t.Errorf("expired deadline: %+v", res)
	}
}
