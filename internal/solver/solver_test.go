package solver

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"milpjoin/internal/bb"
	"milpjoin/internal/milp"
)

func TestKnapsackThroughFacade(t *testing.T) {
	m := milp.NewModel("knapsack")
	a := m.AddBinary(-10, "a")
	b := m.AddBinary(-13, "b")
	c := m.AddBinary(-7, "c")
	d := m.AddBinary(-4, "d")
	m.AddConstr(milp.Expr(a, 3.0, b, 4.0, c, 2.0, d, 1.0), milp.LE, 6, "cap")

	res, err := Solve(context.Background(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Solution.Obj-(-21)) > 1e-6 {
		t.Errorf("obj = %g, want -21", res.Solution.Obj)
	}
	if err := m.CheckFeasible(res.Solution.Values, 1e-6); err != nil {
		t.Errorf("solution infeasible: %v", err)
	}
	if math.Abs(res.Bound-res.Solution.Obj) > 1e-5 {
		t.Errorf("bound %g != obj %g at optimality", res.Bound, res.Solution.Obj)
	}
}

func TestPresolveOnlySolve(t *testing.T) {
	// Everything determined by singleton equalities: presolve solves it.
	m := milp.NewModel("trivial")
	x := m.AddVar(0, 10, 2, milp.Integer, "x")
	y := m.AddContinuous(0, 10, 1, "y")
	m.AddConstr(milp.Expr(x, 1.0), milp.EQ, 4, "fx")
	m.AddConstr(milp.Expr(y, 2.0), milp.EQ, 6, "fy")

	res, err := Solve(context.Background(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Nodes != 0 {
		t.Errorf("nodes = %d, want 0 (presolve should finish)", res.Nodes)
	}
	if math.Abs(res.Solution.Obj-11) > 1e-9 {
		t.Errorf("obj = %g, want 11", res.Solution.Obj)
	}
}

func TestObjectiveConstantPropagates(t *testing.T) {
	m := milp.NewModel("const")
	x := m.AddVar(2, 2, 3, milp.Integer, "x") // fixed: contributes 6
	y := m.AddBinary(-1, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 5, "c")
	m.AddObjConstant(100)

	res, err := Solve(context.Background(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Optimal: y = 1 → obj = 100 + 6 − 1 = 105.
	if math.Abs(res.Solution.Obj-105) > 1e-6 {
		t.Errorf("obj = %g, want 105", res.Solution.Obj)
	}
	if math.Abs(res.Bound-105) > 1e-5 {
		t.Errorf("bound = %g, want 105", res.Bound)
	}
}

func TestInfeasibleThroughPresolve(t *testing.T) {
	m := milp.NewModel("inf")
	x := m.AddBinary(0, "x")
	m.AddConstr(milp.Expr(x, 1.0), milp.GE, 3, "imposs")
	res, err := Solve(context.Background(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Solution != nil {
		t.Error("infeasible result carries a solution")
	}
}

func TestInfeasibleWithPresolveDisabled(t *testing.T) {
	m := milp.NewModel("inf2")
	x := m.AddBinary(0, "x")
	y := m.AddBinary(0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.EQ, 1.5, "half")
	res, err := Solve(context.Background(), m, Params{DisablePresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := milp.NewModel("unb")
	x := m.AddContinuous(0, math.Inf(1), -1, "x")
	y := m.AddContinuous(0, math.Inf(1), 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, -1.0), milp.LE, 0, "c")
	res, err := Solve(context.Background(), m, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestPresolveOnOffAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		m := milp.NewModel("agree")
		n := 3 + rng.Intn(4)
		vars := make([]milp.Var, n)
		for j := range vars {
			vars[j] = m.AddVar(0, float64(1+rng.Intn(3)), float64(rng.Intn(9)-4), milp.Integer, "")
		}
		for i := 0; i < 2+rng.Intn(3); i++ {
			e := milp.LinExpr{}
			for _, v := range vars {
				if rng.Float64() < 0.6 {
					e = e.Add(v, float64(rng.Intn(7)-3))
				}
			}
			if e.NumTerms() == 0 {
				continue
			}
			sense := []milp.Sense{milp.LE, milp.GE, milp.EQ}[rng.Intn(3)]
			m.AddConstr(e, sense, float64(rng.Intn(9)-3), "")
		}
		with, err := Solve(context.Background(), m, Params{})
		if err != nil {
			t.Fatal(err)
		}
		without, err := Solve(context.Background(), m, Params{DisablePresolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if (with.Status == StatusOptimal) != (without.Status == StatusOptimal) {
			t.Fatalf("trial %d: with %v vs without %v", trial, with.Status, without.Status)
		}
		if with.Status == StatusOptimal && math.Abs(with.Solution.Obj-without.Solution.Obj) > 1e-5 {
			t.Fatalf("trial %d: obj %g vs %g", trial, with.Solution.Obj, without.Solution.Obj)
		}
	}
}

func TestAnytimeCallbackIncludesConstant(t *testing.T) {
	m := milp.NewModel("anytime")
	m.AddObjConstant(50)
	rng := rand.New(rand.NewSource(52))
	e := milp.LinExpr{}
	for j := 0; j < 14; j++ {
		v := m.AddBinary(-(1 + rng.Float64()*9), "")
		e = e.Add(v, 1+rng.Float64()*9)
	}
	m.AddConstr(e, milp.LE, 22, "cap")

	var seen []Progress
	res, err := Solve(context.Background(), m, Params{OnImprovement: func(p Progress) { seen = append(seen, p) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if len(seen) == 0 {
		t.Fatal("no callbacks")
	}
	final := seen[len(seen)-1]
	if math.Abs(final.Incumbent-res.Solution.Obj) > 1e-5 {
		t.Errorf("callback incumbent %g vs final obj %g (constant lost?)", final.Incumbent, res.Solution.Obj)
	}
}

func TestTimeLimitStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := milp.NewModel("tl")
	// Correlated knapsack: hard to close the gap.
	e := milp.LinExpr{}
	for j := 0; j < 60; j++ {
		w := 1 + rng.Float64()*20
		v := m.AddBinary(-(w + rng.Float64()*0.01), "")
		e = e.Add(v, w)
	}
	m.AddConstr(e, milp.LE, 100, "cap")
	res, err := Solve(context.Background(), m, Params{TimeLimit: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == StatusTimeLimit {
		// Anytime property: even on timeout there is usually an
		// incumbent from the heuristics, and the bound is valid.
		if res.Solution != nil && res.Solution.Obj < res.Bound-1e-6 {
			t.Errorf("incumbent %g below bound %g", res.Solution.Obj, res.Bound)
		}
	}
}

func TestMaxNodesStatus(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m := milp.NewModel("nodes")
	e := milp.LinExpr{}
	for j := 0; j < 30; j++ {
		v := m.AddBinary(-(1 + rng.Float64()*10), "")
		e = e.Add(v, 1+rng.Float64()*10)
	}
	m.AddConstr(e, milp.LE, 40, "cap")
	res, err := Solve(context.Background(), m, Params{MaxNodes: 2, DisablePresolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNodeLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestBranchRulePassthrough(t *testing.T) {
	m := milp.NewModel("branch")
	x := m.AddVar(0, 10, -1, milp.Integer, "x")
	m.AddConstr(milp.Expr(x, 2.0), milp.LE, 7, "c")
	res, err := Solve(context.Background(), m, Params{Branching: bb.BranchMostFractional})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Solution.Obj-(-3)) > 1e-6 {
		t.Fatalf("status %v obj %g", res.Status, res.Solution.Obj)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusTimeLimit:  "time limit",
		StatusNodeLimit:  "node limit",
		StatusNoProgress: "no progress",
	} {
		if st.String() != want {
			t.Errorf("%v", st)
		}
	}
}
