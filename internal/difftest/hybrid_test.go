package difftest

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// TestHybridAgainstBushyOptimum cross-checks the hybrid decomposition
// strategy against the exact bushy optimum on every small matrix query:
//
//  1. the hybrid's reported lower bound never exceeds the bushy optimum
//     (the bound is valid over the full bushy plan space), and
//  2. the hybrid's stitched plan never costs less than the bushy optimum
//     (no plan does — any violation means a costing bug in the stitcher).
//
// Both the exact single-partition path (default cap, n below it) and the
// decomposed path (cap forced to 4 so every query is cut, stitched, and
// seam-optimized) are exercised.
func TestHybridAgainstBushyOptimum(t *testing.T) {
	const tol = 1 + 1e-9
	forEachQuery(t, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query) {
		bushy, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dp-bushy"})
		if err != nil {
			t.Fatalf("%v n=%d seed=%d: dp-bushy: %v", shape, n, seed, err)
		}
		for name, opts := range map[string]joinorder.Options{
			"exact path": {Strategy: "hybrid"},
			"decomposed": {Strategy: "hybrid", PartitionCap: 4, Budget: joinorder.Budget{TimeLimit: 10 * time.Second}},
		} {
			res, err := joinorder.Optimize(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("%v n=%d seed=%d: hybrid (%s): %v", shape, n, seed, name, err)
			}
			if err := res.Plan.Validate(q); err != nil {
				t.Fatalf("%v n=%d seed=%d: hybrid (%s) invalid plan: %v", shape, n, seed, name, err)
			}
			if math.IsInf(res.Bound, 0) || math.IsNaN(res.Bound) {
				t.Errorf("%v n=%d seed=%d: hybrid (%s) bound %g not finite", shape, n, seed, name, res.Bound)
			}
			if res.Bound > bushy.Cost*tol {
				t.Errorf("%v n=%d seed=%d: hybrid (%s) bound %g exceeds bushy optimum %g",
					shape, n, seed, name, res.Bound, bushy.Cost)
			}
			if res.Cost*tol < bushy.Cost {
				t.Errorf("%v n=%d seed=%d: hybrid (%s) cost %g beats the bushy optimum %g — costing bug",
					shape, n, seed, name, res.Cost, bushy.Cost)
			}
		}
	})
}

// TestHybridBeyondMonolithReach is the headline capability diff: on a
// 120-table snowflake the exact DP strategies refuse outright (the 2^n
// table caps), the monolithic MILP burns its whole budget at the root
// node and answers with its heuristic MIP start, while the hybrid returns
// a feasible stitched plan with a finite proven bound inside the same
// budget — and never a worse plan than the MILP's.
func TestHybridBeyondMonolithReach(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second solves")
	}
	q := workload.Generate(workload.Snowflake, 120, 1, workload.Config{})

	for _, strat := range []string{"dp-bushy", "dpconv", "dp-leftdeep"} {
		if _, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: strat}); err == nil {
			t.Errorf("%s accepted 120 tables; the table-cap guard is gone", strat)
		} else if !errors.Is(err, joinorder.ErrInvalidOptions) && !errors.Is(err, joinorder.ErrInvalidQuery) {
			t.Logf("%s rejected 120 tables with: %v", strat, err)
		}
	}

	budget := joinorder.Budget{TimeLimit: 3 * time.Second}
	milp, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "milp", Budget: budget})
	if err != nil {
		t.Fatalf("milp: %v", err)
	}
	if milp.Status == joinorder.StatusOptimal {
		t.Fatalf("milp proved optimality on 120 tables in %v — the instance is no longer hard", budget.TimeLimit)
	}

	start := time.Now()
	hyb, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "hybrid", Budget: budget})
	if err != nil {
		t.Fatalf("hybrid: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*budget.TimeLimit+2*time.Second {
		t.Errorf("hybrid took %v against a %v budget", elapsed, budget.TimeLimit)
	}
	if hyb.Plan == nil || len(hyb.Plan.Order) != 120 {
		t.Fatal("hybrid returned no complete 120-table plan")
	}
	if err := hyb.Plan.Validate(q); err != nil {
		t.Fatalf("hybrid plan invalid: %v", err)
	}
	if math.IsInf(hyb.Bound, 0) || math.IsNaN(hyb.Bound) || hyb.Bound <= 0 {
		t.Errorf("hybrid bound %g not finite and positive", hyb.Bound)
	}
	if hyb.Cost > milp.Cost*(1+1e-9) {
		t.Errorf("hybrid cost %g worse than the milp MIP start %g", hyb.Cost, milp.Cost)
	}
}
