package difftest

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// TestMILPDeterministicAcrossWorkerCounts solves the same queries with 1,
// 2, and 8 branch-and-bound workers and checks the answers agree.
//
// What must be identical: the proven-optimal objective, the exact plan
// cost, and the final bound (both equal the objective at optimality
// within the gap tolerance). What may legitimately differ: the plan
// itself, when multiple orders tie on objective — with several workers
// the race to the last incumbent is timing-dependent, so we assert
// cost-equality of plans rather than order-equality. With a single
// worker the search is fully deterministic, and the plan must be
// bit-identical run to run.
func TestMILPDeterministicAcrossWorkerCounts(t *testing.T) {
	queries := []*joinorder.Query{
		workload.Generate(workload.Chain, 8, 42, workload.Config{}),
		workload.Generate(workload.Cycle, 8, 43, workload.Config{}),
		workload.Generate(workload.Star, 8, 44, workload.Config{}),
		workload.Generate(workload.Clique, 7, 45, workload.Config{}),
	}
	const gapTol = 1e-6
	for qi, q := range queries {
		var base *joinorder.Result
		for _, threads := range []int{1, 2, 8} {
			opts := joinorder.Options{
				Strategy:  "milp",
				Threads:   threads,
				Seed:      7,
				TimeLimit: 2 * time.Minute,
			}
			res, err := joinorder.Optimize(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("query %d threads %d: %v", qi, threads, err)
			}
			if res.Status != joinorder.StatusOptimal {
				t.Fatalf("query %d threads %d: status %v, want optimal", qi, threads, res.Status)
			}
			if res.Gap > gapTol {
				t.Errorf("query %d threads %d: gap %g above tolerance", qi, threads, res.Gap)
			}
			if base == nil {
				base = res
				continue
			}
			if math.Abs(res.Objective-base.Objective) > gapTol*math.Max(1, math.Abs(base.Objective)) {
				t.Errorf("query %d threads %d: objective %g != single-worker %g",
					qi, threads, res.Objective, base.Objective)
			}
			if math.Abs(res.Cost-base.Cost) > 1e-6*math.Max(1, base.Cost) {
				t.Errorf("query %d threads %d: plan cost %g != single-worker %g",
					qi, threads, res.Cost, base.Cost)
			}
			relTol := gapTol * math.Max(1, math.Abs(base.Objective))
			if res.Bound < base.Objective-relTol || res.Bound > res.Objective+relTol {
				t.Errorf("query %d threads %d: bound %g inconsistent with optimal objective %g",
					qi, threads, res.Bound, res.Objective)
			}
		}
	}
}

// TestMILPSingleWorkerRunsAreIdentical re-solves with one worker and
// checks the full plan — not just its cost — reproduces exactly. The
// query uses moderate cardinalities so the search provably finishes:
// bounds of a run stopped by wall clock depend on where the clock caught
// the search, which is timing, not nondeterminism.
func TestMILPSingleWorkerRunsAreIdentical(t *testing.T) {
	q := workload.Generate(workload.Cycle, 7, 7, workload.Config{MinLogCard: 1, MaxLogCard: 3})
	opts := joinorder.Options{Strategy: "milp", Threads: 1, Seed: 3, TimeLimit: 2 * time.Minute}

	var first *joinorder.Result
	for run := 0; run < 3; run++ {
		res, err := joinorder.Optimize(context.Background(), q, opts)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if res.Status != joinorder.StatusOptimal {
			t.Fatalf("run %d: status %v, want optimal (query meant to be easy)", run, res.Status)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(res.Plan.Order, first.Plan.Order) {
			t.Fatalf("run %d: plan %v != first run %v with identical seed and one worker",
				run, res.Plan.Order, first.Plan.Order)
		}
		if res.Objective != first.Objective || res.Bound != first.Bound {
			t.Fatalf("run %d: objective/bound (%g, %g) != (%g, %g)",
				run, res.Objective, res.Bound, first.Objective, first.Bound)
		}
	}
}
