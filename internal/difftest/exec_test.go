package difftest

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"milpjoin/internal/exec"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// execMatrix is the grid for tests that actually execute every plan:
// sizes stay small enough that even a heuristic's worst plan materializes
// quickly, and every strategy (including the MILP) solves well inside its
// budget.
func execMatrix(shape workload.GraphShape) (minN, maxN, seedsPer int) {
	full := os.Getenv("DIFFTEST_FULL") != ""
	switch {
	case full:
		// 4 sizes (4..7) × 50 seeds = 200 queries per topology.
		return 4, 7, 50
	case testing.Short():
		return 4, 5, 1
	default:
		return 4, 6, 2
	}
}

// execQuery generates a query whose synthesized database stays small:
// 10…100-row tables and moderate selectivities keep every intermediate
// result executable even under a heuristic's worst join order.
func execQuery(shape workload.GraphShape, n int, seed int64) *joinorder.Query {
	return workload.Generate(shape, n, seed, workload.Config{
		MinLogCard: 1, MaxLogCard: 2,
		MinSel: 0.02, MaxSel: 0.3,
	})
}

func forEachExecQuery(t *testing.T, fn func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query, db *exec.Database)) {
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			minN, maxN, seedsPer := execMatrix(shape)
			for n := minN; n <= maxN; n++ {
				for s := 0; s < seedsPer; s++ {
					seed := int64(1000*n + s)
					q := execQuery(shape, n, seed)
					db, err := exec.Synthesize(q, seed*31+7)
					if err != nil {
						t.Fatalf("n=%d seed=%d: synthesize: %v", n, seed, err)
					}
					fn(t, shape, n, seed, q, db)
				}
			}
		})
	}
}

// measuredCout optimizes with one strategy and executes the plan through
// the streaming executor, returning the result fingerprint and the
// measured C_out (summed intermediate result sizes). Strategies that
// legitimately decline the query (IKKBZ on cyclic join graphs) report ok
// = false.
func measuredCout(t *testing.T, db *exec.Database, q *joinorder.Query, strategy string) (uint64, float64, bool) {
	t.Helper()
	res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
		Strategy:  strategy,
		TimeLimit: 10 * time.Second,
	})
	if errors.Is(err, joinorder.ErrNoPlan) {
		return 0, 0, false
	}
	if err != nil {
		t.Fatalf("%s: %v", strategy, err)
	}
	run, err := db.Stream(res.Tree, exec.StreamOptions{})
	if err != nil {
		t.Fatalf("%s: stream: %v", strategy, err)
	}
	rel, err := run.Collect()
	if err != nil {
		t.Fatalf("%s: execute: %v", strategy, err)
	}
	fp, err := rel.Fingerprint(db.AllColumns())
	if err != nil {
		t.Fatal(err)
	}
	return fp, run.Trace.MeasuredCout(), true
}

// TestAllStrategiesExecuteToSameResult runs every registered strategy's
// plan through the streaming executor and checks that all of them produce
// the same result multiset — execution-level differential testing of the
// whole registry, left-deep and bushy planners alike.
func TestAllStrategiesExecuteToSameResult(t *testing.T) {
	strategies := joinorder.Strategies()
	forEachExecQuery(t, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query, db *exec.Database) {
		var want uint64
		first := ""
		for _, strat := range strategies {
			fp, _, ok := measuredCout(t, db, q, strat)
			if !ok {
				continue
			}
			if first == "" {
				want, first = fp, strat
			} else if fp != want {
				t.Errorf("%v n=%d seed=%d: strategy %s produced a different result than %s",
					shape, n, seed, strat, first)
			}
		}
	})
}

// TestExecutedCostOrdering compares strategies on what actually matters:
// the measured intermediate result rows of their executed plans. Summed
// over the whole matrix (single queries are subject to sampling noise in
// the synthesized data), the MILP's and the hybrid decomposition's
// executed cost must not exceed the greedy heuristic's.
func TestExecutedCostOrdering(t *testing.T) {
	totals := map[string]float64{}
	queries := 0
	for _, shape := range shapes {
		minN, maxN, seedsPer := execMatrix(shape)
		for n := minN; n <= maxN; n++ {
			for s := 0; s < seedsPer; s++ {
				seed := int64(1000*n + s)
				q := execQuery(shape, n, seed)
				db, err := exec.Synthesize(q, seed*31+7)
				if err != nil {
					t.Fatalf("%v n=%d seed=%d: synthesize: %v", shape, n, seed, err)
				}
				for _, strat := range []string{"milp", "hybrid", "greedy"} {
					_, cout, ok := measuredCout(t, db, q, strat)
					if !ok {
						t.Fatalf("%v n=%d seed=%d: %s declined the query", shape, n, seed, strat)
					}
					totals[strat] += cout
				}
				queries++
			}
		}
	}
	greedy := totals["greedy"]
	t.Logf("executed C_out over %d queries: milp %.0f, hybrid %.0f, greedy %.0f",
		queries, totals["milp"], totals["hybrid"], greedy)
	// Tiny slack covers data-sampling noise: the optimizers minimize
	// expected cost, the executor measures one sample of it.
	slack := greedy*0.02 + 10
	if totals["milp"] > greedy+slack {
		t.Errorf("MILP executed C_out %.0f exceeds greedy's %.0f", totals["milp"], greedy)
	}
	if totals["hybrid"] > greedy+slack {
		t.Errorf("hybrid executed C_out %.0f exceeds greedy's %.0f", totals["hybrid"], greedy)
	}
}
