// Package difftest cross-checks the optimizers against each other on
// randomized workloads: the MILP strategy against the exact left-deep DP
// baseline (within the encoding's proven approximation guarantee), the DP
// baselines against an exhaustive oracle, and the strategy hierarchy
// dp-bushy ≤ dp-leftdeep ≤ greedy. Any disagreement is a bug in one of
// the optimizers — there is no "expected output" file to go stale.
//
// The seed matrix is fixed, so failures reproduce exactly. Plain `go test`
// runs a reduced matrix; setting DIFFTEST_FULL=1 (as CI does) widens it to
// at least 200 queries per topology.
package difftest

import (
	"context"
	"math"
	"os"
	"testing"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

var shapes = []workload.GraphShape{workload.Chain, workload.Cycle, workload.Star, workload.Clique}

// matrix yields the deterministic (n, seed) grid per topology for the
// DP-only tests, which are cheap at every size. Clique sizes are capped
// lower with more seeds so each topology still gets ≥200 queries in full
// mode.
func matrix(shape workload.GraphShape) (minN, maxN, seedsPer int) {
	full := os.Getenv("DIFFTEST_FULL") != ""
	switch {
	case full && shape == workload.Clique:
		// 4 sizes (4..7) × 50 seeds = 200 queries.
		return 4, 7, 50
	case full:
		// 7 sizes (4..10) × 29 seeds = 203 queries.
		return 4, 10, 29
	case testing.Short():
		return 4, 5, 2
	case shape == workload.Clique:
		return 4, 6, 3
	default:
		return 4, 7, 3
	}
}

// milpMatrix is the grid for tests that solve every query with the MILP
// strategy to proven optimality. Sizes are chosen per shape so solves
// finish well inside the per-query time budget (a budget stop proves
// nothing and only burns CI time): stars stay easy up to 10 tables,
// while dense chains/cycles/cliques above 7 start hitting the budget.
// Seed counts compensate to keep ≥200 queries per topology in full mode.
func milpMatrix(shape workload.GraphShape) (minN, maxN, seedsPer int) {
	full := os.Getenv("DIFFTEST_FULL") != ""
	switch {
	case full && shape == workload.Star:
		// 7 sizes (4..10) × 29 seeds = 203 queries.
		return 4, 10, 29
	case full:
		// 4 sizes (4..7) × 50 seeds = 200 queries.
		return 4, 7, 50
	case testing.Short():
		return 4, 5, 2
	case shape == workload.Clique:
		return 4, 6, 3
	default:
		return 4, 7, 3
	}
}

type matrixFunc func(workload.GraphShape) (minN, maxN, seedsPer int)

func forEachQueryMatrix(t *testing.T, matrix matrixFunc, fn func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query)) {
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.String(), func(t *testing.T) {
			t.Parallel()
			minN, maxN, seedsPer := matrix(shape)
			for n := minN; n <= maxN; n++ {
				for s := 0; s < seedsPer; s++ {
					seed := int64(1000*n + s)
					// Moderate cardinalities (10..1000 rows) keep the
					// uncapped threshold ladder short enough to solve
					// hundreds of instances.
					q := workload.Generate(shape, n, seed, workload.Config{MinLogCard: 1, MaxLogCard: 3})
					fn(t, shape, n, seed, q)
				}
			}
		})
	}
}

func forEachQuery(t *testing.T, fn func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query)) {
	forEachQueryMatrix(t, matrix, fn)
}

// TestMILPAgainstExactDP solves every matrix query with the MILP strategy
// at every precision and checks the paper's guarantee against the exact
// left-deep optimum:
//
//  1. the MILP plan's exact cost is never better than the DP optimum
//     (DP is exact over the same space), and never worse than ratio
//     times it — the threshold ladder underestimates each intermediate
//     cardinality by at most the ratio, so a proven-optimal MILP plan's
//     true cost is within one ratio factor of optimal;
//  2. in model space the comparison is tight: the MILP's optimal
//     objective is at most the DP plan's approximated objective (the DP
//     plan is a feasible MILP assignment).
func TestMILPAgainstExactDP(t *testing.T) {
	forEachQueryMatrix(t, milpMatrix, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query) {
		dpRes, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dp-leftdeep"})
		if err != nil {
			t.Fatalf("n=%d seed=%d: dp: %v", n, seed, err)
		}
		// The approximation guarantee holds only below the cardinality
		// cap (capped intermediates are priced at the cap, an unbounded
		// underestimate), so raise the cap above the query's largest
		// possible intermediate result: the product of all table
		// cardinalities.
		cap := 2.0
		for _, tb := range q.Tables {
			cap *= tb.Card
		}
		for _, prec := range []joinorder.Precision{joinorder.PrecisionHigh, joinorder.PrecisionMedium} {
			opts := joinorder.Options{
				Strategy:  "milp",
				Precision: prec,
				CardCap:   cap,
				TimeLimit: 15 * time.Second,
			}
			res, err := joinorder.Optimize(context.Background(), q, opts)
			if err != nil {
				t.Fatalf("n=%d seed=%d prec=%v: milp: %v", n, seed, prec, err)
			}
			if res.Status != joinorder.StatusOptimal {
				// A budget stop proves nothing; skip the guarantee
				// checks rather than fail on a slow machine.
				t.Logf("n=%d seed=%d prec=%v: milp stopped %v, skipping", n, seed, prec, res.Status)
				continue
			}
			ratio, err := prec.Ratio()
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < dpRes.Cost*(1-1e-9) {
				t.Errorf("%v n=%d seed=%d prec=%v: MILP plan cost %g beats exact DP optimum %g — DP is broken",
					shape, n, seed, prec, res.Cost, dpRes.Cost)
			}
			if res.Cost > dpRes.Cost*ratio*(1+1e-9) {
				t.Errorf("%v n=%d seed=%d prec=%v: MILP plan cost %g exceeds guarantee %g×%g on exact optimum",
					shape, n, seed, prec, res.Cost, ratio, dpRes.Cost)
			}

			// Model-space tightness: encode once more with the same
			// options and price the DP plan inside the model.
			enc, err := core.Encode(q, core.Options{Precision: prec, CardCap: cap})
			if err != nil {
				t.Fatalf("n=%d seed=%d: encode: %v", n, seed, err)
			}
			assign, err := enc.AssignmentForPlan(dpRes.Plan)
			if err != nil {
				t.Fatalf("n=%d seed=%d: assignment for DP plan: %v", n, seed, err)
			}
			if err := enc.Model.CheckFeasible(assign, 1e-6); err != nil {
				t.Errorf("%v n=%d seed=%d prec=%v: exact DP plan infeasible in the MILP: %v",
					shape, n, seed, prec, err)
				continue
			}
			dpObj := enc.Model.EvalObjective(assign)
			if res.Objective > dpObj*(1+1e-6)+1e-6 {
				t.Errorf("%v n=%d seed=%d prec=%v: MILP 'optimal' objective %g exceeds a feasible assignment's %g",
					shape, n, seed, prec, res.Objective, dpObj)
			}
		}
	})
}

// TestStrategyHierarchy checks the cost ordering that must hold by
// construction: the bushy optimum can only improve on the left-deep
// optimum, which can only improve on the greedy heuristic.
func TestStrategyHierarchy(t *testing.T) {
	forEachQuery(t, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query) {
		costs := map[string]float64{}
		for _, strat := range []string{"dp-bushy", "dpconv", "dp-leftdeep", "greedy"} {
			res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: strat})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %s: %v", n, seed, strat, err)
			}
			costs[strat] = res.Cost
		}
		const tol = 1 + 1e-9
		if costs["dp-bushy"] > costs["dp-leftdeep"]*tol {
			t.Errorf("%v n=%d seed=%d: bushy optimum %g worse than left-deep %g",
				shape, n, seed, costs["dp-bushy"], costs["dp-leftdeep"])
		}
		if costs["dp-leftdeep"] > costs["greedy"]*tol {
			t.Errorf("%v n=%d seed=%d: left-deep optimum %g worse than greedy %g",
				shape, n, seed, costs["dp-leftdeep"], costs["greedy"])
		}
		if costs["dpconv"] > costs["dp-leftdeep"]*tol {
			t.Errorf("%v n=%d seed=%d: dpconv optimum %g worse than left-deep %g (bushy space contains left-deep)",
				shape, n, seed, costs["dpconv"], costs["dp-leftdeep"])
		}
	})
}

// TestDPAgainstExhaustiveOracle validates the DP baseline itself against
// brute-force enumeration on queries small enough to enumerate.
func TestDPAgainstExhaustiveOracle(t *testing.T) {
	forEachQuery(t, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query) {
		if n > 8 {
			return
		}
		res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dp-leftdeep"})
		if err != nil {
			t.Fatalf("n=%d seed=%d: dp: %v", n, seed, err)
		}
		// The default C_out spec — what the zero-value public options cost
		// plans with.
		spec := cost.Spec{Metric: cost.Cout, Params: cost.Params{}.WithDefaults()}
		_, best, err := dp.ExhaustiveLeftDeep(q, spec)
		if err != nil {
			t.Fatalf("n=%d seed=%d: exhaustive: %v", n, seed, err)
		}
		if math.Abs(res.Cost-best) > 1e-6*math.Max(1, best) {
			t.Errorf("%v n=%d seed=%d: DP cost %g != exhaustive optimum %g", shape, n, seed, res.Cost, best)
		}
	})
}

// TestDPConvAgainstBushyOracle cross-checks the two exact bushy
// optimizers — subset-recursion dp-bushy and layered-enumeration dpconv —
// on the whole matrix: walking the same plan space, they must agree on
// the optimal cost exactly (both also re-cost their trees, so agreement
// here pins the enumeration, not just the pricing).
func TestDPConvAgainstBushyOracle(t *testing.T) {
	forEachQuery(t, func(t *testing.T, shape workload.GraphShape, n int, seed int64, q *joinorder.Query) {
		bushy, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dp-bushy"})
		if err != nil {
			t.Fatalf("n=%d seed=%d: dp-bushy: %v", n, seed, err)
		}
		conv, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "dpconv"})
		if err != nil {
			t.Fatalf("n=%d seed=%d: dpconv: %v", n, seed, err)
		}
		if math.Abs(conv.Cost-bushy.Cost) > 1e-6*math.Max(1, bushy.Cost) {
			t.Errorf("%v n=%d seed=%d: dpconv %g != dp-bushy %g (conv %v, bushy %v)",
				shape, n, seed, conv.Cost, bushy.Cost, conv.Tree, bushy.Tree)
		}
		if conv.Status != joinorder.StatusOptimal || bushy.Status != joinorder.StatusOptimal {
			t.Errorf("%v n=%d seed=%d: statuses %v/%v, want optimal", shape, n, seed, conv.Status, bushy.Status)
		}
	})
}
