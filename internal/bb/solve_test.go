package bb

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"milpjoin/internal/milp"
)

func solveModel(t *testing.T, m *milp.Model, p Params) *Result {
	t.Helper()
	res, err := Solve(context.Background(), m.Compile(), p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c + 4d s.t. 3a + 4b + 2c + d <= 6 (binary).
	// Optimum: b + c + d? 13+7+4=24 weight 4+2+1=7 > 6. a+c+d = 21 w 6 ok;
	// b+c = 20 w 6; a+b = 23 weight 7 no. b+c+? b+c=20 w6; a+c+d=21 w6.
	// Best is 21.
	m := milp.NewModel("knapsack")
	a := m.AddBinary(-10, "a")
	b := m.AddBinary(-13, "b")
	c := m.AddBinary(-7, "c")
	d := m.AddBinary(-4, "d")
	m.AddConstr(milp.Expr(a, 3.0, b, 4.0, c, 2.0, d, 1.0), milp.LE, 6, "cap")

	res := solveModel(t, m, Params{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-21)) > 1e-6 {
		t.Errorf("obj = %g, want -21", res.Obj)
	}
}

func TestPureLPSolvesAtRoot(t *testing.T) {
	m := milp.NewModel("lp")
	x := m.AddContinuous(0, 10, -1, "x")
	y := m.AddContinuous(0, 10, -1, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.LE, 7, "c")
	res := solveModel(t, m, Params{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-7)) > 1e-6 {
		t.Errorf("obj = %g, want -7", res.Obj)
	}
	if res.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 (no branching needed)", res.Nodes)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x <= 7, x integer in [0, 10] → x = 3.
	m := milp.NewModel("intround")
	x := m.AddVar(0, 10, -1, milp.Integer, "x")
	m.AddConstr(milp.Expr(x, 2.0), milp.LE, 7, "c")
	res := solveModel(t, m, Params{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-(-3)) > 1e-6 {
		t.Errorf("obj = %g, want -3", res.Obj)
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Errorf("x = %g, want 3", res.X[0])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1.5 with x, y binary has no integer solution... actually
	// it does not even as LP with binaries? x=1,y=0.5 is LP-feasible but
	// not integral; no integral point sums to 1.5.
	m := milp.NewModel("infeasible")
	x := m.AddBinary(0, "x")
	y := m.AddBinary(0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 1.0), milp.EQ, 1.5, "half")
	res := solveModel(t, m, Params{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	m := milp.NewModel("lpinf")
	x := m.AddBinary(0, "x")
	m.AddConstr(milp.Expr(x, 1.0), milp.GE, 2, "imposs")
	res := solveModel(t, m, Params{})
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := milp.NewModel("unbounded")
	x := m.AddContinuous(0, math.Inf(1), -1, "x")
	y := m.AddContinuous(0, math.Inf(1), 0, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, -1.0), milp.LE, 1, "c")
	res := solveModel(t, m, Params{})
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestEqualityMILP(t *testing.T) {
	// min x + y s.t. x + 2y = 5, x, y integer ≥ 0 → (1,2) obj 3 or (3,1)
	// obj 4 or (5,0) obj 5 → best 3.
	m := milp.NewModel("eq")
	x := m.AddVar(0, 10, 1, milp.Integer, "x")
	y := m.AddVar(0, 10, 1, milp.Integer, "y")
	m.AddConstr(milp.Expr(x, 1.0, y, 2.0), milp.EQ, 5, "c")
	res := solveModel(t, m, Params{})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-3) > 1e-6 {
		t.Errorf("obj = %g, want 3", res.Obj)
	}
}

// bruteForceMILP enumerates all integer assignments of a model whose
// variables are all integral with small finite ranges.
func bruteForceMILP(m *milp.Model) (float64, bool) {
	n := m.NumVars()
	lo := make([]int, n)
	hi := make([]int, n)
	for j := 0; j < n; j++ {
		l, u := m.Bounds(milp.Var(j))
		lo[j], hi[j] = int(math.Ceil(l)), int(math.Floor(u))
	}
	best := math.Inf(1)
	found := false
	vals := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			if m.CheckFeasible(vals, 1e-9) == nil {
				if obj := m.EvalObjective(vals); obj < best {
					best = obj
					found = true
				}
			}
			return
		}
		for v := lo[j]; v <= hi[j]; v++ {
			vals[j] = float64(v)
			rec(j + 1)
		}
	}
	rec(0)
	return best, found
}

func randomMILP(rng *rand.Rand, nVars, nCons int) *milp.Model {
	m := milp.NewModel("random")
	vars := make([]milp.Var, nVars)
	for j := 0; j < nVars; j++ {
		vars[j] = m.AddVar(0, float64(1+rng.Intn(3)), float64(rng.Intn(11)-5), milp.Integer, "")
	}
	for i := 0; i < nCons; i++ {
		e := milp.LinExpr{}
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.7 {
				e = e.Add(vars[j], float64(rng.Intn(9)-4))
			}
		}
		if e.NumTerms() == 0 {
			continue
		}
		rhs := float64(rng.Intn(13) - 4)
		switch rng.Intn(3) {
		case 0:
			m.AddConstr(e, milp.LE, rhs, "")
		case 1:
			m.AddConstr(e, milp.GE, rhs, "")
		default:
			m.AddConstr(e, milp.EQ, rhs, "")
		}
	}
	return m
}

func TestRandomMILPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		m := randomMILP(rng, 2+rng.Intn(4), 1+rng.Intn(4))
		want, feasible := bruteForceMILP(m)

		res, err := Solve(context.Background(), m.Compile(), Params{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: status %v for infeasible model (obj %g)", trial, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal (brute force %g)", trial, res.Status, want)
		}
		if math.Abs(res.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: obj %g, want %g", trial, res.Obj, want)
		}
		// The incumbent must be genuinely feasible for the model.
		vals := res.X[:m.NumVars()]
		rounded := make([]float64, len(vals))
		for j := range vals {
			rounded[j] = math.Round(vals[j])
		}
		if err := m.CheckFeasible(rounded, 1e-5); err != nil {
			t.Fatalf("trial %d: incumbent infeasible: %v", trial, err)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 25; trial++ {
		m := randomMILP(rng, 3+rng.Intn(4), 2+rng.Intn(3))
		serial, err := Solve(context.Background(), m.Compile(), Params{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Solve(context.Background(), m.Compile(), Params{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if (serial.Status == StatusOptimal) != (parallel.Status == StatusOptimal) {
			t.Fatalf("trial %d: serial %v vs parallel %v", trial, serial.Status, parallel.Status)
		}
		if serial.Status == StatusOptimal && math.Abs(serial.Obj-parallel.Obj) > 1e-5 {
			t.Fatalf("trial %d: serial obj %g vs parallel %g", trial, serial.Obj, parallel.Obj)
		}
	}
}

func TestBranchingRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		m := randomMILP(rng, 3+rng.Intn(3), 2+rng.Intn(3))
		a, err := Solve(context.Background(), m.Compile(), Params{Branching: BranchPseudocost})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(context.Background(), m.Compile(), Params{Branching: BranchMostFractional})
		if err != nil {
			t.Fatal(err)
		}
		if (a.Status == StatusOptimal) != (b.Status == StatusOptimal) {
			t.Fatalf("trial %d: %v vs %v", trial, a.Status, b.Status)
		}
		if a.Status == StatusOptimal && math.Abs(a.Obj-b.Obj) > 1e-5 {
			t.Fatalf("trial %d: pseudocost %g vs most-fractional %g", trial, a.Obj, b.Obj)
		}
	}
}

func TestAnytimeCallback(t *testing.T) {
	m := milp.NewModel("anytime")
	// A knapsack-like instance with several improving incumbents.
	n := 12
	weights := []float64{3, 5, 7, 2, 4, 9, 6, 8, 3, 5, 7, 4}
	values := []float64{4, 7, 9, 3, 5, 13, 8, 11, 4, 6, 10, 5}
	e := milp.LinExpr{}
	for j := 0; j < n; j++ {
		v := m.AddBinary(-values[j], "")
		e = e.Add(v, weights[j])
	}
	m.AddConstr(e, milp.LE, 20, "cap")

	var progress []Progress
	res := solveModel(t, m, Params{
		OnImprovement: func(p Progress) { progress = append(progress, p) },
	})
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if len(progress) == 0 {
		t.Fatal("no progress callbacks")
	}
	// Incumbents must improve monotonically.
	for i := 1; i < len(progress); i++ {
		if progress[i].Incumbent > progress[i-1].Incumbent+1e-9 {
			t.Errorf("incumbent worsened: %g → %g", progress[i-1].Incumbent, progress[i].Incumbent)
		}
	}
	last := progress[len(progress)-1]
	if !last.HasIncumbent {
		t.Error("final progress lacks incumbent")
	}
	if last.Incumbent < last.Bound-1e-6 {
		t.Errorf("incumbent %g below bound %g", last.Incumbent, last.Bound)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := milp.NewModel("nodelimit")
	// A harder knapsack to ensure multiple nodes.
	e := milp.LinExpr{}
	for j := 0; j < 25; j++ {
		v := m.AddBinary(-(1 + rng.Float64()*10), "")
		e = e.Add(v, 1+rng.Float64()*10)
	}
	m.AddConstr(e, milp.LE, 30, "cap")
	res := solveModel(t, m, Params{MaxNodes: 3})
	if res.Status != StatusNodeLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == StatusNodeLimit && res.Nodes > 10 {
		t.Errorf("nodes = %d, expected early stop", res.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := milp.NewModel("timelimit")
	e := milp.LinExpr{}
	for j := 0; j < 40; j++ {
		v := m.AddBinary(-(1 + rng.Float64()*10), "")
		e = e.Add(v, 1+rng.Float64()*10)
	}
	m.AddConstr(e, milp.LE, 50, "cap")
	start := time.Now()
	res := solveModel(t, m, Params{TimeLimit: 50 * time.Millisecond})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Errorf("solve took %v despite 50ms limit", elapsed)
	}
	if res.Status != StatusTimeLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestGapToleranceStopsEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := milp.NewModel("gap")
	e := milp.LinExpr{}
	for j := 0; j < 30; j++ {
		v := m.AddBinary(-(1 + rng.Float64()*10), "")
		e = e.Add(v, 1+rng.Float64()*10)
	}
	m.AddConstr(e, milp.LE, 40, "cap")
	loose := solveModel(t, m, Params{GapTol: 0.5})
	if loose.Status != StatusOptimal {
		t.Fatalf("status = %v", loose.Status)
	}
	if loose.Gap > 0.5+1e-9 {
		t.Errorf("gap = %g exceeds requested 0.5", loose.Gap)
	}
	// The incumbent must be within 50% of the true optimum.
	tight := solveModel(t, m, Params{})
	if tight.Status != StatusOptimal {
		t.Fatalf("tight status = %v", tight.Status)
	}
	if loose.Obj > tight.Obj*0.5+1e-6 { // objectives negative: loose ≤ 0.5·opt means within factor 2
		t.Errorf("loose obj %g vs optimum %g violates gap guarantee", loose.Obj, tight.Obj)
	}
}

func TestBoundsNeverExceedIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		m := randomMILP(rng, 5, 3)
		var bounds []float64
		res, err := Solve(context.Background(), m.Compile(), Params{
			OnImprovement: func(p Progress) { bounds = append(bounds, p.Bound) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == StatusOptimal {
			for _, b := range bounds {
				if b > res.Obj+1e-6 {
					t.Errorf("trial %d: reported bound %g above optimum %g", trial, b, res.Obj)
				}
			}
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusTimeLimit:  "time limit",
		StatusNodeLimit:  "node limit",
		StatusNoProgress: "no progress",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", int(st), st.String())
		}
	}
}

func TestPseudocostScoring(t *testing.T) {
	pc := newPseudocosts(3)
	if _, reliable := pc.score(0, 0.5); reliable {
		t.Error("unobserved variable reported reliable")
	}
	pc.record(0, true, 2.0, 0.5)  // up: 4 per unit
	pc.record(0, false, 1.0, 0.5) // down: 2 per unit
	score, reliable := pc.score(0, 0.5)
	if !reliable {
		t.Fatal("both directions observed but not reliable")
	}
	// up avg 4 * (1-0.5)=2; down avg 2*0.5=1 → product 2.
	if math.Abs(score-2) > 1e-9 {
		t.Errorf("score = %g, want 2", score)
	}
	// Degenerate observations are ignored.
	pc.record(1, true, -1, 0.5)
	pc.record(1, true, 1, 0)
	if pc.upCnt[1] != 0 {
		t.Error("invalid observations recorded")
	}
}

func TestDualSimplexNodeRepairAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	for trial := 0; trial < 30; trial++ {
		m := randomMILP(rng, 3+rng.Intn(4), 2+rng.Intn(3))
		primal, err := Solve(context.Background(), m.Compile(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		dual, err := Solve(context.Background(), m.Compile(), Params{UseDualSimplex: true})
		if err != nil {
			t.Fatal(err)
		}
		if (primal.Status == StatusOptimal) != (dual.Status == StatusOptimal) {
			t.Fatalf("trial %d: primal %v vs dual %v", trial, primal.Status, dual.Status)
		}
		if primal.Status == StatusOptimal && math.Abs(primal.Obj-dual.Obj) > 1e-5 {
			t.Fatalf("trial %d: primal obj %g vs dual %g", trial, primal.Obj, dual.Obj)
		}
	}
}

// TestDualSimplexSurvivesFrequentRefactorization forces an LU rebuild every
// few pivots (RefactorEvery: 3) so that warm starts routinely cross
// refactorization boundaries mid-search, and asserts the dual-repaired
// search still reaches the primal-verified optimum. This exercises the
// in-place factorization reuse path under branch-and-bound load.
func TestDualSimplexSurvivesFrequentRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		m := randomMILP(rng, 3+rng.Intn(4), 2+rng.Intn(3))
		primal, err := Solve(context.Background(), m.Compile(), Params{})
		if err != nil {
			t.Fatal(err)
		}
		dual, err := Solve(context.Background(), m.Compile(), Params{UseDualSimplex: true, RefactorEvery: 3})
		if err != nil {
			t.Fatal(err)
		}
		if (primal.Status == StatusOptimal) != (dual.Status == StatusOptimal) {
			t.Fatalf("trial %d: primal %v vs dual %v", trial, primal.Status, dual.Status)
		}
		if primal.Status == StatusOptimal && math.Abs(primal.Obj-dual.Obj) > 1e-5 {
			t.Fatalf("trial %d: primal obj %g vs dual %g", trial, primal.Obj, dual.Obj)
		}
		if dual.Stats.Refactorizations == 0 {
			t.Fatalf("trial %d: expected refactorizations with RefactorEvery=3", trial)
		}
	}
}

func TestInitialIncumbentInstalled(t *testing.T) {
	// A knapsack with a known feasible start: the solver must begin with
	// an incumbent at least as good.
	m := milp.NewModel("mipstart")
	a := m.AddBinary(-10, "a")
	b := m.AddBinary(-13, "b")
	c := m.AddBinary(-7, "c")
	m.AddConstr(milp.Expr(a, 3.0, b, 4.0, c, 2.0), milp.LE, 6, "cap")
	comp := m.Compile()

	var first Progress
	seen := false
	res, err := Solve(context.Background(), comp, Params{
		InitialIncumbent: []float64{1, 0, 1}, // value 17, feasible
		OnImprovement: func(p Progress) {
			if !seen {
				first, seen = p, true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if !seen || first.Incumbent > -17+1e-9 {
		t.Errorf("first incumbent %v, want ≤ -17 from the MIP start", first.Incumbent)
	}
	// Infeasible starts must be ignored, not installed.
	res2, err := Solve(context.Background(), m.Compile(), Params{InitialIncumbent: []float64{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != StatusOptimal || math.Abs(res2.Obj-res.Obj) > 1e-9 {
		t.Errorf("bad MIP start corrupted the solve: %v %g", res2.Status, res2.Obj)
	}
}
