// Package bb implements branch and bound for mixed integer linear
// programs: best-first search over LP relaxations with warm-started
// simplex solves, most-fractional and pseudocost branching, diving and
// rounding primal heuristics, parallel workers, and anytime
// incumbent/bound reporting — the feature set the paper relies on from
// commercial MILP solvers (anytime behaviour, optimality gaps, parallel
// optimization).
package bb

import (
	"fmt"
	"math"
	"time"

	"milpjoin/internal/obs"
)

// BranchRule selects how fractional variables are chosen for branching.
type BranchRule int

const (
	// BranchPseudocost uses pseudocost scores with a most-fractional
	// fallback until costs are initialised (default).
	BranchPseudocost BranchRule = iota
	// BranchMostFractional always picks the variable closest to 0.5
	// fractionality.
	BranchMostFractional
)

// Params tune the search.
type Params struct {
	// TimeLimit bounds wall-clock time; zero means no limit.
	TimeLimit time.Duration
	// GapTol is the relative MIP gap at which search stops (default 1e-6).
	GapTol float64
	// AbsGapTol is the absolute gap termination threshold (default 1e-9).
	AbsGapTol float64
	// MaxNodes bounds the number of explored nodes; zero means no limit.
	MaxNodes int
	// Threads is the number of parallel workers (default 1).
	Threads int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Branching selects the branching rule.
	Branching BranchRule
	// DiveEvery runs the diving heuristic at every DiveEvery-th node
	// (default 50; the root always dives). Zero keeps the default; a
	// negative value disables diving entirely.
	DiveEvery int
	// OnImprovement, when non-nil, is invoked (serialised) whenever the
	// incumbent or the global bound improves. Incumbent and bound events
	// on the Events stream carry the same information plus more context;
	// OnImprovement remains as the narrow anytime-trajectory hook.
	OnImprovement func(p Progress)
	// Events, when non-nil, receives the full structured event stream of
	// the search: worker lifecycle, the root LP relaxation, incumbents,
	// bound improvements, periodic node-batch snapshots, and heuristic
	// dives. Events are emitted while holding the search lock, so
	// callbacks must be fast and must not call back into the solver.
	Events *obs.Emitter
	// EventNodeInterval emits a node-batch snapshot every this many
	// explored nodes (default 256; negative disables batch events).
	EventNodeInterval int
	// UseDualSimplex repairs warm-started node LPs with the dual
	// simplex method instead of the composite primal phase 1.
	UseDualSimplex bool
	// RefactorEvery overrides the simplex eta-file length bound before a
	// basis refactorization (zero keeps the simplex default). Small values
	// stress the refactorization path; mainly for testing and ablations.
	RefactorEvery int
	// InitialIncumbent optionally seeds the search with a known integer
	// solution (a "MIP start"): the structural part of a
	// computational-form assignment, length NumStructural. Logical
	// values are recomputed and the candidate is validated before
	// installation; an infeasible start is silently ignored.
	InitialIncumbent []float64
	// Incumbents, when non-nil, is a live injection feed: candidate
	// structural assignments (same space and length as
	// InitialIncumbent) published by concurrent portfolio peers. Workers
	// drain the channel at node boundaries; each candidate is completed
	// with logical values, revalidated against the root bounds, and
	// installed only if it improves the incumbent — tightening the
	// primal cutoff mid-solve. Infeasible or worse candidates are
	// dropped silently. The sender owns the channel lifecycle; closing
	// it stops the draining.
	Incumbents <-chan []float64
}

// Progress is an anytime snapshot of the search.
type Progress struct {
	Incumbent    float64 // best integer objective so far (+Inf if none)
	Bound        float64 // global lower bound
	Gap          float64 // relative gap (+Inf while no incumbent)
	Nodes        int     // nodes explored so far
	Elapsed      time.Duration
	HasIncumbent bool
}

func (p Params) withDefaults() Params {
	if p.GapTol <= 0 {
		p.GapTol = 1e-6
	}
	if p.AbsGapTol <= 0 {
		p.AbsGapTol = 1e-9
	}
	if p.Threads <= 0 {
		p.Threads = 1
	}
	if p.IntTol <= 0 {
		p.IntTol = 1e-6
	}
	if p.DiveEvery == 0 {
		p.DiveEvery = 50
	}
	if p.EventNodeInterval == 0 {
		p.EventNodeInterval = 256
	}
	return p
}

// Status is the outcome of a branch-and-bound run.
type Status int

const (
	// StatusOptimal means the incumbent is optimal within the gap
	// tolerances.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible solution exists.
	StatusInfeasible
	// StatusUnbounded means the LP relaxation is unbounded.
	StatusUnbounded
	// StatusTimeLimit means the time limit expired; the incumbent (if
	// any) carries the best solution found.
	StatusTimeLimit
	// StatusNodeLimit means the node limit was reached.
	StatusNodeLimit
	// StatusNoProgress means the solver stopped due to repeated
	// numerical failures.
	StatusNoProgress
	// StatusCanceled means the caller's context was canceled; the
	// incumbent (if any) carries the best solution found.
	StatusCanceled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusTimeLimit:
		return "time limit"
	case StatusNodeLimit:
		return "node limit"
	case StatusNoProgress:
		return "no progress"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of a solve.
type Result struct {
	Status       Status
	HasIncumbent bool
	X            []float64 // full computational-form solution (structural + logical)
	Obj          float64   // incumbent objective (excluding any model constant)
	Bound        float64   // proven global lower bound
	Gap          float64   // relative gap at termination
	Nodes        int
	SimplexIters int
	Elapsed      time.Duration
	// Stats aggregates per-phase effort: LP and heuristic time, per-worker
	// node counts, simplex iterations, LU refactorizations, pseudocost
	// initializations, and heuristic success rates.
	Stats obs.Stats
}

// relGap computes the relative gap between an incumbent and a bound.
func relGap(inc, bound float64) float64 {
	if math.IsInf(inc, 1) {
		return math.Inf(1)
	}
	d := inc - bound
	if d <= 0 {
		return 0
	}
	return d / math.Max(1e-9, math.Abs(inc))
}
