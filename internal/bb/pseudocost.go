package bb

import "sync"

// pseudocosts track the average objective degradation per unit of
// fractionality observed when branching a variable up or down. They guide
// branching toward variables whose bound changes move the LP bound most.
type pseudocosts struct {
	mu      sync.Mutex
	upSum   []float64
	upCnt   []int
	downSum []float64
	downCnt []int
	inits   int // variables with at least one observation
}

func newPseudocosts(n int) *pseudocosts {
	return &pseudocosts{
		upSum:   make([]float64, n),
		upCnt:   make([]int, n),
		downSum: make([]float64, n),
		downCnt: make([]int, n),
	}
}

// record logs the observed degradation for branching variable v in the
// given direction with the given consumed fractionality.
func (pc *pseudocosts) record(v int, up bool, degradation, frac float64) {
	if frac < 1e-9 || degradation < 0 {
		return
	}
	unit := degradation / frac
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.upCnt[v] == 0 && pc.downCnt[v] == 0 {
		pc.inits++
	}
	if up {
		pc.upSum[v] += unit
		pc.upCnt[v]++
	} else {
		pc.downSum[v] += unit
		pc.downCnt[v]++
	}
}

// score returns the product-rule pseudocost score for branching variable v
// whose LP value has fractional part frac (in (0,1)). The second return
// value reports whether both directions have observations.
func (pc *pseudocosts) score(v int, frac float64) (float64, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	const eps = 1e-6
	up, down := eps, eps
	reliable := pc.upCnt[v] > 0 && pc.downCnt[v] > 0
	if pc.upCnt[v] > 0 {
		up = pc.upSum[v] / float64(pc.upCnt[v]) * (1 - frac)
	}
	if pc.downCnt[v] > 0 {
		down = pc.downSum[v] / float64(pc.downCnt[v]) * frac
	}
	if up < eps {
		up = eps
	}
	if down < eps {
		down = eps
	}
	return up * down, reliable
}

// initialized returns the number of variables with pseudocost observations.
func (pc *pseudocosts) initialized() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.inits
}
