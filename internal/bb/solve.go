package bb

import (
	"container/heap"
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"milpjoin/internal/milp"
	"milpjoin/internal/obs"
	"milpjoin/internal/simplex"
)

// Solve runs branch and bound on a compiled model. The returned solution
// (when HasIncumbent) is in computational-form coordinates: the first
// NumStructural entries are model variables.
//
// Cancelling ctx stops the search promptly: the worker loops observe the
// cancellation between nodes and the simplex iteration loops poll it, so
// the call returns with StatusCanceled (context.Canceled) or
// StatusTimeLimit (context.DeadlineExceeded) carrying the best incumbent
// and proven bound found so far.
func Solve(ctx context.Context, comp *milp.Computational, params Params) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params = params.withDefaults()
	s := &searcher{
		comp:      comp,
		ctx:       ctx,
		params:    params,
		start:     time.Now(),
		incObj:    math.Inf(1),
		lastBound: math.Inf(-1),
	}
	s.cond = sync.NewCond(&s.mu)
	s.nodesPerWorker = make([]int, params.Threads)
	if params.TimeLimit > 0 {
		s.deadline = s.start.Add(params.TimeLimit)
	}
	if err := ctx.Err(); err != nil {
		// Already ended: report without exploring a single node.
		s.setStop(ctxStatus(err))
		return s.finish(), nil
	}
	n := comp.Problem.NumCols()
	s.rootL = append([]float64(nil), comp.Problem.L...)
	s.rootU = append([]float64(nil), comp.Problem.U...)
	for j := 0; j < comp.NumStructural; j++ {
		if comp.Integral[j] {
			s.intVars = append(s.intVars, j)
		}
	}
	s.pc = newPseudocosts(n)
	s.inFlight = make(map[int]float64)
	s.workers = make([]*workerState, params.Threads)
	for w := range s.workers {
		st := &workerState{ws: simplex.NewWorkspace()}
		st.prob.A = comp.Problem.A
		st.prob.B = comp.Problem.B
		st.prob.C = comp.Problem.C
		s.workers[w] = st
	}

	heap.Push(&s.open, &node{bound: math.Inf(-1)})

	if len(params.InitialIncumbent) == comp.NumStructural {
		s.completeAndOffer(nil, params.InitialIncumbent)
	}

	// The watcher translates context cancellation into the shared stop
	// flag so that workers blocked on the condition variable, busy in a
	// node LP, or diving all notice promptly.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.setStop(ctxStatus(ctx.Err()))
			s.cond.Broadcast()
			s.mu.Unlock()
		case <-watchDone:
		}
	}()

	// pprof labels attribute worker CPU time to the search phase, so a
	// CPU profile splits solver time by phase and worker.
	var wg sync.WaitGroup
	for w := 0; w < params.Threads; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			pprof.Do(ctx, pprof.Labels(
				"milp_phase", "bb_search",
				"milp_worker", strconv.Itoa(id),
			), func(context.Context) {
				s.worker(id)
			})
		}(w)
	}
	wg.Wait()
	close(watchDone)

	return s.finish(), nil
}

// ctxStatus maps a context error to the matching termination status.
func ctxStatus(err error) Status {
	if err == context.DeadlineExceeded {
		return StatusTimeLimit
	}
	return StatusCanceled
}

type searcher struct {
	comp   *milp.Computational
	ctx    context.Context
	params Params

	rootL, rootU []float64
	intVars      []int // integral structural variable indices

	mu       sync.Mutex
	cond     *sync.Cond
	open     nodeHeap
	inFlight map[int]float64 // workerID → bound of node being processed

	incumbent    []float64
	incObj       float64
	hasInc       bool
	lastBound    float64 // bound at the last progress notification
	nodes        int
	simplexIters int
	failures     int
	done         bool
	stopStatus   Status
	stopSet      bool

	// Observability counters (guarded by mu).
	nodesPerWorker []int
	peakOpen       int
	refactors      int
	rootLPIters    int
	rootLPTime     time.Duration
	lpTime         time.Duration
	heurTime       time.Duration
	heurCalls      int
	heurSuccesses  int
	incumbents     int
	boundImps      int
	injInstalled   int // injected incumbents installed (guarded by mu)

	stopFlag  atomic.Bool
	injClosed atomic.Bool // Params.Incumbents observed closed
	pc        *pseudocosts
	pricing   simplex.PricingStats // aggregated under mu

	// Per-worker reusable state: simplex workspaces, the hoisted node LP
	// problem, and node/dive scratch buffers. Indexed by worker id; each
	// entry is touched only by its worker goroutine.
	workers []*workerState

	start    time.Time
	deadline time.Time
}

// workerState is the per-worker arena for the node-LP hot path. The shared
// constraint matrix, rhs, and objective are installed in prob once; only
// the bound slices change per node, so a node solve performs no problem
// construction and, once warm, no heap allocation.
type workerState struct {
	ws   *simplex.Workspace
	prob simplex.Problem // A/B/C fixed; L/U point at l/u (or dl/du) per call

	l, u    []float64 // node bounds, copied from the root bounds
	dl, du  []float64 // dive bounds
	x       []float64 // snapshot of the node LP solution (survives dives)
	frac    []int     // fractional-variable scratch for the node
	dfrac   []int     // fractional-variable scratch for dive iterations
	xs      []float64 // structural scratch for rounding
	compX   []float64 // completion scratch: full point
	compAct []float64 // completion scratch: row activities
}

// worker is the node-processing loop run by each thread.
func (s *searcher) worker(id int) {
	s.mu.Lock()
	s.emitLocked(obs.Event{Kind: obs.KindWorkerStart, Worker: id})
	s.mu.Unlock()
	for {
		s.drainInjected(id)
		s.mu.Lock()
		for !s.done && len(s.open) == 0 && len(s.inFlight) > 0 {
			s.cond.Wait()
		}
		if s.done || len(s.open) == 0 {
			// Tree exhausted (or externally stopped).
			s.done = true
			s.cond.Broadcast()
			s.emitLocked(obs.Event{Kind: obs.KindWorkerStop, Worker: id})
			s.mu.Unlock()
			return
		}
		nd := heap.Pop(&s.open).(*node)
		// Late pruning against an incumbent found since the push.
		if s.hasInc && nd.bound >= s.incObj-s.params.AbsGapTol {
			s.mu.Unlock()
			continue
		}
		s.inFlight[id] = nd.bound
		s.nodes++
		s.nodesPerWorker[id]++
		nodeIdx := s.nodes
		if s.params.MaxNodes > 0 && s.nodes >= s.params.MaxNodes {
			s.setStop(StatusNodeLimit)
		}
		if s.params.EventNodeInterval > 0 && s.nodes%s.params.EventNodeInterval == 0 {
			s.emitLocked(obs.Event{Kind: obs.KindNodeBatch, Worker: id})
		}
		s.mu.Unlock()

		children, repush := s.processNode(nd, nodeIdx, id)

		s.mu.Lock()
		delete(s.inFlight, id)
		if repush != nil {
			heap.Push(&s.open, repush)
		}
		for _, c := range children {
			if !(s.hasInc && c.bound >= s.incObj-s.params.AbsGapTol) {
				heap.Push(&s.open, c)
			}
		}
		if len(s.open) > s.peakOpen {
			s.peakOpen = len(s.open)
		}
		s.checkTermination()
		// Surface bound improvements to the anytime consumers (the
		// incumbent path notifies separately in offerIncumbent).
		if s.params.OnImprovement != nil || s.params.Events != nil {
			if b := s.globalBoundLocked(); b-s.lastBound > 1e-3*(1+math.Abs(b)) {
				s.notifyLocked(obs.KindBound)
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// drainInjected installs candidates published on Params.Incumbents: each
// structural assignment is completed with exact logical values,
// revalidated against the root bounds, and installed only when it
// improves the incumbent. Called at node boundaries by every worker,
// outside the search lock; multiple workers receiving from the shared
// channel concurrently is safe. A closed feed flips injClosed so workers
// stop selecting on it (a closed channel would otherwise spin).
func (s *searcher) drainInjected(wid int) {
	if s.params.Incumbents == nil || s.injClosed.Load() {
		return
	}
	for {
		select {
		case xs, ok := <-s.params.Incumbents:
			if !ok {
				s.injClosed.Store(true)
				return
			}
			if len(xs) != s.comp.NumStructural {
				continue
			}
			if s.completeAndOffer(s.workers[wid], xs) {
				s.mu.Lock()
				s.injInstalled++
				s.emitLocked(obs.Event{Kind: obs.KindInjected, Worker: wid})
				s.mu.Unlock()
			}
		default:
			return
		}
	}
}

// emitLocked sends one event stamped with the current anytime state of the
// search (incumbent, bound, gap, node counts). Caller holds s.mu; callers
// fill Kind, Worker (-1 when not worker-bound), and payload fields.
func (s *searcher) emitLocked(ev obs.Event) {
	if s.params.Events == nil {
		return
	}
	bound := s.globalBoundLocked()
	ev.Incumbent = s.incObj
	ev.Bound = bound
	ev.Gap = relGap(s.incObj, bound)
	ev.HasIncumbent = s.hasInc
	ev.Nodes = s.nodes
	ev.OpenNodes = len(s.open) + len(s.inFlight)
	s.params.Events.Emit(ev)
}

// setStop flags early termination with the given status (first wins).
// Caller holds s.mu.
func (s *searcher) setStop(st Status) {
	if !s.stopSet {
		s.stopSet = true
		s.stopStatus = st
	}
	s.stopFlag.Store(true)
	s.done = true
}

// checkTermination evaluates gap and time limits. Caller holds s.mu.
func (s *searcher) checkTermination() {
	if s.done {
		return
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		s.setStop(StatusTimeLimit)
		return
	}
	if s.hasInc {
		bound := s.globalBoundLocked()
		if s.incObj-bound <= s.params.AbsGapTol || relGap(s.incObj, bound) <= s.params.GapTol {
			s.done = true // proved optimal within tolerance
		}
	}
}

// globalBoundLocked returns the best proven lower bound. Caller holds s.mu.
func (s *searcher) globalBoundLocked() float64 {
	bound := math.Inf(1)
	if len(s.open) > 0 {
		bound = s.open[0].bound
	}
	for _, b := range s.inFlight {
		if b < bound {
			bound = b
		}
	}
	if math.IsInf(bound, 1) {
		// No open work: the incumbent (if any) is proven optimal.
		if s.hasInc {
			return s.incObj
		}
		return math.Inf(1)
	}
	if s.hasInc && bound > s.incObj {
		return s.incObj
	}
	return bound
}

// processNode solves one node LP and returns children to enqueue, plus an
// optional node to re-push (used when a solve was aborted mid-flight).
func (s *searcher) processNode(nd *node, nodeIdx, wid int) (children []*node, repush *node) {
	if s.stopFlag.Load() {
		return nil, nd
	}
	w := s.workers[wid]

	w.l = append(w.l[:0], s.rootL...)
	w.u = append(w.u[:0], s.rootU...)
	l, u := w.l, w.u
	nd.applyBounds(l, u)

	lpStart := time.Now()
	lp, iters, st := s.solveLP(w, l, u, nd.basis)
	lpDur := time.Since(lpStart)
	s.mu.Lock()
	s.simplexIters += iters
	s.lpTime += lpDur
	if lp != nil {
		s.refactors += lp.Refactors
		s.pricing.Add(lp.Pricing)
	}
	if nd.parent == nil && st == simplex.StatusOptimal {
		s.rootLPIters += iters
		s.rootLPTime += lpDur
		s.emitLocked(obs.Event{
			Kind:      obs.KindLPRelaxation,
			Worker:    wid,
			Objective: lp.Obj,
			Iters:     iters,
		})
	}
	s.mu.Unlock()

	switch st {
	case simplex.StatusAborted:
		return nil, nd
	case simplex.StatusInfeasible:
		return nil, nil
	case simplex.StatusUnbounded:
		if nd.parent == nil {
			s.mu.Lock()
			s.setStop(StatusUnbounded)
			s.mu.Unlock()
		}
		return nil, nil
	case simplex.StatusIterLimit:
		// Retry once from a cold basis; afterwards give up on the node
		// but record that the tree is no longer exhaustively explored.
		if nd.basis != nil {
			nd.basis = nil
			return nil, nd
		}
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return nil, nil
	}

	bound := math.Max(nd.bound, lp.Obj)

	// Pseudocost bookkeeping for the branch that created this node.
	if nd.parent != nil && nd.frac > 0 {
		s.pc.record(nd.change.varIdx, nd.change.isLower, lp.Obj-nd.parentBound, nd.frac)
	}

	s.mu.Lock()
	cutoff := math.Inf(1)
	if s.hasInc {
		cutoff = s.incObj - s.params.AbsGapTol
	}
	s.mu.Unlock()
	if bound >= cutoff {
		return nil, nil
	}

	// Root-only reduced-cost fixing: with an incumbent (e.g. a MIP
	// start) and root duals, a nonbasic integer variable whose reduced
	// cost alone would push the objective past the incumbent can be
	// fixed at its bound for the entire tree.
	if nd.parent == nil && lp.Y != nil {
		s.reducedCostFixing(lp)
	}

	w.frac = s.fractionalVars(lp.X, w.frac)
	frac := w.frac
	if len(frac) == 0 {
		s.offerIncumbent(lp.X, true)
		return nil, nil
	}

	// The dive below re-solves with this worker's workspace, which
	// invalidates lp.X and lp.Basis. Snapshot the solution for branching
	// and clone the basis once for both children (the children outlive
	// this node arbitrarily on the heap).
	w.x = append(w.x[:0], lp.X...)
	x := w.x
	childBasis := lp.Basis.Clone()

	// Primal heuristics: cheap rounding at every node, diving at the
	// root and periodically.
	s.tryRounding(w, x)
	if s.params.DiveEvery > 0 && (nd.parent == nil || nodeIdx%s.params.DiveEvery == 0) {
		diveStart := time.Now()
		var improved bool
		pprof.Do(s.ctx, pprof.Labels("milp_phase", "heuristic_dive"), func(context.Context) {
			improved = s.dive(w, l, u, lp)
		})
		diveDur := time.Since(diveStart)
		s.mu.Lock()
		s.heurTime += diveDur
		s.heurCalls++
		if improved {
			s.heurSuccesses++
		}
		s.emitLocked(obs.Event{Kind: obs.KindHeuristic, Worker: wid, Success: improved})
		s.mu.Unlock()
	}

	bv, bval := s.selectBranchVar(x, frac)
	f := bval - math.Floor(bval)

	down := &node{
		parent:      nd,
		change:      boundChange{varIdx: bv, isLower: false, value: math.Floor(bval)},
		depth:       nd.depth + 1,
		bound:       bound,
		basis:       childBasis,
		frac:        f,
		parentBound: bound,
	}
	up := &node{
		parent:      nd,
		change:      boundChange{varIdx: bv, isLower: true, value: math.Ceil(bval)},
		depth:       nd.depth + 1,
		bound:       bound,
		basis:       childBasis,
		frac:        1 - f,
		parentBound: bound,
	}
	return []*node{down, up}, nil
}

// reducedCostFixing tightens root bounds of integer variables using the
// root LP duals and the current incumbent: if moving variable j off its
// bound by one unit already costs more than the incumbent allows, the
// variable is fixed. Safe for the whole tree because every node's bounds
// are tightenings of the root's. Concurrency: this runs only while the
// root node is being processed, when it is the sole node in flight and no
// other worker can be copying the root bounds.
func (s *searcher) reducedCostFixing(lp *simplex.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasInc {
		return
	}
	slack := s.incObj - s.params.AbsGapTol - lp.Obj
	if slack < 0 || math.IsInf(slack, 1) {
		return
	}
	for _, j := range s.intVars {
		if s.rootU[j]-s.rootL[j] < 1 {
			continue
		}
		d := s.comp.Problem.C[j] - s.comp.Problem.A.ColDot(j, lp.Y)
		v := lp.X[j]
		switch {
		case d > slack && math.Abs(v-s.rootL[j]) < 1e-9:
			// Raising x_j by ≥ 1 exceeds the incumbent: pin to lower.
			s.rootU[j] = s.rootL[j]
		case -d > slack && math.Abs(v-s.rootU[j]) < 1e-9:
			s.rootL[j] = s.rootU[j]
		}
	}
}

// solveLP runs the simplex method on the worker's hoisted problem (shared
// matrix, rhs, and objective installed once) with node-local bounds. The
// result aliases the worker's workspace and is only valid until the next
// solveLP with the same worker.
func (s *searcher) solveLP(w *workerState, l, u []float64, warm *simplex.Basis) (*simplex.Result, int, simplex.Status) {
	w.prob.L, w.prob.U = l, u
	res, err := simplex.Solve(&w.prob, warm, simplex.Options{
		Deadline:      s.deadline,
		Stop:          &s.stopFlag,
		Ctx:           s.ctx,
		PreferDual:    s.params.UseDualSimplex && warm != nil,
		RefactorEvery: s.params.RefactorEvery,
		Workspace:     w.ws,
	})
	if err != nil {
		// Numerical failure: surface as an iteration-limit-style retry.
		return nil, 0, simplex.StatusIterLimit
	}
	return res, res.Iters, res.Status
}

// fractionalVars returns the integral variables whose LP values are
// fractional beyond the integrality tolerance, appending into buf.
func (s *searcher) fractionalVars(x []float64, buf []int) []int {
	out := buf[:0]
	for _, j := range s.intVars {
		if fracPart(x[j]) > s.params.IntTol {
			out = append(out, j)
		}
	}
	return out
}

func fracPart(v float64) float64 {
	f := v - math.Floor(v)
	return math.Min(f, 1-f)
}

// selectBranchVar picks the branching variable among the fractional ones.
func (s *searcher) selectBranchVar(x []float64, frac []int) (int, float64) {
	best := frac[0]
	bestScore := math.Inf(-1)
	for _, j := range frac {
		f := x[j] - math.Floor(x[j])
		var score float64
		switch s.params.Branching {
		case BranchMostFractional:
			score = math.Min(f, 1-f)
		default: // pseudocost with most-fractional fallback
			pcScore, reliable := s.pc.score(j, f)
			if reliable {
				score = pcScore
			} else {
				score = math.Min(f, 1-f) * 1e-3
			}
		}
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best, x[best]
}

// offerIncumbent installs a candidate integer solution if it improves the
// incumbent. Trusted candidates come from LP solves whose integral
// variables are integer within tolerance; they are stored as-is (rounding
// them without recomputing the logical columns could violate rows).
// Untrusted candidates (heuristics) are revalidated first.
func (s *searcher) offerIncumbent(x []float64, trusted bool) bool {
	if !trusted && !s.checkFeasibleComputational(x) {
		return false
	}
	var obj float64
	for j, c := range s.comp.Problem.C {
		obj += c * x[j]
	}
	improved := false
	s.mu.Lock()
	if obj < s.incObj-1e-12 {
		s.incObj = obj
		// Copy only on install: candidates that lose the comparison (the
		// common case once a good incumbent exists) cost no allocation.
		s.incumbent = append(s.incumbent[:0], x...)
		s.hasInc = true
		improved = true
		s.notifyLocked(obs.KindIncumbent)
		s.checkTermination()
	}
	s.mu.Unlock()
	return improved
}

// notifyLocked records an incumbent or bound improvement: it updates the
// improvement counters, emits the matching event, and invokes the legacy
// progress callback. Caller holds s.mu.
func (s *searcher) notifyLocked(kind obs.EventKind) {
	switch kind {
	case obs.KindIncumbent:
		s.incumbents++
	case obs.KindBound:
		s.boundImps++
	}
	bound := s.globalBoundLocked()
	s.lastBound = bound
	s.emitLocked(obs.Event{Kind: kind, Worker: -1})
	if s.params.OnImprovement == nil {
		return
	}
	s.params.OnImprovement(Progress{
		Incumbent:    s.incObj,
		Bound:        bound,
		Gap:          relGap(s.incObj, bound),
		Nodes:        s.nodes,
		Elapsed:      time.Since(s.start),
		HasIncumbent: s.hasInc,
	})
}

// checkFeasibleComputational verifies bounds and row activities of a full
// computational-form point against the ROOT bounds.
func (s *searcher) checkFeasibleComputational(x []float64) bool {
	const tol = 1e-6
	for j, v := range x {
		if v < s.rootL[j]-tol || v > s.rootU[j]+tol {
			return false
		}
	}
	ax := s.comp.Problem.A.MulVec(x)
	for i, b := range s.comp.Problem.B {
		if math.Abs(ax[i]-b) > tol*(1+math.Abs(b)) {
			return false
		}
	}
	return true
}

// tryRounding attempts the naive rounding heuristic: round all integral
// structurals, recompute logical columns, and test feasibility.
func (s *searcher) tryRounding(w *workerState, x []float64) {
	ns := s.comp.NumStructural
	w.xs = append(w.xs[:0], x[:ns]...)
	xs := w.xs
	for _, j := range s.intVars {
		v := math.Round(xs[j])
		// Clamp into root bounds.
		if v < s.rootL[j] {
			v = s.rootL[j]
		}
		if v > s.rootU[j] {
			v = s.rootU[j]
		}
		xs[j] = v
	}
	improved := s.completeAndOffer(w, xs)
	s.mu.Lock()
	s.heurCalls++
	if improved {
		s.heurSuccesses++
	}
	s.mu.Unlock()
}

// completeAndOffer extends a structural assignment with exact logical
// values (s_i = b_i − (A_s·x_s)_i: the logical columns are the identity
// block) and offers the completed point as an untrusted incumbent. It
// reports whether the point improved the incumbent. A nil worker state
// (the MIP-start path, before workers exist) falls back to allocating.
func (s *searcher) completeAndOffer(w *workerState, xs []float64) bool {
	ns := s.comp.NumStructural
	ncols, nrows := s.comp.Problem.NumCols(), s.comp.Problem.NumRows()
	var x, act []float64
	if w != nil {
		w.compX = growZeroed(w.compX, ncols)
		w.compAct = growZeroed(w.compAct, nrows)
		x, act = w.compX, w.compAct
	} else {
		x = make([]float64, ncols)
		act = make([]float64, nrows)
	}
	copy(x, xs[:ns])
	a := s.comp.Problem.A
	for j := 0; j < ns; j++ {
		if x[j] == 0 {
			continue
		}
		rows, vals := a.Col(j)
		for p, i := range rows {
			act[i] += vals[p] * x[j]
		}
	}
	for i := range act {
		x[ns+i] = s.comp.Problem.B[i] - act[i]
	}
	return s.offerIncumbent(x, false)
}

// growZeroed returns s resized to n with every element zeroed.
func growZeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// dive runs a depth-first fixing heuristic from an LP-feasible point. Each
// round fixes every integer variable that is already near-integral plus the
// single most-integral fractional one, then re-solves; with batch fixing
// the dive reaches an integer point (or proves the path dead) in a number
// of LP solves far smaller than the number of integer variables.
func (s *searcher) dive(w *workerState, l, u []float64, lp *simplex.Result) bool {
	const maxLPSolves = 400
	w.dl = append(w.dl[:0], l...)
	w.du = append(w.du[:0], u...)
	dl, du := w.dl, w.du
	cur := lp
	for solves := 0; solves < maxLPSolves; solves++ {
		if s.stopFlag.Load() {
			return false
		}
		w.dfrac = s.fractionalVars(cur.X, w.dfrac)
		frac := w.dfrac
		if len(frac) == 0 {
			return s.offerIncumbent(cur.X, true)
		}
		// Batch-fix all nearly-integral variables, then the single
		// most-integral fractional one.
		best, bestF := frac[0], math.Inf(1)
		for _, j := range frac {
			if f := fracPart(cur.X[j]); f < bestF {
				best, bestF = j, f
			}
		}
		fixVar := func(j int) {
			v := math.Round(cur.X[j])
			if v < dl[j] || v > du[j] {
				v = math.Floor(cur.X[j])
				if v < dl[j] {
					v = math.Ceil(cur.X[j])
				}
			}
			dl[j], du[j] = v, v
		}
		for _, j := range s.intVars {
			if dl[j] != du[j] && fracPart(cur.X[j]) <= 0.01 {
				fixVar(j)
			}
		}
		fixVar(best)

		lpStart := time.Now()
		res, iters, st := s.solveLP(w, dl, du, cur.Basis)
		s.mu.Lock()
		s.simplexIters += iters
		s.lpTime += time.Since(lpStart)
		if res != nil {
			s.refactors += res.Refactors
			s.pricing.Add(res.Pricing)
		}
		cutoff := math.Inf(1)
		if s.hasInc {
			cutoff = s.incObj
		}
		s.mu.Unlock()
		if st != simplex.StatusOptimal || res.Obj >= cutoff {
			return false
		}
		cur = res
	}
	return false
}

// finish assembles the result after all workers exit.
func (s *searcher) finish() *Result {
	s.mu.Lock()
	defer s.mu.Unlock()

	res := &Result{
		HasIncumbent: s.hasInc,
		Obj:          s.incObj,
		Nodes:        s.nodes,
		SimplexIters: s.simplexIters,
		Elapsed:      time.Since(s.start),
		Stats: obs.Stats{
			SearchTime:         time.Since(s.start),
			LPTime:             s.lpTime,
			RootLPTime:         s.rootLPTime,
			HeuristicTime:      s.heurTime,
			Nodes:              s.nodes,
			PeakOpenNodes:      s.peakOpen,
			Workers:            s.params.Threads,
			NodesPerWorker:     append([]int(nil), s.nodesPerWorker...),
			SimplexIters:       s.simplexIters,
			RootLPIters:        s.rootLPIters,
			Refactorizations:   s.refactors,
			DevexResets:        s.pricing.DevexResets,
			PricingScannedCols: s.pricing.ScannedCols,
			PricingTotalCols:   s.pricing.TotalCols,
			HeuristicCalls:     s.heurCalls,
			HeuristicSuccesses: s.heurSuccesses,
			Incumbents:         s.incumbents,
			BoundImprovements:  s.boundImps,
			InjectedIncumbents: s.injInstalled,
		},
	}
	if s.pc != nil {
		res.Stats.PseudocostInits = s.pc.initialized()
	}
	if s.hasInc {
		res.X = s.incumbent
	}
	bound := s.globalBoundLocked()
	res.Bound = bound
	res.Gap = relGap(s.incObj, bound)

	switch {
	case s.stopSet && s.stopStatus == StatusUnbounded:
		res.Status = StatusUnbounded
	case s.stopSet && (s.stopStatus == StatusTimeLimit || s.stopStatus == StatusNodeLimit || s.stopStatus == StatusCanceled):
		res.Status = s.stopStatus
	case !s.hasInc:
		if s.failures > 0 {
			res.Status = StatusNoProgress
		} else {
			res.Status = StatusInfeasible
			res.Bound = math.Inf(1)
		}
	case s.failures > 0:
		res.Status = StatusNoProgress
	default:
		res.Status = StatusOptimal
	}
	return res
}
