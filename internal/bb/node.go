package bb

import (
	"container/heap"

	"milpjoin/internal/simplex"
)

// boundChange tightens one bound of one variable relative to the parent.
type boundChange struct {
	varIdx  int
	isLower bool
	value   float64
}

// node is a branch-and-bound subproblem, represented as a chain of bound
// changes back to the root plus a warm-start basis from the parent's LP.
type node struct {
	parent *node
	change boundChange // meaningless at the root (parent == nil)
	depth  int
	bound  float64 // inherited LP bound (lower bound on this subtree)
	basis  *simplex.Basis

	// branching bookkeeping for pseudocost updates: the fractionality
	// consumed by this node's bound change.
	frac        float64
	parentBound float64
}

// applyBounds walks the chain root→node, tightening l and u in place.
func (nd *node) applyBounds(l, u []float64) {
	// Collect the path; chains are short (tree depth).
	var path []*node
	for cur := nd; cur != nil && cur.parent != nil; cur = cur.parent {
		path = append(path, cur)
	}
	for i := len(path) - 1; i >= 0; i-- {
		ch := path[i].change
		if ch.isLower {
			if ch.value > l[ch.varIdx] {
				l[ch.varIdx] = ch.value
			}
		} else {
			if ch.value < u[ch.varIdx] {
				u[ch.varIdx] = ch.value
			}
		}
	}
}

// nodeHeap is a best-first priority queue ordered by ascending LP bound;
// ties break toward deeper nodes (closer to integer feasibility).
type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}

var _ heap.Interface = (*nodeHeap)(nil)
