package milp

import (
	"bytes"
	"testing"
)

// FuzzMPSRoundTrip feeds arbitrary bytes to the MPS reader and checks the
// write→read cycle is a fixpoint: any input the reader accepts must, once
// written, re-read into a model that writes back byte-identically. The
// first write normalises representation details (row order, generated
// names, number formatting); after that the format must be stable, or
// models would silently drift through file exchanges.
func FuzzMPSRoundTrip(f *testing.F) {
	f.Add([]byte("NAME tiny\nROWS\n N cost\n L c1\nCOLUMNS\n x cost 1 c1 2\n y c1 1\nRHS\n rhs c1 10\nBOUNDS\n UP bnd x 4\nENDATA\n"))
	f.Add([]byte("NAME ints\nROWS\n N obj\n G g0\n E e0\nCOLUMNS\n M0 'MARKER' 'INTORG'\n b0 obj 1 g0 1\n b1 e0 3\n M1 'MARKER' 'INTEND'\n z obj 2.5\nRHS\n rhs g0 1 e0 3\nBOUNDS\n BV bnd b0\n UP bnd b1 7\n FR bnd z\nENDATA\n"))
	f.Add([]byte("NAME negobj\nROWS\n N obj\nCOLUMNS\n x obj -1e30\nRHS\n rhs obj 5\nBOUNDS\n MI bnd x\n UP bnd x 0\nENDATA\n"))
	f.Add([]byte("NAME objrow\nROWS\n N cost\n L obj\nCOLUMNS\n x cost 1 obj 1\nRHS\n rhs obj 2\nENDATA\n"))
	f.Add([]byte("ENDATA\n"))
	f.Add([]byte("* comment only\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMPS(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var b2 bytes.Buffer
		if err := m.WriteMPS(&b2); err != nil {
			t.Fatalf("writing accepted model: %v", err)
		}
		m2, err := ReadMPS(bytes.NewReader(b2.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v\n--- output ---\n%s", err, b2.Bytes())
		}
		if m2.NumVars() != m.NumVars() || m2.NumConstrs() != m.NumConstrs() {
			t.Fatalf("round trip changed shape: %d/%d vars, %d/%d constraints",
				m.NumVars(), m2.NumVars(), m.NumConstrs(), m2.NumConstrs())
		}
		var b3 bytes.Buffer
		if err := m2.WriteMPS(&b3); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(b2.Bytes(), b3.Bytes()) {
			t.Fatalf("write→read→write not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", b2.Bytes(), b3.Bytes())
		}
	})
}
