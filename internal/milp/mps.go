package milp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteMPS renders the model in free-form MPS, the lingua franca of MILP
// solvers. Together with ReadMPS it allows instances to round-trip through
// files and be exchanged with external tools.
func (m *Model) WriteMPS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := m.Name
	if name == "" {
		name = "MODEL"
	}
	fmt.Fprintf(bw, "NAME %s\n", sanitizeMPSName(name))

	rowName := func(i int) string {
		_, _, _, n := m.Constr(i)
		if n == "" {
			return fmt.Sprintf("c%d", i)
		}
		return sanitizeMPSName(n)
	}
	colName := func(j Var) string { return sanitizeMPSName(m.VarName(j)) }

	// The objective row needs a name no constraint uses; "obj" is the
	// convention, extended until it is free (a constraint may legally be
	// named "obj").
	objRow := "obj"
	{
		taken := make(map[string]bool, m.NumConstrs())
		for i := 0; i < m.NumConstrs(); i++ {
			taken[rowName(i)] = true
		}
		for taken[objRow] {
			objRow += "_"
		}
	}

	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintf(bw, " N %s\n", objRow)
	for i := 0; i < m.NumConstrs(); i++ {
		_, sense, _, _ := m.Constr(i)
		var tag string
		switch sense {
		case LE:
			tag = "L"
		case GE:
			tag = "G"
		case EQ:
			tag = "E"
		}
		fmt.Fprintf(bw, " %s %s\n", tag, rowName(i))
	}

	// Column-major entries: objective plus per-constraint coefficients.
	type entry struct {
		row  string
		coef float64
	}
	cols := make([][]entry, m.NumVars())
	for j := 0; j < m.NumVars(); j++ {
		if c := m.ObjCoeff(Var(j)); c != 0 {
			cols[j] = append(cols[j], entry{objRow, c})
		}
	}
	for i := 0; i < m.NumConstrs(); i++ {
		expr, _, _, _ := m.Constr(i)
		rn := rowName(i)
		expr.Terms(func(v Var, c float64) {
			cols[v] = append(cols[v], entry{rn, c})
		})
	}

	fmt.Fprintln(bw, "COLUMNS")
	inInt := false
	marker := 0
	for j := 0; j < m.NumVars(); j++ {
		isInt := m.IsIntegral(Var(j))
		if isInt && !inInt {
			fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTORG'\n", marker)
			marker++
			inInt = true
		}
		if !isInt && inInt {
			fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTEND'\n", marker)
			marker++
			inInt = false
		}
		if len(cols[j]) == 0 {
			// MPS requires every column to appear; emit a zero
			// objective entry.
			fmt.Fprintf(bw, " %s %s 0\n", colName(Var(j)), objRow)
			continue
		}
		for _, e := range cols[j] {
			fmt.Fprintf(bw, " %s %s %s\n", colName(Var(j)), e.row, formatMPSNum(e.coef))
		}
	}
	if inInt {
		fmt.Fprintf(bw, " MARKER%d 'MARKER' 'INTEND'\n", marker)
	}

	fmt.Fprintln(bw, "RHS")
	for i := 0; i < m.NumConstrs(); i++ {
		_, _, rhs, _ := m.Constr(i)
		if rhs != 0 {
			fmt.Fprintf(bw, " rhs %s %s\n", rowName(i), formatMPSNum(rhs))
		}
	}
	if c := m.ObjConstant(); c != 0 {
		// Convention: objective constant as negated RHS of the
		// objective row.
		fmt.Fprintf(bw, " rhs %s %s\n", objRow, formatMPSNum(-c))
	}

	fmt.Fprintln(bw, "BOUNDS")
	for j := 0; j < m.NumVars(); j++ {
		l, u := m.Bounds(Var(j))
		cn := colName(Var(j))
		switch {
		case m.VarType(Var(j)) == Binary && l == 0 && u == 1:
			fmt.Fprintf(bw, " BV bnd %s\n", cn)
		case math.IsInf(l, -1) && math.IsInf(u, 1):
			fmt.Fprintf(bw, " FR bnd %s\n", cn)
		default:
			if math.IsInf(l, -1) {
				fmt.Fprintf(bw, " MI bnd %s\n", cn)
			} else if l != 0 {
				fmt.Fprintf(bw, " LO bnd %s %s\n", cn, formatMPSNum(l))
			}
			if !math.IsInf(u, 1) {
				fmt.Fprintf(bw, " UP bnd %s %s\n", cn, formatMPSNum(u))
			}
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// ReadMPS parses a free-form MPS file into a Model.
func ReadMPS(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	m := NewModel("")
	type rowInfo struct {
		sense Sense
		expr  LinExpr
		rhs   float64
	}
	rows := map[string]*rowInfo{}
	var rowOrder []string
	vars := map[string]Var{}
	objCoef := map[string]float64{}
	objRHS := 0.0
	intMode := false

	getVar := func(name string) Var {
		if v, ok := vars[name]; ok {
			return v
		}
		vt := Continuous
		if intMode {
			vt = Integer
		}
		v := m.AddVar(0, math.Inf(1), 0, vt, name)
		vars[name] = v
		return v
	}

	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t\r")
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			fields := strings.Fields(line)
			if len(fields) == 0 {
				// Whitespace other than the trimmed set (e.g. a lone
				// form feed) yields no fields.
				continue
			}
			section = strings.ToUpper(fields[0])
			if section == "NAME" && len(fields) > 1 {
				m.Name = fields[1]
			}
			if section == "ENDATA" {
				break
			}
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("milp: MPS line %d: bad ROWS entry", lineNo)
			}
			tag, name := strings.ToUpper(fields[0]), fields[1]
			// MPS row names are unique; a duplicate would silently merge
			// two rows' coefficients on re-read.
			if _, dup := rows[name]; dup {
				return nil, fmt.Errorf("milp: MPS line %d: duplicate row %q", lineNo, name)
			}
			switch tag {
			case "N":
				// objective row; remembered implicitly as "obj name"
				rows[name] = nil
			case "L", "G", "E":
				ri := &rowInfo{}
				switch tag {
				case "L":
					ri.sense = LE
				case "G":
					ri.sense = GE
				case "E":
					ri.sense = EQ
				}
				rows[name] = ri
				rowOrder = append(rowOrder, name)
			default:
				return nil, fmt.Errorf("milp: MPS line %d: unknown row type %q", lineNo, tag)
			}
		case "COLUMNS":
			if len(fields) >= 3 && strings.Contains(line, "'MARKER'") {
				if strings.Contains(line, "'INTORG'") {
					intMode = true
				} else if strings.Contains(line, "'INTEND'") {
					intMode = false
				}
				continue
			}
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, fmt.Errorf("milp: MPS line %d: bad COLUMNS entry", lineNo)
			}
			v := getVar(fields[0])
			for k := 1; k+1 < len(fields); k += 2 {
				rowName := fields[k]
				coef, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("milp: MPS line %d: %v", lineNo, err)
				}
				ri, ok := rows[rowName]
				if !ok {
					return nil, fmt.Errorf("milp: MPS line %d: unknown row %q", lineNo, rowName)
				}
				if ri == nil { // objective row
					objCoef[fields[0]] += coef
				} else {
					ri.expr = ri.expr.Add(v, coef)
				}
			}
		case "RHS":
			if len(fields) < 3 {
				return nil, fmt.Errorf("milp: MPS line %d: bad RHS entry", lineNo)
			}
			for k := 1; k+1 < len(fields); k += 2 {
				rowName := fields[k]
				val, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("milp: MPS line %d: %v", lineNo, err)
				}
				ri, ok := rows[rowName]
				if !ok {
					return nil, fmt.Errorf("milp: MPS line %d: unknown row %q", lineNo, rowName)
				}
				if ri == nil {
					objRHS = val
				} else {
					ri.rhs = val
				}
			}
		case "BOUNDS":
			if len(fields) < 3 {
				return nil, fmt.Errorf("milp: MPS line %d: bad BOUNDS entry", lineNo)
			}
			tag := strings.ToUpper(fields[0])
			v := getVar(fields[2])
			l, u := m.Bounds(v)
			var val float64
			if len(fields) >= 4 {
				var err error
				val, err = strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("milp: MPS line %d: %v", lineNo, err)
				}
			}
			switch tag {
			case "UP":
				u = val
			case "LO":
				l = val
			case "FX":
				l, u = val, val
			case "FR":
				l, u = math.Inf(-1), math.Inf(1)
			case "MI":
				l = math.Inf(-1)
			case "PL":
				u = math.Inf(1)
			case "BV":
				l, u = 0, 1
			default:
				return nil, fmt.Errorf("milp: MPS line %d: unknown bound type %q", lineNo, tag)
			}
			m.SetBounds(v, l, u)
		case "RANGES":
			return nil, fmt.Errorf("milp: MPS line %d: RANGES section not supported", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	for name, c := range objCoef {
		m.SetObjCoeff(vars[name], c)
	}
	m.AddObjConstant(-objRHS)
	for _, name := range rowOrder {
		ri := rows[name]
		m.AddConstr(ri.expr, ri.sense, ri.rhs, name)
	}
	return m, nil
}

func sanitizeMPSName(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t':
			return '_'
		default:
			return r
		}
	}, s)
}

func formatMPSNum(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}
