package milp

import (
	"math"
	"strings"
	"testing"
)

func buildMPSModel() *Model {
	m := NewModel("round trip")
	x := m.AddContinuous(0, 4, 1.5, "x")
	y := m.AddBinary(-1, "y")
	z := m.AddVar(math.Inf(-1), math.Inf(1), 0, Integer, "z")
	w := m.AddContinuous(-2, math.Inf(1), 0, "w")
	m.AddConstr(Expr(x, 1.0, y, -2.0), LE, 3, "cap")
	m.AddConstr(Expr(z, 1.0, w, 0.5), EQ, 1, "bal")
	m.AddConstr(Expr(x, 1.0, w, 1.0), GE, -1, "floor")
	m.AddObjConstant(7)
	return m
}

func TestMPSWriteContainsSections(t *testing.T) {
	var sb strings.Builder
	if err := buildMPSModel().WriteMPS(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"NAME round_trip", "ROWS", " N obj", " L cap", " E bal", " G floor",
		"COLUMNS", "'INTORG'", "'INTEND'", "RHS", "BOUNDS", " BV bnd y", "ENDATA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("MPS output missing %q:\n%s", want, out)
		}
	}
}

func TestMPSRoundTrip(t *testing.T) {
	orig := buildMPSModel()
	var sb strings.Builder
	if err := orig.WriteMPS(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMPS(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadMPS: %v\n%s", err, sb.String())
	}
	if back.NumVars() != orig.NumVars() {
		t.Fatalf("vars %d, want %d", back.NumVars(), orig.NumVars())
	}
	if back.NumConstrs() != orig.NumConstrs() {
		t.Fatalf("constrs %d, want %d", back.NumConstrs(), orig.NumConstrs())
	}
	if math.Abs(back.ObjConstant()-orig.ObjConstant()) > 1e-12 {
		t.Errorf("objective constant %g, want %g", back.ObjConstant(), orig.ObjConstant())
	}

	// Map variables by name and compare bounds / types / objective.
	backByName := map[string]Var{}
	for j := 0; j < back.NumVars(); j++ {
		backByName[back.VarName(Var(j))] = Var(j)
	}
	for j := 0; j < orig.NumVars(); j++ {
		name := orig.VarName(Var(j))
		bv, ok := backByName[name]
		if !ok {
			t.Fatalf("variable %q lost in round trip", name)
		}
		ol, ou := orig.Bounds(Var(j))
		bl, bu := back.Bounds(bv)
		if ol != bl || ou != bu {
			t.Errorf("%s bounds [%g,%g] → [%g,%g]", name, ol, ou, bl, bu)
		}
		if orig.IsIntegral(Var(j)) != back.IsIntegral(bv) {
			t.Errorf("%s integrality changed", name)
		}
		if math.Abs(orig.ObjCoeff(Var(j))-back.ObjCoeff(bv)) > 1e-12 {
			t.Errorf("%s objective %g → %g", name, orig.ObjCoeff(Var(j)), back.ObjCoeff(bv))
		}
	}

	// Semantics check: a known assignment must evaluate identically.
	vals := map[string]float64{"x": 2, "y": 1, "z": 0, "w": 2}
	origVals := make([]float64, orig.NumVars())
	backVals := make([]float64, back.NumVars())
	for j := 0; j < orig.NumVars(); j++ {
		origVals[j] = vals[orig.VarName(Var(j))]
	}
	for j := 0; j < back.NumVars(); j++ {
		backVals[j] = vals[back.VarName(Var(j))]
	}
	if math.Abs(orig.EvalObjective(origVals)-back.EvalObjective(backVals)) > 1e-9 {
		t.Errorf("objective differs after round trip: %g vs %g",
			orig.EvalObjective(origVals), back.EvalObjective(backVals))
	}
	origFeas := orig.CheckFeasible(origVals, 1e-9) == nil
	backFeas := back.CheckFeasible(backVals, 1e-9) == nil
	if origFeas != backFeas {
		t.Errorf("feasibility differs after round trip: %v vs %v", origFeas, backFeas)
	}
}

func TestReadMPSRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad rows":       "NAME t\nROWS\n X c1\nENDATA\n",
		"unknown row":    "NAME t\nROWS\n N obj\nCOLUMNS\n x nosuch 1\nENDATA\n",
		"bad number":     "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x c1 abc\nENDATA\n",
		"ranges":         "NAME t\nROWS\n N obj\nRANGES\n r c1 5\nENDATA\n",
		"bad bound type": "NAME t\nROWS\n N obj\nBOUNDS\n XX bnd x 1\nENDATA\n",
	}
	for name, input := range cases {
		if _, err := ReadMPS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestReadMPSComments(t *testing.T) {
	input := `* a comment
NAME demo
ROWS
 N obj
 L c1
COLUMNS
 x obj 2
 x c1 1
RHS
 rhs c1 4
BOUNDS
 UP bnd x 10
ENDATA
`
	m, err := ReadMPS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" || m.NumVars() != 1 || m.NumConstrs() != 1 {
		t.Fatalf("parsed model wrong: %q %d %d", m.Name, m.NumVars(), m.NumConstrs())
	}
	if _, u := m.Bounds(0); u != 10 {
		t.Errorf("upper bound = %g", u)
	}
}
