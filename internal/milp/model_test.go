package milp

import (
	"math"
	"strings"
	"testing"
)

func TestAddVarAndAccessors(t *testing.T) {
	m := NewModel("test")
	x := m.AddContinuous(-1, 5, 2, "x")
	y := m.AddBinary(-3, "y")
	z := m.AddVar(0, 10, 0, Integer, "z")

	if m.NumVars() != 3 {
		t.Fatalf("NumVars = %d", m.NumVars())
	}
	if m.NumIntVars() != 2 {
		t.Fatalf("NumIntVars = %d", m.NumIntVars())
	}
	if l, u := m.Bounds(x); l != -1 || u != 5 {
		t.Errorf("Bounds(x) = %g, %g", l, u)
	}
	if l, u := m.Bounds(y); l != 0 || u != 1 {
		t.Errorf("binary bounds = %g, %g", l, u)
	}
	if m.VarType(z) != Integer || m.VarType(x) != Continuous {
		t.Error("VarType wrong")
	}
	if !m.IsIntegral(y) || m.IsIntegral(x) {
		t.Error("IsIntegral wrong")
	}
	if m.VarName(x) != "x" {
		t.Errorf("VarName = %q", m.VarName(x))
	}
	if m.ObjCoeff(y) != -3 {
		t.Errorf("ObjCoeff(y) = %g", m.ObjCoeff(y))
	}
}

func TestBinaryBoundsClipped(t *testing.T) {
	m := NewModel("clip")
	b := m.AddVar(-5, 9, 0, Binary, "b")
	if l, u := m.Bounds(b); l != 0 || u != 1 {
		t.Errorf("clipped bounds = %g, %g, want 0, 1", l, u)
	}
}

func TestUnnamedVarGetsSyntheticName(t *testing.T) {
	m := NewModel("")
	v := m.AddBinary(0, "")
	if m.VarName(v) != "x0" {
		t.Errorf("VarName = %q, want x0", m.VarName(v))
	}
}

func TestExprCompaction(t *testing.T) {
	m := NewModel("compact")
	x := m.AddBinary(0, "x")
	y := m.AddBinary(0, "y")
	// x + x - 2x + 3y → 3y only.
	e := Expr(x, 1.0, x, 1.0, x, -2.0, y, 3.0)
	m.AddConstr(e, LE, 1, "c")
	got, _, _, _ := m.Constr(0)
	if got.NumTerms() != 1 {
		t.Fatalf("terms = %d, want 1", got.NumTerms())
	}
	got.Terms(func(v Var, c float64) {
		if v != y || c != 3 {
			t.Errorf("term = (%d, %g), want (y, 3)", v, c)
		}
	})
}

func TestExprPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd pairs", func() { Expr(Var(0)) })
	assertPanics("non-var", func() { Expr(1.0, 2.0) })
	assertPanics("non-numeric", func() { Expr(Var(0), "x") })
	assertPanics("weighted sum mismatch", func() { WeightedSum([]Var{0}, nil) })
	assertPanics("unknown var in constraint", func() {
		m := NewModel("")
		m.AddConstr(Expr(Var(7), 1.0), LE, 0, "bad")
	})
}

func TestSumAndWeightedSum(t *testing.T) {
	e := Sum(Var(0), Var(1), Var(2))
	if e.NumTerms() != 3 {
		t.Fatalf("Sum terms = %d", e.NumTerms())
	}
	w := WeightedSum([]Var{0, 1}, []float64{2, -1})
	var total float64
	w.Terms(func(v Var, c float64) { total += c })
	if total != 1 {
		t.Errorf("coefficient total = %g, want 1", total)
	}
}

func TestCompileShapes(t *testing.T) {
	m := NewModel("compile")
	x := m.AddContinuous(0, 4, 1, "x")
	y := m.AddBinary(2, "y")
	m.AddConstr(Expr(x, 1.0, y, 1.0), LE, 3, "le")
	m.AddConstr(Expr(x, 1.0), GE, 1, "ge")
	m.AddConstr(Expr(y, 1.0), EQ, 1, "eq")

	comp := m.Compile()
	p := comp.Problem
	if p.NumRows() != 3 || p.NumCols() != 5 {
		t.Fatalf("compiled shape %dx%d, want 3x5", p.NumRows(), p.NumCols())
	}
	if comp.NumStructural != 2 {
		t.Fatalf("NumStructural = %d", comp.NumStructural)
	}
	if comp.Integral[0] || !comp.Integral[1] {
		t.Error("Integral flags wrong")
	}
	// Logical bounds: LE → [0, inf), GE → (-inf, 0], EQ → [0, 0].
	if p.L[2] != 0 || !math.IsInf(p.U[2], 1) {
		t.Error("LE slack bounds wrong")
	}
	if !math.IsInf(p.L[3], -1) || p.U[3] != 0 {
		t.Error("GE slack bounds wrong")
	}
	if p.L[4] != 0 || p.U[4] != 0 {
		t.Error("EQ slack bounds wrong")
	}
	// Identity block.
	for i := 0; i < 3; i++ {
		if p.A.At(i, 2+i) != 1 {
			t.Errorf("logical column %d missing identity entry", i)
		}
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel("feas")
	x := m.AddContinuous(0, 4, 1, "x")
	y := m.AddBinary(0, "y")
	m.AddConstr(Expr(x, 1.0, y, 2.0), LE, 3, "c")

	if err := m.CheckFeasible([]float64{1, 1}, 1e-9); err != nil {
		t.Errorf("feasible point rejected: %v", err)
	}
	if err := m.CheckFeasible([]float64{5, 0}, 1e-9); err == nil {
		t.Error("bound violation accepted")
	}
	if err := m.CheckFeasible([]float64{0, 0.5}, 1e-9); err == nil {
		t.Error("fractional binary accepted")
	}
	if err := m.CheckFeasible([]float64{3, 1}, 1e-9); err == nil {
		t.Error("constraint violation accepted")
	}
	if err := m.CheckFeasible([]float64{1}, 1e-9); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	_ = x
	_ = y
}

func TestEvalObjectiveWithConstant(t *testing.T) {
	m := NewModel("obj")
	x := m.AddContinuous(0, 10, 3, "x")
	m.AddObjConstant(7)
	if got := m.EvalObjective([]float64{2}); got != 13 {
		t.Errorf("EvalObjective = %g, want 13", got)
	}
	if m.ObjConstant() != 7 {
		t.Errorf("ObjConstant = %g", m.ObjConstant())
	}
	m.SetObjCoeff(x, -1)
	if got := m.EvalObjective([]float64{2}); got != 5 {
		t.Errorf("after SetObjCoeff = %g, want 5", got)
	}
}

func TestStats(t *testing.T) {
	m := NewModel("stats")
	x := m.AddBinary(1, "x")
	y := m.AddContinuous(0, 1, 0, "y")
	m.AddConstr(Expr(x, 1.0, y, 1.0), LE, 1, "")
	m.AddConstr(Expr(x, 1.0), GE, 0, "")
	s := m.Stats()
	if s.Vars != 2 || s.IntVars != 1 || s.Constrs != 2 || s.Nonzeros != 3 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestWriteLP(t *testing.T) {
	m := NewModel("lpfile")
	x := m.AddContinuous(0, 4, 1.5, "x")
	y := m.AddBinary(-1, "y")
	z := m.AddVar(math.Inf(-1), math.Inf(1), 0, Integer, "z")
	m.AddConstr(Expr(x, 1.0, y, -2.0), LE, 3, "cap")
	m.AddConstr(Expr(z, 1.0), EQ, 0, "")

	var sb strings.Builder
	if err := m.WriteLP(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Minimize", "Subject To", "Bounds", "End",
		"1.5 x", "- y", "cap:", "- 2 y", "<= 3",
		"z free", "Binaries", "Generals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense strings wrong")
	}
	if !strings.Contains(Sense(9).String(), "9") {
		t.Error("unknown sense should include value")
	}
}

func TestSetBounds(t *testing.T) {
	m := NewModel("")
	v := m.AddContinuous(0, 1, 0, "v")
	m.SetBounds(v, -2, 3)
	if l, u := m.Bounds(v); l != -2 || u != 3 {
		t.Errorf("SetBounds → %g, %g", l, u)
	}
}
