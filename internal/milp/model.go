// Package milp provides the modelling layer of the MILP solver: variables
// with bounds and types, linear constraints, and a minimisation objective.
// It plays the role of the solver API the paper uses Gurobi for — models
// are built programmatically, then handed to internal/solver.
package milp

import (
	"fmt"
	"math"

	"milpjoin/internal/simplex"
	"milpjoin/internal/sparse"
)

// VarType classifies a decision variable.
type VarType int8

const (
	// Continuous variables range over the reals within their bounds.
	Continuous VarType = iota
	// Integer variables must take integral values within their bounds.
	Integer
	// Binary variables are integer variables with bounds [0, 1].
	Binary
)

// Var is an opaque handle to a model variable.
type Var int

// Sense is a constraint comparison operator.
type Sense int8

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// String renders the sense in LP-file notation.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Model is a mixed integer linear program under construction: minimize the
// objective subject to linear constraints and variable bounds/types.
type Model struct {
	Name string

	lb, ub   []float64
	obj      []float64
	vtype    []VarType
	varNames []string

	constrs     []constraint
	objConstant float64
}

type constraint struct {
	expr  LinExpr
	sense Sense
	rhs   float64
	name  string
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name}
}

// AddVar adds a variable with the given bounds, objective coefficient,
// type, and name, returning its handle. Binary variables have their bounds
// clipped to [0, 1].
func (m *Model) AddVar(lb, ub, obj float64, vt VarType, name string) Var {
	if vt == Binary {
		lb = math.Max(lb, 0)
		ub = math.Min(ub, 1)
	}
	m.lb = append(m.lb, lb)
	m.ub = append(m.ub, ub)
	m.obj = append(m.obj, obj)
	m.vtype = append(m.vtype, vt)
	m.varNames = append(m.varNames, name)
	return Var(len(m.lb) - 1)
}

// AddBinary adds a binary variable with the given objective coefficient.
func (m *Model) AddBinary(obj float64, name string) Var {
	return m.AddVar(0, 1, obj, Binary, name)
}

// AddContinuous adds a continuous variable.
func (m *Model) AddContinuous(lb, ub, obj float64, name string) Var {
	return m.AddVar(lb, ub, obj, Continuous, name)
}

// AddConstr adds the constraint expr sense rhs and returns its index.
func (m *Model) AddConstr(expr LinExpr, sense Sense, rhs float64, name string) int {
	for _, v := range expr.vars {
		if int(v) < 0 || int(v) >= len(m.lb) {
			panic(fmt.Sprintf("milp: constraint %q references unknown variable %d", name, v))
		}
	}
	m.constrs = append(m.constrs, constraint{expr: expr.compacted(), sense: sense, rhs: rhs, name: name})
	return len(m.constrs) - 1
}

// SetObjCoeff overwrites the objective coefficient of v.
func (m *Model) SetObjCoeff(v Var, c float64) { m.obj[v] = c }

// AddObjConstant adds a constant term to the objective (reported in
// solution objectives, irrelevant to the argmin).
func (m *Model) AddObjConstant(c float64) { m.objConstant += c }

// ObjConstant returns the accumulated objective constant.
func (m *Model) ObjConstant() float64 { return m.objConstant }

// SetBounds overwrites the bounds of v.
func (m *Model) SetBounds(v Var, lb, ub float64) {
	m.lb[v] = lb
	m.ub[v] = ub
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.lb) }

// NumConstrs returns the number of constraints.
func (m *Model) NumConstrs() int { return len(m.constrs) }

// NumIntVars returns the number of integer and binary variables.
func (m *Model) NumIntVars() int {
	c := 0
	for _, t := range m.vtype {
		if t != Continuous {
			c++
		}
	}
	return c
}

// VarName returns the name of v (or a synthetic one when unnamed).
func (m *Model) VarName(v Var) string {
	if n := m.varNames[v]; n != "" {
		return n
	}
	return fmt.Sprintf("x%d", int(v))
}

// VarType returns the type of v.
func (m *Model) VarType(v Var) VarType { return m.vtype[v] }

// Bounds returns the bounds of v.
func (m *Model) Bounds(v Var) (lb, ub float64) { return m.lb[v], m.ub[v] }

// ObjCoeff returns the objective coefficient of v.
func (m *Model) ObjCoeff(v Var) float64 { return m.obj[v] }

// IsIntegral reports whether v must take integral values.
func (m *Model) IsIntegral(v Var) bool { return m.vtype[v] != Continuous }

// Constr returns the components of constraint i.
func (m *Model) Constr(i int) (expr LinExpr, sense Sense, rhs float64, name string) {
	c := m.constrs[i]
	return c.expr, c.sense, c.rhs, c.name
}

// Snapshot captures variable/constraint counts, used by the experiment
// harness to regenerate Figure 1.
type Snapshot struct {
	Vars, IntVars, Constrs, Nonzeros int
}

// Stats returns a size snapshot of the model.
func (m *Model) Stats() Snapshot {
	nz := 0
	for _, c := range m.constrs {
		nz += len(c.expr.vars)
	}
	return Snapshot{
		Vars:     m.NumVars(),
		IntVars:  m.NumIntVars(),
		Constrs:  m.NumConstrs(),
		Nonzeros: nz,
	}
}

// Computational is a model compiled to the equality form consumed by the
// simplex method, plus the metadata needed to interpret solutions.
type Computational struct {
	Problem *simplex.Problem
	// NumStructural is the number of original model variables; columns
	// NumStructural.. are logical (slack) columns, one per row.
	NumStructural int
	// Integral flags the structural columns that must be integral.
	Integral []bool
	// ColScale maps scaled structural values back to model space:
	// x_model[j] = ColScale[j] · x_scaled[j]. Integer columns always
	// have scale 1.
	ColScale []float64
}

// Unscale converts a scaled structural solution slice back to model space.
func (c *Computational) Unscale(scaled []float64) []float64 {
	out := make([]float64, len(scaled))
	for j, v := range scaled {
		out[j] = v * c.ColScale[j]
	}
	return out
}

// Compile converts the model into computational form: one logical column is
// appended per constraint so that the last m columns of A form an identity
// block, as the simplex solver requires.
//
// The constraint matrix is equilibrated first: alternating row and column
// scaling passes bring all coefficient magnitudes near 1, so that the
// solver's feasibility and optimality tolerances are meaningful even for
// models mixing unit and cardinality-scale coefficients (the MILP join
// encodings span 12+ orders of magnitude). Column scaling is applied only
// to continuous variables — integer columns keep scale 1 so integrality
// and branching are unaffected — and is undone via Computational.ColScale.
func (m *Model) Compile() *Computational {
	n := m.NumVars()
	rows := m.NumConstrs()

	// Working copy of the rows for scaling.
	coefs := make([][]float64, rows)
	b := make([]float64, rows)
	for i, con := range m.constrs {
		coefs[i] = append([]float64(nil), con.expr.coefs...)
		b[i] = con.rhs
	}

	colScale := make([]float64, n)
	for j := range colScale {
		colScale[j] = 1
	}

	// Column index: for each variable, the (row, position) of its
	// coefficients. Built once; the structure never changes.
	type entry struct{ i, k int }
	colEntries := make([][]entry, n)
	for i, con := range m.constrs {
		for k, v := range con.expr.vars {
			colEntries[v] = append(colEntries[v], entry{i, k})
		}
	}

	// Alternate row and column equilibration passes.
	for pass := 0; pass < 2; pass++ {
		// Rows: scale by the largest magnitude (only downward).
		for i := range coefs {
			mx := 1.0
			for k := range coefs[i] {
				if a := math.Abs(coefs[i][k]); a > mx {
					mx = a
				}
			}
			if mx > 1 {
				inv := 1 / mx
				for k := range coefs[i] {
					coefs[i][k] *= inv
				}
				b[i] *= inv
			}
		}
		// Columns: rescale continuous variables whose largest
		// coefficient drifted far from 1.
		for j := 0; j < n; j++ {
			if m.vtype[j] != Continuous || len(colEntries[j]) == 0 {
				continue
			}
			mx := 0.0
			for _, e := range colEntries[j] {
				if a := math.Abs(coefs[e.i][e.k]); a > mx {
					mx = a
				}
			}
			if mx == 0 || (mx > 0.5 && mx < 2) {
				continue // already well scaled
			}
			s := 1 / mx // multiply column entries by s
			for _, e := range colEntries[j] {
				coefs[e.i][e.k] *= s
			}
			// Multiplying column j by s substitutes x_scaled =
			// x_model/s, so x_model = s·x_scaled: accumulate s.
			colScale[j] *= s
		}
	}

	tr := sparse.NewTriplet(rows, n+rows)
	l := make([]float64, n+rows)
	u := make([]float64, n+rows)
	c := make([]float64, n+rows)
	for j := 0; j < n; j++ {
		l[j] = m.lb[j] / colScale[j]
		u[j] = m.ub[j] / colScale[j]
		c[j] = m.obj[j] * colScale[j]
	}

	for i, con := range m.constrs {
		for k, v := range con.expr.vars {
			tr.Add(i, int(v), coefs[i][k])
		}
		tr.Add(i, n+i, 1)
		switch con.sense {
		case LE:
			l[n+i], u[n+i] = 0, math.Inf(1)
		case GE:
			l[n+i], u[n+i] = math.Inf(-1), 0
		case EQ:
			l[n+i], u[n+i] = 0, 0
		}
	}

	integral := make([]bool, n)
	for j := 0; j < n; j++ {
		integral[j] = m.vtype[j] != Continuous
	}
	return &Computational{
		Problem:       &simplex.Problem{A: tr.Compress(), B: b, C: c, L: l, U: u},
		NumStructural: n,
		Integral:      integral,
		ColScale:      colScale,
	}
}

// Solution is a variable assignment with its objective value.
type Solution struct {
	Values []float64 // indexed by Var, length NumVars
	Obj    float64   // objective including the model constant
}

// Value returns the value of v in the solution.
func (s *Solution) Value(v Var) float64 { return s.Values[v] }

// EvalObjective computes the objective of an assignment under this model.
func (m *Model) EvalObjective(values []float64) float64 {
	obj := m.objConstant
	for j, c := range m.obj {
		obj += c * values[j]
	}
	return obj
}

// CheckFeasible verifies that values satisfies all bounds, integrality
// requirements, and constraints within tol. It returns a descriptive error
// for the first violation found, or nil.
func (m *Model) CheckFeasible(values []float64, tol float64) error {
	if len(values) != m.NumVars() {
		return fmt.Errorf("milp: assignment has %d values, want %d", len(values), m.NumVars())
	}
	for j, v := range values {
		if v < m.lb[j]-tol || v > m.ub[j]+tol {
			return fmt.Errorf("milp: %s = %g outside [%g, %g]", m.VarName(Var(j)), v, m.lb[j], m.ub[j])
		}
		if m.vtype[j] != Continuous && math.Abs(v-math.Round(v)) > tol {
			return fmt.Errorf("milp: %s = %g is fractional", m.VarName(Var(j)), v)
		}
	}
	for i, con := range m.constrs {
		var lhs float64
		for k, v := range con.expr.vars {
			lhs += con.expr.coefs[k] * values[v]
		}
		scale := 1 + math.Abs(con.rhs)
		switch con.sense {
		case LE:
			if lhs > con.rhs+tol*scale {
				return fmt.Errorf("milp: constraint %d (%s): %g > %g", i, con.name, lhs, con.rhs)
			}
		case GE:
			if lhs < con.rhs-tol*scale {
				return fmt.Errorf("milp: constraint %d (%s): %g < %g", i, con.name, lhs, con.rhs)
			}
		case EQ:
			if math.Abs(lhs-con.rhs) > tol*scale {
				return fmt.Errorf("milp: constraint %d (%s): %g != %g", i, con.name, lhs, con.rhs)
			}
		}
	}
	return nil
}
