package milp

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteLP renders the model in CPLEX LP file format, which most MILP tools
// can read. Intended for debugging and for exporting instances.
func (m *Model) WriteLP(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if m.Name != "" {
		fmt.Fprintf(bw, "\\ %s\n", m.Name)
	}
	fmt.Fprintln(bw, "Minimize")
	fmt.Fprint(bw, " obj:")
	wrote := false
	for j, c := range m.obj {
		if c == 0 {
			continue
		}
		writeTerm(bw, c, m.VarName(Var(j)), !wrote)
		wrote = true
	}
	if !wrote {
		fmt.Fprint(bw, " 0")
	}
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "Subject To")
	for i, con := range m.constrs {
		name := con.name
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		fmt.Fprintf(bw, " %s:", name)
		first := true
		for k, v := range con.expr.vars {
			writeTerm(bw, con.expr.coefs[k], m.VarName(v), first)
			first = false
		}
		if first {
			fmt.Fprint(bw, " 0")
		}
		fmt.Fprintf(bw, " %s %g\n", con.sense, con.rhs)
	}

	fmt.Fprintln(bw, "Bounds")
	for j := range m.lb {
		name := m.VarName(Var(j))
		l, u := m.lb[j], m.ub[j]
		switch {
		case math.IsInf(l, -1) && math.IsInf(u, 1):
			fmt.Fprintf(bw, " %s free\n", name)
		case math.IsInf(l, -1):
			fmt.Fprintf(bw, " -inf <= %s <= %g\n", name, u)
		case math.IsInf(u, 1):
			fmt.Fprintf(bw, " %g <= %s\n", l, name)
		default:
			fmt.Fprintf(bw, " %g <= %s <= %g\n", l, name, u)
		}
	}

	var generals, binaries []string
	for j, t := range m.vtype {
		switch t {
		case Integer:
			generals = append(generals, m.VarName(Var(j)))
		case Binary:
			binaries = append(binaries, m.VarName(Var(j)))
		}
	}
	if len(generals) > 0 {
		fmt.Fprintln(bw, "Generals")
		for _, n := range generals {
			fmt.Fprintf(bw, " %s\n", n)
		}
	}
	if len(binaries) > 0 {
		fmt.Fprintln(bw, "Binaries")
		for _, n := range binaries {
			fmt.Fprintf(bw, " %s\n", n)
		}
	}
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}

func writeTerm(w io.Writer, c float64, name string, first bool) {
	switch {
	case first && c == 1:
		fmt.Fprintf(w, " %s", name)
	case first && c == -1:
		fmt.Fprintf(w, " - %s", name)
	case first:
		fmt.Fprintf(w, " %g %s", c, name)
	case c == 1:
		fmt.Fprintf(w, " + %s", name)
	case c == -1:
		fmt.Fprintf(w, " - %s", name)
	case c < 0:
		fmt.Fprintf(w, " - %g %s", -c, name)
	default:
		fmt.Fprintf(w, " + %g %s", c, name)
	}
}
