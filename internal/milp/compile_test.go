package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomModel builds a model with wildly scaled coefficients to exercise
// the equilibration.
func randomModel(rng *rand.Rand) (*Model, []float64) {
	m := NewModel("scale")
	n := 2 + rng.Intn(5)
	vals := make([]float64, n)
	for j := 0; j < n; j++ {
		if rng.Intn(2) == 0 {
			m.AddVar(0, float64(1+rng.Intn(3)), rng.NormFloat64(), Integer, "")
			vals[j] = float64(rng.Intn(2))
		} else {
			m.AddContinuous(-5, 5, rng.NormFloat64(), "")
			vals[j] = rng.Float64()*4 - 2
		}
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		e := LinExpr{}
		scale := math.Pow(10, float64(rng.Intn(13)-3)) // coefficients 1e-3 … 1e9
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.7 {
				e = e.Add(Var(j), rng.NormFloat64()*scale)
			}
		}
		if e.NumTerms() == 0 {
			continue
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		m.AddConstr(e, sense, rng.NormFloat64()*scale, "")
	}
	return m, vals
}

// TestCompileScalingPreservesSemantics: for any assignment, the scaled
// computational form agrees with the model on objective value and row
// activities (after unscaling).
func TestCompileScalingPreservesSemantics(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(61))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, vals := randomModel(rng)
		comp := m.Compile()

		// Scale the assignment into computational space.
		scaled := make([]float64, comp.NumStructural)
		for j := range scaled {
			scaled[j] = vals[j] / comp.ColScale[j]
		}
		// Unscale must round-trip.
		back := comp.Unscale(scaled)
		for j := range back {
			if math.Abs(back[j]-vals[j]) > 1e-9*(1+math.Abs(vals[j])) {
				return false
			}
		}
		// Objective invariance (excluding the constant, which stays in
		// the model).
		var scaledObj float64
		for j := 0; j < comp.NumStructural; j++ {
			scaledObj += comp.Problem.C[j] * scaled[j]
		}
		var modelObj float64
		for j := 0; j < m.NumVars(); j++ {
			modelObj += m.ObjCoeff(Var(j)) * vals[j]
		}
		if math.Abs(scaledObj-modelObj) > 1e-6*(1+math.Abs(modelObj)) {
			return false
		}
		// Row activities: scaled row i activity equals the model's
		// constraint LHS divided by the row scale; verify through the
		// sign of violations — a point feasible for the model must
		// have logical values within the slack bounds.
		act := comp.Problem.A.MulVec(append(append([]float64(nil), scaled...), make([]float64, comp.Problem.NumRows())...))
		for i := 0; i < comp.Problem.NumRows(); i++ {
			slack := comp.Problem.B[i] - act[i]
			expr, sense, rhs, _ := m.Constr(i)
			var lhs float64
			expr.Terms(func(v Var, c float64) { lhs += c * vals[v] })
			modelSlack := rhs - lhs
			// Signs must agree (scaling is by a positive factor).
			if slack*modelSlack < -1e-6*(1+math.Abs(modelSlack)) {
				return false
			}
			_ = sense
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCompileIntegerColumnsUnscaled: integer columns keep scale 1 so
// integrality survives compilation.
func TestCompileIntegerColumnsUnscaled(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 50; trial++ {
		m, _ := randomModel(rng)
		comp := m.Compile()
		for j := 0; j < comp.NumStructural; j++ {
			if comp.Integral[j] && comp.ColScale[j] != 1 {
				t.Fatalf("trial %d: integer column %d scaled by %g", trial, j, comp.ColScale[j])
			}
		}
	}
}

// TestCompileEquilibration: after compilation no structural column of a
// continuous variable retains a badly scaled largest coefficient.
func TestCompileEquilibration(t *testing.T) {
	m := NewModel("wide")
	x := m.AddContinuous(0, 1e12, 1, "x")
	y := m.AddBinary(0, "y")
	m.AddConstr(Expr(x, 1.0, y, 5e12), LE, 1e13, "wide")
	comp := m.Compile()
	// Row scaled by 5e12; x's coefficient would become 2e-13 without
	// column scaling — equilibration must bring it near 1.
	got := math.Abs(comp.Problem.A.At(0, 0))
	if got < 0.01 || got > 100 {
		t.Errorf("x coefficient after equilibration = %g, want near 1", got)
	}
}
