package milp

import "sort"

// LinExpr is a linear expression: a weighted sum of variables. The zero
// value is an empty expression; build expressions with Expr and Add.
type LinExpr struct {
	vars  []Var
	coefs []float64
}

// Expr starts a linear expression from alternating (Var, coefficient)
// pairs, e.g. Expr(x, 1, y, -2) for x − 2y.
func Expr(pairs ...any) LinExpr {
	if len(pairs)%2 != 0 {
		panic("milp: Expr requires (Var, coefficient) pairs")
	}
	var e LinExpr
	for i := 0; i < len(pairs); i += 2 {
		v, ok := pairs[i].(Var)
		if !ok {
			panic("milp: Expr pair does not start with a Var")
		}
		c, ok := toFloat(pairs[i+1])
		if !ok {
			panic("milp: Expr coefficient is not numeric")
		}
		e = e.Add(v, c)
	}
	return e
}

func toFloat(x any) (float64, bool) {
	switch v := x.(type) {
	case float64:
		return v, true
	case float32:
		return float64(v), true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	default:
		return 0, false
	}
}

// Add appends the term c·v and returns the extended expression. The
// receiver is not modified if its backing arrays must grow; callers should
// use the returned value.
func (e LinExpr) Add(v Var, c float64) LinExpr {
	e.vars = append(e.vars, v)
	e.coefs = append(e.coefs, c)
	return e
}

// AddExpr appends all terms of o.
func (e LinExpr) AddExpr(o LinExpr) LinExpr {
	e.vars = append(e.vars, o.vars...)
	e.coefs = append(e.coefs, o.coefs...)
	return e
}

// Terms invokes f for each stored term (duplicates possible before
// compaction).
func (e LinExpr) Terms(f func(v Var, c float64)) {
	for i, v := range e.vars {
		f(v, e.coefs[i])
	}
}

// NumTerms returns the number of stored terms.
func (e LinExpr) NumTerms() int { return len(e.vars) }

// compacted returns an equivalent expression with duplicate variables
// merged, zero coefficients dropped, and terms sorted by variable index.
func (e LinExpr) compacted() LinExpr {
	if len(e.vars) == 0 {
		return e
	}
	type term struct {
		v Var
		c float64
	}
	ts := make([]term, len(e.vars))
	for i := range e.vars {
		ts[i] = term{e.vars[i], e.coefs[i]}
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a].v < ts[b].v })
	out := LinExpr{vars: make([]Var, 0, len(ts)), coefs: make([]float64, 0, len(ts))}
	i := 0
	for i < len(ts) {
		v := ts[i].v
		c := ts[i].c
		i++
		for i < len(ts) && ts[i].v == v {
			c += ts[i].c
			i++
		}
		if c != 0 {
			out.vars = append(out.vars, v)
			out.coefs = append(out.coefs, c)
		}
	}
	return out
}

// Sum builds the expression Σ v_i (all coefficients 1).
func Sum(vars ...Var) LinExpr {
	e := LinExpr{vars: make([]Var, 0, len(vars)), coefs: make([]float64, 0, len(vars))}
	for _, v := range vars {
		e = e.Add(v, 1)
	}
	return e
}

// WeightedSum builds Σ c_i·v_i; the slices must have equal length.
func WeightedSum(vars []Var, coefs []float64) LinExpr {
	if len(vars) != len(coefs) {
		panic("milp: WeightedSum length mismatch")
	}
	e := LinExpr{vars: make([]Var, 0, len(vars)), coefs: make([]float64, 0, len(coefs))}
	for i, v := range vars {
		e = e.Add(v, coefs[i])
	}
	return e
}
