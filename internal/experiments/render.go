package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// RenderFigure1 writes the Figure 1 census as a text table.
func RenderFigure1(w io.Writer, rows []Figure1Row) {
	fmt.Fprintln(w, "Figure 1 — MILP size per query (median over random queries)")
	fmt.Fprintf(w, "%-8s %-10s %12s %12s %12s %12s\n",
		"tables", "precision", "variables", "constraints", "nonzeros", "thresholds")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-10s %12d %12d %12d %12d\n",
			r.Tables, r.Precision, r.MedianVars, r.MedianConstrs, r.MedianNonzeros, r.Thresholds)
	}
}

// RenderFigure1CSV writes the census as CSV.
func RenderFigure1CSV(w io.Writer, rows []Figure1Row) {
	fmt.Fprintln(w, "tables,precision,median_vars,median_constraints,median_nonzeros,thresholds")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%s,%d,%d,%d,%d\n",
			r.Tables, r.Precision, r.MedianVars, r.MedianConstrs, r.MedianNonzeros, r.Thresholds)
	}
}

// RenderFigure2 writes one Figure 2 cell per block: for every algorithm the
// median Cost/LB ratio at each sample time ("inf" meaning no plan yet —
// exactly the paper's criterion for DP before it finishes).
func RenderFigure2(w io.Writer, cells []Figure2Cell) {
	for _, cell := range cells {
		fmt.Fprintf(w, "Figure 2 — %s, %d tables (median Cost/LB over time)\n", cell.Shape, cell.Tables)
		fmt.Fprintf(w, "%-24s", "t")
		for _, tm := range cell.Times {
			fmt.Fprintf(w, "%10s", tm.Truncate(tm/100+1).String())
		}
		fmt.Fprintln(w)
		for _, name := range sortedSeriesNames(cell) {
			fmt.Fprintf(w, "%-24s", name)
			for _, v := range cell.Series[name] {
				fmt.Fprintf(w, "%10s", formatRatio(v))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

// RenderFigure2CSV writes all cells as CSV rows.
func RenderFigure2CSV(w io.Writer, cells []Figure2Cell) {
	fmt.Fprintln(w, "shape,tables,algorithm,sample_seconds,median_cost_over_lb")
	for _, cell := range cells {
		for _, name := range sortedSeriesNames(cell) {
			for i, tm := range cell.Times {
				fmt.Fprintf(w, "%s,%d,%s,%.3f,%s\n",
					cell.Shape, cell.Tables, name, tm.Seconds(), formatRatio(cell.Series[name][i]))
			}
		}
	}
}

func sortedSeriesNames(cell Figure2Cell) []string {
	names := make([]string, 0, len(cell.Series))
	for name := range cell.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func formatRatio(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v):
		return "nan"
	case v >= 100:
		return fmt.Sprintf("%.3g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// RenderHeuristicComparison writes the extra MILP-vs-randomized comparison.
func RenderHeuristicComparison(w io.Writer, rows []HeuristicComparisonRow) {
	fmt.Fprintln(w, "MILP vs randomized algorithms (equal budgets; ratios vs best plan found)")
	fmt.Fprintf(w, "%-26s %16s %16s\n", "algorithm", "median cost/best", "proven factor")
	for _, r := range rows {
		proven := "none"
		if r.ProvenBound {
			proven = formatRatio(r.MedianProvenFactor)
		}
		fmt.Fprintf(w, "%-26s %16s %16s\n", r.Algorithm, formatRatio(r.MedianCostRatio), proven)
	}
}
