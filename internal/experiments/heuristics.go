package experiments

import (
	"context"
	"math"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/heuristic"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

// HeuristicComparisonConfig parameterises the extra experiment contrasting
// the MILP approach with the randomized algorithms of Steinbrunn et al.
// (Section 2 of the paper argues they are excluded from its evaluation
// because they offer no optimality guarantees; this harness quantifies the
// comparison anyway).
type HeuristicComparisonConfig struct {
	Shape   workload.GraphShape
	Tables  int
	Queries int
	Budget  time.Duration // per algorithm per query
	Seed    int64
	Threads int
}

// WithDefaults fills a laptop-scale configuration.
func (c HeuristicComparisonConfig) WithDefaults() HeuristicComparisonConfig {
	if c.Tables == 0 {
		c.Tables = 12
	}
	if c.Queries == 0 {
		c.Queries = 5
	}
	if c.Budget == 0 {
		c.Budget = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Threads == 0 {
		c.Threads = 2
	}
	return c
}

// HeuristicComparisonRow summarises one algorithm over the query set.
type HeuristicComparisonRow struct {
	Algorithm string
	// MedianCostRatio is the median of (plan cost / best plan cost found
	// by any algorithm on that query); 1.0 means the algorithm matched
	// the best known plan on the median query.
	MedianCostRatio float64
	// ProvenBound reports whether the algorithm produces an optimality
	// guarantee (only the MILP approach does).
	ProvenBound bool
	// MedianProvenFactor is the median proven Cost/LB factor (MILP
	// only; +Inf for the heuristics, which certify nothing).
	MedianProvenFactor float64
}

// HeuristicComparison runs the MILP optimizer and the randomized baselines
// under equal time budgets and reports plan quality relative to the best
// plan any of them found.
func HeuristicComparison(ctx context.Context, cfg HeuristicComparisonConfig) ([]HeuristicComparisonRow, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.WithDefaults()
	spec := cost.DefaultSpec()
	opts := core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin}

	type algo struct {
		name   string
		proven bool
		run    func(q *qopt.Query, seed int64) (float64, float64, error) // cost, provenFactor
	}
	algos := []algo{
		{"ILP (medium precision)", true, func(q *qopt.Query, seed int64) (float64, float64, error) {
			res, err := core.Optimize(ctx, q, opts, solver.Params{TimeLimit: cfg.Budget, Threads: cfg.Threads})
			if err != nil {
				return 0, 0, err
			}
			if res.Plan == nil {
				return math.Inf(1), math.Inf(1), nil
			}
			factor := math.Inf(1)
			if res.Solver.Bound > 0 {
				factor = res.MILPObj / res.Solver.Bound
			}
			return res.ExactCost, factor, nil
		}},
		{"iterative improvement", false, func(q *qopt.Query, seed int64) (float64, float64, error) {
			_, c, err := heuristic.IterativeImprovement(ctx, q, spec, heuristic.Options{
				Seed: seed, Deadline: time.Now().Add(cfg.Budget), Restarts: 1 << 20,
			})
			return c, math.Inf(1), err
		}},
		{"simulated annealing", false, func(q *qopt.Query, seed int64) (float64, float64, error) {
			_, c, err := heuristic.SimulatedAnnealing(ctx, q, spec, heuristic.Options{
				Seed: seed, Deadline: time.Now().Add(cfg.Budget),
			})
			return c, math.Inf(1), err
		}},
		{"two-phase (2PO)", false, func(q *qopt.Query, seed int64) (float64, float64, error) {
			_, c, err := heuristic.TwoPhase(ctx, q, spec, heuristic.Options{
				Seed: seed, Deadline: time.Now().Add(cfg.Budget),
			})
			return c, math.Inf(1), err
		}},
		{"random sampling", false, func(q *qopt.Query, seed int64) (float64, float64, error) {
			_, c, err := heuristic.RandomSampling(ctx, q, spec, 1<<30, heuristic.Options{
				Seed: seed, Deadline: time.Now().Add(cfg.Budget),
			})
			return c, math.Inf(1), err
		}},
	}

	costs := make([][]float64, len(algos))   // [algo][query]
	factors := make([][]float64, len(algos)) // [algo][query]
	for qi := 0; qi < cfg.Queries; qi++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q := workload.Generate(cfg.Shape, cfg.Tables, cfg.Seed+int64(qi), workload.Config{})
		best := math.Inf(1)
		row := make([]float64, len(algos))
		for ai, a := range algos {
			c, factor, err := a.run(q, cfg.Seed+int64(qi))
			if err != nil {
				return nil, err
			}
			row[ai] = c
			factors[ai] = append(factors[ai], factor)
			if c < best {
				best = c
			}
		}
		for ai := range algos {
			costs[ai] = append(costs[ai], row[ai]/best)
		}
	}

	out := make([]HeuristicComparisonRow, len(algos))
	for ai, a := range algos {
		out[ai] = HeuristicComparisonRow{
			Algorithm:          a.name,
			MedianCostRatio:    median(costs[ai]),
			ProvenBound:        a.proven,
			MedianProvenFactor: median(factors[ai]),
		}
	}
	return out, nil
}
