package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
)

// Figure2Config parameterises the anytime comparison of Figure 2.
type Figure2Config struct {
	// Shapes lists the join graph structures (paper: chain, cycle, star).
	Shapes []workload.GraphShape
	// Sizes lists table counts (paper: 10, 20, …, 60).
	Sizes []int
	// QueriesPerCell is the number of random queries per (shape, size)
	// cell (paper: 20).
	QueriesPerCell int
	// Timeout is the optimization budget per query (paper: 60 s).
	Timeout time.Duration
	// Samples is the number of evenly spaced measurement points within
	// the timeout (paper: 10, i.e. every 6 s).
	Samples int
	// Precisions lists the MILP configurations to run (paper: all three).
	Precisions []core.Precision
	// Threads is the solver parallelism per optimization run.
	Threads int
	// Seed makes the workload reproducible.
	Seed int64
	// Metric/Op select the cost model (paper: hash joins).
	Metric cost.Metric
	Op     cost.Operator
	// DPMaxTables bounds the DP's subset table budget (memory guard).
	DPMaxTables int
}

// WithDefaults fills in a laptop-scale version of the paper's setup; pass
// explicit Sizes/Timeout to reproduce the full grid.
func (c Figure2Config) WithDefaults() Figure2Config {
	if c.Shapes == nil {
		c.Shapes = workload.Shapes()
	}
	if c.Sizes == nil {
		c.Sizes = []int{10, 20, 30, 40, 50, 60}
	}
	if c.QueriesPerCell <= 0 {
		c.QueriesPerCell = 20
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Samples <= 0 {
		c.Samples = 10
	}
	if c.Precisions == nil {
		c.Precisions = core.Precisions()
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Metric == cost.OperatorCost && c.Op == 0 {
		c.Op = cost.HashJoin
	}
	if c.DPMaxTables <= 0 {
		c.DPMaxTables = 24
	}
	return c
}

// AlgorithmName identifies one plotted series.
func AlgorithmName(prec core.Precision) string {
	return fmt.Sprintf("ILP (%s precision)", prec)
}

// DPName is the dynamic programming series label.
const DPName = "DP"

// Figure2Cell is one subplot of Figure 2: median Cost/LB ratios over the
// sample grid for each algorithm, for one (shape, size) cell.
type Figure2Cell struct {
	Shape  workload.GraphShape
	Tables int
	// Times is the sample grid (shared by all series).
	Times []time.Duration
	// Series maps algorithm name → median Cost/LB ratio at each sample
	// time (+Inf where the median run has no plan yet).
	Series map[string][]float64
}

// Figure2 regenerates the data behind Figure 2. Cells are processed in
// order; the optional progress callback is invoked after each cell.
func Figure2(ctx context.Context, cfg Figure2Config, progress func(cell Figure2Cell)) ([]Figure2Cell, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.WithDefaults()
	times := make([]time.Duration, cfg.Samples)
	for i := range times {
		times[i] = cfg.Timeout * time.Duration(i+1) / time.Duration(cfg.Samples)
	}

	var cells []Figure2Cell
	for _, shape := range cfg.Shapes {
		for _, n := range cfg.Sizes {
			cell := Figure2Cell{
				Shape:  shape,
				Tables: n,
				Times:  times,
				Series: map[string][]float64{},
			}
			ratios := map[string][][]float64{} // name → per-query ratio rows
			for qi := 0; qi < cfg.QueriesPerCell; qi++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				q := workload.Generate(shape, n, cfg.Seed+int64(qi), workload.Config{})

				tr := runDP(ctx, q, cfg)
				ratios[DPName] = append(ratios[DPName], sampleTrace(tr, times))

				for _, prec := range cfg.Precisions {
					tr, err := runMILP(ctx, q, cfg, prec)
					if err != nil {
						return nil, err
					}
					name := AlgorithmName(prec)
					ratios[name] = append(ratios[name], sampleTrace(tr, times))
				}
			}
			for name, rows := range ratios {
				med := make([]float64, len(times))
				for ti := range times {
					col := make([]float64, len(rows))
					for ri := range rows {
						col[ri] = rows[ri][ti]
					}
					med[ti] = median(col)
				}
				cell.Series[name] = med
			}
			if progress != nil {
				progress(cell)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// runDP runs the dynamic programming baseline under the timeout. DP has no
// anytime behaviour: the trace is empty until DP finishes, then the plan is
// optimal (ratio 1).
func runDP(ctx context.Context, q *qopt.Query, cfg Figure2Config) *Trace {
	tr := &Trace{}
	spec := cost.Spec{Metric: cfg.Metric, Op: cfg.Op, Params: cost.Params{}.WithDefaults()}
	start := time.Now()
	_, optCost, err := dp.OptimizeLeftDeep(ctx, q, spec, dp.Options{
		Deadline:  start.Add(cfg.Timeout),
		MaxTables: cfg.DPMaxTables,
	})
	if err != nil {
		return tr // too large or timed out: no plan within the budget
	}
	elapsed := time.Since(start)
	tr.Add(elapsed, optCost, optCost) // optimal: Cost/LB = 1 from here on
	return tr
}

// runMILP optimizes via the MILP encoding, reconstructing the anytime
// trajectory from the solver's structured event stream: incumbent and
// bound events carry the anytime state every other event kind shares, so
// the trace needs no ad-hoc solver hooks.
func runMILP(ctx context.Context, q *qopt.Query, cfg Figure2Config, prec core.Precision) (*Trace, error) {
	tr := &Trace{}
	opts := core.Options{
		Precision: prec,
		Metric:    cfg.Metric,
		Op:        cfg.Op,
	}
	res, err := core.Optimize(ctx, q, opts, solver.Params{
		TimeLimit: cfg.Timeout,
		Threads:   cfg.Threads,
		OnEvent: func(ev solver.Event) {
			if ev.Kind != solver.KindIncumbent && ev.Kind != solver.KindBound {
				return
			}
			inc := math.Inf(1)
			if ev.HasIncumbent {
				inc = ev.Incumbent
			}
			tr.Add(ev.Elapsed, inc, ev.Bound)
		},
	})
	if err != nil {
		return nil, err
	}
	// Record the final state (bound improvements after the last
	// callback, or a solve that finished before the first sample).
	if res.Plan != nil {
		tr.Add(res.Solver.Elapsed, res.MILPObj, res.Solver.Bound)
	}
	return tr, nil
}

// sampleTrace evaluates the Cost/LB ratio on the sample grid.
func sampleTrace(tr *Trace, times []time.Duration) []float64 {
	out := make([]float64, len(times))
	for i, tm := range times {
		out[i] = tr.RatioAt(tm)
	}
	return out
}
