// Package experiments regenerates the paper's evaluation: Figure 1 (MILP
// model size versus query size for the three precision configurations) and
// Figure 2 (anytime plan quality — the Cost / lower-bound ratio over
// optimization time — for dynamic programming and the three MILP
// configurations across join graph shapes and query sizes).
package experiments

import (
	"fmt"
	"sort"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/milp"
	"milpjoin/internal/workload"
)

// Figure1Config parameterises the model-size census.
type Figure1Config struct {
	// Sizes lists the table counts (paper: 10, 20, …, 60).
	Sizes []int
	// QueriesPerSize is the number of random queries per size (paper: 20).
	QueriesPerSize int
	// Shape is the join graph structure (paper reports star; chain and
	// cycle differ only marginally).
	Shape workload.GraphShape
	// Seed makes the census reproducible.
	Seed int64
	// Metric/Op select the encoded objective (paper: hash joins).
	Metric cost.Metric
	Op     cost.Operator
}

// WithDefaults fills in the paper's configuration.
func (c Figure1Config) WithDefaults() Figure1Config {
	if c.Sizes == nil {
		c.Sizes = []int{10, 20, 30, 40, 50, 60}
	}
	if c.QueriesPerSize <= 0 {
		c.QueriesPerSize = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Metric == cost.OperatorCost && c.Op == 0 {
		c.Op = cost.HashJoin
	}
	return c
}

// Figure1Row is one point of Figure 1: the median number of variables and
// constraints of the MILP encoding for one query size and precision.
type Figure1Row struct {
	Tables         int
	Precision      core.Precision
	MedianVars     int
	MedianConstrs  int
	MedianNonzeros int
	Thresholds     int // threshold count per intermediate result
}

// Figure1 regenerates the data behind Figure 1.
func Figure1(cfg Figure1Config) ([]Figure1Row, error) {
	cfg = cfg.WithDefaults()
	var rows []Figure1Row
	for _, n := range cfg.Sizes {
		for _, prec := range core.Precisions() {
			var vars, constrs, nnz []int
			thresholds := 0
			for qi := 0; qi < cfg.QueriesPerSize; qi++ {
				q := workload.Generate(cfg.Shape, n, cfg.Seed+int64(qi), workload.Config{})
				enc, err := core.Encode(q, core.Options{
					Precision: prec,
					Metric:    cfg.Metric,
					Op:        cfg.Op,
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: encode n=%d: %w", n, err)
				}
				s := enc.Stats()
				vars = append(vars, s.Vars)
				constrs = append(constrs, s.Constrs)
				nnz = append(nnz, s.Nonzeros)
				thresholds = len(enc.Thresholds)
			}
			rows = append(rows, Figure1Row{
				Tables:         n,
				Precision:      prec,
				MedianVars:     medianInt(vars),
				MedianConstrs:  medianInt(constrs),
				MedianNonzeros: medianInt(nnz),
				Thresholds:     thresholds,
			})
		}
	}
	return rows, nil
}

func medianInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int(nil), xs...)
	sort.Ints(s)
	return s[len(s)/2]
}

// ModelSnapshot re-exports the underlying size snapshot type for callers.
type ModelSnapshot = milp.Snapshot
