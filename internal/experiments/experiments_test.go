package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/workload"
)

func TestFigure1ShapesAndGrowth(t *testing.T) {
	rows, err := Figure1(Figure1Config{
		Sizes:          []int{10, 20, 30},
		QueriesPerSize: 3,
		Shape:          workload.Star,
		Metric:         cost.OperatorCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 3 sizes × 3 precisions
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	// Model size must grow with table count for each precision, and with
	// precision for each table count.
	byPrec := map[core.Precision][]Figure1Row{}
	for _, r := range rows {
		byPrec[r.Precision] = append(byPrec[r.Precision], r)
	}
	for prec, rs := range byPrec {
		for i := 1; i < len(rs); i++ {
			if rs[i].MedianVars <= rs[i-1].MedianVars {
				t.Errorf("%v: vars not growing with tables: %d → %d", prec, rs[i-1].MedianVars, rs[i].MedianVars)
			}
			if rs[i].MedianConstrs <= rs[i-1].MedianConstrs {
				t.Errorf("%v: constraints not growing with tables", prec)
			}
		}
	}
	for i := 0; i < len(rows); i += 3 {
		high, med, low := rows[i], rows[i+1], rows[i+2]
		if !(high.MedianVars > med.MedianVars && med.MedianVars > low.MedianVars) {
			t.Errorf("tables=%d: precision ordering violated: %d / %d / %d",
				high.Tables, high.MedianVars, med.MedianVars, low.MedianVars)
		}
	}
}

func TestFigure1MatchesTheorem(t *testing.T) {
	rows, err := Figure1(Figure1Config{
		Sizes:          []int{10, 40},
		QueriesPerSize: 2,
		Shape:          workload.Star,
		Metric:         cost.OperatorCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		n := r.Tables
		m := n - 1 // star graph predicates
		bound := 4 * n * (n + m + r.Thresholds)
		if r.MedianVars > bound {
			t.Errorf("n=%d %v: %d vars above O(n(n+m+l)) bound %d", n, r.Precision, r.MedianVars, bound)
		}
		if r.MedianConstrs > 6*n*(n+m+r.Thresholds) {
			t.Errorf("n=%d %v: %d constraints above bound", n, r.Precision, r.MedianConstrs)
		}
	}
}

func smallFigure2Config() Figure2Config {
	return Figure2Config{
		Shapes:         []workload.GraphShape{workload.Star},
		Sizes:          []int{6},
		QueriesPerCell: 2,
		Timeout:        2 * time.Second,
		Samples:        4,
		Precisions:     []core.Precision{core.PrecisionMedium},
		Threads:        2,
		Metric:         cost.OperatorCost,
	}
}

func TestFigure2SmallGrid(t *testing.T) {
	cells, err := Figure2(context.Background(), smallFigure2Config(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	cell := cells[0]
	if len(cell.Times) != 4 {
		t.Fatalf("times = %v", cell.Times)
	}
	dpSeries, ok := cell.Series[DPName]
	if !ok {
		t.Fatal("missing DP series")
	}
	milpSeries, ok := cell.Series[AlgorithmName(core.PrecisionMedium)]
	if !ok {
		t.Fatal("missing MILP series")
	}
	// On 6-table queries both finish almost immediately: DP reaches
	// ratio 1 and the MILP ratio must be finite and ≥ 1 (and reach its
	// optimum, i.e. a small ratio, by the last sample).
	last := len(cell.Times) - 1
	if dpSeries[last] != 1 {
		t.Errorf("DP final ratio = %g, want 1", dpSeries[last])
	}
	if math.IsInf(milpSeries[last], 1) || milpSeries[last] < 1 {
		t.Errorf("MILP final ratio = %g", milpSeries[last])
	}
	// Ratios are monotonically non-increasing over time.
	for _, series := range cell.Series {
		for i := 1; i < len(series); i++ {
			if series[i] > series[i-1]+1e-9 {
				t.Errorf("ratio increased over time: %v", series)
			}
		}
	}
}

func TestTraceSemantics(t *testing.T) {
	tr := &Trace{}
	if !math.IsInf(tr.RatioAt(time.Second), 1) {
		t.Error("empty trace should have infinite ratio")
	}
	tr.Add(1*time.Second, 100, 50)
	tr.Add(2*time.Second, 80, 60)
	tr.Add(3*time.Second, 90, 55) // regressions must be clamped
	if got := tr.RatioAt(500 * time.Millisecond); !math.IsInf(got, 1) {
		t.Errorf("ratio before first event = %g", got)
	}
	if got := tr.RatioAt(1 * time.Second); got != 2 {
		t.Errorf("ratio at 1s = %g, want 2", got)
	}
	if got := tr.RatioAt(2 * time.Second); math.Abs(got-80.0/60.0) > 1e-12 {
		t.Errorf("ratio at 2s = %g", got)
	}
	if got := tr.RatioAt(3 * time.Second); math.Abs(got-80.0/60.0) > 1e-12 {
		t.Errorf("ratio at 3s = %g (clamping failed)", got)
	}
	// Incumbent below bound collapses to 1.
	tr2 := &Trace{}
	tr2.Add(time.Second, 10, 10)
	if got := tr2.RatioAt(time.Second); got != 1 {
		t.Errorf("optimal ratio = %g, want 1", got)
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %g", got)
	}
	if got := median([]float64{1, math.Inf(1), math.Inf(1)}); !math.IsInf(got, 1) {
		t.Errorf("median with infs = %g", got)
	}
	if !math.IsNaN(median(nil)) {
		t.Error("median of empty should be NaN")
	}
}

func TestRenderFigure1(t *testing.T) {
	rows := []Figure1Row{
		{Tables: 10, Precision: core.PrecisionHigh, MedianVars: 100, MedianConstrs: 120, MedianNonzeros: 300, Thresholds: 25},
	}
	var sb strings.Builder
	RenderFigure1(&sb, rows)
	for _, want := range []string{"Figure 1", "high", "100", "120"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
	sb.Reset()
	RenderFigure1CSV(&sb, rows)
	if !strings.Contains(sb.String(), "10,high,100,120,300,25") {
		t.Errorf("CSV output wrong:\n%s", sb.String())
	}
}

func TestRenderFigure2(t *testing.T) {
	cell := Figure2Cell{
		Shape:  workload.Chain,
		Tables: 10,
		Times:  []time.Duration{time.Second, 2 * time.Second},
		Series: map[string][]float64{
			DPName:                           {math.Inf(1), 1},
			AlgorithmName(core.PrecisionLow): {2.5, 1.2},
		},
	}
	var sb strings.Builder
	RenderFigure2(&sb, []Figure2Cell{cell})
	out := sb.String()
	for _, want := range []string{"chain, 10 tables", "DP", "ILP (low precision)", "inf", "1.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	RenderFigure2CSV(&sb, []Figure2Cell{cell})
	if !strings.Contains(sb.String(), "chain,10,DP,1.000,inf") {
		t.Errorf("CSV wrong:\n%s", sb.String())
	}
}

func TestFormatRatio(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1): "inf",
		1:           "1",
		1.25:        "1.25",
		12345:       "1.23e+04",
	}
	for v, want := range cases {
		if got := formatRatio(v); got != want {
			t.Errorf("formatRatio(%g) = %q, want %q", v, got, want)
		}
	}
	if formatRatio(math.NaN()) != "nan" {
		t.Error("NaN formatting")
	}
}

func TestHeuristicComparisonSmall(t *testing.T) {
	rows, err := HeuristicComparison(context.Background(), HeuristicComparisonConfig{
		Shape:   workload.Star,
		Tables:  6,
		Queries: 2,
		Budget:  500 * time.Millisecond,
		Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	provenSeen := false
	for _, r := range rows {
		if r.MedianCostRatio < 1-1e-9 {
			t.Errorf("%s: ratio %g below 1 (best-of definition broken)", r.Algorithm, r.MedianCostRatio)
		}
		if r.ProvenBound {
			provenSeen = true
			if math.IsInf(r.MedianProvenFactor, 1) || r.MedianProvenFactor < 1 {
				t.Errorf("MILP proven factor = %g", r.MedianProvenFactor)
			}
		} else if !math.IsInf(r.MedianProvenFactor, 1) {
			t.Errorf("%s: heuristic claims a proven factor %g", r.Algorithm, r.MedianProvenFactor)
		}
	}
	if !provenSeen {
		t.Error("no algorithm with proven bounds in the comparison")
	}
}

func TestRenderHeuristicComparison(t *testing.T) {
	rows := []HeuristicComparisonRow{
		{Algorithm: "ILP", MedianCostRatio: 1, ProvenBound: true, MedianProvenFactor: 1.5},
		{Algorithm: "SA", MedianCostRatio: 1.2, ProvenBound: false, MedianProvenFactor: math.Inf(1)},
	}
	var sb strings.Builder
	RenderHeuristicComparison(&sb, rows)
	out := sb.String()
	for _, want := range []string{"ILP", "1.5", "SA", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
