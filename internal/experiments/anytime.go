package experiments

import (
	"math"
	"sort"
	"time"
)

// TraceEvent is one anytime observation: at Elapsed, the best incumbent
// objective seen so far and the proven lower bound.
type TraceEvent struct {
	Elapsed   time.Duration
	Incumbent float64 // +Inf while no plan exists
	Bound     float64
}

// Trace is a time-ordered sequence of anytime observations for one
// optimizer run.
type Trace struct {
	Events []TraceEvent
}

// Add appends an observation (kept monotone: incumbents only improve,
// bounds only rise).
func (t *Trace) Add(elapsed time.Duration, incumbent, bound float64) {
	if len(t.Events) > 0 {
		last := t.Events[len(t.Events)-1]
		if incumbent > last.Incumbent {
			incumbent = last.Incumbent
		}
		if bound < last.Bound {
			bound = last.Bound
		}
	}
	t.Events = append(t.Events, TraceEvent{Elapsed: elapsed, Incumbent: incumbent, Bound: bound})
}

// RatioAt returns the Cost / lower-bound ratio proven at time tm: the best
// incumbent divided by the best bound among events up to tm. It returns
// +Inf while no incumbent exists (the paper's criterion: the only
// guarantee available at optimization time).
func (t *Trace) RatioAt(tm time.Duration) float64 {
	inc := math.Inf(1)
	bound := math.Inf(-1)
	for _, ev := range t.Events {
		if ev.Elapsed > tm {
			break
		}
		if ev.Incumbent < inc {
			inc = ev.Incumbent
		}
		if ev.Bound > bound {
			bound = ev.Bound
		}
	}
	if math.IsInf(inc, 1) {
		return math.Inf(1)
	}
	if bound <= 0 || math.IsInf(bound, -1) {
		// Degenerate bound: no multiplicative guarantee available.
		return math.Inf(1)
	}
	if inc <= bound {
		return 1
	}
	return inc / bound
}

// median returns the median of a slice, treating +Inf values as largest.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
