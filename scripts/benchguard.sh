#!/usr/bin/env bash
# benchguard.sh OLD NEW [THRESHOLD_PCT]
#
# Compares two `go test -bench` output files and fails (exit 1) when any
# benchmark present in both regressed in mean wall time (ns/op) by more
# than THRESHOLD_PCT percent (default 10). Multiple -count runs of the
# same benchmark are averaged. Benchmarks that appear on only one side
# (added or removed) are ignored.
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 old.txt new.txt [threshold-pct]" >&2
    exit 2
fi
old=$1
new=$2
thr=${3:-10}

awk -v thr="$thr" '
    FNR == 1 { fileno++ }
    /^Benchmark/ && $3+0 > 0 && $4 == "ns/op" {
        name = $1
        sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
        if (fileno == 1) { osum[name] += $3; ocnt[name]++ }
        else             { nsum[name] += $3; ncnt[name]++ }
    }
    END {
        bad = 0
        compared = 0
        for (name in nsum) {
            if (!(name in osum)) continue
            compared++
            o = osum[name] / ocnt[name]
            n = nsum[name] / ncnt[name]
            pct = (n - o) / o * 100
            status = "ok"
            if (pct > thr) { status = sprintf("REGRESSION > %s%%", thr); bad = 1 }
            printf "%-50s old %14.0f ns/op   new %14.0f ns/op   %+7.1f%%   %s\n", name, o, n, pct, status
        }
        if (compared == 0) {
            print "benchguard: no common benchmarks to compare" > "/dev/stderr"
            exit 2
        }
        exit bad
    }
' "$old" "$new"
