// Large-graph benchmarks: the hybrid decomposition strategy on 100-200
// table queries, against the greedy baseline — the only other strategy
// that answers at that scale in bounded time. Written as a
// BENCH_pr7.json snapshot for CI artifacts.
package milpjoin_test

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// BenchmarkHybridLargeGraph solves the large-graph band — snowflake
// queries at 100/150/200 tables plus a dense 40-table clique — with the
// hybrid strategy under a fixed budget and with greedy, recording plan
// cost, proven bound, wall time, and the hybrid/greedy cost ratio.
// Acceptance (guarded here, snapshotted to BENCH_pr7.json): every solve
// returns a complete valid plan with a finite positive bound inside the
// budget plus scheduling slack.
func BenchmarkHybridLargeGraph(b *testing.B) {
	type run struct {
		Tables      int     `json:"tables"`
		Shape       string  `json:"shape"`
		HybridCost  float64 `json:"hybrid_cost"`
		HybridBound float64 `json:"hybrid_bound"`
		HybridSec   float64 `json:"hybrid_sec"`
		GreedyCost  float64 `json:"greedy_cost"`
		GreedySec   float64 `json:"greedy_sec"`
		CostRatio   float64 `json:"hybrid_over_greedy"`
		Status      string  `json:"status"`
	}
	type snapshot struct {
		BudgetSec float64        `json:"budget_sec"`
		Band      map[string]run `json:"band"`
	}

	const budget = 3 * time.Second
	cases := []struct {
		name  string
		shape workload.GraphShape
		n     int
	}{
		{"Snowflake100", workload.Snowflake, 100},
		{"Snowflake150", workload.Snowflake, 150},
		{"Snowflake200", workload.Snowflake, 200},
		{"Clique40", workload.Clique, 40},
	}

	out := snapshot{BudgetSec: budget.Seconds(), Band: map[string]run{}}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			// Moderate cardinalities (10..1000 rows) keep even 200-table
			// plan costs inside float64 range, so the cost ratios below
			// stay meaningful.
			q := workload.Generate(tc.shape, tc.n, 1, workload.Config{MinLogCard: 1, MaxLogCard: 3})
			var r run
			r.Tables, r.Shape = tc.n, tc.shape.String()
			for i := 0; i < b.N; i++ {
				gs := time.Now()
				greedy, err := joinorder.Optimize(context.Background(), q, joinorder.Options{Strategy: "greedy"})
				if err != nil {
					b.Fatalf("greedy: %v", err)
				}
				r.GreedySec = time.Since(gs).Seconds()
				r.GreedyCost = greedy.Cost

				hs := time.Now()
				hyb, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
					Strategy: "hybrid",
					Budget:   joinorder.Budget{TimeLimit: budget},
				})
				if err != nil {
					b.Fatalf("hybrid: %v", err)
				}
				elapsed := time.Since(hs)
				r.HybridSec = elapsed.Seconds()
				r.HybridCost = hyb.Cost
				r.HybridBound = hyb.Bound
				r.CostRatio = hyb.Cost / greedy.Cost
				r.Status = hyb.Status.String()

				if hyb.Plan == nil || len(hyb.Plan.Order) != tc.n {
					b.Fatalf("no complete %d-table plan", tc.n)
				}
				if err := hyb.Plan.Validate(q); err != nil {
					b.Fatalf("invalid hybrid plan: %v", err)
				}
				if math.IsInf(hyb.Bound, 0) || math.IsNaN(hyb.Bound) || hyb.Bound < 0 {
					b.Errorf("bound %g not finite and non-negative", hyb.Bound)
				}
				if elapsed > 2*budget+2*time.Second {
					b.Errorf("hybrid took %v against a %v budget", elapsed, budget)
				}
				b.ReportMetric(r.CostRatio, "cost-ratio")
			}
			out.Band[tc.name] = r
		})
	}

	path := os.Getenv("BENCH_PR7_OUT")
	if path == "" {
		path = "BENCH_pr7.json"
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
