// Portfolio benchmarks: time-to-target-gap of the strategy=auto race
// against every fixed strategy on the paper's hard shapes, and the
// live-injection activity on the merged event stream. Written as a
// BENCH_pr6.json snapshot for CI artifacts.
package milpjoin_test

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// fin maps non-finite gaps (unproven runs) to -1 for the JSON snapshot.
func fin(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return x
}

// gapPoint is one (elapsed, proven gap) sample from an event stream.
type gapPoint struct {
	elapsed time.Duration
	gap     float64
}

// gapTrace records the proven-gap trajectory of one optimize call, so a
// time-to-target can be computed after the target is known.
type gapTrace struct {
	points   []gapPoint
	injected int
}

func (tr *gapTrace) onEvent(ev joinorder.Event) {
	if ev.Kind == joinorder.KindInjected {
		tr.injected++
	}
	if ev.HasIncumbent && !math.IsInf(ev.Gap, 0) && !math.IsNaN(ev.Gap) {
		tr.points = append(tr.points, gapPoint{ev.Elapsed, ev.Gap})
	}
}

// timeTo returns the first elapsed at which the trace's proven gap reached
// target, or 0/false if it never did.
func (tr *gapTrace) timeTo(target float64) (time.Duration, bool) {
	for _, p := range tr.points {
		if p.gap <= target*(1+1e-9) {
			return p.elapsed, true
		}
	}
	return 0, false
}

// BenchmarkPortfolioAuto races strategy=auto against each fixed strategy
// on Star20 / Chain30 / Clique15 and measures time-to-target-gap, where
// the target is the best proven gap any fixed strategy reaches within the
// 2 s budget. Auto additionally runs at 0.5 s and 1 s budgets for the
// anytime profile. Acceptance (guarded here, snapshotted to
// BENCH_pr6.json): on Star20 auto reaches the target gap within 110% of
// the fastest fixed strategy's time, and the live incumbent injections
// are visible on the merged event stream.
func BenchmarkPortfolioAuto(b *testing.B) {
	type autoRun struct {
		BudgetSec   float64 `json:"budget_sec"`
		Gap         float64 `json:"gap"`
		Cost        float64 `json:"cost"`
		Winner      string  `json:"winner"`
		Injected    int     `json:"injected_incumbents"`
		TimeToTgSec float64 `json:"time_to_target_gap_sec"`
		ReachedTg   bool    `json:"reached_target_gap"`
	}
	type fixedRun struct {
		Gap         float64 `json:"gap"`
		Cost        float64 `json:"cost"`
		TimeToTgSec float64 `json:"time_to_target_gap_sec"`
		ReachedTg   bool    `json:"reached_target_gap"`
		Err         string  `json:"err,omitempty"`
	}
	type topoResult struct {
		TargetGap float64              `json:"target_gap"`
		BestFixed string               `json:"best_fixed"`
		Fixed     map[string]*fixedRun `json:"fixed"`
		Auto      []*autoRun           `json:"auto"`
	}
	type injectionRun struct {
		Query    string  `json:"query"`
		Injected int     `json:"injected_incumbents"`
		Winner   string  `json:"winner"`
		Cost     float64 `json:"cost"`
		Gap      float64 `json:"gap"`
	}
	type snapshot struct {
		Topologies      map[string]*topoResult `json:"topologies"`
		InjectionRescue *injectionRun          `json:"injection_rescue"`
	}

	const budget = 2 * time.Second
	topologies := []struct {
		name  string
		shape workload.GraphShape
		n     int
		seed  int64
	}{
		{"Star20", workload.Star, 20, 2},
		{"Chain30", workload.Chain, 30, 3},
		{"Clique15", workload.Clique, 15, 4},
	}
	strategies := []string{"milp", "dpconv", "gradient", "greedy"}

	baseOpts := func(limit time.Duration) joinorder.Options {
		return joinorder.Options{
			Precision: joinorder.PrecisionMedium,
			TimeLimit: limit,
			Threads:   2,
			Seed:      1,
		}
	}

	out := &snapshot{Topologies: map[string]*topoResult{}}
	for i := 0; i < b.N; i++ {
		for _, topo := range topologies {
			q := workload.Generate(topo.shape, topo.n, topo.seed, workload.Config{})
			tr := &topoResult{Fixed: map[string]*fixedRun{}}
			traces := map[string]*gapTrace{}

			// Fixed baselines at the full budget, trajectories recorded.
			for _, strat := range strategies {
				trace := &gapTrace{}
				opts := baseOpts(budget)
				opts.Strategy = strat
				opts.OnEvent = trace.onEvent
				res, err := joinorder.Optimize(context.Background(), q, opts)
				fr := &fixedRun{}
				if err != nil {
					// dpconv exceeds its table cap on Chain30; a member
					// that cannot run simply has no baseline.
					fr.Err = err.Error()
				} else {
					fr.Gap, fr.Cost = fin(res.Gap), res.Cost
					traces[strat] = trace
				}
				tr.Fixed[strat] = fr
			}

			// The target: best proven gap any fixed strategy reached.
			tr.TargetGap = math.Inf(1)
			for _, fr := range tr.Fixed {
				if fr.Err == "" && fr.Gap >= 0 && fr.Gap < tr.TargetGap {
					tr.TargetGap = fr.Gap
				}
			}
			bestFixedT := time.Duration(math.MaxInt64)
			for strat, trace := range traces {
				if t, ok := trace.timeTo(tr.TargetGap); ok {
					tr.Fixed[strat].TimeToTgSec = t.Seconds()
					tr.Fixed[strat].ReachedTg = true
					if t < bestFixedT {
						bestFixedT, tr.BestFixed = t, strat
					}
				}
			}

			// Auto at three budgets over the merged portfolio stream.
			for _, ab := range []time.Duration{budget / 4, budget / 2, budget} {
				trace := &gapTrace{}
				opts := baseOpts(ab)
				opts.Strategy = "auto"
				opts.OnEvent = trace.onEvent
				res, err := joinorder.Optimize(context.Background(), q, opts)
				if err != nil {
					b.Fatalf("%s auto@%v: %v", topo.name, ab, err)
				}
				ar := &autoRun{
					BudgetSec: ab.Seconds(),
					Gap:       fin(res.Gap),
					Cost:      res.Cost,
					Winner:    res.Winner,
					Injected:  trace.injected,
				}
				if t, ok := trace.timeTo(tr.TargetGap); ok {
					ar.TimeToTgSec, ar.ReachedTg = t.Seconds(), true
				}
				tr.Auto = append(tr.Auto, ar)
			}
			out.Topologies[topo.name] = tr

			if topo.name == "Star20" {
				full := tr.Auto[len(tr.Auto)-1]
				b.ReportMetric(full.TimeToTgSec, "star20-auto-t2g-s")
				b.ReportMetric(bestFixedT.Seconds(), "star20-fixed-t2g-s")
				b.ReportMetric(float64(full.Injected), "star20-injected")
				// The race is a parallelism feature: on a starved box the
				// members serialize and the comparison measures the
				// scheduler, not the portfolio. Assert the wall-clock bar
				// only when every default member can actually run
				// concurrently (the milp member alone uses 2 threads).
				assertable := runtime.GOMAXPROCS(0) >= len(joinorder.DefaultPortfolio())
				switch {
				case !full.ReachedTg:
					b.Errorf("Star20: auto never reached the target gap %.4f within %v", tr.TargetGap, budget)
				case !assertable:
					b.Logf("Star20: auto t2g %.3fs vs best fixed (%s) %.3fs; %d CPUs < %d members, wall-clock bar not asserted",
						full.TimeToTgSec, tr.BestFixed, bestFixedT.Seconds(), runtime.GOMAXPROCS(0), len(joinorder.DefaultPortfolio()))
				case tr.BestFixed != "" && full.TimeToTgSec > 1.10*bestFixedT.Seconds():
					b.Errorf("Star20: auto time-to-gap %.3fs exceeds best fixed (%s) %.3fs by more than 10%%",
						full.TimeToTgSec, tr.BestFixed, bestFixedT.Seconds())
				}
			}
		}

		// Injection visibility: seed the MILP member with a deliberately
		// bad initial plan, so a peer's early publication must rescue it
		// through the live incumbent feed. On easier fixtures the peers'
		// plans map — under the threshold approximation — to objectives no
		// better than the MILP's own greedy seed, so offers stay invisible;
		// the bad seed makes the first bus publication a strict
		// model-space improvement, installed and emitted as KindInjected.
		{
			const n = 26
			q := workload.Generate(workload.Cycle, n, 9, workload.Config{})
			trace := &gapTrace{}
			opts := baseOpts(5 * time.Second)
			opts.Strategy = "auto"
			opts.OnEvent = trace.onEvent
			opts.InitialPlan = &joinorder.Plan{Order: rand.New(rand.NewSource(99)).Perm(n)}
			res, err := joinorder.Optimize(context.Background(), q, opts)
			if err != nil {
				b.Fatalf("injection fixture: %v", err)
			}
			out.InjectionRescue = &injectionRun{
				Query:    "Cycle26",
				Injected: trace.injected,
				Winner:   res.Winner,
				Cost:     res.Cost,
				Gap:      fin(res.Gap),
			}
			b.ReportMetric(float64(trace.injected), "cycle26-injected")
			if trace.injected < 1 {
				b.Errorf("injection fixture: no KindInjected events on the merged stream (winner %s)", res.Winner)
			}
		}
	}

	for _, tr := range out.Topologies {
		tr.TargetGap = fin(tr.TargetGap)
	}
	path := os.Getenv("BENCH_PR6_OUT")
	if path == "" {
		path = "BENCH_pr6.json"
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
