// Benchmarks regenerating the paper's evaluation (one benchmark family per
// figure) plus ablations over the design choices called out in DESIGN.md.
//
// Figure-2-style benchmarks run one full optimization per iteration under a
// small time budget and report the proven Cost/LB gap as a custom metric;
// absolute numbers depend on the machine, but the paper's shape — the MILP
// approach returns guaranteed-quality plans on query sizes where dynamic
// programming returns nothing — is visible directly in the metrics.
package milpjoin_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"testing"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/experiments"
	"milpjoin/internal/solver"
	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// --- Figure 1: MILP model size census -----------------------------------

func BenchmarkFigure1Census(b *testing.B) {
	cfg := experiments.Figure1Config{
		Sizes:          []int{10, 20, 30, 40, 50, 60},
		QueriesPerSize: 3,
		Shape:          workload.Star,
		Metric:         cost.OperatorCost,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := rows[len(rows)-1]
			b.ReportMetric(float64(last.MedianVars), "vars@60t")
			b.ReportMetric(float64(last.MedianConstrs), "constrs@60t")
		}
	}
}

func benchmarkEncode(b *testing.B, n int, prec core.Precision) {
	q := workload.Generate(workload.Star, n, 1, workload.Config{})
	opts := core.Options{Precision: prec, Metric: cost.OperatorCost, Op: cost.HashJoin}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Encode(q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode20TablesHigh(b *testing.B)   { benchmarkEncode(b, 20, core.PrecisionHigh) }
func BenchmarkEncode60TablesHigh(b *testing.B)   { benchmarkEncode(b, 60, core.PrecisionHigh) }
func BenchmarkEncode60TablesMedium(b *testing.B) { benchmarkEncode(b, 60, core.PrecisionMedium) }
func BenchmarkEncode60TablesLow(b *testing.B)    { benchmarkEncode(b, 60, core.PrecisionLow) }

// --- Figure 2: anytime quality, MILP vs dynamic programming -------------

// benchmarkFigure2Cell optimizes one random query per iteration under a
// small budget and reports the median proven Cost/LB ratio.
func benchmarkFigure2Cell(b *testing.B, shape workload.GraphShape, n int, prec core.Precision, budget time.Duration) {
	opts := core.Options{Precision: prec, Metric: cost.OperatorCost, Op: cost.HashJoin}
	var gapSum float64
	var plans int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := workload.Generate(shape, n, int64(i%5)+1, workload.Config{})
		res, err := core.Optimize(context.Background(), q, opts, solver.Params{TimeLimit: budget, Threads: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan != nil {
			plans++
			if !math.IsInf(res.Solver.Gap, 1) {
				gapSum += res.Solver.Gap
			}
		}
	}
	b.ReportMetric(float64(plans)/float64(b.N), "plans/run")
	b.ReportMetric(gapSum/float64(b.N), "avg-gap")
}

func BenchmarkFigure2Chain10ILPMedium(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Chain, 10, core.PrecisionMedium, 2*time.Second)
}
func BenchmarkFigure2Cycle10ILPMedium(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Cycle, 10, core.PrecisionMedium, 2*time.Second)
}
func BenchmarkFigure2Star10ILPMedium(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Star, 10, core.PrecisionMedium, 2*time.Second)
}
func BenchmarkFigure2Star20ILPMedium(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Star, 20, core.PrecisionMedium, 2*time.Second)
}
func BenchmarkFigure2Star20ILPLow(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Star, 20, core.PrecisionLow, 2*time.Second)
}
func BenchmarkFigure2Star20ILPHigh(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Star, 20, core.PrecisionHigh, 2*time.Second)
}
func BenchmarkFigure2Chain30ILPLow(b *testing.B) {
	benchmarkFigure2Cell(b, workload.Chain, 30, core.PrecisionLow, 2*time.Second)
}

// benchmarkFigure2DP is the baseline side of Figure 2: plain dynamic
// programming under the same budget; plans/run collapses to zero once the
// 2^n table-subset space exceeds the budget.
func benchmarkFigure2DP(b *testing.B, shape workload.GraphShape, n int, budget time.Duration) {
	var plans int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := workload.Generate(shape, n, int64(i%5)+1, workload.Config{})
		_, _, err := dp.OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), dp.Options{
			Deadline: time.Now().Add(budget),
		})
		if err == nil {
			plans++
		} else if !errors.Is(err, dp.ErrTimeout) && !errors.Is(err, dp.ErrTooLarge) {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plans)/float64(b.N), "plans/run")
}

func BenchmarkFigure2Star10DP(b *testing.B) {
	benchmarkFigure2DP(b, workload.Star, 10, 2*time.Second)
}
func BenchmarkFigure2Star20DP(b *testing.B) {
	benchmarkFigure2DP(b, workload.Star, 20, 2*time.Second)
}
func BenchmarkFigure2Chain30DP(b *testing.B) {
	benchmarkFigure2DP(b, workload.Chain, 30, 2*time.Second)
}

// --- Ablations -----------------------------------------------------------

// Threshold-ladder precision ablation: encoding precision versus solve time
// on a query size every configuration can close.
func benchmarkPrecisionAblation(b *testing.B, prec core.Precision) {
	q := workload.Generate(workload.Star, 10, 3, workload.Config{})
	opts := core.Options{Precision: prec, Metric: cost.OperatorCost, Op: cost.HashJoin}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(context.Background(), q, opts, solver.Params{TimeLimit: 30 * time.Second, Threads: 2})
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan == nil {
			b.Fatal("no plan")
		}
	}
}

func BenchmarkAblationPrecisionHigh(b *testing.B) { benchmarkPrecisionAblation(b, core.PrecisionHigh) }
func BenchmarkAblationPrecisionMedium(b *testing.B) {
	benchmarkPrecisionAblation(b, core.PrecisionMedium)
}
func BenchmarkAblationPrecisionLow(b *testing.B) { benchmarkPrecisionAblation(b, core.PrecisionLow) }

// Parallel search ablation (the solver feature the paper highlights).
func benchmarkThreads(b *testing.B, threads int) {
	q := workload.Generate(workload.Chain, 10, 4, workload.Config{})
	opts := core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(context.Background(), q, opts, solver.Params{TimeLimit: 30 * time.Second, Threads: threads}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationThreads1(b *testing.B) { benchmarkThreads(b, 1) }
func BenchmarkAblationThreads4(b *testing.B) { benchmarkThreads(b, 4) }

// Presolve ablation.
func benchmarkPresolve(b *testing.B, disable bool) {
	q := workload.Generate(workload.Star, 10, 5, workload.Config{})
	enc, err := core.Encode(q, core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(context.Background(), enc.Model, solver.Params{TimeLimit: 30 * time.Second, DisablePresolve: disable, Threads: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPresolveOn(b *testing.B)  { benchmarkPresolve(b, false) }
func BenchmarkAblationPresolveOff(b *testing.B) { benchmarkPresolve(b, true) }

// DP baseline scaling (the 2^n wall).
func benchmarkDPScaling(b *testing.B, n int) {
	q := workload.Generate(workload.Star, n, 1, workload.Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := dp.OptimizeLeftDeep(context.Background(), q, cost.DefaultSpec(), dp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDP10Tables(b *testing.B) { benchmarkDPScaling(b, 10) }
func BenchmarkDP15Tables(b *testing.B) { benchmarkDPScaling(b, 15) }
func BenchmarkDP18Tables(b *testing.B) { benchmarkDPScaling(b, 18) }

// Gomory cut ablation: root cuts on the join encodings (sparse-cut filter
// keeps only cheap ones; the big-M structure limits their value, which is
// itself a finding worth measuring).
func benchmarkCuts(b *testing.B, rounds int) {
	q := workload.Generate(workload.Star, 10, 3, workload.Config{})
	opts := core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(context.Background(), q, opts, solver.Params{TimeLimit: 10 * time.Second, Threads: 2, CutRounds: rounds})
		if err != nil {
			b.Fatal(err)
		}
		if res.Plan == nil {
			b.Fatal("no plan")
		}
	}
}

func BenchmarkAblationCutsOff(b *testing.B)     { benchmarkCuts(b, 0) }
func BenchmarkAblationCuts2Rounds(b *testing.B) { benchmarkCuts(b, 2) }

// MIP-start ablation: the greedy warm start that anchors the anytime
// behaviour (disabled by passing an explicit empty InitialSolution is not
// possible, so this measures the full pipeline against raw solver.Solve).
func BenchmarkAblationMIPStartOn(b *testing.B) {
	q := workload.Generate(workload.Star, 12, 2, workload.Config{})
	opts := core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Optimize(context.Background(), q, opts, solver.Params{TimeLimit: 2 * time.Second, Threads: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(boolMetric(res.Plan != nil), "has-plan")
		}
	}
}

func BenchmarkAblationMIPStartOff(b *testing.B) {
	q := workload.Generate(workload.Star, 12, 2, workload.Config{})
	enc, err := core.Encode(q, core.Options{Precision: core.PrecisionMedium, Metric: cost.OperatorCost, Op: cost.HashJoin})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := solver.Solve(context.Background(), enc.Model, solver.Params{TimeLimit: 2 * time.Second, Threads: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(boolMetric(res.Solution != nil), "has-plan")
		}
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- Stats baseline ------------------------------------------------------

// BenchmarkStatsBaseline runs the canonical smoke workload through the
// public API and writes the per-phase solver Stats of the final iteration
// to BENCH_baseline.json — a machine-readable effort baseline (per-phase
// timings, simplex iterations, node counts) that the CI benchmark smoke
// job regenerates on every run. Set BENCH_STATS_OUT to redirect the output
// file (CI uses this to write per-PR snapshots next to the baseline).
func BenchmarkStatsBaseline(b *testing.B) {
	cases := []struct {
		name  string
		shape workload.GraphShape
		n     int
	}{
		{"chain8", workload.Chain, 8},
		{"star10", workload.Star, 10},
	}
	baseline := make(map[string]*joinorder.Stats)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			q := workload.Generate(c.shape, c.n, 1, workload.Config{})
			res, err := joinorder.Optimize(context.Background(), q, joinorder.Options{
				Strategy:  "milp",
				TimeLimit: 30 * time.Second,
				Threads:   2,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats == nil {
				b.Fatal("milp result carries no stats")
			}
			baseline[c.name] = res.Stats
		}
	}
	b.ReportMetric(float64(baseline["chain8"].SimplexIters), "simplex-iters")
	b.ReportMetric(float64(baseline["chain8"].Nodes), "nodes")
	data, err := json.MarshalIndent(baseline, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	out := os.Getenv("BENCH_STATS_OUT")
	if out == "" {
		out = "BENCH_baseline.json"
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		b.Fatal(err)
	}
}
