package joinorder

import (
	"context"
	"fmt"

	"milpjoin/internal/exec"
)

// ExecOptions configure the execution half of OptimizeExecuted.
type ExecOptions struct {
	// DataQuery is the ground truth the data is synthesized from. It must
	// be structurally identical to the optimized query (same tables, same
	// predicate shapes); only cardinalities and selectivities may differ.
	// Nil means the optimized query itself — the optimizer then has
	// perfect statistics. Pass a different DataQuery to model estimation
	// error: optimize against the estimate, execute against the truth.
	DataQuery *Query
	// DataSeed drives the deterministic data synthesis.
	DataSeed int64
	// Feedback enables mid-query adaptive re-optimization: execution
	// pauses at materialization checkpoints between joins, and when a
	// join's measured cardinality misses its estimate by more than
	// QErrorThreshold, the unexecuted remainder of the query is
	// re-optimized with measured cardinalities and corrected
	// selectivities. Without it the plan streams end-to-end unchanged.
	Feedback bool
	// QErrorThreshold is the per-join q-error that triggers
	// re-optimization (default 2; Feedback only).
	QErrorThreshold float64
	// MaxReoptimizations bounds mid-query re-optimizations (default 2;
	// Feedback only).
	MaxReoptimizations int
	// BatchSize is the rows-per-pull granularity of the streaming
	// pipelines (default exec.DefaultBatchSize).
	BatchSize int
}

// JoinObservation is one executed join: the optimizer's estimate at the
// time the join ran next to the measured result size.
type JoinObservation struct {
	// Tables is the sorted set of base tables joined under this node.
	Tables []int `json:"tables"`
	// Estimated and Measured are the predicted and actual result
	// cardinalities; QError is max of their ratio either way (≥ 1).
	Estimated float64 `json:"estimated"`
	Measured  float64 `json:"measured"`
	QError    float64 `json:"qerror"`
}

// Execution is the outcome of OptimizeExecuted: the optimization result
// plus what actually happened when the plan ran.
type Execution struct {
	// Result is the optimization outcome whose plan was executed (the
	// initial plan; under feedback, later joins may follow re-optimized
	// plans).
	Result *Result `json:"-"`
	// Joins lists every executed join in execution order (root last).
	Joins []JoinObservation `json:"joins"`
	// EstimatedCout and ExecutedCout are the C_out metric — the summed
	// sizes of all non-root join results — predicted vs. measured.
	EstimatedCout float64 `json:"estimated_cout"`
	ExecutedCout  float64 `json:"executed_cout"`
	// MaxQError is the worst per-join q-error.
	MaxQError float64 `json:"max_qerror"`
	// ResultRows is the final result cardinality and Fingerprint its
	// order-independent hash (identical across join orders of one query).
	ResultRows  int    `json:"result_rows"`
	Fingerprint uint64 `json:"fingerprint"`
	// Reoptimizations counts mid-query plan replacements (Feedback only).
	Reoptimizations int `json:"reoptimizations"`
	// CorrectedQuery is the optimizer's query with every selectivity
	// correction learned from measured cardinalities applied (Feedback
	// only; nil otherwise).
	CorrectedQuery *Query `json:"corrected_query,omitempty"`
}

// OptimizeExecuted optimizes the query and then actually runs the chosen
// plan against data synthesized to match DataQuery (or the query itself),
// using the streaming executor. It reports estimated next to executed
// cost and, with ExecOptions.Feedback, closes the cardinality feedback
// loop: measured join sizes correct the selectivities mid-query and the
// unexecuted remainder is re-optimized with the same strategy.
func OptimizeExecuted(ctx context.Context, q *Query, opts Options, eo ExecOptions) (*Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := Optimize(ctx, q, opts)
	if err != nil {
		return nil, err
	}

	return ExecuteResult(ctx, res, q, opts, eo)
}

// ExecuteResult runs an already-optimized result against data synthesized
// to match ExecOptions.DataQuery (or q itself): the execution half of
// OptimizeExecuted, split out so serving layers that obtained the result
// elsewhere — e.g. the plan cache — can close the same feedback loop.
// res must carry a Tree (every successful Optimize and cache serve does).
func ExecuteResult(ctx context.Context, res *Result, q *Query, opts Options, eo ExecOptions) (*Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if res == nil || res.Tree == nil {
		return nil, fmt.Errorf("%w: result carries no executable tree", ErrNoPlan)
	}
	dataQ := eo.DataQuery
	if dataQ == nil {
		dataQ = q
	} else if err := dataQ.Validate(); err != nil {
		return nil, fmt.Errorf("%w: data query: %v", ErrInvalidQuery, err)
	}
	db, err := exec.Synthesize(dataQ, eo.DataSeed)
	if err != nil {
		return nil, err
	}
	return executePlan(ctx, db, res, q, opts, eo)
}

// executePlan runs an already-optimized plan against an already-built
// database; OptimizeExecuted is the one-call form.
func executePlan(ctx context.Context, db *exec.Database, res *Result, q *Query, opts Options, eo ExecOptions) (*Execution, error) {
	out := &Execution{Result: res}
	var trace *exec.Trace
	var rel *exec.Relation

	if eo.Feedback {
		reoptOpts := opts
		reoptOpts.InitialPlan = nil // the remainder's table space differs
		ares, err := db.ExecuteAdaptive(ctx, res.Tree, exec.AdaptiveOptions{
			EstQuery:        q,
			QErrorThreshold: eo.QErrorThreshold,
			MaxReopts:       eo.MaxReoptimizations,
			BatchSize:       eo.BatchSize,
			Reoptimize: func(ctx context.Context, remainder *Query) (*Tree, error) {
				r, err := Optimize(ctx, remainder, reoptOpts)
				if err != nil {
					return nil, err
				}
				return r.Tree, nil
			},
		})
		if err != nil {
			return nil, err
		}
		trace, rel = ares.Trace, ares.Result
		out.Reoptimizations = ares.Reopts
		out.CorrectedQuery = ares.CorrectedQuery
	} else {
		run, err := db.Stream(res.Tree, exec.StreamOptions{
			BatchSize: eo.BatchSize,
			EstQuery:  q,
		})
		if err != nil {
			return nil, err
		}
		rel, err = run.Collect()
		if err != nil {
			return nil, err
		}
		trace = run.Trace
	}

	for _, jt := range trace.Joins {
		out.Joins = append(out.Joins, JoinObservation{
			Tables:    jt.Tables,
			Estimated: jt.Estimated,
			Measured:  jt.Measured,
			QError:    jt.QError(),
		})
	}
	out.EstimatedCout = trace.EstimatedCout()
	out.ExecutedCout = trace.MeasuredCout()
	out.MaxQError = trace.MaxQError()
	out.ResultRows = trace.ResultRows
	fp, err := rel.Fingerprint(db.AllColumns())
	if err != nil {
		return nil, err
	}
	out.Fingerprint = fp
	return out, nil
}
