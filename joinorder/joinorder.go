// Package joinorder is the public entry point of the milpjoin library: a
// unified, context-aware API over every join-ordering strategy the
// repository implements — the paper's MILP encoding (Trummer & Koch,
// SIGMOD 2017) solved by the built-in branch-and-bound solver, the
// classical dynamic-programming baselines, IKKBZ, and the randomized
// heuristics of Steinbrunn et al.
//
// The one-call form dispatches through the strategy registry:
//
//	res, err := joinorder.Optimize(ctx, query, joinorder.Options{
//		Strategy:  "milp",
//		TimeLimit: 5 * time.Second,
//	})
//
// Cancellation is first-class, matching the paper's anytime selling
// point: cancel the context mid-solve and the MILP strategy returns
// promptly with StatusCanceled carrying the best plan found so far plus a
// proven lower bound on the optimum. A context deadline composes with
// Options.TimeLimit as the minimum of the two budgets. Strategies without
// anytime behaviour (the DP baselines) return ErrCanceled instead.
//
// The internal/ packages (encoder, solver, simplex, baselines) are
// implementation detail; their APIs may change freely between versions.
package joinorder

import (
	"context"
	"fmt"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/plan"
	"milpjoin/internal/qopt"
	"milpjoin/internal/solver"
)

// Query describes a select-project-join query: base tables with
// cardinalities and join predicates with selectivities. It is the
// library's query representation, re-exported from the internal model so
// external callers can construct queries directly.
type Query = qopt.Query

// Table is a base relation of a Query.
type Table = qopt.Table

// Predicate is a join or selection predicate of a Query.
type Predicate = qopt.Predicate

// Column is a per-table column of a Query (projection extension).
type Column = qopt.Column

// CorrelatedGroup marks predicates with correlated selectivities.
type CorrelatedGroup = qopt.CorrelatedGroup

// Plan is a left-deep join plan: a permutation of the query's tables,
// optionally annotated with a join operator per join.
type Plan = plan.Plan

// Tree is a (possibly bushy) join tree, produced by the dp-bushy strategy
// and derivable from any Plan via Plan.LeftDeep.
type Tree = plan.Tree

// Metric selects how plans are priced.
type Metric = cost.Metric

// Operator is a join operator implementation.
type Operator = cost.Operator

// Precision selects the MILP cardinality approximation tolerance.
type Precision = core.Precision

// Re-exported cost-model and precision constants.
const (
	// Cout minimizes the sum of intermediate result cardinalities.
	Cout = cost.Cout
	// OperatorCost minimizes summed per-join operator costs.
	OperatorCost = cost.OperatorCost

	// HashJoin, SortMergeJoin, and BlockNestedLoopJoin select the
	// operator priced under OperatorCost.
	HashJoin            = cost.HashJoin
	SortMergeJoin       = cost.SortMergeJoin
	BlockNestedLoopJoin = cost.BlockNestedLoopJoin

	// PrecisionHigh/Medium/Low approximate cardinalities within a
	// factor of 3, 10, and 100 respectively (MILP strategy only).
	PrecisionHigh   = core.PrecisionHigh
	PrecisionMedium = core.PrecisionMedium
	PrecisionLow    = core.PrecisionLow
)

// Event is one observation from the solver's structured event stream:
// presolve summary, cut rounds, the root LP relaxation, incumbents, bound
// improvements, heuristic dives, periodic node batches, and worker
// lifecycle. Events marshal to JSON and render as one-line log entries via
// String.
type Event = solver.Event

// EventKind classifies an Event.
type EventKind = solver.EventKind

// Stats aggregates per-phase solver effort: wall time per phase, simplex
// iterations, LU refactorizations, pseudocost initializations, heuristic
// success rates, peak open-node count, and per-worker node counts. Stats
// marshal to JSON and render as a multi-line report via String.
type Stats = solver.Stats

// Event kinds observable on the stream.
const (
	KindPresolve     = solver.KindPresolve
	KindLPRelaxation = solver.KindLPRelaxation
	KindIncumbent    = solver.KindIncumbent
	KindBound        = solver.KindBound
	KindCutRound     = solver.KindCutRound
	KindHeuristic    = solver.KindHeuristic
	KindNodeBatch    = solver.KindNodeBatch
	KindWorkerStart  = solver.KindWorkerStart
	KindWorkerStop   = solver.KindWorkerStop

	// Cache-layer kinds, emitted by the joinorder/cache front-end on the
	// same stream: plan served from cache, lookup miss, request coalesced
	// into an in-flight identical solve, cached plan injected as a MIP
	// start, and deadline-degraded serving.
	KindCacheHit       = solver.KindCacheHit
	KindCacheMiss      = solver.KindCacheMiss
	KindCacheCoalesced = solver.KindCacheCoalesced
	KindWarmStart      = solver.KindWarmStart
	KindDegraded       = solver.KindDegraded

	// Portfolio kinds, observable when Strategy is "auto": a peer
	// incumbent installed mid-solve by branch and bound, member
	// lifecycle, and the race outcome. Events on a portfolio stream
	// carry the emitting member in Event.Strategy, and the incumbent/
	// bound monotonicity guarantees hold per member, not globally.
	KindInjected      = solver.KindInjected
	KindStrategyStart = solver.KindStrategyStart
	KindStrategyStop  = solver.KindStrategyStop
	KindWinner        = solver.KindWinner
)

// PlanUpdate is one anytime plan improvement surfaced by a strategy: the
// strategy's new best plan with its exact cost under the options' cost
// model. Strategies that search in a transformed space (the MILP) surface
// their trajectory on the event stream instead and report the decoded plan
// once, on completion.
type PlanUpdate struct {
	// Strategy is the reporting strategy (the portfolio member name
	// under "auto").
	Strategy string
	// Plan is the new best left-deep plan. Treat it as immutable; it may
	// be shared with concurrent portfolio members.
	Plan *Plan
	// Cost is the plan's exact cost under the options' cost model.
	Cost float64
	// Elapsed is the time since the strategy started.
	Elapsed time.Duration
}

// Options configure an optimization run. The zero value asks the default
// strategy ("milp") for a C_out-optimal plan with no time limit.
type Options struct {
	// Strategy names the registered optimizer to run (default "milp").
	// Strategies() lists the available names. The "auto" strategy races
	// a portfolio of strategies concurrently, feeding every incumbent
	// into the MILP branch and bound as a live MIP start.
	Strategy string

	// Portfolio names the members the "auto" strategy races (default
	// DefaultPortfolio()). Setting it with any other strategy, listing a
	// member twice, nesting "auto" inside itself, or supplying an
	// explicitly empty list is rejected by Validate with
	// ErrInvalidOptions.
	Portfolio []string

	// Metric selects the objective (default Cout).
	Metric Metric
	// Op is the operator priced when Metric is OperatorCost and
	// operator selection is off (default HashJoin).
	Op Operator

	// Budget bundles the run's resource limits (time, gap tolerance,
	// node cap, threads) as one splittable value. Each zero Budget field
	// falls back to the matching deprecated flat field below; a non-zero
	// Budget field always wins. See Budget and Options.EffectiveBudget.
	Budget Budget

	// TimeLimit bounds wall-clock time (zero: none). It composes with
	// the context deadline: the effective budget is the minimum.
	//
	// Deprecated: set Budget.TimeLimit. When both are non-zero,
	// Budget.TimeLimit wins.
	TimeLimit time.Duration
	// Threads is the parallel worker count for strategies that support
	// it (MILP branch and bound; default 1).
	//
	// Deprecated: set Budget.Threads. When both are non-zero,
	// Budget.Threads wins.
	Threads int

	// Precision selects the MILP threshold spacing (default
	// PrecisionMedium; MILP strategy only).
	Precision Precision
	// ThresholdRatio, when > 1, overrides Precision with an explicit
	// geometric spacing (MILP strategy only).
	ThresholdRatio float64
	// CardCap bounds the representable cardinality range (default 1e12;
	// MILP strategy only).
	CardCap float64
	// GapTol is the relative optimality gap at which the MILP search
	// stops (default 1e-6).
	//
	// Deprecated: set Budget.GapTol. When both are non-zero,
	// Budget.GapTol wins.
	GapTol float64
	// MaxNodes bounds explored branch-and-bound nodes (zero: none).
	//
	// Deprecated: set Budget.MaxNodes. When both are non-zero,
	// Budget.MaxNodes wins.
	MaxNodes int

	// ChooseOperators lets the optimizer pick a join operator per join
	// (MILP Section 5.3 extension and the DP baselines).
	ChooseOperators bool
	// InterestingOrders enables the Section 5.4 extension: tuple-order
	// properties and a pre-sorted sort-merge variant. Requires
	// ChooseOperators (MILP strategy only).
	InterestingOrders bool
	// ExpensivePredicates enables the Section 5.1 evaluation-cost
	// extension (MILP strategy only).
	ExpensivePredicates bool

	// MaxDPTables guards the DP strategies against the 2^n memory
	// blow-up (default 24 left-deep, 20 bushy).
	MaxDPTables int

	// PartitionCap bounds partition sizes in the "hybrid" decomposition
	// strategy: the join graph is cut into connected partitions of at
	// most this many tables, each solved independently before stitching
	// (default 15; hybrid strategy only). Values below 2 other than the
	// 0 default are rejected by Validate.
	PartitionCap int
	// SeamBudgetFrac is the fraction of the hybrid strategy's time
	// budget reserved for stitching partition plans and re-optimizing
	// seam regions (default 0.25; must be in [0, 1); hybrid strategy
	// only).
	SeamBudgetFrac float64

	// Seed drives the randomized heuristics (deterministic per seed).
	Seed int64

	// InitialPlan optionally seeds the MILP search with a known-good plan
	// as its first incumbent (a "MIP start"), instead of the default
	// greedy join order. The cache layer uses this to warm-start solves
	// of queries structurally similar to already-solved ones. The plan is
	// feasibility-checked against the encoding; an unusable plan falls
	// back to the greedy start (MILP strategy only, never an error).
	InitialPlan *Plan

	// OnEvent, when non-nil, receives the solver's structured event
	// stream (MILP strategy only). Callbacks are serialised — they never
	// run concurrently, sequence numbers increase by one, incumbents
	// never worsen, and bounds never regress within a run — and must be
	// fast: they execute on solver goroutines, some while search locks
	// are held.
	OnEvent func(Event)

	// OnPlan, when non-nil, observes every strict plan improvement a
	// strategy reports, with the plan itself — the uniform anytime
	// surface across strategies. Heuristics report every improvement
	// live; exact strategies report their final plan; the MILP reports
	// its decoded plan on completion (mid-solve MILP incumbents appear
	// on the event stream only). Callbacks are serialised per strategy
	// but may run concurrently across portfolio members.
	OnPlan func(PlanUpdate)

	// incumbents, when non-nil, feeds plans published mid-solve into the
	// MILP branch and bound as live MIP starts (portfolio injection
	// path; set by the "auto" orchestrator, never by callers).
	incumbents <-chan *Plan

	// cutoff, when non-nil, returns the exact cost of the best plan
	// known outside the strategy; pruning searches (dpconv) drop every
	// partial plan that cannot beat it (set by the "auto" orchestrator).
	cutoff func() float64
}

// Validate checks the caller-supplied option values. Every public entry
// point validates before optimizing, so no panic is reachable from bad
// API input.
//
// Budget precedence: the resource limits may arrive through the Budget
// struct, the deprecated flat fields (TimeLimit, GapTol, MaxNodes,
// Threads), or both. Both spellings are validated; at resolution time
// (EffectiveBudget) each non-zero Budget field wins over its flat alias,
// and a zero pair means the strategy default.
func (o Options) Validate() error {
	if err := o.Budget.validate(); err != nil {
		return err
	}
	if o.ThresholdRatio != 0 && o.ThresholdRatio <= 1 {
		return fmt.Errorf("%w: threshold ratio %g must exceed 1", ErrInvalidOptions, o.ThresholdRatio)
	}
	if o.ThresholdRatio == 0 {
		if _, err := o.Precision.Ratio(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	if o.Metric != Cout && o.Metric != OperatorCost {
		return fmt.Errorf("%w: unknown metric %d", ErrInvalidOptions, int(o.Metric))
	}
	switch o.Op {
	case HashJoin, SortMergeJoin, BlockNestedLoopJoin:
	default:
		return fmt.Errorf("%w: unknown operator %d", ErrInvalidOptions, int(o.Op))
	}
	if o.TimeLimit < 0 {
		return fmt.Errorf("%w: negative time limit %v", ErrInvalidOptions, o.TimeLimit)
	}
	if o.Threads < 0 {
		return fmt.Errorf("%w: negative thread count %d", ErrInvalidOptions, o.Threads)
	}
	if o.GapTol < 0 {
		return fmt.Errorf("%w: negative gap tolerance %g", ErrInvalidOptions, o.GapTol)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("%w: negative node limit %d", ErrInvalidOptions, o.MaxNodes)
	}
	if o.CardCap != 0 && o.CardCap < 1 {
		return fmt.Errorf("%w: cardinality cap %g must be at least 1", ErrInvalidOptions, o.CardCap)
	}
	if o.MaxDPTables < 0 {
		return fmt.Errorf("%w: negative DP table limit %d", ErrInvalidOptions, o.MaxDPTables)
	}
	if o.PartitionCap < 0 || o.PartitionCap == 1 {
		return fmt.Errorf("%w: partition cap %d must be 0 (default) or at least 2", ErrInvalidOptions, o.PartitionCap)
	}
	if o.SeamBudgetFrac < 0 || o.SeamBudgetFrac >= 1 {
		return fmt.Errorf("%w: seam budget fraction %g must be in [0, 1)", ErrInvalidOptions, o.SeamBudgetFrac)
	}
	if o.InterestingOrders && !o.ChooseOperators {
		return fmt.Errorf("%w: InterestingOrders requires ChooseOperators", ErrInvalidOptions)
	}
	if o.Portfolio != nil {
		name := o.Strategy
		if name == "" {
			name = DefaultStrategy
		}
		if name != "auto" {
			return fmt.Errorf("%w: Portfolio requires strategy %q, got %q", ErrInvalidOptions, "auto", name)
		}
		if len(o.Portfolio) == 0 {
			return fmt.Errorf("%w: empty portfolio member list", ErrInvalidOptions)
		}
		seen := make(map[string]bool, len(o.Portfolio))
		for _, m := range o.Portfolio {
			if m == "" || m == "auto" {
				return fmt.Errorf("%w: portfolio member %q (the portfolio cannot nest itself)", ErrInvalidOptions, m)
			}
			if seen[m] {
				return fmt.Errorf("%w: duplicate portfolio member %q", ErrInvalidOptions, m)
			}
			seen[m] = true
			if _, err := Lookup(m); err != nil {
				return err
			}
		}
	}
	return nil
}

// spec is the exact-costing specification the options describe.
func (o Options) spec() cost.Spec {
	op := o.Op
	if o.Metric == cost.OperatorCost && !o.ChooseOperators && op == 0 {
		op = cost.HashJoin
	}
	return cost.Spec{Metric: o.Metric, Op: op, Params: cost.Params{}.WithDefaults()}
}

// deadline converts the effective time limit into an absolute deadline
// (zero when no limit is configured).
func (o Options) deadline(now time.Time) time.Time {
	limit := o.EffectiveBudget().TimeLimit
	if limit <= 0 {
		return time.Time{}
	}
	return now.Add(limit)
}

// Status classifies the outcome of a successful optimization (err == nil).
type Status int

const (
	// StatusOptimal means the plan is proven optimal for the strategy's
	// search space within the configured tolerances.
	StatusOptimal Status = iota
	// StatusFeasible means the plan carries no optimality proof: it
	// came from a heuristic, or the search stopped early on a limit.
	StatusFeasible
	// StatusTimeLimit means the time budget (Options.TimeLimit or the
	// context deadline) expired; Plan is the best incumbent found.
	StatusTimeLimit
	// StatusCanceled means the context was canceled mid-solve; Plan is
	// the best incumbent found before cancellation.
	StatusCanceled
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusTimeLimit:
		return "time limit"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is the outcome of an optimization run. When the strategy returned
// without error, Tree is non-nil; Plan is additionally non-nil for every
// left-deep strategy (all but dp-bushy).
type Result struct {
	// Strategy is the name of the optimizer that produced the result.
	Strategy string
	// Status classifies the outcome.
	Status Status
	// Plan is the left-deep plan found (nil for bushy trees).
	Plan *Plan
	// Tree is the join tree found (always set on success).
	Tree *Tree
	// Cost is the plan's exact cost under the options' cost model.
	Cost float64
	// Bound is the proven lower bound on the optimal objective, in the
	// strategy's objective space: the MILP strategy proves bounds on
	// its approximated cost, exact DP proves Bound == its objective,
	// and heuristics certify nothing (-Inf).
	Bound float64
	// Gap is the relative gap between the strategy objective and Bound
	// (+Inf when no bound is available).
	Gap float64
	// Objective is the strategy's internal objective value for the
	// returned plan (the MILP's approximated cost; elsewhere == Cost).
	// Compare against Bound for the quality guarantee.
	Objective float64
	// Nodes counts branch-and-bound nodes (MILP strategy only).
	Nodes int
	// Elapsed is the optimization wall-clock time.
	Elapsed time.Duration
	// Stats aggregates per-phase solver effort (MILP strategy only; nil
	// for the baselines and heuristics, which have no phases to report).
	Stats *Stats
	// MIPStart reports which initial incumbent seeded the MILP search:
	// "plan" (Options.InitialPlan was accepted), "greedy" (the default
	// heuristic start), or "" (cold start, or a non-MILP strategy).
	MIPStart string
	// Winner names the portfolio member whose plan this result carries
	// (Strategy "auto" only; empty for single-strategy runs). The other
	// members' incumbents still shaped the result through live
	// injection.
	Winner string
}

// Optimize runs the strategy selected by opts.Strategy on the query. It is
// the library's single public entry point; see the package documentation
// for the context and error semantics.
func Optimize(ctx context.Context, q *Query, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, fmt.Errorf("%w: nil query", ErrInvalidQuery)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o, err := Lookup(opts.Strategy)
	if err != nil {
		return nil, err
	}
	return o.Optimize(ctx, q, opts)
}
