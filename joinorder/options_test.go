package joinorder_test

import (
	"errors"
	"testing"
	"time"

	"milpjoin/joinorder"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*joinorder.Options)
		wantErr bool
	}{
		{"zero value", func(o *joinorder.Options) {}, false},
		{"negative time limit", func(o *joinorder.Options) { o.TimeLimit = -time.Second }, true},
		{"negative threads", func(o *joinorder.Options) { o.Threads = -1 }, true},
		{"negative gap tol", func(o *joinorder.Options) { o.GapTol = -1e-6 }, true},
		{"negative max nodes", func(o *joinorder.Options) { o.MaxNodes = -1 }, true},
		{"positive max nodes", func(o *joinorder.Options) { o.MaxNodes = 1000 }, false},
		{"zero card cap (default)", func(o *joinorder.Options) { o.CardCap = 0 }, false},
		{"sub-one card cap", func(o *joinorder.Options) { o.CardCap = 0.5 }, true},
		{"negative card cap", func(o *joinorder.Options) { o.CardCap = -1e12 }, true},
		{"valid card cap", func(o *joinorder.Options) { o.CardCap = 1e9 }, false},
		{"negative dp tables", func(o *joinorder.Options) { o.MaxDPTables = -1 }, true},
		{"negative budget time limit", func(o *joinorder.Options) { o.Budget.TimeLimit = -time.Second }, true},
		{"negative budget gap tol", func(o *joinorder.Options) { o.Budget.GapTol = -1e-6 }, true},
		{"negative budget max nodes", func(o *joinorder.Options) { o.Budget.MaxNodes = -1 }, true},
		{"negative budget threads", func(o *joinorder.Options) { o.Budget.Threads = -1 }, true},
		{"budget set", func(o *joinorder.Options) {
			o.Budget = joinorder.Budget{TimeLimit: time.Second, GapTol: 1e-3, MaxNodes: 100, Threads: 2}
		}, false},
		{"partition cap one", func(o *joinorder.Options) { o.PartitionCap = 1 }, true},
		{"negative partition cap", func(o *joinorder.Options) { o.PartitionCap = -3 }, true},
		{"valid partition cap", func(o *joinorder.Options) { o.PartitionCap = 12 }, false},
		{"seam frac one", func(o *joinorder.Options) { o.SeamBudgetFrac = 1 }, true},
		{"negative seam frac", func(o *joinorder.Options) { o.SeamBudgetFrac = -0.1 }, true},
		{"valid seam frac", func(o *joinorder.Options) { o.SeamBudgetFrac = 0.4 }, false},
		{"positive dp tables", func(o *joinorder.Options) { o.MaxDPTables = 12 }, false},
		{"threshold ratio one", func(o *joinorder.Options) { o.ThresholdRatio = 1 }, true},
		{"threshold ratio below one", func(o *joinorder.Options) { o.ThresholdRatio = 0.5 }, true},
		{"threshold ratio valid", func(o *joinorder.Options) { o.ThresholdRatio = 2 }, false},
		{"unknown metric", func(o *joinorder.Options) { o.Metric = 99 }, true},
		{"unknown operator", func(o *joinorder.Options) { o.Op = 99 }, true},
		{"interesting orders without operators", func(o *joinorder.Options) { o.InterestingOrders = true }, true},
		{"interesting orders with operators", func(o *joinorder.Options) {
			o.InterestingOrders = true
			o.ChooseOperators = true
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts joinorder.Options
			tc.mutate(&opts)
			err := opts.Validate()
			if tc.wantErr {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, joinorder.ErrInvalidOptions) {
					t.Fatalf("Validate() = %v, want ErrInvalidOptions", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

func TestOptimizeRejectsInvalidOptions(t *testing.T) {
	q := smallQuery()
	for _, opts := range []joinorder.Options{
		{MaxNodes: -5},
		{CardCap: 0.1},
		{MaxDPTables: -2},
	} {
		if _, err := joinorder.Optimize(nil, q, opts); !errors.Is(err, joinorder.ErrInvalidOptions) {
			t.Errorf("Optimize(%+v) = %v, want ErrInvalidOptions", opts, err)
		}
	}
}
