package joinorder

import "errors"

// The package's typed errors. Every error returned from the public API
// wraps one of these sentinels (or comes from the standard library), so
// callers can branch with errors.Is instead of string matching — and no
// panic is reachable from public-API input.
var (
	// ErrInvalidQuery reports a query that fails validation (nil, fewer
	// than two tables, out-of-range predicate references, …).
	ErrInvalidQuery = errors.New("joinorder: invalid query")

	// ErrInvalidOptions reports option values no strategy can honor
	// (unknown precision or metric, threshold ratio ≤ 1, negative
	// budgets, …).
	ErrInvalidOptions = errors.New("joinorder: invalid options")

	// ErrUnknownStrategy reports an Options.Strategy name that is not
	// in the registry; Strategies() lists the valid names.
	ErrUnknownStrategy = errors.New("joinorder: unknown strategy")

	// ErrInfeasible reports that the strategy proved no plan exists
	// under its constraints (for example a MILP whose cardinality cap
	// excludes every join order).
	ErrInfeasible = errors.New("joinorder: no feasible plan")

	// ErrCanceled reports that the context ended before the strategy
	// found any plan to return. Strategies with anytime behaviour
	// return a Result with StatusCanceled instead once they hold an
	// incumbent.
	ErrCanceled = errors.New("joinorder: optimization canceled")

	// ErrNoPlan reports that the strategy terminated without a plan for
	// a reason other than infeasibility or cancellation — a budget too
	// small to find an incumbent, or a query outside the strategy's
	// reach (too many tables for DP, cyclic join graph for IKKBZ).
	ErrNoPlan = errors.New("joinorder: no plan found")
)
