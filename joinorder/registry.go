package joinorder

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Optimizer is the common shape of every join-ordering strategy: given a
// validated query and options, produce the best plan the strategy can find
// before the context ends. Implementations must honor cancellation — an
// anytime strategy returns its incumbent with StatusCanceled, others
// return ErrCanceled.
type Optimizer interface {
	// Name is the registry key, as accepted by Options.Strategy.
	Name() string
	// Description is a one-line summary for help output.
	Description() string
	// Optimize runs the strategy. The query and options have already
	// been validated when dispatched through the package-level Optimize.
	Optimize(ctx context.Context, q *Query, opts Options) (*Result, error)
}

// DefaultStrategy is the registry key used when Options.Strategy is empty.
const DefaultStrategy = "milp"

var registry = struct {
	sync.RWMutex
	m map[string]Optimizer
}{m: map[string]Optimizer{}}

// Register adds a strategy to the registry, making it reachable through
// Optimize and the -strategy flag of cmd/joinopt. Registering an empty
// name or a duplicate is an error.
func Register(o Optimizer) error {
	name := o.Name()
	if name == "" {
		return fmt.Errorf("%w: empty strategy name", ErrInvalidOptions)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("%w: strategy %q already registered", ErrInvalidOptions, name)
	}
	registry.m[name] = o
	return nil
}

// Lookup resolves a strategy name (empty means DefaultStrategy).
func Lookup(name string) (Optimizer, error) {
	if name == "" {
		name = DefaultStrategy
	}
	registry.RLock()
	o, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (available: %v)", ErrUnknownStrategy, name, Strategies())
	}
	return o, nil
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for name := range registry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns the one-line description of a registered strategy
// (empty string for unknown names).
func Describe(name string) string {
	registry.RLock()
	defer registry.RUnlock()
	if o, ok := registry.m[name]; ok {
		return o.Description()
	}
	return ""
}

// strategy adapts a plain function to the Optimizer interface; the
// built-in strategies are all registered this way.
type strategy struct {
	name string
	desc string
	fn   func(ctx context.Context, q *Query, opts Options) (*Result, error)
}

func (s strategy) Name() string        { return s.name }
func (s strategy) Description() string { return s.desc }
func (s strategy) Optimize(ctx context.Context, q *Query, opts Options) (*Result, error) {
	return s.fn(ctx, q, opts)
}

// mustRegister backs the built-in init registrations, where a duplicate
// means a programming error in this package, not caller input.
func mustRegister(name, desc string, fn func(context.Context, *Query, Options) (*Result, error)) {
	if err := Register(strategy{name: name, desc: desc, fn: fn}); err != nil {
		panic(err)
	}
}
