package joinorder

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/cost"
	"milpjoin/internal/dp"
	"milpjoin/internal/heuristic"
	"milpjoin/internal/obs"
	"milpjoin/internal/plan"
	"milpjoin/internal/solver"
)

// The built-in strategies. Five deterministic optimizers plus the four
// randomized Steinbrunn heuristics, all behind the same interface — the
// prerequisite for per-query strategy switching (hybrid MILP/non-MILP
// optimization à la Schönberger & Trummer).
func init() {
	mustRegister("milp", "anytime MILP encoding with proven optimality bounds (the paper's approach)", optimizeMILP)
	mustRegister("dp-leftdeep", "exact left-deep dynamic programming (Selinger-style, cross products allowed)", optimizeDPLeftDeep)
	mustRegister("dp-bushy", "exact bushy-tree dynamic programming (DPsub, O(3^n))", optimizeDPBushy)
	mustRegister("ikkbz", "polynomial IKKBZ for acyclic join graphs under C_out", optimizeIKKBZ)
	mustRegister("greedy", "greedy smallest-intermediate-result ordering", optimizeGreedy)
	mustRegister("dpconv", "exact bushy DP with layered enumeration and live cutoff pruning (DPconv-style)", optimizeDPConv)
	mustRegister("ii", "randomized iterative improvement (Steinbrunn et al.)", heuristicStrategy("ii", heuristic.IterativeImprovement))
	mustRegister("sa", "simulated annealing (Steinbrunn et al.)", heuristicStrategy("sa", heuristic.SimulatedAnnealing))
	mustRegister("2po", "two-phase optimization: iterative improvement then low-temperature annealing", heuristicStrategy("2po", heuristic.TwoPhase))
	mustRegister("gradient", "stochastic gradient descent on a continuous join-order relaxation (SPSA)", heuristicStrategy("gradient", heuristic.GradientDescent))
	mustRegister("sampling", "uniform random sampling of join orders (weakest baseline)", func(ctx context.Context, q *Query, opts Options) (*Result, error) {
		return runHeuristic(ctx, q, opts, "sampling", func(ctx context.Context, q *Query, opts Options, a *anytime) (*Plan, float64, error) {
			return heuristic.RandomSampling(ctx, q, opts.spec(), 0, heuristicOptions(opts, a))
		})
	})
}

// anytime is the uniform improvement surface the non-MILP strategies
// report through: every strict plan improvement goes to Options.OnPlan
// with the plan itself and to Options.OnEvent as a KindIncumbent event
// (the MILP strategy emits its events from inside the solver instead and
// reports the decoded plan once, on completion). A nil *anytime drops
// everything.
type anytime struct {
	name    string
	onPlan  func(PlanUpdate)
	emitter *obs.Emitter
}

func newAnytime(name string, opts Options) *anytime {
	if opts.OnPlan == nil && opts.OnEvent == nil {
		return nil
	}
	a := &anytime{name: name, onPlan: opts.OnPlan}
	if onEvent := opts.OnEvent; onEvent != nil {
		a.emitter = obs.NewEmitter(time.Now(), func(ev obs.Event) { onEvent(ev) })
	}
	return a
}

// improved reports one strict improvement: the new best plan, its exact
// cost, and the proven lower bound (-Inf for heuristics, == cost for exact
// strategies reporting their final plan).
func (a *anytime) improved(p *Plan, c float64, elapsed time.Duration, bound float64) {
	if a == nil {
		return
	}
	if a.onPlan != nil && p != nil {
		a.onPlan(PlanUpdate{Strategy: a.name, Plan: p, Cost: c, Elapsed: elapsed})
	}
	a.emitter.Emit(obs.Event{
		Kind:         obs.KindIncumbent,
		Worker:       -1,
		Strategy:     a.name,
		Incumbent:    c,
		Bound:        bound,
		Gap:          obs.RelGap(c, bound),
		HasIncumbent: true,
		Elapsed:      elapsed,
	})
}

// optimizeMILP runs the paper's pipeline: encode the query as a MILP,
// solve with branch and bound, decode the incumbent. It is the only
// strategy with true anytime behaviour: cancellation and time limits
// return the best incumbent plus a proven bound.
func optimizeMILP(ctx context.Context, q *Query, opts Options) (*Result, error) {
	copts := core.Options{
		Precision:           opts.Precision,
		ThresholdRatio:      opts.ThresholdRatio,
		CardCap:             opts.CardCap,
		Metric:              opts.Metric,
		Op:                  opts.Op,
		ChooseOperators:     opts.ChooseOperators,
		InterestingOrders:   opts.InterestingOrders,
		ExpensivePredicates: opts.ExpensivePredicates,
		InitialPlan:         opts.InitialPlan,
		Incumbents:          opts.incumbents,
	}
	budget := opts.EffectiveBudget()
	params := solver.Params{
		TimeLimit: budget.TimeLimit,
		GapTol:    budget.GapTol,
		Threads:   budget.Threads,
		MaxNodes:  budget.MaxNodes,
	}
	if onEvent := opts.OnEvent; onEvent != nil {
		params.OnEvent = func(ev Event) { onEvent(ev) }
	}
	res, err := core.Optimize(ctx, q, copts, params)
	if err != nil {
		if errors.Is(err, core.ErrInvalidOptions) {
			return nil, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
		return nil, err
	}
	sres := res.Solver
	out := &Result{
		Strategy: "milp",
		Bound:    sres.Bound,
		Gap:      sres.Gap,
		Nodes:    sres.Nodes,
		Elapsed:  sres.Elapsed,
		Stats:    &sres.Stats,
		MIPStart: res.MIPStart,
	}
	if sres.Status == solver.StatusInfeasible {
		return nil, fmt.Errorf("%w: the MILP proved no plan fits the encoding (try a higher CardCap)", ErrInfeasible)
	}
	if res.Plan == nil {
		if sres.Status == solver.StatusCanceled || ctx.Err() != nil {
			return nil, fmt.Errorf("%w: no incumbent found before the context ended", ErrCanceled)
		}
		return nil, fmt.Errorf("%w: solver stopped with status %v", ErrNoPlan, sres.Status)
	}
	out.Plan = res.Plan
	out.Tree = res.Plan.LeftDeep()
	out.Cost = res.ExactCost
	out.Objective = res.MILPObj
	if opts.OnPlan != nil {
		opts.OnPlan(PlanUpdate{Strategy: "milp", Plan: res.Plan, Cost: res.ExactCost, Elapsed: sres.Elapsed})
	}
	switch sres.Status {
	case solver.StatusOptimal:
		out.Status = StatusOptimal
	case solver.StatusTimeLimit:
		out.Status = StatusTimeLimit
	case solver.StatusCanceled:
		out.Status = StatusCanceled
	default: // node limit, numerical no-progress: a plan without proof
		out.Status = StatusFeasible
	}
	return out, nil
}

// optimizeDPLeftDeep is the exact Selinger-style baseline. DP is not
// anytime: it produces nothing until it finishes, so cancellation returns
// ErrCanceled without a plan.
func optimizeDPLeftDeep(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	pl, c, err := dp.OptimizeLeftDeep(ctx, q, opts.spec(), dp.Options{
		MaxTables:       opts.MaxDPTables,
		Deadline:        opts.deadline(start),
		ChooseOperators: opts.ChooseOperators,
	})
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	elapsed := time.Since(start)
	newAnytime("dp-leftdeep", opts).improved(pl, c, elapsed, c)
	return &Result{
		Strategy:  "dp-leftdeep",
		Status:    StatusOptimal,
		Plan:      pl,
		Tree:      pl.LeftDeep(),
		Cost:      c,
		Objective: c,
		Bound:     c,
		Elapsed:   elapsed,
	}, nil
}

// optimizeDPBushy is the exact bushy-tree baseline; it returns a Tree and
// no left-deep Plan.
func optimizeDPBushy(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	tree, c, err := dp.OptimizeBushy(ctx, q, opts.spec(), dp.Options{
		MaxTables: opts.MaxDPTables,
		Deadline:  opts.deadline(start),
	})
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	elapsed := time.Since(start)
	newAnytime("dp-bushy", opts).improved(leftDeepFromTree(tree, opts.Metric), c, elapsed, c)
	return &Result{
		Strategy:  "dp-bushy",
		Status:    StatusOptimal,
		Tree:      tree,
		Cost:      c,
		Objective: c,
		Bound:     c,
		Elapsed:   elapsed,
	}, nil
}

// optimizeDPConv is the DPconv-style exact bushy search: layered subset
// enumeration with an optional live cutoff (the portfolio's incumbent bus)
// pruning dominated subsets. With no cutoff it matches dp-bushy exactly.
func optimizeDPConv(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	tree, c, err := dp.OptimizeConv(ctx, q, opts.spec(), dp.ConvOptions{
		Options: dp.Options{
			MaxTables: opts.MaxDPTables,
			Deadline:  opts.deadline(start),
		},
		Cutoff: opts.cutoff,
	})
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	elapsed := time.Since(start)
	pl := leftDeepFromTree(tree, opts.Metric)
	newAnytime("dpconv", opts).improved(pl, c, elapsed, c)
	return &Result{
		Strategy:  "dpconv",
		Status:    StatusOptimal,
		Plan:      pl,
		Tree:      tree,
		Cost:      c,
		Objective: c,
		Bound:     c,
		Elapsed:   elapsed,
	}, nil
}

// leftDeepFromTree flattens a linear tree into the cost-equivalent
// left-deep Plan; nil for genuinely bushy trees. Under C_out join cost is
// orientation-blind, so any chain where every join has a leaf child
// flattens (the per-step table sets are identical); under operator costs
// outer and inner are priced differently, so only strict left-deep shapes
// (every right child a leaf) qualify. It lets the exact bushy strategies
// feed the portfolio's plan-space injection channel whenever their optimum
// happens to be left-deep.
func leftDeepFromTree(t *Tree, metric Metric) *Plan {
	if t == nil {
		return nil
	}
	var rev []int
	n := t
	for !n.IsLeaf() {
		switch {
		case n.Right.IsLeaf():
			rev = append(rev, n.Right.Table)
			n = n.Left
		case metric == Cout && n.Left.IsLeaf():
			rev = append(rev, n.Left.Table)
			n = n.Right
		default:
			return nil
		}
	}
	rev = append(rev, n.Table)
	order := make([]int, len(rev))
	for i, tb := range rev {
		order[len(rev)-1-i] = tb
	}
	return &Plan{Order: order}
}

// optimizeIKKBZ runs the polynomial IKKBZ algorithm. Its optimality
// guarantee (left-deep, no cross products, C_out, acyclic graphs) is
// narrower than the other strategies' search spaces, so the result is
// reported as feasible without a bound.
func optimizeIKKBZ(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	pl, cout, err := dp.IKKBZ(ctx, q)
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	c := cout
	if opts.Metric != Cout {
		if c, err = plan.Cost(q, pl, opts.spec()); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	newAnytime("ikkbz", opts).improved(pl, c, elapsed, math.Inf(-1))
	return &Result{
		Strategy:  "ikkbz",
		Status:    StatusFeasible,
		Plan:      pl,
		Tree:      pl.LeftDeep(),
		Cost:      c,
		Objective: c,
		Bound:     math.Inf(-1),
		Gap:       math.Inf(1),
		Elapsed:   elapsed,
	}, nil
}

// optimizeGreedy picks the smallest intermediate result at every step —
// the cheapest strategy, and the MIP start the MILP strategy seeds itself
// with.
func optimizeGreedy(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	pl, c, err := dp.GreedyLeftDeep(q, opts.spec())
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	elapsed := time.Since(start)
	newAnytime("greedy", opts).improved(pl, c, elapsed, math.Inf(-1))
	return &Result{
		Strategy:  "greedy",
		Status:    StatusFeasible,
		Plan:      pl,
		Tree:      pl.LeftDeep(),
		Cost:      c,
		Objective: c,
		Bound:     math.Inf(-1),
		Gap:       math.Inf(1),
		Elapsed:   elapsed,
	}, nil
}

// heuristicStrategy adapts one of the randomized anytime searches.
func heuristicStrategy(name string, fn func(context.Context, *Query, cost.Spec, heuristic.Options) (*Plan, float64, error)) func(context.Context, *Query, Options) (*Result, error) {
	return func(ctx context.Context, q *Query, opts Options) (*Result, error) {
		return runHeuristic(ctx, q, opts, name, func(ctx context.Context, q *Query, opts Options, a *anytime) (*Plan, float64, error) {
			return fn(ctx, q, opts.spec(), heuristicOptions(opts, a))
		})
	}
}

// heuristicOptions translates public options for the randomized searches,
// routing every strict improvement to the uniform anytime surface.
func heuristicOptions(opts Options, a *anytime) heuristic.Options {
	h := heuristic.Options{
		Seed:     opts.Seed,
		Deadline: opts.deadline(time.Now()),
	}
	if a != nil {
		h.OnImprovement = func(p *plan.Plan, c float64, elapsed time.Duration) {
			a.improved(p, c, elapsed, math.Inf(-1))
		}
	}
	return h
}

// runHeuristic runs an anytime randomized search and classifies how it
// stopped: a canceled context yields StatusCanceled with the best plan
// found, an expired budget StatusTimeLimit, and a completed search
// StatusFeasible (the heuristics never certify optimality).
func runHeuristic(ctx context.Context, q *Query, opts Options, name string,
	fn func(context.Context, *Query, Options, *anytime) (*Plan, float64, error)) (*Result, error) {
	start := time.Now()
	pl, c, err := fn(ctx, q, opts, newAnytime(name, opts))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("%w: %w", ErrCanceled, cerr)
		}
		return nil, fmt.Errorf("%w: %v", ErrNoPlan, err)
	}
	status := StatusFeasible
	limit := opts.EffectiveBudget().TimeLimit
	switch {
	case ctx.Err() != nil:
		status = StatusCanceled
	case limit > 0 && time.Since(start) >= limit:
		status = StatusTimeLimit
	}
	return &Result{
		Strategy:  name,
		Status:    status,
		Plan:      pl,
		Tree:      pl.LeftDeep(),
		Cost:      c,
		Objective: c,
		Bound:     math.Inf(-1),
		Gap:       math.Inf(1),
		Elapsed:   time.Since(start),
	}, nil
}

// mapBaselineErr translates baseline-package failures into the public
// typed errors.
func mapBaselineErr(ctx context.Context, err error) error {
	switch {
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, context.Canceled)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrCanceled, context.DeadlineExceeded)
	case errors.Is(err, dp.ErrNoneBetter):
		// Preserve the chain: the portfolio orchestrator reads this as a
		// proof that its racing incumbent is optimal, not as a failure.
		return fmt.Errorf("%w: %w", ErrNoPlan, err)
	case errors.Is(err, dp.ErrTimeout), errors.Is(err, dp.ErrTooLarge), errors.Is(err, dp.ErrNotAcyclic):
		return fmt.Errorf("%w: %v", ErrNoPlan, err)
	default:
		return err
	}
}
