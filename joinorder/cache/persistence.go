package cache

import (
	"encoding/json"
	"fmt"
	"slices"
	"time"

	"milpjoin/joinorder"
	"milpjoin/joinorder/cache/persist"
)

// donorWire is the serialized form of a warm-start donor (persistent log
// and cluster replication). Operators are small ints; the order is in
// shape-canonical label space, exactly as the in-memory store holds it.
type donorWire struct {
	Order []int                `json:"order"`
	Ops   []joinorder.Operator `json:"ops,omitempty"`
}

// entryOverhead approximates the fixed in-memory cost of one cache entry
// beyond its serialized payload: list element, map bucket share, Result
// struct, plan headers.
const entryOverhead = 256

func entrySize(key string, val []byte) int64 {
	return int64(len(key) + len(val) + entryOverhead)
}

// storeExact inserts a canonical-space result under its full cache key,
// mirrors it to the persistent log, and announces it to the OnStore hook
// (cluster replication). Returns the marshaled value for reuse.
func (o *Optimizer) storeExact(key string, cres *canonicalResult, now time.Time) {
	val, err := json.Marshal(cres.res)
	if err != nil {
		// A Result always marshals; treat failure as a persist error and
		// keep the entry memory-only with a conservative size estimate.
		o.ctr.persistErrors.Add(1)
		o.exact.put(key, cres, now, entrySize(key, nil))
		return
	}
	o.exact.put(key, cres, now, entrySize(key, val))
	o.persistPut(persist.KindExact, key, val)
	o.announce(persist.KindExact, key, val)
}

// storeDonor inserts a shape-level warm-start donor and mirrors it like
// storeExact.
func (o *Optimizer) storeDonor(key string, d *donor, now time.Time) {
	o.donors.put(key, d, now, 0)
	val, err := json.Marshal(donorWire{Order: d.order, Ops: d.ops})
	if err != nil {
		o.ctr.persistErrors.Add(1)
		return
	}
	o.persistPut(persist.KindDonor, key, val)
	o.announce(persist.KindDonor, key, val)
}

// persistPut appends one record to the persistent log, best effort: a
// failed write is counted, never surfaced — the in-memory cache keeps
// serving either way.
func (o *Optimizer) persistPut(kind, key string, val []byte) {
	if o.cfg.Persist == nil {
		return
	}
	if err := o.cfg.Persist.Put(kind, key, val); err != nil {
		o.ctr.persistErrors.Add(1)
	}
}

func (o *Optimizer) persistDelete(kind, key string) {
	if o.cfg.Persist == nil {
		return
	}
	if err := o.cfg.Persist.Delete(kind, key); err != nil {
		o.ctr.persistErrors.Add(1)
	}
}

// announce feeds freshly stored entries to the OnStore hook. Replayed and
// imported entries never announce — replication must not amplify.
func (o *Optimizer) announce(kind, key string, val []byte) {
	if o.cfg.OnStore != nil {
		o.cfg.OnStore(kind, key, val)
	}
}

// replay loads the persistent log into the in-memory stores. Entries
// beyond the configured bounds (MaxEntries, MaxBytes) are evicted in log
// order as they overflow; those evictions are counted separately so an
// oversized log is visible in Stats.
func (o *Optimizer) replay() error {
	evictedBefore := o.ctr.evicted.Load()
	err := o.cfg.Persist.Each(func(rec persist.Record) error {
		if err := o.insertRecord(rec.Kind, rec.Key, rec.Val); err != nil {
			// One bad record (e.g. from an older format) must not take
			// down startup; skip it.
			o.ctr.persistErrors.Add(1)
			return nil
		}
		o.ctr.replayed.Add(1)
		return nil
	})
	o.ctr.replayEvicted.Add(o.ctr.evicted.Load() - evictedBefore)
	return err
}

// insertRecord decodes one serialized entry into the matching store. It
// does not touch the persistent log or the OnStore hook.
func (o *Optimizer) insertRecord(kind, key string, val []byte) error {
	now := o.cfg.now()
	switch kind {
	case persist.KindExact:
		res := &joinorder.Result{}
		if err := json.Unmarshal(val, res); err != nil {
			return fmt.Errorf("cache: bad exact record %q: %w", key, err)
		}
		if res.Plan == nil || len(res.Plan.Order) == 0 {
			return fmt.Errorf("cache: exact record %q carries no plan", key)
		}
		o.exact.put(key, &canonicalResult{res: res}, now, entrySize(key, val))
		return nil
	case persist.KindDonor:
		var dw donorWire
		if err := json.Unmarshal(val, &dw); err != nil {
			return fmt.Errorf("cache: bad donor record %q: %w", key, err)
		}
		if len(dw.Order) == 0 {
			return fmt.Errorf("cache: donor record %q carries no order", key)
		}
		o.donors.put(key, &donor{order: dw.Order, ops: dw.Ops}, now, 0)
		return nil
	default:
		return fmt.Errorf("cache: unknown record kind %q", kind)
	}
}

// ImportRecord accepts one serialized cache entry from a cluster peer
// (best-effort replication of hot entries and warm-start donors). The
// entry is validated, inserted, and mirrored to the local persistent log
// so it survives a restart — but it is NOT re-announced through OnStore,
// so replication cannot amplify. kind is persist.KindExact or
// persist.KindDonor; key is the full cache key; val the serialized entry.
func (o *Optimizer) ImportRecord(kind, key string, val []byte) error {
	if key == "" {
		return fmt.Errorf("cache: import with empty key")
	}
	if err := o.insertRecord(kind, key, val); err != nil {
		return err
	}
	o.ctr.imported.Add(1)
	o.persistPut(kind, key, val)
	return nil
}

// Invalidate removes the cached exact entry and warm-start donor for the
// query under the given options, both from memory and (as tombstones)
// from the persistent log. It reports whether an exact entry was
// resident. Use it when the statistics behind a cached plan are known to
// be stale; OptimizeExecuted with feedback calls it automatically.
func (o *Optimizer) Invalidate(q *joinorder.Query, opts joinorder.Options) bool {
	ce, err := Canonicalize(q, Exact)
	if err != nil {
		return false
	}
	okey := optionsKey(opts)
	ekey := "e|" + okey + "|" + ce.Key
	removed := o.exact.remove(ekey)
	o.persistDelete(persist.KindExact, ekey)
	if cs, err := Canonicalize(q, Shape); err == nil {
		skey := "s|" + okey + "|" + cs.Key
		o.donors.remove(skey)
		o.persistDelete(persist.KindDonor, skey)
	}
	if removed {
		o.ctr.invalidated.Add(1)
	}
	return removed
}

// cloneDonor deep-copies a donor for safe insertion from borrowed slices.
func cloneDonor(order []int, ops []joinorder.Operator) *donor {
	return &donor{order: slices.Clone(order), ops: slices.Clone(ops)}
}
