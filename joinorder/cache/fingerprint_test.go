package cache

import (
	"math/rand"
	"testing"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// relabel builds the same abstract query under a permuted table labeling:
// table i of the original becomes table perm[i] of the relabeled query.
func relabel(q *joinorder.Query, perm []int) *joinorder.Query {
	out := &joinorder.Query{Tables: make([]joinorder.Table, len(q.Tables))}
	for i, t := range q.Tables {
		out.Tables[perm[i]] = t
	}
	for _, p := range q.Predicates {
		np := p
		np.Tables = make([]int, len(p.Tables))
		for k, t := range p.Tables {
			np.Tables[k] = perm[t]
		}
		out.Predicates = append(out.Predicates, np)
	}
	return out
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

func TestFingerprintInvariantUnderRelabeling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []workload.GraphShape{workload.Chain, workload.Cycle, workload.Star, workload.Clique}
	for _, shape := range shapes {
		for n := 2; n <= 12; n += 2 {
			for seed := int64(1); seed <= 5; seed++ {
				q := workload.Generate(shape, n, seed, workload.Config{})
				for _, mode := range []Mode{Exact, Shape} {
					orig, err := Canonicalize(q, mode)
					if err != nil {
						t.Fatalf("%v n=%d seed=%d %v: %v", shape, n, seed, mode, err)
					}
					for trial := 0; trial < 4; trial++ {
						perm := randPerm(rng, n)
						rq := relabel(q, perm)
						got, err := Canonicalize(rq, mode)
						if err != nil {
							t.Fatalf("relabeled %v n=%d: %v", shape, n, err)
						}
						if got.Key != orig.Key {
							t.Fatalf("%v n=%d seed=%d %v: fingerprint changed under relabeling", shape, n, seed, mode)
						}
					}
				}
			}
		}
	}
}

// TestFingerprintDistinguishes checks that genuinely different queries do
// not collide.
func TestFingerprintDistinguishes(t *testing.T) {
	base := workload.Generate(workload.Chain, 6, 1, workload.Config{})
	fp := func(q *joinorder.Query, m Mode) string {
		c, err := Canonicalize(q, m)
		if err != nil {
			t.Fatal(err)
		}
		return c.Key
	}
	exact := fp(base, Exact)
	shape := fp(base, Shape)

	// Different cardinality: exact key changes; ordinal key unchanged if
	// the perturbation preserves the ordering of the statistics.
	bumped := *base
	bumped.Tables = append([]joinorder.Table(nil), base.Tables...)
	bumped.Tables[2].Card *= 1.5
	if fp(&bumped, Exact) == exact {
		t.Error("exact fingerprint ignored a cardinality change")
	}

	// Different topology: both keys change.
	star := workload.Generate(workload.Star, 6, 1, workload.Config{})
	if fp(star, Exact) == exact || fp(star, Shape) == shape {
		t.Error("fingerprint collided across topologies")
	}

	// Same topology, different size.
	longer := workload.Generate(workload.Chain, 7, 1, workload.Config{})
	if fp(longer, Shape) == shape {
		t.Error("shape fingerprint collided across sizes")
	}
}

// TestShapeFingerprintSurvivesPerturbation: scaling every cardinality (an
// order-preserving perturbation) keeps the shape key while changing the
// exact key — the warm-start matching semantics.
func TestShapeFingerprintSurvivesPerturbation(t *testing.T) {
	for _, shape := range []workload.GraphShape{workload.Chain, workload.Star, workload.Cycle} {
		q := workload.Generate(shape, 9, 3, workload.Config{})
		pert := &joinorder.Query{
			Tables:     append([]joinorder.Table(nil), q.Tables...),
			Predicates: append([]joinorder.Predicate(nil), q.Predicates...),
		}
		for i := range pert.Tables {
			pert.Tables[i].Card = pert.Tables[i].Card*1.25 + float64(0) // monotone
		}
		co, err := Canonicalize(q, Shape)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := Canonicalize(pert, Shape)
		if err != nil {
			t.Fatal(err)
		}
		if co.Key != cp.Key {
			t.Fatalf("%v: shape key changed under monotone cardinality perturbation", shape)
		}
		ce, err := Canonicalize(q, Exact)
		if err != nil {
			t.Fatal(err)
		}
		cpe, err := Canonicalize(pert, Exact)
		if err != nil {
			t.Fatal(err)
		}
		if ce.Key == cpe.Key {
			t.Fatalf("%v: exact key ignored cardinality perturbation", shape)
		}
	}
}

// TestCanonicalPermTranslatesPlans: a plan translated donor→canonical→
// caller must visit tables with identical statistics at every step.
func TestCanonicalPermTranslatesPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		q := workload.Generate(workload.Cycle, 8, int64(trial+1), workload.Config{})
		perm := randPerm(rng, 8)
		rq := relabel(q, perm)

		cq, err := Canonicalize(q, Shape)
		if err != nil {
			t.Fatal(err)
		}
		crq, err := Canonicalize(rq, Shape)
		if err != nil {
			t.Fatal(err)
		}
		// A plan over q translated into rq's label space.
		order := rng.Perm(8)
		translated := crq.FromCanonical(cq.ToCanonical(order))
		for i := range order {
			if q.Tables[order[i]].Card != rq.Tables[translated[i]].Card {
				t.Fatalf("trial %d: translated plan visits a table with different cardinality at step %d", trial, i)
			}
		}
	}
}

// TestSymmetricQueriesCacheable: fully symmetric queries (identical star
// leaves, uniform cliques) must canonicalize via the uniform-cell shortcut
// instead of exhausting the branching budget.
func TestSymmetricQueriesCacheable(t *testing.T) {
	star := &joinorder.Query{}
	star.Tables = append(star.Tables, joinorder.Table{Name: "hub", Card: 1e6})
	for i := 0; i < 20; i++ {
		star.Tables = append(star.Tables, joinorder.Table{Card: 1000})
		star.Predicates = append(star.Predicates, joinorder.Predicate{Tables: []int{0, len(star.Tables) - 1}, Sel: 0.01})
	}
	if _, err := Canonicalize(star, Exact); err != nil {
		t.Fatalf("symmetric star: %v", err)
	}

	clique := &joinorder.Query{}
	for i := 0; i < 12; i++ {
		clique.Tables = append(clique.Tables, joinorder.Table{Card: 500})
	}
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			clique.Predicates = append(clique.Predicates, joinorder.Predicate{Tables: []int{i, j}, Sel: 0.5})
		}
	}
	if _, err := Canonicalize(clique, Exact); err != nil {
		t.Fatalf("uniform clique: %v", err)
	}
}

// TestUncacheable: the documented out-of-scope query features are
// rejected with ErrUncacheable, not mis-fingerprinted.
func TestUncacheable(t *testing.T) {
	q := workload.Generate(workload.Chain, 4, 1, workload.Config{})
	nary := &joinorder.Query{
		Tables:     q.Tables,
		Predicates: append(append([]joinorder.Predicate(nil), q.Predicates...), joinorder.Predicate{Tables: []int{0, 1, 2}, Sel: 0.5}),
	}
	for _, bad := range []*joinorder.Query{
		nary,
		{Tables: q.Tables, Predicates: q.Predicates, Columns: []joinorder.Column{{Table: 0, Bytes: 4}}},
	} {
		if _, err := Canonicalize(bad, Exact); err == nil {
			t.Error("expected ErrUncacheable")
		}
	}
}
