package cache

import "sync"

// flightGroup coalesces concurrent work on the same key: the first caller
// becomes the leader and runs the solve, later callers wait for the
// leader's result. Unlike golang.org/x/sync/singleflight, waiting is
// context-aware at the call site: flight exposes a done channel the caller
// selects on against its own context, so a waiter with a tight deadline
// abandons the flight without cancelling it for everyone else.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress unit of work. Its fields other than done are
// written once by the leader before close(done) and read only after done
// is closed, so no further synchronisation is needed.
type flight struct {
	done chan struct{}
	// res is the leader's result translated into canonical label space,
	// so every waiter can translate it into its own query's labels.
	res *canonicalResult
	err error
}

// join returns the flight for key, creating it when absent. leader is true
// for the caller that must run the work and complete the flight.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// complete publishes the leader's outcome and wakes all waiters. The key is
// removed first so a request arriving after completion starts fresh (and
// will typically hit the cache the leader just populated).
func (g *flightGroup) complete(key string, f *flight, res *canonicalResult, err error) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}
