package cache

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"time"

	"milpjoin/internal/obs"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache/persist"
)

// OptimizeFunc is the underlying optimizer the cache fronts; it matches
// joinorder.Optimize. Tests inject counting or failing implementations.
type OptimizeFunc func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error)

// Config configures an Optimizer. The zero value is usable: 1024 entries,
// no TTL, warm starts on, degraded serving off.
type Config struct {
	// MaxEntries bounds the exact cache (default 1024). The warm-start
	// donor index is bounded separately at the same size.
	MaxEntries int
	// MaxBytes additionally bounds the exact cache's approximate resident
	// bytes (0: entry-count bound only). It is what keeps a persistent-log
	// replay larger than the configured LRU from blowing memory: replay
	// evicts in log order as it overflows, counted in Stats.ReplayEvicted.
	MaxBytes int64
	// TTL expires entries this long after insertion (0: never). Expiry
	// is checked on lookup; an expired entry is treated as a miss and
	// removed, so stale plans are never served.
	TTL time.Duration
	// DisableWarmStart turns off injecting shape-matched cached plans as
	// MIP starts on misses.
	DisableWarmStart bool
	// DegradeUnder enables graceful degradation: when a request's
	// effective time budget (Options.TimeLimit composed with the context
	// deadline) is at most this, the cache serves a heuristic plan
	// immediately and refines the real answer in the background,
	// publishing it to the cache for the next request (0: disabled).
	DegradeUnder time.Duration
	// FallbackStrategy is the strategy served under degradation
	// (default "greedy").
	FallbackStrategy string
	// BackgroundBudget is the time limit of a background refine solve
	// (default 30s).
	BackgroundBudget time.Duration
	// Optimize is the underlying optimizer (default joinorder.Optimize).
	Optimize OptimizeFunc

	// Persist attaches a disk-backed plan log (see the persist
	// subpackage): stored entries and warm-start donors are appended to
	// it, invalidations become tombstones, and New replays the surviving
	// records into the in-memory stores so a restarted process serves
	// previously-seen fingerprints without re-solving. The caller owns
	// the log's lifecycle (Open before New, Close after the optimizer is
	// done).
	Persist *persist.Log
	// OnStore, when set, observes every freshly stored entry — exact
	// results and warm-start donors — as (kind, key, serialized value).
	// The cluster layer uses it to replicate hot entries to peer shards.
	// Entries loaded by replay or ImportRecord are not announced, so
	// replication cannot amplify. The hook runs synchronously on the
	// solve path; keep it fast (enqueue, don't block).
	OnStore func(kind, key string, val []byte)

	// now overrides the clock in tests.
	now func() time.Time
}

// Optimizer is a concurrent plan cache in front of joinorder.Optimize.
//
// Lookups key on the canonical query fingerprint (see Canonicalize), so a
// relabeled — graph-isomorphic — query hits the entry of the original.
// Only proven-optimal results enter the exact cache; every solved plan
// additionally feeds a shape-level donor index that warm-starts solves of
// structurally identical queries whose cardinalities drifted. Identical
// concurrent requests coalesce into one solve. All methods are safe for
// concurrent use.
type Optimizer struct {
	cfg     Config
	exact   *store[*canonicalResult]
	donors  *store[*donor]
	flights flightGroup
	ctr     counters
	bg      sync.WaitGroup
}

// canonicalResult is a cached result whose plan is stored in canonical
// label space; serve translates it into any requesting query's labels.
type canonicalResult struct {
	res *joinorder.Result // Plan.Order in canonical labels; Tree nil
}

// donor is a shape-level warm-start candidate: a plan in shape-canonical
// label space from the most recent solve of this query shape.
type donor struct {
	order []int
	ops   []joinorder.Operator
}

// WithDefaults returns the config with every zero field replaced by its
// documented default. New applies it before validating, so the zero Config
// stays usable.
func (c Config) WithDefaults() Config {
	if c.MaxEntries == 0 {
		c.MaxEntries = 1024
	}
	if c.FallbackStrategy == "" {
		c.FallbackStrategy = "greedy"
	}
	if c.BackgroundBudget == 0 {
		c.BackgroundBudget = 30 * time.Second
	}
	if c.Optimize == nil {
		c.Optimize = joinorder.Optimize
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Validate checks the caller-supplied config values, mirroring
// joinorder.Options.Validate: it is called by New (after WithDefaults), so
// no panic or silent misbehaviour is reachable from bad configuration.
// Callers validating an explicit config directly should note that a zero
// MaxEntries is rejected here but defaulted by New.
func (c Config) Validate() error {
	if c.MaxEntries <= 0 {
		return fmt.Errorf("%w: cache MaxEntries %d must be positive", joinorder.ErrInvalidOptions, c.MaxEntries)
	}
	if c.MaxBytes < 0 {
		return fmt.Errorf("%w: negative cache MaxBytes %d", joinorder.ErrInvalidOptions, c.MaxBytes)
	}
	if c.TTL < 0 {
		return fmt.Errorf("%w: negative cache TTL %v", joinorder.ErrInvalidOptions, c.TTL)
	}
	if c.DegradeUnder < 0 {
		return fmt.Errorf("%w: negative DegradeUnder %v", joinorder.ErrInvalidOptions, c.DegradeUnder)
	}
	if c.BackgroundBudget < 0 {
		return fmt.Errorf("%w: negative BackgroundBudget %v", joinorder.ErrInvalidOptions, c.BackgroundBudget)
	}
	if c.DegradeUnder > 0 && c.BackgroundBudget > 0 && c.DegradeUnder >= c.BackgroundBudget {
		return fmt.Errorf("%w: DegradeUnder %v must be below the background refine budget %v",
			joinorder.ErrInvalidOptions, c.DegradeUnder, c.BackgroundBudget)
	}
	return nil
}

// New builds a cache-fronted optimizer. Zero config fields take their
// documented defaults; values no cache can honor (negative sizes or
// budgets, a degrade threshold at or above the refine budget) return an
// error wrapping joinorder.ErrInvalidOptions.
func New(cfg Config) (*Optimizer, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	o := &Optimizer{cfg: cfg}
	o.exact = newStore[*canonicalResult](cfg.MaxEntries, cfg.MaxBytes, cfg.TTL, &o.ctr.evicted, &o.ctr.expired)
	o.donors = newStore[*donor](cfg.MaxEntries, 0, cfg.TTL, nil, nil)
	if cfg.Persist != nil {
		if err := o.replay(); err != nil {
			return nil, fmt.Errorf("%w: replaying persistent cache: %v", joinorder.ErrInvalidOptions, err)
		}
	}
	return o, nil
}

// Stats snapshots cache effectiveness counters.
func (o *Optimizer) Stats() Stats {
	s := o.ctr.snapshot()
	s.Entries = o.exact.len()
	s.Donors = o.donors.len()
	s.Bytes = o.exact.sizeBytes()
	return s
}

// Len is the current number of exact entries resident.
func (o *Optimizer) Len() int { return o.exact.len() }

// Wait blocks until all background refine solves started by degraded
// serving have completed. Call before reading final Stats or shutting
// down.
func (o *Optimizer) Wait() { o.bg.Wait() }

// EntryInfo describes one resident cache entry for stats output.
type EntryInfo struct {
	// Key is the entry's full cache key (options digest + fingerprint).
	Key string `json:"key"`
	// Hits counts lookups served from this entry.
	Hits int64 `json:"hits"`
	// Age is the time since insertion, in nanoseconds on the wire.
	Age time.Duration `json:"age_ns"`
	// Cost is the cached plan's exact cost.
	Cost float64 `json:"cost"`
	// Tables is the cached plan's table count.
	Tables int `json:"tables"`
}

// Entries lists resident exact entries, most recently used first.
func (o *Optimizer) Entries() []EntryInfo {
	var out []EntryInfo
	o.exact.each(o.cfg.now(), func(key string, v *canonicalResult, age time.Duration, hits int64) {
		out = append(out, EntryInfo{
			Key:    key,
			Hits:   hits,
			Age:    age,
			Cost:   v.res.Cost,
			Tables: len(v.res.Plan.Order),
		})
	})
	return out
}

// Optimize serves the query from cache when possible and falls through to
// the underlying optimizer otherwise. Uncacheable queries (see
// Canonicalize) pass through untouched. Cache activity is surfaced on the
// caller's Options.OnEvent stream via the KindCache*, KindWarmStart, and
// KindDegraded event kinds, interleaved with the underlying solver's
// events under one monotonic sequence.
func (o *Optimizer) Optimize(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := o.cfg.now()
	ce, err := Canonicalize(q, Exact)
	if err != nil {
		// Uncacheable or malformed: the underlying optimizer owns
		// validation and the public error surface.
		o.ctr.uncacheable.Add(1)
		return o.cfg.Optimize(ctx, q, opts)
	}
	okey := optionsKey(opts)
	ekey := "e|" + okey + "|" + ce.Key

	em := newCallEmitter(start, opts)

	if cres, ok := o.exact.get(ekey, start); ok {
		o.ctr.hits.Add(1)
		res := cres.serve(ce, o.cfg.now().Sub(start))
		em.emitResult(joinorder.KindCacheHit, res)
		return res, nil
	}

	if o.degradeBudget(ctx, opts, start) {
		return o.serveDegraded(ctx, q, opts, ce, ekey, em, start)
	}

	f, leader := o.flights.join(ekey)
	if !leader {
		o.ctr.coalesced.Add(1)
		em.emit(joinorder.Event{Kind: joinorder.KindCacheCoalesced})
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", joinorder.ErrCanceled, ctx.Err())
		}
		if f.err != nil {
			return nil, f.err
		}
		if f.res != nil {
			res := f.res.serve(ce, o.cfg.now().Sub(start))
			em.emitResult(joinorder.KindCacheHit, res)
			return res, nil
		}
		// The leader's result was untranslatable (e.g. a bushy tree
		// with no left-deep plan): solve independently.
		o.ctr.misses.Add(1)
		return o.cfg.Optimize(ctx, q, em.rewire(opts))
	}
	res, cres, err := o.solve(ctx, q, opts, ce, em)
	o.flights.complete(ekey, f, cres, err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// solve is the miss path run by a flight leader: warm-start lookup,
// underlying solve, cache population. It returns the caller-space result
// and its canonical-space form for coalesced waiters (nil when the result
// carries no left-deep plan).
func (o *Optimizer) solve(ctx context.Context, q *joinorder.Query, opts joinorder.Options, ce *Canonical, em *callEmitter) (*joinorder.Result, *canonicalResult, error) {
	o.ctr.misses.Add(1)
	em.emit(joinorder.Event{Kind: joinorder.KindCacheMiss})

	okey := optionsKey(opts)
	var cs *Canonical
	warmed := false
	if !o.cfg.DisableWarmStart && opts.InitialPlan == nil {
		if c, err := Canonicalize(q, Shape); err == nil {
			cs = c
			if d, ok := o.donors.get("s|"+okey+"|"+cs.Key, o.cfg.now()); ok {
				opts.InitialPlan = &joinorder.Plan{
					Order:     cs.FromCanonical(d.order),
					Operators: slices.Clone(d.ops),
				}
				warmed = true
				o.ctr.warmStarts.Add(1)
				em.emit(joinorder.Event{Kind: joinorder.KindWarmStart})
			}
		}
	}

	res, err := o.cfg.Optimize(ctx, q, em.rewire(opts))
	if err != nil {
		return nil, nil, err
	}
	if warmed && res.MIPStart == "plan" {
		o.ctr.warmStartAccepted.Add(1)
	}
	if res.Plan == nil {
		return res, nil, nil
	}

	now := o.cfg.now()
	if cs == nil && !o.cfg.DisableWarmStart {
		cs, _ = Canonicalize(q, Shape)
	}
	if cs != nil {
		o.storeDonor("s|"+okey+"|"+cs.Key,
			cloneDonor(cs.ToCanonical(res.Plan.Order), res.Plan.Operators), now)
	}
	var cres *canonicalResult
	if res.Status == joinorder.StatusOptimal {
		// Only proven-optimal results are reusable verbatim: a
		// time-limited incumbent from one request must not masquerade
		// as the answer for the next.
		cres = storeForm(res, ce)
		o.storeExact("e|"+okey+"|"+ce.Key, cres, now)
	} else {
		// Still good enough to hand to coalesced waiters of this
		// flight — they asked for exactly this solve.
		cres = storeForm(res, ce)
	}
	return res, cres, nil
}

// degradeBudget reports whether the request's effective time budget is
// tight enough to trigger degraded serving.
func (o *Optimizer) degradeBudget(ctx context.Context, opts joinorder.Options, now time.Time) bool {
	if o.cfg.DegradeUnder <= 0 {
		return false
	}
	budget := opts.EffectiveBudget().TimeLimit
	if dl, ok := ctx.Deadline(); ok {
		if r := dl.Sub(now); budget <= 0 || r < budget {
			budget = r
		}
	}
	return budget > 0 && budget <= o.cfg.DegradeUnder
}

// serveDegraded answers a tight-deadline miss immediately with the
// fallback strategy and starts one background refine solve (deduplicated
// through the flight group) whose result lands in the cache for the next
// request.
func (o *Optimizer) serveDegraded(ctx context.Context, q *joinorder.Query, opts joinorder.Options, ce *Canonical, ekey string, em *callEmitter, start time.Time) (*joinorder.Result, error) {
	o.ctr.degraded.Add(1)
	if f, leader := o.flights.join(ekey); leader {
		// The refine keeps the request's Strategy (and Portfolio): an
		// "auto" request is refined by the full portfolio race, so the
		// cached answer is the race winner's plan, not only the MILP's.
		// Callbacks are severed — the requester already returned.
		bgOpts := opts
		bgOpts.OnEvent, bgOpts.OnPlan = nil, nil
		bgOpts.TimeLimit = o.cfg.BackgroundBudget
		bgOpts.Budget.TimeLimit = o.cfg.BackgroundBudget
		bgCtx := context.WithoutCancel(ctx)
		o.bg.Add(1)
		go func() {
			defer o.bg.Done()
			bctx, cancel := context.WithTimeout(bgCtx, o.cfg.BackgroundBudget)
			defer cancel()
			_, cres, err := o.solve(bctx, q, bgOpts, ce, newCallEmitter(o.cfg.now(), bgOpts))
			o.flights.complete(ekey, f, cres, err)
			o.ctr.refines.Add(1)
		}()
	}
	fopts := opts
	fopts.Strategy = o.cfg.FallbackStrategy
	fopts.Portfolio = nil // portfolio members ride the refine, not the fallback
	res, err := o.cfg.Optimize(ctx, q, em.rewire(fopts))
	if err != nil {
		return nil, err
	}
	em.emitResult(joinorder.KindDegraded, res)
	return res, nil
}

// serve translates a canonical-space cached result into the labels of the
// requesting query (via its canonical form) and stamps serving time.
func (cr *canonicalResult) serve(c *Canonical, elapsed time.Duration) *joinorder.Result {
	out := *cr.res
	pl := &joinorder.Plan{
		Order:     c.FromCanonical(cr.res.Plan.Order),
		Operators: slices.Clone(cr.res.Plan.Operators),
	}
	out.Plan = pl
	out.Tree = pl.LeftDeep()
	out.Elapsed = elapsed
	return &out
}

// storeForm clones res with its plan translated into canonical label
// space. The Tree is dropped and rebuilt per serve.
func storeForm(res *joinorder.Result, c *Canonical) *canonicalResult {
	cp := *res
	cp.Plan = &joinorder.Plan{
		Order:     c.ToCanonical(res.Plan.Order),
		Operators: slices.Clone(res.Plan.Operators),
	}
	cp.Tree = nil
	return &canonicalResult{res: &cp}
}

// optionsKey digests every option that changes what a solve returns.
// Budget fields are read through the Options.EffectiveBudget resolution
// (so the Budget struct and its deprecated flat aliases digest
// identically); of those, TimeLimit and Threads are deliberately
// excluded: they bound effort, not the optimum, and a proven-optimal
// cached plan answers the query under any budget. Callback fields never
// affect results.
func optionsKey(o joinorder.Options) string {
	strat := o.Strategy
	if strat == "" {
		strat = "milp"
	}
	b := o.EffectiveBudget()
	// Portfolio membership changes what "auto" returns, so it is part of
	// the digest; member order is kept (it breaks cost ties).
	return fmt.Sprintf("%s,m%d,op%d,p%d,tr%g,cc%g,gt%g,mn%d,co%t,io%t,ep%t,dp%d,pc%d,sf%g,s%d,pf%v",
		strat, o.Metric, o.Op, o.Precision, o.ThresholdRatio, o.CardCap,
		b.GapTol, b.MaxNodes, o.ChooseOperators, o.InterestingOrders,
		o.ExpensivePredicates, o.MaxDPTables, o.PartitionCap, o.SeamBudgetFrac,
		o.Seed, o.Portfolio)
}

// callEmitter re-serialises the caller's event stream for one cache call:
// cache-layer events and the underlying solver's events share one
// monotonic sequence.
type callEmitter struct {
	em *obs.Emitter
}

func newCallEmitter(start time.Time, opts joinorder.Options) *callEmitter {
	if opts.OnEvent == nil {
		return nil
	}
	onEvent := opts.OnEvent
	c := &callEmitter{}
	c.em = obs.NewEmitter(start, func(ev obs.Event) { onEvent(ev) })
	return c
}

// rewire routes the underlying solve's events through this call's
// sequence. The solver's own elapsed stamps (nonzero) are preserved;
// sequence numbers are reassigned so the merged stream stays monotonic.
func (c *callEmitter) rewire(opts joinorder.Options) joinorder.Options {
	if c == nil {
		return opts
	}
	opts.OnEvent = c.em.Emit
	return opts
}

// emit sends one cache-layer event with no anytime state.
func (c *callEmitter) emit(ev joinorder.Event) {
	if c == nil {
		return
	}
	ev.Worker = -1
	ev.Bound = math.Inf(-1)
	ev.Gap = math.Inf(1)
	c.em.Emit(ev)
}

// emitResult sends one cache-layer event carrying the served result's
// objective and bound as its anytime state.
func (c *callEmitter) emitResult(kind joinorder.EventKind, res *joinorder.Result) {
	if c == nil {
		return
	}
	c.em.Emit(joinorder.Event{
		Kind:         kind,
		Worker:       -1,
		Incumbent:    res.Objective,
		Bound:        res.Bound,
		Gap:          res.Gap,
		HasIncumbent: true,
		Nodes:        res.Nodes,
	})
}

// SortEntries orders an entry listing by descending hits (ties broken on
// key) — the order joinopt -stats prints.
func SortEntries(es []EntryInfo) {
	sort.SliceStable(es, func(i, j int) bool {
		if es[i].Hits != es[j].Hits {
			return es[i].Hits > es[j].Hits
		}
		return es[i].Key < es[j].Key
	})
}
