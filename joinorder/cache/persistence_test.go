package cache

import (
	"context"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache/persist"
)

// openLog opens a persist log in dir, failing the test on error, and
// closes it on cleanup unless the test closes it first (Close is
// idempotent).
func openLog(tb testing.TB, dir string) *persist.Log {
	tb.Helper()
	l, err := persist.Open(persist.Config{Dir: dir})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { l.Close() })
	return l
}

func TestPersistReplayServesWithoutResolving(t *testing.T) {
	dir := t.TempDir()
	qs := []*joinorder.Query{
		workload.Generate(workload.Chain, 6, 3, workload.Config{}),
		workload.Generate(workload.Star, 6, 7, workload.Config{}),
		workload.Generate(workload.Cycle, 5, 9, workload.Config{}),
	}
	costs := make([]float64, len(qs))

	log1 := openLog(t, dir)
	co1 := &countingOptimize{}
	o1 := mustNew(t, Config{Optimize: co1.fn, Persist: log1})
	for i, q := range qs {
		r, err := o1.Optimize(context.Background(), q, milpOpts())
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != joinorder.StatusOptimal {
			t.Fatalf("query %d not optimal: %v", i, r.Status)
		}
		costs[i] = r.Cost
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same directory serves every query from the
	// replayed cache: zero underlying solves.
	log2 := openLog(t, dir)
	co2 := &countingOptimize{}
	o2 := mustNew(t, Config{Optimize: co2.fn, Persist: log2})
	s := o2.Stats()
	if s.Replayed == 0 || s.Entries != len(qs) || s.Donors == 0 {
		t.Fatalf("replay stats = %+v, want %d entries and donors", s, len(qs))
	}
	for i, q := range qs {
		r, err := o2.Optimize(context.Background(), q, milpOpts())
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost != costs[i] {
			t.Fatalf("query %d replayed cost %g, want %g", i, r.Cost, costs[i])
		}
		if err := r.Plan.Validate(q); err != nil {
			t.Fatalf("query %d replayed plan invalid: %v", i, err)
		}
		if r.Tree == nil {
			t.Fatalf("query %d replayed result lost its tree", i)
		}
	}
	if got := co2.calls.Load(); got != 0 {
		t.Fatalf("replayed cache still solved %d times", got)
	}
	if hs := o2.Stats(); hs.Hits != int64(len(qs)) {
		t.Fatalf("post-replay stats = %+v, want %d hits", hs, len(qs))
	}
}

func TestPersistReplayDonorWarmStarts(t *testing.T) {
	dir := t.TempDir()
	q := workload.Generate(workload.Chain, 7, 5, workload.Config{})

	log1 := openLog(t, dir)
	o1 := mustNew(t, Config{Persist: log1})
	if _, err := o1.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Same shape, perturbed cardinalities: the exact entry misses but the
	// replayed donor must warm-start the solve.
	pq := *q
	pq.Tables = append([]joinorder.Table(nil), q.Tables...)
	for i := range pq.Tables {
		pq.Tables[i].Card = pq.Tables[i].Card*1.5 + 7
	}
	log2 := openLog(t, dir)
	o2 := mustNew(t, Config{Persist: log2})
	if _, err := o2.Optimize(context.Background(), &pq, milpOpts()); err != nil {
		t.Fatal(err)
	}
	s := o2.Stats()
	if s.WarmStarts != 1 {
		t.Fatalf("stats = %+v, want 1 warm start from replayed donor", s)
	}
}

func TestPersistMaxBytesBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	n := 6
	log1 := openLog(t, dir)
	o1 := mustNew(t, Config{Persist: log1})
	for seed := int64(0); seed < int64(n); seed++ {
		q := workload.Generate(workload.Chain, 5, seed, workload.Config{})
		if _, err := o1.Optimize(context.Background(), q, milpOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if o1.Len() != n {
		t.Fatalf("seeded %d entries, got %d", n, o1.Len())
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay into a cache whose byte bound holds only a fraction of the
	// log: the overflow is evicted during replay and counted.
	log2 := openLog(t, dir)
	o2 := mustNew(t, Config{Persist: log2, MaxBytes: 2 * 1024})
	s := o2.Stats()
	if s.Entries >= n {
		t.Fatalf("byte bound did not evict: %d entries resident (bytes=%d)", s.Entries, s.Bytes)
	}
	if s.Entries == 0 {
		t.Fatalf("byte bound evicted everything: stats %+v", s)
	}
	if s.ReplayEvicted == 0 {
		t.Fatalf("replay evictions not counted: %+v", s)
	}
	if s.Bytes > 2*1024 {
		t.Fatalf("resident bytes %d exceed bound", s.Bytes)
	}
	if s.ReplayEvicted+int64(s.Entries) < int64(n) {
		t.Fatalf("replayed %d + evicted %d < seeded %d", s.Entries, s.ReplayEvicted, n)
	}
}

func TestInvalidateTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	q := workload.Generate(workload.Chain, 6, 3, workload.Config{})
	keep := workload.Generate(workload.Star, 6, 4, workload.Config{})

	log1 := openLog(t, dir)
	o1 := mustNew(t, Config{Persist: log1})
	for _, qq := range []*joinorder.Query{q, keep} {
		if _, err := o1.Optimize(context.Background(), qq, milpOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if !o1.Invalidate(q, milpOpts()) {
		t.Fatal("Invalidate reported entry absent")
	}
	if o1.Invalidate(q, milpOpts()) {
		t.Fatal("second Invalidate reported entry resident")
	}
	if s := o1.Stats(); s.Invalidated != 1 || s.Entries != 1 {
		t.Fatalf("stats after invalidate = %+v", s)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// After restart the tombstone holds: the invalidated query solves
	// again, the untouched one still hits.
	log2 := openLog(t, dir)
	co := &countingOptimize{}
	o2 := mustNew(t, Config{Optimize: co.fn, Persist: log2})
	if s := o2.Stats(); s.Entries != 1 {
		t.Fatalf("replayed %d entries, want 1 (tombstoned)", s.Entries)
	}
	if _, err := o2.Optimize(context.Background(), keep, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 0 {
		t.Fatalf("kept entry re-solved %d times", got)
	}
	if _, err := o2.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 1 {
		t.Fatalf("invalidated entry served without a solve (calls=%d)", got)
	}
}

func TestImportRecordRoundTripAndNoAnnounce(t *testing.T) {
	dirA := t.TempDir()
	var announced []string
	logA := openLog(t, dirA)
	oA := mustNew(t, Config{
		Persist: logA,
		OnStore: func(kind, key string, val []byte) { announced = append(announced, kind+" "+key) },
	})
	q := workload.Generate(workload.Chain, 6, 3, workload.Config{})
	r, err := oA.Optimize(context.Background(), q, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(announced) != 2 { // one exact entry + one donor
		t.Fatalf("announced %d entries, want 2: %v", len(announced), announced)
	}

	// Ship every announced record to a second node via ImportRecord: it
	// must serve the query without solving, must not re-announce, and the
	// import must survive the second node's own restart.
	dirB := t.TempDir()
	var reAnnounced int
	logB := openLog(t, dirB)
	coB := &countingOptimize{}
	oB := mustNew(t, Config{
		Optimize: coB.fn,
		Persist:  logB,
		OnStore:  func(kind, key string, val []byte) { reAnnounced++ },
	})
	if err := logA.Each(func(rec persist.Record) error {
		return oB.ImportRecord(rec.Kind, rec.Key, rec.Val)
	}); err != nil {
		t.Fatal(err)
	}
	if reAnnounced != 0 {
		t.Fatalf("import re-announced %d records (replication amplification)", reAnnounced)
	}
	if s := oB.Stats(); s.Imported != 2 {
		t.Fatalf("imported = %d, want 2", s.Imported)
	}
	rB, err := oB.Optimize(context.Background(), q, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if coB.calls.Load() != 0 || rB.Cost != r.Cost {
		t.Fatalf("import not served: calls=%d cost %g want %g", coB.calls.Load(), rB.Cost, r.Cost)
	}
	if err := logB.Close(); err != nil {
		t.Fatal(err)
	}
	logB2 := openLog(t, dirB)
	oB2 := mustNew(t, Config{Optimize: coB.fn, Persist: logB2})
	if _, err := oB2.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if coB.calls.Load() != 0 {
		t.Fatal("imported entry did not survive restart")
	}

	// Garbage and empty keys are rejected without poisoning the cache.
	if err := oB.ImportRecord(persist.KindExact, "", []byte(`{}`)); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := oB.ImportRecord(persist.KindExact, "e|x|y", []byte(`not json`)); err == nil {
		t.Fatal("garbage value accepted")
	}
	if err := oB.ImportRecord("weird", "k", []byte(`{}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestCorrectedFeedbackRefreshesCache(t *testing.T) {
	// Optimize against skewed estimates, execute against the truth: the
	// adaptive executor reports a corrected query, the stale entry is
	// invalidated, and the background refresh files a corrected plan under
	// the original fingerprint.
	truth := &joinorder.Query{
		Tables: []joinorder.Table{{Card: 200}, {Card: 200}, {Card: 50}, {Card: 50}, {Card: 50}},
		Predicates: []joinorder.Predicate{
			{Tables: []int{0, 1}, Sel: 0.5},
			{Tables: []int{1, 2}, Sel: 0.02},
			{Tables: []int{2, 3}, Sel: 0.002},
			{Tables: []int{3, 4}, Sel: 0.002},
		},
	}
	est := &joinorder.Query{
		Tables:     append([]joinorder.Table(nil), truth.Tables...),
		Predicates: append([]joinorder.Predicate(nil), truth.Predicates...),
	}
	est.Predicates[0].Sel = 1e-5

	o := mustNew(t, Config{BackgroundBudget: 10 * time.Second})
	ex, err := o.OptimizeExecuted(context.Background(), est, milpOpts(), joinorder.ExecOptions{
		DataQuery: truth,
		DataSeed:  17,
		Feedback:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.CorrectedQuery == nil {
		t.Fatal("feedback execution against corrupted stats produced no correction")
	}
	o.Wait()
	s := o.Stats()
	if s.FeedbackRefreshes != 1 || s.Invalidated == 0 {
		t.Fatalf("stats = %+v, want 1 feedback refresh with invalidation", s)
	}
	// The refreshed entry answers the original query without a solve.
	co := &countingOptimize{}
	o.cfg.Optimize = co.fn
	if _, err := o.Optimize(context.Background(), est, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if co.calls.Load() != 0 {
		t.Fatalf("refreshed entry missing: %d solves after refresh", co.calls.Load())
	}
}

func TestOptimizeExecutedWithoutFeedbackLeavesCacheAlone(t *testing.T) {
	q := workload.Generate(workload.Chain, 5, 2, workload.Config{
		MinLogCard: 1, MaxLogCard: 2,
		MinSel: 0.02, MaxSel: 0.3,
	})
	o := mustNew(t, Config{})
	ex, err := o.OptimizeExecuted(context.Background(), q, milpOpts(), joinorder.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.CorrectedQuery != nil {
		t.Fatal("no-feedback execution reported a corrected query")
	}
	o.Wait()
	if s := o.Stats(); s.FeedbackRefreshes != 0 || s.Invalidated != 0 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Second call hits the entry stored by the first.
	co := &countingOptimize{}
	o.cfg.Optimize = co.fn
	if _, err := o.OptimizeExecuted(context.Background(), q, milpOpts(), joinorder.ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if co.calls.Load() != 0 {
		t.Fatal("second executed call re-solved")
	}
}
