// Package cache provides a concurrent, bounded plan cache in front of the
// public joinorder API: structurally identical queries are recognized by a
// graph-isomorphism-safe fingerprint and served from memory, concurrent
// identical requests coalesce into one solve (singleflight), and queries
// that merely share a topology with a cached one reuse the cached plan as a
// MIP start so branch and bound begins with a finite upper bound.
//
// The fingerprint is computed by canonicalizing the join graph: tables are
// vertices, binary join predicates are weighted edges, and a canonical
// labeling is derived by iterated color refinement with bounded
// individualization backtracking. Relabeling the query's relations never
// changes the fingerprint, so A⋈B⋈C and a permuted C⋈B⋈A hit the same
// cache entry — and the canonical permutation lets a plan cached under one
// labeling be translated into any isomorphic query's labeling.
package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"

	"milpjoin/joinorder"
)

// ErrUncacheable reports a query outside the fingerprint's reach: fewer
// than two tables, non-binary predicates, projection columns, correlated
// groups, or a join graph so symmetric that canonicalization exceeds its
// search budget. Uncacheable queries bypass the cache and are solved
// directly; correctness never depends on cacheability.
var ErrUncacheable = errors.New("cache: query not cacheable")

// Mode selects what the fingerprint distinguishes.
type Mode int

const (
	// Exact fingerprints distinguish cardinalities and selectivities
	// bit-for-bit: equal fingerprints mean the queries are isomorphic
	// with identical statistics, so a cached plan, its cost, and its
	// optimality proof all transfer.
	Exact Mode = iota
	// Shape fingerprints reduce cardinalities and selectivities to their
	// ranks (order statistics) within the query: equal fingerprints mean
	// the queries share a topology and the same relative ordering of
	// statistics — the "same query, perturbed cardinalities" case — so a
	// cached plan transfers as a warm start but not as an answer.
	Shape
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Exact:
		return "exact"
	case Shape:
		return "shape"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Canonical is the canonicalization of a query: a fingerprint key that is
// invariant under relabeling of the query's tables, plus the permutation
// that maps the query's table indices to canonical positions. Two queries
// with equal keys are isomorphic (for the mode's notion of equality), and
// composing one query's Perm with the other's inverse yields the
// isomorphism — which is how cached plans are translated between label
// spaces.
type Canonical struct {
	// Key is the hex digest of the canonical encoding. Equal keys imply
	// isomorphic queries; the digest is collision-resistant (SHA-256).
	Key string
	// Perm maps an original table index to its canonical position.
	Perm []int
	// inv maps a canonical position back to the original table index.
	inv []int
}

// ToCanonical translates a join order over original table indices into
// canonical label space.
func (c *Canonical) ToCanonical(order []int) []int {
	out := make([]int, len(order))
	for i, t := range order {
		out[i] = c.Perm[t]
	}
	return out
}

// FromCanonical translates a join order in canonical label space back to
// the query's original table indices.
func (c *Canonical) FromCanonical(order []int) []int {
	out := make([]int, len(order))
	for i, t := range order {
		out[i] = c.inv[t]
	}
	return out
}

// Canonicalization search budgets. Refinement discretizes almost every
// real query (statistics are floats; exact ties are rare), so the
// backtracking search over tied vertices is bounded: fully symmetric cells
// (interchangeable tables, e.g. the identical leaves of a synthetic star)
// cost one branch, and anything beyond the budget is declared uncacheable
// rather than risking super-polynomial work. The budget trips on the size
// of the label-invariant search tree, so whether a query is cacheable is
// itself invariant under relabeling.
const (
	maxCanonLeaves = 2048
	maxCanonNodes  = 1 << 14
)

var errCanonBudget = errors.New("cache: canonicalization budget exceeded")

// Canonicalize computes the canonical form of the query's join graph under
// the given mode. It returns ErrUncacheable for queries the fingerprint
// cannot safely represent.
func Canonicalize(q *joinorder.Query, mode Mode) (*Canonical, error) {
	g, err := buildGraph(q, mode)
	if err != nil {
		return nil, err
	}
	s := &canonSearch{g: g}
	if err := s.search(g.initialColors()); err != nil {
		if errors.Is(err, errCanonBudget) {
			return nil, fmt.Errorf("%w: join graph too symmetric (canonicalization budget exceeded)", ErrUncacheable)
		}
		return nil, err
	}
	sum := sha256.Sum256(s.bestEnc)
	c := &Canonical{
		Key:  hex.EncodeToString(sum[:]),
		Perm: s.bestPerm,
		inv:  make([]int, len(s.bestPerm)),
	}
	for orig, pos := range c.Perm {
		c.inv[pos] = orig
	}
	return c, nil
}

// pairWeight is the invariant of one predicate on a table pair: selectivity
// and evaluation cost, as raw float bits (Exact) or ranks (Shape).
type pairWeight struct{ sel, eval uint64 }

// graph is the abstract weighted join graph being canonicalized.
type graph struct {
	n    int
	vert []uint64    // per-vertex invariant hash (cardinality, sorted flag)
	vdat [][2]uint64 // per-vertex invariant data, emitted into encodings
	adj  [][]uint64  // adj[v][u]: weight hash of pair {v,u}, 0 when no edge
	pair map[[2]int][]pairWeight
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// buildGraph validates cacheability and assembles the invariant-weighted
// graph for the mode.
func buildGraph(q *joinorder.Query, mode Mode) (*graph, error) {
	n := len(q.Tables)
	if n < 2 {
		return nil, fmt.Errorf("%w: fewer than two tables", ErrUncacheable)
	}
	if len(q.Columns) > 0 {
		return nil, fmt.Errorf("%w: projection columns", ErrUncacheable)
	}
	if len(q.Correlated) > 0 {
		return nil, fmt.Errorf("%w: correlated predicate groups", ErrUncacheable)
	}
	for i := range q.Predicates {
		if len(q.Predicates[i].Tables) != 2 {
			return nil, fmt.Errorf("%w: predicate %d is not binary", ErrUncacheable, i)
		}
	}

	// Invariant encodings of the statistics: raw float bits for Exact,
	// ranks over the query's own value sets for Shape.
	card := func(v float64) uint64 { return math.Float64bits(v) }
	sel := card
	eval := card
	if mode == Shape {
		cards := make([]float64, 0, n)
		for i := range q.Tables {
			cards = append(cards, q.Tables[i].Card)
		}
		sels := make([]float64, 0, len(q.Predicates))
		evals := make([]float64, 0, len(q.Predicates))
		for i := range q.Predicates {
			sels = append(sels, q.Predicates[i].Sel)
			evals = append(evals, q.Predicates[i].EvalCostPerTuple)
		}
		card = ranker(cards)
		sel = ranker(sels)
		eval = ranker(evals)
	}

	g := &graph{
		n:    n,
		vert: make([]uint64, n),
		vdat: make([][2]uint64, n),
		adj:  make([][]uint64, n),
		pair: make(map[[2]int][]pairWeight),
	}
	for i := range q.Tables {
		var sorted uint64
		if q.Tables[i].Sorted {
			sorted = 1
		}
		g.vdat[i] = [2]uint64{card(q.Tables[i].Card), sorted}
		g.vert[i] = fnvMix(fnvOffset, g.vdat[i][0], g.vdat[i][1])
	}
	for i := range q.Predicates {
		p := &q.Predicates[i]
		k := pairKey(p.Tables[0], p.Tables[1])
		g.pair[k] = append(g.pair[k], pairWeight{sel: sel(p.Sel), eval: eval(p.EvalCostPerTuple)})
	}
	// Parallel predicates on the same pair form an (order-canonical)
	// multiset; sort so the weight is label-invariant.
	for k, ws := range g.pair {
		sort.Slice(ws, func(a, b int) bool {
			if ws[a].sel != ws[b].sel {
				return ws[a].sel < ws[b].sel
			}
			return ws[a].eval < ws[b].eval
		})
		g.pair[k] = ws
	}
	for v := 0; v < n; v++ {
		g.adj[v] = make([]uint64, n)
	}
	for k, ws := range g.pair {
		h := uint64(fnvOffset)
		for _, w := range ws {
			h = fnvMix(h, w.sel, w.eval)
		}
		h = fnvMix(h, uint64(len(ws)), 0x9e3779b97f4a7c15)
		if h == 0 {
			h = 1 // reserve 0 for "no edge"
		}
		g.adj[k[0]][k[1]] = h
		g.adj[k[1]][k[0]] = h
	}
	return g, nil
}

// ranker maps each float value to its rank among the distinct values of
// vals (0 for the smallest). Queries that differ only by a monotone
// perturbation of their statistics receive identical ranks.
func ranker(vals []float64) func(float64) uint64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	rank := make(map[uint64]uint64, len(sorted))
	for _, v := range sorted {
		b := math.Float64bits(v)
		if _, ok := rank[b]; !ok {
			rank[b] = uint64(len(rank))
		}
	}
	return func(v float64) uint64 { return rank[math.Float64bits(v)] }
}

const fnvOffset = 0xcbf29ce484222325

// fnvMix folds two words into a running FNV-1a style hash.
func fnvMix(h, a, b uint64) uint64 {
	const prime = 0x100000001b3
	for i := 0; i < 8; i++ {
		h = (h ^ (a & 0xff)) * prime
		a >>= 8
	}
	for i := 0; i < 8; i++ {
		h = (h ^ (b & 0xff)) * prime
		b >>= 8
	}
	return h
}

func (g *graph) initialColors() []uint64 {
	return append([]uint64(nil), g.vert...)
}

// refine runs Weisfeiler–Lehman color refinement to a fixpoint: each
// vertex's color absorbs the sorted multiset of (neighbor color, edge
// weight) pairs over all other vertices until no refinement round splits a
// color class. The refined partition is an invariant of the abstract
// graph.
func (g *graph) refine(colors []uint64) []uint64 {
	n := g.n
	cur := append([]uint64(nil), colors...)
	sig := make([]uint64, 0, n-1)
	next := make([]uint64, n)
	for {
		for v := 0; v < n; v++ {
			sig = sig[:0]
			for u := 0; u < n; u++ {
				if u == v {
					continue
				}
				sig = append(sig, fnvMix(fnvOffset, cur[u], g.adj[v][u]))
			}
			sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
			h := fnvMix(fnvOffset, cur[v], 0)
			for _, s := range sig {
				h = fnvMix(h, s, 0)
			}
			next[v] = h
		}
		if samePartition(cur, next) {
			return cur
		}
		cur = append(cur[:0], next...)
	}
}

// samePartition reports whether two colorings induce the same partition of
// the vertices.
func samePartition(a, b []uint64) bool {
	repA := make(map[uint64]int)
	repB := make(map[uint64]int)
	for i := range a {
		ra, okA := repA[a[i]]
		rb, okB := repB[b[i]]
		if okA != okB {
			return false
		}
		if okA && ra != rb {
			return false
		}
		if !okA {
			repA[a[i]] = i
			repB[b[i]] = i
		}
	}
	return true
}

// cells groups vertices by color, ordered by color value — an ordering
// that is invariant under relabeling because colors are functions of the
// abstract graph.
func cells(colors []uint64) [][]int {
	byColor := make(map[uint64][]int)
	order := make([]uint64, 0)
	for v, c := range colors {
		if _, ok := byColor[c]; !ok {
			order = append(order, c)
		}
		byColor[c] = append(byColor[c], v)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	out := make([][]int, len(order))
	for i, c := range order {
		out[i] = byColor[c]
	}
	return out
}

// uniformCell reports whether every member of the cell is interchangeable
// with every other: all intra-cell pair weights are equal and every member
// sees the same weight towards each external vertex. Permuting such a cell
// is an automorphism, so canonicalization needs to branch on only one
// member — this is what keeps synthetic symmetric queries (identical star
// leaves, uniform cliques) cheap to canonicalize.
func (g *graph) uniformCell(cell []int) bool {
	if len(cell) < 2 {
		return true
	}
	intra := g.adj[cell[0]][cell[1]]
	for i := 0; i < len(cell); i++ {
		for j := i + 1; j < len(cell); j++ {
			if g.adj[cell[i]][cell[j]] != intra {
				return false
			}
		}
	}
	inCell := make(map[int]bool, len(cell))
	for _, v := range cell {
		inCell[v] = true
	}
	for x := 0; x < g.n; x++ {
		if inCell[x] {
			continue
		}
		w := g.adj[cell[0]][x]
		for _, v := range cell[1:] {
			if g.adj[v][x] != w {
				return false
			}
		}
	}
	return true
}

// canonSearch is the individualization-refinement search for the minimal
// canonical encoding. It explores the whole (budget-bounded) search tree
// without pruning, so the set of visited leaves — and hence both the
// resulting minimal encoding and whether the budget trips — is invariant
// under relabeling of the input.
type canonSearch struct {
	g        *graph
	bestEnc  []byte
	bestPerm []int
	leaves   int
	nodes    int
}

func (s *canonSearch) search(colors []uint64) error {
	s.nodes++
	if s.nodes > maxCanonNodes {
		return errCanonBudget
	}
	colors = s.g.refine(colors)
	part := cells(colors)

	target := -1
	for i, cell := range part {
		if len(cell) > 1 {
			target = i
			break
		}
	}
	if target < 0 {
		// Discrete partition: a complete canonical labeling.
		s.leaves++
		if s.leaves > maxCanonLeaves {
			return errCanonBudget
		}
		enc, perm := s.g.encode(part)
		if s.bestEnc == nil || bytes.Compare(enc, s.bestEnc) < 0 {
			s.bestEnc, s.bestPerm = enc, perm
		}
		return nil
	}

	cell := part[target]
	candidates := cell
	if s.g.uniformCell(cell) {
		// Fully interchangeable members: any branch is an automorphic
		// image of any other, one suffices.
		candidates = cell[:1]
	}
	for _, v := range candidates {
		branch := append([]uint64(nil), colors...)
		branch[v] = fnvMix(branch[v], 0x6a09e667f3bcc909, 0xbb67ae8584caa73b)
		if err := s.search(branch); err != nil {
			return err
		}
	}
	return nil
}

// encode serializes the graph under the discrete partition's labeling. The
// encoding contains the complete invariant data (vertex statistics and
// every edge's weight multiset), so equal encodings imply isomorphic
// queries — fingerprint collisions between genuinely different queries
// would require a SHA-256 collision.
func (g *graph) encode(part [][]int) ([]byte, []int) {
	n := g.n
	perm := make([]int, n) // original -> canonical
	inv := make([]int, n)  // canonical -> original
	for pos, cell := range part {
		perm[cell[0]] = pos
		inv[pos] = cell[0]
	}
	var buf bytes.Buffer
	w64 := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			binary.BigEndian.PutUint64(b[:], v)
			buf.Write(b[:])
		}
	}
	w64(uint64(n))
	for pos := 0; pos < n; pos++ {
		v := inv[pos]
		w64(g.vdat[v][0], g.vdat[v][1])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ws := g.pair[pairKey(inv[i], inv[j])]
			if len(ws) == 0 {
				continue
			}
			w64(uint64(i), uint64(j), uint64(len(ws)))
			for _, w := range ws {
				w64(w.sel, w.eval)
			}
		}
	}
	return buf.Bytes(), perm
}
