package cache

import (
	"context"

	"milpjoin/joinorder"
)

// OptimizeExecuted optimizes through the cache and then runs the chosen
// plan, mirroring joinorder.OptimizeExecuted. It additionally closes the
// cardinality feedback loop into the cache: when feedback execution
// reports a CorrectedQuery — measured join sizes contradicted the
// statistics the cached plan was built from — the stale entry is
// invalidated immediately and a background solve of the corrected query
// refreshes the cache, so the next request for this fingerprint gets a
// plan consistent with observed reality instead of the stale one.
func (o *Optimizer) OptimizeExecuted(ctx context.Context, q *joinorder.Query, opts joinorder.Options, eo joinorder.ExecOptions) (*joinorder.Execution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := o.Optimize(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	ex, err := joinorder.ExecuteResult(ctx, res, q, opts, eo)
	if err != nil {
		return nil, err
	}
	if ex.CorrectedQuery != nil && ex.MaxQError >= qerrorThreshold(eo) {
		o.refreshCorrected(ctx, q, ex.CorrectedQuery, opts)
	}
	return ex, nil
}

// qerrorThreshold mirrors the adaptive executor's default: feedback runs
// always report a CorrectedQuery, but only a misestimate past the
// re-optimization threshold justifies dropping a cached plan — tiny
// corrections would otherwise evict good entries on every execution.
func qerrorThreshold(eo joinorder.ExecOptions) float64 {
	if eo.QErrorThreshold > 0 {
		return eo.QErrorThreshold
	}
	return 2
}

// refreshCorrected is the cache half of the feedback loop: drop the entry
// built from stale statistics, then re-solve with the corrected
// selectivities in the background and file the answer under the original
// query's fingerprint — that is the key future requests (which carry the
// same stale statistics) will look up.
func (o *Optimizer) refreshCorrected(ctx context.Context, q, corrected *joinorder.Query, opts joinorder.Options) {
	o.Invalidate(q, opts)
	o.ctr.feedbackRefreshes.Add(1)

	// The background solve is severed from the request: no callbacks, its
	// own budget, survives the caller's cancellation.
	bgOpts := opts
	bgOpts.OnEvent, bgOpts.OnPlan = nil, nil
	bgOpts.InitialPlan = nil
	bgOpts.TimeLimit = o.cfg.BackgroundBudget
	bgOpts.Budget.TimeLimit = o.cfg.BackgroundBudget
	bgCtx := context.WithoutCancel(ctx)
	o.bg.Add(1)
	go func() {
		defer o.bg.Done()
		bctx, cancel := context.WithTimeout(bgCtx, o.cfg.BackgroundBudget)
		defer cancel()
		// Solving through o.Optimize populates the corrected query's own
		// fingerprint and donor entries as a side effect.
		res, err := o.cfg.Optimize(bctx, corrected, bgOpts)
		if err != nil || res.Plan == nil || res.Status != joinorder.StatusOptimal {
			return
		}
		// File the corrected plan under the ORIGINAL query's exact key:
		// both queries share a structure, so the original's canonical
		// permutation translates the plan.
		ce, cerr := Canonicalize(q, Exact)
		if cerr != nil {
			return
		}
		o.storeExact("e|"+optionsKey(opts)+"|"+ce.Key, storeForm(res, ce), o.cfg.now())
	}()
}
