package persist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Each(func(rec Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPutReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		if err := l.Put(KindExact, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Put(KindDonor, "d0", []byte(`{"order":[0,1]}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, Config{Dir: dir})
	recs := collect(t, l2)
	if len(recs) != 11 {
		t.Fatalf("replayed %d records, want 11", len(recs))
	}
	// Append order is preserved.
	for i := 0; i < 10; i++ {
		if recs[i].Key != fmt.Sprintf("k%d", i) || recs[i].Kind != KindExact {
			t.Fatalf("record %d = %+v, want k%d/exact", i, recs[i], i)
		}
		if string(recs[i].Val) != fmt.Sprintf(`{"v":%d}`, i) {
			t.Fatalf("record %d val %s", i, recs[i].Val)
		}
	}
	if recs[10].Kind != KindDonor || recs[10].Key != "d0" {
		t.Fatalf("last record %+v, want donor d0", recs[10])
	}
}

func TestOverwriteAndTombstone(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	l.Put(KindExact, "a", []byte(`{"v":1}`))
	l.Put(KindExact, "b", []byte(`{"v":2}`))
	l.Put(KindExact, "a", []byte(`{"v":3}`)) // overwrite
	l.Delete(KindExact, "b")                 // tombstone
	l.Close()

	l2 := openT(t, Config{Dir: dir})
	recs := collect(t, l2)
	if len(recs) != 1 || recs[0].Key != "a" || string(recs[0].Val) != `{"v":3}` {
		t.Fatalf("live records %+v, want only a=v3", recs)
	}
	if s := l2.Stats(); s.LiveRecords != 1 || s.DeadBytes == 0 {
		t.Fatalf("stats %+v, want 1 live record and nonzero dead bytes", s)
	}
}

// TestTornTailRecovery is the crash-recovery contract: kill the writer
// mid-append (simulated by truncating into the final frame), reopen, and
// the store drops only the torn record and serves every earlier one.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Put(KindExact, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := l.Stats().FileBytes
	l.Close()

	// Tear the final record: drop its last 3 bytes.
	path := filepath.Join(dir, logName)
	if err := os.Truncate(path, sizeBefore-3); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, Config{Dir: dir})
	recs := collect(t, l2)
	if len(recs) != n-1 {
		t.Fatalf("recovered %d records, want %d (only the torn tail dropped)", len(recs), n-1)
	}
	for i, rec := range recs {
		if rec.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("record %d is %q", i, rec.Key)
		}
	}
	if s := l2.Stats(); s.TornBytesDropped == 0 {
		t.Fatalf("stats %+v, want TornBytesDropped > 0", s)
	}

	// The recovered log accepts appends and they survive another cycle.
	if err := l2.Put(KindExact, "after", []byte(`{"v":99}`)); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := openT(t, Config{Dir: dir})
	recs = collect(t, l3)
	if len(recs) != n || recs[n-1].Key != "after" {
		t.Fatalf("after recovery+append: %d records, last %q", len(recs), recs[len(recs)-1].Key)
	}
}

// TestCorruptMidFrameRecovery flips a byte inside an earlier record's
// payload: recovery keeps everything before the corrupt frame and drops
// it plus the (unreachable) frames after it — never serves corrupt data.
func TestCorruptMidFrameRecovery(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	var offsets []int64
	for i := 0; i < 10; i++ {
		offsets = append(offsets, l.Stats().FileBytes)
		l.Put(KindExact, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf(`{"v":%d}`, i)))
	}
	l.Close()

	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one payload byte of record 7.
	data[offsets[7]+frameHead+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, Config{Dir: dir})
	recs := collect(t, l2)
	if len(recs) != 7 {
		t.Fatalf("recovered %d records, want 7 (corruption at record 7)", len(recs))
	}
}

func TestEmptyAndHeaderOnlyLogs(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	if recs := collect(t, l); len(recs) != 0 {
		t.Fatalf("fresh log has %d records", len(recs))
	}
	l.Close()
	// Header-only reopen.
	l2 := openT(t, Config{Dir: dir})
	if recs := collect(t, l2); len(recs) != 0 {
		t.Fatalf("header-only log has %d records", len(recs))
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, logName)
	if err := os.WriteFile(path, []byte("NOTALOG0"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted a file with bad magic")
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	// Tiny thresholds so the test triggers compaction naturally.
	l := openT(t, Config{Dir: dir, CompactMinBytes: 1, CompactFraction: 0.99})
	big := make([]byte, 1024)
	for i := range big {
		big[i] = 'x'
	}
	val := []byte(fmt.Sprintf(`{"v":%q}`, big))
	for i := 0; i < 100; i++ {
		if err := l.Put(KindExact, "hot", val); err != nil { // same key: 99 dead frames
			t.Fatal(err)
		}
	}
	l.Put(KindExact, "cold", []byte(`{"v":1}`))
	before := l.Stats()
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.FileBytes >= before.FileBytes {
		t.Fatalf("compaction did not shrink the file: %d -> %d", before.FileBytes, after.FileBytes)
	}
	if after.DeadBytes != 0 || after.LiveRecords != 2 {
		t.Fatalf("post-compaction stats %+v, want 0 dead / 2 live", after)
	}
	recs := collect(t, l)
	if len(recs) != 2 || recs[0].Key != "hot" || recs[1].Key != "cold" {
		t.Fatalf("post-compaction records %+v", recs)
	}

	// Appends after compaction land in the new file and survive reopen.
	l.Put(KindExact, "new", []byte(`{"v":2}`))
	l.Close()
	l2 := openT(t, Config{Dir: dir})
	if recs := collect(t, l2); len(recs) != 3 {
		t.Fatalf("after compaction+append+reopen: %d records, want 3", len(recs))
	}
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir, CompactMinBytes: 1, CompactFraction: 0.3})
	for i := 0; i < 200; i++ {
		l.Put(KindExact, "k", []byte(`{"v":1}`)) // everything but the last is dead
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no background compaction after 200 overwrites: %+v", l.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, Config{Dir: dir, Policy: pol, SyncEvery: 5 * time.Millisecond})
			l.Put(KindExact, "k", []byte(`{"v":1}`))
			if pol == SyncAlways && l.Stats().Syncs == 0 {
				t.Fatal("SyncAlways did not sync on append")
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2 := openT(t, Config{Dir: dir})
			if recs := collect(t, l2); len(recs) != 1 {
				t.Fatalf("%d records after reopen", len(recs))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{"": SyncInterval, "interval": SyncInterval, "always": SyncAlways, "none": SyncNone} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir, CompactMinBytes: 1, CompactFraction: 0.6})
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := fmt.Sprintf("w%d-%d", w, i%10) // overwrites create dead bytes
				if err := l.Put(KindExact, key, []byte(fmt.Sprintf(`{"v":%d}`, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, Config{Dir: dir})
	recs := collect(t, l2)
	if len(recs) != writers*10 {
		t.Fatalf("replayed %d live records, want %d", len(recs), writers*10)
	}
}

// TestFrameBinaryLayout pins the on-disk layout so future refactors fail
// loudly instead of silently invalidating existing cache directories.
func TestFrameBinaryLayout(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, Config{Dir: dir})
	l.Put(KindExact, "k", []byte(`{"v":1}`))
	l.Close()
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:len(logMagic)]) != logMagic {
		t.Fatalf("header %q", data[:len(logMagic)])
	}
	n := binary.LittleEndian.Uint32(data[len(logMagic):])
	if int(n) != len(data)-len(logMagic)-frameHead {
		t.Fatalf("frame length %d does not cover the remaining %d payload bytes",
			n, len(data)-len(logMagic)-frameHead)
	}
}
