// Package persist is the disk-backed half of the plan cache: an
// append-only record log that survives process restarts, so a daemon
// reopened against its cache directory serves previously-seen query
// fingerprints from disk instead of re-paying cold MILP solves.
//
// The format is deliberately simple — one file of length- and
// CRC-framed records — because the write path must never slow a solve
// and the read path runs exactly once, at startup:
//
//	header:  "JOPLOG1\n"
//	record:  uint32 payload length | uint32 CRC-32C of payload | payload
//	payload: JSON {"op":"put"|"del","kind":"exact"|"donor","key":...,"val":...}
//
// Crash safety comes from append-only discipline: a crash can tear at
// most the final record. Open scans the log, truncates the first torn or
// corrupt frame and everything after it (counting the dropped bytes),
// and serves every earlier record — the store never refuses to start
// because of a dirty shutdown.
//
// Space is reclaimed by compaction: when the dead fraction (overwritten
// and tombstoned records) passes CompactFraction, a background pass
// rewrites only the live records into a temporary file and atomically
// renames it over the log.
package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record ops and kinds. Kinds mirror the cache's two stores; the log
// itself treats them as opaque routing tags.
const (
	OpPut    = "put"
	OpDelete = "del"

	KindExact = "exact"
	KindDonor = "donor"
)

// Record is one logged cache mutation.
type Record struct {
	Op   string          `json:"op"`
	Kind string          `json:"kind"`
	Key  string          `json:"key"`
	Val  json.RawMessage `json:"val,omitempty"`
}

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs on a background ticker (default 100ms): a
	// crash loses at most the last interval's entries. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at the cost of one fsync per cache store.
	SyncAlways
	// SyncNone leaves flushing to the OS: fastest, loses the page-cache
	// tail on power failure (an ordinary process crash still loses
	// nothing — the pages are the kernel's).
	SyncNone
)

// String names the policy (the -persist-sync flag values).
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps a flag value onto its policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("persist: unknown sync policy %q (want interval, always, or none)", s)
	}
}

// Config configures a Log. Only Dir is required.
type Config struct {
	// Dir is the cache directory; the log lives at Dir/plans.log. The
	// directory is created if absent.
	Dir string
	// Policy is the fsync policy (default SyncInterval).
	Policy SyncPolicy
	// SyncEvery is the SyncInterval ticker period (default 100ms).
	SyncEvery time.Duration
	// CompactFraction triggers background compaction when dead bytes
	// (overwritten puts, tombstones) exceed this fraction of the file
	// (default 0.5). Compaction never triggers below CompactMinBytes.
	CompactFraction float64
	// CompactMinBytes is the minimum file size before compaction is
	// considered (default 1 MiB).
	CompactMinBytes int64
}

func (c Config) withDefaults() Config {
	if c.SyncEvery == 0 {
		c.SyncEvery = 100 * time.Millisecond
	}
	if c.CompactFraction == 0 {
		c.CompactFraction = 0.5
	}
	if c.CompactMinBytes == 0 {
		c.CompactMinBytes = 1 << 20
	}
	return c
}

// Stats is a point-in-time snapshot of the log.
type Stats struct {
	// Path is the log file's location.
	Path string `json:"path"`
	// LiveRecords is the number of records a replay would yield.
	LiveRecords int `json:"live_records"`
	// FileBytes is the log file's current size.
	FileBytes int64 `json:"file_bytes"`
	// DeadBytes counts bytes held by overwritten or deleted records.
	DeadBytes int64 `json:"dead_bytes"`
	// TornBytesDropped counts bytes truncated at Open because the tail
	// record was torn or corrupt.
	TornBytesDropped int64 `json:"torn_bytes_dropped"`
	// Compactions counts completed compaction passes.
	Compactions int64 `json:"compactions"`
	// Syncs counts explicit fsyncs issued.
	Syncs int64 `json:"syncs"`
	// AppendErrors counts failed appends (the in-memory cache keeps
	// serving; the entry is simply not durable).
	AppendErrors int64 `json:"append_errors"`
}

const (
	logMagic    = "JOPLOG1\n"
	logName     = "plans.log"
	frameHead   = 8        // uint32 length + uint32 crc
	maxRecBytes = 64 << 20 // sanity bound on one record; larger frames are corruption
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is an open plan log. All methods are safe for concurrent use.
type Log struct {
	cfg  Config
	path string

	mu        sync.Mutex
	f         *os.File
	size      int64
	liveBytes map[string]int64 // live key -> framed bytes of its latest put
	dead      int64            // bytes of overwritten/tombstoned frames
	torn      int64
	closed    bool
	dirty     bool // bytes written since the last fsync
	compactMu sync.Mutex

	compactions  atomic.Int64
	syncs        atomic.Int64
	appendErrors atomic.Int64

	stopSync chan struct{}
	syncDone chan struct{}
}

// Open opens (creating if needed) the log under cfg.Dir, recovers from a
// torn tail, and indexes the live records. Replay the surviving records
// with Each.
func Open(cfg Config) (*Log, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("persist: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	path := filepath.Join(cfg.Dir, logName)
	// O_APPEND: every write lands at the end regardless of where a scan
	// left the read position, so replay and append cannot interleave badly.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	l := &Log{
		cfg:       cfg,
		path:      path,
		f:         f,
		liveBytes: make(map[string]int64),
		stopSync:  make(chan struct{}),
		syncDone:  make(chan struct{}),
	}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	if cfg.Policy == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.syncDone)
	}
	return l, nil
}

// recover scans the log, builds the live index, and truncates the first
// torn or corrupt frame and everything after it.
func (l *Log) recover() error {
	info, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if info.Size() == 0 {
		if _, err := l.f.Write([]byte(logMagic)); err != nil {
			return fmt.Errorf("persist: writing header: %w", err)
		}
		l.size = int64(len(logMagic))
		return nil
	}
	good, err := l.scan(func(rec Record, framed int64) {
		l.applyIndex(rec, framed)
	})
	if err != nil {
		return err
	}
	if good < info.Size() {
		l.torn = info.Size() - good
		if err := l.f.Truncate(good); err != nil {
			return fmt.Errorf("persist: truncating torn tail: %w", err)
		}
	}
	l.size = good
	return nil
}

// applyIndex folds one scanned record into the live index and dead-byte
// accounting.
func (l *Log) applyIndex(rec Record, framed int64) {
	k := rec.Kind + "|" + rec.Key
	if prev, ok := l.liveBytes[k]; ok {
		l.dead += prev
	}
	switch rec.Op {
	case OpPut:
		l.liveBytes[k] = framed
	case OpDelete:
		delete(l.liveBytes, k)
		l.dead += framed // the tombstone itself is dead weight
	}
}

// scan reads frames from the start of the file, calling fn for each valid
// record, and returns the offset of the first invalid byte (== file size
// when the log is clean). I/O errors other than a clean EOF boundary are
// returned; framing errors (short frame, bad CRC, absurd length) are a
// torn tail, not an error.
func (l *Log) scan(fn func(rec Record, framed int64)) (int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("persist: %w", err)
	}
	br := bufio.NewReaderSize(l.f, 1<<20)
	head := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, nil // shorter than the header: rewrite from scratch
	}
	if string(head) != logMagic {
		return 0, fmt.Errorf("persist: %s is not a plan log (bad magic)", l.path)
	}
	off := int64(len(logMagic))
	var frame [frameHead]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return off, nil // clean end or torn frame header
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecBytes {
			return off, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return off, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return off, nil // corrupt frame: recover to here
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return off, nil
		}
		framed := int64(frameHead) + int64(n)
		fn(rec, framed)
		off += framed
	}
}

// Each replays the live records — every put not later overwritten or
// tombstoned — in append order. It re-reads the file, so memory stays
// proportional to the live set only for the duration of the call. The
// callback must not call back into the Log.
func (l *Log) Each(fn func(Record) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: log closed")
	}
	type liveRec struct {
		rec Record
		seq int64
	}
	last := make(map[string]liveRec)
	var seq int64
	if _, err := l.scan(func(rec Record, _ int64) {
		k := rec.Kind + "|" + rec.Key
		switch rec.Op {
		case OpPut:
			seq++
			last[k] = liveRec{rec: rec, seq: seq}
		case OpDelete:
			delete(last, k)
		}
	}); err != nil {
		return err
	}
	ordered := make([]liveRec, 0, len(last))
	for _, lr := range last {
		ordered = append(ordered, lr)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, lr := range ordered {
		if err := fn(lr.rec); err != nil {
			return err
		}
	}
	return nil
}

// Put appends a live record for (kind, key). val must be self-contained
// JSON. Best effort beyond the append itself: a later crash may lose it
// per the sync policy.
func (l *Log) Put(kind, key string, val []byte) error {
	return l.append(Record{Op: OpPut, Kind: kind, Key: key, Val: json.RawMessage(val)})
}

// Delete appends a tombstone for (kind, key): the entry is gone after the
// next replay even though earlier puts remain physically in the file
// until compaction.
func (l *Log) Delete(kind, key string) error {
	return l.append(Record{Op: OpDelete, Kind: kind, Key: key})
}

func (l *Log) append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		l.appendErrors.Add(1)
		return fmt.Errorf("persist: %w", err)
	}
	if len(payload) > maxRecBytes {
		l.appendErrors.Add(1)
		return fmt.Errorf("persist: record %d bytes exceeds limit", len(payload))
	}
	buf := make([]byte, frameHead+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHead:], payload)

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("persist: log closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		l.appendErrors.Add(1)
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	l.size += int64(len(buf))
	l.dirty = true
	l.applyIndex(rec, int64(len(buf)))
	syncNow := l.cfg.Policy == SyncAlways
	needCompact := l.needCompactLocked()
	if syncNow {
		err = l.syncLocked()
	}
	l.mu.Unlock()

	if needCompact {
		go l.Compact() //nolint:errcheck // best-effort background pass
	}
	return err
}

// needCompactLocked reports whether the dead fraction warrants a
// compaction pass. Called with mu held.
func (l *Log) needCompactLocked() bool {
	return l.size >= l.cfg.CompactMinBytes &&
		float64(l.dead) > l.cfg.CompactFraction*float64(l.size)
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.Sync() //nolint:errcheck // surfaces via Stats on close paths
		case <-l.stopSync:
			return
		}
	}
}

// Compact rewrites only the live records into a fresh file and atomically
// renames it over the log. Appends block for the duration; the pass is
// proportional to the live set, so blocking stays short. Concurrent
// Compact calls coalesce (the second waits, finds nothing dead, returns).
func (l *Log) Compact() error {
	l.compactMu.Lock()
	defer l.compactMu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("persist: log closed")
	}
	if l.dead == 0 {
		return nil
	}

	tmpPath := l.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename

	bw := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := bw.WriteString(logMagic); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	newSize := int64(len(logMagic))
	newLive := make(map[string]int64, len(l.liveBytes))

	// Collect the live records (same two-pass shape as Each, but under
	// the lock we already hold).
	type liveRec struct {
		rec Record
		seq int64
	}
	last := make(map[string]liveRec)
	var seq int64
	if _, err := l.scan(func(rec Record, _ int64) {
		k := rec.Kind + "|" + rec.Key
		switch rec.Op {
		case OpPut:
			seq++
			last[k] = liveRec{rec: rec, seq: seq}
		case OpDelete:
			delete(last, k)
		}
	}); err != nil {
		tmp.Close()
		return err
	}
	ordered := make([]liveRec, 0, len(last))
	for _, lr := range last {
		ordered = append(ordered, lr)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })

	var frame [frameHead]byte
	for _, lr := range ordered {
		payload, err := json.Marshal(lr.rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		if _, err := bw.Write(frame[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
		if _, err := bw.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
		framed := int64(frameHead) + int64(len(payload))
		newSize += framed
		newLive[lr.rec.Kind+"|"+lr.rec.Key] = framed
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: reopening after compaction: %w", err)
	}
	l.f.Close()
	l.f = f
	l.size = newSize
	l.liveBytes = newLive
	l.dead = 0
	l.dirty = false
	l.compactions.Add(1)
	return nil
}

// Close syncs and closes the log. Further calls error.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	close(l.stopSync)
	err := l.syncLocked()
	l.closed = true
	cerr := l.f.Close()
	l.mu.Unlock()
	<-l.syncDone
	if err != nil {
		return err
	}
	if cerr != nil {
		return fmt.Errorf("persist: %w", cerr)
	}
	return nil
}

// Stats snapshots the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Path:             l.path,
		LiveRecords:      len(l.liveBytes),
		FileBytes:        l.size,
		DeadBytes:        l.dead,
		TornBytesDropped: l.torn,
		Compactions:      l.compactions.Load(),
		Syncs:            l.syncs.Load(),
		AppendErrors:     l.appendErrors.Load(),
	}
}
