package cache

import "sync/atomic"

// Stats is a point-in-time snapshot of cache effectiveness, suitable for
// dashboards and the joinopt -stats output.
type Stats struct {
	// Hits counts requests served entirely from the exact cache.
	Hits int64 `json:"hits"`
	// Misses counts requests that fell through to a solve.
	Misses int64 `json:"misses"`
	// Coalesced counts requests that joined an identical in-flight
	// solve instead of starting their own (a subset of neither Hits nor
	// Misses: the leader of the flight records the miss).
	Coalesced int64 `json:"coalesced"`
	// WarmStarts counts misses where a structurally similar cached plan
	// was injected as the solver's initial incumbent.
	WarmStarts int64 `json:"warm_starts"`
	// WarmStartAccepted counts warm starts the solver actually used
	// (the injected plan survived the feasibility check).
	WarmStartAccepted int64 `json:"warm_start_accepted"`
	// Degraded counts requests under a tight deadline that were served a
	// heuristic plan immediately while the full solve ran on.
	Degraded int64 `json:"degraded"`
	// Refines counts background solves completed after degraded serving.
	Refines int64 `json:"refines"`
	// Uncacheable counts requests whose queries the fingerprint rejects
	// (passed through to the optimizer untouched).
	Uncacheable int64 `json:"uncacheable"`
	// Evicted counts entries removed by the LRU bounds (entry count or
	// MaxBytes), including evictions during persistent-log replay.
	Evicted int64 `json:"evicted"`
	// Expired counts entries removed because their TTL lapsed.
	Expired int64 `json:"expired"`
	// Invalidated counts entries removed by explicit invalidation —
	// Invalidate calls and the corrected-cardinality feedback loop.
	Invalidated int64 `json:"invalidated"`
	// Replayed counts entries loaded from the persistent log at startup.
	Replayed int64 `json:"replayed"`
	// ReplayEvicted counts replayed entries the LRU bounds evicted again
	// during startup — the log held more than the configured cache.
	ReplayEvicted int64 `json:"replay_evicted"`
	// Imported counts entries accepted from cluster peers (replication).
	Imported int64 `json:"imported"`
	// FeedbackRefreshes counts corrected-query refreshes: an executed
	// plan's measured cardinalities invalidated a stale entry and a
	// background solve of the corrected query replaced it.
	FeedbackRefreshes int64 `json:"feedback_refreshes"`
	// PersistErrors counts failed persistent-log writes (the in-memory
	// cache keeps serving; the entry is simply not durable).
	PersistErrors int64 `json:"persist_errors"`
	// Entries is the current number of exact entries resident.
	Entries int `json:"entries"`
	// Donors is the current number of shape-level warm-start donors.
	Donors int `json:"donors"`
	// Bytes is the approximate resident size of the exact cache.
	Bytes int64 `json:"bytes"`
}

// HitRate is Hits over all cacheable lookups (0 when none yet).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// counters is the live, atomically updated form behind Stats.
type counters struct {
	hits              atomic.Int64
	misses            atomic.Int64
	coalesced         atomic.Int64
	warmStarts        atomic.Int64
	warmStartAccepted atomic.Int64
	degraded          atomic.Int64
	refines           atomic.Int64
	uncacheable       atomic.Int64
	evicted           atomic.Int64
	expired           atomic.Int64
	invalidated       atomic.Int64
	replayed          atomic.Int64
	replayEvicted     atomic.Int64
	imported          atomic.Int64
	feedbackRefreshes atomic.Int64
	persistErrors     atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Coalesced:         c.coalesced.Load(),
		WarmStarts:        c.warmStarts.Load(),
		WarmStartAccepted: c.warmStartAccepted.Load(),
		Degraded:          c.degraded.Load(),
		Refines:           c.refines.Load(),
		Uncacheable:       c.uncacheable.Load(),
		Evicted:           c.evicted.Load(),
		Expired:           c.expired.Load(),
		Invalidated:       c.invalidated.Load(),
		Replayed:          c.replayed.Load(),
		ReplayEvicted:     c.replayEvicted.Load(),
		Imported:          c.imported.Load(),
		FeedbackRefreshes: c.feedbackRefreshes.Load(),
		PersistErrors:     c.persistErrors.Load(),
	}
}
