package cache

import (
	"bytes"
	"math/rand"
	"testing"

	"milpjoin/joinorder"
)

// queryFromBytes decodes fuzz data into a join query: the first byte picks
// the table count, subsequent bytes drive cardinalities, edge structure,
// and selectivities. Returns nil when the data is too short to build a
// valid query.
func queryFromBytes(data []byte) *joinorder.Query {
	if len(data) < 3 {
		return nil
	}
	n := 2 + int(data[0])%9 // 2..10 tables
	next := func(i int) byte { return data[1+i%(len(data)-1)] }

	q := &joinorder.Query{Tables: make([]joinorder.Table, n)}
	b := 0
	for i := range q.Tables {
		q.Tables[i].Card = float64(1 + int(next(b))*7)
		b++
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := next(b)
			b++
			if v%3 != 0 {
				continue // ~1/3 edge density
			}
			q.Predicates = append(q.Predicates, joinorder.Predicate{
				Tables: []int{i, j},
				Sel:    float64(1+int(v)) / 512.0,
			})
		}
	}
	return q
}

// FuzzFingerprint drives arbitrary queries through canonicalization and
// checks its two contracts: determinism (same query, same key) and
// label-invariance (an isomorphic relabeling yields the same key — and
// the same cacheability verdict — in both modes). A violation of either
// means the cache could serve a wrong plan or split entries.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{3, 10, 20, 30, 0, 3, 6})
	f.Add([]byte{8, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 7, 7, 3})
	f.Add([]byte{9, 200, 100, 50, 25, 12, 6, 3, 1, 0, 9, 9, 9, 3, 3, 3, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{5}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		q := queryFromBytes(data)
		if q == nil {
			return
		}
		n := len(q.Tables)
		var seed int64
		for _, by := range data {
			seed = seed*131 + int64(by)
		}
		rng := rand.New(rand.NewSource(seed))

		for _, mode := range []Mode{Exact, Shape} {
			c1, err1 := Canonicalize(q, mode)
			c1b, err1b := Canonicalize(q, mode)
			if (err1 == nil) != (err1b == nil) {
				t.Fatalf("mode %v: nondeterministic cacheability", mode)
			}
			if err1 != nil {
				continue
			}
			if c1.Key != c1b.Key {
				t.Fatalf("mode %v: nondeterministic key", mode)
			}

			for trial := 0; trial < 3; trial++ {
				perm := rng.Perm(n)
				rq := relabel(q, perm)
				c2, err2 := Canonicalize(rq, mode)
				if err2 != nil {
					t.Fatalf("mode %v: relabeling flipped cacheability: %v", mode, err2)
				}
				if c2.Key != c1.Key {
					t.Fatalf("mode %v: fingerprint not invariant under relabeling", mode)
				}
				// Perm/inv must be mutually inverse translations.
				order := rng.Perm(n)
				back := c2.FromCanonical(c2.ToCanonical(order))
				for i := range order {
					if back[i] != order[i] {
						t.Fatalf("mode %v: ToCanonical/FromCanonical not inverse", mode)
					}
				}
			}
		}
	})
}
