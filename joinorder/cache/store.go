package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// store is a concurrency-safe bounded map with LRU eviction and optional
// TTL expiry. It is instantiated twice by the Optimizer: once for exact
// entries (full cached results) and once for shape-level warm-start
// donors. Bounds are enforced on entry count and, when maxBytes is set,
// on the summed entry sizes — the latter is what keeps a persistent-log
// replay larger than the configured LRU from blowing memory.
type store[V any] struct {
	mu       sync.Mutex
	max      int
	maxBytes int64
	ttl      time.Duration
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
	bytes    int64
	evicted  *atomic.Int64
	expired  *atomic.Int64
}

type storeEntry[V any] struct {
	key  string
	val  V
	at   time.Time // insertion time, for TTL
	hits int64
	size int64 // approximate resident bytes, 0 when untracked
}

func newStore[V any](max int, maxBytes int64, ttl time.Duration, evicted, expired *atomic.Int64) *store[V] {
	return &store[V]{
		max:      max,
		maxBytes: maxBytes,
		ttl:      ttl,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
		evicted:  evicted,
		expired:  expired,
	}
}

// get returns the live value for key, bumping it to most-recently-used and
// counting a per-entry hit. An entry past its TTL is removed and reported
// as absent, so a stale plan is never served.
func (s *store[V]) get(key string, now time.Time) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	e := el.Value.(*storeEntry[V])
	if s.ttl > 0 && now.Sub(e.at) > s.ttl {
		s.removeLocked(el)
		if s.expired != nil {
			s.expired.Add(1)
		}
		var zero V
		return zero, false
	}
	e.hits++
	s.ll.MoveToFront(el)
	return e.val, true
}

// put inserts or replaces the value for key, evicting least recently used
// entries while either bound (entry count, summed bytes) is exceeded.
// Replacement resets the TTL clock (the entry was just recomputed) but
// keeps the hit count. It returns the number of evictions the insert
// caused.
func (s *store[V]) put(key string, v V, now time.Time, size int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*storeEntry[V])
		s.bytes += size - e.size
		e.val, e.at, e.size = v, now, size
		s.ll.MoveToFront(el)
		return 0
	}
	s.m[key] = s.ll.PushFront(&storeEntry[V]{key: key, val: v, at: now, size: size})
	s.bytes += size
	evictions := 0
	for (s.max > 0 && s.ll.Len() > s.max) || (s.maxBytes > 0 && s.bytes > s.maxBytes) {
		back := s.ll.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		evictions++
		if s.evicted != nil {
			s.evicted.Add(1)
		}
	}
	return evictions
}

// remove deletes key, reporting whether it was resident.
func (s *store[V]) remove(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return false
	}
	s.removeLocked(el)
	return true
}

// removeLocked unlinks one element. Called with mu held.
func (s *store[V]) removeLocked(el *list.Element) {
	e := el.Value.(*storeEntry[V])
	s.ll.Remove(el)
	delete(s.m, e.key)
	s.bytes -= e.size
}

func (s *store[V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *store[V]) sizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// each visits every resident entry in most-recently-used order.
func (s *store[V]) each(now time.Time, fn func(key string, v V, age time.Duration, hits int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry[V])
		fn(e.key, e.val, now.Sub(e.at), e.hits)
	}
}
