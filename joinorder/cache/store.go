package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// store is a concurrency-safe bounded map with LRU eviction and optional
// TTL expiry. It is instantiated twice by the Optimizer: once for exact
// entries (full cached results) and once for shape-level warm-start
// donors.
type store[V any] struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	ll      *list.List // front = most recently used
	m       map[string]*list.Element
	evicted *atomic.Int64
	expired *atomic.Int64
}

type storeEntry[V any] struct {
	key  string
	val  V
	at   time.Time // insertion time, for TTL
	hits int64
}

func newStore[V any](max int, ttl time.Duration, evicted, expired *atomic.Int64) *store[V] {
	return &store[V]{
		max:     max,
		ttl:     ttl,
		ll:      list.New(),
		m:       make(map[string]*list.Element),
		evicted: evicted,
		expired: expired,
	}
}

// get returns the live value for key, bumping it to most-recently-used and
// counting a per-entry hit. An entry past its TTL is removed and reported
// as absent, so a stale plan is never served.
func (s *store[V]) get(key string, now time.Time) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	e := el.Value.(*storeEntry[V])
	if s.ttl > 0 && now.Sub(e.at) > s.ttl {
		s.ll.Remove(el)
		delete(s.m, key)
		if s.expired != nil {
			s.expired.Add(1)
		}
		var zero V
		return zero, false
	}
	e.hits++
	s.ll.MoveToFront(el)
	return e.val, true
}

// put inserts or replaces the value for key, evicting the least recently
// used entry when the bound is exceeded. Replacement resets the TTL clock
// (the entry was just recomputed) but keeps the hit count.
func (s *store[V]) put(key string, v V, now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		e := el.Value.(*storeEntry[V])
		e.val, e.at = v, now
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&storeEntry[V]{key: key, val: v, at: now})
	for s.max > 0 && s.ll.Len() > s.max {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.m, back.Value.(*storeEntry[V]).key)
		if s.evicted != nil {
			s.evicted.Add(1)
		}
	}
}

func (s *store[V]) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// each visits every resident entry in most-recently-used order.
func (s *store[V]) each(now time.Time, fn func(key string, v V, age time.Duration, hits int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry[V])
		fn(e.key, e.val, now.Sub(e.at), e.hits)
	}
}
