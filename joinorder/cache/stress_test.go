package cache

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// stressWorkload builds a set of distinct queries plus, per query, the
// optimal cost computed once outside the cache — the ground truth every
// concurrently served result is checked against.
func stressWorkload(t *testing.T, nQueries int) ([]*joinorder.Query, []float64, joinorder.Options) {
	t.Helper()
	// dp-leftdeep: proven optimal (hence cacheable) and fast enough to
	// solve hundreds of times in a stress loop.
	opts := joinorder.Options{Strategy: "dp-leftdeep"}
	qs := make([]*joinorder.Query, nQueries)
	costs := make([]float64, nQueries)
	shapes := []workload.GraphShape{workload.Chain, workload.Cycle, workload.Star, workload.Clique}
	for i := range qs {
		qs[i] = workload.Generate(shapes[i%len(shapes)], 5+i%3, int64(100+i), workload.Config{})
		res, err := joinorder.Optimize(context.Background(), qs[i], opts)
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		costs[i] = res.Cost
	}
	return qs, costs, opts
}

// TestStressExactlyOneSolvePerFingerprint hammers the cache from 64
// goroutines with relabeled variants of a fixed query set and asserts the
// underlying optimizer ran exactly once per distinct fingerprint —
// concurrent first requests coalesce, later ones hit.
func TestStressExactlyOneSolvePerFingerprint(t *testing.T) {
	const (
		goroutines = 64
		iterations = 30
		nQueries   = 8
	)
	qs, costs, opts := stressWorkload(t, nQueries)

	var calls atomic.Int64
	o := mustNew(t, Config{Optimize: func(ctx context.Context, q *joinorder.Query, op joinorder.Options) (*joinorder.Result, error) {
		calls.Add(1)
		return joinorder.Optimize(ctx, q, op)
	}})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iterations; it++ {
				i := rng.Intn(nQueries)
				q := relabel(qs[i], rng.Perm(len(qs[i].Tables)))
				res, err := o.Optimize(context.Background(), q, opts)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if err := res.Plan.Validate(q); err != nil {
					t.Errorf("goroutine %d: served plan invalid: %v", g, err)
					return
				}
				if math.Abs(res.Cost-costs[i]) > 1e-9*math.Max(1, costs[i]) {
					t.Errorf("goroutine %d query %d: cost %g, want %g", g, i, res.Cost, costs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := calls.Load(); got != nQueries {
		t.Fatalf("%d underlying solves for %d distinct fingerprints", got, nQueries)
	}
	s := o.Stats()
	if s.Misses != nQueries {
		t.Fatalf("misses = %d, want %d", s.Misses, nQueries)
	}
	if want := int64(goroutines*iterations) - s.Misses - s.Coalesced; s.Hits != want {
		t.Fatalf("hits = %d, want %d (stats %+v)", s.Hits, want, s)
	}
}

// TestStressEvictionServesNoStaleResults shrinks the cache far below the
// working set so entries churn constantly, and checks every served result
// is still correct for its exact query — an evicted-and-reinserted entry
// must never leak a plan for a different query or statistics snapshot.
func TestStressEvictionServesNoStaleResults(t *testing.T) {
	const (
		goroutines = 64
		iterations = 20
		nQueries   = 8
	)
	qs, costs, opts := stressWorkload(t, nQueries)

	o := mustNew(t, Config{MaxEntries: 2})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for it := 0; it < iterations; it++ {
				i := rng.Intn(nQueries)
				q := relabel(qs[i], rng.Perm(len(qs[i].Tables)))
				res, err := o.Optimize(context.Background(), q, opts)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if err := res.Plan.Validate(q); err != nil {
					t.Errorf("goroutine %d: served plan invalid: %v", g, err)
					return
				}
				if math.Abs(res.Cost-costs[i]) > 1e-9*math.Max(1, costs[i]) {
					t.Errorf("goroutine %d query %d: stale cost %g, want %g", g, i, res.Cost, costs[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := o.Stats()
	if s.Evicted == 0 {
		t.Fatalf("eviction never triggered: %+v", s)
	}
	if s.Entries > 2 {
		t.Fatalf("cache exceeded its bound: %+v", s)
	}
}
