package cache

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
)

// countingOptimize wraps joinorder.Optimize and counts underlying calls,
// optionally per strategy.
type countingOptimize struct {
	calls      atomic.Int64
	byStrategy sync.Map // string -> *atomic.Int64
}

func (c *countingOptimize) fn(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
	c.calls.Add(1)
	strat := opts.Strategy
	if strat == "" {
		strat = "milp"
	}
	v, _ := c.byStrategy.LoadOrStore(strat, new(atomic.Int64))
	v.(*atomic.Int64).Add(1)
	return joinorder.Optimize(ctx, q, opts)
}

func (c *countingOptimize) strategyCalls(s string) int64 {
	v, ok := c.byStrategy.Load(s)
	if !ok {
		return 0
	}
	return v.(*atomic.Int64).Load()
}

func milpOpts() joinorder.Options {
	return joinorder.Options{Strategy: "milp", TimeLimit: 30 * time.Second}
}

// mustNew builds the optimizer or fails the test; every config used by
// these tests is valid by construction.
func mustNew(tb testing.TB, cfg Config) *Optimizer {
	tb.Helper()
	o, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return o
}

func TestConfigValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative max entries":  {MaxEntries: -1},
		"negative ttl":          {TTL: -time.Second},
		"negative degrade":      {DegradeUnder: -time.Millisecond},
		"negative budget":       {BackgroundBudget: -time.Second},
		"degrade above budget":  {DegradeUnder: time.Minute, BackgroundBudget: time.Second},
		"degrade equals budget": {DegradeUnder: time.Second, BackgroundBudget: time.Second},
	} {
		if _, err := New(cfg); !errors.Is(err, joinorder.ErrInvalidOptions) {
			t.Errorf("%s: New err = %v, want ErrInvalidOptions", name, err)
		}
	}
	// Zero MaxEntries is defaulted by New but rejected by a direct
	// Validate of an explicit config.
	if err := (Config{}).Validate(); !errors.Is(err, joinorder.ErrInvalidOptions) {
		t.Errorf("Validate(zero) err = %v, want ErrInvalidOptions (MaxEntries)", err)
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("New(zero config) err = %v, want nil", err)
	}
	if err := (Config{MaxEntries: 64, DegradeUnder: time.Second, BackgroundBudget: time.Minute}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCacheHitOnIdenticalAndRelabeledQuery(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn})
	q := workload.Generate(workload.Chain, 6, 3, workload.Config{})

	r1, err := o.Optimize(context.Background(), q, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != joinorder.StatusOptimal {
		t.Fatalf("seed solve not optimal: %v", r1.Status)
	}
	r2, err := o.Optimize(context.Background(), q, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 1 {
		t.Fatalf("identical query re-solved: %d underlying calls", got)
	}
	if r2.Cost != r1.Cost || r2.Status != joinorder.StatusOptimal {
		t.Fatalf("hit result differs: cost %g vs %g", r2.Cost, r1.Cost)
	}

	// A relabeled (graph-isomorphic) query must hit the same entry, and
	// the served plan must be valid — and equally cheap — in the
	// relabeled query's own table indices.
	rng := rand.New(rand.NewSource(11))
	rq := relabel(q, rng.Perm(6))
	r3, err := o.Optimize(context.Background(), rq, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 1 {
		t.Fatalf("relabeled query re-solved: %d underlying calls", got)
	}
	if err := r3.Plan.Validate(rq); err != nil {
		t.Fatalf("served plan invalid for relabeled query: %v", err)
	}
	if math.Abs(r3.Cost-r1.Cost) > 1e-9*math.Max(1, math.Abs(r1.Cost)) {
		t.Fatalf("relabeled hit cost %g != original %g", r3.Cost, r1.Cost)
	}
	if r3.Tree == nil {
		t.Fatal("hit result lost its tree")
	}

	s := o.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", s)
	}
	if s.HitRate() < 0.6 {
		t.Fatalf("hit rate %g", s.HitRate())
	}
	es := o.Entries()
	if len(es) != 1 || es[0].Hits != 2 || es[0].Tables != 6 {
		t.Fatalf("entries = %+v", es)
	}
}

func TestCacheDistinguishesOptions(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn})
	q := workload.Generate(workload.Star, 5, 2, workload.Config{})

	opts := milpOpts()
	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	opts.Precision = joinorder.PrecisionLow
	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 2 {
		t.Fatalf("different precision shared an entry: %d calls", got)
	}
	// TimeLimit and Threads bound effort, not the optimum: same entry.
	opts.TimeLimit = time.Minute
	opts.Threads = 2
	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 2 {
		t.Fatalf("budget-only option change missed: %d calls", got)
	}
}

func TestWarmStartOnPerturbedCardinalities(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn})
	q := workload.Generate(workload.Cycle, 7, 5, workload.Config{})

	if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}

	// Same topology, drifted statistics: an exact miss, but the shape
	// index should donate the previous plan as a MIP start.
	pq := *q
	pq.Tables = append([]joinorder.Table(nil), q.Tables...)
	for i := range pq.Tables {
		pq.Tables[i].Card *= 1.3
	}
	res, err := o.Optimize(context.Background(), &pq, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 2 {
		t.Fatalf("perturbed query should re-solve: %d calls", got)
	}
	s := o.Stats()
	if s.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1 (stats %+v)", s.WarmStarts, s)
	}
	if s.WarmStartAccepted != 1 || res.MIPStart != "plan" {
		t.Fatalf("warm start not accepted: MIPStart=%q stats=%+v", res.MIPStart, s)
	}
}

func TestDisableWarmStart(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn, DisableWarmStart: true})
	q := workload.Generate(workload.Cycle, 6, 5, workload.Config{})
	if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	pq := *q
	pq.Tables = append([]joinorder.Table(nil), q.Tables...)
	for i := range pq.Tables {
		pq.Tables[i].Card *= 1.5
	}
	res, err := o.Optimize(context.Background(), &pq, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if s := o.Stats(); s.WarmStarts != 0 || s.Donors != 0 {
		t.Fatalf("warm-start machinery ran while disabled: %+v", s)
	}
	if res.MIPStart == "plan" {
		t.Fatal("plan MIP start injected while disabled")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	fn := func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
		calls.Add(1)
		<-release
		return joinorder.Optimize(ctx, q, opts)
	}
	o := mustNew(t, Config{Optimize: fn})
	q := workload.Generate(workload.Chain, 5, 9, workload.Config{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*joinorder.Result, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = o.Optimize(context.Background(), q, milpOpts())
		}(i)
	}
	// Wait for the leader to enter the solve, then release everyone.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let followers join the flight
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("coalescing failed: %d underlying calls", got)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i].Cost != results[0].Cost {
			t.Fatalf("waiter %d got a different plan cost", i)
		}
	}
	s := o.Stats()
	if s.Misses != 1 || s.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d coalesced", s, waiters-1)
	}
}

func TestCoalescedWaiterHonorsOwnContext(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	fn := func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
		calls.Add(1)
		<-release
		return joinorder.Optimize(ctx, q, opts)
	}
	o := mustNew(t, Config{Optimize: fn})
	defer close(release)
	q := workload.Generate(workload.Chain, 5, 13, workload.Config{})

	go o.Optimize(context.Background(), q, milpOpts())
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := o.Optimize(ctx, q, milpOpts())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, joinorder.ErrCanceled) {
			t.Fatalf("want ErrCanceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn, TTL: time.Minute, now: clock})
	q := workload.Generate(workload.Star, 5, 4, workload.Config{})

	if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if co.calls.Load() != 1 {
		t.Fatal("entry expired early")
	}
	now = now.Add(2 * time.Minute)
	if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
		t.Fatal(err)
	}
	if co.calls.Load() != 2 {
		t.Fatal("expired entry served")
	}
	if s := o.Stats(); s.Expired != 1 {
		t.Fatalf("expired = %d, want 1", s.Expired)
	}
}

func TestLRUEviction(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn, MaxEntries: 2})
	qs := []*joinorder.Query{
		workload.Generate(workload.Chain, 5, 1, workload.Config{}),
		workload.Generate(workload.Chain, 5, 2, workload.Config{}),
		workload.Generate(workload.Chain, 5, 3, workload.Config{}),
	}
	for _, q := range qs {
		if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if s := o.Stats(); s.Entries != 2 || s.Evicted != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 evicted", s)
	}
	// The first query was least recently used: it must re-solve.
	if _, err := o.Optimize(context.Background(), qs[0], milpOpts()); err != nil {
		t.Fatal(err)
	}
	if co.calls.Load() != 4 {
		t.Fatalf("evicted entry served stale: %d calls", co.calls.Load())
	}
}

func TestDegradedServing(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{
		Optimize:         co.fn,
		DegradeUnder:     50 * time.Millisecond,
		BackgroundBudget: 30 * time.Second,
	})
	q := workload.Generate(workload.Cycle, 6, 8, workload.Config{})

	opts := milpOpts()
	opts.TimeLimit = 10 * time.Millisecond
	res, err := o.Optimize(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "greedy" {
		t.Fatalf("degraded request served by %q, want greedy", res.Strategy)
	}
	o.Wait()
	s := o.Stats()
	if s.Degraded != 1 || s.Refines != 1 {
		t.Fatalf("stats = %+v, want 1 degraded / 1 refine", s)
	}

	// The background refine populated the cache: a relaxed-deadline
	// repeat is a hit with the full MILP answer.
	res2, err := o.Optimize(context.Background(), q, milpOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy != "milp" || res2.Status != joinorder.StatusOptimal {
		t.Fatalf("post-refine request got %q/%v, want cached milp optimal", res2.Strategy, res2.Status)
	}
	if o.Stats().Hits != 1 {
		t.Fatalf("post-refine request missed: %+v", o.Stats())
	}
	if co.strategyCalls("milp") != 1 || co.strategyCalls("greedy") != 1 {
		t.Fatalf("underlying calls: milp=%d greedy=%d", co.strategyCalls("milp"), co.strategyCalls("greedy"))
	}
}

func TestUncacheablePassesThrough(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn})
	q := workload.Generate(workload.Chain, 5, 6, workload.Config{})
	q.Correlated = []joinorder.CorrelatedGroup{{Predicates: []int{0, 1}, CorrectionSel: 0.5}}

	for i := 0; i < 2; i++ {
		if _, err := o.Optimize(context.Background(), q, milpOpts()); err != nil {
			t.Fatal(err)
		}
	}
	if co.calls.Load() != 2 {
		t.Fatal("uncacheable query was cached")
	}
	if s := o.Stats(); s.Uncacheable != 2 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEventStreamInterleavesCacheAndSolverEvents(t *testing.T) {
	o := mustNew(t, Config{})
	q := workload.Generate(workload.Star, 6, 7, workload.Config{})

	var events []joinorder.Event
	opts := milpOpts()
	opts.OnEvent = func(ev joinorder.Event) { events = append(events, ev) }

	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("miss produced %d events, want cache miss + solver stream", len(events))
	}
	if events[0].Kind != joinorder.KindCacheMiss {
		t.Fatalf("first event %v, want cache_miss", events[0].Kind)
	}
	sawSolver := false
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: merged stream not monotonic", i, ev.Seq)
		}
		if ev.Kind == joinorder.KindIncumbent || ev.Kind == joinorder.KindLPRelaxation {
			sawSolver = true
		}
	}
	if !sawSolver {
		t.Fatal("solver events did not reach the caller through the cache")
	}

	events = nil
	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != joinorder.KindCacheHit {
		t.Fatalf("hit produced %v, want exactly one cache_hit", events)
	}
	if !events[0].HasIncumbent || math.IsInf(events[0].Bound, -1) {
		t.Fatalf("cache_hit event lacks anytime state: %+v", events[0])
	}

	// Incumbent events keep reaching the caller through the cache
	// rewiring on a fresh (miss-path) query.
	var incumbents int
	p := milpOpts()
	p.OnEvent = func(ev joinorder.Event) {
		if ev.Kind == joinorder.KindIncumbent {
			incumbents++
		}
	}
	pq := workload.Generate(workload.Star, 6, 17, workload.Config{})
	if _, err := o.Optimize(context.Background(), pq, p); err != nil {
		t.Fatal(err)
	}
	if incumbents == 0 {
		t.Fatal("incumbent events starved by the cache rewiring")
	}
}

func TestCachedErrorsAreNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	fn := func(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return joinorder.Optimize(ctx, q, opts)
	}
	o := mustNew(t, Config{Optimize: fn})
	q := workload.Generate(workload.Chain, 5, 21, workload.Config{})

	if _, err := o.Optimize(context.Background(), q, milpOpts()); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	res, err := o.Optimize(context.Background(), q, milpOpts())
	if err != nil || res == nil {
		t.Fatalf("error was cached: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

// TestAutoResultCachedWithWinner: portfolio results are cacheable like any
// other strategy, the Winner provenance survives the cache round trip, and
// the portfolio membership is part of the entry key — two auto requests
// with different member lists never share an entry.
func TestAutoResultCachedWithWinner(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{Optimize: co.fn})
	q := workload.Generate(workload.Star, 6, 4, workload.Config{})

	// milp + greedy: the proven winner carries a left-deep Plan, which is
	// what the translation cache can store. (A dpconv winner whose optimum
	// is genuinely bushy — star optima use cross-product subtrees — has
	// Tree but no Plan and passes through uncached, like dp-bushy always
	// has.)
	opts := joinorder.Options{
		Strategy:  "auto",
		Portfolio: []string{"milp", "greedy"},
		TimeLimit: 30 * time.Second,
		Threads:   1,
	}
	r1, err := o.Optimize(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Winner == "" || r1.Strategy != "auto" {
		t.Fatalf("seed solve: strategy=%q winner=%q", r1.Strategy, r1.Winner)
	}
	r2, err := o.Optimize(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 1 {
		t.Fatalf("identical auto request re-solved: %d underlying calls", got)
	}
	if r2.Winner != r1.Winner || r2.Cost != r1.Cost || r2.Strategy != "auto" {
		t.Fatalf("cache hit lost provenance: winner %q vs %q", r2.Winner, r1.Winner)
	}

	// A different membership is a different answer space: distinct entry.
	opts.Portfolio = []string{"greedy"}
	if _, err := o.Optimize(context.Background(), q, opts); err != nil {
		t.Fatal(err)
	}
	if got := co.calls.Load(); got != 2 {
		t.Fatalf("different portfolio shared an entry: %d calls", got)
	}
}

// TestDegradedAutoRefinesWithPortfolio: a degraded auto request is served
// by the fallback heuristic, but the background refine re-runs the full
// portfolio race — the next relaxed-deadline request hits the cached auto
// result complete with its winner.
func TestDegradedAutoRefinesWithPortfolio(t *testing.T) {
	co := &countingOptimize{}
	o := mustNew(t, Config{
		Optimize:         co.fn,
		DegradeUnder:     50 * time.Millisecond,
		BackgroundBudget: 30 * time.Second,
	})
	q := workload.Generate(workload.Star, 6, 9, workload.Config{})

	opts := joinorder.Options{
		Strategy:  "auto",
		Portfolio: []string{"milp", "greedy"},
		TimeLimit: 10 * time.Millisecond,
		Threads:   1,
	}
	res, err := o.Optimize(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "greedy" || res.Winner != "" {
		t.Fatalf("degraded request served by %q (winner %q), want plain greedy", res.Strategy, res.Winner)
	}
	o.Wait()

	opts.TimeLimit = 30 * time.Second
	res2, err := o.Optimize(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Strategy != "auto" || res2.Winner == "" || res2.Status != joinorder.StatusOptimal {
		t.Fatalf("post-refine request got %q/%v winner=%q, want cached auto optimal with a winner",
			res2.Strategy, res2.Status, res2.Winner)
	}
	if co.strategyCalls("auto") != 1 || co.strategyCalls("greedy") != 1 {
		t.Fatalf("underlying calls: auto=%d greedy=%d, want 1/1",
			co.strategyCalls("auto"), co.strategyCalls("greedy"))
	}
}
