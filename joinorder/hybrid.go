package joinorder

import (
	"context"
	"math"
	"time"

	"milpjoin/internal/core"
	"milpjoin/internal/decomp"
	"milpjoin/internal/obs"
	"milpjoin/internal/plan"
	"milpjoin/internal/solver"
)

func init() {
	mustRegister("hybrid", "graph decomposition for 100+ table queries: partition, solve per piece (exact DP or MILP), stitch with an exact quotient DP, seam re-optimization", optimizeHybrid)
}

// optimizeHybrid runs the decomposition pipeline of internal/decomp: the
// join graph is cut along its weakest edges into partitions of at most
// Options.PartitionCap tables, each partition is solved on its own slice
// of the time budget, the partition plans are stitched into one global
// left-deep plan, and the reserved Options.SeamBudgetFrac of the budget
// re-optimizes windows around the cut seams. Every improving global plan
// flows through Options.OnPlan/OnEvent, so under strategy "auto" the
// hybrid feeds the portfolio's incumbent bus like any other member.
//
// The hybrid prices Options.Op uniformly (ChooseOperators is ignored) and
// always returns a feasible plan with a finite, exact-space-valid lower
// bound — typically loose (the cherry bound) unless the query fit a
// single exact solve.
func optimizeHybrid(ctx context.Context, q *Query, opts Options) (*Result, error) {
	start := time.Now()
	a := newAnytime("hybrid", opts)
	budget := opts.EffectiveBudget()
	dopts := decomp.Options{
		Spec:         opts.spec(),
		PartitionCap: opts.PartitionCap,
		SeamFrac:     opts.SeamBudgetFrac,
		Deadline:     opts.deadline(start),
		MILP: core.Options{
			Precision:           opts.Precision,
			ThresholdRatio:      opts.ThresholdRatio,
			CardCap:             opts.CardCap,
			InterestingOrders:   opts.InterestingOrders,
			ExpensivePredicates: opts.ExpensivePredicates,
		},
		Params: solver.Params{GapTol: budget.GapTol, Threads: budget.Threads},
	}
	if a != nil {
		dopts.OnImprovement = func(pl *plan.Plan, c float64) {
			a.improved(pl, c, time.Since(start), math.Inf(-1))
		}
	}
	res, err := decomp.Optimize(ctx, q, dopts)
	if err != nil {
		return nil, mapBaselineErr(ctx, err)
	}
	out := &Result{
		Strategy:  "hybrid",
		Plan:      res.Plan,
		Tree:      res.Plan.LeftDeep(),
		Cost:      res.Cost,
		Objective: res.Cost,
		Bound:     res.Bound,
		Gap:       obs.RelGap(res.Cost, res.Bound),
		Elapsed:   time.Since(start),
	}
	switch {
	case ctx.Err() != nil:
		out.Status = StatusCanceled
	case res.Optimal:
		out.Status = StatusOptimal
	case res.TimedOut:
		out.Status = StatusTimeLimit
	default:
		out.Status = StatusFeasible
	}
	return out, nil
}
