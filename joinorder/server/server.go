package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"milpjoin/internal/obs"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
	"milpjoin/joinorder/cluster"
)

// Server is the optimization daemon: an http.Handler fronting a
// cache.Optimizer with admission control. Construct with New, mount via
// Handler (or pass the Server itself, it implements http.Handler), and
// stop with Drain. All methods are safe for concurrent use.
type Server struct {
	cfg Config
	co  *cache.Optimizer
	adm *admitter
	tb  *tenantBuckets
	log *slog.Logger
	mux *http.ServeMux

	draining atomic.Bool
	inflight sync.WaitGroup
	reqID    atomic.Int64
	ctr      serverCounters
}

// serverCounters is the live, atomically updated request accounting
// behind /varz and /metrics.
type serverCounters struct {
	requests     atomic.Int64 // optimize requests received (both endpoints)
	ok           atomic.Int64 // 2xx answers carrying a plan
	degraded     atomic.Int64 // answers served by the fallback strategy
	shed         atomic.Int64 // saturated-queue requests answered degraded
	rejected     atomic.Int64 // 429s (saturated and degradation refused)
	rateLimited  atomic.Int64 // 429s from the tenant token bucket
	badRequest   atomic.Int64 // 400s
	canceled     atomic.Int64 // client disconnected before the answer
	timeouts     atomic.Int64 // budget expired with no plan at all (504)
	failed       atomic.Int64 // 5xx/422
	drainReject  atomic.Int64 // 503s while draining
	streams      atomic.Int64 // SSE requests
	eventsSent   atomic.Int64 // SSE events relayed
	eventsDrop   atomic.Int64 // SSE events dropped on slow consumers
	queueNanos   atomic.Int64 // total admission-queue wait
	solveNanos   atomic.Int64 // total in-solve wall time
	solves       atomic.Int64 // solves dispatched to a worker
	solverNodes  atomic.Int64 // branch-and-bound nodes, summed over solves
	simplexIters atomic.Int64 // simplex iterations, summed over solves
	incumbents   atomic.Int64 // incumbent improvements, summed over solves
	portfolio    atomic.Int64 // strategy=auto requests admitted with weight > 1
	batches      atomic.Int64 // batch requests received
	batchItems   atomic.Int64 // individual queries across all batches
}

// requestWeight is the admission weight of one request: a portfolio race
// occupies one worker slot per member, a single strategy occupies one.
func requestWeight(opts joinorder.Options) int {
	if opts.Strategy != "auto" {
		return 1
	}
	if n := len(opts.Portfolio); n > 0 {
		return n
	}
	return len(joinorder.DefaultPortfolio())
}

// New builds a Server from the config (zero fields defaulted, invalid
// values rejected with joinorder.ErrInvalidOptions).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cluster != nil && cfg.Cache.OnStore == nil {
		// Every freshly solved entry replicates to the fingerprint's ring
		// successors; replayed and imported entries never re-announce.
		rt := cfg.Cluster
		cfg.Cache.OnStore = func(kind, key string, val []byte) {
			rt.Replicate(routingFingerprint(key), kind, key, val)
		}
	}
	co, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		co:  co,
		adm: newAdmitter(cfg.MaxWorkers, cfg.QueueDepth),
		tb:  newTenantBuckets(cfg.TenantRate, cfg.TenantBurst),
		log: cfg.Logger,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/optimize/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/optimize/stream", s.handleStream)
	s.mux.HandleFunc("POST "+cluster.EntryPath, s.handleClusterEntry)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	registerVarz(s)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Cache exposes the fronted plan cache (stats, entries) for CLIs and
// tests.
func (s *Server) Cache() *cache.Optimizer { return s.co }

// Draining reports whether the server has stopped accepting new
// optimization work.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain stops admitting new optimization requests (they get 503 +
// Retry-After) and flips /healthz to 503 so load balancers stop routing
// here. In-flight solves continue; call Drain to wait for them.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain gracefully stops the server: no new work is admitted, in-flight
// requests run to completion (each already bounded by its own deadline),
// background cache refines finish, and the final cache statistics are
// flushed to the log. The context bounds the wait; on expiry Drain
// returns the context error with work still in flight.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.co.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	unregisterVarz(s)
	cs := s.co.Stats()
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "drain complete",
		slog.Bool("clean", err == nil),
		slog.Int64("requests", s.ctr.requests.Load()),
		slog.Int64("cache_hits", cs.Hits),
		slog.Int64("cache_misses", cs.Misses),
		slog.Int64("coalesced", cs.Coalesced),
		slog.Int64("degraded", cs.Degraded),
		slog.Int64("refines", cs.Refines),
		slog.Int("entries", cs.Entries),
	)
	return err
}

// prepared is one admitted-for-processing optimize request: parsed,
// rate-limit cleared, options resolved.
type prepared struct {
	req     *OptimizeRequest
	q       *joinorder.Query
	opts    joinorder.Options
	arrived time.Time
	id      string
	// raw is the request body as received, kept for cluster forwarding.
	raw []byte
	// forwarded marks a request that already hopped once (the
	// cluster.ForwardHeader was present): it is pinned local and its
	// tenant budget was charged at the ingress node.
	forwarded bool
}

// httpError is a terminal non-2xx outcome of serve. code is the stable
// machine-readable error code carried by the response's ErrorEnvelope.
type httpError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

// prepare runs the pre-admission gates shared by both endpoints: drain
// check, body decode, tenant rate limit, query and option resolution. On
// failure it writes the error response and returns ok=false.
func (s *Server) prepare(w http.ResponseWriter, r *http.Request) (*prepared, bool) {
	s.ctr.requests.Add(1)
	if s.draining.Load() {
		s.ctr.drainReject.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeDraining, time.Second, "server is draining")
		return nil, false
	}
	req, raw, err := decodeRequest(w, r)
	if err != nil {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "%v", err)
		return nil, false
	}
	forwarded := r.Header.Get(cluster.ForwardHeader) != ""
	if !forwarded {
		// Forwarded arrivals were already charged at their ingress node;
		// charging the forwarding hop again would double-bill the tenant.
		if ok, wait := s.tb.allow(req.tenant(r), s.cfg.now()); !ok {
			s.ctr.rateLimited.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(wait))
			writeError(w, http.StatusTooManyRequests, CodeRateLimited, wait, "tenant %q over rate limit", req.tenant(r))
			return nil, false
		}
	}
	q, err := req.query()
	if err != nil {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "%v", err)
		return nil, false
	}
	opts, err := req.options(s.cfg)
	if err != nil {
		s.ctr.badRequest.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, 0, "%v", err)
		return nil, false
	}
	return &prepared{
		req:       req,
		q:         q,
		opts:      opts,
		arrived:   s.cfg.now(),
		id:        fmt.Sprintf("r%06d", s.reqID.Add(1)),
		raw:       raw,
		forwarded: forwarded,
	}, true
}

// callFlags records what the cache-layer event stream reported about one
// request. Event callbacks are serialised and complete before Optimize
// returns, so plain fields suffice.
type callFlags struct {
	cacheHit  bool
	coalesced bool
	degraded  bool
}

func (f *callFlags) observe(ev joinorder.Event) {
	switch ev.Kind {
	case joinorder.KindCacheHit:
		f.cacheHit = true
	case joinorder.KindCacheCoalesced:
		f.coalesced = true
	case joinorder.KindDegraded:
		f.degraded = true
	}
}

// serve runs one prepared request through admission and the cached
// optimizer. onEvent, when non-nil, additionally receives every solver
// event (the SSE relay). Exactly one of the response and the error is
// non-nil.
func (s *Server) serve(ctx context.Context, pr *prepared, onEvent func(joinorder.Event)) (*OptimizeResponse, *httpError) {
	s.inflight.Add(1)
	defer s.inflight.Done()

	deadline := pr.arrived.Add(pr.opts.EffectiveBudget().TimeLimit)
	weight := requestWeight(pr.opts)
	if weight > 1 {
		s.ctr.portfolio.Add(1)
	}
	t, err := s.adm.admit(deadline, weight)
	if errors.Is(err, errSaturated) {
		if !pr.req.allowDegraded() {
			s.ctr.rejected.Add(1)
			s.logRequest(pr, "rejected", 0, 0, nil)
			return nil, &httpError{
				status:     http.StatusTooManyRequests,
				code:       CodeSaturated,
				msg:        "admission queue saturated and request refuses degraded answers",
				retryAfter: s.shedRetryAfter(),
			}
		}
		s.ctr.shed.Add(1)
		return s.serveDegraded(ctx, pr, onEvent)
	}

	// Wait for a worker slot, racing the client's connection and the
	// request deadline.
	waitCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	select {
	case <-t.ready:
	case <-waitCtx.Done():
		if s.adm.cancel(t) {
			// Withdrawn while still queued: no slot to release.
			if ctx.Err() != nil {
				s.ctr.canceled.Add(1)
				s.logRequest(pr, "client gone", 0, 0, nil)
				return nil, &httpError{status: statusClientClosedRequest, code: CodeClientClosed, msg: "client closed request"}
			}
			// Deadline burned entirely in the queue: the degraded
			// answer is all that is left of the budget.
			if pr.req.allowDegraded() {
				s.ctr.shed.Add(1)
				return s.serveDegraded(ctx, pr, onEvent)
			}
			s.ctr.timeouts.Add(1)
			s.logRequest(pr, "queue timeout", 0, 0, nil)
			return nil, &httpError{
				status:     http.StatusGatewayTimeout,
				code:       CodeTimeout,
				msg:        "request deadline expired in the admission queue",
				retryAfter: s.shedRetryAfter(),
			}
		}
		// The slot was granted concurrently with our withdrawal; fall
		// through and use it — the solve context below handles the
		// expired budget or gone client immediately.
	}
	defer s.adm.release(t)
	queueWait := s.cfg.now().Sub(pr.arrived)
	s.ctr.queueNanos.Add(int64(queueWait))
	s.ctr.solves.Add(1)

	// The budget shrinks by the time spent queueing. It never reaches
	// zero — that would mean "unlimited" to the optimizer; the context
	// deadline set above ends an already-exhausted budget immediately.
	opts := pr.opts
	if remaining := deadline.Sub(s.cfg.now()); remaining < opts.Budget.TimeLimit {
		opts.Budget.TimeLimit = max(remaining, time.Millisecond)
	}
	return s.runSolve(waitCtx, pr, opts, queueWait, onEvent)
}

// serveDegraded answers a shed request immediately through the cache's
// degraded path: the fallback strategy's plan now, one deduplicated
// background refine warming the cache for the retry. The solve budget is
// pinned to the cache's degrade threshold so the path triggers regardless
// of the requested budget.
func (s *Server) serveDegraded(ctx context.Context, pr *prepared, onEvent func(joinorder.Event)) (*OptimizeResponse, *httpError) {
	opts := pr.opts
	opts.Budget.TimeLimit = s.cfg.Cache.DegradeUnder
	resp, herr := s.runSolve(ctx, pr, opts, 0, onEvent)
	// resp.Degraded comes from the cache's KindDegraded event — a shed
	// request that hits the exact cache gets the full cached answer and
	// is not marked degraded.
	if herr != nil {
		herr.retryAfter = s.shedRetryAfter()
	}
	return resp, herr
}

// runSolve executes the solve with the given options and maps the
// outcome to a response. The caller has already settled admission.
func (s *Server) runSolve(ctx context.Context, pr *prepared, opts joinorder.Options, queueWait time.Duration, onEvent func(joinorder.Event)) (*OptimizeResponse, *httpError) {
	flags := &callFlags{}
	sinks := []func(joinorder.Event){flags.observe}
	if onEvent != nil {
		sinks = append(sinks, onEvent)
	}
	if s.cfg.LogEvents {
		sinks = append(sinks, obs.SlogHandler(s.log, slog.LevelDebug, slog.String("req", pr.id)))
	}
	opts.OnEvent = func(ev joinorder.Event) {
		for _, sink := range sinks {
			sink(ev)
		}
	}

	solveStart := s.cfg.now()
	res, err := s.co.Optimize(ctx, pr.q, opts)
	solveWait := s.cfg.now().Sub(solveStart)
	s.ctr.solveNanos.Add(int64(solveWait))

	if err != nil {
		switch {
		case errors.Is(err, joinorder.ErrCanceled) && ctx.Err() != nil && errors.Is(ctx.Err(), context.Canceled):
			s.ctr.canceled.Add(1)
			s.logRequest(pr, "client gone mid-solve", queueWait, solveWait, nil)
			return nil, &httpError{status: statusClientClosedRequest, code: CodeClientClosed, msg: "client closed request"}
		case errors.Is(err, joinorder.ErrCanceled), errors.Is(err, joinorder.ErrNoPlan):
			s.ctr.timeouts.Add(1)
			s.logRequest(pr, "no plan within budget", queueWait, solveWait, nil)
			return nil, &httpError{status: http.StatusGatewayTimeout, code: CodeTimeout, msg: fmt.Sprintf("no plan within the budget: %v", err)}
		case errors.Is(err, joinorder.ErrInvalidQuery), errors.Is(err, joinorder.ErrInvalidOptions), errors.Is(err, joinorder.ErrUnknownStrategy):
			s.ctr.badRequest.Add(1)
			return nil, &httpError{status: http.StatusBadRequest, code: CodeBadRequest, msg: err.Error()}
		case errors.Is(err, joinorder.ErrInfeasible):
			s.ctr.failed.Add(1)
			return nil, &httpError{status: http.StatusUnprocessableEntity, code: CodeInfeasible, msg: err.Error()}
		default:
			s.ctr.failed.Add(1)
			s.logRequest(pr, "solve failed: "+err.Error(), queueWait, solveWait, nil)
			return nil, &httpError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()}
		}
	}

	s.ctr.ok.Add(1)
	if flags.degraded {
		s.ctr.degraded.Add(1)
	}
	s.ctr.solverNodes.Add(int64(res.Nodes))
	if res.Stats != nil {
		s.ctr.simplexIters.Add(int64(res.Stats.SimplexIters))
		s.ctr.incumbents.Add(int64(res.Stats.Incumbents))
	}
	resp := &OptimizeResponse{
		Result:      res,
		Degraded:    flags.degraded,
		CacheHit:    flags.cacheHit,
		Coalesced:   flags.coalesced,
		QueueMillis: float64(queueWait) / float64(time.Millisecond),
		TotalMillis: float64(s.cfg.now().Sub(pr.arrived)) / float64(time.Millisecond),
	}
	s.logRequest(pr, "ok", queueWait, solveWait, resp)
	return resp, nil
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before an answer existed. Nothing is usually written — the
// connection is gone — but handler tests can still observe it.
const statusClientClosedRequest = 499

// shedRetryAfter estimates when shed work could be admitted: the queue is
// full of requests each holding at most the default budget, spread over
// the worker pool.
func (s *Server) shedRetryAfter() time.Duration {
	running, queued := s.adm.load()
	_ = running
	per := s.cfg.Cache.DegradeUnder
	if per <= 0 {
		per = 100 * time.Millisecond
	}
	est := time.Duration(queued+1) * per / time.Duration(s.cfg.MaxWorkers)
	if est < time.Second {
		est = time.Second
	}
	return est
}

// retryAfterSeconds formats a wait for the Retry-After header (whole
// seconds, at least 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// logRequest emits the one structured record every optimize request gets.
func (s *Server) logRequest(pr *prepared, outcome string, queueWait, solveWait time.Duration, resp *OptimizeResponse) {
	attrs := []slog.Attr{
		slog.String("req", pr.id),
		slog.String("outcome", outcome),
		slog.Int("tables", pr.q.NumTables()),
		slog.String("strategy", defaultStrategy(pr.opts.Strategy)),
		slog.Duration("queue", queueWait.Truncate(time.Microsecond)),
		slog.Duration("solve", solveWait.Truncate(time.Microsecond)),
	}
	if t := pr.req.Tenant; t != "" {
		attrs = append(attrs, slog.String("tenant", t))
	}
	if resp != nil && resp.Result != nil {
		attrs = append(attrs,
			slog.String("status", resp.Result.Status.String()),
			slog.Float64("cost", resp.Result.Cost))
		if resp.Result.Winner != "" {
			attrs = append(attrs, slog.String("winner", resp.Result.Winner))
		}
		if !math.IsInf(resp.Result.Gap, 0) {
			attrs = append(attrs, slog.Float64("gap", resp.Result.Gap))
		}
		if resp.Degraded {
			attrs = append(attrs, slog.Bool("degraded", true))
		}
		if resp.CacheHit {
			attrs = append(attrs, slog.Bool("cache_hit", true))
		}
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "optimize", attrs...)
}

func defaultStrategy(s string) string {
	if s == "" {
		return joinorder.DefaultStrategy
	}
	return s
}

// handleOptimize is POST /v1/optimize: one JSON answer when the solve
// finishes (or is degraded/shed).
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	pr, ok := s.prepare(w, r)
	if !ok {
		return
	}
	if s.tryForward(w, r, pr) {
		return
	}
	resp, herr := s.serve(r.Context(), pr, nil)
	if herr != nil {
		if herr.retryAfter > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(herr.retryAfter))
		}
		writeError(w, herr.status, herr.code, herr.retryAfter, "%s", herr.msg)
		return
	}
	if resp.Degraded {
		// A degraded answer is still an answer, but the header tells the
		// client when a non-degraded retry is likely to be admitted.
		w.Header().Set("Retry-After", retryAfterSeconds(s.shedRetryAfter()))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
