package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"milpjoin/internal/workload"
	"milpjoin/joinorder"
	"milpjoin/joinorder/cache"
)

// testLogger logs into the test output, keeping `go test` output clean on
// success.
func testLogger(t testing.TB) *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func mustServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = testLogger(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// queryBody builds an optimize request body for a generated query.
func queryBody(t testing.TB, shape workload.GraphShape, tables int, seed int64, mutate func(*OptimizeRequest)) []byte {
	t.Helper()
	req := &OptimizeRequest{
		Query:    workload.Generate(shape, tables, seed, workload.Config{}),
		Strategy: "greedy",
		Timeout:  "2s",
	}
	if mutate != nil {
		mutate(req)
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postOptimize(t testing.TB, ts *httptest.Server, body []byte) (*http.Response, *OptimizeResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	var out OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, &out
}

func TestOptimizeEndpoint(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, out := postOptimize(t, ts, queryBody(t, workload.Chain, 8, 1, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Result == nil || out.Result.Plan == nil || len(out.Result.Plan.Order) != 8 {
		t.Fatalf("response carries no 8-table plan: %+v", out.Result)
	}
	if out.Degraded || out.CacheHit {
		t.Fatalf("fresh greedy solve flagged degraded=%v cache_hit=%v", out.Degraded, out.CacheHit)
	}

	// The identical query again is a cache hit only for proven-optimal
	// results; greedy is not cached, so run an exact-DP request twice.
	exact := queryBody(t, workload.Chain, 8, 1, func(r *OptimizeRequest) { r.Strategy = "dp-leftdeep"; r.Timeout = "10s" })
	if _, out = postOptimize(t, ts, exact); out == nil || out.CacheHit {
		t.Fatalf("first dp request: %+v", out)
	}
	if _, out = postOptimize(t, ts, exact); out == nil || !out.CacheHit {
		t.Fatalf("second dp request should hit the cache: %+v", out)
	}
	if snap := s.Snapshot(); snap.Cache.Hits < 1 {
		t.Fatalf("cache hits = %d, want ≥ 1", snap.Cache.Hits)
	}
}

func TestOptimizeSQLRequest(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"sql": "SELECT * FROM orders o, customers c, items i WHERE o.cust_id = c.id AND o.item_id = i.id",
		"catalog": map[string]any{
			"orders":    map[string]any{"Card": 100000, "Columns": map[string]any{"id": map[string]any{"Distinct": 100000, "Bytes": 8}, "cust_id": map[string]any{"Distinct": 5000, "Bytes": 8}, "item_id": map[string]any{"Distinct": 2000, "Bytes": 8}}},
			"customers": map[string]any{"Card": 5000, "Columns": map[string]any{"id": map[string]any{"Distinct": 5000, "Bytes": 8}}},
			"items":     map[string]any{"Card": 2000, "Columns": map[string]any{"id": map[string]any{"Distinct": 2000, "Bytes": 8}}},
		},
		"strategy": "dp-leftdeep",
		"timeout":  "5s",
	})
	resp, out := postOptimize(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	if out.Result == nil || out.Result.Plan == nil || len(out.Result.Plan.Order) != 3 {
		t.Fatalf("no 3-table plan: %+v", out.Result)
	}
}

func TestBadRequests(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for name, body := range map[string]string{
		"invalid json":     "{nope",
		"no query":         `{"strategy":"milp"}`,
		"both sources":     `{"sql":"SELECT 1","query":{"tables":[]}}`,
		"sql sans catalog": `{"sql":"SELECT * FROM a, b WHERE a.x = b.y"}`,
		"bad precision":    `{"query":{"tables":[{"name":"a","card":10},{"name":"b","card":10}],"predicates":[{"name":"p","tables":[0,1],"sel":0.1}]},"precision":"ultra"}`,
		"bad timeout":      `{"query":{"tables":[{"name":"a","card":10},{"name":"b","card":10}],"predicates":[{"name":"p","tables":[0,1],"sel":0.1}]},"timeout":"-3s"}`,
		"unknown strategy": `{"query":{"tables":[{"name":"a","card":10},{"name":"b","card":10}],"predicates":[{"name":"p","tables":[0,1],"sel":0.1}]},"strategy":"quantum"}`,
		"invalid query":    `{"query":{"tables":[{"name":"a","card":10}],"predicates":[]}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status = %d, want 400 (%s)", name, resp.StatusCode, b)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Errorf("%s: error body not an envelope: %v", name, err)
		} else if env.Err.Code != CodeBadRequest || env.Err.Message == "" {
			t.Errorf("%s: envelope = %+v, want code %q and a message", name, env.Err, CodeBadRequest)
		}
		resp.Body.Close()
	}
	if snap := s.Snapshot(); snap.BadRequest < 8 {
		t.Errorf("bad_request counter = %d, want ≥ 8", snap.BadRequest)
	}
}

func TestTenantRateLimit(t *testing.T) {
	s := mustServer(t, Config{TenantRate: 0.001, TenantBurst: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := queryBody(t, workload.Chain, 6, 1, nil)
	req := func() *http.Response {
		hr, _ := http.NewRequest("POST", ts.URL+"/v1/optimize", bytes.NewReader(body))
		hr.Header.Set("X-Tenant", "acme")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := req(); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	resp := req()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Errorf("429 body not an envelope: %v", err)
	} else if env.Err.Code != CodeRateLimited || env.Err.RetryAfterMillis <= 0 {
		t.Errorf("429 envelope = %+v, want code %q with a retry hint", env.Err, CodeRateLimited)
	}
	// A different tenant is unaffected.
	hr, _ := http.NewRequest("POST", ts.URL+"/v1/optimize", bytes.NewReader(body))
	hr.Header.Set("X-Tenant", "globex")
	r2, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d", r2.StatusCode)
	}
}

// blockingOptimizer is a fake underlying optimizer: milp-strategy solves
// block until released (or their context ends); the fallback strategy
// answers immediately — the shape of a saturated server.
type blockingOptimizer struct {
	release   chan struct{}
	started   chan struct{} // buffered; one tick per blocked solve
	calls     atomic.Int64  // blocked (non-fallback) solves begun
	ctxErrs   atomic.Int64  // blocked solves ended by their context
	firstStop sync.Once
}

func newBlockingOptimizer() *blockingOptimizer {
	return &blockingOptimizer{release: make(chan struct{}), started: make(chan struct{}, 1024)}
}

func fakePlan(n int) *joinorder.Plan {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return &joinorder.Plan{Order: order}
}

func (b *blockingOptimizer) fn(ctx context.Context, q *joinorder.Query, opts joinorder.Options) (*joinorder.Result, error) {
	if opts.Strategy == "greedy" {
		return &joinorder.Result{
			Strategy: "greedy", Status: joinorder.StatusFeasible,
			Plan: fakePlan(q.NumTables()), Cost: 1000,
		}, nil
	}
	b.calls.Add(1)
	b.started <- struct{}{}
	select {
	case <-b.release:
		return &joinorder.Result{
			Strategy: "milp", Status: joinorder.StatusFeasible,
			Plan: fakePlan(q.NumTables()), Cost: 100, Bound: 90, Gap: 0.1,
		}, nil
	case <-ctx.Done():
		b.ctxErrs.Add(1)
		return nil, fmt.Errorf("%w: %w", joinorder.ErrCanceled, ctx.Err())
	}
}

func TestShedDegradedAndRejected(t *testing.T) {
	bo := newBlockingOptimizer()
	s := mustServer(t, Config{
		MaxWorkers: 1,
		QueueDepth: 1,
		Cache: cache.Config{
			Optimize:         bo.fn,
			DegradeUnder:     50 * time.Millisecond,
			BackgroundBudget: 500 * time.Millisecond,
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Fill the one worker; the solve blocks.
	errc := make(chan error, 2)
	go func() {
		_, err := http.Post(ts.URL+"/v1/optimize", "application/json",
			bytes.NewReader(queryBody(t, workload.Chain, 6, 1, func(r *OptimizeRequest) { r.Strategy = "milp" })))
		errc <- err
	}()
	<-bo.started

	// Fill the one queue slot (distinct query so it cannot coalesce).
	go func() {
		_, err := http.Post(ts.URL+"/v1/optimize", "application/json",
			bytes.NewReader(queryBody(t, workload.Chain, 7, 2, func(r *OptimizeRequest) { r.Strategy = "milp" })))
		errc <- err
	}()
	waitFor(t, func() bool { _, queued := s.adm.load(); return queued == 1 })

	// Saturated: the next request is shed and answered degraded.
	resp, out := postOptimize(t, ts, queryBody(t, workload.Star, 8, 3, func(r *OptimizeRequest) { r.Strategy = "milp" }))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed request status = %d, want degraded 200", resp.StatusCode)
	}
	if out == nil || !out.Degraded || out.Result == nil || out.Result.Plan == nil {
		t.Fatalf("shed response not a degraded plan: %+v", out)
	}
	if out.Result.Strategy != "greedy" {
		t.Errorf("degraded strategy = %q, want fallback greedy", out.Result.Strategy)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded response without Retry-After")
	}

	// A request refusing degradation gets 429 + Retry-After instead.
	resp2, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader(queryBody(t, workload.Star, 9, 4, func(r *OptimizeRequest) {
			r.Strategy = "milp"
			no := false
			r.AllowDegraded = &no
		})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("strict shed status = %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(bo.release)
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if snap := s.Snapshot(); snap.Shed != 1 || snap.Rejected != 1 {
		t.Errorf("shed=%d rejected=%d, want 1/1", snap.Shed, snap.Rejected)
	}
	// Drain to let the degraded path's background refine finish.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitFor(t testing.TB, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestClientDisconnectCancelsSolveAndFreesSlot(t *testing.T) {
	bo := newBlockingOptimizer()
	s := mustServer(t, Config{
		MaxWorkers: 1,
		Cache:      cache.Config{Optimize: bo.fn, BackgroundBudget: 500 * time.Millisecond},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize",
		bytes.NewReader(queryBody(t, workload.Chain, 6, 1, func(r *OptimizeRequest) { r.Strategy = "milp" })))
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()
	<-bo.started
	cancel() // client walks away mid-solve

	if err := <-done; err == nil {
		t.Fatal("canceled request returned no error to the client")
	}
	// The solve must observe the cancellation and the worker slot must
	// free for the next request.
	waitFor(t, func() bool { return bo.ctxErrs.Load() == 1 })
	waitFor(t, func() bool { running, _ := s.adm.load(); return running == 0 })
	if snap := s.Snapshot(); snap.Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", snap.Canceled)
	}

	// The pool is healthy: a fresh request solves normally.
	close(bo.release)
	resp, out := postOptimize(t, ts, queryBody(t, workload.Chain, 7, 2, func(r *OptimizeRequest) { r.Strategy = "milp" }))
	if resp.StatusCode != http.StatusOK || out.Result == nil {
		t.Fatalf("post-cancel request failed: %d %+v", resp.StatusCode, out)
	}
}

func TestCoalescedIdenticalQueriesSolveOnce(t *testing.T) {
	bo := newBlockingOptimizer()
	s := mustServer(t, Config{
		MaxWorkers: 8,
		Cache:      cache.Config{Optimize: bo.fn},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 6
	body := queryBody(t, workload.Star, 10, 7, func(r *OptimizeRequest) { r.Strategy = "milp"; r.Timeout = "30s" })
	results := make(chan *OptimizeResponse, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- nil
				return
			}
			defer resp.Body.Close()
			var out OptimizeResponse
			if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
				results <- nil
				return
			}
			results <- &out
		}()
	}
	// All n requests hold worker slots: one solving leader, n−1 waiting
	// on its flight.
	waitFor(t, func() bool { running, _ := s.adm.load(); return running == n })
	close(bo.release)

	coalesced := 0
	for i := 0; i < n; i++ {
		out := <-results
		if out == nil || out.Result == nil || out.Result.Plan == nil {
			t.Fatal("a coalesced request failed")
		}
		if out.Coalesced {
			coalesced++
		}
	}
	if got := bo.calls.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want exactly 1", got)
	}
	if coalesced != n-1 {
		t.Errorf("coalesced responses = %d, want %d", coalesced, n-1)
	}
}

func TestDrainLifecycle(t *testing.T) {
	bo := newBlockingOptimizer()
	s := mustServer(t, Config{MaxWorkers: 2, Cache: cache.Config{Optimize: bo.fn}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One solve in flight when the drain begins.
	inflight := make(chan *OptimizeResponse, 1)
	go func() {
		_, out := postOptimize(t, ts, queryBody(t, workload.Chain, 6, 1, func(r *OptimizeRequest) { r.Strategy = "milp" }))
		inflight <- out
	}()
	<-bo.started

	s.BeginDrain()

	// New work is refused with 503 + Retry-After; healthz flips.
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json",
		bytes.NewReader(queryBody(t, workload.Chain, 7, 2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining optimize: status=%d retry-after=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", hz.StatusCode)
	}

	// The in-flight solve completes and the drain finishes cleanly.
	close(bo.release)
	out := <-inflight
	if out == nil || out.Result == nil {
		t.Fatal("in-flight request did not complete during drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestHealthzVarzMetrics(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if _, out := postOptimize(t, ts, queryBody(t, workload.Chain, 6, 1, nil)); out == nil {
		t.Fatal("warmup request failed")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz body %q", body)
	}
	varz := get("/varz")
	if !strings.Contains(varz, `"joinoptd"`) || !strings.Contains(varz, `"requests"`) {
		t.Errorf("varz missing joinoptd snapshot: %.200s", varz)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"joinoptd_requests_total 1",
		`joinoptd_responses_total{outcome="ok"} 1`,
		"joinoptd_cache_misses_total 1",
		"# TYPE joinoptd_running_solves gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerConfigValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative workers":        {MaxWorkers: -1},
		"negative queue":          {QueueDepth: -1},
		"default above max":       {DefaultTimeLimit: 2 * time.Minute, MaxTimeLimit: time.Minute},
		"degrade above deadline":  {DefaultTimeLimit: 100 * time.Millisecond, Cache: cache.Config{DegradeUnder: 200 * time.Millisecond}},
		"negative tenant rate":    {TenantRate: -1},
		"bad cache (degrade≥bkg)": {Cache: cache.Config{DegradeUnder: time.Second, BackgroundBudget: time.Second}},
	} {
		if _, err := New(cfg); !errors.Is(err, joinorder.ErrInvalidOptions) {
			t.Errorf("%s: New err = %v, want ErrInvalidOptions", name, err)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// --- SSE ---

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

func readSSE(t testing.TB, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				out = append(out, cur)
			}
			cur = sseEvent{}
		}
	}
	return out
}

// TestSSEStreamAnytimeGap is the acceptance check for the streaming
// endpoint: a 20-table star query streamed over SSE must show a
// monotonically non-increasing gap (equivalently, a non-decreasing proven
// bound and non-increasing incumbent) and finish with a result event.
func TestSSEStreamAnytimeGap(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The budget is generous because the race detector slows the solver
	// by an order of magnitude; several bound improvements must land.
	body := queryBody(t, workload.Star, 20, 42, func(r *OptimizeRequest) {
		r.Strategy = "milp"
		r.Timeout = "8s"
		r.Threads = 2
	})
	resp, err := http.Post(ts.URL+"/v1/optimize/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	events := readSSE(t, resp.Body)
	if len(events) < 3 {
		t.Fatalf("only %d SSE events", len(events))
	}
	type anytime struct {
		Incumbent    *float64 `json:"incumbent"`
		Bound        *float64 `json:"bound"`
		Gap          *float64 `json:"gap"`
		HasIncumbent bool     `json:"has_incumbent"`
	}
	var (
		lastGap       = float64(1e300)
		lastBound     = float64(-1e300)
		lastIncumbent = float64(1e300)
		anytimeEvents int
	)
	for _, ev := range events[:len(events)-1] {
		if ev.name != "incumbent" && ev.name != "bound" {
			continue
		}
		var a anytime
		if err := json.Unmarshal([]byte(ev.data), &a); err != nil {
			t.Fatalf("bad event payload %q: %v", ev.data, err)
		}
		anytimeEvents++
		const tol = 1e-9
		if a.Gap != nil {
			if *a.Gap > lastGap+tol {
				t.Fatalf("gap regressed: %g after %g", *a.Gap, lastGap)
			}
			lastGap = *a.Gap
		}
		if a.Bound != nil {
			if *a.Bound < lastBound-tol {
				t.Fatalf("bound regressed: %g after %g", *a.Bound, lastBound)
			}
			lastBound = *a.Bound
		}
		if a.HasIncumbent && a.Incumbent != nil {
			if *a.Incumbent > lastIncumbent+tol {
				t.Fatalf("incumbent worsened: %g after %g", *a.Incumbent, lastIncumbent)
			}
			lastIncumbent = *a.Incumbent
		}
	}
	if anytimeEvents < 2 {
		t.Fatalf("only %d incumbent/bound events on a 20-table star", anytimeEvents)
	}

	final := events[len(events)-1]
	if final.name != "result" {
		t.Fatalf("last event = %q, want result", final.name)
	}
	var out OptimizeResponse
	if err := json.Unmarshal([]byte(final.data), &out); err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || out.Result.Plan == nil || len(out.Result.Plan.Order) != 20 {
		t.Fatalf("final result carries no 20-table plan")
	}
	if out.Result.Gap > lastGap+1e-9 {
		t.Errorf("final gap %g above last streamed gap %g", out.Result.Gap, lastGap)
	}
}

func TestSSEDisconnectCancelsSolve(t *testing.T) {
	bo := newBlockingOptimizer()
	s := mustServer(t, Config{MaxWorkers: 1, Cache: cache.Config{Optimize: bo.fn}})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/optimize/stream",
		bytes.NewReader(queryBody(t, workload.Chain, 6, 1, func(r *OptimizeRequest) { r.Strategy = "milp" })))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-bo.started
	cancel() // walk away mid-stream

	waitFor(t, func() bool { return bo.ctxErrs.Load() == 1 })
	waitFor(t, func() bool { running, _ := s.adm.load(); return running == 0 })
}

// TestOptimizeAutoPortfolio: a strategy=auto request races the portfolio
// on the server, answers with the winner's plan, and is accounted with
// portfolio weight in the admission pool.
func TestOptimizeAutoPortfolio(t *testing.T) {
	s := mustServer(t, Config{MaxWorkers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := queryBody(t, workload.Star, 8, 3, func(r *OptimizeRequest) {
		r.Strategy = "auto"
		r.Portfolio = []string{"dpconv", "greedy"}
		r.Timeout = "10s"
	})
	resp, out := postOptimize(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	if out.Result == nil || out.Result.Strategy != "auto" {
		t.Fatalf("result strategy %+v, want auto", out.Result)
	}
	if out.Result.Winner != "dpconv" && out.Result.Winner != "greedy" {
		t.Fatalf("winner %q not a portfolio member", out.Result.Winner)
	}
	if out.Result.Status != joinorder.StatusOptimal {
		t.Errorf("status = %v, want optimal (dpconv finishes a star-8 exactly)", out.Result.Status)
	}
	if snap := s.Snapshot(); snap.Portfolio != 1 {
		t.Errorf("portfolio counter = %d, want 1", snap.Portfolio)
	}

	// A portfolio with a non-auto strategy is a 400, not a solve.
	bad := queryBody(t, workload.Star, 8, 3, func(r *OptimizeRequest) {
		r.Strategy = "greedy"
		r.Portfolio = []string{"milp"}
	})
	resp, _ = postOptimize(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("portfolio with non-auto strategy: status = %d, want 400", resp.StatusCode)
	}
}

// TestErrorEnvelopeUnmarshal: the client-side decoder accepts both the
// structured envelope and the legacy flat {"error": "msg"} form.
func TestErrorEnvelopeUnmarshal(t *testing.T) {
	var env ErrorEnvelope
	structured := `{"error":{"code":"timeout","message":"no plan","retry_after_ms":1500}}`
	if err := json.Unmarshal([]byte(structured), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != CodeTimeout || env.Err.Message != "no plan" || env.Err.RetryAfterMillis != 1500 {
		t.Errorf("structured envelope = %+v", env.Err)
	}
	if got := env.Error(); got != "timeout: no plan" {
		t.Errorf("Error() = %q", got)
	}
	legacy := `{"error":"server is draining"}`
	if err := json.Unmarshal([]byte(legacy), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != "" || env.Err.Message != "server is draining" || env.Err.RetryAfterMillis != 0 {
		t.Errorf("legacy envelope = %+v", env.Err)
	}
	if got := env.Error(); got != "server is draining" {
		t.Errorf("legacy Error() = %q", got)
	}
}

// TestRequestBudgetObject: the budget object wins over the flat aliases
// field-by-field, and the resolved limits land in Options.Budget.
func TestRequestBudgetObject(t *testing.T) {
	cfg := Config{DefaultTimeLimit: 10 * time.Second, MaxTimeLimit: time.Minute}
	req := &OptimizeRequest{
		Budget:  &BudgetRequest{Timeout: "2s", MaxNodes: 500},
		Timeout: "9s", // loses to budget.timeout
		GapTol:  1e-3, // wins: budget.gap_tol unset
		Threads: 4,    // wins: budget.threads unset
	}
	opts, err := req.options(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := joinorder.Budget{TimeLimit: 2 * time.Second, GapTol: 1e-3, MaxNodes: 500, Threads: 4}
	if opts.Budget != want {
		t.Errorf("options().Budget = %+v, want %+v", opts.Budget, want)
	}
	// Budget timeouts are capped by the server config like flat ones.
	req = &OptimizeRequest{Budget: &BudgetRequest{Timeout: "5m"}}
	if opts, err = req.options(cfg); err != nil {
		t.Fatal(err)
	}
	if opts.Budget.TimeLimit != time.Minute {
		t.Errorf("budget timeout not capped: %v", opts.Budget.TimeLimit)
	}
	// A negative budget field is rejected by Options.Validate.
	req = &OptimizeRequest{Budget: &BudgetRequest{MaxNodes: -1}}
	if _, err = req.options(cfg); err == nil {
		t.Error("negative budget.max_nodes accepted")
	}
}

// TestOptimizeHybridRequest: the hybrid strategy plus its knobs round-trip
// through the wire format and answer a large query.
func TestOptimizeHybridRequest(t *testing.T) {
	s := mustServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := queryBody(t, workload.Snowflake, 40, 1, func(r *OptimizeRequest) {
		r.Strategy = "hybrid"
		r.PartitionCap = 8
		r.SeamBudgetFrac = 0.3
		r.Budget = &BudgetRequest{Timeout: "5s"}
		r.Timeout = ""
	})
	resp, out := postOptimize(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Result == nil || out.Result.Plan == nil || len(out.Result.Plan.Order) != 40 {
		t.Fatalf("no 40-table plan: %+v", out.Result)
	}
	if out.Result.Strategy != "hybrid" {
		t.Errorf("strategy = %q", out.Result.Strategy)
	}
	// An out-of-range knob is a 400 with the envelope's code.
	bad := queryBody(t, workload.Chain, 6, 1, func(r *OptimizeRequest) {
		r.Strategy = "hybrid"
		r.PartitionCap = 1
	})
	hr, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Errorf("partition_cap=1 status = %d, want 400", hr.StatusCode)
	}
}
